package repro

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/mvcc"
	"repro/internal/storage"
)

// This file is the facade of the live-update tier (internal/mvcc): the
// batched write API (WriteBatch, Apply), MVCC snapshot isolation
// (EnableMVCC, Snapshot, SnapshotAt), and version-addressed reads. See
// DESIGN.md §16.

// WriteBatch accumulates tuple-frequency deltas (Add/Remove) to be applied
// atomically as one version. Build it on one goroutine and hand it to
// Database.Apply; the name distinguishes it from the query Batch.
type WriteBatch = mvcc.Batch

// NewWriteBatch returns an empty write batch.
func NewWriteBatch() *WriteBatch { return mvcc.NewBatch() }

// Version identifies one published database state: 0 at open, +1 per
// successful non-empty Apply.
type Version = mvcc.Version

// ErrVersionNotRetained reports a SnapshotAt request for a version that was
// never published or has aged out of the MVCC retention window.
var ErrVersionNotRetained = mvcc.ErrVersionNotRetained

// MVCCConfig tunes the MVCC store's compaction and retention policy; the
// zero value selects every default (see internal/mvcc Default*).
type MVCCConfig struct {
	// MaxLayers bounds the overlay depth before background compaction.
	MaxLayers int
	// MaxLayerKeys bounds total overlay entries before background compaction.
	MaxLayerKeys int
	// Retain is how many versions behind the head stay addressable by
	// SnapshotAt (pinned versions are never dropped while pinned).
	Retain int
	// DisableAutoCompact turns the background compactor off; compaction then
	// runs only through explicit CompactNow calls.
	DisableAutoCompact bool
}

// MVCCStats is a point-in-time snapshot of the MVCC store's counters.
type MVCCStats = mvcc.Stats

// EnableMVCC converts the database to multi-version concurrency control:
// every write (Apply, Insert, Delete) publishes an immutable coefficient
// layer over a frozen base, readers evaluate against immutable snapshots
// (NewRun/Exact*/Session capture the head at start time and stay bit-stable
// however many writes land mid-drain), and a background compactor folds
// layers back into a fresh base.
//
// Call it right after opening the database, before EnableRetries,
// InjectFaults, EnableInstrumentation, EnableCoalescing or NewSession —
// those layers then wrap the MVCC base and compose with versioning. The
// current store becomes the frozen version-0 base (it must be enumerable),
// and the database becomes safe for concurrent writers and readers.
// Idempotent; read-only views (distributed, layout) cannot enable MVCC.
func (db *Database) EnableMVCC(cfg MVCCConfig) error {
	if db.mvcc != nil {
		return nil
	}
	if err := db.readOnlyErr("write"); err != nil {
		return err
	}
	if !storage.IsEnumerable(db.store) {
		return fmt.Errorf("repro: store %T cannot enumerate its coefficients; enable MVCC before wrapping the store (retries, instrumentation, coalescing)", db.store)
	}
	m, err := mvcc.New(db.store, db.filter, db.schema.Sizes, db.TupleCount(), mvcc.Config{
		MaxLayers:          cfg.MaxLayers,
		MaxLayerKeys:       cfg.MaxLayerKeys,
		Retain:             cfg.Retain,
		DisableAutoCompact: cfg.DisableAutoCompact,
	})
	if err != nil {
		return err
	}
	db.mvcc = m
	db.store = m
	return nil
}

// MVCCEnabled reports whether the database runs under MVCC.
func (db *Database) MVCCEnabled() bool { return db.mvcc != nil }

// MVCCStats snapshots the MVCC store's counters; ok is false when MVCC is
// not enabled.
func (db *Database) MVCCStats() (stats MVCCStats, ok bool) {
	if db.mvcc == nil {
		return MVCCStats{}, false
	}
	return db.mvcc.Stats(), true
}

// Apply atomically applies a batch of tuple-frequency deltas: the whole
// batch is transformed in one sparse pass (per-dimension impulse factors
// memoized, coincident tuples merged) and its coefficient deltas land as
// one unit, returning the new version. Under MVCC the batch publishes as an
// immutable layer and concurrent readers are isolated: runs started earlier
// keep their snapshot. Without MVCC the deltas are added to the store in
// ascending key order — correct single-writer semantics, no isolation from
// concurrent readers — and the version is a plain counter. An empty (or
// nil) batch returns the current version. On error nothing is applied.
func (db *Database) Apply(ctx context.Context, b *WriteBatch) (Version, error) {
	if err := db.readOnlyErr("write"); err != nil {
		return 0, err
	}
	if db.mvcc != nil {
		return db.mvcc.Apply(ctx, b)
	}
	if b == nil || b.Len() == 0 {
		return Version(db.version.Load()), nil
	}
	delta, err := b.Delta(db.filter, db.schema.Sizes)
	if err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	keys := make([]int, 0, len(delta))
	for k := range delta {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		db.store.Add(k, delta[k])
	}
	db.tuples.Add(int64(math.Round(b.TupleWeight())))
	return Version(db.version.Add(1)), nil
}

// Version returns the current database version: the number of non-empty
// applies since open.
func (db *Database) Version() Version {
	if db.mvcc != nil {
		return db.mvcc.Head()
	}
	return Version(db.version.Load())
}

// CompactNow folds the MVCC overlay into a fresh base synchronously (the
// background compactor does the same under the configured policy). Reads
// before, during and after are bit-identical; pinned snapshots are
// untouched. No-op without layers; an error without MVCC.
func (db *Database) CompactNow(ctx context.Context) error {
	if db.mvcc == nil {
		return fmt.Errorf("repro: compaction requires MVCC (call EnableMVCC)")
	}
	return db.mvcc.Compact(ctx)
}

// Snapshot is a pinned, immutable view of one database version. It
// implements Evaluator — plans, exact evaluation and progressive runs
// against it serve bit-stable coefficients however many writes land after
// the pin — and stays addressable by SnapshotAt until Release.
type Snapshot struct {
	db    *Database
	sn    *mvcc.Snapshot
	store storage.Store
}

// Snapshot pins the current head version. Release it when done; the
// returned view outlives any retention or compaction churn.
func (db *Database) Snapshot() (*Snapshot, error) {
	if db.mvcc == nil {
		return nil, fmt.Errorf("repro: snapshots require MVCC (call EnableMVCC)")
	}
	sn := db.mvcc.Snapshot()
	return &Snapshot{db: db, sn: sn, store: sn.View()}, nil
}

// SnapshotAt pins a specific retained version, or reports
// ErrVersionNotRetained.
func (db *Database) SnapshotAt(v Version) (*Snapshot, error) {
	if db.mvcc == nil {
		return nil, fmt.Errorf("repro: snapshots require MVCC (call EnableMVCC)")
	}
	sn, err := db.mvcc.SnapshotAt(v)
	if err != nil {
		return nil, err
	}
	return &Snapshot{db: db, sn: sn, store: sn.View()}, nil
}

// Release unpins the snapshot (idempotent). The view stays readable while
// referenced, but its version may stop being addressable by SnapshotAt.
func (s *Snapshot) Release() { s.sn.Release() }

// Version returns the pinned version.
func (s *Snapshot) Version() Version { return s.sn.Version() }

// TupleCount returns the number of tuples the pinned version represents.
func (s *Snapshot) TupleCount() int64 { return int64(math.Round(s.sn.TupleWeight())) }

// NonzeroCoefficients returns the pinned version's stored transform size.
func (s *Snapshot) NonzeroCoefficients() int { return s.sn.Nonzero() }

// CoefficientMass returns the pinned version's K = Σ|Δ̂[ξ]| behind
// Theorem-1 worst-case bounds (exact incremental bookkeeping, no
// enumeration).
func (s *Snapshot) CoefficientMass() (float64, error) { return s.sn.Mass(), nil }

// Plan rewrites a batch under the snapshot's database (plans depend only on
// schema and filter, which never change across versions).
func (s *Snapshot) Plan(batch Batch) (*Plan, error) { return s.db.Plan(batch) }

// Exact evaluates a plan exactly against the pinned version.
func (s *Snapshot) Exact(plan *Plan) []float64 { return plan.Exact(s.store) }

// ExactParallel is Exact with batched retrieval and parallel accumulation.
func (s *Snapshot) ExactParallel(plan *Plan, workers int) []float64 {
	return plan.ExactParallel(s.store, workers)
}

// ExactCtx evaluates the plan exactly through the fallible path.
func (s *Snapshot) ExactCtx(ctx context.Context, plan *Plan) ([]float64, error) {
	return plan.ExactCtx(ctx, s.store)
}

// ExactParallelCtx is the fallible ExactParallel.
func (s *Snapshot) ExactParallelCtx(ctx context.Context, plan *Plan, workers int) ([]float64, error) {
	return plan.ExactParallelCtx(ctx, s.store, workers)
}

// NewRun starts a progressive run against the pinned version: every
// estimate it ever produces is a pure function of the pinned state.
func (s *Snapshot) NewRun(plan *Plan, pen Penalty) *Run {
	return core.NewRun(plan, pen, s.store)
}

// Retrievals reports retrievals through the owning database's store (the
// counter is shared across all views).
func (s *Snapshot) Retrievals() int64 { return s.store.Retrievals() }

// ResetStats zeroes the shared retrieval counter.
func (s *Snapshot) ResetStats() { s.store.ResetStats() }

var _ Evaluator = (*Snapshot)(nil)

// coalesceHolder tracks the live coalescing layer instance across MVCC base
// republications (each compaction rebuilds the wrap chain over the new
// base, creating a fresh CoalescingStore).
type coalesceHolder = atomic.Pointer[storage.CoalescingStore]

// IngestCSV streams CSV rows into the database as batched applies: rows are
// quantized onto the schema's bins under the database's recorded windows
// (SetWindows, or windows persisted by Save), accumulated into batches of
// batchSize tuples (≤0 selects a default), and each batch lands as one
// Apply — one version per batch, memory bounded by one batch. The first CSV
// record must be a header naming every schema attribute. It returns the
// tuple count ingested, the rows skipped as unparsable, and the last
// version published. On a mid-stream error the batches already applied
// stay applied.
func (db *Database) IngestCSV(ctx context.Context, r io.Reader, batchSize int) (rows, skipped int, v Version, err error) {
	if err := db.readOnlyErr("write"); err != nil {
		return 0, 0, 0, err
	}
	if db.windows == nil {
		return 0, 0, 0, fmt.Errorf("repro: CSV ingest requires quantization windows (SetWindows) to map raw values onto bins")
	}
	cols := make([]ingest.Column, db.schema.NumDims())
	for i := range cols {
		cols[i] = ingest.Column{
			Name: db.schema.Names[i],
			Bins: db.schema.Sizes[i],
			Min:  db.windows[i][0],
			Max:  db.windows[i][1],
		}
	}
	v = db.Version()
	rows, skipped, err = ingest.CSVBatches(r, cols, batchSize, func(b *WriteBatch) error {
		nv, aerr := db.Apply(ctx, b)
		if aerr != nil {
			return aerr
		}
		v = nv
		return nil
	})
	return rows, skipped, v, err
}
