package repro

// This file is the benchmark harness required by DESIGN.md §4: one bench per
// paper table/figure (Observation 1, Figures 2–7), plus the ablation benches
// of DESIGN.md §5. Experiment benches report their headline numbers as
// benchmark metrics (retrievals/op, error levels), so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's quantities alongside wall-clock costs. The benches
// run on the quick workload so the whole suite stays fast; run
// cmd/experiments for the full 512-range scale.

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/linstrat"
	"repro/internal/penalty"
	"repro/internal/poly"
	"repro/internal/query"
	"repro/internal/sparse"
	"repro/internal/storage"
	"repro/internal/wavelet"
)

var (
	benchWorkloadOnce sync.Once
	benchWorkload     *experiments.Workload
	benchWorkloadErr  error
)

func sharedBenchWorkload(b *testing.B) *experiments.Workload {
	b.Helper()
	benchWorkloadOnce.Do(func() {
		benchWorkload, benchWorkloadErr = experiments.BuildWorkload(experiments.QuickConfig())
	})
	if benchWorkloadErr != nil {
		b.Fatal(benchWorkloadErr)
	}
	return benchWorkload
}

// BenchmarkObs1IOSharing regenerates the Observation 1 table. Metrics:
// wavelet retrievals with and without sharing, and the sharing factors.
func BenchmarkObs1IOSharing(b *testing.B) {
	w := sharedBenchWorkload(b)
	var res *experiments.Obs1Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunObs1(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.WaveletPerQuery), "retr-perquery")
	b.ReportMetric(float64(res.WaveletBatch), "retr-batched")
	b.ReportMetric(res.WaveletSharing, "sharing-x")
	b.ReportMetric(float64(res.PrefixPerQuery), "prefix-perquery")
	b.ReportMetric(float64(res.PrefixBatch), "prefix-batched")
}

// BenchmarkFig234QueryApprox regenerates the Figures 2–4 B-term
// approximation table. Metrics: the relative L2 errors at B=25 and B=150 and
// the total nonzero coefficient count (paper: 837).
func BenchmarkFig234QueryApprox(b *testing.B) {
	var res *experiments.Fig234Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunFig234()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.TotalNonzero), "nonzeros")
	b.ReportMetric(res.Rows[0].RelL2, "relL2@25")
	b.ReportMetric(res.Rows[1].RelL2, "relL2@150")
}

// BenchmarkFig5MeanRelativeError regenerates the Figure 5 decay series.
// Metrics: the mean relative error at ~1 retrieval/query and at 10% of the
// master list.
func BenchmarkFig5MeanRelativeError(b *testing.B) {
	w := sharedBenchWorkload(b)
	var series []experiments.Fig5Point
	var err error
	for i := 0; i < b.N; i++ {
		series, err = experiments.RunFig5(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	var atQuery, atTenth experiments.Fig5Point
	tenth := w.Plan.DistinctCoefficients() / 10
	for _, p := range series {
		if p.Retrieved <= len(w.Batch) {
			atQuery = p
		}
		if p.Retrieved <= tenth {
			atTenth = p
		}
	}
	b.ReportMetric(atQuery.MeanRel, "meanrel@1perq")
	b.ReportMetric(atTenth.MeanRel, "meanrel@10pct")
	b.ReportMetric(atTenth.TotalRel, "totalrel@10pct")
}

// BenchmarkFig67Penalties regenerates the Figures 6–7 penalty curves.
// Metrics: the retrieval counts at which each progression pushes its own
// normalized penalty below 1e-2.
func BenchmarkFig67Penalties(b *testing.B) {
	w := sharedBenchWorkload(b)
	var res *experiments.Fig67Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunFig67(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	firstBelow := func(vals []float64, tol float64) float64 {
		for i, v := range vals {
			if v <= tol {
				return float64(res.Retrieved[i])
			}
		}
		return float64(res.Retrieved[len(res.Retrieved)-1])
	}
	b.ReportMetric(firstBelow(res.SSEOptimizedNormSSE, 1e-2), "sse-opt@1e-2")
	b.ReportMetric(firstBelow(res.CursorOptimizedNormCursored, 1e-2), "cur-opt@1e-2")
}

// BenchmarkDataVsQueryApprox regenerates the query-approximation vs
// data-approximation comparison (the paper's Section 1.1/2.1 argument).
// Metrics: total relative error of each approach at 10% of the budget.
func BenchmarkDataVsQueryApprox(b *testing.B) {
	w := sharedBenchWorkload(b)
	var rows []experiments.DataVsQueryRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunDataVsQueryApprox(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	tenth := w.Plan.DistinctCoefficients() / 10
	var at experiments.DataVsQueryRow
	for _, r := range rows {
		if r.B <= tenth {
			at = r
		}
	}
	b.ReportMetric(at.QueryTotalRel, "query-totrel@10pct")
	b.ReportMetric(at.DataTotalRel, "data-totrel@10pct")
}

// BenchmarkLayoutStudy regenerates the disk-layout comparison. Metrics: the
// block counts for the natural and workload-aware layouts.
func BenchmarkLayoutStudy(b *testing.B) {
	w := sharedBenchWorkload(b)
	var rows []experiments.LayoutRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunLayoutStudy(w, 64)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Name {
		case "natural":
			b.ReportMetric(float64(r.BlocksAt10Pct), "natural@10pct")
		case "importance":
			b.ReportMetric(float64(r.BlocksAt10Pct), "importance@10pct")
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationQueryTransform compares the lazy piecewise-polynomial
// query transform against the dense-DWT oracle at growing domain sizes: the
// lazy path should be roughly flat in n while the dense path grows linearly.
func BenchmarkAblationQueryTransform(b *testing.B) {
	p := poly.New(0, 1)
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		a, bd := n/5, 4*n/5
		b.Run(sizeName("lazy", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wavelet.Db4.QueryTransform(p, a, bd, n); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sizeName("dense", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wavelet.Db4.QueryTransformDense(p, a, bd, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationProgressionOrder compares the three progression
// strategies over one plan: heap-ordered Batch-Biggest-B, the unordered
// exact pass, and the unshared round-robin baseline.
func BenchmarkAblationProgressionOrder(b *testing.B) {
	w := sharedBenchWorkload(b)
	vectors := make([]sparse.Vector, len(w.Batch))
	for i, q := range w.Batch {
		v, err := q.Coefficients(w.Config.Filter)
		if err != nil {
			b.Fatal(err)
		}
		vectors[i] = v
	}
	b.Run("heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run := core.NewRun(w.Plan, penalty.SSE{}, w.Store)
			run.RunToCompletion()
		}
	})
	b.Run("masterlist", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w.Plan.Exact(w.Store)
		}
	})
	b.Run("roundrobin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rr, err := core.NewRoundRobin(vectors, w.Store)
			if err != nil {
				b.Fatal(err)
			}
			rr.RunToCompletion()
		}
	})
}

// BenchmarkAblationStore compares array- vs hash-backed coefficient storage
// under the same exact evaluation.
func BenchmarkAblationStore(b *testing.B) {
	w := sharedBenchWorkload(b)
	hat, err := w.Dist.Transform(w.Config.Filter)
	if err != nil {
		b.Fatal(err)
	}
	arr := storage.NewArrayStore(hat)
	hash := storage.NewHashStoreFromDense(hat, 0)
	b.Run("array", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w.Plan.Exact(arr)
		}
	})
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w.Plan.Exact(hash)
		}
	})
}

// BenchmarkAblationFilters compares plan size and construction time across
// filters on a COUNT batch (all filters support degree 0). Longer filters
// buy vanishing moments at the cost of denser query rewritings.
func BenchmarkAblationFilters(b *testing.B) {
	schema := dataset.MustSchema([]string{"x", "y", "z"}, []int{32, 32, 16})
	ranges, err := query.RandomPartition(schema, 32, 5)
	if err != nil {
		b.Fatal(err)
	}
	batch := query.CountBatch(schema, ranges)
	for _, f := range []*wavelet.Filter{wavelet.Haar, wavelet.Db4, wavelet.Db6, wavelet.Db8} {
		b.Run(f.Name, func(b *testing.B) {
			var plan *core.Plan
			for i := 0; i < b.N; i++ {
				plan, err = core.NewWaveletPlan(batch, f)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(plan.DistinctCoefficients()), "distinct")
			b.ReportMetric(float64(plan.TotalQueryCoefficients()), "total")
		})
	}
}

// BenchmarkAblationDecomposition compares query-rewriting density and time
// under the standard (dimension-by-dimension) and nonstandard
// (simultaneous-dimension) decompositions — quantifying why the paper uses
// the standard form for query approximation.
func BenchmarkAblationDecomposition(b *testing.B) {
	schema := dataset.MustSchema([]string{"x", "y"}, []int{256, 256})
	r, err := query.NewRange(schema, []int{25, 32}, []int{204, 224})
	if err != nil {
		b.Fatal(err)
	}
	q := query.Count(schema, r)
	strategies := []linstrat.Strategy{
		linstrat.Wavelet{Filter: wavelet.Haar},
		linstrat.NonstandardWavelet{Filter: wavelet.Haar},
	}
	for _, s := range strategies {
		b.Run(s.Name(), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				vec, err := s.RewriteQuery(q)
				if err != nil {
					b.Fatal(err)
				}
				size = len(vec)
			}
			b.ReportMetric(float64(size), "coefficients")
		})
	}
}

// BenchmarkUpdateCost compares incremental single-tuple maintenance against
// a full bulk re-transform — the update-efficiency claim of Section 2.1.
func BenchmarkUpdateCost(b *testing.B) {
	schema := dataset.MustSchema([]string{"x", "y", "z"}, []int{64, 64, 32})
	dist := dataset.Uniform(schema, 10000, 3)
	store := storage.NewHashStore()
	coords := []int{10, 20, 5}
	b.Run("insert-incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := core.InsertTuple(store, wavelet.Db4, schema.Sizes, coords); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild-bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dist.Transform(wavelet.Db4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBlockVsCoefficient exercises the block-aware extension: fetching
// whole simulated disk blocks ordered by aggregate importance versus
// coefficient-at-a-time retrieval. The metric of interest is the block-read
// count.
func BenchmarkBlockVsCoefficient(b *testing.B) {
	w := sharedBenchWorkload(b)
	hat, err := w.Dist.Transform(w.Config.Filter)
	if err != nil {
		b.Fatal(err)
	}
	bs := storage.NewBlockStore(storage.NewArrayStore(hat), 64)
	var blockReads float64
	b.Run("block", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bs.ResetStats()
			run := core.NewBlockRun(w.Plan, penalty.SSE{}, bs)
			run.RunToCompletion()
			blockReads = float64(bs.BlockReads())
		}
		b.ReportMetric(blockReads, "block-reads")
		b.ReportMetric(float64(w.Plan.DistinctCoefficients()), "coeff-reads")
	})
	b.Run("coefficient", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run := core.NewRun(w.Plan, penalty.SSE{}, w.Store)
			run.RunToCompletion()
		}
	})
}

func sizeName(kind string, n int) string {
	switch {
	case n >= 1<<20:
		return kind + "/n=1M"
	case n >= 1<<18:
		return kind + "/n=256k"
	case n >= 1<<14:
		return kind + "/n=16k"
	default:
		return kind + "/n=1k"
	}
}
