// Package repro is a Go implementation of "How to Evaluate Multiple
// Range-Sum Queries Progressively" (Schmidt & Shahabi, PODS 2002): the
// Batch-Biggest-B algorithm for exact and progressive evaluation of batches
// of polynomial range-sum queries over a wavelet-transformed data frequency
// distribution, with user-supplied structural error penalty functions.
//
// The typical flow:
//
//	schema, _ := repro.NewSchema([]string{"age", "salary"}, []int{64, 64})
//	dist := repro.NewDistribution(schema)
//	dist.AddTuple([]int{33, 55})            // … load data …
//	db, _ := repro.NewDatabase(dist, repro.Db4)
//
//	ranges, _ := repro.RandomPartition(schema, 512, 1)
//	batch, _ := repro.SumBatch(schema, ranges, "salary")
//	plan, _ := db.Plan(batch)
//
//	run := db.NewRun(plan, repro.SSE())
//	run.StepN(128)                           // progressive estimates …
//	_ = run.Estimates()
//	run.RunToCompletion()                    // … now exact
//
// Everything the paper's evaluation exercises is reachable from this
// package: alternative filters (Haar…Db12), cursored/Laplacian/Lp penalties,
// non-wavelet linear strategies (prefix sums, identity), incremental tuple
// updates, round-robin and block-at-a-time progressions, and the moment
// batches behind range AVERAGE/VARIANCE/COVARIANCE.
package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/mvcc"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/wavelet"
)

// Database owns the materialized view Δ̂: the wavelet transform of a data
// frequency distribution held in constant-access storage, plus the filter
// that produced it. Reads are safe for concurrent use when the store is
// (see ConcurrentSafe); concurrent writers additionally require EnableMVCC.
type Database struct {
	schema  *Schema
	filter  *Filter
	store   storage.Updatable
	tuples  atomic.Int64
	windows [][2]float64

	// mvcc is non-nil after EnableMVCC: db.store is the MVCC store and every
	// write publishes a version (mvcc.go). version is the write counter of
	// plain (non-MVCC) databases.
	mvcc    *mvcc.Store
	version atomic.Uint64
	// mvccCoalesce tracks the coalescing layer instance inside the MVCC
	// base wrap chain (rebuilt at compaction) for CoalescingStats;
	// mvccInstrumented makes EnableInstrumentation idempotent under MVCC.
	mvccCoalesce     *coalesceHolder
	mvccInstrumented bool

	// coord is non-nil for databases opened with OpenDistributed: the store
	// is a shard fan-out coordinator and the view is read-only.
	coord *dist.CoordinatorStore
	// layout is non-nil for databases opened with OpenLayout: the store
	// serves a read-only persistent .wvls file (see layout.go).
	layout *layoutStore
	// cachedMass, when non-nil, short-circuits CoefficientMass — set at open
	// time for views that either cannot enumerate their coefficients
	// (distributed coordinators) or already persisted the mass (layouts).
	cachedMass *float64

	// prepared is the lazily-enabled prepared-plan registry (prepared.go);
	// preparedMu makes EnablePreparedPlans idempotent under concurrency.
	preparedMu sync.Mutex
	prepared   *PlanRegistry
}

// StoreKind selects the physical organization of the coefficient store.
type StoreKind int

const (
	// StoreHash keeps only nonzero coefficients in a hash table (default).
	StoreHash StoreKind = iota
	// StoreArray keeps the full dense coefficient array.
	StoreArray
	// StoreSharded keeps nonzero coefficients hash-partitioned across N lock
	// shards with an atomic retrieval counter — the concurrent deployment
	// shape: many sessions, runs or HTTP requests can retrieve (and update)
	// in parallel without contending on one mutex.
	StoreSharded
)

// DatabaseOption configures NewDatabase.
type DatabaseOption func(*dbConfig)

type dbConfig struct {
	kind StoreKind
}

// WithStore selects the coefficient store implementation.
func WithStore(kind StoreKind) DatabaseOption {
	return func(c *dbConfig) { c.kind = kind }
}

// NewDatabase bulk-loads a distribution: one dense separable transform, then
// the coefficients move into the selected store.
func NewDatabase(dist *Distribution, filter *Filter, opts ...DatabaseOption) (*Database, error) {
	if dist == nil || filter == nil {
		return nil, fmt.Errorf("repro: nil distribution or filter")
	}
	cfg := dbConfig{kind: StoreHash}
	for _, o := range opts {
		o(&cfg)
	}
	hat, err := dist.Transform(filter)
	if err != nil {
		return nil, err
	}
	var store storage.Updatable
	switch cfg.kind {
	case StoreHash:
		store = storage.NewHashStoreFromDense(hat, 0)
	case StoreArray:
		store = storage.NewArrayStore(hat)
	case StoreSharded:
		store = storage.NewShardedStoreFromDense(hat, 0, 0)
	default:
		return nil, fmt.Errorf("repro: unknown store kind %d", cfg.kind)
	}
	db := &Database{schema: dist.Schema, filter: filter, store: store}
	db.tuples.Store(dist.TupleCount)
	return db, nil
}

// NewSparseDatabase bulk-loads a sparse distribution without materializing
// the dense domain — the path for schemas whose cell count dwarfs the
// record count. Fill-in compounds per dimension (roughly (L·log N)^d per
// record), so prefer short filters (Haar for COUNT workloads) on
// high-dimensional huge domains.
func NewSparseDatabase(dist *SparseDistribution, filter *Filter) (*Database, error) {
	if dist == nil || filter == nil {
		return nil, fmt.Errorf("repro: nil distribution or filter")
	}
	hat, err := dist.TransformSparse(filter)
	if err != nil {
		return nil, err
	}
	store := storage.NewHashStore()
	for k, v := range hat {
		store.Add(k, v)
	}
	db := &Database{schema: dist.Schema, filter: filter, store: store}
	db.tuples.Store(dist.TupleCount)
	return db, nil
}

// NewEmptyDatabase creates a database with no tuples, to be populated
// incrementally with Insert.
func NewEmptyDatabase(schema *Schema, filter *Filter, opts ...DatabaseOption) (*Database, error) {
	if schema == nil || filter == nil {
		return nil, fmt.Errorf("repro: nil schema or filter")
	}
	cfg := dbConfig{kind: StoreHash}
	for _, o := range opts {
		o(&cfg)
	}
	var store storage.Updatable
	switch cfg.kind {
	case StoreHash:
		store = storage.NewHashStore()
	case StoreArray:
		store = storage.NewArrayStore(make([]float64, schema.Cells()))
	case StoreSharded:
		store = storage.NewShardedStore(0)
	default:
		return nil, fmt.Errorf("repro: unknown store kind %d", cfg.kind)
	}
	return &Database{schema: schema, filter: filter, store: store}, nil
}

// Schema returns the database schema.
func (db *Database) Schema() *Schema { return db.schema }

// Filter returns the wavelet filter of the stored transform.
func (db *Database) Filter() *Filter { return db.filter }

// ErrReadOnly is the typed refusal of writes against read-only views
// (distributed coordinators, layout files); match it with errors.Is. The
// wrapped message carries the view-specific hint for how to write instead.
var ErrReadOnly = errors.New("repro: database view is read-only")

// readOnlyErr reports why the view cannot accept tuple updates, or nil for
// an ordinary mutable database. The returned error wraps ErrReadOnly.
func (db *Database) readOnlyErr(op string) error {
	switch {
	case db.coord != nil:
		return fmt.Errorf("%w: distributed database; %s on the shard side before partitioning", ErrReadOnly, op)
	case db.layout != nil:
		return fmt.Errorf("%w: layout-backed database; %s against the source database and rebuild the layout", ErrReadOnly, op)
	}
	return nil
}

// Insert adds one tuple, updating O((L·log N)^d) stored coefficients. It is
// a one-tuple Apply: all writes share the batched code path (and publish a
// version under MVCC); bulk loads should batch tuples into a WriteBatch
// instead.
func (db *Database) Insert(coords []int) error {
	_, err := db.Apply(context.Background(), NewWriteBatch().Add(coords, 1))
	return err
}

// Delete removes one occurrence of a tuple (a one-tuple Apply). The caller
// is responsible for the tuple actually being present.
func (db *Database) Delete(coords []int) error {
	_, err := db.Apply(context.Background(), NewWriteBatch().Remove(coords))
	return err
}

// TupleCount returns the number of tuples the view represents.
func (db *Database) TupleCount() int64 {
	if db.mvcc != nil {
		return int64(math.Round(db.mvcc.TupleWeight()))
	}
	return db.tuples.Load()
}

// SetWindows records the per-attribute quantization windows mapping bins
// back to raw units (for example from CSV ingestion); they are persisted by
// Save and surfaced by Windows after LoadDatabase.
func (db *Database) SetWindows(windows [][2]float64) error {
	if windows != nil && len(windows) != db.schema.NumDims() {
		return fmt.Errorf("repro: %d windows for %d attributes", len(windows), db.schema.NumDims())
	}
	db.windows = windows
	return nil
}

// Windows returns the recorded quantization windows, or nil if none.
func (db *Database) Windows() [][2]float64 { return db.windows }

// Save serializes the database (schema, filter identity, transformed
// coefficients) to w in the versioned, checksummed binary format of
// internal/codec. The stored view can be reopened with LoadDatabase.
func (db *Database) Save(w io.Writer) error {
	if db.mvcc != nil {
		// Pin one version so the tuple count and the enumerated coefficients
		// describe the same state even while writes land.
		sn := db.mvcc.Snapshot()
		defer sn.Release()
		return codec.Write(w, db.schema, db.filter.Name,
			int64(math.Round(sn.TupleWeight())), sn.View().(storage.Enumerable), db.windows)
	}
	if !storage.IsEnumerable(db.store) {
		return fmt.Errorf("repro: store does not support enumeration")
	}
	return codec.Write(w, db.schema, db.filter.Name, db.tuples.Load(), db.store.(storage.Enumerable), db.windows)
}

// LoadDatabase deserializes a database previously written with Save.
// The filter is resolved from the built-in set by name.
func LoadDatabase(r io.Reader) (*Database, error) {
	snap, err := codec.Read(r)
	if err != nil {
		return nil, err
	}
	filter, err := wavelet.ByName(snap.FilterName)
	if err != nil {
		return nil, fmt.Errorf("repro: stored database uses %w", err)
	}
	db := &Database{
		schema:  snap.Schema,
		filter:  filter,
		store:   snap.Store(),
		windows: snap.Windows,
	}
	db.tuples.Store(snap.TupleCount)
	return db, nil
}

// Retrievals returns the number of coefficient retrievals performed against
// the store since the last ResetStats — the paper's I/O cost measure.
func (db *Database) Retrievals() int64 { return db.store.Retrievals() }

// ResetStats zeroes the retrieval counter.
func (db *Database) ResetStats() { db.store.ResetStats() }

// NonzeroCoefficients returns the size of the stored transform.
func (db *Database) NonzeroCoefficients() int { return db.store.NonzeroCount() }

// CoefficientMass returns K = Σ_ξ |Δ̂[ξ]|, the constant in the Theorem 1
// worst-case bound K^α·ι_p(ξ′) reported by Run.WorstCaseBound. Enumerating
// the store does not count as retrievals. It returns an error when the
// store cannot enumerate its coefficients — previously this case silently
// reported a mass of 0, which turns every worst-case bound into a useless 0.
func (db *Database) CoefficientMass() (float64, error) {
	// Views opened from persisted or remote state carry their mass from open
	// time: distributed coordinators assemble it from the shards' metadata
	// (each shard sums its partition in ascending key order, the coordinator
	// sums shard order), layouts persist it in the file header. Both are
	// deterministic and equal to the single-node enumeration.
	if db.cachedMass != nil {
		return *db.cachedMass, nil
	}
	// MVCC stores keep the mass as exact incremental bookkeeping (open-time
	// enumeration plus per-Apply increments, carried across compactions), so
	// bounds stay deterministic under live writes.
	if db.mvcc != nil {
		return db.mvcc.Mass(), nil
	}
	if !storage.IsEnumerable(db.store) {
		return 0, fmt.Errorf("repro: store %T does not support enumeration; coefficient mass unknown", db.store)
	}
	enum := db.store.(storage.Enumerable)
	var mass float64
	enum.ForEachNonzero(func(_ int, v float64) bool {
		if v < 0 {
			mass -= v
		} else {
			mass += v
		}
		return true
	})
	return mass, nil
}

// Plan rewrites a batch into its merged master list under the database's
// filter. The plan is immutable and reusable across runs and penalties —
// including concurrently: any number of goroutines may start runs on one
// plan, which all share its cached per-penalty retrieval schedule.
func (db *Database) Plan(batch Batch) (*Plan, error) {
	for _, q := range batch {
		if !q.Schema.Equal(db.schema) {
			return nil, fmt.Errorf("repro: query schema does not match database schema")
		}
	}
	return core.NewWaveletPlan(batch, db.filter)
}

// PlanParallel is Plan with an explicit rewrite worker count (≤0 selects
// GOMAXPROCS). The resulting plan is identical for every worker count.
func (db *Database) PlanParallel(batch Batch, workers int) (*Plan, error) {
	for _, q := range batch {
		if !q.Schema.Equal(db.schema) {
			return nil, fmt.Errorf("repro: query schema does not match database schema")
		}
	}
	return core.NewWaveletPlanParallel(batch, db.filter, workers)
}

// evalStore returns the read surface evaluation paths bind to: for MVCC
// databases the current head snapshot (immutable — a run or exact pass over
// it is bit-stable however many writes land mid-drain), otherwise the store
// itself. Each evaluation entry point captures it once.
func (db *Database) evalStore() storage.Store {
	if db.mvcc != nil {
		return db.mvcc.View()
	}
	return db.store
}

// Exact evaluates a plan exactly with one retrieval per distinct
// coefficient.
func (db *Database) Exact(plan *Plan) []float64 { return plan.Exact(db.evalStore()) }

// ExactParallel evaluates a plan exactly using batched retrievals and up to
// workers goroutines (≤0 selects GOMAXPROCS); results are bit-identical to
// Exact. Retrievals run concurrently only when the store is concurrent-safe
// (StoreSharded); otherwise the fetch is a single batched call.
func (db *Database) ExactParallel(plan *Plan, workers int) []float64 {
	return plan.ExactParallel(db.evalStore(), workers)
}

// ConcurrentSafe reports whether the database's coefficient store may be
// retrieved from concurrently (true for StoreSharded). When it is, separate
// goroutines can each create and advance their own runs against this
// database; the HTTP server uses this to serve requests in parallel.
func (db *Database) ConcurrentSafe() bool {
	_, ok := db.store.(storage.Concurrent)
	return ok
}

// EnsureConcurrent makes the database safe for concurrent retrieval: stores
// that are not already concurrent-safe are wrapped in a single-mutex
// storage.ConcurrentStore (the sharded store from repro.StoreSharded is the
// scalable choice; this is the universal fallback). Afterwards
// ConcurrentSafe reports true. Idempotent.
func (db *Database) EnsureConcurrent() {
	if !db.ConcurrentSafe() {
		db.store = storage.NewConcurrentStore(db.store)
	}
}

// CoalesceStats reports cross-run I/O sharing: of the coefficients
// requested through the coalescing layer, how many were physically fetched
// and how many were served by joining another run's in-flight fetch.
type CoalesceStats = storage.CoalesceStats

// EnableCoalescing inserts a singleflight layer over the (concurrent-safe)
// store so runs advancing in parallel — e.g. under the internal scheduler —
// fetch each overlapping coefficient once: the paper's intra-batch I/O
// sharing extended across concurrent batches. Call EnsureConcurrent first
// for stores that are not already concurrent-safe. After this call,
// Retrievals counts physical fetches only; per-run retrieval counts are
// unchanged. Idempotent.
func (db *Database) EnableCoalescing() error {
	if db.mvcc != nil {
		// Under MVCC the coalescing layer wraps the immutable base of every
		// view (the MVCC base chain is always concurrent-safe); overlay
		// layers are in-memory maps with nothing to coalesce. Compaction
		// rebuilds the chain over the new base, so CoalescingStats counts
		// since the last compaction.
		if db.mvccCoalesce != nil {
			return nil
		}
		holder := new(coalesceHolder)
		db.mvcc.WrapBase(func(s storage.Store) storage.Store {
			cs := storage.NewCoalescingStore(s.(storage.Concurrent))
			holder.Store(cs)
			return cs
		})
		db.mvccCoalesce = holder
		return nil
	}
	if _, ok := db.store.(*storage.CoalescingStore); ok {
		return nil
	}
	c, ok := db.store.(storage.Concurrent)
	if !ok {
		return fmt.Errorf("repro: coalescing requires a concurrent-safe store (call EnsureConcurrent or use StoreSharded)")
	}
	db.store = storage.NewCoalescingStore(c)
	return nil
}

// CoalescingStats returns the coalescing counters; ok is false when
// EnableCoalescing has not been called. Under MVCC the counters cover the
// window since the last compaction (the layer is rebuilt over each new
// base).
func (db *Database) CoalescingStats() (stats CoalesceStats, ok bool) {
	if db.mvccCoalesce != nil {
		if cs := db.mvccCoalesce.Load(); cs != nil {
			return cs.Stats(), true
		}
		return CoalesceStats{}, false
	}
	cs, ok := db.store.(*storage.CoalescingStore)
	if !ok {
		return CoalesceStats{}, false
	}
	return cs.Stats(), true
}

// NewRun starts a progressive Batch-Biggest-B run under the penalty. The
// retrieval order is served from the plan's schedule cache, so after the
// first run under a given penalty this is cheap — repeated and concurrent
// runs on one plan share a single precomputed schedule.
func (db *Database) NewRun(plan *Plan, pen Penalty) *Run {
	return core.NewRun(plan, pen, db.evalStore())
}

// NewRoundRobinRun starts the unshared per-query baseline for the batch
// (Section 2.2's "s instances of the single query evaluation technique").
func (db *Database) NewRoundRobinRun(batch Batch) (*RoundRobin, error) {
	vectors, err := batchVectors(batch, db.filter)
	if err != nil {
		return nil, err
	}
	return core.NewRoundRobin(vectors, db.evalStore())
}

func batchVectors(batch Batch, f *Filter) ([]sparseVector, error) {
	vectors := make([]sparseVector, len(batch))
	for i, q := range batch {
		v, err := q.Coefficients(f)
		if err != nil {
			return nil, err
		}
		vectors[i] = v
	}
	return vectors, nil
}

// Ensure facade types line up with the internal engine.
var (
	_ = dataset.NewDistribution
	_ = query.Count
	_ = wavelet.Haar
)
