package repro

import (
	"math"
	"testing"
)

func TestNewSparseDatabaseHugeDomain(t *testing.T) {
	// A domain whose dense array would be 2+ GB, loaded sparsely with Haar
	// and queried exactly.
	schema, err := NewSchema(
		[]string{"a", "b", "c", "d"}, []int{256, 256, 64, 64})
	if err != nil {
		t.Fatal(err)
	} // 268M cells
	sd := NewSparseDistribution(schema)
	coordsList := [][]int{
		{10, 20, 5, 5}, {10, 20, 5, 5}, {200, 100, 60, 3}, {255, 255, 63, 63},
	}
	for _, c := range coordsList {
		sd.AddTuple(c)
	}
	db, err := NewSparseDatabase(sd, Haar)
	if err != nil {
		t.Fatal(err)
	}
	if db.TupleCount() != 4 {
		t.Fatalf("TupleCount = %d", db.TupleCount())
	}
	r, err := NewRange(schema, []int{0, 0, 0, 0}, []int{127, 255, 63, 63})
	if err != nil {
		t.Fatal(err)
	}
	batch := CountBatch(schema, []Range{r, FullDomain(schema)})
	plan, err := db.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	got := db.Exact(plan)
	if math.Abs(got[0]-2) > 1e-6 || math.Abs(got[1]-4) > 1e-6 {
		t.Fatalf("counts = %v, want [2, 4]", got)
	}
}

func TestNewSparseDatabaseMatchesDense(t *testing.T) {
	cfg := DefaultTemperatureConfig()
	cfg.Records = 3000
	cfg.LatBins, cfg.LonBins, cfg.AltBins, cfg.TimeBins, cfg.TempBins = 8, 8, 4, 8, 8
	dense, err := Temperature(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := TemperatureSparse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dbDense, err := NewDatabase(dense, Db4)
	if err != nil {
		t.Fatal(err)
	}
	dbSparse, err := NewSparseDatabase(sp, Db4)
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := RandomPartition(dbDense.Schema(), 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := SumBatch(dbDense.Schema(), ranges, "temperature")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := dbDense.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := dbSparse.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	a := dbDense.Exact(p1)
	b := dbSparse.Exact(p2)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-6*(1+math.Abs(a[i])) {
			t.Fatalf("query %d: dense %g sparse %g", i, a[i], b[i])
		}
	}
}

func TestNewSparseDatabaseValidation(t *testing.T) {
	if _, err := NewSparseDatabase(nil, Haar); err == nil {
		t.Error("nil distribution should fail")
	}
	schema, _ := NewSchema([]string{"x"}, []int{8})
	if _, err := NewSparseDatabase(NewSparseDistribution(schema), nil); err == nil {
		t.Error("nil filter should fail")
	}
}
