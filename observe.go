package repro

import (
	"repro/internal/storage"
)

// This file is the facade of the observability layer. The metrics registry,
// tracing and logging primitives live in internal/obs; the HTTP handler's
// Observe method (internal/server) points every layer's instrumentation at
// one registry. The database-side hook below adds retrieval timing.

// EnableInstrumentation wraps the database's store so every retrieval —
// single and batched, fallible and infallible — is timed into the observed
// metrics registry (wvq_storage_get_seconds, wvq_storage_batchget_seconds).
// With no registry observed the wrapper is a pass-through: one atomic load
// and a branch per call, no clock reads, no allocation.
//
// Layering: call after InjectFaults and EnableRetries (so the timings cover
// the full fallible path, retries included) and before the store is handed
// to the HTTP server, whose coalescing layer goes on top — coalescing
// counters then report shared fetches while the timing wrapper reports the
// physical retrievals underneath. Idempotent.
func (db *Database) EnableInstrumentation() {
	if db.mvcc != nil {
		// Under MVCC the timing wrapper goes around the immutable base of
		// every view — it times the physical tier, not the in-memory overlay.
		if db.mvccInstrumented {
			return
		}
		db.mvccInstrumented = true
		db.mvcc.WrapBase(func(s storage.Store) storage.Store {
			return storage.WrapInstrumented(s)
		})
		return
	}
	if storage.IsInstrumented(db.store) {
		return
	}
	db.store = storage.WrapInstrumented(db.store).(storage.Updatable)
}
