package repro

import (
	"context"

	"repro/internal/obs"
	"repro/internal/storage"
)

// This file is the facade of the observability layer. The metrics registry,
// tracing and logging primitives live in internal/obs; the HTTP handler's
// Observe method (internal/server) points every layer's instrumentation at
// one registry. The database-side hook below adds retrieval timing.

// EnableInstrumentation wraps the database's store so every retrieval —
// single and batched, fallible and infallible — is timed into the observed
// metrics registry (wvq_storage_get_seconds, wvq_storage_batchget_seconds).
// With no registry observed the wrapper is a pass-through: one atomic load
// and a branch per call, no clock reads, no allocation.
//
// Layering: call after InjectFaults and EnableRetries (so the timings cover
// the full fallible path, retries included) and before the store is handed
// to the HTTP server, whose coalescing layer goes on top — coalescing
// counters then report shared fetches while the timing wrapper reports the
// physical retrievals underneath. Idempotent.
func (db *Database) EnableInstrumentation() {
	if db.mvcc != nil {
		// Under MVCC the timing wrapper goes around the immutable base of
		// every view — it times the physical tier, not the in-memory overlay.
		if db.mvccInstrumented {
			return
		}
		db.mvccInstrumented = true
		db.mvcc.WrapBase(func(s storage.Store) storage.Store {
			return storage.WrapInstrumented(s)
		})
		return
	}
	if storage.IsInstrumented(db.store) {
		return
	}
	db.store = storage.WrapInstrumented(db.store).(storage.Updatable)
}

// Re-exported diagnostics vocabulary: a QueryProfile is the per-run EXPLAIN
// ANALYZE accumulator (plan source and build time, queue delay, per-StepBatch
// timings, per-tier retrieval attribution, per-shard rows, bound trajectory);
// ProfileSnapshot is its JSON shape — the `profile` section of an ?explain=1
// response and the /debug/profiles ring entry.
type (
	QueryProfile    = obs.QueryProfile
	ProfileSnapshot = obs.ProfileSnapshot
)

// ProfileRun arms a run's EXPLAIN ANALYZE profile: it creates a QueryProfile
// identified by id (conventionally a request ID) and label, attaches it to
// the run so every StepBatchCtx records a step row, and returns a derived
// context that carries the profile to the storage tiers underneath
// (coalescing, layout, MVCC, shard coordinator). Drive the run with
// StepBatchCtx on the returned context, then call Finish and Snapshot on the
// profile. Works for runs from Database.NewRun and Session.NewRun alike; the
// off path is untouched — a run without a profile pays one nil check per
// batch.
func ProfileRun(ctx context.Context, run *Run, id, label string) (context.Context, *QueryProfile) {
	p := obs.NewQueryProfile(id, label)
	run.AttachProfile(p)
	return obs.WithProfile(ctx, p), p
}
