package repro

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/storage/layout"
)

func layoutFixture(t *testing.T) (*Database, *Plan, string) {
	t.Helper()
	schema, err := NewSchema([]string{"x", "y", "m"}, []int{16, 16, 8})
	if err != nil {
		t.Fatal(err)
	}
	dist := UniformData(schema, 3000, 11)
	db, err := NewDatabase(dist, Db4)
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := RandomPartition(schema, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := SumBatch(schema, ranges, "m")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.wvls")
	return db, plan, path
}

// TestLayoutDrainBitIdentity is the acceptance criterion: a progressive
// drain over the layout store produces estimates bit-identical (==) to the
// in-memory drain at every intermediate step, and the worst-case bounds
// agree because the persisted mass equals the enumerated mass.
func TestLayoutDrainBitIdentity(t *testing.T) {
	db, plan, path := layoutFixture(t)
	if err := db.SaveLayout(path, LayoutOptions{
		HotCount:  64,
		BlockSize: 32,
		Families:  []LayoutFamily{{Label: "sse", Plan: plan, Penalty: SSE()}},
	}); err != nil {
		t.Fatalf("SaveLayout: %v", err)
	}
	ldb, err := OpenLayout(path)
	if err != nil {
		t.Fatalf("OpenLayout: %v", err)
	}
	defer func() { _ = ldb.Close() }()

	if !ldb.LayoutBacked() || db.LayoutBacked() {
		t.Fatal("LayoutBacked misreports")
	}
	if !ldb.ConcurrentSafe() {
		t.Fatal("layout store must be concurrent-safe")
	}
	if ldb.TupleCount() != db.TupleCount() {
		t.Fatalf("TupleCount = %d, want %d", ldb.TupleCount(), db.TupleCount())
	}
	if ldb.NonzeroCoefficients() != db.NonzeroCoefficients() {
		t.Fatalf("NonzeroCoefficients = %d, want %d", ldb.NonzeroCoefficients(), db.NonzeroCoefficients())
	}
	memMass, err := db.CoefficientMass()
	if err != nil {
		t.Fatal(err)
	}
	layoutMass, err := ldb.CoefficientMass()
	if err != nil {
		t.Fatal(err)
	}
	// The layout persists the mass summed in ascending-key order; the hash
	// store enumerates in map order. Float addition is order-sensitive, so
	// equality here is up to summation order, not bitwise.
	if math.Abs(layoutMass-memMass) > 1e-12*memMass {
		t.Fatalf("CoefficientMass = %v, want %v", layoutMass, memMass)
	}

	// Schemas compare by value, so the original plan serves both databases.
	memRun := db.NewRun(plan, SSE())
	layoutRun := ldb.NewRun(plan, SSE())
	step := 0
	for !memRun.Done() {
		if layoutRun.Done() {
			t.Fatal("layout run finished early")
		}
		memRun.Step()
		layoutRun.Step()
		step++
		me, le := memRun.Estimates(), layoutRun.Estimates()
		for q := range me {
			if le[q] != me[q] {
				t.Fatalf("step %d query %d: layout %v != memory %v (must be bit-identical)", step, q, le[q], me[q])
			}
		}
		if lb, mb := layoutRun.WorstCaseBound(memMass), memRun.WorstCaseBound(memMass); lb != mb {
			t.Fatalf("step %d: worst-case bound %v != %v", step, lb, mb)
		}
	}
	if !layoutRun.Done() {
		t.Fatal("layout run not done when memory run is")
	}

	// Batched drain too — StepBatch is the server's stepping shape.
	memRun2 := db.NewRun(plan, SSE())
	layoutRun2 := ldb.NewRun(plan, SSE())
	for !memRun2.Done() {
		memRun2.StepBatch(7)
		layoutRun2.StepBatch(7)
		me, le := memRun2.Estimates(), layoutRun2.Estimates()
		for q := range me {
			if le[q] != me[q] {
				t.Fatalf("batched drain diverged at %d retrieved", memRun2.Retrieved())
			}
		}
	}

	// Exact evaluation matches bit-for-bit as well.
	me, le := db.Exact(plan), ldb.Exact(plan)
	for q := range me {
		if le[q] != me[q] {
			t.Fatalf("Exact query %d: %v != %v", q, le[q], me[q])
		}
	}

	// The recorded family must cover the hot region perfectly: the layout
	// was built from this exact schedule.
	stats, ok := ldb.LayoutStats()
	if !ok {
		t.Fatal("LayoutStats not available")
	}
	if len(stats.Families) != 1 || stats.Families[0].Label != "sse" || stats.Families[0].HotCoverage != 1 {
		t.Fatalf("Families = %+v, want the sse family at coverage 1", stats.Families)
	}
	if stats.HotHits == 0 || stats.HintHits == 0 {
		t.Fatalf("stats = %+v: schedule-order drain must hit the hot tier and the sequential hint", stats)
	}
}

// TestLayoutReadOnly pins the mutation guards and stats plumbing.
func TestLayoutReadOnly(t *testing.T) {
	db, _, path := layoutFixture(t)
	if err := db.SaveLayout(path, LayoutOptions{}); err != nil {
		t.Fatal(err)
	}
	ldb, err := OpenLayout(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ldb.Close() }()
	if err := ldb.Insert([]int{1, 1, 1}); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("Insert on layout db = %v, want read-only error", err)
	}
	if err := ldb.Delete([]int{1, 1, 1}); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("Delete on layout db = %v, want read-only error", err)
	}
	if _, ok := db.LayoutStats(); ok {
		t.Fatal("LayoutStats on an in-memory db must report !ok")
	}
	// A layout-backed database can still be re-persisted: the store
	// enumerates, so Save (WVDB) and SaveLayout both work from it.
	path2 := filepath.Join(t.TempDir(), "again.wvls")
	if err := ldb.SaveLayout(path2, LayoutOptions{}); err != nil {
		t.Fatalf("SaveLayout from a layout-backed db: %v", err)
	}
	ldb2, err := OpenLayout(path2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ldb2.Close() }()
	if ldb2.NonzeroCoefficients() != ldb.NonzeroCoefficients() {
		t.Fatal("re-persisted layout lost coefficients")
	}
}

// TestLayoutDegradedRun pins the PR 4 degradation contract end to end: a
// corrupted cold block turns into per-key skips — the run completes,
// reports Degraded, and the skipped importance is accounted — instead of a
// crash or a silent wrong answer.
func TestLayoutDegradedRun(t *testing.T) {
	db, plan, path := layoutFixture(t)
	if err := db.SaveLayout(path, LayoutOptions{HotCount: 32, BlockSize: 16}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the last cold block's payload byte.
	ls, err := layout.Open(path, layout.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ls.Blocks() == 0 {
		t.Fatal("fixture produced no cold blocks")
	}
	ref := ls.BlockExtent(ls.Blocks() - 1)
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], ref.Off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x55
	if _, err := f.WriteAt(b[:], ref.Off); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	ldb, err := OpenLayout(path)
	if err != nil {
		t.Fatalf("OpenLayout after cold-block corruption should succeed: %v", err)
	}
	defer func() { _ = ldb.Close() }()
	run := ldb.NewRun(plan, SSE())
	if err := run.RunToCompletionCtx(context.Background()); err != nil {
		t.Fatalf("RunToCompletionCtx: %v", err)
	}
	if !run.Degraded() || run.SkippedCount() == 0 {
		t.Fatalf("run over corrupt block: Degraded=%v SkippedCount=%d, want a degraded run", run.Degraded(), run.SkippedCount())
	}
	if got := run.SkippedImportance(); !(got > 0) || math.IsNaN(got) {
		t.Fatalf("SkippedImportance = %v", got)
	}
}

// TestOpenLayoutRejectsBareFile pins that a layout without embedded
// metadata cannot be opened as a database.
func TestOpenLayoutRejectsBareFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bare.wvls")
	if err := layout.Write(path, []int{1, 2}, []float64{3, 4}, layout.WriteOptions{Cells: 8}); err != nil {
		t.Fatal(err)
	}
	if ldb, err := OpenLayout(path); err == nil {
		_ = ldb.Close()
		t.Fatal("OpenLayout accepted a layout with no metadata")
	} else if !strings.Contains(err.Error(), "metadata") {
		t.Fatalf("error %v should mention metadata", err)
	}
}

// TestLayoutQuantizedNotIdentical pins that quantization is honest: the
// flag round-trips and estimates are close but not required to be
// bit-identical.
func TestLayoutQuantizedNotIdentical(t *testing.T) {
	db, plan, path := layoutFixture(t)
	if err := db.SaveLayout(path, LayoutOptions{HotCount: 16, Quantize: true}); err != nil {
		t.Fatal(err)
	}
	ldb, err := OpenLayout(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ldb.Close() }()
	stats, _ := ldb.LayoutStats()
	if !stats.Quantized {
		t.Fatal("Quantized flag lost")
	}
	me, le := db.Exact(plan), ldb.Exact(plan)
	for q := range me {
		if math.Abs(le[q]-me[q]) > 1e-3*(1+math.Abs(me[q])) {
			t.Fatalf("quantized exact query %d: %v too far from %v", q, le[q], me[q])
		}
	}
}
