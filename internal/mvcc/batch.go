// Package mvcc is the live-update tier: a multi-version coefficient store
// in which writers publish immutable coefficient-delta *layers* and readers
// evaluate against immutable snapshots, so long progressive drains stay
// bit-stable while update batches land concurrently.
//
// The write unit is a Batch of tuple deltas. Applying a batch transforms the
// whole delta distribution in one sparse pass — per-dimension impulse
// transforms (the transform-of-deltas machinery of internal/wavelet/lazy.go)
// are memoized across the batch and coincident tuples merge before the
// tensor product runs — and publishes one layer holding the *merged absolute
// values* of every touched coefficient. Reads overlay layers newest-first
// over a frozen base store; a background compactor folds layers into a fresh
// base and swaps it in atomically. See DESIGN.md §16.
package mvcc

import (
	"fmt"

	"repro/internal/sparse"
	"repro/internal/wavelet"
)

// Batch accumulates tuple-frequency deltas to be applied atomically: the
// batch either publishes as one layer (one version) or fails as a whole.
// Weights are frequency deltas — Add(coords, 1) inserts one occurrence,
// Add(coords, -1) (or Remove) deletes one, and fractional or bulk weights
// (Add(coords, 42)) are legal. A Batch is not safe for concurrent use; build
// it on one goroutine and hand it to Apply.
type Batch struct {
	ops []op
}

type op struct {
	coords []int
	weight float64
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Add records a frequency delta for the tuple at coords. The coordinate
// slice is copied, so the caller may reuse it. Returns the batch for
// chaining.
func (b *Batch) Add(coords []int, weight float64) *Batch {
	c := make([]int, len(coords))
	copy(c, coords)
	b.ops = append(b.ops, op{coords: c, weight: weight})
	return b
}

// Remove records the deletion of one occurrence of the tuple at coords —
// shorthand for Add(coords, -1). The caller is responsible for the tuple
// actually being present; the transform cannot tell.
func (b *Batch) Remove(coords []int) *Batch { return b.Add(coords, -1) }

// Len returns the number of tuple operations recorded.
func (b *Batch) Len() int { return len(b.ops) }

// TupleWeight returns the net tuple-count delta of the batch (Σ weights).
func (b *Batch) TupleWeight() float64 {
	var w float64
	for _, o := range b.ops {
		w += o.weight
	}
	return w
}

// Reset empties the batch for reuse, keeping its backing storage.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// cellKey flattens coords into the row-major cell index used for merging
// coincident tuples (same layout as dataset cell indexing: last dimension
// fastest).
func cellKey(coords, dims []int) int {
	key := 0
	for i, c := range coords {
		key = key*dims[i] + c
	}
	return key
}

// Delta computes the sparse coefficient delta of the whole batch: the
// wavelet transform of the batch's tuple-frequency deltas under filter f on
// the given power-of-two dims. Coincident tuples merge before transforming
// and per-dimension impulse transforms are computed once per distinct
// coordinate value, so a batch with repeated attribute values pays far less
// than Len() single-tuple transforms. The result maps flat coefficient key →
// delta and is deterministic for a given batch content and order.
//
// A single-op batch produces exactly the per-key values of the legacy
// single-tuple path (core.InsertTuple emits the same impulse tensor
// product), so routing Insert/Delete through Delta is bit-identical to the
// old code path.
func (b *Batch) Delta(f *wavelet.Filter, dims []int) (map[int]float64, error) {
	if f == nil {
		return nil, fmt.Errorf("mvcc: nil filter")
	}
	// Merge coincident tuples in first-appearance order (deterministic).
	type cell struct {
		coords []int
		weight float64
	}
	merged := make(map[int]int, len(b.ops)) // cellKey → index into cells
	cells := make([]cell, 0, len(b.ops))
	for i, o := range b.ops {
		if len(o.coords) != len(dims) {
			return nil, fmt.Errorf("mvcc: op %d has %d coordinates for %d dimensions", i, len(o.coords), len(dims))
		}
		for d, c := range o.coords {
			if c < 0 || c >= dims[d] {
				return nil, fmt.Errorf("mvcc: op %d coordinate %d = %d outside [0,%d)", i, d, c, dims[d])
			}
		}
		k := cellKey(o.coords, dims)
		if j, ok := merged[k]; ok {
			cells[j].weight += o.weight
		} else {
			merged[k] = len(cells)
			cells = append(cells, cell{coords: o.coords, weight: o.weight})
		}
	}
	// One sparse pass over the merged cells: memoized per-dimension impulse
	// factors, tensor product accumulated into the delta map. Each cell's
	// tensor product emits every flat key at most once, so per-key
	// accumulation order follows cell order and the result is deterministic.
	memo := make([]map[int]sparse.Vector, len(dims))
	for d := range memo {
		memo[d] = make(map[int]sparse.Vector)
	}
	factors := make([]sparse.Vector, len(dims))
	delta := make(map[int]float64, len(cells)*4)
	for _, c := range cells {
		if c.weight == 0 {
			continue // cancelled in-batch (insert+delete of one tuple)
		}
		for d, x := range c.coords {
			fac, ok := memo[d][x]
			if !ok {
				m, err := f.ImpulseTransform(x, dims[d])
				if err != nil {
					return nil, err
				}
				fac = sparse.Vector(m)
				memo[d][x] = fac
			}
			factors[d] = fac
		}
		w := c.weight
		if err := sparse.TensorProduct(factors, dims, func(key int, val float64) {
			delta[key] += w * val
		}); err != nil {
			return nil, err
		}
	}
	return delta, nil
}
