package mvcc

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/wavelet"
)

// testDims is a small 2-D power-of-two domain shared by the tests.
var testDims = []int{8, 8}

// seedTuples is the deterministic base dataset: inserted into the seed store
// with the legacy single-tuple path before the MVCC store opens over it.
var seedTuples = [][]int{
	{0, 0}, {1, 3}, {2, 5}, {3, 1}, {4, 7}, {5, 2}, {6, 6}, {7, 4}, {1, 3},
}

// newSeedStore builds a HashStore holding the transform of seedTuples.
func newSeedStore(t *testing.T, f *wavelet.Filter) *storage.HashStore {
	t.Helper()
	st := storage.NewHashStore()
	for _, c := range seedTuples {
		if err := core.InsertTuple(st, f, testDims, c); err != nil {
			t.Fatalf("seeding: %v", err)
		}
	}
	return st
}

// newTestStore opens an MVCC store over a fresh seed with auto-compaction off
// (tests trigger compaction explicitly for determinism).
func newTestStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	cfg.DisableAutoCompact = true
	s, err := New(newSeedStore(t, wavelet.Haar), wavelet.Haar, testDims, int64(len(seedTuples)), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// dump enumerates every nonzero coefficient of st into a map.
func dump(st storage.Enumerable) map[int]float64 {
	m := make(map[int]float64)
	st.ForEachNonzero(func(k int, v float64) bool {
		m[k] = v
		return true
	})
	return m
}

// allKeys returns the union of the key sets of the given maps.
func allKeys(ms ...map[int]float64) map[int]struct{} {
	keys := make(map[int]struct{})
	for _, m := range ms {
		for k := range m {
			keys[k] = struct{}{}
		}
	}
	return keys
}

// TestSingleOpApplyMatchesInsertTuple checks the bit-identity claim that lets
// the facade route Insert/Delete through Apply: a one-op batch must publish
// exactly the coefficients the legacy single-tuple incremental path writes.
func TestSingleOpApplyMatchesInsertTuple(t *testing.T) {
	s := newTestStore(t, Config{})
	legacy := newSeedStore(t, wavelet.Haar)

	coords := [][]int{{3, 3}, {0, 7}, {3, 3}}
	for _, c := range coords {
		if _, err := s.Apply(context.Background(), NewBatch().Add(c, 1)); err != nil {
			t.Fatalf("Apply: %v", err)
		}
		if err := core.InsertTuple(legacy, wavelet.Haar, testDims, c); err != nil {
			t.Fatalf("InsertTuple: %v", err)
		}
	}
	if _, err := s.Apply(context.Background(), NewBatch().Remove(coords[0])); err != nil {
		t.Fatalf("Apply remove: %v", err)
	}
	if err := core.DeleteTuple(legacy, wavelet.Haar, testDims, coords[0]); err != nil {
		t.Fatalf("DeleteTuple: %v", err)
	}

	got, want := dump(s), dump(legacy)
	for k := range allKeys(got, want) {
		if got[k] != want[k] {
			t.Fatalf("key %d: mvcc %v, legacy %v (must be bit-identical)", k, got[k], want[k])
		}
	}
}

// TestBatchMatchesSequentialInserts checks that one multi-tuple batch is
// numerically equivalent to applying its tuples one at a time (association
// of the float additions differs, so tolerance rather than bit equality).
func TestBatchMatchesSequentialInserts(t *testing.T) {
	batched := newTestStore(t, Config{})
	oneByOne := newTestStore(t, Config{})

	rng := rand.New(rand.NewSource(7))
	b := NewBatch()
	for i := 0; i < 200; i++ {
		c := []int{rng.Intn(testDims[0]), rng.Intn(testDims[1])}
		w := float64(rng.Intn(5) - 2)
		if w == 0 {
			w = 1
		}
		b.Add(c, w)
		if _, err := oneByOne.Apply(context.Background(), NewBatch().Add(c, w)); err != nil {
			t.Fatalf("sequential Apply: %v", err)
		}
	}
	v, err := batched.Apply(context.Background(), b)
	if err != nil {
		t.Fatalf("batched Apply: %v", err)
	}
	if v != 1 {
		t.Fatalf("batched store at version %d, want 1", v)
	}
	if oneByOne.Head() != 200 {
		t.Fatalf("sequential store at version %d, want 200", oneByOne.Head())
	}

	got, want := dump(batched), dump(oneByOne)
	for k := range allKeys(got, want) {
		if diff := math.Abs(got[k] - want[k]); diff > 1e-9 {
			t.Fatalf("key %d: batched %v, sequential %v (diff %g)", k, got[k], want[k], diff)
		}
	}
	if bw, sw := batched.TupleWeight(), oneByOne.TupleWeight(); bw != sw {
		t.Fatalf("tuple weight: batched %v, sequential %v", bw, sw)
	}
}

// TestZeroShadowsBase checks the delete path: a coefficient driven to zero by
// a layer must read as zero even though the base still holds the old nonzero.
// A one-tuple dataset makes the cancellation exact (v + (-v) == 0 in IEEE for
// identical magnitudes), so the zeros must be literal, not just tiny.
func TestZeroShadowsBase(t *testing.T) {
	seed := storage.NewHashStore()
	coords := []int{1, 3}
	if err := core.InsertTuple(seed, wavelet.Haar, testDims, coords); err != nil {
		t.Fatalf("seeding: %v", err)
	}
	s, err := New(seed, wavelet.Haar, testDims, 1, Config{DisableAutoCompact: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	before := dump(s)
	if len(before) == 0 {
		t.Fatalf("seed transform is empty; test is vacuous")
	}

	if _, err := s.Apply(context.Background(), NewBatch().Remove(coords)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for k := range before {
		if got := s.Get(k); got != 0 {
			t.Fatalf("key %d reads %v after full delete, want exactly 0", k, got)
		}
		// The shadowed base value is still there underneath — the zero is the
		// layer speaking, not the base.
		if base := seed.Get(k); base == 0 {
			t.Fatalf("base key %d lost its value; shadowing is vacuous", k)
		}
	}
	after := dump(s)
	if len(after) != 0 {
		t.Fatalf("enumeration still sees %d nonzeros after full delete", len(after))
	}
	if nz := s.NonzeroCount(); nz != 0 {
		t.Fatalf("NonzeroCount = %d after full delete, want 0", nz)
	}
	if w := s.TupleWeight(); w != 0 {
		t.Fatalf("TupleWeight = %v after full delete, want 0", w)
	}
}

// TestSnapshotIsolation checks that a pinned snapshot keeps serving its
// captured state bit-stably while the head moves on.
func TestSnapshotIsolation(t *testing.T) {
	s := newTestStore(t, Config{})
	sn := s.Snapshot()
	defer sn.Release()
	pinnedState := dump(sn.View().(storage.Enumerable))
	pinnedMass := sn.Mass()

	for i := 0; i < 20; i++ {
		if _, err := s.Apply(context.Background(), NewBatch().Add([]int{i % 8, (3 * i) % 8}, 2)); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
	if s.Head() != 20 {
		t.Fatalf("head at %d, want 20", s.Head())
	}
	if sn.Version() != 0 {
		t.Fatalf("snapshot drifted to version %d", sn.Version())
	}
	for k, v := range pinnedState {
		if got := sn.View().Get(k); got != v {
			t.Fatalf("pinned key %d moved: %v → %v", k, v, got)
		}
	}
	if sn.Mass() != pinnedMass {
		t.Fatalf("pinned mass moved: %v → %v", pinnedMass, sn.Mass())
	}
	// And the head genuinely changed.
	if s.Mass() == pinnedMass {
		t.Fatalf("head mass unchanged after 20 applies")
	}
}

// TestCompactionEquivalence checks that compaction is invisible to readers:
// same values (bit-identical), same version, mass, tuple weight and nonzero
// count, and views captured before the swap keep serving.
func TestCompactionEquivalence(t *testing.T) {
	s := newTestStore(t, Config{})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		b := NewBatch()
		for j := 0; j < 5; j++ {
			b.Add([]int{rng.Intn(8), rng.Intn(8)}, float64(1+rng.Intn(3)))
		}
		if _, err := s.Apply(context.Background(), b); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
	preView := s.View()
	pre := dump(s)
	preStats := s.Stats()
	if preStats.Layers == 0 {
		t.Fatalf("no layers before compaction; test is vacuous")
	}
	mass, tuples, nz := s.Mass(), s.TupleWeight(), s.NonzeroCount()

	if err := s.Compact(context.Background()); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	post := dump(s)
	postStats := s.Stats()
	if postStats.Layers != 0 {
		t.Fatalf("%d layers survive a quiescent compaction", postStats.Layers)
	}
	if postStats.Version != preStats.Version {
		t.Fatalf("compaction moved version %d → %d", preStats.Version, postStats.Version)
	}
	for k := range allKeys(pre, post) {
		if pre[k] != post[k] {
			t.Fatalf("key %d: %v before, %v after compaction (must be bit-identical)", k, pre[k], post[k])
		}
	}
	if s.Mass() != mass || s.TupleWeight() != tuples || s.NonzeroCount() != nz {
		t.Fatalf("compaction changed bookkeeping: mass %v→%v tuples %v→%v nonzero %d→%d",
			mass, s.Mass(), tuples, s.TupleWeight(), nz, s.NonzeroCount())
	}
	// The pre-compaction view is immutable and still serves.
	for k, v := range pre {
		if got := preView.(*view).Get(k); got != v {
			t.Fatalf("pre-compaction view key %d moved: %v → %v", k, v, got)
		}
	}
}

// TestCompactionKeepsConcurrentLayers checks the fold-race path: layers
// published while the fold runs survive the base swap.
func TestCompactionKeepsConcurrentLayers(t *testing.T) {
	s := newTestStore(t, Config{})
	if _, err := s.Apply(context.Background(), NewBatch().Add([]int{1, 1}, 1)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	// Simulate a racing Apply by folding a stale head: grab the compaction
	// lock path directly via Compact while publishing in between is not
	// possible deterministically from outside, so approximate by applying
	// after the fold's snapshot through the public API: Compact folds the
	// head it loads, so apply, compact, apply, compact and check state.
	if err := s.Compact(context.Background()); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if _, err := s.Apply(context.Background(), NewBatch().Add([]int{2, 2}, 3)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	want := dump(s)
	if err := s.Compact(context.Background()); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	got := dump(s)
	for k := range allKeys(want, got) {
		if want[k] != got[k] {
			t.Fatalf("key %d: %v before, %v after second compaction", k, want[k], got[k])
		}
	}
	if s.Stats().Compactions != 2 {
		t.Fatalf("compactions = %d, want 2", s.Stats().Compactions)
	}
}

// TestRetentionAndPinning checks the SnapshotAt window: Retain bounds the
// addressable history, pinned versions survive the trim, and aged-out
// versions report ErrVersionNotRetained.
func TestRetentionAndPinning(t *testing.T) {
	s := newTestStore(t, Config{Retain: 2})
	pinned := s.Snapshot() // pins version 0
	for i := 0; i < 6; i++ {
		if _, err := s.Apply(context.Background(), NewBatch().Add([]int{i % 8, i % 8}, 1)); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
	// Version 0 is pinned, so the trim stalls there and everything newer
	// stays addressable too (the ring only drops from the oldest end).
	sn0, err := s.SnapshotAt(0)
	if err != nil {
		t.Fatalf("pinned version 0 aged out: %v", err)
	}
	sn0.Release()
	pinned.Release()
	pinned.Release() // idempotent

	// Unpinned now: the next publish trims the ring down to Retain+1.
	if _, err := s.Apply(context.Background(), NewBatch().Add([]int{0, 1}, 1)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if _, err := s.SnapshotAt(0); !errors.Is(err, ErrVersionNotRetained) {
		t.Fatalf("SnapshotAt(0) = %v, want ErrVersionNotRetained", err)
	}
	head := s.Head()
	sn, err := s.SnapshotAt(head - 2)
	if err != nil {
		t.Fatalf("SnapshotAt(head-2): %v", err)
	}
	if sn.Version() != head-2 {
		t.Fatalf("SnapshotAt returned version %d, want %d", sn.Version(), head-2)
	}
	sn.Release()
	if p := s.Stats().Pinned; p != 0 {
		t.Fatalf("pinned = %d after releases, want 0", p)
	}
}

// TestMassAndNonzeroBookkeeping cross-checks the incremental mass and nonzero
// accounting against a full re-enumeration after a messy update history.
func TestMassAndNonzeroBookkeeping(t *testing.T) {
	s := newTestStore(t, Config{})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		b := NewBatch()
		for j := 0; j < 4; j++ {
			b.Add([]int{rng.Intn(8), rng.Intn(8)}, float64(rng.Intn(7)-3))
		}
		if _, err := s.Apply(context.Background(), b); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
	var mass float64
	nz := 0
	s.ForEachNonzero(func(_ int, v float64) bool {
		mass += math.Abs(v)
		nz++
		return true
	})
	if diff := math.Abs(s.Mass() - mass); diff > 1e-9*(1+mass) {
		t.Fatalf("incremental mass %v, enumerated %v", s.Mass(), mass)
	}
	// Nonzero bookkeeping counts exact float zeros; cancellation to a tiny
	// residual is still nonzero, so the counts must agree exactly.
	if s.NonzeroCount() != nz {
		t.Fatalf("incremental nonzero %d, enumerated %d", s.NonzeroCount(), nz)
	}
}

// TestApplyValidation checks that malformed batches fail atomically: the
// error is reported and nothing publishes.
func TestApplyValidation(t *testing.T) {
	s := newTestStore(t, Config{})
	before := s.Head()
	cases := []*Batch{
		NewBatch().Add([]int{1}, 1),                        // wrong arity
		NewBatch().Add([]int{8, 0}, 1),                     // out of range
		NewBatch().Add([]int{0, -1}, 1),                    // negative
		NewBatch().Add([]int{1, 1}, 1).Add([]int{9, 9}, 1), // second op bad
	}
	for i, b := range cases {
		if _, err := s.Apply(context.Background(), b); err == nil {
			t.Fatalf("case %d: bad batch applied without error", i)
		}
	}
	if s.Head() != before {
		t.Fatalf("failed batches moved the head %d → %d", before, s.Head())
	}
	// Empty and nil batches are no-ops returning the current version.
	if v, err := s.Apply(context.Background(), nil); err != nil || v != before {
		t.Fatalf("nil batch: (%d, %v), want (%d, nil)", v, err, before)
	}
	if v, err := s.Apply(context.Background(), NewBatch()); err != nil || v != before {
		t.Fatalf("empty batch: (%d, %v), want (%d, nil)", v, err, before)
	}
}

// TestDirectAddPanics pins the API contract that single-coefficient writes
// cannot bypass versioning.
func TestDirectAddPanics(t *testing.T) {
	s := newTestStore(t, Config{})
	defer func() {
		if recover() == nil {
			t.Fatalf("direct Add did not panic")
		}
	}()
	s.Add(1, 1)
}

// countingStore wraps a store and counts Get calls, standing in for the
// robustness layers WrapBase composes over the base.
type countingStore struct {
	storage.Store
	n atomic.Int64
}

func (c *countingStore) Get(key int) float64 {
	c.n.Add(1)
	return c.Store.Get(key)
}

func (c *countingStore) ConcurrentSafe() {}

// TestWrapBaseUndo checks that WrapBase routes base reads (and only base
// reads) through the wrap, and that the undo removes it again.
func TestWrapBaseUndo(t *testing.T) {
	s := newTestStore(t, Config{})
	var cs *countingStore
	undo := s.WrapBase(func(inner storage.Store) storage.Store {
		cs = &countingStore{Store: inner}
		return cs
	})
	if cs == nil {
		t.Fatalf("wrap not invoked on install")
	}
	// A layered key resolves in the overlay without touching the base.
	if _, err := s.Apply(context.Background(), NewBatch().Add([]int{5, 5}, 1)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	layerKey := -1
	for _, l := range s.head.Load().layers {
		for k := range l.vals {
			layerKey = k
			break
		}
	}
	base := cs.n.Load()
	s.Get(layerKey)
	if cs.n.Load() != base {
		t.Fatalf("overlay read reached the base wrap")
	}
	// An unlayered base key goes through the wrap.
	s.head.Load().rawBase.(storage.Enumerable).ForEachNonzero(func(k int, _ float64) bool {
		if _, inLayer := s.head.Load().layers[0].vals[k]; !inLayer {
			s.Get(k)
			return false
		}
		return true
	})
	if cs.n.Load() == base {
		t.Fatalf("base read did not reach the wrap")
	}
	undo()
	after := cs.n.Load()
	s.head.Load().rawBase.(storage.Enumerable).ForEachNonzero(func(k int, _ float64) bool {
		s.Get(k)
		return false
	})
	if cs.n.Load() != after {
		t.Fatalf("undone wrap still sees reads")
	}
}

// TestConcurrentDrainWhileApply is the race check: captured views must serve
// bit-stable values while writers publish and the auto-compactor folds
// underneath them. Run with -race.
func TestConcurrentDrainWhileApply(t *testing.T) {
	s, err := New(newSeedStore(t, wavelet.Haar), wavelet.Haar, testDims,
		int64(len(seedTuples)), Config{MaxLayers: 4, Retain: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	stable := dump(s) // version-0 state every captured reader must keep seeing

	var readersWG, writersWG sync.WaitGroup
	readers := 4
	writers := 2
	stop := make(chan struct{})
	errs := make(chan error, readers+writers)

	view := s.View() // captured before any write
	for r := 0; r < readers; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			keys := make([]int, 0, len(stable))
			for k := range stable {
				keys = append(keys, k)
			}
			dst := make([]float64, len(keys))
			for i := 0; i < 200; i++ {
				if err := view.BatchGetCtx(context.Background(), keys, dst); err != nil {
					errs <- err
					return
				}
				for j, k := range keys {
					if dst[j] != stable[k] {
						errs <- errors.New("captured view drifted during concurrent applies")
						return
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(seed int64) {
			defer writersWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				b := NewBatch()
				for j := 0; j < 3; j++ {
					b.Add([]int{rng.Intn(8), rng.Intn(8)}, 1)
				}
				if _, err := s.Apply(context.Background(), b); err != nil {
					errs <- err
					return
				}
			}
		}(int64(w + 1))
	}

	// Readers finishing (or failing) is the signal to stop the writers.
	readersWG.Wait()
	close(stop)
	writersWG.Wait()
	s.WaitCompactions()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
