package mvcc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/wavelet"
)

// Version identifies one published snapshot state. Version 0 is the state
// the store was opened with; every successful Apply increments it.
type Version uint64

// ErrVersionNotRetained reports a SnapshotAt request for a version that was
// never published or has aged out of the retention window.
var ErrVersionNotRetained = errors.New("mvcc: version not retained")

// Default compaction and retention policy.
const (
	// DefaultMaxLayers triggers compaction when the overlay grows past this
	// many layers (each read probes every layer before the base).
	DefaultMaxLayers = 16
	// DefaultMaxLayerKeys triggers compaction when the total overlay entries
	// across layers exceed this count, whatever the layer count.
	DefaultMaxLayerKeys = 1 << 17
	// DefaultRetain is how many historical versions stay addressable by
	// SnapshotAt behind the head.
	DefaultRetain = 8
)

// Config tunes the store's compaction and retention policy. The zero value
// selects every default.
type Config struct {
	// MaxLayers bounds the overlay depth before a background compaction is
	// triggered (≤0 selects DefaultMaxLayers).
	MaxLayers int
	// MaxLayerKeys bounds the total overlay entries across layers before a
	// background compaction is triggered (≤0 selects DefaultMaxLayerKeys).
	MaxLayerKeys int
	// Retain is how many versions behind the head stay addressable by
	// SnapshotAt (≤0 selects DefaultRetain). Pinned versions are never
	// dropped while pinned.
	Retain int
	// DisableAutoCompact turns the background compactor off; compaction then
	// runs only through explicit Compact calls. Deterministic tests use this.
	DisableAutoCompact bool
	// NewBase builds the target store of a compaction (and must support
	// enumeration); nil selects a lock-sharded in-memory store.
	NewBase func() storage.Updatable
}

// Layer is one immutable published write batch: the merged *absolute*
// coefficient values of every key the batch touched. Values merge
// newest-wins over older layers and the base; an explicit zero shadows a
// nonzero base coefficient (a delete). Storing absolutes rather than deltas
// makes overlay reads one lookup (no summing across layers) and makes
// compaction a verbatim copy — bit-identical by construction.
type Layer struct {
	version Version
	vals    map[int]float64
}

// Version returns the version this layer published.
func (l *Layer) Version() Version { return l.version }

// Len returns the number of coefficients the layer overrides.
func (l *Layer) Len() int { return len(l.vals) }

// view is one immutable snapshot state: a frozen base store plus the ordered
// overlay (newest first). Views are never mutated after publication — the
// head pointer swaps to a new view instead — so any reader holding one (a
// progressive run, a pinned snapshot, a session cache) observes bit-stable
// coefficients forever, whatever lands after it.
type view struct {
	version Version
	// rawBase is the unwrapped, enumerable base (compaction source);
	// base/fbase are the serving wrap chain over it (concurrency shim plus
	// whatever WrapBase installed: chaos, retries, instrumentation,
	// coalescing).
	rawBase storage.Store
	base    storage.Store
	fbase   storage.FallibleStore
	// layers is the overlay, newest first.
	layers    []*Layer
	layerKeys int
	// tuples is the net tuple weight; mass is Σ|coefficient| (the Theorem-1
	// constant K), maintained incrementally and carried verbatim across
	// compaction so bounds are stable; nonzero counts nonzero coefficients.
	tuples  float64
	mass    float64
	nonzero int
	// retr is the owning store's shared retrieval counter; pins counts
	// explicit retention pins and is shared between re-publications of the
	// same version (base re-wraps, compaction).
	retr *atomic.Int64
	pins *atomic.Int64
}

// lookup resolves key through the overlay; ok is false when the base must be
// consulted.
func (v *view) lookup(key int) (float64, bool) {
	for _, l := range v.layers {
		if val, ok := l.vals[key]; ok {
			return val, true
		}
	}
	return 0, false
}

// Get implements storage.Store.
func (v *view) Get(key int) float64 {
	v.retr.Add(1)
	if val, ok := v.lookup(key); ok {
		return val
	}
	return v.base.Get(key)
}

// GetBatch implements storage.BatchGetter. The infallible fetch never
// returns an error, so resolve's is discarded.
func (v *view) GetBatch(keys []int, dst []float64) {
	v.retr.Add(int64(len(keys)))
	_ = v.resolve(keys, dst, func(subKeys []int, subDst []float64, _ []int) error {
		storage.BatchGet(v.base, subKeys, subDst)
		return nil
	})
}

// GetCtx implements storage.FallibleStore.
func (v *view) GetCtx(ctx context.Context, key int) (float64, error) {
	v.retr.Add(1)
	if val, ok := v.lookup(key); ok {
		return val, nil
	}
	return v.fbase.GetCtx(ctx, key)
}

// BatchGetCtx implements storage.FallibleStore: overlay hits are resolved
// in-memory (they cannot fail), the remainder takes one batched fallible
// base read, and partial base failures are remapped to the caller's
// positions — so retry, coalescing and degraded-run semantics compose
// through the overlay unchanged.
func (v *view) BatchGetCtx(ctx context.Context, keys []int, dst []float64) error {
	v.retr.Add(int64(len(keys)))
	base := 0
	err := v.resolve(keys, dst, func(subKeys []int, subDst []float64, subIdx []int) error {
		base = len(subKeys)
		err := v.fbase.BatchGetCtx(ctx, subKeys, subDst)
		var be *storage.BatchError
		if errors.As(err, &be) {
			remapped := make([]storage.KeyError, len(be.Failed))
			for i, ke := range be.Failed {
				remapped[i] = storage.KeyError{Index: subIdx[ke.Index], Key: ke.Key, Err: ke.Err}
			}
			return &storage.BatchError{Failed: remapped}
		}
		return err
	})
	// EXPLAIN ANALYZE attribution: keys answered by the snapshot's write
	// layers vs delegated to the base store. Nil profile = no-op.
	obs.ProfileFrom(ctx).AddMVCC(len(keys)-base, base)
	return err
}

// resolve fills dst from the overlay and hands the overlay misses to fetch
// as one sub-batch (subIdx maps sub-batch position → caller position).
func (v *view) resolve(keys []int, dst []float64, fetch func(subKeys []int, subDst []float64, subIdx []int) error) error {
	var subKeys []int
	var subIdx []int
	for i, k := range keys {
		if val, ok := v.lookup(k); ok {
			dst[i] = val
		} else {
			subKeys = append(subKeys, k)
			subIdx = append(subIdx, i)
		}
	}
	if len(subKeys) == 0 {
		return nil
	}
	subDst := make([]float64, len(subKeys))
	err := fetch(subKeys, subDst, subIdx)
	// On a partial failure the unlisted positions still hold valid values
	// (the FallibleStore contract); copy everything back and let the caller
	// interpret the remapped error.
	for i, j := range subIdx {
		dst[j] = subDst[i]
	}
	return err
}

// lookupUncounted reads current coefficient values for Apply's merge without
// counting retrievals (maintenance reads, like Updatable.Add, are not part
// of the paper's I/O cost measure).
func (v *view) lookupUncounted(ctx context.Context, keys []int, dst []float64) error {
	return v.resolve(keys, dst, func(subKeys []int, subDst []float64, _ []int) error {
		return v.fbase.BatchGetCtx(ctx, subKeys, subDst)
	})
}

// Retrievals implements storage.Store (shared across every view of the
// owning store).
func (v *view) Retrievals() int64 { return v.retr.Load() }

// ResetStats implements storage.Store.
func (v *view) ResetStats() { v.retr.Store(0) }

// NonzeroCount implements storage.Store.
func (v *view) NonzeroCount() int { return v.nonzero }

// ConcurrentSafe implements storage.Concurrent: views are immutable and the
// base is behind a concurrency shim, so any number of goroutines may read.
func (v *view) ConcurrentSafe() {}

// Enumerable implements the wrapper capability check.
func (v *view) Enumerable() bool { return true }

// ForEachNonzero implements storage.Enumerable: overlay keys newest-wins
// first, then the base's keys not shadowed by any layer. Enumeration order
// is unspecified (map order), matching the in-memory stores.
func (v *view) ForEachNonzero(fn func(key int, value float64) bool) {
	seen := make(map[int]struct{}, v.layerKeys)
	for _, l := range v.layers {
		for k, val := range l.vals {
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			if val != 0 {
				if !fn(k, val) {
					return
				}
			}
		}
	}
	v.rawBase.(storage.Enumerable).ForEachNonzero(func(k int, val float64) bool {
		if _, shadowed := seen[k]; shadowed {
			return true
		}
		return fn(k, val)
	})
}

var _ storage.FallibleStore = (*view)(nil)
var _ storage.BatchGetter = (*view)(nil)
var _ storage.Enumerable = (*view)(nil)

// Store is the multi-version coefficient store. Reads through the Store
// itself resolve the head snapshot per call (an atomic pointer load);
// evaluation paths that must stay bit-stable across a drain capture one view
// with View or pin one with Snapshot/SnapshotAt. Writers (Apply, Compact,
// WrapBase) serialize on an internal mutex and never block readers.
type Store struct {
	filter *wavelet.Filter
	dims   []int
	cfg    Config

	head       atomic.Pointer[view]
	retrievals atomic.Int64

	// mu serializes writers and guards retained/baseWraps.
	mu       sync.Mutex
	retained []*view // oldest → newest, includes the head's version
	wraps    []baseWrap
	nextWrap int

	// compactMu serializes compactions (manual and auto); compacting gates
	// the single-flight auto trigger.
	compactMu  sync.Mutex
	compacting atomic.Bool
	compactWG  sync.WaitGroup

	applies       atomic.Int64
	appliedTuples atomic.Int64
	appliedKeys   atomic.Int64
	compactions   atomic.Int64
	pinned        atomic.Int64
}

type baseWrap struct {
	id int
	fn func(storage.Store) storage.Store
}

// New opens an MVCC store over base, which becomes the frozen version-0
// state (it must support enumeration and is never mutated again — callers
// must stop writing to it directly). tuples seeds the tuple count the view
// represents; f and dims are the filter and per-dimension domain sizes
// batches are transformed under.
func New(base storage.Store, f *wavelet.Filter, dims []int, tuples int64, cfg Config) (*Store, error) {
	if base == nil || f == nil {
		return nil, fmt.Errorf("mvcc: nil base store or filter")
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("mvcc: no dimensions")
	}
	if !storage.IsEnumerable(base) {
		return nil, fmt.Errorf("mvcc: base store %T cannot enumerate its coefficients", base)
	}
	if cfg.MaxLayers <= 0 {
		cfg.MaxLayers = DefaultMaxLayers
	}
	if cfg.MaxLayerKeys <= 0 {
		cfg.MaxLayerKeys = DefaultMaxLayerKeys
	}
	if cfg.Retain <= 0 {
		cfg.Retain = DefaultRetain
	}
	if cfg.NewBase == nil {
		cfg.NewBase = func() storage.Updatable { return storage.NewShardedStore(0) }
	}
	s := &Store{filter: f, dims: append([]int(nil), dims...), cfg: cfg}
	var mass float64
	base.(storage.Enumerable).ForEachNonzero(func(_ int, v float64) bool {
		mass += math.Abs(v)
		return true
	})
	v0 := &view{
		version: 0,
		rawBase: base,
		tuples:  float64(tuples),
		mass:    mass,
		nonzero: base.NonzeroCount(),
		retr:    &s.retrievals,
		pins:    new(atomic.Int64),
	}
	v0.base, v0.fbase = s.applyWrapsLocked(base)
	s.head.Store(v0)
	s.retained = []*view{v0}
	s.noteHead(v0)
	return s, nil
}

// ensureConcurrent shims non-concurrent bases behind a mutex so immutable
// views can be read from any goroutine (plain stores mutate a retrieval
// counter on Get).
func ensureConcurrent(st storage.Store) storage.Store {
	if _, ok := st.(storage.Concurrent); ok {
		return st
	}
	return storage.NewConcurrentStore(st)
}

// applyWrapsLocked builds the serving chain over a raw base: concurrency
// shim innermost, then every installed wrap in installation order.
func (s *Store) applyWrapsLocked(raw storage.Store) (storage.Store, storage.FallibleStore) {
	b := ensureConcurrent(raw)
	for _, w := range s.wraps {
		b = w.fn(b)
	}
	return b, storage.AsFallible(b)
}

// WrapBase installs a wrap (fault injector, retry layer, instrumentation,
// coalescing) around the base of the current and every future view —
// overlay layers are in-memory maps and stay unwrapped. The returned undo
// removes the wrap again. Historical pinned views keep the chain they were
// published with.
func (s *Store) WrapBase(fn func(storage.Store) storage.Store) (undo func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextWrap
	s.nextWrap++
	s.wraps = append(s.wraps, baseWrap{id: id, fn: fn})
	s.republishBaseLocked()
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i := range s.wraps {
			if s.wraps[i].id == id {
				s.wraps = append(s.wraps[:i], s.wraps[i+1:]...)
				break
			}
		}
		s.republishBaseLocked()
	}
}

// republishBaseLocked swaps the head for a clone with the base chain
// rebuilt from the current wrap list. Values, version, layers and pin
// accounting are untouched.
func (s *Store) republishBaseLocked() {
	cur := s.head.Load()
	nv := &view{
		version:   cur.version,
		rawBase:   cur.rawBase,
		layers:    cur.layers,
		layerKeys: cur.layerKeys,
		tuples:    cur.tuples,
		mass:      cur.mass,
		nonzero:   cur.nonzero,
		retr:      cur.retr,
		pins:      cur.pins,
	}
	nv.base, nv.fbase = s.applyWrapsLocked(cur.rawBase)
	s.head.Store(nv)
	s.replaceRetainedLocked(nv)
}

// replaceRetainedLocked points the retention ring entry for nv.version at
// nv (re-publication of the same logical state).
func (s *Store) replaceRetainedLocked(nv *view) {
	for i := len(s.retained) - 1; i >= 0; i-- {
		if s.retained[i].version == nv.version {
			s.retained[i] = nv
			return
		}
	}
}

// Apply transforms the batch in one sparse pass, merges the resulting
// coefficient deltas with the current values, and publishes the result as a
// new immutable layer — the new head version, returned. In-flight reads and
// pinned snapshots are untouched: they keep serving the state they captured.
// An empty (or nil) batch returns the current version without publishing.
// On error nothing is published.
func (s *Store) Apply(ctx context.Context, b *Batch) (Version, error) {
	if b == nil || len(b.ops) == 0 {
		return s.head.Load().version, nil
	}
	delta, err := b.Delta(s.filter, s.dims)
	if err != nil {
		return 0, err
	}
	keys := make([]int, 0, len(delta))
	for k := range delta {
		keys = append(keys, k)
	}
	sort.Ints(keys)

	s.mu.Lock()
	cur := s.head.Load()
	old := make([]float64, len(keys))
	if err := cur.lookupUncounted(ctx, keys, old); err != nil {
		s.mu.Unlock()
		return 0, fmt.Errorf("mvcc: reading current coefficients: %w", err)
	}
	vals := make(map[int]float64, len(keys))
	mass, nonzero := cur.mass, cur.nonzero
	for i, k := range keys {
		nv := old[i] + delta[k]
		vals[k] = nv // explicit zeros stay: they shadow nonzero base values
		mass += math.Abs(nv) - math.Abs(old[i])
		switch {
		case nv != 0 && old[i] == 0:
			nonzero++
		case nv == 0 && old[i] != 0:
			nonzero--
		}
	}
	layer := &Layer{version: cur.version + 1, vals: vals}
	layers := make([]*Layer, 0, len(cur.layers)+1)
	layers = append(layers, layer)
	layers = append(layers, cur.layers...)
	nv := &view{
		version:   cur.version + 1,
		rawBase:   cur.rawBase,
		base:      cur.base,
		fbase:     cur.fbase,
		layers:    layers,
		layerKeys: cur.layerKeys + len(vals),
		tuples:    cur.tuples + b.TupleWeight(),
		mass:      mass,
		nonzero:   nonzero,
		retr:      &s.retrievals,
		pins:      new(atomic.Int64),
	}
	s.head.Store(nv)
	s.retained = append(s.retained, nv)
	s.trimLocked()
	s.mu.Unlock()

	s.applies.Add(1)
	s.appliedTuples.Add(int64(len(b.ops)))
	s.appliedKeys.Add(int64(len(vals)))
	s.noteApply(len(b.ops), len(vals))
	s.noteHead(nv)
	s.maybeCompact(nv)
	return nv.version, nil
}

// trimLocked drops versions beyond the retention window from the
// addressable ring, oldest first, stopping at the first pinned version.
// Dropped views stay alive for any reader still holding them.
func (s *Store) trimLocked() {
	for len(s.retained) > s.cfg.Retain+1 && s.retained[0].pins.Load() == 0 {
		s.retained[0] = nil
		s.retained = s.retained[1:]
	}
}

// maybeCompact starts a single-flight background compaction when the
// overlay exceeds the configured layer-count or layer-size policy.
func (s *Store) maybeCompact(v *view) {
	if s.cfg.DisableAutoCompact {
		return
	}
	if len(v.layers) <= s.cfg.MaxLayers && v.layerKeys <= s.cfg.MaxLayerKeys {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		defer s.compacting.Store(false)
		// Background compaction cannot report; failures leave the overlay in
		// place (correct, just deeper) and the next Apply re-triggers.
		_ = s.Compact(context.Background())
	}()
}

// WaitCompactions blocks until any in-flight background compaction
// finishes. Tests use it; serving code never needs to.
func (s *Store) WaitCompactions() { s.compactWG.Wait() }

// Compact folds the current overlay into a freshly built base and swaps it
// in atomically, keeping any layers published while the fold ran. The old
// base is never mutated, so in-flight readers and pinned snapshots are
// untouched; the compacted view serves bit-identical values (a verbatim
// copy of the merged floats) with identical mass, tuple count, and version.
func (s *Store) Compact(ctx context.Context) error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	start := time.Now()
	snap := s.head.Load()
	if len(snap.layers) == 0 {
		return nil
	}
	nb := s.cfg.NewBase()
	if !storage.IsEnumerable(nb) {
		return fmt.Errorf("mvcc: compaction base %T cannot enumerate", nb)
	}
	// Newest-wins fold: overlay keys first (explicit zeros simply aren't
	// written — an absent base key reads 0), then unshadowed base keys.
	seen := make(map[int]struct{}, snap.layerKeys)
	for _, l := range snap.layers {
		for k, v := range l.vals {
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			if v != 0 {
				nb.Add(k, v)
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	snap.rawBase.(storage.Enumerable).ForEachNonzero(func(k int, v float64) bool {
		if _, shadowed := seen[k]; !shadowed {
			nb.Add(k, v)
		}
		return true
	})
	if err := ctx.Err(); err != nil {
		return err
	}

	s.mu.Lock()
	cur := s.head.Load()
	// Layers published while the fold ran are a prefix (Apply prepends);
	// keep them over the new base.
	fresh := len(cur.layers) - len(snap.layers)
	layers := append([]*Layer(nil), cur.layers[:fresh]...)
	layerKeys := 0
	for _, l := range layers {
		layerKeys += len(l.vals)
	}
	nv := &view{
		version:   cur.version,
		rawBase:   nb,
		layers:    layers,
		layerKeys: layerKeys,
		tuples:    cur.tuples,
		mass:      cur.mass,
		nonzero:   cur.nonzero,
		retr:      &s.retrievals,
		pins:      cur.pins,
	}
	nv.base, nv.fbase = s.applyWrapsLocked(nb)
	s.head.Store(nv)
	s.replaceRetainedLocked(nv)
	s.mu.Unlock()

	s.compactions.Add(1)
	s.noteCompaction(time.Since(start), len(snap.layers))
	s.noteHead(nv)
	return nil
}

// View returns the current head snapshot as a read surface. The returned
// store is immutable — a progressive run or exact pass bound to it is
// bit-stable however many versions land during the drain — and stays alive
// as long as the caller references it (no pin bookkeeping; use Snapshot for
// version-addressable retention).
func (s *Store) View() storage.FallibleStore { return s.head.Load() }

// Snapshot pins the current head: the version stays addressable by
// SnapshotAt until Release, and the pinned-snapshot gauge tracks it.
func (s *Store) Snapshot() *Snapshot {
	s.mu.Lock()
	v := s.head.Load()
	v.pins.Add(1)
	s.mu.Unlock()
	s.pinned.Add(1)
	s.notePins(1)
	return &Snapshot{s: s, v: v}
}

// SnapshotAt pins the retained snapshot of a specific version, or returns
// ErrVersionNotRetained.
func (s *Store) SnapshotAt(ver Version) (*Snapshot, error) {
	s.mu.Lock()
	for _, v := range s.retained {
		if v.version == ver {
			v.pins.Add(1)
			s.mu.Unlock()
			s.pinned.Add(1)
			s.notePins(1)
			return &Snapshot{s: s, v: v}, nil
		}
	}
	s.mu.Unlock()
	return nil, fmt.Errorf("%w: version %d (head %d, %d retained)",
		ErrVersionNotRetained, ver, s.head.Load().version, s.Stats().Retained)
}

// Snapshot is a pinned, release-counted snapshot handle.
type Snapshot struct {
	s        *Store
	v        *view
	released atomic.Bool
}

// View returns the snapshot's read surface (immutable, concurrent-safe).
func (sn *Snapshot) View() storage.FallibleStore { return sn.v }

// Version returns the pinned version.
func (sn *Snapshot) Version() Version { return sn.v.version }

// TupleWeight returns the net tuple weight the snapshot represents.
func (sn *Snapshot) TupleWeight() float64 { return sn.v.tuples }

// Mass returns the snapshot's coefficient mass Σ|Δ̂[ξ]| (the Theorem-1
// constant K).
func (sn *Snapshot) Mass() float64 { return sn.v.mass }

// Nonzero returns the snapshot's nonzero coefficient count.
func (sn *Snapshot) Nonzero() int { return sn.v.nonzero }

// Release unpins the snapshot. Idempotent; the data stays readable through
// View for as long as the handle is referenced, but the version may stop
// being addressable by SnapshotAt.
func (sn *Snapshot) Release() {
	if sn == nil || !sn.released.CompareAndSwap(false, true) {
		return
	}
	sn.v.pins.Add(-1)
	sn.s.pinned.Add(-1)
	sn.s.notePins(-1)
}

// --- storage.Store / Updatable / FallibleStore on the store itself ---
//
// Reads through the Store resolve the head per call: composing wrappers
// (instrumentation, caches) and facade paths that do one-shot reads work
// unchanged. Evaluation paths needing a stable view across many reads must
// capture View()/Snapshot() instead.

// Get implements storage.Store against the current head.
func (s *Store) Get(key int) float64 { return s.head.Load().Get(key) }

// GetBatch implements storage.BatchGetter against the current head.
func (s *Store) GetBatch(keys []int, dst []float64) { s.head.Load().GetBatch(keys, dst) }

// GetCtx implements storage.FallibleStore against the current head.
func (s *Store) GetCtx(ctx context.Context, key int) (float64, error) {
	return s.head.Load().GetCtx(ctx, key)
}

// BatchGetCtx implements storage.FallibleStore against the current head.
func (s *Store) BatchGetCtx(ctx context.Context, keys []int, dst []float64) error {
	return s.head.Load().BatchGetCtx(ctx, keys, dst)
}

// Retrievals implements storage.Store: reads through every view count here.
func (s *Store) Retrievals() int64 { return s.retrievals.Load() }

// ResetStats implements storage.Store.
func (s *Store) ResetStats() { s.retrievals.Store(0) }

// NonzeroCount implements storage.Store for the current head.
func (s *Store) NonzeroCount() int { return s.head.Load().nonzero }

// Add implements storage.Updatable by refusing: a direct single-coefficient
// write would bypass versioning, snapshot isolation and the mass/nonzero
// bookkeeping. Every write goes through Apply.
func (s *Store) Add(int, float64) {
	panic("mvcc: direct Add bypasses versioning; batch writes through Apply")
}

// ConcurrentSafe implements storage.Concurrent.
func (s *Store) ConcurrentSafe() {}

// Enumerable implements the wrapper capability check.
func (s *Store) Enumerable() bool { return true }

// ForEachNonzero implements storage.Enumerable for the current head.
func (s *Store) ForEachNonzero(fn func(key int, value float64) bool) {
	s.head.Load().ForEachNonzero(fn)
}

// Mass returns the head's coefficient mass (deterministic: the open-time
// enumeration plus exact per-Apply increments, carried across compactions).
func (s *Store) Mass() float64 { return s.head.Load().mass }

// TupleWeight returns the head's net tuple weight.
func (s *Store) TupleWeight() float64 { return s.head.Load().tuples }

// Head returns the current version.
func (s *Store) Head() Version { return s.head.Load().version }

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Version is the head version (number of applies since open).
	Version Version `json:"version"`
	// Layers is the head overlay depth; LayerKeys the total overlay entries.
	Layers    int `json:"layers"`
	LayerKeys int `json:"layer_keys"`
	// Retained is how many versions SnapshotAt can address right now.
	Retained int `json:"retained"`
	// Pinned counts outstanding Snapshot handles.
	Pinned int64 `json:"pinned"`
	// Applies/AppliedTuples/AppliedKeys count published batches, their tuple
	// operations, and the coefficients they touched.
	Applies       int64 `json:"applies"`
	AppliedTuples int64 `json:"applied_tuples"`
	AppliedKeys   int64 `json:"applied_keys"`
	// Compactions counts completed base folds.
	Compactions int64 `json:"compactions"`
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	retained := len(s.retained)
	s.mu.Unlock()
	h := s.head.Load()
	return Stats{
		Version:       h.version,
		Layers:        len(h.layers),
		LayerKeys:     h.layerKeys,
		Retained:      retained,
		Pinned:        s.pinned.Load(),
		Applies:       s.applies.Load(),
		AppliedTuples: s.appliedTuples.Load(),
		AppliedKeys:   s.appliedKeys.Load(),
		Compactions:   s.compactions.Load(),
	}
}

var (
	_ storage.Updatable     = (*Store)(nil)
	_ storage.FallibleStore = (*Store)(nil)
	_ storage.BatchGetter   = (*Store)(nil)
	_ storage.Enumerable    = (*Store)(nil)
	_ storage.Concurrent    = (*Store)(nil)
)
