package mvcc

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Observability for the MVCC tier. Observe installs a metrics bundle into a
// package-level atomic pointer; stores mirror their counters into it as
// writes publish, snapshots pin, and compactions finish. With no registry
// observed every site is one atomic load plus a branch.

// mvccMetrics is the package's metric bundle, built once per Observe.
type mvccMetrics struct {
	version         *obs.Gauge
	layers          *obs.Gauge
	layerKeys       *obs.Gauge
	pinned          *obs.Gauge
	applies         *obs.Counter
	appliedTuples   *obs.Counter
	appliedKeys     *obs.Counter
	compactions     *obs.Counter
	compactedLayers *obs.Counter
	compactSeconds  *obs.Histogram
}

var mvMetrics atomic.Pointer[mvccMetrics]

// Observe points the package's instrumentation at reg. Pass nil to
// uninstall (the default state).
func Observe(reg *obs.Registry) {
	if reg == nil {
		mvMetrics.Store(nil)
		return
	}
	mvMetrics.Store(&mvccMetrics{
		version: reg.Gauge("wvq_mvcc_version",
			"Head snapshot version (applies since open)."),
		layers: reg.Gauge("wvq_mvcc_layers",
			"Overlay depth of the head snapshot."),
		layerKeys: reg.Gauge("wvq_mvcc_layer_keys",
			"Total overlay entries across the head snapshot's layers."),
		pinned: reg.Gauge("wvq_mvcc_pinned_snapshots",
			"Outstanding pinned snapshot handles."),
		applies: reg.Counter("wvq_mvcc_applies_total",
			"Write batches published as layers."),
		appliedTuples: reg.Counter("wvq_mvcc_applied_tuples_total",
			"Tuple operations across published batches."),
		appliedKeys: reg.Counter("wvq_mvcc_applied_keys_total",
			"Coefficients touched by published batches."),
		compactions: reg.Counter("wvq_mvcc_compactions_total",
			"Completed layer-fold compactions."),
		compactedLayers: reg.Counter("wvq_mvcc_compacted_layers_total",
			"Layers folded into new bases by compactions."),
		compactSeconds: reg.Histogram("wvq_mvcc_compact_seconds",
			"Latency of layer-fold compactions.", nil),
	})
}

// mvObs returns the installed bundle, or nil when observation is off.
func mvObs() *mvccMetrics { return mvMetrics.Load() }

// noteApply mirrors one published batch into the bundle.
func (s *Store) noteApply(ops, keys int) {
	if m := mvObs(); m != nil {
		m.applies.Inc()
		m.appliedTuples.Add(int64(ops))
		m.appliedKeys.Add(int64(keys))
	}
}

// noteHead publishes the head gauges after a head swap.
func (s *Store) noteHead(v *view) {
	if m := mvObs(); m != nil {
		m.version.Set(int64(v.version))
		m.layers.Set(int64(len(v.layers)))
		m.layerKeys.Set(int64(v.layerKeys))
	}
}

// notePins mirrors a pin count change.
func (s *Store) notePins(delta int64) {
	if m := mvObs(); m != nil {
		m.pinned.Add(delta)
	}
}

// noteCompaction mirrors one finished compaction.
func (s *Store) noteCompaction(d time.Duration, layers int) {
	if m := mvObs(); m != nil {
		m.compactions.Inc()
		m.compactedLayers.Add(int64(layers))
		m.compactSeconds.Observe(d.Seconds())
	}
}
