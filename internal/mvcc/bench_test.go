package mvcc

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/wavelet"
)

// benchDims is a realistically sized 2-D domain for the write benchmarks.
var benchDims = []int{256, 256}

func newBenchStore(b *testing.B) *Store {
	b.Helper()
	s, err := New(storage.NewHashStore(), wavelet.Haar, benchDims, 0, Config{})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	return s
}

// randCoords pre-generates n deterministic tuples so the RNG is off the
// measured path.
func randCoords(n int) [][]int {
	rng := rand.New(rand.NewSource(42))
	out := make([][]int, n)
	for i := range out {
		out[i] = []int{rng.Intn(benchDims[0]), rng.Intn(benchDims[1])}
	}
	return out
}

// BenchmarkApplySingleTuple measures the one-tuple-per-version write path —
// the legacy Insert cadence. b.N tuples → b.N published versions.
func BenchmarkApplySingleTuple(b *testing.B) {
	s := newBenchStore(b)
	coords := randCoords(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Apply(context.Background(), NewBatch().Add(coords[i], 1)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s.WaitCompactions()
	reportTuplesPerSec(b)
}

// BenchmarkApplyBatched measures the batched write path at several batch
// sizes: b.N tuples total, one version per batch.
func BenchmarkApplyBatched(b *testing.B) {
	for _, size := range []int{64, 1024, 8192} {
		b.Run(benchName(size), func(b *testing.B) {
			s := newBenchStore(b)
			coords := randCoords(b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for off := 0; off < b.N; off += size {
				batch := NewBatch()
				for i := off; i < off+size && i < b.N; i++ {
					batch.Add(coords[i], 1)
				}
				if _, err := s.Apply(context.Background(), batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			s.WaitCompactions()
			reportTuplesPerSec(b)
		})
	}
}

// BenchmarkReadLatencyUnderWrites measures head-snapshot read latency (p50,
// p99) while a writer sustains batched applies — the "reader p99 during
// writes" number of BENCH_ingest.json.
func BenchmarkReadLatencyUnderWrites(b *testing.B) {
	s := newBenchStore(b)
	// Preload so reads hit real data.
	pre := NewBatch()
	for _, c := range randCoords(4096) {
		pre.Add(c, 1)
	}
	if _, err := s.Apply(context.Background(), pre); err != nil {
		b.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(9))
		for {
			select {
			case <-stop:
				return
			default:
			}
			batch := NewBatch()
			for i := 0; i < 256; i++ {
				batch.Add([]int{rng.Intn(benchDims[0]), rng.Intn(benchDims[1])}, 1)
			}
			if _, err := s.Apply(context.Background(), batch); err != nil {
				return
			}
		}
	}()

	keys := make([]int, 64)
	rng := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = rng.Intn(benchDims[0] * benchDims[1])
	}
	dst := make([]float64, len(keys))
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view := s.View()
		t0 := time.Now()
		if err := view.BatchGetCtx(context.Background(), keys, dst); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	s.WaitCompactions()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
		b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
	}
}

func benchName(size int) string {
	switch {
	case size >= 1024:
		return "batch" + itoa(size/1024) + "k"
	default:
		return "batch" + itoa(size)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// reportTuplesPerSec converts the standard ns/op into an explicit
// tuples-per-second metric so the ingest comparison reads directly.
func reportTuplesPerSec(b *testing.B) {
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
	}
}
