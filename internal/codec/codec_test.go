package codec

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/storage"
)

func buildTestSnapshot(t *testing.T) (*dataset.Schema, *storage.HashStore, *bytes.Buffer) {
	t.Helper()
	schema := dataset.MustSchema([]string{"x", "y"}, []int{16, 8})
	store := storage.NewHashStore()
	rng := rand.New(rand.NewSource(401))
	for i := 0; i < 40; i++ {
		store.Add(rng.Intn(128), rng.NormFloat64())
	}
	var buf bytes.Buffer
	if err := Write(&buf, schema, "Db4", 1234, store, nil); err != nil {
		t.Fatal(err)
	}
	return schema, store, &buf
}

func TestWriteReadRoundTrip(t *testing.T) {
	schema, store, buf := buildTestSnapshot(t)
	snap, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if snap.FilterName != "Db4" || snap.TupleCount != 1234 {
		t.Fatalf("metadata wrong: %+v", snap)
	}
	if snap.Schema.NumDims() != 2 || snap.Schema.Sizes[0] != 16 || snap.Schema.Names[1] != "y" {
		t.Fatalf("schema wrong: %+v", snap.Schema)
	}
	if len(snap.Keys) != store.NonzeroCount() {
		t.Fatalf("coefficient count %d, want %d", len(snap.Keys), store.NonzeroCount())
	}
	re := snap.Store()
	store.ForEachNonzero(func(k int, v float64) bool {
		if got := re.Get(k); got != v {
			t.Fatalf("coefficient %d: %g want %g", k, got, v)
		}
		return true
	})
	_ = schema
}

func TestWriteDeterministic(t *testing.T) {
	_, store, buf1 := buildTestSnapshot(t)
	schema := dataset.MustSchema([]string{"x", "y"}, []int{16, 8})
	var buf2 bytes.Buffer
	if err := Write(&buf2, schema, "Db4", 1234, store, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("serialization not deterministic")
	}
}

func TestKeysAscending(t *testing.T) {
	_, _, buf := buildTestSnapshot(t)
	snap, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(snap.Keys); i++ {
		if snap.Keys[i] <= snap.Keys[i-1] {
			t.Fatal("keys not strictly ascending")
		}
	}
}

func TestWriteValidation(t *testing.T) {
	store := storage.NewHashStore()
	var buf bytes.Buffer
	if err := Write(&buf, nil, "Db4", 0, store, nil); err == nil {
		t.Error("nil schema should fail")
	}
	schema := dataset.MustSchema([]string{"x"}, []int{8})
	if err := Write(&buf, schema, "", 0, store, nil); err == nil {
		t.Error("empty filter name should fail")
	}
	if err := Write(&buf, schema, strings.Repeat("f", 300), 0, store, nil); err == nil {
		t.Error("overlong filter name should fail")
	}
}

// Failure injection: every kind of stream corruption must be detected.
func TestReadRejectsCorruption(t *testing.T) {
	_, _, buf := buildTestSnapshot(t)
	good := buf.Bytes()

	flip := func(pos int) []byte {
		c := append([]byte(nil), good...)
		c[pos] ^= 0xFF
		return c
	}
	cases := map[string][]byte{
		"bad magic":         flip(0),
		"bad version":       flip(4),
		"flipped body byte": flip(len(good) / 2),
		"flipped crc":       flip(len(good) - 1),
		"truncated":         good[:len(good)-7],
		"empty":             nil,
		"trailing garbage":  append(append([]byte(nil), good...), 1, 2, 3),
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

func TestReadRejectsStructuralLies(t *testing.T) {
	// A syntactically valid stream whose coefficient count exceeds the
	// domain must be rejected before allocating absurd buffers.
	schema := dataset.MustSchema([]string{"x"}, []int{4})
	store := storage.NewHashStore()
	store.Add(1, 2.5)
	var buf bytes.Buffer
	if err := Write(&buf, schema, "Haar", 1, store, nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The coefficient count field sits right before the pairs: locate it by
	// structure: 4 magic + 2 version + 1 + len("Haar") + 8 tuples + 2 dims +
	// (2 + 1 name + 4 size) = 4+2+5+8+2+7 = 28; count at [28,36).
	data[28] = 0xFF
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("inflated coefficient count not rejected")
	}
}

func TestRoundTripThroughFileStore(t *testing.T) {
	// A snapshot written from an array store and reloaded into a hash store
	// answers identically.
	schema := dataset.MustSchema([]string{"x", "y"}, []int{8, 8})
	cells := make([]float64, 64)
	rng := rand.New(rand.NewSource(11))
	for i := range cells {
		if rng.Intn(2) == 0 {
			cells[i] = rng.NormFloat64()
		}
	}
	arr := storage.NewArrayStore(cells)
	var buf bytes.Buffer
	if err := Write(&buf, schema, "Haar", 99, arr, nil); err != nil {
		t.Fatal(err)
	}
	snap, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	re := snap.Store()
	for k, v := range cells {
		if got := re.Get(k); math.Abs(got-v) != 0 {
			t.Fatalf("coefficient %d: %g want %g", k, got, v)
		}
	}
}

func TestEmptyStoreRoundTrip(t *testing.T) {
	schema := dataset.MustSchema([]string{"x"}, []int{8})
	var buf bytes.Buffer
	if err := Write(&buf, schema, "Haar", 0, storage.NewHashStore(), nil); err != nil {
		t.Fatal(err)
	}
	snap, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Keys) != 0 {
		t.Fatalf("expected empty snapshot, got %d keys", len(snap.Keys))
	}
}

func BenchmarkWrite(b *testing.B) {
	schema := dataset.MustSchema([]string{"x", "y"}, []int{64, 64})
	store := storage.NewHashStore()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		store.Add(rng.Intn(4096), rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, schema, "Db4", 1, store, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	schema := dataset.MustSchema([]string{"x", "y"}, []int{64, 64})
	store := storage.NewHashStore()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		store.Add(rng.Intn(4096), rng.NormFloat64())
	}
	var buf bytes.Buffer
	if err := Write(&buf, schema, "Db4", 1, store, nil); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWindowsRoundTrip(t *testing.T) {
	schema := dataset.MustSchema([]string{"age", "salary"}, []int{8, 8})
	store := storage.NewHashStore()
	store.Add(3, 1.0)
	windows := [][2]float64{{18, 70}, {0, 200000}}
	var buf bytes.Buffer
	if err := Write(&buf, schema, "Db4", 5, store, windows); err != nil {
		t.Fatal(err)
	}
	snap, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Windows == nil {
		t.Fatal("windows lost")
	}
	for i, w := range windows {
		if snap.Windows[i] != w {
			t.Fatalf("window %d = %v, want %v", i, snap.Windows[i], w)
		}
	}
	// Mismatched window count is rejected at write time.
	if err := Write(&bytes.Buffer{}, schema, "Db4", 5, store, [][2]float64{{0, 1}}); err == nil {
		t.Error("window count mismatch should fail")
	}
}
