package codec

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/storage"
)

// FuzzRead feeds arbitrary byte streams to the deserializer: it must never
// panic or allocate absurdly, and anything it accepts must round-trip to an
// identical byte stream (canonical form).
func FuzzRead(f *testing.F) {
	// Seed with a couple of valid streams and mutations thereof.
	schema := dataset.MustSchema([]string{"x", "y"}, []int{8, 8})
	store := storage.NewHashStore()
	store.Add(3, 1.25)
	store.Add(17, -2.5)
	var buf bytes.Buffer
	if err := Write(&buf, schema, "Db4", 42, store, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("WVDB"))
	corrupted := append([]byte(nil), buf.Bytes()...)
	corrupted[len(corrupted)/2] ^= 0x55
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: re-serialize and verify canonical round-trip.
		var out bytes.Buffer
		if err := Write(&out, snap.Schema, snap.FilterName, snap.TupleCount, snap.Store(), snap.Windows); err != nil {
			t.Fatalf("re-serialization failed: %v", err)
		}
		resnap, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(resnap.Keys) != len(snap.Keys) {
			t.Fatalf("round-trip changed coefficient count")
		}
	})
}
