// Package codec serializes a materialized view — the schema, the wavelet
// filter identity, and the sparse transformed data vector Δ̂ — to a compact,
// versioned, checksummed binary stream, so a database can be precomputed
// once and shipped or reopened by query services.
//
// Format (all integers little-endian):
//
//	magic   "WVDB"                      4 bytes
//	version uint16                      currently 2
//	filter  uint8 length + name bytes
//	tuples  int64                       total tuple count (informational)
//	dims    uint16 count, then per dim:
//	          uint16 name length + name bytes
//	          uint32 size
//	          float64 window lo, float64 window hi   (version ≥ 2;
//	            lo == hi == 0 means "no quantization window recorded")
//	coeffs  uint64 count, then per coefficient:
//	          uint64 key, float64 bits value   (strictly ascending keys)
//	crc     uint32 IEEE CRC-32 of everything above
package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/storage"
)

const (
	magic = "WVDB"
	// version 2 added per-dimension quantization windows; version-1 streams
	// are still readable (their windows read back as unset).
	version = 2
)

// Snapshot is the deserialized form of a stored database.
type Snapshot struct {
	FilterName string
	TupleCount int64
	Schema     *dataset.Schema
	// Windows holds the per-dimension quantization windows mapping bins back
	// to raw units; nil when the stream predates version 2 or none were
	// recorded.
	Windows [][2]float64
	// Keys and Values hold the nonzero entries of Δ̂ in ascending key order.
	Keys   []int
	Values []float64
}

// Write serializes a snapshot of the given store. The store's nonzero
// coefficients are written in ascending key order, so equal inputs produce
// byte-identical outputs. windows may be nil (written as all-zero windows)
// or must have one entry per dimension.
func Write(w io.Writer, schema *dataset.Schema, filterName string, tupleCount int64, store storage.Enumerable, windows [][2]float64) error {
	if schema == nil {
		return fmt.Errorf("codec: nil schema")
	}
	if len(filterName) == 0 || len(filterName) > 255 {
		return fmt.Errorf("codec: filter name length %d out of range", len(filterName))
	}
	if windows != nil && len(windows) != len(schema.Names) {
		return fmt.Errorf("codec: %d windows for %d dimensions", len(windows), len(schema.Names))
	}
	type pair struct {
		k int
		v float64
	}
	var pairs []pair
	store.ForEachNonzero(func(k int, v float64) bool {
		pairs = append(pairs, pair{k, v})
		return true
	})
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })

	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<20)

	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := writeUint16(bw, version); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(len(filterName))); err != nil {
		return err
	}
	if _, err := bw.WriteString(filterName); err != nil {
		return err
	}
	if err := writeUint64(bw, uint64(tupleCount)); err != nil {
		return err
	}
	if len(schema.Names) > math.MaxUint16 {
		return fmt.Errorf("codec: too many dimensions")
	}
	if err := writeUint16(bw, uint16(len(schema.Names))); err != nil {
		return err
	}
	for i, name := range schema.Names {
		if len(name) > math.MaxUint16 {
			return fmt.Errorf("codec: dimension name too long")
		}
		if err := writeUint16(bw, uint16(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		if schema.Sizes[i] < 0 || int64(schema.Sizes[i]) > math.MaxUint32 {
			return fmt.Errorf("codec: dimension size %d out of range", schema.Sizes[i])
		}
		if err := writeUint32(bw, uint32(schema.Sizes[i])); err != nil {
			return err
		}
		var win [2]float64
		if windows != nil {
			win = windows[i]
		}
		if err := writeUint64(bw, math.Float64bits(win[0])); err != nil {
			return err
		}
		if err := writeUint64(bw, math.Float64bits(win[1])); err != nil {
			return err
		}
	}
	if err := writeUint64(bw, uint64(len(pairs))); err != nil {
		return err
	}
	for _, p := range pairs {
		if err := writeUint64(bw, uint64(p.k)); err != nil {
			return err
		}
		if err := writeUint64(bw, math.Float64bits(p.v)); err != nil {
			return err
		}
	}
	// Flush the body through the hashing MultiWriter, then append the CRC
	// directly to the destination so it is not hashed itself.
	if err := bw.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// bodyReader reads from a buffered source and hashes exactly the bytes it
// hands out, so the checksum trailer can be read unhashed afterwards.
type bodyReader struct {
	br  *bufio.Reader
	crc hash.Hash32
}

func (b *bodyReader) full(p []byte) error {
	if _, err := io.ReadFull(b.br, p); err != nil {
		return err
	}
	b.crc.Write(p)
	return nil
}

func (b *bodyReader) uint16() (uint16, error) {
	var buf [2]byte
	if err := b.full(buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(buf[:]), nil
}

func (b *bodyReader) uint32() (uint32, error) {
	var buf [4]byte
	if err := b.full(buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func (b *bodyReader) uint64() (uint64, error) {
	var buf [8]byte
	if err := b.full(buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// Read deserializes a snapshot, verifying magic, version, structural bounds
// and the trailing checksum.
func Read(r io.Reader) (*Snapshot, error) {
	b := &bodyReader{br: bufio.NewReaderSize(r, 1<<20), crc: crc32.NewIEEE()}

	head := make([]byte, 4)
	if err := b.full(head); err != nil {
		return nil, fmt.Errorf("codec: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("codec: bad magic %q", head)
	}
	v, err := b.uint16()
	if err != nil {
		return nil, err
	}
	if v < 1 || v > version {
		return nil, fmt.Errorf("codec: unsupported version %d", v)
	}
	var nameLen [1]byte
	if err := b.full(nameLen[:]); err != nil {
		return nil, err
	}
	nameBuf := make([]byte, nameLen[0])
	if err := b.full(nameBuf); err != nil {
		return nil, err
	}
	snap := &Snapshot{FilterName: string(nameBuf)}
	tc, err := b.uint64()
	if err != nil {
		return nil, err
	}
	snap.TupleCount = int64(tc)
	dims, err := b.uint16()
	if err != nil {
		return nil, err
	}
	if dims == 0 || dims > 64 {
		return nil, fmt.Errorf("codec: implausible dimension count %d", dims)
	}
	names := make([]string, dims)
	sizes := make([]int, dims)
	windows := make([][2]float64, dims)
	anyWindow := false
	for i := 0; i < int(dims); i++ {
		nl, err := b.uint16()
		if err != nil {
			return nil, err
		}
		nb := make([]byte, nl)
		if err := b.full(nb); err != nil {
			return nil, err
		}
		names[i] = string(nb)
		sz, err := b.uint32()
		if err != nil {
			return nil, err
		}
		sizes[i] = int(sz)
		if v >= 2 {
			loBits, err := b.uint64()
			if err != nil {
				return nil, err
			}
			hiBits, err := b.uint64()
			if err != nil {
				return nil, err
			}
			windows[i] = [2]float64{math.Float64frombits(loBits), math.Float64frombits(hiBits)}
			if windows[i] != ([2]float64{}) {
				anyWindow = true
			}
		}
	}
	schema, err := dataset.NewSchema(names, sizes)
	if err != nil {
		return nil, fmt.Errorf("codec: invalid stored schema: %w", err)
	}
	snap.Schema = schema
	if anyWindow {
		snap.Windows = windows
	}
	count, err := b.uint64()
	if err != nil {
		return nil, err
	}
	cells := uint64(schema.Cells())
	if count > cells {
		return nil, fmt.Errorf("codec: coefficient count %d exceeds domain size %d", count, cells)
	}
	snap.Keys = make([]int, count)
	snap.Values = make([]float64, count)
	prev := -1
	for i := uint64(0); i < count; i++ {
		k, err := b.uint64()
		if err != nil {
			return nil, fmt.Errorf("codec: reading coefficient %d: %w", i, err)
		}
		if k >= cells {
			return nil, fmt.Errorf("codec: coefficient key %d outside domain", k)
		}
		if int(k) <= prev {
			return nil, fmt.Errorf("codec: coefficient keys not strictly ascending at %d", k)
		}
		prev = int(k)
		bits, err := b.uint64()
		if err != nil {
			return nil, err
		}
		snap.Keys[i] = int(k)
		snap.Values[i] = math.Float64frombits(bits)
	}
	// Trailer: read raw (unhashed) and compare.
	var tail [4]byte
	if _, err := io.ReadFull(b.br, tail[:]); err != nil {
		return nil, fmt.Errorf("codec: reading checksum: %w", err)
	}
	if got, want := b.crc.Sum32(), binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("codec: checksum mismatch (stream %08x, computed %08x)", want, got)
	}
	// Reject trailing garbage.
	if _, err := b.br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("codec: trailing data after checksum")
	}
	return snap, nil
}

// Store materializes the snapshot's coefficients as a hash store.
func (s *Snapshot) Store() *storage.HashStore {
	st := storage.NewHashStore()
	for i, k := range s.Keys {
		st.Add(k, s.Values[i])
	}
	return st
}

func writeUint16(w *bufio.Writer, v uint16) error {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeUint32(w *bufio.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeUint64(w *bufio.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}
