package codec

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestWireHandshakeRoundTrip(t *testing.T) {
	for v := MinWireVersion; v <= MaxWireVersion; v++ {
		var buf bytes.Buffer
		if err := WriteHandshake(&buf, v); err != nil {
			t.Fatal(err)
		}
		got, err := ReadHandshake(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("announced %d, read %d", v, got)
		}
	}
	// Versions outside the speakable range cannot be announced.
	var buf bytes.Buffer
	if err := WriteHandshake(&buf, 0); err == nil {
		t.Fatal("version 0 announced")
	}
	if err := WriteHandshake(&buf, MaxWireVersion+1); err == nil {
		t.Fatal("future version announced")
	}
	// Wrong magic.
	if _, err := ReadHandshake(strings.NewReader("XXXX\x01\x00")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Version 0 is malformed.
	if _, err := ReadHandshake(strings.NewReader(wireMagic + "\x00\x00")); err == nil {
		t.Fatal("version 0 accepted")
	}
	// A future version is readable (negotiation clamps it), not an error.
	if v, err := ReadHandshake(strings.NewReader(wireMagic + "\x7f\x00")); err != nil || v != 0x7f {
		t.Fatalf("future version: v=%d err=%v", v, err)
	}
	// Truncation.
	if _, err := ReadHandshake(strings.NewReader("WV")); err == nil {
		t.Fatal("truncated handshake accepted")
	}
}

func TestNegotiateVersion(t *testing.T) {
	cases := []struct{ peer, max, want uint16 }{
		{1, 0, 1},               // v1 peer clamps a v2 server down
		{2, 0, 2},               // both sides current
		{99, 0, MaxWireVersion}, // future peer clamps to what we speak
		{2, 1, 1},               // locally capped (no-trace mode)
		{1, 1, 1},
		{99, 7, MaxWireVersion}, // local cap beyond our ceiling is clamped too
	}
	for _, c := range cases {
		if got := NegotiateVersion(c.peer, c.max); got != c.want {
			t.Fatalf("NegotiateVersion(%d, %d) = %d, want %d", c.peer, c.max, got, c.want)
		}
	}
}

func TestWireV2Extensions(t *testing.T) {
	// Request frames carry the trace; response frames carry elapsed time.
	keys := []int{3, 1, 4, 1, 5}
	var buf bytes.Buffer
	if err := WriteBatchGetReqV(&buf, 2, 11, "req-abc123", keys); err != nil {
		t.Fatal(err)
	}
	wire := buf.Len()
	f, err := ReadFrameVersion(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Trace != "req-abc123" || f.ElapsedNanos != 0 {
		t.Fatalf("req ext mangled: trace=%q elapsed=%d", f.Trace, f.ElapsedNanos)
	}
	if f.WireSize != wire {
		t.Fatalf("WireSize=%d, wrote %d bytes", f.WireSize, wire)
	}
	got, err := f.BatchGetReq()
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("key %d: got %d want %d", i, got[i], keys[i])
		}
	}

	buf.Reset()
	vals := []float64{1.5, math.Pi}
	if err := WriteBatchGetRespV(&buf, 2, 11, 987654321, vals, []WireError{{Index: 1, Msg: "boom"}}); err != nil {
		t.Fatal(err)
	}
	f, err = ReadFrameVersion(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.ElapsedNanos != 987654321 || f.Trace != "" {
		t.Fatalf("resp ext mangled: trace=%q elapsed=%d", f.Trace, f.ElapsedNanos)
	}
	gv, gf, err := f.BatchGetResp(len(vals))
	if err != nil || gv[0] != 1.5 || len(gf) != 1 || gf[0].Msg != "boom" {
		t.Fatalf("v2 resp body mangled: vals=%v failed=%v err=%v", gv, gf, err)
	}

	// Meta and Error frames too.
	buf.Reset()
	if err := WriteMetaReqV(&buf, 2, 12, "req-meta"); err != nil {
		t.Fatal(err)
	}
	if f, err = ReadFrameVersion(&buf, 2); err != nil || f.Trace != "req-meta" {
		t.Fatalf("meta req ext: trace=%q err=%v", f.Trace, err)
	}
	buf.Reset()
	if err := WriteErrorFrameV(&buf, 2, 13, 42, "down"); err != nil {
		t.Fatal(err)
	}
	f, err = ReadFrameVersion(&buf, 2)
	if err != nil || f.ElapsedNanos != 42 {
		t.Fatalf("error ext: elapsed=%d err=%v", f.ElapsedNanos, err)
	}
	if msg, err := f.ErrorMsg(); err != nil || msg != "down" {
		t.Fatalf("error msg: %q err=%v", msg, err)
	}

	// An overlong trace is truncated, not rejected.
	buf.Reset()
	long := strings.Repeat("x", MaxTraceLen+50)
	if err := WriteBatchGetReqV(&buf, 2, 14, long, []int{1}); err != nil {
		t.Fatal(err)
	}
	if f, err = ReadFrameVersion(&buf, 2); err != nil || len(f.Trace) != MaxTraceLen {
		t.Fatalf("overlong trace: len=%d err=%v", len(f.Trace), err)
	}
}

func TestWireV1FramesUnchangedByV2Code(t *testing.T) {
	// The v1 writers must produce byte-identical frames to the versioned
	// writers at version 1 — old peers see exactly the old protocol.
	var a, b bytes.Buffer
	if err := WriteBatchGetReq(&a, 5, []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := WriteBatchGetReqV(&b, 1, 5, "ignored-at-v1", []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("v1 framing changed by versioned writer")
	}
	f, err := ReadFrame(&a)
	if err != nil {
		t.Fatal(err)
	}
	if f.Trace != "" || f.ElapsedNanos != 0 {
		t.Fatalf("v1 frame grew extensions: trace=%q elapsed=%d", f.Trace, f.ElapsedNanos)
	}
}

func TestWireBatchGetReqRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := [][]int{
		{},
		{0},
		{5, 5, 5},                  // repeats
		{100, 7, 100000, 3, 2, 1},  // arbitrary order
		{0, 1, 2, 3, 4, 5, 6, 7},   // sequential (one byte per delta)
		{1 << 40, 0, 1<<40 + 1024}, // large keys
	}
	big := make([]int, 5000)
	for i := range big {
		big[i] = rng.Intn(1 << 26)
	}
	cases = append(cases, big)
	for ci, keys := range cases {
		var buf bytes.Buffer
		if err := WriteBatchGetReq(&buf, uint64(ci)+7, keys); err != nil {
			t.Fatal(err)
		}
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != FrameBatchGetReq || f.ID != uint64(ci)+7 {
			t.Fatalf("case %d: frame type=%d id=%d", ci, f.Type, f.ID)
		}
		got, err := f.BatchGetReq()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(keys) {
			t.Fatalf("case %d: %d keys back for %d sent", ci, len(got), len(keys))
		}
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("case %d key %d: got %d want %d", ci, i, got[i], keys[i])
			}
		}
	}
}

func TestWireBatchGetReqCompactness(t *testing.T) {
	// Sorted clustered keys must cost far less than 8 bytes per key — the
	// point of the delta-varint representation.
	keys := make([]int, 4096)
	for i := range keys {
		keys[i] = 1_000_000 + i*3
	}
	var buf bytes.Buffer
	if err := WriteBatchGetReq(&buf, 1, keys); err != nil {
		t.Fatal(err)
	}
	perKey := float64(buf.Len()) / float64(len(keys))
	if perKey > 2 {
		t.Fatalf("sorted clustered batch costs %.2f bytes/key, want ≤ 2", perKey)
	}
}

func TestWireBatchGetRespRoundTrip(t *testing.T) {
	values := []float64{1.5, 0, math.Pi, -42.25, math.Inf(1), math.NaN()}
	failed := []WireError{{Index: 1, Msg: "injected fault"}, {Index: 4, Msg: "shard overloaded"}}
	var buf bytes.Buffer
	if err := WriteBatchGetResp(&buf, 99, values, failed); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gv, gf, err := f.BatchGetResp(len(values))
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if math.Float64bits(gv[i]) != math.Float64bits(values[i]) {
			t.Fatalf("value %d: bits differ (%v vs %v)", i, gv[i], values[i])
		}
	}
	if len(gf) != 2 || gf[0] != failed[0] || gf[1] != failed[1] {
		t.Fatalf("failures mangled: %+v", gf)
	}
	// Size mismatch with the request is a protocol violation.
	var buf2 bytes.Buffer
	if err := WriteBatchGetResp(&buf2, 99, values, nil); err != nil {
		t.Fatal(err)
	}
	f2, err := ReadFrame(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f2.BatchGetResp(len(values) + 1); err == nil {
		t.Fatal("value-count mismatch accepted")
	}
}

func TestWireMetaRoundTrip(t *testing.T) {
	m := &ShardMeta{
		Names:      []string{"lat", "lon", "month"},
		Sizes:      []int{64, 128, 16},
		Windows:    [][2]float64{{-90, 90}, {-180, 180}, {0, 0}},
		FilterName: "Db4",
		TupleCount: 123456,
		ShardIndex: 2,
		ShardCount: 4,
		Nonzero:    9999,
		Mass:       31337.25,
	}
	var buf bytes.Buffer
	if err := WriteMetaResp(&buf, 5, m); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if got.FilterName != m.FilterName || got.TupleCount != m.TupleCount ||
		got.ShardIndex != m.ShardIndex || got.ShardCount != m.ShardCount ||
		got.Nonzero != m.Nonzero || got.Mass != m.Mass {
		t.Fatalf("meta mangled: %+v", got)
	}
	for i := range m.Names {
		if got.Names[i] != m.Names[i] || got.Sizes[i] != m.Sizes[i] || got.Windows[i] != m.Windows[i] {
			t.Fatalf("dim %d mangled: %+v", i, got)
		}
	}
}

func TestWireErrorFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteErrorFrame(&buf, 77, "store on fire"); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameError || f.ID != 77 {
		t.Fatalf("frame type=%d id=%d", f.Type, f.ID)
	}
	msg, err := f.ErrorMsg()
	if err != nil || msg != "store on fire" {
		t.Fatalf("msg=%q err=%v", msg, err)
	}
}

func TestWireMalformedFrames(t *testing.T) {
	// Oversized length word is rejected before allocation.
	var head [4]byte
	binary.LittleEndian.PutUint32(head[:], MaxFramePayload+1)
	if _, err := ReadFrame(bytes.NewReader(head[:])); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Length shorter than the frame header.
	binary.LittleEndian.PutUint32(head[:], 4)
	if _, err := ReadFrame(bytes.NewReader(append(head[:], 0, 0, 0, 0))); err == nil {
		t.Fatal("undersized frame accepted")
	}
	// Truncated payload.
	var buf bytes.Buffer
	if err := WriteBatchGetReq(&buf, 1, []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Body decoded as the wrong type.
	var buf2 bytes.Buffer
	if err := WriteBatchGetReq(&buf2, 1, []int{1}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Meta(); err == nil {
		t.Fatal("BatchGetReq decoded as Meta")
	}
	// Trailing garbage inside a frame body.
	var buf3 bytes.Buffer
	if err := WriteErrorFrame(&buf3, 1, "x"); err != nil {
		t.Fatal(err)
	}
	raw := buf3.Bytes()
	binary.LittleEndian.PutUint32(raw, uint32(len(raw)-4+2))
	raw = append(raw, 0, 0)
	f3, err := ReadFrame(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f3.ErrorMsg(); err == nil {
		t.Fatal("trailing garbage in body accepted")
	}
	// Negative key via delta underflow.
	payload := []byte{FrameBatchGetReq}
	payload = binary.LittleEndian.AppendUint64(payload, 1)
	payload = binary.AppendUvarint(payload, 1)
	payload = binary.AppendVarint(payload, -5)
	var buf4 bytes.Buffer
	_ = binary.Write(&buf4, binary.LittleEndian, uint32(len(payload)))
	buf4.Write(payload)
	f4, err := ReadFrame(&buf4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f4.BatchGetReq(); err == nil {
		t.Fatal("negative key accepted")
	}
}
