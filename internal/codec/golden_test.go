package codec

import (
	"bytes"
	"encoding/hex"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/storage"
)

// goldenHexV1 is a version-1 stream captured before version 2 added
// quantization windows: schema (x:4, y:2), filter "Haar", 3 tuples,
// coefficients {0: 1.5, 5: -2.25}. The reader must parse version-1 byte
// sequences forever.
const goldenHexV1 = "57564442" + // magic "WVDB"
	"0100" + // version 1
	"04" + "48616172" + // filter "Haar"
	"0300000000000000" + // tuple count 3
	"0200" + // 2 dims
	"0100" + "78" + "04000000" + // "x", size 4
	"0100" + "79" + "02000000" + // "y", size 2
	"0200000000000000" + // 2 coefficients
	"0000000000000000" + "000000000000f83f" + // key 0, 1.5
	"0500000000000000" + "00000000000002c0" + // key 5, -2.25
	"b7707d95" // CRC-32

// goldenHexV2 is the same content in the current format (version 2 adds a
// 16-byte window per dimension, zero when unset). The writer must keep
// producing these exact bytes — serialization is canonical.
const goldenHexV2 = "57564442" + // magic "WVDB"
	"0200" + // version 2
	"04" + "48616172" + // filter "Haar"
	"0300000000000000" + // tuple count 3
	"0200" + // 2 dims
	"0100" + "78" + "04000000" + "0000000000000000" + "0000000000000000" + // "x", size 4, no window
	"0100" + "79" + "02000000" + "0000000000000000" + "0000000000000000" + // "y", size 2, no window
	"0200000000000000" + // 2 coefficients
	"0000000000000000" + "000000000000f83f" + // key 0, 1.5
	"0500000000000000" + "00000000000002c0" + // key 5, -2.25
	"38fccb14" // CRC-32

func TestGoldenStreamParses(t *testing.T) {
	for name, golden := range map[string]string{"v1": goldenHexV1, "v2": goldenHexV2} {
		t.Run(name, func(t *testing.T) {
			testGoldenParses(t, golden)
		})
	}
}

func testGoldenParses(t *testing.T, golden string) {
	data, err := hex.DecodeString(golden)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("golden stream rejected: %v", err)
	}
	if snap.Windows != nil {
		t.Fatalf("windowless golden produced windows %v", snap.Windows)
	}
	if snap.FilterName != "Haar" || snap.TupleCount != 3 {
		t.Fatalf("metadata: %+v", snap)
	}
	if snap.Schema.Names[0] != "x" || snap.Schema.Sizes[0] != 4 ||
		snap.Schema.Names[1] != "y" || snap.Schema.Sizes[1] != 2 {
		t.Fatalf("schema: %+v", snap.Schema)
	}
	if len(snap.Keys) != 2 || snap.Keys[0] != 0 || snap.Keys[1] != 5 {
		t.Fatalf("keys: %v", snap.Keys)
	}
	if snap.Values[0] != 1.5 || snap.Values[1] != -2.25 {
		t.Fatalf("values: %v", snap.Values)
	}
}

func TestGoldenStreamMatchesWriter(t *testing.T) {
	// The writer must still produce byte-identical output for the golden
	// content — serialization is canonical.
	schema := dataset.MustSchema([]string{"x", "y"}, []int{4, 2})
	store := storage.NewHashStore()
	store.Add(0, 1.5)
	store.Add(5, -2.25)
	var buf bytes.Buffer
	if err := Write(&buf, schema, "Haar", 3, store, nil); err != nil {
		t.Fatal(err)
	}
	want, err := hex.DecodeString(goldenHexV2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("writer output changed:\n got %x\nwant %x", buf.Bytes(), want)
	}
}

func TestGoldenFloatEncoding(t *testing.T) {
	// Double-check the float bit patterns the golden stream relies on.
	if math.Float64bits(1.5) != 0x3ff8000000000000 {
		t.Fatal("1.5 bits changed?!")
	}
	if math.Float64bits(-2.25) != 0xc002000000000000 {
		t.Fatal("-2.25 bits changed?!")
	}
}
