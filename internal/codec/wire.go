package codec

// Wire frames of the distributed evaluation tier (internal/dist): a shard
// server exposes its coefficient partition over plain TCP, and the
// coordinator's RemoteStore speaks this framing to it. The protocol is
// deliberately minimal — one request in flight per connection, the client
// pool provides parallelism — and the representation is compact: packed
// coefficient keys travel as zig-zag varint deltas (consecutive schedule
// keys are near each other far more often than not, so a sorted or
// clustered batch costs one or two bytes per key), values as raw float64
// bits (bit-exactness is non-negotiable — progressive estimates through the
// coordinator must equal the single-node run to the last ulp), and partial
// failures as per-key (index, message) entries so the engine's skip
// machinery sees exactly which positions of a batch died.
//
// Connection preamble (both directions, client first):
//
//	magic "WVDW"  4 bytes
//	version uint16
//
// The preamble doubles as version negotiation: the client announces the
// highest version it speaks, the server replies with min(client, server),
// and both sides then frame at the reply's version. Version 1 is the
// original protocol; version 2 adds a diagnostics extension between the
// frame header and the body (see below) and changes nothing else.
//
// Frame (all integers little-endian):
//
//	length  uint32            payload bytes after this word
//	type    uint8
//	id      uint64            request id, echoed by the response
//	ext     ...               version ≥ 2 only, see below
//	body    ...               per-type, see below
//
// Extension (version ≥ 2). Request frames (BatchGetReq, MetaReq) carry the
// coordinator's trace context so shard-side spans join the query's trace:
//
//	trace   uvarint length + bytes   request ID ("" = untraced)
//
// Response frames (BatchGetResp, MetaResp, Error) echo the shard's serve
// time so the coordinator can split wall time into network and shard work:
//
//	elapsed uvarint                  shard-side nanoseconds
//
// Bodies:
//
//	BatchGetReq:  uvarint key count, then per key a zig-zag varint delta
//	              from the previous key (first delta is from 0)
//	BatchGetResp: uvarint value count, then count raw float64 bits
//	              (failed positions carry zero bits), then uvarint failure
//	              count, then per failure uvarint index + uvarint message
//	              length + message bytes (ascending index order)
//	MetaReq:      empty
//	MetaResp:     uint16 dim count, per dim uvarint name length + name,
//	              uint32 size, float64 bits window lo, hi; uvarint filter
//	              name length + name; uint64 tuple count; uint32 shard
//	              index; uint32 shard count; uint64 nonzero count;
//	              float64 bits coefficient mass
//	Error:        uvarint message length + message bytes — the whole
//	              request failed (no position of the batch may be trusted)

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Frame types of the shard wire protocol.
const (
	FrameBatchGetReq  byte = 1
	FrameBatchGetResp byte = 2
	FrameMetaReq      byte = 3
	FrameMetaResp     byte = 4
	FrameError        byte = 5
)

const (
	wireMagic = "WVDW"

	// MinWireVersion..MaxWireVersion is the negotiable range. Version 1 is
	// the original framing; version 2 adds the diagnostics extension (trace
	// context on requests, shard elapsed time on responses).
	MinWireVersion uint16 = 1
	MaxWireVersion uint16 = 2

	// MaxFramePayload bounds one frame's payload; a peer announcing more is
	// malformed (or hostile) and the connection is dropped.
	MaxFramePayload = 64 << 20
	// MaxBatchKeys bounds the keys of one BatchGet frame.
	MaxBatchKeys = 1 << 22
	// MaxTraceLen bounds the trace-context extension of a v2 request frame;
	// writers truncate to it, readers reject beyond it.
	MaxTraceLen = 128
)

// WriteHandshake sends the connection preamble announcing version.
func WriteHandshake(w io.Writer, version uint16) error {
	if version < MinWireVersion || version > MaxWireVersion {
		return fmt.Errorf("codec: cannot announce wire version %d (speak %d..%d)",
			version, MinWireVersion, MaxWireVersion)
	}
	var buf [6]byte
	copy(buf[:4], wireMagic)
	binary.LittleEndian.PutUint16(buf[4:], version)
	_, err := w.Write(buf[:])
	return err
}

// ReadHandshake reads and validates the peer's preamble, returning the
// version the peer announced. A version beyond MaxWireVersion is not an
// error here: a server clamps it via NegotiateVersion, and a client treats
// a reply above its own announcement as a protocol violation itself.
func ReadHandshake(r io.Reader) (uint16, error) {
	var buf [6]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("codec: reading wire handshake: %w", err)
	}
	if string(buf[:4]) != wireMagic {
		return 0, fmt.Errorf("codec: bad wire magic %q", buf[:4])
	}
	v := binary.LittleEndian.Uint16(buf[4:])
	if v < MinWireVersion {
		return 0, fmt.Errorf("codec: unsupported wire version %d (want ≥ %d)", v, MinWireVersion)
	}
	return v, nil
}

// NegotiateVersion clamps a peer's announced version to what this build
// speaks: the connection runs at min(peer, max), where max is the highest
// version the caller is willing to use (0 means MaxWireVersion).
func NegotiateVersion(peer, max uint16) uint16 {
	if max == 0 || max > MaxWireVersion {
		max = MaxWireVersion
	}
	if peer < max {
		return peer
	}
	return max
}

// WireError is one failed position of a batched retrieval as it travels the
// wire: the position index and the error message (causes do not survive
// serialization; the dist layer rewraps messages in typed errors).
type WireError struct {
	Index int
	Msg   string
}

// WireFrame is one decoded frame: its type, request id, diagnostics
// extension (version ≥ 2 connections only), and undecoded body.
type WireFrame struct {
	Type byte
	ID   uint64
	// Trace is the request ID carried by a v2 request frame ("" when the
	// connection is v1 or the caller sent none).
	Trace string
	// ElapsedNanos is the shard-side serve time echoed by a v2 response
	// frame (0 when the connection is v1).
	ElapsedNanos uint64
	// WireSize is the frame's full encoded size in bytes, length word
	// included — the coordinator's per-shard bytes accounting.
	WireSize int
	body     []byte
}

// frameBuf accumulates a frame payload (type + id + body) before the length
// word is known.
type frameBuf struct {
	b []byte
}

func newFrameBuf(typ byte, id uint64, sizeHint int) *frameBuf {
	f := &frameBuf{b: make([]byte, 0, 9+sizeHint)}
	f.b = append(f.b, typ)
	f.b = binary.LittleEndian.AppendUint64(f.b, id)
	return f
}

func (f *frameBuf) uvarint(v uint64)  { f.b = binary.AppendUvarint(f.b, v) }
func (f *frameBuf) varint(v int64)    { f.b = binary.AppendVarint(f.b, v) }
func (f *frameBuf) uint16(v uint16)   { f.b = binary.LittleEndian.AppendUint16(f.b, v) }
func (f *frameBuf) uint32(v uint32)   { f.b = binary.LittleEndian.AppendUint32(f.b, v) }
func (f *frameBuf) uint64(v uint64)   { f.b = binary.LittleEndian.AppendUint64(f.b, v) }
func (f *frameBuf) float64(v float64) { f.uint64(math.Float64bits(v)) }
func (f *frameBuf) str(s string) {
	f.uvarint(uint64(len(s)))
	f.b = append(f.b, s...)
}

// flush writes length word + payload in one Write call (one syscall on a
// plain conn, and no interleaving hazard for concurrent writers that hold
// the connection exclusively, as the pool guarantees).
func (f *frameBuf) flush(w io.Writer) error {
	if len(f.b) > MaxFramePayload {
		return fmt.Errorf("codec: frame payload %d exceeds limit %d", len(f.b), MaxFramePayload)
	}
	msg := make([]byte, 4+len(f.b))
	binary.LittleEndian.PutUint32(msg, uint32(len(f.b)))
	copy(msg[4:], f.b)
	_, err := w.Write(msg)
	return err
}

// reqExt appends the v2 request extension (trace context) when the
// connection version carries one. Overlong traces are truncated, not
// rejected — the trace is diagnostic, never semantic.
func (f *frameBuf) reqExt(version uint16, trace string) {
	if version < 2 {
		return
	}
	if len(trace) > MaxTraceLen {
		trace = trace[:MaxTraceLen]
	}
	f.str(trace)
}

// respExt appends the v2 response extension (shard elapsed nanoseconds).
func (f *frameBuf) respExt(version uint16, elapsed uint64) {
	if version >= 2 {
		f.uvarint(elapsed)
	}
}

// WriteBatchGetReq sends a batched-retrieval request for keys at wire
// version 1 (no trace context).
func WriteBatchGetReq(w io.Writer, id uint64, keys []int) error {
	return WriteBatchGetReqV(w, 1, id, "", keys)
}

// WriteBatchGetReqV sends a batched-retrieval request for keys, carrying
// trace as the v2 trace-context extension when version supports it.
func WriteBatchGetReqV(w io.Writer, version uint16, id uint64, trace string, keys []int) error {
	if len(keys) > MaxBatchKeys {
		return fmt.Errorf("codec: batch of %d keys exceeds limit %d", len(keys), MaxBatchKeys)
	}
	f := newFrameBuf(FrameBatchGetReq, id, len(keys)*2+len(trace)+8)
	f.reqExt(version, trace)
	f.uvarint(uint64(len(keys)))
	prev := 0
	for _, k := range keys {
		f.varint(int64(k - prev))
		prev = k
	}
	return f.flush(w)
}

// WriteBatchGetResp sends the response to a batched retrieval at wire
// version 1: values[i] answers keys[i] of the request, failed lists the
// positions that did not resolve (their values are ignored) in ascending
// index order.
func WriteBatchGetResp(w io.Writer, id uint64, values []float64, failed []WireError) error {
	return WriteBatchGetRespV(w, 1, id, 0, values, failed)
}

// WriteBatchGetRespV is WriteBatchGetResp carrying the shard's serve time
// as the v2 elapsed extension when version supports it.
func WriteBatchGetRespV(w io.Writer, version uint16, id uint64, elapsed uint64, values []float64, failed []WireError) error {
	f := newFrameBuf(FrameBatchGetResp, id, len(values)*8+16)
	f.respExt(version, elapsed)
	f.uvarint(uint64(len(values)))
	for _, v := range values {
		f.float64(v)
	}
	f.uvarint(uint64(len(failed)))
	for _, fe := range failed {
		f.uvarint(uint64(fe.Index))
		f.str(fe.Msg)
	}
	return f.flush(w)
}

// WriteMetaReq sends a shard-metadata request at wire version 1.
func WriteMetaReq(w io.Writer, id uint64) error {
	return WriteMetaReqV(w, 1, id, "")
}

// WriteMetaReqV sends a shard-metadata request, carrying trace as the v2
// trace-context extension when version supports it.
func WriteMetaReqV(w io.Writer, version uint16, id uint64, trace string) error {
	f := newFrameBuf(FrameMetaReq, id, len(trace)+2)
	f.reqExt(version, trace)
	return f.flush(w)
}

// ShardMeta is a shard server's self-description: the view it partitions
// (schema, filter, tuple count, quantization windows), its place in the
// partition (index of count), and the local aggregates a coordinator sums to
// reconstruct the global view (nonzero coefficients, coefficient mass — the
// Theorem 1 constant K restricted to this shard's keys, accumulated in
// ascending key order so it is deterministic).
type ShardMeta struct {
	Names      []string
	Sizes      []int
	Windows    [][2]float64 // always len(Names) entries; all-zero = unset
	FilterName string
	TupleCount int64
	ShardIndex int
	ShardCount int
	Nonzero    int64
	Mass       float64
}

// WriteMetaResp sends a shard's metadata at wire version 1.
func WriteMetaResp(w io.Writer, id uint64, m *ShardMeta) error {
	return WriteMetaRespV(w, 1, id, 0, m)
}

// WriteMetaRespV is WriteMetaResp carrying the shard's serve time as the
// v2 elapsed extension when version supports it.
func WriteMetaRespV(w io.Writer, version uint16, id uint64, elapsed uint64, m *ShardMeta) error {
	if len(m.Names) != len(m.Sizes) {
		return fmt.Errorf("codec: meta has %d names for %d sizes", len(m.Names), len(m.Sizes))
	}
	if m.Windows != nil && len(m.Windows) != len(m.Names) {
		return fmt.Errorf("codec: meta has %d windows for %d dimensions", len(m.Windows), len(m.Names))
	}
	if len(m.Names) > math.MaxUint16 {
		return fmt.Errorf("codec: too many dimensions")
	}
	f := newFrameBuf(FrameMetaResp, id, 64+len(m.Names)*32)
	f.respExt(version, elapsed)
	f.uint16(uint16(len(m.Names)))
	for i, name := range m.Names {
		f.str(name)
		if m.Sizes[i] < 0 || int64(m.Sizes[i]) > math.MaxUint32 {
			return fmt.Errorf("codec: dimension size %d out of range", m.Sizes[i])
		}
		f.uint32(uint32(m.Sizes[i]))
		var win [2]float64
		if m.Windows != nil {
			win = m.Windows[i]
		}
		f.float64(win[0])
		f.float64(win[1])
	}
	f.str(m.FilterName)
	f.uint64(uint64(m.TupleCount))
	if m.ShardIndex < 0 || m.ShardCount <= 0 || m.ShardIndex >= m.ShardCount {
		return fmt.Errorf("codec: meta shard %d of %d out of range", m.ShardIndex, m.ShardCount)
	}
	f.uint32(uint32(m.ShardIndex))
	f.uint32(uint32(m.ShardCount))
	f.uint64(uint64(m.Nonzero))
	f.float64(m.Mass)
	return f.flush(w)
}

// WriteErrorFrame reports the total failure of a request at wire version 1:
// no position of the batch may be trusted.
func WriteErrorFrame(w io.Writer, id uint64, msg string) error {
	return WriteErrorFrameV(w, 1, id, 0, msg)
}

// WriteErrorFrameV is WriteErrorFrame carrying the shard's serve time as
// the v2 elapsed extension when version supports it.
func WriteErrorFrameV(w io.Writer, version uint16, id uint64, elapsed uint64, msg string) error {
	f := newFrameBuf(FrameError, id, len(msg)+8)
	f.respExt(version, elapsed)
	f.str(msg)
	return f.flush(w)
}

// ReadFrame reads one frame at wire version 1.
func ReadFrame(r io.Reader) (*WireFrame, error) {
	return ReadFrameVersion(r, 1)
}

// ReadFrameVersion reads one frame at the connection's negotiated version.
// It validates the length word against MaxFramePayload before allocating
// and strips the v2 diagnostics extension into the frame's Trace /
// ElapsedNanos fields; body decoding happens in the typed accessors so a
// reader loop can dispatch on Type first.
func ReadFrameVersion(r io.Reader, version uint16) (*WireFrame, error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(head[:])
	if n < 9 {
		return nil, fmt.Errorf("codec: frame payload %d shorter than header", n)
	}
	if n > MaxFramePayload {
		return nil, fmt.Errorf("codec: frame payload %d exceeds limit %d", n, MaxFramePayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("codec: reading frame payload: %w", err)
	}
	f := &WireFrame{
		Type:     payload[0],
		ID:       binary.LittleEndian.Uint64(payload[1:9]),
		WireSize: 4 + int(n),
		body:     payload[9:],
	}
	if version >= 2 {
		wr := &wireReader{b: f.body}
		switch f.Type {
		case FrameBatchGetReq, FrameMetaReq:
			trace, err := wr.str(MaxTraceLen)
			if err != nil {
				return nil, fmt.Errorf("codec: frame trace extension: %w", err)
			}
			f.Trace = trace
		case FrameBatchGetResp, FrameMetaResp, FrameError:
			elapsed, err := wr.uvarint()
			if err != nil {
				return nil, fmt.Errorf("codec: frame elapsed extension: %w", err)
			}
			f.ElapsedNanos = elapsed
		default:
			// Unknown type: leave the body whole so the peer's error reply
			// ("unknown frame type") is still possible.
		}
		f.body = wr.b
	}
	return f, nil
}

// wireReader decodes a frame body sequentially.
type wireReader struct {
	b []byte
}

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("codec: truncated uvarint in frame body")
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *wireReader) varint() (int64, error) {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("codec: truncated varint in frame body")
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *wireReader) uint16() (uint16, error) {
	if len(r.b) < 2 {
		return 0, fmt.Errorf("codec: truncated frame body")
	}
	v := binary.LittleEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v, nil
}

func (r *wireReader) uint32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, fmt.Errorf("codec: truncated frame body")
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *wireReader) uint64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, fmt.Errorf("codec: truncated frame body")
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *wireReader) float64() (float64, error) {
	bits, err := r.uint64()
	return math.Float64frombits(bits), err
}

func (r *wireReader) str(limit int) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(limit) || n > uint64(len(r.b)) {
		return "", fmt.Errorf("codec: string length %d exceeds body", n)
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

// done rejects trailing garbage after a fully decoded body.
func (r *wireReader) done() error {
	if len(r.b) != 0 {
		return fmt.Errorf("codec: %d trailing bytes in frame body", len(r.b))
	}
	return nil
}

// BatchGetReq decodes a FrameBatchGetReq body.
func (f *WireFrame) BatchGetReq() ([]int, error) {
	if f.Type != FrameBatchGetReq {
		return nil, fmt.Errorf("codec: frame type %d is not BatchGetReq", f.Type)
	}
	r := &wireReader{b: f.body}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > MaxBatchKeys {
		return nil, fmt.Errorf("codec: batch of %d keys exceeds limit %d", n, MaxBatchKeys)
	}
	keys := make([]int, n)
	prev := int64(0)
	for i := range keys {
		d, err := r.varint()
		if err != nil {
			return nil, err
		}
		prev += d
		if prev < 0 {
			return nil, fmt.Errorf("codec: negative coefficient key %d in batch", prev)
		}
		keys[i] = int(prev)
	}
	return keys, r.done()
}

// BatchGetResp decodes a FrameBatchGetResp body. wantKeys is the request's
// key count; a response of any other size is a protocol violation.
func (f *WireFrame) BatchGetResp(wantKeys int) ([]float64, []WireError, error) {
	if f.Type != FrameBatchGetResp {
		return nil, nil, fmt.Errorf("codec: frame type %d is not BatchGetResp", f.Type)
	}
	r := &wireReader{b: f.body}
	n, err := r.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if int64(n) != int64(wantKeys) {
		return nil, nil, fmt.Errorf("codec: response carries %d values for %d keys", n, wantKeys)
	}
	values := make([]float64, n)
	for i := range values {
		if values[i], err = r.float64(); err != nil {
			return nil, nil, err
		}
	}
	fn, err := r.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if fn > n {
		return nil, nil, fmt.Errorf("codec: %d failures for %d values", fn, n)
	}
	failed := make([]WireError, fn)
	prev := -1
	for i := range failed {
		idx, err := r.uvarint()
		if err != nil {
			return nil, nil, err
		}
		if int64(idx) >= int64(n) || int(idx) <= prev {
			return nil, nil, fmt.Errorf("codec: failure index %d out of order or range", idx)
		}
		prev = int(idx)
		msg, err := r.str(1 << 16)
		if err != nil {
			return nil, nil, err
		}
		failed[i] = WireError{Index: int(idx), Msg: msg}
	}
	return values, failed, r.done()
}

// Meta decodes a FrameMetaResp body.
func (f *WireFrame) Meta() (*ShardMeta, error) {
	if f.Type != FrameMetaResp {
		return nil, fmt.Errorf("codec: frame type %d is not MetaResp", f.Type)
	}
	r := &wireReader{b: f.body}
	dims, err := r.uint16()
	if err != nil {
		return nil, err
	}
	if dims == 0 || dims > 64 {
		return nil, fmt.Errorf("codec: implausible dimension count %d", dims)
	}
	m := &ShardMeta{
		Names:   make([]string, dims),
		Sizes:   make([]int, dims),
		Windows: make([][2]float64, dims),
	}
	for i := 0; i < int(dims); i++ {
		if m.Names[i], err = r.str(1 << 12); err != nil {
			return nil, err
		}
		sz, err := r.uint32()
		if err != nil {
			return nil, err
		}
		m.Sizes[i] = int(sz)
		if m.Windows[i][0], err = r.float64(); err != nil {
			return nil, err
		}
		if m.Windows[i][1], err = r.float64(); err != nil {
			return nil, err
		}
	}
	if m.FilterName, err = r.str(255); err != nil {
		return nil, err
	}
	tc, err := r.uint64()
	if err != nil {
		return nil, err
	}
	m.TupleCount = int64(tc)
	si, err := r.uint32()
	if err != nil {
		return nil, err
	}
	sc, err := r.uint32()
	if err != nil {
		return nil, err
	}
	m.ShardIndex, m.ShardCount = int(si), int(sc)
	if m.ShardCount <= 0 || m.ShardIndex < 0 || m.ShardIndex >= m.ShardCount {
		return nil, fmt.Errorf("codec: meta shard %d of %d out of range", m.ShardIndex, m.ShardCount)
	}
	nz, err := r.uint64()
	if err != nil {
		return nil, err
	}
	m.Nonzero = int64(nz)
	if m.Mass, err = r.float64(); err != nil {
		return nil, err
	}
	return m, r.done()
}

// ErrorMsg decodes a FrameError body.
func (f *WireFrame) ErrorMsg() (string, error) {
	if f.Type != FrameError {
		return "", fmt.Errorf("codec: frame type %d is not Error", f.Type)
	}
	r := &wireReader{b: f.body}
	msg, err := r.str(1 << 16)
	if err != nil {
		return "", err
	}
	return msg, r.done()
}
