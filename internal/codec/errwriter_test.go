package codec

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/storage"
)

// failWriter fails after n bytes have been written, exercising every write
// error branch in the serializer.
type failWriter struct {
	n       int
	written int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		can := w.n - w.written
		if can < 0 {
			can = 0
		}
		w.written += can
		return can, fmt.Errorf("synthetic write failure after %d bytes", w.n)
	}
	w.written += len(p)
	return len(p), nil
}

func TestWriteSurfacesWriterErrors(t *testing.T) {
	schema := dataset.MustSchema([]string{"x", "y"}, []int{8, 8})
	store := storage.NewHashStore()
	for i := 0; i < 10; i++ {
		store.Add(i*3, float64(i)+0.5)
	}
	// Find the full length first.
	var full bytes.Buffer
	if err := Write(&full, schema, "Db4", 7, store, nil); err != nil {
		t.Fatal(err)
	}
	// Fail at a few byte offsets spanning header, schema, coefficients and
	// trailer. bufio batches writes, so not every offset maps to a distinct
	// branch — but the call must fail at every truncation point.
	offsets := []int{0, full.Len() / 2, full.Len() - 2}
	for _, off := range offsets {
		if err := Write(&failWriter{n: off}, schema, "Db4", 7, store, nil); err == nil {
			t.Errorf("Write with failure at byte %d did not error", off)
		}
	}
}
