// Package stats derives range-level statistics — AVERAGE, VARIANCE,
// COVARIANCE — from batches of polynomial range-sums, following Section 3 of
// the paper (and the multivariate OLAP framework of Shao it cites): every
// statistic is an algebraic combination of the vector queries COUNT, SUM,
// SUM-OF-SQUARES and SUM-OF-PRODUCTS, so a single Batch-Biggest-B run over
// the moment batch yields progressively refining statistics for every range.
package stats

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/query"
)

// MomentSet describes the raw-moment query batch for a set of ranges and
// attributes: per range, one COUNT, one SUM and one SUM-OF-SQUARES per
// attribute, and (optionally) one SUM-OF-PRODUCTS per attribute pair.
type MomentSet struct {
	Schema *dataset.Schema
	Ranges []query.Range
	Attrs  []string
	// WithCovariance adds the cross-product queries needed by Covariance.
	WithCovariance bool
	// Batch holds the generated queries, laid out per range as
	// [count, sum(a_0),…, sumsq(a_0),…, cross(a_i,a_j) for i<j …].
	Batch query.Batch

	perRange int
}

// NewMomentSet builds the moment batch. With covariance enabled the batch
// degree is 2, requiring a Db6 or longer filter.
func NewMomentSet(schema *dataset.Schema, ranges []query.Range, attrs []string, withCovariance bool) (*MomentSet, error) {
	if len(ranges) == 0 {
		return nil, fmt.Errorf("stats: no ranges")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("stats: no attributes")
	}
	m := &MomentSet{
		Schema:         schema,
		Ranges:         append([]query.Range(nil), ranges...),
		Attrs:          append([]string(nil), attrs...),
		WithCovariance: withCovariance,
	}
	k := len(attrs)
	m.perRange = 1 + 2*k
	if withCovariance {
		m.perRange += k * (k - 1) / 2
	}
	m.Batch = make(query.Batch, 0, m.perRange*len(ranges))
	for _, r := range ranges {
		m.Batch = append(m.Batch, query.Count(schema, r))
		for _, a := range attrs {
			q, err := query.Sum(schema, r, a)
			if err != nil {
				return nil, err
			}
			m.Batch = append(m.Batch, q)
		}
		for _, a := range attrs {
			q, err := query.SumSquares(schema, r, a)
			if err != nil {
				return nil, err
			}
			m.Batch = append(m.Batch, q)
		}
		if withCovariance {
			for i := 0; i < k; i++ {
				for j := i + 1; j < k; j++ {
					q, err := query.SumProduct(schema, r, attrs[i], attrs[j])
					if err != nil {
						return nil, err
					}
					m.Batch = append(m.Batch, q)
				}
			}
		}
	}
	return m, nil
}

// PerRange returns the number of queries generated per range.
func (m *MomentSet) PerRange() int { return m.perRange }

func (m *MomentSet) base(rangeIdx int) (int, error) {
	if rangeIdx < 0 || rangeIdx >= len(m.Ranges) {
		return 0, fmt.Errorf("stats: range index %d out of %d", rangeIdx, len(m.Ranges))
	}
	return rangeIdx * m.perRange, nil
}

func (m *MomentSet) attrPos(attr string) (int, error) {
	for i, a := range m.Attrs {
		if a == attr {
			return i, nil
		}
	}
	return 0, fmt.Errorf("stats: attribute %q not in moment set", attr)
}

// Count extracts the range count from a result vector for m.Batch.
func (m *MomentSet) Count(results []float64, rangeIdx int) (float64, error) {
	b, err := m.base(rangeIdx)
	if err != nil {
		return 0, err
	}
	return results[b], nil
}

// Sum extracts Σ x_attr over the range.
func (m *MomentSet) Sum(results []float64, rangeIdx int, attr string) (float64, error) {
	b, err := m.base(rangeIdx)
	if err != nil {
		return 0, err
	}
	i, err := m.attrPos(attr)
	if err != nil {
		return 0, err
	}
	return results[b+1+i], nil
}

// SumSquares extracts Σ x_attr² over the range.
func (m *MomentSet) SumSquares(results []float64, rangeIdx int, attr string) (float64, error) {
	b, err := m.base(rangeIdx)
	if err != nil {
		return 0, err
	}
	i, err := m.attrPos(attr)
	if err != nil {
		return 0, err
	}
	return results[b+1+len(m.Attrs)+i], nil
}

// SumProduct extracts Σ x_i·x_j over the range (requires WithCovariance).
func (m *MomentSet) SumProduct(results []float64, rangeIdx int, attrI, attrJ string) (float64, error) {
	if !m.WithCovariance {
		return 0, fmt.Errorf("stats: moment set built without covariance queries")
	}
	b, err := m.base(rangeIdx)
	if err != nil {
		return 0, err
	}
	i, err := m.attrPos(attrI)
	if err != nil {
		return 0, err
	}
	j, err := m.attrPos(attrJ)
	if err != nil {
		return 0, err
	}
	if i == j {
		return m.SumSquares(results, rangeIdx, attrI)
	}
	if i > j {
		i, j = j, i
	}
	k := len(m.Attrs)
	// Position of pair (i,j), i<j, in the row-major strict upper triangle.
	pair := i*(2*k-i-1)/2 + (j - i - 1)
	return results[b+1+2*k+pair], nil
}

// Average returns the range mean of attr; ok is false when the range count
// is too small (below countFloor) for the ratio to be meaningful — the
// caveat of any ratio-of-estimates statistic during a progressive run.
func (m *MomentSet) Average(results []float64, rangeIdx int, attr string, countFloor float64) (avg float64, ok bool) {
	c, err := m.Count(results, rangeIdx)
	if err != nil {
		return 0, false
	}
	s, err := m.Sum(results, rangeIdx, attr)
	if err != nil {
		return 0, false
	}
	if c < countFloor || c <= 0 {
		return 0, false
	}
	return s / c, true
}

// Variance returns the population variance of attr over the range.
func (m *MomentSet) Variance(results []float64, rangeIdx int, attr string, countFloor float64) (v float64, ok bool) {
	c, err := m.Count(results, rangeIdx)
	if err != nil {
		return 0, false
	}
	if c < countFloor || c <= 0 {
		return 0, false
	}
	s, err := m.Sum(results, rangeIdx, attr)
	if err != nil {
		return 0, false
	}
	sq, err := m.SumSquares(results, rangeIdx, attr)
	if err != nil {
		return 0, false
	}
	mean := s / c
	v = sq/c - mean*mean
	// Float cancellation (and progressive estimates) can dip slightly below
	// zero; clamp noise proportional to the moment scale.
	if v < 0 && v > -1e-6*(1+sq/c) {
		v = 0
	}
	return v, v >= 0 && !math.IsNaN(v)
}

// Covariance returns the population covariance of the attribute pair over
// the range.
func (m *MomentSet) Covariance(results []float64, rangeIdx int, attrI, attrJ string, countFloor float64) (cov float64, ok bool) {
	c, err := m.Count(results, rangeIdx)
	if err != nil {
		return 0, false
	}
	if c < countFloor || c <= 0 {
		return 0, false
	}
	si, err := m.Sum(results, rangeIdx, attrI)
	if err != nil {
		return 0, false
	}
	sj, err := m.Sum(results, rangeIdx, attrJ)
	if err != nil {
		return 0, false
	}
	sij, err := m.SumProduct(results, rangeIdx, attrI, attrJ)
	if err != nil {
		return 0, false
	}
	cov = sij/c - (si/c)*(sj/c)
	return cov, !math.IsNaN(cov)
}

// Correlation returns the Pearson correlation of the attribute pair over the
// range, derived from the covariance and variances.
func (m *MomentSet) Correlation(results []float64, rangeIdx int, attrI, attrJ string, countFloor float64) (rho float64, ok bool) {
	cov, ok := m.Covariance(results, rangeIdx, attrI, attrJ, countFloor)
	if !ok {
		return 0, false
	}
	vi, ok := m.Variance(results, rangeIdx, attrI, countFloor)
	if !ok {
		return 0, false
	}
	vj, ok := m.Variance(results, rangeIdx, attrJ, countFloor)
	if !ok {
		return 0, false
	}
	if vi <= 0 || vj <= 0 {
		return 0, false
	}
	return cov / math.Sqrt(vi*vj), true
}
