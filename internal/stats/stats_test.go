package stats

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/penalty"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/wavelet"
)

// dataGaussian produces clustered (hence correlated) test data.
func dataGaussian(t *testing.T, schema *dataset.Schema) *dataset.Distribution {
	t.Helper()
	d, err := dataset.GaussianClusters(schema, 3000, 2, 0.08, 7)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewMomentSetLayout(t *testing.T) {
	schema := dataset.MustSchema([]string{"a", "b"}, []int{8, 8})
	ranges, err := query.GridPartition(schema, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMomentSet(schema, ranges, []string{"a", "b"}, true)
	if err != nil {
		t.Fatal(err)
	}
	// per range: 1 count + 2 sums + 2 sumsq + 1 cross = 6.
	if m.PerRange() != 6 {
		t.Fatalf("PerRange = %d", m.PerRange())
	}
	if len(m.Batch) != 12 {
		t.Fatalf("batch size = %d", len(m.Batch))
	}
	mNoCov, err := NewMomentSet(schema, ranges, []string{"a"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if mNoCov.PerRange() != 3 {
		t.Fatalf("PerRange without cov = %d", mNoCov.PerRange())
	}
}

func TestNewMomentSetValidation(t *testing.T) {
	schema := dataset.MustSchema([]string{"a"}, []int{8})
	if _, err := NewMomentSet(schema, nil, []string{"a"}, false); err == nil {
		t.Error("no ranges should fail")
	}
	r := query.FullDomain(schema)
	if _, err := NewMomentSet(schema, []query.Range{r}, nil, false); err == nil {
		t.Error("no attrs should fail")
	}
	if _, err := NewMomentSet(schema, []query.Range{r}, []string{"zzz"}, false); err == nil {
		t.Error("unknown attr should fail")
	}
}

func TestStatisticsMatchBruteForce(t *testing.T) {
	schema := dataset.MustSchema([]string{"a", "b"}, []int{16, 16})
	dist := dataGaussian(t, schema)
	ranges, err := query.GridPartition(schema, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMomentSet(schema, ranges, []string{"a", "b"}, true)
	if err != nil {
		t.Fatal(err)
	}
	results := m.Batch.EvaluateDirect(dist)

	// Brute-force moments per range.
	for ri, r := range ranges {
		var n, sa, sb, saa, sbb, sab float64
		coords := make([]int, 2)
		for x := r.Lo[0]; x <= r.Hi[0]; x++ {
			for y := r.Lo[1]; y <= r.Hi[1]; y++ {
				coords[0], coords[1] = x, y
				c := dist.At(coords)
				n += c
				sa += c * float64(x)
				sb += c * float64(y)
				saa += c * float64(x) * float64(x)
				sbb += c * float64(y) * float64(y)
				sab += c * float64(x) * float64(y)
			}
		}
		gotC, err := m.Count(results, ri)
		if err != nil || gotC != n {
			t.Fatalf("range %d count %g want %g (%v)", ri, gotC, n, err)
		}
		if n == 0 {
			continue
		}
		avg, ok := m.Average(results, ri, "a", 1)
		if !ok || math.Abs(avg-sa/n) > 1e-9 {
			t.Fatalf("range %d avg %g want %g", ri, avg, sa/n)
		}
		v, ok := m.Variance(results, ri, "b", 1)
		wantV := sbb/n - (sb/n)*(sb/n)
		if !ok || math.Abs(v-wantV) > 1e-9*(1+wantV) {
			t.Fatalf("range %d var %g want %g", ri, v, wantV)
		}
		cov, ok := m.Covariance(results, ri, "a", "b", 1)
		wantCov := sab/n - (sa/n)*(sb/n)
		if !ok || math.Abs(cov-wantCov) > 1e-9*(1+math.Abs(wantCov)) {
			t.Fatalf("range %d cov %g want %g", ri, cov, wantCov)
		}
	}
}

func TestCorrelationDetectsClusterDiagonal(t *testing.T) {
	// GaussianClusters ties both attributes to the same cluster center, so
	// the full-domain correlation should be clearly positive.
	schema := dataset.MustSchema([]string{"a", "b"}, []int{16, 16})
	dist := dataGaussian(t, schema)
	m, err := NewMomentSet(schema, []query.Range{query.FullDomain(schema)}, []string{"a", "b"}, true)
	if err != nil {
		t.Fatal(err)
	}
	results := m.Batch.EvaluateDirect(dist)
	rho, ok := m.Correlation(results, 0, "a", "b", 1)
	if !ok {
		t.Fatal("correlation not computable")
	}
	if math.Abs(rho) > 1.0000001 {
		t.Fatalf("correlation %g outside [-1,1]", rho)
	}
}

func TestSumProductSymmetryAndSelf(t *testing.T) {
	schema := dataset.MustSchema([]string{"a", "b"}, []int{8, 8})
	dist := dataGaussian(t, schema)
	m, err := NewMomentSet(schema, []query.Range{query.FullDomain(schema)}, []string{"a", "b"}, true)
	if err != nil {
		t.Fatal(err)
	}
	results := m.Batch.EvaluateDirect(dist)
	ab, err := m.SumProduct(results, 0, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	ba, err := m.SumProduct(results, 0, "b", "a")
	if err != nil {
		t.Fatal(err)
	}
	if ab != ba {
		t.Fatalf("SumProduct not symmetric: %g vs %g", ab, ba)
	}
	aa, err := m.SumProduct(results, 0, "a", "a")
	if err != nil {
		t.Fatal(err)
	}
	sq, err := m.SumSquares(results, 0, "a")
	if err != nil {
		t.Fatal(err)
	}
	if aa != sq {
		t.Fatalf("self product %g != sum of squares %g", aa, sq)
	}
}

func TestSumProductRequiresCovariance(t *testing.T) {
	schema := dataset.MustSchema([]string{"a", "b"}, []int{8, 8})
	m, err := NewMomentSet(schema, []query.Range{query.FullDomain(schema)}, []string{"a", "b"}, false)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]float64, len(m.Batch))
	if _, err := m.SumProduct(results, 0, "a", "b"); err == nil {
		t.Error("SumProduct without covariance queries should fail")
	}
}

func TestIndexErrors(t *testing.T) {
	schema := dataset.MustSchema([]string{"a"}, []int{8})
	m, err := NewMomentSet(schema, []query.Range{query.FullDomain(schema)}, []string{"a"}, false)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]float64, len(m.Batch))
	if _, err := m.Count(results, 5); err == nil {
		t.Error("range index out of bounds should fail")
	}
	if _, err := m.Sum(results, 0, "zzz"); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestStatisticsErrorPaths(t *testing.T) {
	schema := dataset.MustSchema([]string{"a", "b"}, []int{8, 8})
	m, err := NewMomentSet(schema, []query.Range{query.FullDomain(schema)}, []string{"a", "b"}, true)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]float64, len(m.Batch))
	// Unknown attributes and bad range indexes flow through every accessor.
	if _, err := m.SumSquares(results, 0, "zzz"); err == nil {
		t.Error("SumSquares with unknown attr should fail")
	}
	if _, err := m.SumSquares(results, 9, "a"); err == nil {
		t.Error("SumSquares with bad range should fail")
	}
	if _, err := m.SumProduct(results, 0, "zzz", "a"); err == nil {
		t.Error("SumProduct with unknown attrI should fail")
	}
	if _, err := m.SumProduct(results, 0, "a", "zzz"); err == nil {
		t.Error("SumProduct with unknown attrJ should fail")
	}
	if _, err := m.SumProduct(results, 3, "a", "b"); err == nil {
		t.Error("SumProduct with bad range should fail")
	}
	if _, ok := m.Average(results, 9, "a", 1); ok {
		t.Error("Average with bad range should not be ok")
	}
	if _, ok := m.Average(results, 0, "zzz", 1); ok {
		t.Error("Average with unknown attr should not be ok")
	}
	if _, ok := m.Variance(results, 9, "a", 1); ok {
		t.Error("Variance with bad range should not be ok")
	}
	if _, ok := m.Variance(results, 0, "zzz", 1); ok {
		t.Error("Variance with unknown attr should not be ok")
	}
	if _, ok := m.Covariance(results, 9, "a", "b", 1); ok {
		t.Error("Covariance with bad range should not be ok")
	}
	if _, ok := m.Covariance(results, 0, "zzz", "b", 1); ok {
		t.Error("Covariance with unknown attr should not be ok")
	}
	if _, ok := m.Correlation(results, 9, "a", "b", 1); ok {
		t.Error("Correlation with bad range should not be ok")
	}
	// Zero counts: everything unavailable.
	if _, ok := m.Variance(results, 0, "a", 1); ok {
		t.Error("Variance with zero count should not be ok")
	}
	if _, ok := m.Covariance(results, 0, "a", "b", 1); ok {
		t.Error("Covariance with zero count should not be ok")
	}
	// Degenerate data: single point has zero variance, correlation
	// undefined.
	dist := dataset.NewDistribution(schema)
	for i := 0; i < 5; i++ {
		dist.AddTuple([]int{3, 4})
	}
	exact := m.Batch.EvaluateDirect(dist)
	v, ok := m.Variance(exact, 0, "a", 1)
	if !ok || v != 0 {
		t.Fatalf("point-mass variance = %g, ok=%v", v, ok)
	}
	if _, ok := m.Correlation(exact, 0, "a", "b", 1); ok {
		t.Error("correlation of a point mass should be unavailable")
	}
}

func TestAverageGuardsSmallCounts(t *testing.T) {
	schema := dataset.MustSchema([]string{"a"}, []int{8})
	m, err := NewMomentSet(schema, []query.Range{query.FullDomain(schema)}, []string{"a"}, false)
	if err != nil {
		t.Fatal(err)
	}
	results := []float64{0.3, 100, 1000} // count ~0.3: unreliable
	if _, ok := m.Average(results, 0, "a", 1); ok {
		t.Error("average below count floor should not be ok")
	}
	results[0] = 10
	avg, ok := m.Average(results, 0, "a", 1)
	if !ok || avg != 10 {
		t.Fatalf("average = %g, %v", avg, ok)
	}
}

// End to end: progressive statistics through the engine converge to truth.
func TestProgressiveStatisticsThroughEngine(t *testing.T) {
	schema := dataset.MustSchema([]string{"a", "b"}, []int{16, 16})
	dist := dataGaussian(t, schema)
	ranges, err := query.GridPartition(schema, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMomentSet(schema, ranges, []string{"a", "b"}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Degree-2 batch needs Db6.
	plan, err := core.NewWaveletPlan(m.Batch, wavelet.Db6)
	if err != nil {
		t.Fatal(err)
	}
	hat, err := dist.Transform(wavelet.Db6)
	if err != nil {
		t.Fatal(err)
	}
	run := core.NewRun(plan, penalty.SSE{}, storage.NewHashStoreFromDense(hat, 0))
	run.RunToCompletion()
	exact := m.Batch.EvaluateDirect(dist)
	for ri := range ranges {
		// countFloor 0.5: the engine's exact-by-construction counts carry
		// ~1e-10 float noise, so a floor at an attained integer would flap.
		gotAvg, ok1 := m.Average(run.Estimates(), ri, "a", 0.5)
		wantAvg, ok2 := m.Average(exact, ri, "a", 0.5)
		if ok1 != ok2 {
			t.Fatalf("range %d availability mismatch", ri)
		}
		if ok1 && math.Abs(gotAvg-wantAvg) > 1e-6*(1+math.Abs(wantAvg)) {
			t.Fatalf("range %d avg %g want %g", ri, gotAvg, wantAvg)
		}
	}
}
