package ql

import (
	"fmt"
	"strings"

	"repro/internal/query"
)

// Format renders a query back into the textual language, such that
// Parse(schema, Format(q)) reproduces the query exactly. Only the canonical
// aggregate shapes (COUNT, SUM, SUMSQ, SUMPROD) are expressible; arbitrary
// multi-term polynomials return an error.
func Format(q *query.Query) (string, error) {
	if err := q.Validate(); err != nil {
		return "", err
	}
	agg, err := formatAggregate(q)
	if err != nil {
		return "", err
	}
	var preds []string
	for i := range q.Range.Lo {
		lo, hi := q.Range.Lo[i], q.Range.Hi[i]
		name := q.Schema.Names[i]
		max := q.Schema.Sizes[i] - 1
		switch {
		case lo == 0 && hi == max:
			// Full extent: no predicate.
		case lo == hi:
			preds = append(preds, fmt.Sprintf("%s = %d", name, lo))
		case lo == 0:
			preds = append(preds, fmt.Sprintf("%s <= %d", name, hi))
		case hi == max:
			preds = append(preds, fmt.Sprintf("%s >= %d", name, lo))
		default:
			preds = append(preds, fmt.Sprintf("%s BETWEEN %d AND %d", name, lo, hi))
		}
	}
	if len(preds) == 0 {
		return agg, nil
	}
	return agg + " WHERE " + strings.Join(preds, " AND "), nil
}

// FormatBatch renders a batch as ';'-separated statements.
func FormatBatch(b query.Batch) (string, error) {
	parts := make([]string, len(b))
	for i, q := range b {
		s, err := Format(q)
		if err != nil {
			return "", fmt.Errorf("ql: query %d: %w", i, err)
		}
		parts[i] = s
	}
	return strings.Join(parts, ";\n"), nil
}

func formatAggregate(q *query.Query) (string, error) {
	if len(q.Terms) != 1 {
		return "", fmt.Errorf("ql: %d-term polynomial is not expressible", len(q.Terms))
	}
	t := q.Terms[0]
	if t.Coeff != 1 {
		return "", fmt.Errorf("ql: term coefficient %g is not expressible", t.Coeff)
	}
	var attrs []string
	for i, p := range t.Powers {
		switch p {
		case 0:
		case 1:
			attrs = append(attrs, q.Schema.Names[i])
		case 2:
			attrs = append(attrs, q.Schema.Names[i], q.Schema.Names[i])
		default:
			return "", fmt.Errorf("ql: power %d on %s is not expressible", p, q.Schema.Names[i])
		}
	}
	switch len(attrs) {
	case 0:
		return "COUNT()", nil
	case 1:
		return fmt.Sprintf("SUM(%s)", attrs[0]), nil
	case 2:
		if attrs[0] == attrs[1] {
			return fmt.Sprintf("SUMSQ(%s)", attrs[0]), nil
		}
		return fmt.Sprintf("SUMPROD(%s, %s)", attrs[0], attrs[1]), nil
	default:
		return "", fmt.Errorf("ql: degree-%d product is not expressible", len(attrs))
	}
}
