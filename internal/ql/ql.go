// Package ql implements a small aggregate query language so batches can be
// written as text — a step toward the paper's closing goal of "progressive
// implementations of relational algebra as well as commercial OLAP query
// languages". A statement selects one vector-query aggregate and restricts
// the domain with range predicates:
//
//	COUNT()
//	SUM(temperature) WHERE latitude BETWEEN 4 AND 11 AND altitude < 2
//	SUMSQ(salary)   WHERE age >= 25 AND age <= 40
//	SUMPROD(age, salary) WHERE dept = 3
//	SUM(temperature) WHERE altitude = 0 GROUP BY latitude(8), time(16)
//
// Multiple statements separated by ';' form a batch. Predicates on the same
// attribute intersect; attributes without predicates span their full
// domain. All comparisons are on the integer bin domain of the schema.
//
// GROUP BY expands a statement into one query per group cell: each listed
// attribute is split into buckets of the given width (default 1, i.e. one
// group per bin), intersected with the WHERE range. The expansion is the
// OLAP group-by as a batch of range-sums — exactly the workload
// Batch-Biggest-B shares I/O across.
package ql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/dataset"
	"repro/internal/query"
)

// ParseBatch parses a ';'-separated list of statements into a query batch.
// Statements with GROUP BY expand into one query per group cell.
func ParseBatch(schema *dataset.Schema, src string) (query.Batch, error) {
	var batch query.Batch
	for i, stmt := range splitStatements(src) {
		qs, err := parseStatement(schema, stmt)
		if err != nil {
			return nil, fmt.Errorf("ql: statement %d: %w", i+1, err)
		}
		batch = append(batch, qs...)
	}
	if len(batch) == 0 {
		return nil, fmt.Errorf("ql: no statements")
	}
	return batch, nil
}

func splitStatements(src string) []string {
	var out []string
	for _, s := range strings.Split(src, ";") {
		if strings.TrimSpace(s) != "" {
			out = append(out, s)
		}
	}
	return out
}

// Parse parses a single statement (without GROUP BY) into one query.
func Parse(schema *dataset.Schema, src string) (*query.Query, error) {
	qs, err := parseStatement(schema, src)
	if err != nil {
		return nil, err
	}
	if len(qs) != 1 {
		return nil, fmt.Errorf("ql: statement expands to %d queries (GROUP BY?); use ParseBatch", len(qs))
	}
	return qs[0], nil
}

func parseStatement(schema *dataset.Schema, src string) (query.Batch, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{schema: schema, toks: toks}
	qs, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("unexpected %q after statement", p.peek().text)
	}
	return qs, nil
}

// --- lexer ---

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokOp // < <= > >= =
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op, i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '-' || unicode.IsDigit(c):
			j := i + 1
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			if j == i+1 && c == '-' {
				return nil, fmt.Errorf("stray '-' at position %d", i)
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q at position %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

// --- parser ---

type parser struct {
	schema *dataset.Schema
	toks   []token
	pos    int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}
func (p *parser) eof() bool { return p.peek().kind == tokEOF }

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("expected %s at position %d, got %q", what, t.pos, t.text)
	}
	return t, nil
}

func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

// groupSpec is one GROUP BY attribute: the dimension index and the bucket
// width in bins.
type groupSpec struct {
	dim   int
	width int
}

// statement := aggregate [WHERE predicates] [GROUP BY groups]
func (p *parser) statement() (query.Batch, error) {
	agg, err := p.expect(tokIdent, "aggregate name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var attrs []string
	for p.peek().kind == tokIdent {
		a := p.next()
		attrs = append(attrs, a.text)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}

	r := query.FullDomain(p.schema)
	if p.keyword("WHERE") {
		if err := p.predicates(&r); err != nil {
			return nil, err
		}
	}
	groups, err := p.groupBy()
	if err != nil {
		return nil, err
	}

	build := func(r query.Range) (*query.Query, error) {
		name := strings.ToUpper(agg.text)
		switch name {
		case "COUNT":
			if len(attrs) != 0 {
				return nil, fmt.Errorf("COUNT takes no attributes")
			}
			return query.Count(p.schema, r), nil
		case "SUM":
			if len(attrs) != 1 {
				return nil, fmt.Errorf("SUM takes exactly one attribute")
			}
			return query.Sum(p.schema, r, attrs[0])
		case "SUMSQ":
			if len(attrs) != 1 {
				return nil, fmt.Errorf("SUMSQ takes exactly one attribute")
			}
			return query.SumSquares(p.schema, r, attrs[0])
		case "SUMPROD":
			if len(attrs) != 2 {
				return nil, fmt.Errorf("SUMPROD takes exactly two attributes")
			}
			return query.SumProduct(p.schema, r, attrs[0], attrs[1])
		default:
			return nil, fmt.Errorf("unknown aggregate %q (want COUNT, SUM, SUMSQ, SUMPROD)", agg.text)
		}
	}
	return expandGroups(r, groups, build)
}

// groupBy := [GROUP BY group (',' group)*], group := ident ['(' number ')']
func (p *parser) groupBy() ([]groupSpec, error) {
	if !p.keyword("GROUP") {
		return nil, nil
	}
	if !p.keyword("BY") {
		return nil, fmt.Errorf("expected BY after GROUP at position %d", p.peek().pos)
	}
	var groups []groupSpec
	seen := map[int]bool{}
	for {
		attrTok, err := p.expect(tokIdent, "group attribute")
		if err != nil {
			return nil, err
		}
		dim, err := p.schema.AttrIndex(attrTok.text)
		if err != nil {
			return nil, err
		}
		if seen[dim] {
			return nil, fmt.Errorf("attribute %q grouped twice", attrTok.text)
		}
		seen[dim] = true
		width := 1
		if p.peek().kind == tokLParen {
			p.next()
			w, err := p.number()
			if err != nil {
				return nil, err
			}
			if w < 1 {
				return nil, fmt.Errorf("group bucket width must be positive, got %d", w)
			}
			width = w
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
		}
		groups = append(groups, groupSpec{dim: dim, width: width})
		if p.peek().kind != tokComma {
			return groups, nil
		}
		p.next()
	}
}

// expandGroups produces one query per group cell: the Cartesian product of
// width-aligned buckets along each grouped dimension, intersected with the
// WHERE range.
func expandGroups(r query.Range, groups []groupSpec, build func(query.Range) (*query.Query, error)) (query.Batch, error) {
	if len(groups) == 0 {
		q, err := build(r)
		if err != nil {
			return nil, err
		}
		return query.Batch{q}, nil
	}
	g := groups[0]
	var out query.Batch
	// Buckets aligned to multiples of width from zero, clipped to [lo,hi].
	for start := (r.Lo[g.dim] / g.width) * g.width; start <= r.Hi[g.dim]; start += g.width {
		sub := query.Range{Lo: append([]int(nil), r.Lo...), Hi: append([]int(nil), r.Hi...)}
		if start > sub.Lo[g.dim] {
			sub.Lo[g.dim] = start
		}
		if end := start + g.width - 1; end < sub.Hi[g.dim] {
			sub.Hi[g.dim] = end
		}
		qs, err := expandGroups(sub, groups[1:], build)
		if err != nil {
			return nil, err
		}
		out = append(out, qs...)
	}
	return out, nil
}

// predicates := predicate (AND predicate)*
func (p *parser) predicates(r *query.Range) error {
	for {
		if err := p.predicate(r); err != nil {
			return err
		}
		if !p.keyword("AND") {
			return nil
		}
	}
}

// predicate := ident op number | ident BETWEEN number AND number
func (p *parser) predicate(r *query.Range) error {
	attrTok, err := p.expect(tokIdent, "attribute name")
	if err != nil {
		return err
	}
	dim, err := p.schema.AttrIndex(attrTok.text)
	if err != nil {
		return err
	}
	if p.keyword("BETWEEN") {
		lo, err := p.number()
		if err != nil {
			return err
		}
		if !p.keyword("AND") {
			return fmt.Errorf("expected AND in BETWEEN at position %d", p.peek().pos)
		}
		hi, err := p.number()
		if err != nil {
			return err
		}
		return p.tighten(r, dim, lo, hi)
	}
	opTok, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return err
	}
	v, err := p.number()
	if err != nil {
		return err
	}
	size := p.schema.Sizes[dim]
	switch opTok.text {
	case "=":
		return p.tighten(r, dim, v, v)
	case "<":
		return p.tighten(r, dim, 0, v-1)
	case "<=":
		return p.tighten(r, dim, 0, v)
	case ">":
		return p.tighten(r, dim, v+1, size-1)
	case ">=":
		return p.tighten(r, dim, v, size-1)
	default:
		return fmt.Errorf("unknown operator %q", opTok.text)
	}
}

func (p *parser) number() (int, error) {
	t, err := p.expect(tokNumber, "number")
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("bad number %q: %v", t.text, err)
	}
	return v, nil
}

// tighten intersects [lo,hi] into dimension dim of r, clamping to the
// domain and rejecting empty results.
func (p *parser) tighten(r *query.Range, dim, lo, hi int) error {
	if lo < 0 {
		lo = 0
	}
	if max := p.schema.Sizes[dim] - 1; hi > max {
		hi = max
	}
	if lo > r.Lo[dim] {
		r.Lo[dim] = lo
	}
	if hi < r.Hi[dim] {
		r.Hi[dim] = hi
	}
	if r.Lo[dim] > r.Hi[dim] {
		return fmt.Errorf("predicates on %q select an empty range", p.schema.Names[dim])
	}
	return nil
}
