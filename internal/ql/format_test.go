package ql

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/query"
)

func TestFormatRoundTripsParsedStatements(t *testing.T) {
	s := testSchema(t)
	statements := []string{
		"COUNT()",
		"SUM(salary) WHERE age BETWEEN 25 AND 40",
		"SUMSQ(age) WHERE dept = 3",
		"SUMPROD(age, salary) WHERE salary >= 10 AND dept <= 5",
		"COUNT() WHERE age = 0",
		"SUM(age) WHERE age <= 9",
	}
	for _, src := range statements {
		q, err := Parse(s, src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		text, err := Format(q)
		if err != nil {
			t.Fatalf("%s: format: %v", src, err)
		}
		back, err := Parse(s, text)
		if err != nil {
			t.Fatalf("%s -> %q: reparse: %v", src, text, err)
		}
		if back.Range.String() != q.Range.String() {
			t.Fatalf("%s: range changed: %s vs %s", src, back.Range, q.Range)
		}
		if back.Degree() != q.Degree() {
			t.Fatalf("%s: degree changed", src)
		}
	}
}

func TestFormatRandomRangesRoundTrip(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		lo := make([]int, 3)
		hi := make([]int, 3)
		for i, n := range s.Sizes {
			lo[i] = rng.Intn(n)
			hi[i] = lo[i] + rng.Intn(n-lo[i])
		}
		r, err := query.NewRange(s, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		q := query.Count(s, r)
		text, err := Format(q)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(s, text)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		if back.Range.String() != r.String() {
			t.Fatalf("range %s formatted as %q reparsed to %s", r, text, back.Range)
		}
	}
}

func TestFormatBatch(t *testing.T) {
	s := testSchema(t)
	batch, err := ParseBatch(s, "SUM(salary) GROUP BY dept(4)")
	if err != nil {
		t.Fatal(err)
	}
	text, err := FormatBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(text, ";") != len(batch)-1 {
		t.Fatalf("batch text %q has wrong statement count", text)
	}
	back, err := ParseBatch(s, text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(batch) {
		t.Fatalf("round trip changed batch size: %d vs %d", len(back), len(batch))
	}
}

func TestFormatRejectsInexpressible(t *testing.T) {
	s := testSchema(t)
	r := query.FullDomain(s)
	cases := []*query.Query{
		{Schema: s, Range: r, Terms: []query.Term{
			{Coeff: 2, Powers: []int{0, 0, 0}},
		}},
		{Schema: s, Range: r, Terms: []query.Term{
			{Coeff: 1, Powers: []int{3, 0, 0}},
		}},
		{Schema: s, Range: r, Terms: []query.Term{
			{Coeff: 1, Powers: []int{1, 1, 1}},
		}},
		{Schema: s, Range: r, Terms: []query.Term{
			{Coeff: 1, Powers: []int{0, 0, 0}},
			{Coeff: 1, Powers: []int{1, 0, 0}},
		}},
	}
	for i, q := range cases {
		if _, err := Format(q); err == nil {
			t.Errorf("case %d: inexpressible query formatted", i)
		}
	}
	bad := &query.Query{Schema: s, Range: r}
	if _, err := Format(bad); err == nil {
		t.Error("invalid query should fail")
	}
	if _, err := FormatBatch(query.Batch{bad}); err == nil {
		t.Error("invalid batch should fail")
	}
}

func TestFormatSumSquares(t *testing.T) {
	s := testSchema(t)
	q, err := query.SumSquares(s, query.FullDomain(s), "age")
	if err != nil {
		t.Fatal(err)
	}
	text, err := Format(q)
	if err != nil {
		t.Fatal(err)
	}
	if text != "SUMSQ(age)" {
		t.Fatalf("Format = %q", text)
	}
}
