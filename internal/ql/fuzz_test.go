package ql

import (
	"testing"

	"repro/internal/dataset"
)

// FuzzParse exercises the lexer/parser on arbitrary input: it must never
// panic, and any statement it accepts must produce a structurally valid
// query.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"COUNT()",
		"SUM(salary) WHERE age BETWEEN 25 AND 40",
		"SUMPROD(age, salary) WHERE dept = 3",
		"SUMSQ(age) WHERE age >= 1 AND age <= 62",
		"COUNT() WHERE age < 10 AND salary > 5",
		"count() where age=1",
		"SUM(",
		"COUNT() WHERE",
		";;;",
		"SUM(salary) WHERE age BETWEEN -5 AND 9999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema := dataset.MustSchema([]string{"age", "salary", "dept"}, []int{64, 64, 8})
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(schema, src)
		if err != nil {
			return
		}
		if vErr := q.Validate(); vErr != nil {
			t.Fatalf("accepted %q but produced invalid query: %v", src, vErr)
		}
	})
}
