package ql

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/query"
)

func testSchema(t *testing.T) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema([]string{"age", "salary", "dept"}, []int{64, 64, 8})
}

func TestParseCount(t *testing.T) {
	s := testSchema(t)
	q, err := Parse(s, "COUNT()")
	if err != nil {
		t.Fatal(err)
	}
	if q.Degree() != 0 {
		t.Fatalf("degree = %d", q.Degree())
	}
	if q.Range.Volume() != s.Cells() {
		t.Fatal("COUNT() should span the full domain")
	}
}

func TestParseSumWithBetween(t *testing.T) {
	s := testSchema(t)
	q, err := Parse(s, "SUM(salary) WHERE age BETWEEN 25 AND 40")
	if err != nil {
		t.Fatal(err)
	}
	if q.Range.Lo[0] != 25 || q.Range.Hi[0] != 40 {
		t.Fatalf("age range [%d,%d]", q.Range.Lo[0], q.Range.Hi[0])
	}
	if q.Range.Lo[1] != 0 || q.Range.Hi[1] != 63 {
		t.Fatal("salary should span full domain")
	}
	if q.Degree() != 1 {
		t.Fatalf("degree = %d", q.Degree())
	}
}

func TestParseOperators(t *testing.T) {
	s := testSchema(t)
	cases := []struct {
		src    string
		lo, hi int
	}{
		{"COUNT() WHERE age < 10", 0, 9},
		{"COUNT() WHERE age <= 10", 0, 10},
		{"COUNT() WHERE age > 10", 11, 63},
		{"COUNT() WHERE age >= 10", 10, 63},
		{"COUNT() WHERE age = 10", 10, 10},
	}
	for _, c := range cases {
		q, err := Parse(s, c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if q.Range.Lo[0] != c.lo || q.Range.Hi[0] != c.hi {
			t.Fatalf("%s: range [%d,%d], want [%d,%d]", c.src, q.Range.Lo[0], q.Range.Hi[0], c.lo, c.hi)
		}
	}
}

func TestParseConjunctionIntersects(t *testing.T) {
	s := testSchema(t)
	q, err := Parse(s, "COUNT() WHERE age >= 20 AND age < 40 AND dept = 3")
	if err != nil {
		t.Fatal(err)
	}
	if q.Range.Lo[0] != 20 || q.Range.Hi[0] != 39 {
		t.Fatalf("age range [%d,%d]", q.Range.Lo[0], q.Range.Hi[0])
	}
	if q.Range.Lo[2] != 3 || q.Range.Hi[2] != 3 {
		t.Fatalf("dept range [%d,%d]", q.Range.Lo[2], q.Range.Hi[2])
	}
}

func TestParseSumProdAndSumSq(t *testing.T) {
	s := testSchema(t)
	q, err := Parse(s, "SUMPROD(age, salary) WHERE dept = 1")
	if err != nil {
		t.Fatal(err)
	}
	if q.Degree() != 1 {
		t.Fatalf("SUMPROD degree = %d", q.Degree())
	}
	q2, err := Parse(s, "SUMSQ(age)")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Degree() != 2 {
		t.Fatalf("SUMSQ degree = %d", q2.Degree())
	}
}

func TestParseClampsToDomain(t *testing.T) {
	s := testSchema(t)
	q, err := Parse(s, "COUNT() WHERE age <= 1000 AND salary >= -5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Range.Hi[0] != 63 || q.Range.Lo[1] != 0 {
		t.Fatal("out-of-domain bounds should clamp")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	s := testSchema(t)
	if _, err := Parse(s, "sum(salary) where age between 1 and 5 and dept = 2"); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	s := testSchema(t)
	cases := []string{
		"",
		"FROBNICATE()",
		"COUNT(age)",
		"SUM()",
		"SUM(age, salary)",
		"SUMPROD(age)",
		"SUM(bogus)",
		"COUNT() WHERE",
		"COUNT() WHERE age",
		"COUNT() WHERE age !! 3",
		"COUNT() WHERE age BETWEEN 5",
		"COUNT() WHERE age BETWEEN 5 OR 7",
		"COUNT() WHERE bogus = 3",
		"COUNT() WHERE age = 3 trailing",
		"COUNT() WHERE age > 10 AND age < 5", // empty range
		"COUNT() WHERE age = 99",             // empty after clamp (99 > 63)
		"SUM(salary",
		"SUM salary)",
		"COUNT() WHERE age = 1 AND",
		"COUNT() WHERE age = -",
	}
	for _, src := range cases {
		if _, err := Parse(s, src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestParseBatch(t *testing.T) {
	s := testSchema(t)
	batch, err := ParseBatch(s, `
		COUNT() WHERE dept = 0;
		SUM(salary) WHERE dept = 0;
		SUM(salary) WHERE dept = 1
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("batch size %d", len(batch))
	}
	if err := batch.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseBatch(s, "  ;;  "); err == nil {
		t.Error("empty batch should fail")
	}
	if _, err := ParseBatch(s, "COUNT(); BAD()"); err == nil {
		t.Error("bad statement should fail")
	}
}

func TestParsedQueriesEvaluateCorrectly(t *testing.T) {
	s := testSchema(t)
	dist := dataset.NewDistribution(s)
	dist.AddTuple([]int{30, 40, 2})
	dist.AddTuple([]int{30, 40, 2})
	dist.AddTuple([]int{50, 10, 3})

	q, err := Parse(s, "SUM(salary) WHERE age BETWEEN 25 AND 40 AND dept = 2")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.EvaluateDirect(dist); math.Abs(got-80) > 1e-12 {
		t.Fatalf("SUM = %g, want 80", got)
	}
	qc, err := Parse(s, "COUNT() WHERE age > 40")
	if err != nil {
		t.Fatal(err)
	}
	if got := qc.EvaluateDirect(dist); got != 1 {
		t.Fatalf("COUNT = %g, want 1", got)
	}
}

func TestEqualRangeBetweenAndOps(t *testing.T) {
	// BETWEEN lo AND hi must equal the conjunction of >= lo and <= hi.
	s := testSchema(t)
	a, err := Parse(s, "COUNT() WHERE age BETWEEN 10 AND 20")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(s, "COUNT() WHERE age >= 10 AND age <= 20")
	if err != nil {
		t.Fatal(err)
	}
	if a.Range.String() != b.Range.String() {
		t.Fatalf("%s vs %s", a.Range, b.Range)
	}
}

func TestLexerPositionsInErrors(t *testing.T) {
	s := testSchema(t)
	_, err := Parse(s, "COUNT() WHERE age ? 3")
	if err == nil || !strings.Contains(err.Error(), "position") {
		t.Fatalf("error should cite a position, got %v", err)
	}
}

func TestQueryVolumeMatchesPredicates(t *testing.T) {
	s := testSchema(t)
	q, err := Parse(s, "COUNT() WHERE age = 5 AND salary = 6 AND dept = 7")
	if err != nil {
		t.Fatal(err)
	}
	if q.Range.Volume() != 1 {
		t.Fatalf("volume = %d", q.Range.Volume())
	}
	cell := []int{5, 6, 7}
	if !q.Range.Contains(cell) {
		t.Fatal("range should contain the selected cell")
	}
}

func TestGroupByExpandsToBatch(t *testing.T) {
	s := testSchema(t)
	batch, err := ParseBatch(s, "SUM(salary) GROUP BY dept")
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 8 {
		t.Fatalf("batch size %d, want 8 (one per dept)", len(batch))
	}
	for d, q := range batch {
		if q.Range.Lo[2] != d || q.Range.Hi[2] != d {
			t.Fatalf("query %d has dept range [%d,%d]", d, q.Range.Lo[2], q.Range.Hi[2])
		}
	}
}

func TestGroupByBucketsAndWhere(t *testing.T) {
	s := testSchema(t)
	batch, err := ParseBatch(s, "COUNT() WHERE age BETWEEN 10 AND 29 GROUP BY age(8)")
	if err != nil {
		t.Fatal(err)
	}
	// Width-8 buckets aligned to 0 overlapping [10,29]: [8,15]∩ → [10,15],
	// [16,23], [24,29]. Three queries.
	if len(batch) != 3 {
		t.Fatalf("batch size %d, want 3", len(batch))
	}
	wantLo := []int{10, 16, 24}
	wantHi := []int{15, 23, 29}
	for i, q := range batch {
		if q.Range.Lo[0] != wantLo[i] || q.Range.Hi[0] != wantHi[i] {
			t.Fatalf("bucket %d = [%d,%d], want [%d,%d]",
				i, q.Range.Lo[0], q.Range.Hi[0], wantLo[i], wantHi[i])
		}
	}
}

func TestGroupByMultipleAttributes(t *testing.T) {
	s := testSchema(t)
	batch, err := ParseBatch(s, "COUNT() GROUP BY dept(4), age(32)")
	if err != nil {
		t.Fatal(err)
	}
	// 2 dept buckets × 2 age buckets = 4.
	if len(batch) != 4 {
		t.Fatalf("batch size %d, want 4", len(batch))
	}
	// The group cells partition the domain: total counts must match.
	dist := dataset.NewDistribution(s)
	dist.AddTuple([]int{5, 5, 1})
	dist.AddTuple([]int{40, 5, 6})
	var total float64
	for _, q := range batch {
		total += q.EvaluateDirect(dist)
	}
	if total != 2 {
		t.Fatalf("group cells are not a partition: total %g", total)
	}
}

func TestGroupByErrors(t *testing.T) {
	s := testSchema(t)
	cases := []string{
		"COUNT() GROUP age",
		"COUNT() GROUP BY",
		"COUNT() GROUP BY bogus",
		"COUNT() GROUP BY age, age",
		"COUNT() GROUP BY age(0)",
		"COUNT() GROUP BY age(8",
		"COUNT() GROUP BY age(8) trailing",
	}
	for _, src := range cases {
		if _, err := ParseBatch(s, src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
	// Parse (single-query API) must reject GROUP BY expansion.
	if _, err := Parse(s, "COUNT() GROUP BY dept"); err == nil {
		t.Error("Parse should reject multi-query GROUP BY")
	}
}

func TestGroupByMatchesManualPartition(t *testing.T) {
	s := testSchema(t)
	dist := dataset.NewDistribution(s)
	for i := 0; i < 50; i++ {
		dist.AddTuple([]int{(i * 7) % 64, (i * 13) % 64, i % 8})
	}
	batch, err := ParseBatch(s, "SUM(salary) GROUP BY dept")
	if err != nil {
		t.Fatal(err)
	}
	results := batch.EvaluateDirect(dist)
	for d := 0; d < 8; d++ {
		r, err := query.NewRange(s, []int{0, 0, d}, []int{63, 63, d})
		if err != nil {
			t.Fatal(err)
		}
		q, err := query.Sum(s, r, "salary")
		if err != nil {
			t.Fatal(err)
		}
		if want := q.EvaluateDirect(dist); results[d] != want {
			t.Fatalf("dept %d: %g want %g", d, results[d], want)
		}
	}
}

var parseSink *query.Query

func BenchmarkParse(b *testing.B) {
	s := dataset.MustSchema([]string{"age", "salary", "dept"}, []int{64, 64, 8})
	src := "SUM(salary) WHERE age BETWEEN 25 AND 40 AND dept >= 2 AND dept <= 5"
	for i := 0; i < b.N; i++ {
		q, err := Parse(s, src)
		if err != nil {
			b.Fatal(err)
		}
		parseSink = q
	}
}
