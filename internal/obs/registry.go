// Package obs is the observability layer of the system: a dependency-free
// metrics registry (atomic counters, gauges and fixed-bucket histograms with
// Prometheus text exposition), a lightweight tracing facility (per-request
// spans carried via context.Context into a ring-buffer sink, plus per-run
// progressive traces recording the Theorem-1 error-bound trajectory), and
// slog-based structured logging helpers.
//
// The paper's whole point is progressive behaviour — after any retrieval
// prefix the estimates are usable and carry bounds — and this package makes
// that behaviour observable in production: operators can watch the bound
// decay per run, retrieval latency per layer, and degradation (skips,
// retries, injected faults) live, instead of reading one-off experiment
// harness output.
//
// Two design rules govern everything here:
//
//   - Stdlib only. The registry speaks the Prometheus text exposition format
//     directly; no client library is vendored.
//   - Nil is off, and off is free. Every metric method has a nil-receiver
//     fast path, so instrumented packages hold plain metric pointers that
//     are nil until an Observe call installs a registry. The hot paths of
//     the evaluation engine pay one predictable branch and zero allocations
//     when no collector is registered (pinned by BenchmarkNil* and
//     BENCH_obs.json).
package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative to keep the counter monotone; negative
// deltas are ignored).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can go up and down. The zero value is
// ready to use; a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram of float64 observations (seconds,
// for latency histograms). Buckets are cumulative in the exposition, exactly
// as Prometheus expects. A nil *Histogram is a no-op.
type Histogram struct {
	// bounds are the inclusive upper bounds of the buckets, ascending; the
	// implicit +Inf bucket is counts[len(bounds)].
	bounds []float64
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// LatencyBuckets is the default bucket layout for latency histograms, in
// seconds: 500ns to 2.5s in coarse 1-2.5-5 decades — wide enough to cover an
// in-memory Get (tens of ns land in the first bucket) and a faulted,
// retried, remote fetch alike.
var LatencyBuckets = []float64{
	5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1, 2.5,
}

// Label is one metric dimension. Metrics with the same family name and
// different label sets are distinct children of one family.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric family: a name, a type, and children keyed by
// rendered label signature.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histogram bucket bounds

	order    []string // label signatures in registration order
	children map[string]any
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. All methods are safe for concurrent use. A nil
// *Registry is valid: every constructor returns nil, which every metric
// method treats as "off" — the universal kill switch for instrumentation.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// validName matches the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// signature renders labels as the exposition's label block (`{k="v",…}`), or
// "" when there are none. Registration order of the keys is preserved —
// callers use a consistent order per family.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns (creating if needed) the family and the child for the label
// signature. It panics on inconsistent registration — mixed kinds or invalid
// names are programmer errors, caught at process start where Observe calls
// live.
func (r *Registry) lookup(name, help string, kind metricKind, bounds []float64, labels []Label) any {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !validName(l.Key) || l.Key == "le" {
			panic("obs: invalid label key " + strconv.Quote(l.Key) + " on " + name)
		}
	}
	sig := signature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName == nil {
		r.byName = make(map[string]*family)
	}
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, children: make(map[string]any)}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic("obs: metric " + name + " re-registered as a different kind")
	}
	if c, ok := f.children[sig]; ok {
		return c
	}
	var c any
	switch kind {
	case kindCounter:
		c = &Counter{}
	case kindGauge:
		c = &Gauge{}
	default:
		h := &Histogram{bounds: f.bounds}
		h.counts = make([]atomic.Uint64, len(f.bounds)+1)
		c = h
	}
	f.children[sig] = c
	f.order = append(f.order, sig)
	return c
}

// Counter returns (registering on first use) the counter for name and
// labels. On a nil registry it returns nil, which is a valid no-op counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, nil, labels).(*Counter)
}

// Gauge returns (registering on first use) the gauge for name and labels.
// On a nil registry it returns nil, which is a valid no-op gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, nil, labels).(*Gauge)
}

// Histogram returns (registering on first use) the histogram for name and
// labels, with the given bucket upper bounds (ascending; nil selects
// LatencyBuckets). On a nil registry it returns nil, which is a valid no-op
// histogram.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram " + name + " bounds not ascending")
		}
	}
	return r.lookup(name, help, kindHistogram, bounds, labels).(*Histogram)
}

// fnum renders a float in the exposition's number format.
func fnum(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4) to w. Families appear in registration order; children in
// their registration order; histogram buckets are cumulative and end with
// the +Inf bucket, followed by _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var buf bytes.Buffer
	r.mu.Lock()
	for _, f := range r.families {
		fmt.Fprintf(&buf, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(&buf, "# TYPE %s %s\n", f.name, f.kind)
		for _, sig := range f.order {
			switch m := f.children[sig].(type) {
			case *Counter:
				fmt.Fprintf(&buf, "%s%s %d\n", f.name, sig, m.Value())
			case *Gauge:
				fmt.Fprintf(&buf, "%s%s %d\n", f.name, sig, m.Value())
			case *Histogram:
				cum := uint64(0)
				for i, bound := range m.bounds {
					cum += m.counts[i].Load()
					fmt.Fprintf(&buf, "%s_bucket%s %d\n", f.name, bucketSig(sig, fnum(bound)), cum)
				}
				cum += m.counts[len(m.bounds)].Load()
				fmt.Fprintf(&buf, "%s_bucket%s %d\n", f.name, bucketSig(sig, "+Inf"), cum)
				fmt.Fprintf(&buf, "%s_sum%s %s\n", f.name, sig, fnum(m.Sum()))
				fmt.Fprintf(&buf, "%s_count%s %d\n", f.name, sig, m.Count())
			}
		}
	}
	r.mu.Unlock()
	_, err := w.Write(buf.Bytes())
	return err
}

// bucketSig merges a child's label signature with the bucket's le label.
func bucketSig(sig, le string) string {
	if sig == "" {
		return `{le="` + le + `"}`
	}
	return sig[:len(sig)-1] + `,le="` + le + `"}`
}

// Snapshot returns one consistent point-in-time read of every counter and
// gauge (and each histogram's _count and _sum), keyed by name plus rendered
// label signature — e.g. "wvq_sched_submitted_total" or
// `wvq_http_requests_total{endpoint="/query"}`. Consumers that report
// several related counters (the server's /stats) take one Snapshot and read
// every value from it, so the numbers they publish were collected in a
// single pass rather than by independent reads at different instants.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		for _, sig := range f.order {
			switch m := f.children[sig].(type) {
			case *Counter:
				out[f.name+sig] = float64(m.Value())
			case *Gauge:
				out[f.name+sig] = float64(m.Value())
			case *Histogram:
				out[f.name+"_count"+sig] = float64(m.Count())
				out[f.name+"_sum"+sig] = m.Sum()
			}
		}
	}
	return out
}

// Families returns the registered family names in registration order (test
// and diagnostic hook).
func (r *Registry) Families() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.families))
	for i, f := range r.families {
		names[i] = f.name
	}
	return names
}

// sortedKeys is a small helper for deterministic test output.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
