package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Query profiles: the per-run EXPLAIN ANALYZE. Where a RunTrace records
// the *theory* of a run (the Theorem-1 bound trajectory), a QueryProfile
// records its *cost*: where the wall time went once the schedule fanned
// out over the coalescing layer, the tiered .wvls store, the MVCC overlay
// and the TCP shards. The profile is carried via context like a trace;
// an un-profiled context yields a nil *QueryProfile whose methods are all
// no-ops, so the off path pays one context lookup at the few recording
// sites that are not already behind one and nothing else.
//
// Recording sites (all optional — a layer that is not in the stack simply
// contributes nothing): the server records plan source and build time, the
// scheduler records queue delay, the evaluation core records one StepProfile
// per StepBatch, the coalescing store records requested/physical/coalesced
// key counts, the .wvls layout store records tier hits, the MVCC view
// records overlay-vs-base splits, and the shard coordinator records per-
// shard wall time, echoed remote serve time, response bytes and failures.

// PlanProfile attributes the run's setup cost.
type PlanProfile struct {
	// Source is how the plan was obtained: "registry-hit" (prepared handle,
	// cache hit), "registry-build" (prepared handle, built on miss),
	// "cache-hit" (ad-hoc batch, plan cache hit) or "built" (ad-hoc batch,
	// built from scratch).
	Source string `json:"source,omitempty"`
	// BuildNanos is the plan construction time (0 on a cache hit).
	BuildNanos int64 `json:"build_ns"`
	// SetupNanos is the run construction time (schedule materialization).
	SetupNanos int64 `json:"setup_ns"`
	// QueueNanos is time spent waiting for a scheduler worker.
	QueueNanos int64 `json:"queue_ns"`
	// Queries and Terms describe the plan's size (batch width, distinct
	// master-list coefficients).
	Queries int `json:"queries,omitempty"`
	Terms   int `json:"terms,omitempty"`
}

// StepProfile is one StepBatch of the drain as the profile saw it.
type StepProfile struct {
	// Batch is the number of schedule entries the step attempted.
	Batch int `json:"batch"`
	// Retrieved is the run's cumulative retrieval count after the step.
	Retrieved int `json:"retrieved"`
	// Skipped is the number of entries the step skipped on failures.
	Skipped int `json:"skipped,omitempty"`
	// DurNanos is the step's wall time.
	DurNanos int64 `json:"dur_ns"`
	// Bound is the Theorem-1 bound after the step (0 when untraced).
	Bound float64 `json:"bound,omitempty"`
}

// TierProfile attributes retrieved keys to the storage tiers that served
// them. Counters are cumulative over the run; a tier that is not in the
// stack stays zero.
type TierProfile struct {
	// Requested / Physical / Coalesced: keys entering the coalescing layer,
	// keys it actually fetched (flight leads), and keys served by joining
	// another key's flight.
	Requested int64 `json:"requested,omitempty"`
	Physical  int64 `json:"physical,omitempty"`
	Coalesced int64 `json:"coalesced,omitempty"`
	// LayoutHot / LayoutCold: .wvls keys served from the mmap-hot section
	// vs. cold blocks (block LRU or pread); BlockLoads and Preads count the
	// physical block decodes and positioned reads behind the cold hits.
	LayoutHot  int64 `json:"layout_hot,omitempty"`
	LayoutCold int64 `json:"layout_cold,omitempty"`
	BlockLoads int64 `json:"block_loads,omitempty"`
	Preads     int64 `json:"preads,omitempty"`
	// MVCCLayer / MVCCBase: keys resolved from the snapshot's write layers
	// vs. delegated to the base store.
	MVCCLayer int64 `json:"mvcc_layer,omitempty"`
	MVCCBase  int64 `json:"mvcc_base,omitempty"`
}

// ShardProfile is one shard's contribution to a distributed run.
type ShardProfile struct {
	Shard int    `json:"shard"`
	Addr  string `json:"addr,omitempty"`
	// Batches and Keys count the sub-batches and keys routed to the shard.
	Batches int64 `json:"batches"`
	Keys    int64 `json:"keys"`
	// Errors counts failed keys; Degraded counts keys written off wholesale
	// when the shard's whole sub-batch failed (Degraded ⊆ Errors' cause but
	// reported separately: per-key failures vs. shard-down).
	Errors   int64 `json:"errors,omitempty"`
	Degraded int64 `json:"degraded,omitempty"`
	// WallNanos is coordinator-side wall time summed over sub-batches;
	// RemoteNanos is the shard-echoed serve time (v2 wire connections only)
	// — their difference is network + queueing.
	WallNanos   int64 `json:"wall_ns"`
	RemoteNanos int64 `json:"remote_ns,omitempty"`
	// Bytes is response bytes received from the shard.
	Bytes int64 `json:"bytes,omitempty"`
}

// ProfileSnapshot is the JSON shape of a profile: the `profile` section of
// an ?explain=1 response, the terminal SSE event, the slow-query log record
// and the /debug/profiles ring entry.
type ProfileSnapshot struct {
	ID    string    `json:"id"`
	Label string    `json:"label,omitempty"`
	Start time.Time `json:"start"`
	// WallNanos is the run's total wall time (set by Finish; 0 while live).
	WallNanos int64 `json:"wall_ns"`
	// StepNanos is the sum of the steps' wall times — the retrieval share
	// of WallNanos.
	StepNanos int64          `json:"step_ns"`
	Plan      PlanProfile    `json:"plan"`
	Steps     []StepProfile  `json:"steps"`
	Tiers     TierProfile    `json:"tiers"`
	Shards    []ShardProfile `json:"shards,omitempty"`
	// Bound is the Theorem-1 bound trajectory (present when the run was
	// also traced).
	Bound []RunPoint `json:"bound,omitempty"`
	// Slow marks a profile that crossed the slow-query threshold.
	Slow bool `json:"slow,omitempty"`
}

// QueryProfile accumulates one run's profile. A nil *QueryProfile is a
// no-op: every method nil-checks, so recording sites are unconditional.
// Methods are safe for concurrent use — the coordinator's per-shard
// goroutines record concurrently with each other.
type QueryProfile struct {
	mu      sync.Mutex
	snap    ProfileSnapshot
	shards  map[int]*ShardProfile
	wire    map[string]*remoteTally
	trace   *RunTrace
	maxStep int
}

// remoteTally is the wire-level accounting a shard client records under its
// address — the client knows bytes and the shard-echoed serve time but not
// the shard index, so Snapshot merges these into the shard rows by address.
type remoteTally struct {
	bytes       int64
	remoteNanos int64
}

// maxProfileSteps bounds a profile's per-step memory: an exact drain over
// millions of coefficients in tiny batches must not grow an unbounded step
// list. Beyond the cap, step durations still accumulate into StepNanos but
// individual rows are dropped (the cap is generous: a progressive drain
// makes tens of steps, not thousands).
const maxProfileSteps = 4096

// NewQueryProfile starts a profile for the run identified by id
// (conventionally the request ID) and label (e.g. the batch text).
func NewQueryProfile(id, label string) *QueryProfile {
	return &QueryProfile{
		snap:    ProfileSnapshot{ID: id, Label: label, Start: time.Now()},
		shards:  make(map[int]*ShardProfile),
		wire:    make(map[string]*remoteTally),
		maxStep: maxProfileSteps,
	}
}

// SetPlan records how the plan was obtained and what the setup cost.
func (p *QueryProfile) SetPlan(source string, build, setup time.Duration, queries, terms int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.snap.Plan.Source = source
	p.snap.Plan.BuildNanos = build.Nanoseconds()
	p.snap.Plan.SetupNanos = setup.Nanoseconds()
	p.snap.Plan.Queries = queries
	p.snap.Plan.Terms = terms
	p.mu.Unlock()
}

// AddQueueDelay records time spent waiting for a scheduler worker.
func (p *QueryProfile) AddQueueDelay(d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.snap.Plan.QueueNanos += d.Nanoseconds()
	p.mu.Unlock()
}

// AttachTrace links the run's bound trajectory so the snapshot embeds it.
func (p *QueryProfile) AttachTrace(t *RunTrace) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.trace = t
	p.mu.Unlock()
}

// RecordStep appends one StepBatch: attempted batch size, cumulative
// retrieved after the step, entries skipped by this step, wall time, and
// the bound after the step (0 when unknown).
func (p *QueryProfile) RecordStep(batch, retrieved, skipped int, d time.Duration, bound float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.snap.StepNanos += d.Nanoseconds()
	if len(p.snap.Steps) < p.maxStep {
		p.snap.Steps = append(p.snap.Steps, StepProfile{
			Batch:     batch,
			Retrieved: retrieved,
			Skipped:   skipped,
			DurNanos:  d.Nanoseconds(),
			Bound:     bound,
		})
	}
	p.mu.Unlock()
}

// AddCoalesce records one coalescing-layer batch: keys requested, flight
// leads physically fetched, and joins served from another key's flight.
func (p *QueryProfile) AddCoalesce(requested, physical, coalesced int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.snap.Tiers.Requested += int64(requested)
	p.snap.Tiers.Physical += int64(physical)
	p.snap.Tiers.Coalesced += int64(coalesced)
	p.mu.Unlock()
}

// AddLayout records one .wvls batch's tier attribution.
func (p *QueryProfile) AddLayout(hot, cold, blockLoads, preads int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.snap.Tiers.LayoutHot += hot
	p.snap.Tiers.LayoutCold += cold
	p.snap.Tiers.BlockLoads += blockLoads
	p.snap.Tiers.Preads += preads
	p.mu.Unlock()
}

// AddMVCC records one snapshot read's overlay-vs-base split.
func (p *QueryProfile) AddMVCC(layer, base int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.snap.Tiers.MVCCLayer += int64(layer)
	p.snap.Tiers.MVCCBase += int64(base)
	p.mu.Unlock()
}

// AddShard records one shard sub-batch as the coordinator saw it: keys
// routed, coordinator-side wall time, failed keys and wholesale-degraded
// keys. Wire-level numbers arrive separately via AddRemote.
func (p *QueryProfile) AddShard(shard int, addr string, keys int, wall time.Duration, errs, degraded int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	sp := p.shards[shard]
	if sp == nil {
		sp = &ShardProfile{Shard: shard, Addr: addr}
		p.shards[shard] = sp
	}
	sp.Batches++
	sp.Keys += int64(keys)
	sp.WallNanos += wall.Nanoseconds()
	sp.Errors += int64(errs)
	sp.Degraded += int64(degraded)
	p.mu.Unlock()
}

// AddRemote records one wire response from the shard client at addr:
// response bytes received and the shard-echoed serve time (0 on v1
// connections). Snapshot merges these into the shard rows by address.
func (p *QueryProfile) AddRemote(addr string, bytes int, remote time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	rt := p.wire[addr]
	if rt == nil {
		rt = &remoteTally{}
		p.wire[addr] = rt
	}
	rt.bytes += int64(bytes)
	rt.remoteNanos += remote.Nanoseconds()
	p.mu.Unlock()
}

// Finish stamps the run's total wall time. The first Finish wins.
func (p *QueryProfile) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.snap.WallNanos == 0 {
		p.snap.WallNanos = time.Since(p.snap.Start).Nanoseconds()
	}
	p.mu.Unlock()
}

// MarkSlow flags the profile as having crossed the slow-query threshold.
func (p *QueryProfile) MarkSlow() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.snap.Slow = true
	p.mu.Unlock()
}

// Wall returns the finished wall time (0 while live).
func (p *QueryProfile) Wall() time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return time.Duration(p.snap.WallNanos)
}

// Snapshot returns a deep copy of the profile's current state, shard rows
// sorted by shard index, with the bound trajectory pulled from the attached
// run trace. Safe while the run is still advancing.
func (p *QueryProfile) Snapshot() ProfileSnapshot {
	if p == nil {
		return ProfileSnapshot{}
	}
	p.mu.Lock()
	out := p.snap
	out.Steps = make([]StepProfile, len(p.snap.Steps))
	copy(out.Steps, p.snap.Steps)
	out.Shards = make([]ShardProfile, 0, len(p.shards))
	for _, sp := range p.shards {
		row := *sp
		if rt := p.wire[row.Addr]; rt != nil {
			row.Bytes = rt.bytes
			row.RemoteNanos = rt.remoteNanos
		}
		out.Shards = append(out.Shards, row)
	}
	trace := p.trace
	p.mu.Unlock()
	sort.Slice(out.Shards, func(i, j int) bool { return out.Shards[i].Shard < out.Shards[j].Shard })
	if trace != nil {
		out.Bound = trace.Snapshot().Points
	}
	return out
}

// profileKey carries the active profile through a context.
type profileKey struct{}

// WithProfile returns ctx carrying p; recording sites below pick it up via
// ProfileFrom. A nil p returns ctx unchanged (profiling stays off).
func WithProfile(ctx context.Context, p *QueryProfile) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, profileKey{}, p)
}

// ProfileFrom returns the context's profile, or nil when un-profiled. The
// nil return is the off switch: every QueryProfile method no-ops on nil.
func ProfileFrom(ctx context.Context) *QueryProfile {
	if p, ok := ctx.Value(profileKey{}).(*QueryProfile); ok {
		return p
	}
	return nil
}

// DefaultProfileCapacity is the ring size NewObserver uses.
const DefaultProfileCapacity = 64

// ProfileSink retains the last N finished profile snapshots in a ring,
// served at /debug/profiles. Snapshots (not live profiles) are stored so a
// dump never contends with a running query.
type ProfileSink struct {
	mu    sync.Mutex
	buf   []ProfileSnapshot
	next  int
	full  bool
	total uint64
	slow  uint64
}

// NewProfileSink returns a sink holding the last capacity profiles
// (capacity ≤ 0 selects DefaultProfileCapacity).
func NewProfileSink(capacity int) *ProfileSink {
	if capacity <= 0 {
		capacity = DefaultProfileCapacity
	}
	return &ProfileSink{buf: make([]ProfileSnapshot, capacity)}
}

// Add records one finished profile, overwriting the oldest when full.
func (s *ProfileSink) Add(snap ProfileSnapshot) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.buf[s.next] = snap
	s.next++
	s.total++
	if snap.Slow {
		s.slow++
	}
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// Snapshots returns the retained profiles, oldest first.
func (s *ProfileSink) Snapshots() []ProfileSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		out := make([]ProfileSnapshot, s.next)
		copy(out, s.buf[:s.next])
		return out
	}
	out := make([]ProfileSnapshot, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Total returns the number of profiles ever recorded; Slow the number that
// crossed the slow-query threshold.
func (s *ProfileSink) Total() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Slow returns the number of recorded profiles flagged slow.
func (s *ProfileSink) Slow() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slow
}

// Len returns the number of profiles currently retained.
func (s *ProfileSink) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.full {
		return len(s.buf)
	}
	return s.next
}

// Capacity returns the ring's depth (0 on nil).
func (s *ProfileSink) Capacity() int {
	if s == nil {
		return 0
	}
	return len(s.buf)
}
