package obs

import (
	"sync"
	"time"
)

// Run traces record the progressive behaviour the paper proves theorems
// about: the trajectory of the Theorem-1 worst-case error bound as a
// function of retrieved-coefficient count, per run, observable live. Each
// point is (retrieved, bound, skipped, elapsed); PolyFit-style error/latency
// trade-off curves fall straight out of a dump — but continuously, in
// production, not in an offline experiment harness.
//
// Recording is adaptive: a trace keeps at most maxRunPoints points by
// doubling its stride (keep every 2nd point) whenever it fills, so a
// million-step exact run and a 50-step progressive one both produce a
// readable trajectory at bounded memory.

// RunPoint is one sample of a run's bound trajectory.
type RunPoint struct {
	// Retrieved is the run's retrieval count (schedule steps taken) at the
	// sample.
	Retrieved int `json:"retrieved"`
	// Bound is the Theorem-1 worst-case penalty bound K^α·ι_p(ξ′) at the
	// sample (0 once the run is exact).
	Bound float64 `json:"bound"`
	// Skipped is the number of entries skipped by failed retrievals so far.
	Skipped int `json:"skipped,omitempty"`
	// Elapsed is the time since the run trace started.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// maxRunPoints bounds a trace's memory; on overflow the stride doubles.
const maxRunPoints = 512

// RunTrace is one run's bound trajectory, recorded by the evaluation core
// (Run.AttachTrace) as the run advances. A nil *RunTrace is a no-op — the
// evaluation engine holds one unconditionally and pays a nil check per
// batch when tracing is off.
type RunTrace struct {
	id    string
	label string
	start time.Time

	mu       sync.Mutex
	points   []RunPoint
	stride   int
	last     int // retrieved count at the last recorded point, -1 before any
	finished bool
	done     bool
}

// RunTraceSnapshot is the JSON shape of a dumped run trace.
type RunTraceSnapshot struct {
	ID    string    `json:"id"`
	Label string    `json:"label,omitempty"`
	Start time.Time `json:"start"`
	// Done reports the run drained its schedule; Finished that the trace was
	// closed (a live, still-advancing run is Finished=false).
	Done     bool       `json:"done"`
	Finished bool       `json:"finished"`
	Points   []RunPoint `json:"points"`
}

// Record samples the trajectory at the given retrieval count. Samples
// arrive in ascending retrieved order; the trace keeps the first sample and
// every stride-th thereafter, doubling the stride when full.
func (t *RunTrace) Record(retrieved int, bound float64, skipped int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.finished || (t.last >= 0 && retrieved < t.last+t.stride) {
		t.mu.Unlock()
		return
	}
	t.appendLocked(retrieved, bound, skipped)
	t.mu.Unlock()
}

// appendLocked adds a point, compacting and doubling the stride at
// capacity.
func (t *RunTrace) appendLocked(retrieved int, bound float64, skipped int) {
	if len(t.points) >= maxRunPoints {
		keep := t.points[:0]
		for i := 0; i < len(t.points); i += 2 {
			keep = append(keep, t.points[i])
		}
		t.points = keep
		t.stride *= 2
	}
	t.points = append(t.points, RunPoint{
		Retrieved: retrieved,
		Bound:     bound,
		Skipped:   skipped,
		Elapsed:   time.Since(t.start),
	})
	t.last = retrieved
}

// Finish closes the trace with a final sample (always recorded, whatever
// the stride) and marks whether the run drained its schedule. The first
// Finish wins; later calls are no-ops, so the core's auto-finish on Done and
// a server handler's defer can both call it safely.
func (t *RunTrace) Finish(done bool, retrieved int, bound float64, skipped int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.finished {
		if t.last < 0 || retrieved > t.last {
			t.appendLocked(retrieved, bound, skipped)
		}
		t.finished = true
		t.done = done
	}
	t.mu.Unlock()
}

// Finished reports whether the trace has been closed.
func (t *RunTrace) Finished() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.finished
}

// Snapshot returns a copy of the trace's current state (safe while the run
// is still advancing — that is the "watch a bound decay live" path).
func (t *RunTrace) Snapshot() RunTraceSnapshot {
	if t == nil {
		return RunTraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pts := make([]RunPoint, len(t.points))
	copy(pts, t.points)
	return RunTraceSnapshot{
		ID:       t.id,
		Label:    t.label,
		Start:    t.start,
		Done:     t.done,
		Finished: t.finished,
		Points:   pts,
	}
}

// DefaultRunTraceCapacity is the sink size NewObserver uses.
const DefaultRunTraceCapacity = 64

// RunTraceSink retains the last N run traces (live and finished) in a ring.
type RunTraceSink struct {
	mu     sync.Mutex
	buf    []*RunTrace
	next   int
	full   bool
	rtotal uint64
}

// NewRunTraceSink returns a sink holding the last capacity run traces
// (capacity ≤ 0 selects DefaultRunTraceCapacity).
func NewRunTraceSink(capacity int) *RunTraceSink {
	if capacity <= 0 {
		capacity = DefaultRunTraceCapacity
	}
	return &RunTraceSink{buf: make([]*RunTrace, capacity)}
}

// Start registers a new run trace under the given ID (conventionally the
// request ID) and label (e.g. the query batch text). On a nil sink it
// returns nil — a no-op trace.
func (s *RunTraceSink) Start(id, label string) *RunTrace {
	if s == nil {
		return nil
	}
	t := &RunTrace{id: id, label: label, start: time.Now(), stride: 1, last: -1}
	s.mu.Lock()
	s.buf[s.next] = t
	s.next++
	s.rtotal++
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
	return t
}

// Snapshots returns the retained traces' snapshots, oldest first. Live
// (unfinished) traces are included — their trajectory so far is exactly the
// "watch the bound decay during a run" view.
func (s *RunTraceSink) Snapshots() []RunTraceSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	var traces []*RunTrace
	if s.full {
		traces = append(traces, s.buf[s.next:]...)
		traces = append(traces, s.buf[:s.next]...)
	} else {
		traces = append(traces, s.buf[:s.next]...)
	}
	s.mu.Unlock()
	out := make([]RunTraceSnapshot, 0, len(traces))
	for _, t := range traces {
		if t != nil {
			out = append(out, t.Snapshot())
		}
	}
	return out
}

// Total returns the number of traces ever started.
func (s *RunTraceSink) Total() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rtotal
}
