package obs

import (
	"encoding/json"
	"log/slog"
	"net/http"
)

// Observer bundles the four observability facilities — metrics registry,
// span sink, run-trace sink, and structured logger — so layers take one
// handle instead of four. Any field may be nil; every consumer treats nil
// as "off".
type Observer struct {
	Registry *Registry
	Spans    *SpanSink
	Runs     *RunTraceSink
	Log      *slog.Logger
}

// NewObserver returns an Observer with a fresh registry, default-capacity
// span and run-trace sinks, and a discard logger (replace Log to get
// output).
func NewObserver() *Observer {
	return &Observer{
		Registry: NewRegistry(),
		Spans:    NewSpanSink(0),
		Runs:     NewRunTraceSink(0),
		Log:      NopLogger(),
	}
}

// Logger returns the observer's logger, or a discard logger when unset —
// callers never need a nil check.
func (o *Observer) Logger() *slog.Logger {
	if o == nil || o.Log == nil {
		return NopLogger()
	}
	return o.Log
}

// MetricsHandler serves the registry in Prometheus text exposition format
// (mounted at /metrics on the debug listener).
func (o *Observer) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if o == nil || o.Registry == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := o.Registry.WritePrometheus(w); err != nil {
			// The write already started; nothing useful to send the client.
			o.Logger().Warn("metrics write failed", "err", err)
		}
	})
}

// TraceDump is the JSON shape served at /debug/traces.
type TraceDump struct {
	// Spans is the span ring, oldest first.
	Spans []Span `json:"spans"`
	// SpansTotal counts spans ever recorded, including overwritten ones.
	SpansTotal uint64 `json:"spans_total"`
	// Runs is the retained run traces (bound trajectories), oldest first,
	// including live runs.
	Runs []RunTraceSnapshot `json:"runs"`
	// RunsTotal counts run traces ever started.
	RunsTotal uint64 `json:"runs_total"`
}

// TracesHandler serves the span ring and the run-trace ring as one JSON
// document (mounted at /debug/traces on the debug listener).
func (o *Observer) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if o == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		dump := TraceDump{
			Spans:      o.Spans.Spans(),
			SpansTotal: o.Spans.Total(),
			Runs:       o.Runs.Snapshots(),
			RunsTotal:  o.Runs.Total(),
		}
		if dump.Spans == nil {
			dump.Spans = []Span{}
		}
		if dump.Runs == nil {
			dump.Runs = []RunTraceSnapshot{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(dump); err != nil {
			o.Logger().Warn("trace dump write failed", "err", err)
		}
	})
}
