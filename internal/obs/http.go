package obs

import (
	"encoding/json"
	"log/slog"
	"net/http"
)

// Observer bundles the observability facilities — metrics registry, span
// sink, run-trace sink, query-profile sink, and structured logger — so
// layers take one handle instead of five. Any field may be nil; every
// consumer treats nil as "off".
type Observer struct {
	Registry *Registry
	Spans    *SpanSink
	Runs     *RunTraceSink
	Profiles *ProfileSink
	Log      *slog.Logger
}

// NewObserver returns an Observer with a fresh registry, default-capacity
// span, run-trace and profile sinks, and a discard logger (replace Log to
// get output).
func NewObserver() *Observer {
	return &Observer{
		Registry: NewRegistry(),
		Spans:    NewSpanSink(0),
		Runs:     NewRunTraceSink(0),
		Profiles: NewProfileSink(0),
		Log:      NopLogger(),
	}
}

// Logger returns the observer's logger, or a discard logger when unset —
// callers never need a nil check.
func (o *Observer) Logger() *slog.Logger {
	if o == nil || o.Log == nil {
		return NopLogger()
	}
	return o.Log
}

// MetricsHandler serves the registry in Prometheus text exposition format
// (mounted at /metrics on the debug listener).
func (o *Observer) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if o == nil || o.Registry == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := o.Registry.WritePrometheus(w); err != nil {
			// The write already started; nothing useful to send the client.
			o.Logger().Warn("metrics write failed", "err", err)
		}
	})
}

// TraceDump is the JSON shape served at /debug/traces.
type TraceDump struct {
	// Spans is the span ring, oldest first.
	Spans []Span `json:"spans"`
	// SpansTotal counts spans ever recorded, including overwritten ones.
	SpansTotal uint64 `json:"spans_total"`
	// Runs is the retained run traces (bound trajectories), oldest first,
	// including live runs.
	Runs []RunTraceSnapshot `json:"runs"`
	// RunsTotal counts run traces ever started.
	RunsTotal uint64 `json:"runs_total"`
}

// TracesHandler serves the span ring and the run-trace ring as one JSON
// document (mounted at /debug/traces on the debug listener). Two optional
// query parameters narrow the dump — `request_id` keeps spans whose
// RequestID (and runs whose ID) match exactly, `op` keeps spans whose Name
// matches exactly; unfiltered, the shape and content are unchanged.
func (o *Observer) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if o == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		reqID := r.URL.Query().Get("request_id")
		op := r.URL.Query().Get("op")
		dump := TraceDump{
			Spans:      o.Spans.Spans(),
			SpansTotal: o.Spans.Total(),
			Runs:       o.Runs.Snapshots(),
			RunsTotal:  o.Runs.Total(),
		}
		if reqID != "" || op != "" {
			kept := dump.Spans[:0]
			for _, sp := range dump.Spans {
				if (reqID == "" || sp.RequestID == reqID) && (op == "" || sp.Name == op) {
					kept = append(kept, sp)
				}
			}
			dump.Spans = kept
		}
		if reqID != "" {
			kept := dump.Runs[:0]
			for _, rt := range dump.Runs {
				if rt.ID == reqID {
					kept = append(kept, rt)
				}
			}
			dump.Runs = kept
		}
		if dump.Spans == nil {
			dump.Spans = []Span{}
		}
		if dump.Runs == nil {
			dump.Runs = []RunTraceSnapshot{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(dump); err != nil {
			o.Logger().Warn("trace dump write failed", "err", err)
		}
	})
}

// ProfileDump is the JSON shape served at /debug/profiles.
type ProfileDump struct {
	// Profiles is the profile ring, oldest first.
	Profiles []ProfileSnapshot `json:"profiles"`
	// ProfilesTotal counts profiles ever recorded, including overwritten
	// ones; SlowTotal the subset flagged slow.
	ProfilesTotal uint64 `json:"profiles_total"`
	SlowTotal     uint64 `json:"slow_total"`
}

// ProfilesHandler serves the query-profile ring as JSON (mounted at
// /debug/profiles on the debug listener). `?request_id=` keeps profiles
// whose ID matches exactly; `?slow=1` keeps only slow-flagged profiles.
func (o *Observer) ProfilesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if o == nil || o.Profiles == nil {
			http.Error(w, "profiling disabled", http.StatusNotFound)
			return
		}
		reqID := r.URL.Query().Get("request_id")
		slowOnly := r.URL.Query().Get("slow") == "1"
		dump := ProfileDump{
			Profiles:      o.Profiles.Snapshots(),
			ProfilesTotal: o.Profiles.Total(),
			SlowTotal:     o.Profiles.Slow(),
		}
		if reqID != "" || slowOnly {
			kept := dump.Profiles[:0]
			for _, p := range dump.Profiles {
				if (reqID == "" || p.ID == reqID) && (!slowOnly || p.Slow) {
					kept = append(kept, p)
				}
			}
			dump.Profiles = kept
		}
		if dump.Profiles == nil {
			dump.Profiles = []ProfileSnapshot{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(dump); err != nil {
			o.Logger().Warn("profile dump write failed", "err", err)
		}
	})
}
