package obs

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSpanParentChildAndSink(t *testing.T) {
	sink := NewSpanSink(8)
	ctx := WithTrace(context.Background(), "trace-1", sink)
	if got := TraceID(ctx); got != "trace-1" {
		t.Fatalf("TraceID = %q", got)
	}

	ctx1, parent := StartSpan(ctx, "outer")
	_, child := StartSpan(ctx1, "inner")
	child.SetAttr("keys", "3")
	child.SetError(errors.New("boom"))
	child.End()
	parent.End()

	spans := sink.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	// Children end first, so the sink holds inner then outer.
	inner, outer := spans[0], spans[1]
	if inner.Name != "inner" || outer.Name != "outer" {
		t.Fatalf("span order: %q, %q", inner.Name, outer.Name)
	}
	if inner.ParentID != outer.SpanID {
		t.Fatalf("inner.ParentID = %d, outer.SpanID = %d", inner.ParentID, outer.SpanID)
	}
	if outer.ParentID != 0 {
		t.Fatalf("outer must be a root span, ParentID = %d", outer.ParentID)
	}
	if inner.TraceID != "trace-1" || outer.TraceID != "trace-1" {
		t.Fatal("trace IDs not propagated")
	}
	if len(inner.Attrs) != 1 || inner.Attrs[0].Key != "keys" || inner.Attrs[0].Value != "3" {
		t.Fatalf("inner attrs: %v", inner.Attrs)
	}
	if inner.Err != "boom" {
		t.Fatalf("inner error: %q", inner.Err)
	}
	if sink.Total() != 2 {
		t.Fatalf("total = %d", sink.Total())
	}
}

func TestStartSpanUntracedIsNil(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Fatal("untraced context must yield a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("untraced context must be returned unchanged")
	}
	// All methods on the nil span are no-ops.
	sp.SetAttr("k", "v")
	sp.SetError(errors.New("x"))
	sp.End()
}

func TestSpanSinkRingOverwrite(t *testing.T) {
	sink := NewSpanSink(4)
	ctx := WithTrace(context.Background(), "t", sink)
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.End()
	}
	spans := sink.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	if sink.Total() != 10 {
		t.Fatalf("total = %d, want 10", sink.Total())
	}
	// Oldest first: the retained spans are the last four started.
	for i := 1; i < len(spans); i++ {
		if spans[i].SpanID <= spans[i-1].SpanID {
			t.Fatalf("spans not oldest-first: %d then %d", spans[i-1].SpanID, spans[i].SpanID)
		}
	}
}

func TestRequestIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		seen[id] = true
	}
	ctx := WithRequestID(context.Background(), "abc-000001")
	if got := RequestID(ctx); got != "abc-000001" {
		t.Fatalf("RequestID = %q", got)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Fatalf("RequestID on bare context = %q", got)
	}
}

func TestRunTraceStrideCompaction(t *testing.T) {
	sink := NewRunTraceSink(4)
	tr := sink.Start("req-1", "SUM(x)")
	const steps = 5000
	for i := 1; i <= steps; i++ {
		tr.Record(i, 1/float64(i), 0)
	}
	tr.Finish(true, steps, 0, 0)

	snap := tr.Snapshot()
	if len(snap.Points) > maxRunPoints {
		t.Fatalf("trace kept %d points, cap is %d", len(snap.Points), maxRunPoints)
	}
	if len(snap.Points) < maxRunPoints/4 {
		t.Fatalf("trace kept only %d points — compaction too aggressive", len(snap.Points))
	}
	if !snap.Finished || !snap.Done {
		t.Fatal("trace must be finished and done")
	}
	// Retrieved strictly ascending, first point near the start, final point
	// exact.
	for i := 1; i < len(snap.Points); i++ {
		if snap.Points[i].Retrieved <= snap.Points[i-1].Retrieved {
			t.Fatalf("points not ascending at %d", i)
		}
	}
	if snap.Points[0].Retrieved != 1 {
		t.Fatalf("first recorded point at %d, want 1", snap.Points[0].Retrieved)
	}
	last := snap.Points[len(snap.Points)-1]
	if last.Retrieved != steps || last.Bound != 0 {
		t.Fatalf("final point = %+v", last)
	}
}

func TestRunTraceFinishFirstWins(t *testing.T) {
	sink := NewRunTraceSink(0)
	tr := sink.Start("req-2", "")
	tr.Record(1, 0.9, 0)
	tr.Finish(true, 10, 0, 0)
	tr.Finish(false, 99, 7, 3) // late duplicate (e.g. server handler defer)
	snap := tr.Snapshot()
	if !snap.Done {
		t.Fatal("second Finish must not override the first")
	}
	last := snap.Points[len(snap.Points)-1]
	if last.Retrieved != 10 {
		t.Fatalf("final point retrieved = %d, want 10", last.Retrieved)
	}
	if tr.Record(20, 0.1, 0); len(tr.Snapshot().Points) != len(snap.Points) {
		t.Fatal("Record after Finish must be ignored")
	}
}

func TestRunTraceSinkIncludesLiveTraces(t *testing.T) {
	sink := NewRunTraceSink(2)
	live := sink.Start("live", "")
	live.Record(5, 0.5, 0)
	snaps := sink.Snapshots()
	if len(snaps) != 1 || snaps[0].Finished {
		t.Fatalf("live trace missing or finished: %+v", snaps)
	}
	if len(snaps[0].Points) != 1 || snaps[0].Points[0].Bound != 0.5 {
		t.Fatalf("live points: %+v", snaps[0].Points)
	}
}

func TestNilSinksAndTraces(t *testing.T) {
	var sink *SpanSink
	if sink.Spans() != nil || sink.Total() != 0 {
		t.Fatal("nil span sink reads must be empty")
	}
	ctx := WithTrace(context.Background(), "id", nil)
	if _, sp := StartSpan(ctx, "s"); sp != nil {
		t.Fatal("WithTrace(nil sink) must keep tracing off")
	}
	var rsink *RunTraceSink
	if tr := rsink.Start("x", ""); tr != nil {
		t.Fatal("nil run-trace sink must hand out nil traces")
	}
	if rsink.Snapshots() != nil || rsink.Total() != 0 {
		t.Fatal("nil run-trace sink reads must be empty")
	}
}

func TestObserverHandlers(t *testing.T) {
	o := NewObserver()
	o.Registry.Counter("test_handler_total", "Handler.").Inc()
	ctx := WithTrace(context.Background(), "t", o.Spans)
	_, sp := StartSpan(ctx, "handler-span")
	sp.End()
	o.Runs.Start("r", "label").Finish(true, 1, 0, 0)

	rec := httptest.NewRecorder()
	o.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_handler_total 1") {
		t.Fatalf("/metrics body missing counter:\n%s", rec.Body)
	}

	rec = httptest.NewRecorder()
	o.TracesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/traces status %d", rec.Code)
	}
	var dump TraceDump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("trace dump not JSON: %v", err)
	}
	if dump.SpansTotal != 1 || len(dump.Spans) != 1 || dump.Spans[0].Name != "handler-span" {
		t.Fatalf("span dump: %+v", dump)
	}
	if dump.RunsTotal != 1 || len(dump.Runs) != 1 || !dump.Runs[0].Finished {
		t.Fatalf("run dump: %+v", dump.Runs)
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var sb strings.Builder
	log, err := NewLogger("json", 0, &sb)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", "k", "v")
	var line map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &line); err != nil {
		t.Fatalf("json log line not JSON: %v (%q)", err, sb.String())
	}
	if line["msg"] != "hello" || line["k"] != "v" {
		t.Fatalf("log line: %v", line)
	}
	if _, err := NewLogger("xml", 0, &sb); err == nil {
		t.Fatal("unknown format must error")
	}
	ctx := WithLogger(context.Background(), log)
	if Logger(ctx) != log {
		t.Fatal("context logger not returned")
	}
	if Logger(context.Background()) == nil {
		t.Fatal("bare context must yield a usable discard logger")
	}
}
