package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

// parseExposition parses Prometheus text exposition into samples keyed by
// "name{labels}" plus the set of TYPE declarations, failing the test on any
// malformed line. It is deliberately strict: every non-comment line must be
// `<id> <number>`, every sample must follow a HELP/TYPE header for its
// family.
func parseExposition(t *testing.T, text string) (samples map[string]float64, types map[string]string) {
	t.Helper()
	samples = make(map[string]float64)
	types = make(map[string]string)
	helped := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
				t.Fatalf("malformed HELP line: %q", line)
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			if !helped[parts[0]] {
				t.Fatalf("TYPE before HELP for %s", parts[0])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		id, num := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(num, 64)
		if err != nil && num != "+Inf" {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		name := id
		if i := strings.IndexByte(id, '{'); i >= 0 {
			if !strings.HasSuffix(id, "}") {
				t.Fatalf("unterminated label block: %q", line)
			}
			name = id[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if types[name] == "" && types[base] == "" {
			t.Fatalf("sample %q has no TYPE declaration", line)
		}
		if _, dup := samples[id]; dup {
			t.Fatalf("duplicate sample %q", id)
		}
		samples[id] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples, types
}

func scrape(t *testing.T, r *Registry) (map[string]float64, map[string]string) {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, buf.String())
}

func TestExpositionParseBack(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	labeled := r.Counter("test_requests_total", "Requests.", L("code", "200"))
	g := r.Gauge("test_depth", "Depth.")
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})

	c.Add(3)
	labeled.Inc()
	g.Set(-7)
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	samples, types := scrape(t, r)
	if types["test_ops_total"] != "counter" || types["test_depth"] != "gauge" ||
		types["test_latency_seconds"] != "histogram" {
		t.Fatalf("wrong TYPE declarations: %v", types)
	}
	if samples["test_ops_total"] != 3 {
		t.Fatalf("counter: got %v", samples["test_ops_total"])
	}
	if samples[`test_requests_total{code="200"}`] != 1 {
		t.Fatalf("labeled counter missing: %v", samples)
	}
	if samples["test_depth"] != -7 {
		t.Fatalf("gauge: got %v", samples["test_depth"])
	}
	// Buckets are cumulative and end at +Inf == _count.
	buckets := []struct {
		le   string
		want float64
	}{{"0.01", 2}, {"0.1", 3}, {"1", 4}, {"+Inf", 5}}
	prev := 0.0
	for _, b := range buckets {
		id := fmt.Sprintf(`test_latency_seconds_bucket{le="%s"}`, b.le)
		got, ok := samples[id]
		if !ok {
			t.Fatalf("missing bucket %s", id)
		}
		if got != b.want {
			t.Fatalf("bucket %s: got %v want %v", id, got, b.want)
		}
		if got < prev {
			t.Fatalf("bucket %s not cumulative", id)
		}
		prev = got
	}
	if samples["test_latency_seconds_count"] != 5 {
		t.Fatalf("histogram count: got %v", samples["test_latency_seconds_count"])
	}
	if math.Abs(samples["test_latency_seconds_sum"]-5.56) > 1e-12 {
		t.Fatalf("histogram sum: got %v", samples["test_latency_seconds_sum"])
	}
}

func TestCountersMonotoneAcrossScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_mono_total", "Monotone.")
	h := r.Histogram("test_mono_seconds", "Monotone histogram.", nil)
	var prev map[string]float64
	for round := 0; round < 5; round++ {
		c.Add(int64(round))
		h.Observe(float64(round) / 100)
		cur, _ := scrape(t, r)
		if prev != nil {
			for id, was := range prev {
				if cur[id] < was {
					t.Fatalf("round %d: %s went backwards: %v -> %v", round, id, was, cur[id])
				}
			}
		}
		prev = cur
	}
	if prev["test_mono_total"] != 0+1+2+3+4 {
		t.Fatalf("final counter: %v", prev["test_mono_total"])
	}
}

func TestCounterIgnoresNegativeAdd(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_neg_total", "Negative deltas ignored.")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("got %d", c.Value())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_escape_total", "Escaping.", L("q", "a\"b\\c\nd")).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `test_escape_total{q="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaped sample %q not found in:\n%s", want, buf.String())
	}
}

func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_kind_total", "A counter.")
	mustPanic(t, "kind mismatch", func() { r.Gauge("test_kind_total", "Now a gauge.") })
	mustPanic(t, "invalid name", func() { r.Counter("1bad", "Bad name.") })
	mustPanic(t, "reserved le label", func() {
		r.Histogram("test_le_seconds", "Bad label.", nil, L("le", "1"))
	})
	mustPanic(t, "non-ascending bounds", func() {
		r.Histogram("test_bounds_seconds", "Bad bounds.", []float64{1, 1})
	})
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestSnapshotKeys(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_snap_total", "Snap.").Add(2)
	r.Gauge("test_snap_depth", "Snap.").Set(4)
	r.Histogram("test_snap_seconds", "Snap.", nil, L("op", "get")).Observe(0.25)
	snap := r.Snapshot()
	if snap["test_snap_total"] != 2 || snap["test_snap_depth"] != 4 {
		t.Fatalf("snapshot: %v", snap)
	}
	if snap[`test_snap_seconds_count{op="get"}`] != 1 {
		t.Fatalf("histogram count key missing: %v", sortedKeys(snap))
	}
	if math.Abs(snap[`test_snap_seconds_sum{op="get"}`]-0.25) > 1e-12 {
		t.Fatalf("histogram sum key: %v", snap)
	}
}

func TestNilRegistryAndNilMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "h")
	g := r.Gauge("x", "h")
	h := r.Histogram("x_seconds", "h", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Inc()
	g.Dec()
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil || r.Families() != nil {
		t.Fatal("nil registry reads must be empty")
	}
}

// The "off is free" contract: with no registry observed, metric calls on nil
// receivers must not allocate.
func TestNilFastPathZeroAllocs(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
	)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(7)
		g.Set(3)
		g.Add(-1)
		h.Observe(0.001)
	}); n != 0 {
		t.Fatalf("nil metric ops allocated %v times per run", n)
	}
	var tr *RunTrace
	if n := testing.AllocsPerRun(100, func() {
		tr.Record(1, 0.5, 0)
		tr.Finish(true, 2, 0, 0)
	}); n != 0 {
		t.Fatalf("nil run-trace ops allocated %v times per run", n)
	}
	var sp *ActiveSpan
	if n := testing.AllocsPerRun(100, func() {
		sp.SetAttr("k", "v")
		sp.SetError(nil)
		sp.End()
	}); n != 0 {
		t.Fatalf("nil span ops allocated %v times per run", n)
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}

func BenchmarkNilRunTraceRecord(b *testing.B) {
	var t *RunTrace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Record(i, 1, 0)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "Bench.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "Bench.", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}
