package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Tracing: per-request/per-run spans carried via context.Context into a
// fixed-size ring-buffer sink, dumpable at /debug/traces. The design trades
// completeness for cost — the sink keeps the last N finished spans, which is
// what an operator needs to answer "what did the slow request just do" —
// and the off switch is structural: a context without a trace makes
// StartSpan return a nil span whose methods are no-ops, so un-traced
// requests pay one context lookup per span site and nothing else.

// Attr is one key/value annotation on a span. Values are pre-rendered
// strings so the hot path never reflects.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one finished span as stored in the sink.
type Span struct {
	TraceID  string `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id,omitempty"`
	// RequestID is the request the span served, as a first-class field:
	// concurrent runs interleave in the ring, and profile assembly and the
	// /debug/traces?request_id= filter select on it exactly, never by
	// substring-matching attrs.
	RequestID string        `json:"request_id,omitempty"`
	Name      string        `json:"name"`
	Start     time.Time     `json:"start"`
	Duration  time.Duration `json:"duration_ns"`
	Attrs     []Attr        `json:"attrs,omitempty"`
	Err       string        `json:"error,omitempty"`
}

// SpanSink is a fixed-capacity ring buffer of finished spans. Concurrent
// spans from any number of goroutines record into one sink; when full, the
// oldest spans are overwritten.
type SpanSink struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	full  bool
	total uint64
	ids   atomic.Uint64
}

// DefaultSpanCapacity is the sink size NewObserver uses.
const DefaultSpanCapacity = 512

// NewSpanSink returns a sink holding the last capacity finished spans
// (capacity ≤ 0 selects DefaultSpanCapacity).
func NewSpanSink(capacity int) *SpanSink {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanSink{buf: make([]Span, capacity)}
}

// record appends one finished span, overwriting the oldest when full.
func (s *SpanSink) record(sp Span) {
	s.mu.Lock()
	s.buf[s.next] = sp
	s.next++
	s.total++
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (s *SpanSink) Spans() []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		out := make([]Span, s.next)
		copy(out, s.buf[:s.next])
		return out
	}
	out := make([]Span, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Total returns the number of spans ever recorded (including overwritten
// ones).
func (s *SpanSink) Total() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// ActiveSpan is an in-progress span. A nil *ActiveSpan (returned by
// StartSpan on an un-traced context) is a no-op.
type ActiveSpan struct {
	sink *SpanSink
	rec  Span
}

// SetAttr annotates the span. Values are plain strings; render numbers with
// strconv at the call site.
func (a *ActiveSpan) SetAttr(key, value string) {
	if a != nil {
		a.rec.Attrs = append(a.rec.Attrs, Attr{Key: key, Value: value})
	}
}

// SetError records err's message on the span (nil err is ignored).
func (a *ActiveSpan) SetError(err error) {
	if a != nil && err != nil {
		a.rec.Err = err.Error()
	}
}

// End finishes the span and records it into the sink. End is not
// idempotent; call it exactly once (defer-friendly).
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.rec.Duration = time.Since(a.rec.Start)
	a.sink.record(a.rec)
}

// traceKey carries the active trace through a context.
type traceKey struct{}

type traceCtx struct {
	id     string
	sink   *SpanSink
	parent uint64
}

// WithTrace returns ctx carrying a trace: spans started below record into
// sink under the given trace ID. A nil sink returns ctx unchanged (tracing
// stays off).
func WithTrace(ctx context.Context, traceID string, sink *SpanSink) context.Context {
	if sink == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, traceCtx{id: traceID, sink: sink})
}

// TraceID returns the context's trace ID, or "" when untraced.
func TraceID(ctx context.Context) string {
	if tc, ok := ctx.Value(traceKey{}).(traceCtx); ok {
		return tc.id
	}
	return ""
}

// StartSpan starts a span named name if ctx carries a trace, returning a
// derived context under which further spans become children. On an untraced
// context it returns ctx unchanged and a nil span whose methods are no-ops —
// the zero-cost off switch.
func StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	tc, ok := ctx.Value(traceKey{}).(traceCtx)
	if !ok {
		return ctx, nil
	}
	sp := &ActiveSpan{
		sink: tc.sink,
		rec: Span{
			TraceID:   tc.id,
			SpanID:    tc.sink.ids.Add(1),
			ParentID:  tc.parent,
			RequestID: RequestID(ctx),
			Name:      name,
			Start:     time.Now(),
		},
	}
	child := traceCtx{id: tc.id, sink: tc.sink, parent: sp.rec.SpanID}
	return context.WithValue(ctx, traceKey{}, child), sp
}

// Request IDs: a cheap, unique-per-process correlation ID attached to every
// HTTP request by the server middleware and threaded through logs, spans and
// run traces.

type requestIDKey struct{}

var (
	reqPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Fallback: time-derived prefix; uniqueness within the process
			// still holds via the counter.
			binary.LittleEndian.PutUint32(b[:], uint32(time.Now().UnixNano()))
		}
		return fmt.Sprintf("%08x", binary.LittleEndian.Uint32(b[:]))
	}()
	reqCounter atomic.Uint64
)

// NewRequestID returns a process-unique request ID: a random per-process
// prefix plus a sequence number.
func NewRequestID() string {
	return fmt.Sprintf("%s-%06d", reqPrefix, reqCounter.Add(1))
}

// WithRequestID returns ctx carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the context's request ID, or "" when none was attached.
func RequestID(ctx context.Context) string {
	if id, ok := ctx.Value(requestIDKey{}).(string); ok {
		return id
	}
	return ""
}
