package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// Structured logging: wvqd and the HTTP server log through *slog.Logger
// with request IDs attached, replacing bare fmt/log prints. The helpers
// here pick the handler format and thread request-scoped loggers through
// contexts; `make obs-lint` enforces that non-test library packages never
// print directly.

// NewLogger returns a slog logger writing to w in the given format ("text"
// or "json") at the given level.
func NewLogger(format string, level slog.Level, w io.Writer) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// NopLogger returns a logger that discards everything — the default where a
// logger is required but none was configured.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}

type loggerKey struct{}

// WithLogger returns ctx carrying l.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerKey{}, l)
}

// Logger returns the context's logger, or a discard logger when none is
// attached — callers can log unconditionally.
func Logger(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok {
		return l
	}
	return NopLogger()
}
