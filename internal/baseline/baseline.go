// Package baseline implements the two classic approximate-query-processing
// competitors the paper's related work discusses, as additional comparison
// points for the evaluation:
//
//   - Histogram synopses (cf. Poosala & Ganti [10]): an equi-width bucket
//     grid storing per-bucket tuple counts and attribute sums, answering
//     range-sums under the uniform-spread assumption;
//   - Sampling (cf. online aggregation, Hellerstein et al. [7]): a uniform
//     tuple sample scaled up by the sampling rate, refined progressively as
//     more of the sample is scanned.
//
// Both are budgeted in "stored values", making them comparable to a wavelet
// coefficient budget.
package baseline

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/wavelet"
)

// Histogram is an equi-width bucket grid over the schema domain. Each
// bucket stores the tuple count and, per attribute, the sum of values of
// tuples in the bucket — enough to answer COUNT and SUM range queries under
// the uniform-spread assumption.
type Histogram struct {
	schema  *dataset.Schema
	buckets []int // buckets per dimension
	widths  []int // cells per bucket per dimension
	count   []float64
	sums    [][]float64 // per attribute, per bucket
}

// NewHistogram builds the synopsis with the given per-dimension bucket
// counts (each must divide the dimension size).
func NewHistogram(d *dataset.Distribution, bucketsPerDim []int) (*Histogram, error) {
	schema := d.Schema
	if len(bucketsPerDim) != schema.NumDims() {
		return nil, fmt.Errorf("baseline: %d bucket counts for %d dims", len(bucketsPerDim), schema.NumDims())
	}
	total := 1
	widths := make([]int, len(bucketsPerDim))
	for i, b := range bucketsPerDim {
		if b < 1 || schema.Sizes[i]%b != 0 {
			return nil, fmt.Errorf("baseline: %d buckets do not divide dimension %d (size %d)", b, i, schema.Sizes[i])
		}
		widths[i] = schema.Sizes[i] / b
		total *= b
	}
	h := &Histogram{
		schema:  schema,
		buckets: append([]int(nil), bucketsPerDim...),
		widths:  widths,
		count:   make([]float64, total),
		sums:    make([][]float64, schema.NumDims()),
	}
	for a := range h.sums {
		h.sums[a] = make([]float64, total)
	}
	coords := make([]int, schema.NumDims())
	for idx, c := range d.Cells {
		if c == 0 {
			continue
		}
		wavelet.Unflatten(idx, schema.Sizes, coords)
		b := h.bucketOf(coords)
		h.count[b] += c
		for a, x := range coords {
			h.sums[a][b] += c * float64(x)
		}
	}
	return h, nil
}

func (h *Histogram) bucketOf(coords []int) int {
	b := 0
	for i, c := range coords {
		b = b*h.buckets[i] + c/h.widths[i]
	}
	return b
}

// StoredValues returns the synopsis size in stored numbers: one count plus
// one sum per attribute per bucket.
func (h *Histogram) StoredValues() int {
	return len(h.count) * (1 + h.schema.NumDims())
}

// Estimate answers a COUNT or single-attribute SUM query from the synopsis
// under the uniform-spread assumption: each bucket's mass is spread evenly
// over its cells, and within a partially-overlapped bucket the attribute sum
// is scaled by the overlap fraction with a first-order correction toward the
// overlap's mean coordinate.
func (h *Histogram) Estimate(q *query.Query) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	deg := q.Degree()
	if deg > 1 {
		return 0, fmt.Errorf("baseline: histogram answers only degree ≤ 1 queries, got %d", deg)
	}
	// Identify the query shape: count (all powers zero) or sum over one
	// attribute.
	sumAttr := -1
	var coeff float64
	for _, t := range q.Terms {
		coeff += t.Coeff
		for i, p := range t.Powers {
			if p == 1 {
				if sumAttr >= 0 && sumAttr != i {
					return 0, fmt.Errorf("baseline: histogram answers single-attribute sums only")
				}
				sumAttr = i
			}
		}
	}
	var est float64
	// Enumerate buckets overlapping the range.
	bLo := make([]int, h.schema.NumDims())
	bHi := make([]int, h.schema.NumDims())
	for i := range bLo {
		bLo[i] = q.Range.Lo[i] / h.widths[i]
		bHi[i] = q.Range.Hi[i] / h.widths[i]
	}
	idx := append([]int(nil), bLo...)
	for {
		b := 0
		frac := 1.0
		for i, bi := range idx {
			b = b*h.buckets[i] + bi
			cellLo := bi * h.widths[i]
			cellHi := cellLo + h.widths[i] - 1
			lo := max(cellLo, q.Range.Lo[i])
			hi := min(cellHi, q.Range.Hi[i])
			frac *= float64(hi-lo+1) / float64(h.widths[i])
		}
		if sumAttr < 0 {
			est += coeff * frac * h.count[b]
		} else if cnt := h.count[b]; cnt > 0 {
			// Overlap count under uniform spread, times the mean attribute
			// value over the overlapped segment. The segment mean under
			// uniform spread is its midpoint, shifted by the bucket's
			// observed mean offset from the bucket midpoint.
			overlapCount := cnt * frac
			cellLo := idx[sumAttr] * h.widths[sumAttr]
			cellHi := cellLo + h.widths[sumAttr] - 1
			lo := max(cellLo, q.Range.Lo[sumAttr])
			hi := min(cellHi, q.Range.Hi[sumAttr])
			segMean := float64(lo+hi) / 2
			uniformMid := float64(cellLo+cellHi) / 2
			actualMean := h.sums[sumAttr][b] / cnt
			est += coeff * overlapCount * (segMean + (actualMean - uniformMid))
		}
		// Odometer.
		i := len(idx) - 1
		for i >= 0 {
			idx[i]++
			if idx[i] <= bHi[i] {
				break
			}
			idx[i] = bLo[i]
			i--
		}
		if i < 0 {
			return est, nil
		}
	}
}

// Sample is a uniform tuple sample with scale-up estimation — the
// online-aggregation baseline. Tuples are drawn without replacement from
// the distribution's cells proportionally to multiplicity.
type Sample struct {
	schema *dataset.Schema
	tuples [][]int
	total  int64
}

// NewSample draws k tuples uniformly from the distribution (with
// replacement; for k ≪ total the difference is negligible).
func NewSample(d *dataset.Distribution, k int, seed int64) (*Sample, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: sample size must be positive, got %d", k)
	}
	if d.TupleCount == 0 {
		return nil, fmt.Errorf("baseline: empty distribution")
	}
	// Cumulative mass over nonzero cells.
	type cell struct {
		idx int
		cum float64
	}
	cells := make([]cell, 0, 1024)
	var cum float64
	for idx, c := range d.Cells {
		if c > 0 {
			cum += c
			cells = append(cells, cell{idx, cum})
		}
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Sample{schema: d.Schema, total: d.TupleCount}
	for i := 0; i < k; i++ {
		u := rng.Float64() * cum
		lo, hi := 0, len(cells)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cells[mid].cum < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		coords := make([]int, d.Schema.NumDims())
		wavelet.Unflatten(cells[lo].idx, d.Schema.Sizes, coords)
		s.tuples = append(s.tuples, coords)
	}
	return s, nil
}

// StoredValues returns the synopsis size in stored numbers (one coordinate
// vector per sampled tuple).
func (s *Sample) StoredValues() int { return len(s.tuples) * s.schema.NumDims() }

// Estimate answers a query by scaling the sample: Σ over sampled tuples in
// the range of p(x), times total/k. The optional prefix argument uses only
// the first `prefix` sample tuples — the progressive refinement of online
// aggregation (pass len ≤ 0 for the full sample).
func (s *Sample) Estimate(q *query.Query, prefix int) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if prefix <= 0 || prefix > len(s.tuples) {
		prefix = len(s.tuples)
	}
	var acc float64
	for _, coords := range s.tuples[:prefix] {
		if !q.Range.Contains(coords) {
			continue
		}
		for _, t := range q.Terms {
			term := t.Coeff
			for i, p := range t.Powers {
				for j := 0; j < p; j++ {
					term *= float64(coords[i])
				}
			}
			acc += term
		}
	}
	return acc * float64(s.total) / float64(prefix), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
