package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/query"
)

func testDist(t *testing.T) (*dataset.Schema, *dataset.Distribution) {
	t.Helper()
	schema := dataset.MustSchema([]string{"x", "y"}, []int{32, 32})
	return schema, dataset.Uniform(schema, 20000, 31)
}

func TestHistogramCountBucketAligned(t *testing.T) {
	// Queries aligned to bucket boundaries are answered exactly.
	schema, dist := testDist(t)
	h, err := NewHistogram(dist, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	r, err := query.NewRange(schema, []int{4, 8}, []int{11, 19})
	if err != nil {
		t.Fatal(err)
	}
	q := query.Count(schema, r)
	got, err := h.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	want := q.EvaluateDirect(dist)
	if math.Abs(got-want) > 1e-9*(1+want) {
		t.Fatalf("aligned count %g, want %g", got, want)
	}
}

func TestHistogramSumBucketAligned(t *testing.T) {
	schema, dist := testDist(t)
	h, err := NewHistogram(dist, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	r, err := query.NewRange(schema, []int{0, 4}, []int{31, 27})
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.Sum(schema, r, "x")
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	want := q.EvaluateDirect(dist)
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("aligned sum %g, want %g", got, want)
	}
}

func TestHistogramUnalignedApproximation(t *testing.T) {
	// Unaligned queries are approximate but should land within a reasonable
	// relative error on uniform data.
	schema, dist := testDist(t)
	h, err := NewHistogram(dist, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		lo := []int{rng.Intn(32), rng.Intn(32)}
		hi := []int{lo[0] + rng.Intn(32-lo[0]), lo[1] + rng.Intn(32-lo[1])}
		r, err := query.NewRange(schema, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		q := query.Count(schema, r)
		got, err := h.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		want := q.EvaluateDirect(dist)
		if want > 100 && math.Abs(got-want) > 0.25*want {
			t.Fatalf("count estimate %g vs %g (>25%% off on uniform data)", got, want)
		}
	}
}

func TestHistogramValidation(t *testing.T) {
	_, dist := testDist(t)
	if _, err := NewHistogram(dist, []int{8}); err == nil {
		t.Error("dim mismatch should fail")
	}
	if _, err := NewHistogram(dist, []int{5, 8}); err == nil {
		t.Error("non-dividing buckets should fail")
	}
	h, err := NewHistogram(dist, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if h.StoredValues() != 16*3 {
		t.Fatalf("StoredValues = %d", h.StoredValues())
	}
	schema := dist.Schema
	qq, err := query.SumSquares(schema, query.FullDomain(schema), "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Estimate(qq); err == nil {
		t.Error("degree-2 query should fail")
	}
}

func TestSampleEstimateConverges(t *testing.T) {
	schema, dist := testDist(t)
	s, err := NewSample(dist, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := query.NewRange(schema, []int{0, 0}, []int{15, 31})
	if err != nil {
		t.Fatal(err)
	}
	q := query.Count(schema, r)
	want := q.EvaluateDirect(dist) // ~10000
	got, err := s.Estimate(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Sampling error ~ 1/√5000 ≈ 1.4%; allow 6%.
	if math.Abs(got-want) > 0.06*want {
		t.Fatalf("sample estimate %g vs %g", got, want)
	}
	// A small prefix is noisier but still unbiased-ish.
	got100, err := s.Estimate(q, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got100-want) > 0.5*want {
		t.Fatalf("prefix-100 estimate %g wildly off %g", got100, want)
	}
}

func TestSampleSumQuery(t *testing.T) {
	schema, dist := testDist(t)
	s, err := NewSample(dist, 8000, 7)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.Sum(schema, query.FullDomain(schema), "y")
	if err != nil {
		t.Fatal(err)
	}
	want := q.EvaluateDirect(dist)
	got, err := s.Estimate(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.06*math.Abs(want) {
		t.Fatalf("sum estimate %g vs %g", got, want)
	}
}

func TestSampleValidation(t *testing.T) {
	schema := dataset.MustSchema([]string{"x"}, []int{8})
	empty := dataset.NewDistribution(schema)
	if _, err := NewSample(empty, 10, 1); err == nil {
		t.Error("empty distribution should fail")
	}
	d := dataset.Uniform(schema, 100, 1)
	if _, err := NewSample(d, 0, 1); err == nil {
		t.Error("zero sample should fail")
	}
	s, err := NewSample(d, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.StoredValues() != 50 {
		t.Fatalf("StoredValues = %d", s.StoredValues())
	}
}

func TestSampleDeterministicBySeed(t *testing.T) {
	schema := dataset.MustSchema([]string{"x"}, []int{16})
	d := dataset.Uniform(schema, 500, 9)
	q := query.Count(schema, query.FullDomain(schema))
	a, err := NewSample(d, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSample(d, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	ea, _ := a.Estimate(q, 0)
	eb, _ := b.Estimate(q, 0)
	if ea != eb {
		t.Fatal("same seed gave different samples")
	}
}
