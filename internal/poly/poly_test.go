package poly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewTrimsTrailingZeros(t *testing.T) {
	p := New(1, 2, 0, 0)
	if p.Degree() != 1 {
		t.Fatalf("Degree = %d, want 1", p.Degree())
	}
	if Zero().Degree() != -1 {
		t.Fatalf("zero degree = %d, want -1", Zero().Degree())
	}
	if !New(0, 0).IsZero() {
		t.Fatal("New(0,0) should be zero")
	}
}

func TestEvalHorner(t *testing.T) {
	p := New(1, -2, 3) // 1 - 2x + 3x^2
	cases := []struct{ x, want float64 }{
		{0, 1}, {1, 2}, {2, 9}, {-1, 6},
	}
	for _, c := range cases {
		if got := p.Eval(c.x); got != c.want {
			t.Errorf("Eval(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestAddSubScale(t *testing.T) {
	p := New(1, 2, 3)
	q := New(4, 5)
	sum := p.Add(q)
	if !sum.Equal(New(5, 7, 3)) {
		t.Fatalf("Add = %v", sum)
	}
	if !p.Sub(p).IsZero() {
		t.Fatal("p - p should be zero")
	}
	if !p.Scale(0).IsZero() {
		t.Fatal("0*p should be zero")
	}
	if !p.Scale(2).Equal(New(2, 4, 6)) {
		t.Fatalf("Scale(2) = %v", p.Scale(2))
	}
}

func TestAddCancellationTrims(t *testing.T) {
	p := New(1, 0, 3)
	q := New(0, 0, -3)
	if got := p.Add(q); got.Degree() != 0 {
		t.Fatalf("degree after cancellation = %d, want 0", got.Degree())
	}
}

func TestMul(t *testing.T) {
	p := New(1, 1)  // 1+x
	q := New(-1, 1) // -1+x
	if got := p.Mul(q); !got.Equal(New(-1, 0, 1)) {
		t.Fatalf("(1+x)(x-1) = %v, want x^2-1", got)
	}
	if !p.Mul(Zero()).IsZero() {
		t.Fatal("p*0 should be zero")
	}
}

func TestAffineCompose(t *testing.T) {
	p := New(0, 0, 1) // x^2
	// p(2k+3) = 4k^2 + 12k + 9
	got := p.AffineCompose(2, 3)
	if !got.Equal(New(9, 12, 4)) {
		t.Fatalf("AffineCompose = %v", got)
	}
	// Composition with identity is identity.
	q := New(1, 2, 3, 4)
	if !q.AffineCompose(1, 0).Equal(q) {
		t.Fatal("p(x) after identity compose changed")
	}
}

func TestAffineComposeMatchesPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		deg := rng.Intn(5)
		p := make(Poly, deg+1)
		for i := range p {
			p[i] = rng.NormFloat64()
		}
		a := float64(rng.Intn(5) - 2)
		b := float64(rng.Intn(9) - 4)
		q := p.AffineCompose(a, b)
		for k := -3; k <= 3; k++ {
			x := float64(k)
			want := p.Eval(a*x + b)
			got := q.Eval(x)
			if math.Abs(want-got) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("trial %d: q(%g)=%g want %g (p=%v a=%g b=%g)",
					trial, x, got, want, p, a, b)
			}
		}
	}
}

func TestShift(t *testing.T) {
	p := New(0, 1) // x
	if got := p.Shift(5); !got.Equal(New(5, 1)) {
		t.Fatalf("Shift = %v", got)
	}
}

func TestDerivative(t *testing.T) {
	p := New(7, 3, 0, 2) // 7 + 3x + 2x^3
	if got := p.Derivative(); !got.Equal(New(3, 0, 6)) {
		t.Fatalf("Derivative = %v", got)
	}
	if !Constant(4).Derivative().IsZero() {
		t.Fatal("constant derivative should be zero")
	}
}

func TestMonomial(t *testing.T) {
	if got := Monomial(3, 2); !got.Equal(New(0, 0, 3)) {
		t.Fatalf("Monomial = %v", got)
	}
	if !Monomial(0, 5).IsZero() {
		t.Fatal("zero-coefficient monomial should be zero")
	}
}

func TestMonomialPanicsOnNegativeDegree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Monomial(1, -1)
}

func TestString(t *testing.T) {
	cases := []struct {
		p    Poly
		want string
	}{
		{Zero(), "0"},
		{New(1), "1"},
		{New(-1, 2), "-1 + 2x"},
		{New(0, 1), "x"},
		{New(0, 0, 1), "x^2"},
		{New(3, -2, 1), "3 - 2x + x^2"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", []float64(c.p), got, c.want)
		}
	}
}

func TestSampleInts(t *testing.T) {
	p := New(0, 1) // x
	got := p.SampleInts(2, 5)
	want := []float64{2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SampleInts = %v", got)
		}
	}
}

func TestSampleIntsPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).SampleInts(3, 2)
}

// Property: ring axioms hold pointwise.
func TestQuickRingLaws(t *testing.T) {
	gen := func(vals []float64) Poly {
		if len(vals) > 6 {
			vals = vals[:6]
		}
		// Bound coefficients so products stay finite.
		p := make(Poly, len(vals))
		for i, v := range vals {
			p[i] = math.Mod(v, 100)
			if math.IsNaN(p[i]) {
				p[i] = 0
			}
		}
		return p.trim()
	}
	distrib := func(a, b, c []float64, x float64) bool {
		p, q, r := gen(a), gen(b), gen(c)
		x = math.Mod(x, 4)
		if math.IsNaN(x) {
			x = 0
		}
		left := p.Mul(q.Add(r)).Eval(x)
		right := p.Mul(q).Add(p.Mul(r)).Eval(x)
		return math.Abs(left-right) <= 1e-6*(1+math.Abs(left))
	}
	if err := quick.Check(distrib, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	commut := func(a, b []float64, x float64) bool {
		p, q := gen(a), gen(b)
		x = math.Mod(x, 4)
		if math.IsNaN(x) {
			x = 0
		}
		return math.Abs(p.Mul(q).Eval(x)-q.Mul(p).Eval(x)) <= 1e-6
	}
	if err := quick.Check(commut, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: evaluation is a ring homomorphism.
func TestQuickEvalHomomorphism(t *testing.T) {
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 50)
	}
	f := func(a, b [4]float64, x float64) bool {
		x = clamp(math.Mod(x, 3))
		p := New(clamp(a[0]), clamp(a[1]), clamp(a[2]), clamp(a[3]))
		q := New(clamp(b[0]), clamp(b[1]), clamp(b[2]), clamp(b[3]))
		if math.IsNaN(p.Eval(x)) || math.IsNaN(q.Eval(x)) {
			return true
		}
		sum := math.Abs(p.Add(q).Eval(x) - (p.Eval(x) + q.Eval(x)))
		prod := math.Abs(p.Mul(q).Eval(x) - p.Eval(x)*q.Eval(x))
		scale := math.Abs(p.Mul(q).Eval(x)-p.Eval(x)*q.Eval(x)) + sum
		return sum < 1e-6 && prod < 1e-4*(1+math.Abs(p.Eval(x)*q.Eval(x))) && !math.IsNaN(scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestApproxHelpers(t *testing.T) {
	p := New(1e-12, 1e-13)
	if !p.IsApproxZero(1e-11) {
		t.Fatal("should be approximately zero")
	}
	if p.IsApproxZero(1e-13) {
		t.Fatal("should not be approximately zero at tight tol")
	}
	q := New(1, 2)
	if !q.ApproxEqual(New(1+1e-12, 2), 1e-11) {
		t.Fatal("ApproxEqual failed")
	}
	if q.ApproxEqual(New(1.1, 2), 1e-3) {
		t.Fatal("ApproxEqual too lax")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New(1, 2)
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatal("Clone aliases original")
	}
}

func BenchmarkEvalDeg3(b *testing.B) {
	p := New(1, 2, 3, 4)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.Eval(1.5)
	}
	_ = sink
}

func BenchmarkAffineCompose(b *testing.B) {
	p := New(1, 2, 3, 4)
	for i := 0; i < b.N; i++ {
		_ = p.AffineCompose(2, 3)
	}
}
