// Package poly implements dense univariate polynomials with float64
// coefficients.
//
// Polynomials are the symbolic backbone of the lazy wavelet transform used to
// compute sparse query-vector coefficients: the restriction of a polynomial
// range-sum query to any dyadic block is a polynomial, and convolving a
// polynomial sequence with a FIR filter followed by downsampling yields
// another polynomial sequence of the same degree. Package poly provides the
// arithmetic (addition, scaling, multiplication, affine substitution)
// required to push polynomial runs through the filter cascade symbolically.
package poly

import (
	"fmt"
	"math"
	"strings"
)

// Poly is a univariate polynomial. The coefficient of x^i is stored at
// index i; the zero polynomial is represented by an empty (or nil) slice.
// Trailing zero coefficients are trimmed by the constructors and operations,
// so Degree is well defined.
type Poly []float64

// New returns the polynomial with the given coefficients, constant term
// first. Trailing zeros are trimmed.
func New(coeffs ...float64) Poly {
	p := make(Poly, len(coeffs))
	copy(p, coeffs)
	return p.trim()
}

// Zero returns the zero polynomial.
func Zero() Poly { return Poly{} }

// Constant returns the degree-0 polynomial with value c (or the zero
// polynomial if c == 0).
func Constant(c float64) Poly { return New(c) }

// X returns the monomial x.
func X() Poly { return Poly{0, 1} }

// Monomial returns c*x^n.
func Monomial(c float64, n int) Poly {
	if n < 0 {
		panic("poly: negative monomial degree")
	}
	if c == 0 {
		return Zero()
	}
	p := make(Poly, n+1)
	p[n] = c
	return p
}

func (p Poly) trim() Poly {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// Degree returns the degree of p, with -1 for the zero polynomial.
func (p Poly) Degree() int { return len(p.trim()) - 1 }

// IsZero reports whether p is identically zero.
func (p Poly) IsZero() bool { return len(p.trim()) == 0 }

// Eval evaluates p at x using Horner's rule.
func (p Poly) Eval(x float64) float64 {
	var v float64
	for i := len(p) - 1; i >= 0; i-- {
		v = v*x + p[i]
	}
	return v
}

// EvalInt evaluates p at the integer point k.
func (p Poly) EvalInt(k int) float64 { return p.Eval(float64(k)) }

// Clone returns an independent copy of p.
func (p Poly) Clone() Poly {
	q := make(Poly, len(p))
	copy(q, p)
	return q
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	r := make(Poly, n)
	copy(r, p)
	for i, c := range q {
		r[i] += c
	}
	return r.trim()
}

// Sub returns p - q.
func (p Poly) Sub(q Poly) Poly { return p.Add(q.Scale(-1)) }

// Scale returns c*p.
func (p Poly) Scale(c float64) Poly {
	if c == 0 {
		return Zero()
	}
	r := make(Poly, len(p))
	for i, a := range p {
		r[i] = c * a
	}
	return r.trim()
}

// Mul returns the product p*q.
func (p Poly) Mul(q Poly) Poly {
	p, q = p.trim(), q.trim()
	if len(p) == 0 || len(q) == 0 {
		return Zero()
	}
	r := make(Poly, len(p)+len(q)-1)
	for i, a := range p {
		if a == 0 {
			continue
		}
		for j, b := range q {
			r[i+j] += a * b
		}
	}
	return r.trim()
}

// AffineCompose returns the polynomial p(a*x + b).
//
// This is the reindexing step of the filter cascade: if a level-j
// approximation run is the polynomial P(k), the contribution of filter tap
// h[n] to output index k reads the input at index 2k+n, i.e. evaluates
// P(2k+n) = P.AffineCompose(2, n) as a polynomial in k.
func (p Poly) AffineCompose(a, b float64) Poly {
	p = p.trim()
	if len(p) == 0 {
		return Zero()
	}
	// Horner on polynomials: result = (((c_n)*(ax+b) + c_{n-1})*(ax+b) + ...).
	lin := New(b, a)
	r := Constant(p[len(p)-1])
	for i := len(p) - 2; i >= 0; i-- {
		r = r.Mul(lin).Add(Constant(p[i]))
	}
	return r.trim()
}

// Shift returns p(x + b).
func (p Poly) Shift(b float64) Poly { return p.AffineCompose(1, b) }

// Derivative returns p'.
func (p Poly) Derivative() Poly {
	p = p.trim()
	if len(p) <= 1 {
		return Zero()
	}
	r := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		r[i-1] = float64(i) * p[i]
	}
	return r.trim()
}

// Equal reports whether p and q have identical trimmed coefficients.
func (p Poly) Equal(q Poly) bool {
	p, q = p.trim(), q.trim()
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether all coefficients of p - q are within tol.
func (p Poly) ApproxEqual(q Poly, tol float64) bool {
	d := p.Sub(q)
	for _, c := range d {
		if math.Abs(c) > tol {
			return false
		}
	}
	return true
}

// MaxAbsCoeff returns the largest absolute coefficient value, 0 for the zero
// polynomial.
func (p Poly) MaxAbsCoeff() float64 {
	var m float64
	for _, c := range p {
		if a := math.Abs(c); a > m {
			m = a
		}
	}
	return m
}

// IsApproxZero reports whether every coefficient is within tol of zero.
func (p Poly) IsApproxZero(tol float64) bool { return p.MaxAbsCoeff() <= tol }

// String renders p in human-readable form, e.g. "3 + 2x - x^2".
func (p Poly) String() string {
	p = p.trim()
	if len(p) == 0 {
		return "0"
	}
	var b strings.Builder
	first := true
	for i, c := range p {
		if c == 0 {
			continue
		}
		switch {
		case first:
			first = false
			if c < 0 {
				b.WriteString("-")
				c = -c
			}
		case c < 0:
			b.WriteString(" - ")
			c = -c
		default:
			b.WriteString(" + ")
		}
		switch {
		case i == 0:
			fmt.Fprintf(&b, "%g", c)
		case i == 1:
			if c == 1 {
				b.WriteString("x")
			} else {
				fmt.Fprintf(&b, "%gx", c)
			}
		default:
			if c == 1 {
				fmt.Fprintf(&b, "x^%d", i)
			} else {
				fmt.Fprintf(&b, "%gx^%d", c, i)
			}
		}
	}
	if first {
		return "0"
	}
	return b.String()
}

// SampleInts evaluates p at k = lo, lo+1, …, hi and returns the values.
// It panics if hi < lo.
func (p Poly) SampleInts(lo, hi int) []float64 {
	if hi < lo {
		panic("poly: SampleInts with hi < lo")
	}
	out := make([]float64, hi-lo+1)
	for k := lo; k <= hi; k++ {
		out[k-lo] = p.EvalInt(k)
	}
	return out
}
