// Package dist is the distributed evaluation tier: the coefficient store Δ̂
// partitioned across N networked shard servers, reassembled behind the
// storage.FallibleStore interface by a fan-out coordinator.
//
// Three pieces:
//
//   - Server exposes one shard's coefficient partition over plain TCP using
//     the length-prefixed frames of internal/codec (BatchGet request/response
//     carrying delta-varint packed keys, raw float64 value bits and per-key
//     errors, plus a metadata frame describing the shard's view).
//
//   - RemoteStore is the client of one shard: a storage.FallibleStore over a
//     small connection pool with per-attempt deadlines, so the existing
//     robustness stack (RetryStore, CoalescingStore, InstrumentedStore)
//     composes on top unchanged — the network is just another fallible store.
//
//   - CoordinatorStore partitions every BatchGetCtx across the shards with
//     storage.ShardOf — the same packed-key hash ShardedStore uses for its
//     lock shards — fans the sub-batches out concurrently, and merges the
//     partial results. A dead or degraded shard does not fail the batch: its
//     keys come back as per-key *storage.BatchError entries, which the
//     engine's skip machinery (core.Run degraded mode) turns into skipped
//     coefficients whose contribution Theorem 1 already bounds. The server
//     above answers 206 Partial Content, exactly as it does for local
//     storage faults.
//
// The partition is value-preserving by construction: every nonzero
// coefficient lives on exactly one shard (Partition filters by ShardOf), the
// wire carries float64 bits verbatim, and the coordinator writes each
// shard's answers back into the caller's batch positions — so a progressive
// drain through the coordinator retrieves bit-identical coefficients in the
// same schedule order as a single-node run, and produces bit-identical
// estimates.
package dist

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/codec"
	"repro/internal/storage"
)

// ErrShard marks failures attributed to a shard server (unreachable, hung
// up, protocol violation, or a remote-side retrieval error). Match with
// errors.Is through every wrapper layer.
var ErrShard = errors.New("dist: shard error")

// remoteError is a shard-attributed failure carrying the shard address and
// the remote (or transport) cause as text.
type remoteError struct {
	addr string
	msg  string
}

func (e *remoteError) Error() string { return fmt.Sprintf("shard %s: %s", e.addr, e.msg) }

// Is reports ErrShard so callers can classify without string matching.
func (e *remoteError) Is(target error) bool { return target == ErrShard }

// ValidShardCount reports an error unless n is a positive power of two —
// the precondition of storage.ShardOf, and therefore of every partition
// decision in this package. Callers surface it as a configuration error
// instead of silently rounding the shard count (a coordinator and a shard
// set that round differently would route keys to the wrong nodes).
func ValidShardCount(n int) error {
	if n <= 0 || n&(n-1) != 0 {
		return fmt.Errorf("dist: shard count %d must be a positive power of two", n)
	}
	return nil
}

// Partition extracts shard index's slice of a full coefficient store: the
// nonzero entries whose key storage.ShardOf assigns to index, as a fresh
// HashStore, together with the partition's nonzero count and coefficient
// mass Σ|v| accumulated in ascending key order (so the mass is deterministic
// — map enumeration order must not leak into a quantity coordinators sum and
// bound computations consume).
func Partition(src storage.Enumerable, index, count int) (*storage.HashStore, int64, float64, error) {
	if err := ValidShardCount(count); err != nil {
		return nil, 0, 0, err
	}
	if index < 0 || index >= count {
		return nil, 0, 0, fmt.Errorf("dist: shard index %d out of range [0,%d)", index, count)
	}
	type pair struct {
		k int
		v float64
	}
	var pairs []pair
	src.ForEachNonzero(func(k int, v float64) bool {
		if storage.ShardOf(k, count) == index {
			pairs = append(pairs, pair{k, v})
		}
		return true
	})
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	st := storage.NewHashStore()
	var mass float64
	for _, p := range pairs {
		st.Add(p.k, p.v)
		if p.v < 0 {
			mass -= p.v
		} else {
			mass += p.v
		}
	}
	return st, int64(len(pairs)), mass, nil
}

// ValidateMetas checks that a set of shard self-descriptions, indexed by the
// coordinator's dial order, forms one coherent view: every shard must report
// the same schema, filter, tuple count and windows, declare the same shard
// count (equal to the number of shards dialed), and sit at the index the
// coordinator dialed it at. Any disagreement is a deployment error — two
// shards serving different databases would silently merge into garbage.
func ValidateMetas(metas []*codec.ShardMeta) error {
	if len(metas) == 0 {
		return fmt.Errorf("dist: no shards")
	}
	if err := ValidShardCount(len(metas)); err != nil {
		return err
	}
	ref := metas[0]
	for i, m := range metas {
		if m.ShardCount != len(metas) {
			return fmt.Errorf("dist: shard %d declares %d shards, coordinator dialed %d", i, m.ShardCount, len(metas))
		}
		if m.ShardIndex != i {
			return fmt.Errorf("dist: shard dialed at position %d declares index %d (check -shards order)", i, m.ShardIndex)
		}
		if m.FilterName != ref.FilterName {
			return fmt.Errorf("dist: shard %d filter %q differs from shard 0 filter %q", i, m.FilterName, ref.FilterName)
		}
		if m.TupleCount != ref.TupleCount {
			return fmt.Errorf("dist: shard %d tuple count %d differs from shard 0 count %d", i, m.TupleCount, ref.TupleCount)
		}
		if len(m.Names) != len(ref.Names) {
			return fmt.Errorf("dist: shard %d has %d dimensions, shard 0 has %d", i, len(m.Names), len(ref.Names))
		}
		for d := range m.Names {
			if m.Names[d] != ref.Names[d] || m.Sizes[d] != ref.Sizes[d] || m.Windows[d] != ref.Windows[d] {
				return fmt.Errorf("dist: shard %d dimension %d (%s:%d) differs from shard 0 (%s:%d)",
					i, d, m.Names[d], m.Sizes[d], ref.Names[d], ref.Sizes[d])
			}
		}
	}
	return nil
}
