package dist

// Tests for the diagnostics extensions of the shard wire protocol: trace
// propagation over a real TCP round-trip (the coordinator's request ID must
// land in the shard process's span ring), version negotiation against
// pre-diagnostics peers on either side of the connection, and per-shard
// wire attribution in a query profile driven through the coordinator.

import (
	"context"
	"math"
	"net"
	"testing"

	"repro/internal/codec"
	"repro/internal/obs"
	"repro/internal/storage"
)

// startTracedShard is startShard with a span sink installed before Serve
// (SetSpanSink must precede Serve, so the plain fixture cannot be reused).
func startTracedShard(t *testing.T, store storage.Store, meta codec.ShardMeta, sink *obs.SpanSink, maxVer uint16) (addr string, srv *Server) {
	t.Helper()
	srv = NewServer(store, meta, nil)
	srv.SetSpanSink(sink)
	if maxVer != 0 {
		srv.SetMaxWireVersion(maxVer)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String(), srv
}

// someKeys returns up to n keys present in st, plus vals sized to match.
func someKeys(st *storage.HashStore, n int) ([]int, []float64) {
	keys := make([]int, 0, n)
	st.ForEachNonzero(func(k int, _ float64) bool {
		keys = append(keys, k)
		return len(keys) < n
	})
	return keys, make([]float64, len(keys))
}

func TestTracePropagationOverTCP(t *testing.T) {
	store := testStore(2000, 77)
	sink := obs.NewSpanSink(64)
	addr, _ := startTracedShard(t, store, codec.ShardMeta{ShardCount: 1}, sink, 0)

	remote := NewRemoteStore(addr, ClientConfig{})
	defer func() { _ = remote.Close() }()

	const reqID = "req-trace-tcp-1"
	ctx := obs.WithRequestID(context.Background(), reqID)
	keys, vals := someKeys(store, 64)
	if err := remote.BatchGetCtx(ctx, keys, vals); err != nil {
		t.Fatal(err)
	}
	if got := remote.NegotiatedVersion(); got != 2 {
		t.Fatalf("negotiated version = %d, want 2", got)
	}
	for i, k := range keys {
		if vals[i] != store.Get(k) {
			t.Fatalf("key %d: got %v, want %v", k, vals[i], store.Get(k))
		}
	}

	// The request ID crossed the TCP boundary: the shard process's span ring
	// holds a batchget span under the coordinator-side ID.
	var found bool
	for _, sp := range sink.Spans() {
		if sp.Name == "dist.shard.batchget" && sp.RequestID == reqID {
			found = true
		}
	}
	if !found {
		t.Fatalf("no dist.shard.batchget span with RequestID %q in shard ring; spans: %+v", reqID, sink.Spans())
	}
}

// TestWireNegotiationWithV1Server drives a current client against a shard
// capped at the original protocol: the connection settles on v1, retrievals
// stay bit-correct, and no trace reaches the shard's ring.
func TestWireNegotiationWithV1Server(t *testing.T) {
	store := testStore(2000, 78)
	sink := obs.NewSpanSink(64)
	addr, _ := startTracedShard(t, store, codec.ShardMeta{ShardCount: 1}, sink, 1)

	remote := NewRemoteStore(addr, ClientConfig{})
	defer func() { _ = remote.Close() }()

	ctx := obs.WithRequestID(context.Background(), "req-v1-server")
	keys, vals := someKeys(store, 64)
	if err := remote.BatchGetCtx(ctx, keys, vals); err != nil {
		t.Fatal(err)
	}
	if got := remote.NegotiatedVersion(); got != 1 {
		t.Fatalf("negotiated version = %d, want 1 against a capped server", got)
	}
	for i, k := range keys {
		if math.Float64bits(vals[i]) != math.Float64bits(store.Get(k)) {
			t.Fatalf("key %d: got %v, want %v over v1", k, vals[i], store.Get(k))
		}
	}
	if n := len(sink.Spans()); n != 0 {
		t.Fatalf("v1 connection recorded %d shard spans, want 0 (no trace field in v1 frames)", n)
	}
}

// TestWireNegotiationWithV1Client is the mirror case: an old client (capped
// announce) against a current server also settles on v1 and stays correct.
func TestWireNegotiationWithV1Client(t *testing.T) {
	store := testStore(2000, 79)
	sink := obs.NewSpanSink(64)
	addr, _ := startTracedShard(t, store, codec.ShardMeta{ShardCount: 1}, sink, 0)

	remote := NewRemoteStore(addr, ClientConfig{MaxWireVersion: 1})
	defer func() { _ = remote.Close() }()

	ctx := obs.WithRequestID(context.Background(), "req-v1-client")
	keys, vals := someKeys(store, 64)
	if err := remote.BatchGetCtx(ctx, keys, vals); err != nil {
		t.Fatal(err)
	}
	if got := remote.NegotiatedVersion(); got != 1 {
		t.Fatalf("negotiated version = %d, want 1 with a capped client", got)
	}
	for i, k := range keys {
		if vals[i] != store.Get(k) {
			t.Fatalf("key %d: got %v, want %v over v1", k, vals[i], store.Get(k))
		}
	}
	if n := len(sink.Spans()); n != 0 {
		t.Fatalf("v1 client produced %d shard spans, want 0", n)
	}
}

// TestCoordinatorProfileWireAttribution drains a profiled batch through a
// coordinator over real TCP shards and checks the per-shard rows: keys and
// response bytes attributed, remote serve time echoed from the v2 frames.
func TestCoordinatorProfileWireAttribution(t *testing.T) {
	src := testStore(4000, 80)
	const shardN = 2
	addrs := make([]string, shardN)
	remotes := make([]*RemoteStore, shardN)
	shards := make([]storage.FallibleStore, shardN)
	for i := 0; i < shardN; i++ {
		part, _, _, err := Partition(src, i, shardN)
		if err != nil {
			t.Fatal(err)
		}
		addr, _ := startShard(t, part, codec.ShardMeta{ShardIndex: i, ShardCount: shardN})
		addrs[i] = addr
		remotes[i] = NewRemoteStore(addr, ClientConfig{})
		shards[i] = remotes[i]
	}
	defer func() {
		for _, r := range remotes {
			_ = r.Close()
		}
	}()
	coord, err := NewCoordinator(shards, addrs)
	if err != nil {
		t.Fatal(err)
	}

	prof := obs.NewQueryProfile("req-profile-wire", "test")
	ctx := obs.WithProfile(context.Background(), prof)
	keys, vals := someKeys(src, 256)
	if err := coord.BatchGetCtx(ctx, keys, vals); err != nil {
		t.Fatal(err)
	}
	prof.Finish()
	snap := prof.Snapshot()
	if len(snap.Shards) != shardN {
		t.Fatalf("profile has %d shard rows, want %d", len(snap.Shards), shardN)
	}
	var totalKeys int64
	for _, row := range snap.Shards {
		if row.Batches == 0 {
			t.Fatalf("shard %d: zero batches in profile", row.Shard)
		}
		if row.Addr != addrs[row.Shard] {
			t.Fatalf("shard %d: addr %q, want %q", row.Shard, row.Addr, addrs[row.Shard])
		}
		if row.Bytes <= 0 {
			t.Fatalf("shard %d: no wire bytes attributed", row.Shard)
		}
		if row.RemoteNanos <= 0 {
			t.Fatalf("shard %d: no remote serve time echoed", row.Shard)
		}
		if row.WallNanos < row.RemoteNanos {
			t.Fatalf("shard %d: wall %dns < remote %dns (echo cannot exceed round-trip)",
				row.Shard, row.WallNanos, row.RemoteNanos)
		}
		totalKeys += row.Keys
	}
	if totalKeys != int64(len(keys)) {
		t.Fatalf("shard rows attribute %d keys, want %d", totalKeys, len(keys))
	}
}
