package dist

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Observability for the distributed tier, following the storage-layer
// pattern: Observe installs a bundle into a package-level atomic pointer,
// and every site is an atomic load plus a branch when observation is off.
// Per-shard counters are labeled wvq_dist_*_total{shard="i"} and created
// lazily on first use (the shard count is not known at Observe time).

type distMetrics struct {
	reg           *obs.Registry
	degradedKeys  *obs.Counter
	fanoutSeconds *obs.Histogram

	mu       sync.Mutex
	perShard map[int]*shardCounters
}

type shardCounters struct {
	requests *obs.Counter
	keys     *obs.Counter
	errors   *obs.Counter
}

var dMetrics atomic.Pointer[distMetrics]

// Observe points the distributed tier's instrumentation at reg. Pass nil to
// uninstall (the default state).
func Observe(reg *obs.Registry) {
	if reg == nil {
		dMetrics.Store(nil)
		return
	}
	dMetrics.Store(&distMetrics{
		reg: reg,
		degradedKeys: reg.Counter("wvq_dist_degraded_keys_total",
			"Coefficient keys the coordinator returned as per-key failures (degraded retrievals)."),
		fanoutSeconds: reg.Histogram("wvq_dist_fanout_seconds",
			"Latency of coordinator batch fan-outs (all shards merged).", nil),
		perShard: make(map[int]*shardCounters),
	})
}

// shard returns (creating on first use) the labeled counters for shard i.
func (m *distMetrics) shard(i int) *shardCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	sc, ok := m.perShard[i]
	if !ok {
		label := obs.L("shard", strconv.Itoa(i))
		sc = &shardCounters{
			requests: m.reg.Counter("wvq_dist_shard_requests_total",
				"Sub-batches the coordinator sent to each shard.", label),
			keys: m.reg.Counter("wvq_dist_shard_keys_total",
				"Coefficient keys the coordinator routed to each shard.", label),
			errors: m.reg.Counter("wvq_dist_shard_errors_total",
				"Sub-batches that came back from each shard with any failure.", label),
		}
		m.perShard[i] = sc
	}
	return sc
}

// obsShardBatch mirrors one sub-batch into the observed registry.
func obsShardBatch(shard, keys int, failed bool) {
	m := dMetrics.Load()
	if m == nil {
		return
	}
	sc := m.shard(shard)
	sc.requests.Inc()
	sc.keys.Add(int64(keys))
	if failed {
		sc.errors.Inc()
	}
}

// obsDegradedKeys mirrors per-key degradations into the observed registry.
func obsDegradedKeys(n int) {
	m := dMetrics.Load()
	if m == nil || n == 0 {
		return
	}
	m.degradedKeys.Add(int64(n))
}

// obsFanout records one coordinator fan-out's wall time.
func obsFanout(d time.Duration) {
	m := dMetrics.Load()
	if m == nil {
		return
	}
	m.fanoutSeconds.Observe(d.Seconds())
}
