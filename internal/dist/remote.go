package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/obs"
	"repro/internal/storage"
)

// ClientConfig tunes the client side of the shard protocol. The zero value
// is usable: normalized fills in the defaults below.
type ClientConfig struct {
	// DialTimeout bounds establishing (and handshaking) one connection.
	// 0 means the default of 2s.
	DialTimeout time.Duration
	// RequestTimeout is the per-attempt deadline of one request round-trip.
	// It bounds every call even when the caller's context has no deadline —
	// a hung shard must become an error the retry/degradation machinery can
	// act on, not a stuck drain. 0 means the default of 5s.
	RequestTimeout time.Duration
	// PoolSize caps the idle connections kept per shard. Concurrent requests
	// beyond the pool dial extra connections and discard them afterwards.
	// 0 means the default of 4.
	PoolSize int
	// MaxWireVersion caps the wire version this client announces in the
	// handshake. 0 means codec.MaxWireVersion; set 1 to speak the original
	// no-trace protocol (interop testing, or trimming the per-frame trace
	// bytes).
	MaxWireVersion uint16
}

// normalized returns cfg with defaults applied.
func (cfg ClientConfig) normalized() ClientConfig {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 4
	}
	if cfg.MaxWireVersion == 0 || cfg.MaxWireVersion > codec.MaxWireVersion {
		cfg.MaxWireVersion = codec.MaxWireVersion
	}
	return cfg
}

// remoteConn is one pooled connection with its buffered reader and the wire
// version negotiated on it.
type remoteConn struct {
	conn    net.Conn
	br      *bufio.Reader
	version uint16
}

// RemoteStore is the client of one shard server: a storage.FallibleStore
// whose retrievals travel the wire. Connections are pooled and lazily
// dialed; every request carries a per-attempt deadline (ClientConfig.
// RequestTimeout, tightened by the context's own deadline) and observes
// cancellation mid-flight, so a dead or hung shard surfaces as an error
// within one timeout instead of wedging the run. All methods are safe for
// concurrent use — the store is designed to sit under RetryStore,
// CoalescingStore and InstrumentedStore unchanged.
//
// The infallible Store surface (Get, GetBatch) cannot report network
// failures and panics on them; engine paths that can degrade use the
// fallible surface, which is the only one the coordinator calls.
type RemoteStore struct {
	addr  string
	cfg   ClientConfig
	pool  chan *remoteConn
	reqID atomic.Uint64

	retrievals atomic.Int64
	closed     atomic.Bool
	// negotiated is the wire version of the most recent handshake (0 until
	// the first connection) — the /stats trace-propagation diagnostic.
	negotiated atomic.Uint32
}

// NewRemoteStore returns a client for the shard at addr. No connection is
// made until the first request (or Ping).
func NewRemoteStore(addr string, cfg ClientConfig) *RemoteStore {
	cfg = cfg.normalized()
	return &RemoteStore{
		addr: addr,
		cfg:  cfg,
		pool: make(chan *remoteConn, cfg.PoolSize),
	}
}

// Addr returns the shard address this store talks to.
func (s *RemoteStore) Addr() string { return s.addr }

// NegotiatedVersion returns the wire version of the most recent handshake
// with the shard, or 0 before any connection succeeded. Version ≥ 2 means
// trace propagation is active on the link.
func (s *RemoteStore) NegotiatedVersion() uint16 { return uint16(s.negotiated.Load()) }

// Close drains and closes the pooled connections. Requests after Close fail.
func (s *RemoteStore) Close() error {
	s.closed.Store(true)
	for {
		select {
		case rc := <-s.pool:
			_ = rc.conn.Close()
		default:
			return nil
		}
	}
}

// acquire returns a pooled connection or dials a fresh one.
func (s *RemoteStore) acquire(ctx context.Context) (*remoteConn, error) {
	select {
	case rc := <-s.pool:
		return rc, nil
	default:
	}
	d := net.Dialer{Timeout: s.cfg.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", s.addr)
	if err != nil {
		return nil, err
	}
	// Handshake under the dial timeout: a listener that accepts but never
	// speaks must not hang the caller. The client announces the highest
	// version it speaks; the server replies with the connection's version
	// (min of both sides), which every frame on this connection then uses.
	_ = conn.SetDeadline(time.Now().Add(s.cfg.DialTimeout))
	rc := &remoteConn{conn: conn, br: bufio.NewReaderSize(conn, 1<<16)}
	if err := codec.WriteHandshake(conn, s.cfg.MaxWireVersion); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("handshake: %w", err)
	}
	ver, err := codec.ReadHandshake(rc.br)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("handshake: %w", err)
	}
	if ver > s.cfg.MaxWireVersion {
		_ = conn.Close()
		return nil, fmt.Errorf("handshake: server replied version %d above announced %d", ver, s.cfg.MaxWireVersion)
	}
	rc.version = ver
	s.negotiated.Store(uint32(ver))
	_ = conn.SetDeadline(time.Time{})
	return rc, nil
}

// release returns a healthy connection to the pool (or closes it when the
// pool is full or the store closed).
func (s *RemoteStore) release(rc *remoteConn) {
	if s.closed.Load() {
		_ = rc.conn.Close()
		return
	}
	select {
	case s.pool <- rc:
	default:
		_ = rc.conn.Close()
	}
}

// roundTrip performs one request with per-attempt deadline and mid-flight
// cancellation: write the frame, read the matching response. On any
// transport failure the connection is discarded and a shard-attributed
// error (matching ErrShard) is returned — unless the caller's context ended,
// in which case ctx.Err() wins so cancellation is never misread as a shard
// fault (RetryStore, for one, must not retry it).
func (s *RemoteStore) roundTrip(ctx context.Context, write func(conn net.Conn, version uint16, id uint64) error) (*codec.WireFrame, error) {
	if s.closed.Load() {
		return nil, &remoteError{addr: s.addr, msg: "client closed"}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rc, err := s.acquire(ctx)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, &remoteError{addr: s.addr, msg: "dial: " + err.Error()}
	}
	// Per-attempt deadline, tightened by the context's own.
	deadline := time.Now().Add(s.cfg.RequestTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = rc.conn.SetDeadline(deadline)
	// Mid-flight cancellation: yank the deadline so blocked reads/writes
	// return immediately.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			_ = rc.conn.SetDeadline(time.Now().Add(-time.Second))
		case <-watchDone:
		}
	}()
	id := s.reqID.Add(1)
	frame, err := func() (*codec.WireFrame, error) {
		if err := write(rc.conn, rc.version, id); err != nil {
			return nil, err
		}
		return codec.ReadFrameVersion(rc.br, rc.version)
	}()
	close(watchDone)
	if err != nil {
		_ = rc.conn.Close()
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, &remoteError{addr: s.addr, msg: err.Error()}
	}
	if frame.ID != id {
		_ = rc.conn.Close()
		return nil, &remoteError{addr: s.addr, msg: fmt.Sprintf("response id %d for request %d", frame.ID, id)}
	}
	_ = rc.conn.SetDeadline(time.Time{})
	s.release(rc)
	return frame, nil
}

// BatchGetCtx implements storage.FallibleStore: one wire round-trip for the
// whole batch. Remote per-key failures come back as a *storage.BatchError
// with shard-attributed causes; transport failures, remote whole-request
// errors and timeouts fail the whole call (every value untrusted), which the
// retry layer treats as a retriable whole-batch failure.
func (s *RemoteStore) BatchGetCtx(ctx context.Context, keys []int, dst []float64) error {
	if len(keys) != len(dst) {
		panic("dist: BatchGetCtx keys/dst length mismatch")
	}
	if len(keys) == 0 {
		return nil
	}
	s.retrievals.Add(int64(len(keys)))
	// The request ID rides the v2 frame extension so the shard's spans join
	// this query's trace; on a v1 connection the writer drops it.
	trace := obs.RequestID(ctx)
	frame, err := s.roundTrip(ctx, func(conn net.Conn, version uint16, id uint64) error {
		return codec.WriteBatchGetReqV(conn, version, id, trace, keys)
	})
	if err != nil {
		return err
	}
	// Wire accounting for EXPLAIN ANALYZE: response bytes and the shard's
	// echoed serve time (0 on v1). No-op without a profile in ctx.
	obs.ProfileFrom(ctx).AddRemote(s.addr, frame.WireSize, time.Duration(frame.ElapsedNanos))
	switch frame.Type {
	case codec.FrameError:
		msg, err := frame.ErrorMsg()
		if err != nil {
			msg = "undecodable error frame: " + err.Error()
		}
		return &remoteError{addr: s.addr, msg: msg}
	case codec.FrameBatchGetResp:
		vals, failed, err := frame.BatchGetResp(len(keys))
		if err != nil {
			return &remoteError{addr: s.addr, msg: err.Error()}
		}
		copy(dst, vals)
		if len(failed) == 0 {
			return nil
		}
		kes := make([]storage.KeyError, len(failed))
		for i, fe := range failed {
			kes[i] = storage.KeyError{
				Index: fe.Index,
				Key:   keys[fe.Index],
				Err:   &remoteError{addr: s.addr, msg: fe.Msg},
			}
		}
		return &storage.BatchError{Failed: kes}
	default:
		return &remoteError{addr: s.addr, msg: fmt.Sprintf("unexpected frame type %d", frame.Type)}
	}
}

// GetCtx implements storage.FallibleStore as a batch of one.
func (s *RemoteStore) GetCtx(ctx context.Context, key int) (float64, error) {
	var dst [1]float64
	err := s.BatchGetCtx(ctx, []int{key}, dst[:])
	var be *storage.BatchError
	if errors.As(err, &be) {
		return 0, &be.Failed[0]
	}
	if err != nil {
		return 0, err
	}
	return dst[0], nil
}

// Meta fetches the shard's self-description.
func (s *RemoteStore) Meta(ctx context.Context) (*codec.ShardMeta, error) {
	trace := obs.RequestID(ctx)
	frame, err := s.roundTrip(ctx, func(conn net.Conn, version uint16, id uint64) error {
		return codec.WriteMetaReqV(conn, version, id, trace)
	})
	if err != nil {
		return nil, err
	}
	if frame.Type == codec.FrameError {
		msg, err := frame.ErrorMsg()
		if err != nil {
			msg = err.Error()
		}
		return nil, &remoteError{addr: s.addr, msg: msg}
	}
	m, err := frame.Meta()
	if err != nil {
		return nil, &remoteError{addr: s.addr, msg: err.Error()}
	}
	return m, nil
}

// Get implements storage.Store. The infallible surface has no way to report
// a network failure, so it panics on one; fallible callers use GetCtx.
func (s *RemoteStore) Get(key int) float64 {
	v, err := s.GetCtx(context.Background(), key)
	if err != nil {
		panic(fmt.Sprintf("dist: infallible Get over the network failed: %v", err))
	}
	return v
}

// GetBatch implements storage.BatchGetter, panicking on failure (see Get).
func (s *RemoteStore) GetBatch(keys []int, dst []float64) {
	if err := s.BatchGetCtx(context.Background(), keys, dst); err != nil {
		panic(fmt.Sprintf("dist: infallible GetBatch over the network failed: %v", err))
	}
}

// Retrievals implements storage.Store, counting keys requested through this
// client (the shard's own counter tracks what physically reached it).
func (s *RemoteStore) Retrievals() int64 { return s.retrievals.Load() }

// ResetStats implements storage.Store.
func (s *RemoteStore) ResetStats() { s.retrievals.Store(0) }

// NonzeroCount implements storage.Store via the metadata frame; it reports 0
// when the shard is unreachable (a diagnostic surface, not a correctness
// one).
func (s *RemoteStore) NonzeroCount() int {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
	defer cancel()
	m, err := s.Meta(ctx)
	if err != nil {
		return 0
	}
	return int(m.Nonzero)
}

// ConcurrentSafe implements storage.Concurrent.
func (s *RemoteStore) ConcurrentSafe() {}

var (
	_ storage.FallibleStore = (*RemoteStore)(nil)
	_ storage.BatchGetter   = (*RemoteStore)(nil)
	_ storage.Concurrent    = (*RemoteStore)(nil)
)
