package dist

import (
	"bufio"
	"context"
	"errors"
	"log/slog"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Server exposes one coefficient shard over plain TCP: it answers BatchGet
// frames from the wrapped store's fallible path and Meta frames from its
// static self-description. Requests on one connection are handled serially
// (the client pool provides parallelism with one in-flight request per
// connection); connections are independent goroutines, so the store must be
// concurrent-safe or wrapped before being served.
type Server struct {
	store  storage.FallibleStore
	meta   codec.ShardMeta
	log    *slog.Logger // nil = silent
	ctx    context.Context
	cancel context.CancelFunc

	// spans, when set, receives shard-side serve spans. A v2 request frame
	// carries the coordinator's request ID; the span lands in this process's
	// ring under that ID, so the two processes' /debug/traces join on it.
	spans *obs.SpanSink
	// maxVersion caps what the server negotiates (0 = codec.MaxWireVersion;
	// set 1 to emulate a no-trace peer in interop tests).
	maxVersion uint16

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// requests / errors count served frames, for shard-side diagnostics.
	requests atomic.Int64
	errors   atomic.Int64
}

// NewServer wraps store (lifted to its fallible surface) with the shard's
// self-description. logger may be nil for silence (tests); pass a structured
// logger in daemons.
func NewServer(store storage.Store, meta codec.ShardMeta, logger *slog.Logger) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		store:  storage.AsFallible(store),
		meta:   meta,
		log:    logger,
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[net.Conn]struct{}),
	}
}

// Requests returns the number of request frames served.
func (s *Server) Requests() int64 { return s.requests.Load() }

// SetSpanSink directs shard-side serve spans into sink (nil keeps tracing
// off). Call before Serve.
func (s *Server) SetSpanSink(sink *obs.SpanSink) { s.spans = sink }

// SetMaxWireVersion caps the version this server negotiates (0 restores
// codec.MaxWireVersion). Call before Serve; version 1 makes the server
// behave as a pre-diagnostics peer.
func (s *Server) SetMaxWireVersion(v uint16) { s.maxVersion = v }

// Serve accepts connections on ln until Close. It returns nil after Close;
// any other accept failure is returned as-is.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return errors.New("dist: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.ctx.Err() != nil {
				return nil // closed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops accepting, severs every connection, and waits for the per-
// connection goroutines to exit. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.cancel()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// drop removes a finished connection.
func (s *Server) drop(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	_ = conn.Close()
	s.wg.Done()
}

// handle runs one connection: handshake, then a serial request loop until
// the peer hangs up, a protocol violation occurs, or the server closes.
func (s *Server) handle(conn net.Conn) {
	defer s.drop(conn)
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	clientV, err := codec.ReadHandshake(br)
	if err != nil {
		s.logWarn("handshake failed", "remote", conn.RemoteAddr().String(), "error", err)
		return
	}
	// Reply with the connection's version: the minimum of what the client
	// announced and what this server speaks. Every frame on the connection
	// then uses that version's framing, so a v1 client sees exactly the old
	// protocol.
	ver := codec.NegotiateVersion(clientV, s.maxVersion)
	if err := codec.WriteHandshake(bw, ver); err != nil || bw.Flush() != nil {
		return
	}
	for {
		frame, err := codec.ReadFrameVersion(br, ver)
		if err != nil {
			// EOF and reset are the peer leaving; anything else is noise worth
			// a log line. Either way the connection is done.
			if s.ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
				s.logDebug("connection closed", "remote", conn.RemoteAddr().String(), "error", err)
			}
			return
		}
		s.requests.Add(1)
		if err := s.serveFrame(bw, ver, frame); err != nil {
			s.errors.Add(1)
			s.logWarn("writing response failed", "remote", conn.RemoteAddr().String(), "error", err)
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// serveFrame answers one request frame on bw (unflushed). On a v2
// connection the response echoes the serve time, and a request carrying a
// trace records a span into the server's sink under the coordinator's
// request ID — the cross-process joint the diagnostics layer pivots on.
func (s *Server) serveFrame(bw *bufio.Writer, ver uint16, frame *codec.WireFrame) error {
	start := time.Now()
	ctx := s.ctx
	if frame.Trace != "" && s.spans != nil {
		ctx = obs.WithRequestID(ctx, frame.Trace)
		ctx = obs.WithTrace(ctx, frame.Trace, s.spans)
	}
	elapsed := func() uint64 { return uint64(time.Since(start).Nanoseconds()) }
	switch frame.Type {
	case codec.FrameBatchGetReq:
		keys, err := frame.BatchGetReq()
		if err != nil {
			return codec.WriteErrorFrameV(bw, ver, frame.ID, elapsed(), "malformed batch: "+err.Error())
		}
		sctx, span := obs.StartSpan(ctx, "dist.shard.batchget")
		span.SetAttr("keys", strconv.Itoa(len(keys)))
		vals := make([]float64, len(keys))
		err = s.store.BatchGetCtx(sctx, keys, vals)
		span.SetError(err)
		span.End()
		var be *storage.BatchError
		switch {
		case err == nil:
			return codec.WriteBatchGetRespV(bw, ver, frame.ID, elapsed(), vals, nil)
		case errors.As(err, &be):
			failed := make([]codec.WireError, len(be.Failed))
			for i, ke := range be.Failed {
				failed[i] = codec.WireError{Index: ke.Index, Msg: ke.Err.Error()}
			}
			return codec.WriteBatchGetRespV(bw, ver, frame.ID, elapsed(), vals, failed)
		default:
			// Whole-batch failure (cancellation, store outage): no position may
			// be trusted, so the whole request fails.
			return codec.WriteErrorFrameV(bw, ver, frame.ID, elapsed(), err.Error())
		}
	case codec.FrameMetaReq:
		_, span := obs.StartSpan(ctx, "dist.shard.meta")
		span.End()
		return codec.WriteMetaRespV(bw, ver, frame.ID, elapsed(), &s.meta)
	default:
		return codec.WriteErrorFrameV(bw, ver, frame.ID, elapsed(), "unknown frame type")
	}
}

func (s *Server) logWarn(msg string, args ...any) {
	if s.log != nil {
		s.log.Warn(msg, args...)
	}
}

func (s *Server) logDebug(msg string, args ...any) {
	if s.log != nil {
		s.log.Debug(msg, args...)
	}
}
