package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/storage"
)

// testStore builds a deterministic sparse coefficient store with signed
// values (mass needs both signs to catch sign bugs).
func testStore(n int, seed int64) *storage.HashStore {
	rng := rand.New(rand.NewSource(seed))
	st := storage.NewHashStore()
	for i := 0; i < n; i++ {
		k := rng.Intn(1 << 20)
		v := rng.NormFloat64() * 100
		if v != 0 {
			st.Add(k, v)
		}
	}
	return st
}

// startShard serves store on a loopback listener, returning the address and
// a stopper. meta defaults describe a 1-of-1 deployment unless overridden.
func startShard(t *testing.T, store storage.Store, meta codec.ShardMeta) (addr string, srv *Server) {
	t.Helper()
	srv = NewServer(store, meta, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String(), srv
}

func TestPartitionDisjointCompleteAndMassPreserving(t *testing.T) {
	src := testStore(5000, 1)
	const shards = 4
	var totalMass float64
	src.ForEachNonzero(func(_ int, v float64) bool {
		totalMass += math.Abs(v)
		return true
	})
	seen := make(map[int]int)
	var nonzero int64
	var massSum float64
	for i := 0; i < shards; i++ {
		part, nz, mass, err := Partition(src, i, shards)
		if err != nil {
			t.Fatal(err)
		}
		if int64(part.NonzeroCount()) != nz {
			t.Fatalf("shard %d reports %d nonzero, holds %d", i, nz, part.NonzeroCount())
		}
		nonzero += nz
		massSum += mass
		part.ForEachNonzero(func(k int, v float64) bool {
			if storage.ShardOf(k, shards) != i {
				t.Fatalf("key %d landed on shard %d, ShardOf says %d", k, i, storage.ShardOf(k, shards))
			}
			if v != src.Get(k) {
				t.Fatalf("key %d: shard value %g != source %g", k, v, src.Get(k))
			}
			seen[k]++
			return true
		})
	}
	if int64(len(seen)) != nonzero || src.NonzeroCount() != len(seen) {
		t.Fatalf("partitions cover %d keys, source has %d", len(seen), src.NonzeroCount())
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %d appears on %d shards", k, c)
		}
	}
	// Shard masses sum to the full mass up to summation-order rounding.
	if d := math.Abs(massSum-totalMass) / totalMass; d > 1e-12 {
		t.Fatalf("mass drifted: shards sum %g, source %g (rel %g)", massSum, totalMass, d)
	}
	// Errors: bad count, bad index.
	if _, _, _, err := Partition(src, 0, 3); err == nil {
		t.Fatal("non-power-of-two count accepted")
	}
	if _, _, _, err := Partition(src, 4, 4); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestRemoteStoreBitIdentityZeroFaults(t *testing.T) {
	local := testStore(2000, 2)
	addr, _ := startShard(t, local, codec.ShardMeta{
		Names: []string{"x"}, Sizes: []int{1 << 20}, FilterName: "Haar",
		TupleCount: 2000, ShardCount: 1, Nonzero: int64(local.NonzeroCount()),
	})
	remote := NewRemoteStore(addr, ClientConfig{})
	defer func() { _ = remote.Close() }()

	rng := rand.New(rand.NewSource(3))
	ctx := context.Background()
	for round := 0; round < 20; round++ {
		n := 1 + rng.Intn(300)
		keys := make([]int, n)
		for i := range keys {
			keys[i] = rng.Intn(1 << 20) // mix of present and absent keys
		}
		want := make([]float64, n)
		got := make([]float64, n)
		storage.BatchGet(local, keys, want)
		if err := remote.BatchGetCtx(ctx, keys, got); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range keys {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("round %d key %d: %g over the wire, %g locally", round, keys[i], got[i], want[i])
			}
		}
	}
	// Single-key path and the Meta round-trip.
	var anyKey int
	local.ForEachNonzero(func(k int, _ float64) bool { anyKey = k; return false })
	v, err := remote.GetCtx(ctx, anyKey)
	if err != nil || v != local.Get(anyKey) {
		t.Fatalf("GetCtx(%d) = %g, %v; want %g", anyKey, v, err, local.Get(anyKey))
	}
	m, err := remote.Meta(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nonzero != int64(local.NonzeroCount()) || m.FilterName != "Haar" {
		t.Fatalf("meta mangled: %+v", m)
	}
	if remote.NonzeroCount() != local.NonzeroCount() {
		t.Fatalf("NonzeroCount %d, want %d", remote.NonzeroCount(), local.NonzeroCount())
	}
}

func TestRemoteStorePartialBatchFailure(t *testing.T) {
	base := testStore(2000, 4)
	cfg := storage.FaultConfig{ErrorRate: 0.3, Seed: 9}
	addr, _ := startShard(t, storage.NewFaultStore(base, cfg), codec.ShardMeta{ShardCount: 1})
	// The same schedule locally decides which keys must fail: rate faults
	// are a pure function of (seed, key).
	oracle := storage.NewFaultStore(base, cfg)
	remote := NewRemoteStore(addr, ClientConfig{})
	defer func() { _ = remote.Close() }()

	rng := rand.New(rand.NewSource(5))
	keys := make([]int, 500)
	for i := range keys {
		keys[i] = rng.Intn(1 << 20)
	}
	dst := make([]float64, len(keys))
	err := remote.BatchGetCtx(context.Background(), keys, dst)
	var be *storage.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("want *storage.BatchError, got %v", err)
	}
	failed := make(map[int]bool)
	last := -1
	for _, ke := range be.Failed {
		if ke.Index <= last {
			t.Fatalf("failure indices not ascending: %d after %d", ke.Index, last)
		}
		last = ke.Index
		if keys[ke.Index] != ke.Key {
			t.Fatalf("failure at %d reports key %d, batch has %d", ke.Index, ke.Key, keys[ke.Index])
		}
		if !errors.Is(ke.Err, ErrShard) {
			t.Fatalf("per-key cause %v does not match ErrShard", ke.Err)
		}
		failed[ke.Index] = true
	}
	if len(failed) == 0 {
		t.Fatal("no failures at 30% error rate over 500 keys")
	}
	for i, k := range keys {
		_, oErr := oracle.GetCtx(context.Background(), k)
		if (oErr != nil) != failed[i] {
			t.Fatalf("key %d: oracle fails=%v, wire fails=%v", k, oErr != nil, failed[i])
		}
		if !failed[i] && math.Float64bits(dst[i]) != math.Float64bits(base.Get(k)) {
			t.Fatalf("unfailed key %d: %g over the wire, %g locally", k, dst[i], base.Get(k))
		}
	}
}

func TestRemoteStoreCancellationMidFlight(t *testing.T) {
	base := testStore(100, 6)
	slow := storage.NewFaultStore(base, storage.FaultConfig{DelayRate: 1, Delay: 30 * time.Second})
	addr, _ := startShard(t, slow, codec.ShardMeta{ShardCount: 1})
	remote := NewRemoteStore(addr, ClientConfig{})
	defer func() { _ = remote.Close() }()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	dst := make([]float64, 3)
	err := remote.BatchGetCtx(ctx, []int{1, 2, 3}, dst)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the injected delay leaked through", elapsed)
	}
}

func TestRemoteStoreDisconnectReconnect(t *testing.T) {
	local := testStore(500, 7)
	meta := codec.ShardMeta{ShardCount: 1}
	srv := NewServer(local, meta, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go func() { _ = srv.Serve(ln) }()

	remote := NewRemoteStore(addr, ClientConfig{DialTimeout: time.Second, RequestTimeout: 2 * time.Second})
	defer func() { _ = remote.Close() }()
	var anyKey int
	local.ForEachNonzero(func(k int, _ float64) bool { anyKey = k; return false })
	if v, err := remote.GetCtx(context.Background(), anyKey); err != nil || v != local.Get(anyKey) {
		t.Fatalf("before disconnect: %g, %v", v, err)
	}

	// Kill the shard: the pooled connection is dead and redials refuse.
	_ = srv.Close()
	if _, err := remote.GetCtx(context.Background(), anyKey); !errors.Is(err, ErrShard) {
		t.Fatalf("dead shard returned %v, want ErrShard", err)
	}

	// Rebind the same address (listeners set SO_REUSEADDR) and recover: the
	// client drops broken connections, so the next call dials fresh.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	srv2 := NewServer(local, meta, nil)
	go func() { _ = srv2.Serve(ln2) }()
	defer func() { _ = srv2.Close() }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := remote.GetCtx(context.Background(), anyKey)
		if err == nil {
			if v != local.Get(anyKey) {
				t.Fatalf("after reconnect: %g, want %g", v, local.Get(anyKey))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no recovery after restart: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// downStore is a FallibleStore whose every retrieval fails outright — the
// in-process stand-in for a dead shard.
type downStore struct{ err error }

func (d downStore) Get(int) float64                              { panic("down") }
func (d downStore) Retrievals() int64                            { return 0 }
func (d downStore) ResetStats()                                  {}
func (d downStore) NonzeroCount() int                            { return 0 }
func (d downStore) ConcurrentSafe()                              {}
func (d downStore) GetCtx(context.Context, int) (float64, error) { return 0, d.err }
func (d downStore) BatchGetCtx(_ context.Context, keys []int, _ []float64) error {
	return d.err
}

func TestCoordinatorMergesAndDegrades(t *testing.T) {
	full := testStore(4000, 8)
	const n = 4
	shards := make([]storage.FallibleStore, n)
	for i := 0; i < n; i++ {
		part, _, _, err := Partition(full, i, n)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = storage.AsFallible(part)
	}
	coord, err := NewCoordinator(shards, nil)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	keys := make([]int, 800)
	for i := range keys {
		keys[i] = rng.Intn(1 << 20)
	}
	dst := make([]float64, len(keys))
	if err := coord.BatchGetCtx(context.Background(), keys, dst); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if math.Float64bits(dst[i]) != math.Float64bits(full.Get(k)) {
			t.Fatalf("key %d: coordinator %g, source %g", k, dst[i], full.Get(k))
		}
	}
	for i, h := range coord.Health() {
		if h.Shard != i || h.Requests == 0 || h.Errors != 0 || h.LastSeenUnix == 0 {
			t.Fatalf("healthy shard %d ledger: %+v", i, h)
		}
	}

	// Shard 2 dies: exactly its keys degrade, everything else stays valid.
	downErr := fmt.Errorf("%w: connection refused", ErrShard)
	shards[2] = downStore{err: downErr}
	coord2, err := NewCoordinator(shards, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	dst2 := make([]float64, len(keys))
	err = coord2.BatchGetCtx(context.Background(), keys, dst2)
	var be *storage.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("dead shard: want *storage.BatchError, got %v", err)
	}
	failed := make(map[int]bool)
	last := -1
	for _, ke := range be.Failed {
		if ke.Index <= last {
			t.Fatalf("merged failures not ascending: %d after %d", ke.Index, last)
		}
		last = ke.Index
		if storage.ShardOf(ke.Key, n) != 2 {
			t.Fatalf("key %d failed but lives on shard %d", ke.Key, storage.ShardOf(ke.Key, n))
		}
		if !errors.Is(ke.Err, ErrShard) {
			t.Fatalf("cause %v does not match ErrShard", ke.Err)
		}
		failed[ke.Index] = true
	}
	for i, k := range keys {
		if storage.ShardOf(k, n) == 2 {
			if !failed[i] {
				t.Fatalf("key %d on the dead shard did not degrade", k)
			}
			continue
		}
		if failed[i] {
			t.Fatalf("key %d on a live shard degraded", k)
		}
		if math.Float64bits(dst2[i]) != math.Float64bits(full.Get(k)) {
			t.Fatalf("live key %d: %g, want %g", k, dst2[i], full.Get(k))
		}
	}
	h := coord2.Health()
	if h[2].Errors == 0 || h[2].DegradedKeys == 0 || h[2].LastError == "" {
		t.Fatalf("dead shard ledger unmarked: %+v", h[2])
	}
	if h[0].Errors != 0 {
		t.Fatalf("live shard ledger marked: %+v", h[0])
	}
}

func TestCoordinatorCancellationBeatsDegradation(t *testing.T) {
	// A cancelled caller must see ctx.Err(), not a degraded-batch report:
	// per the FallibleStore contract nothing in dst may be trusted.
	shards := make([]storage.FallibleStore, 2)
	for i := range shards {
		shards[i] = downStore{err: context.Canceled}
	}
	coord, err := NewCoordinator(shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dst := make([]float64, 4)
	if err := coord.BatchGetCtx(ctx, []int{1, 2, 3, 4}, dst); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fan-out returned %v, want context.Canceled", err)
	}
}

func TestCoordinatorRejectsBadShardCounts(t *testing.T) {
	if _, err := NewCoordinator(nil, nil); err == nil {
		t.Fatal("0 shards accepted")
	}
	three := []storage.FallibleStore{downStore{}, downStore{}, downStore{}}
	if _, err := NewCoordinator(three, nil); err == nil {
		t.Fatal("3 shards accepted")
	}
	if _, err := NewCoordinator(three[:2], []string{"only-one"}); err == nil {
		t.Fatal("addr/shard count mismatch accepted")
	}
}

func TestValidateMetasCatchesDeploymentMismatches(t *testing.T) {
	mk := func() *codec.ShardMeta {
		return &codec.ShardMeta{
			Names: []string{"x", "y"}, Sizes: []int{64, 64},
			Windows:    [][2]float64{{0, 1}, {0, 1}},
			FilterName: "Db4", TupleCount: 100, ShardCount: 2,
		}
	}
	good := []*codec.ShardMeta{mk(), mk()}
	good[1].ShardIndex = 1
	if err := ValidateMetas(good); err != nil {
		t.Fatalf("coherent metas rejected: %v", err)
	}
	cases := map[string]func(m []*codec.ShardMeta){
		"wrong shard count":  func(m []*codec.ShardMeta) { m[1].ShardCount = 4 },
		"wrong index":        func(m []*codec.ShardMeta) { m[1].ShardIndex = 0 },
		"filter mismatch":    func(m []*codec.ShardMeta) { m[1].FilterName = "Haar" },
		"tuple mismatch":     func(m []*codec.ShardMeta) { m[1].TupleCount = 99 },
		"dimension mismatch": func(m []*codec.ShardMeta) { m[1].Sizes[0] = 128 },
		"window mismatch":    func(m []*codec.ShardMeta) { m[1].Windows[0] = [2]float64{5, 6} },
	}
	for name, mutate := range cases {
		bad := []*codec.ShardMeta{mk(), mk()}
		bad[1].ShardIndex = 1
		mutate(bad)
		if err := ValidateMetas(bad); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	if err := ValidateMetas(nil); err == nil {
		t.Fatal("empty meta set accepted")
	}
}

func TestRetryStoreStacksOnRemoteStore(t *testing.T) {
	// The point of RemoteStore being a FallibleStore: the existing retry
	// layer wraps it unchanged and absorbs transient shard faults.
	base := testStore(500, 11)
	flaky := storage.NewFaultStore(base, storage.FaultConfig{ErrorEvery: 3})
	addr, _ := startShard(t, flaky, codec.ShardMeta{ShardCount: 1})
	remote := NewRemoteStore(addr, ClientConfig{})
	defer func() { _ = remote.Close() }()
	// Every retry round clears ~2/3 of the still-failing keys (the fault
	// fires every 3rd retrieval), so draining 200 keys needs ~log₃ 200 + 1
	// rounds; 10 attempts gives comfortable headroom.
	retried := storage.NewRetryStore(remote, storage.RetryConfig{MaxAttempts: 10, BaseDelay: time.Millisecond})

	keys := make([]int, 200)
	rng := rand.New(rand.NewSource(12))
	for i := range keys {
		keys[i] = rng.Intn(1 << 20)
	}
	dst := make([]float64, len(keys))
	if err := retried.BatchGetCtx(context.Background(), keys, dst); err != nil {
		t.Fatalf("retries did not absorb every-3rd faults: %v", err)
	}
	for i, k := range keys {
		if math.Float64bits(dst[i]) != math.Float64bits(base.Get(k)) {
			t.Fatalf("key %d: %g after retries, want %g", k, dst[i], base.Get(k))
		}
	}
}
