package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

// shardState is one shard's health ledger, updated on every sub-batch.
type shardState struct {
	requests atomic.Int64 // sub-batches sent
	keys     atomic.Int64 // keys routed to this shard
	errors   atomic.Int64 // sub-batches that came back with any failure
	degraded atomic.Int64 // keys that came back as per-key failures
	lastSeen atomic.Int64 // unix nanos of the last successful response, 0 = never

	mu      sync.Mutex
	lastErr string
}

// ShardHealth is a point-in-time snapshot of one shard's ledger, shaped for
// the /stats endpoint.
type ShardHealth struct {
	Shard        int    `json:"shard"`
	Addr         string `json:"addr"`
	Requests     int64  `json:"requests"`
	Keys         int64  `json:"keys"`
	Errors       int64  `json:"errors"`
	DegradedKeys int64  `json:"degraded_keys"`
	LastSeenUnix int64  `json:"last_seen_unix,omitempty"`
	LastError    string `json:"last_error,omitempty"`
}

// CoordinatorStore fans every retrieval out across N shard stores: each key
// is routed with storage.ShardOf — the same packed-key hash ShardedStore
// uses — the per-shard sub-batches run concurrently, and the answers land
// back in the caller's positions. A shard failing (whole sub-batch or
// individual keys) degrades rather than fails the batch: its keys come back
// as per-key entries of a *storage.BatchError, which the engine's skip
// machinery turns into Theorem-1-bounded skipped coefficients. Only the
// caller's own cancellation fails the whole batch.
//
// The shard stores are plain storage.FallibleStore values, so tests can
// coordinate over in-process FaultStores and production coordinates over
// RemoteStores; either way wrappers (RetryStore, CoalescingStore,
// InstrumentedStore) stack per shard underneath or on top of the
// coordinator unchanged.
type CoordinatorStore struct {
	shards []storage.FallibleStore
	addrs  []string
	health []shardState

	retrievals atomic.Int64
}

// NewCoordinator builds a coordinator over shards, whose count must be a
// positive power of two (the ShardOf precondition). addrs are the
// human-readable shard names for health reporting; nil derives "shard-i".
func NewCoordinator(shards []storage.FallibleStore, addrs []string) (*CoordinatorStore, error) {
	if err := ValidShardCount(len(shards)); err != nil {
		return nil, err
	}
	if addrs == nil {
		addrs = make([]string, len(shards))
		for i := range addrs {
			addrs[i] = fmt.Sprintf("shard-%d", i)
		}
	}
	if len(addrs) != len(shards) {
		return nil, fmt.Errorf("dist: %d addrs for %d shards", len(addrs), len(shards))
	}
	return &CoordinatorStore{
		shards: shards,
		addrs:  addrs,
		health: make([]shardState, len(shards)),
	}, nil
}

// ShardCount returns the number of shards fanned out to.
func (c *CoordinatorStore) ShardCount() int { return len(c.shards) }

// WireVersions reports each shard client's negotiated wire version: 0 for
// in-process shards or clients that never connected, ≥ 2 when trace
// propagation is active on the link. The /stats diagnostics section.
func (c *CoordinatorStore) WireVersions() []uint16 {
	out := make([]uint16, len(c.shards))
	for i, sh := range c.shards {
		if rs, ok := sh.(*RemoteStore); ok {
			out[i] = rs.NegotiatedVersion()
		}
	}
	return out
}

// Health snapshots every shard's ledger.
func (c *CoordinatorStore) Health() []ShardHealth {
	out := make([]ShardHealth, len(c.shards))
	for i := range c.shards {
		st := &c.health[i]
		st.mu.Lock()
		lastErr := st.lastErr
		st.mu.Unlock()
		out[i] = ShardHealth{
			Shard:        i,
			Addr:         c.addrs[i],
			Requests:     st.requests.Load(),
			Keys:         st.keys.Load(),
			Errors:       st.errors.Load(),
			DegradedKeys: st.degraded.Load(),
			LastSeenUnix: st.lastSeen.Load() / int64(time.Second),
			LastError:    lastErr,
		}
	}
	return out
}

// noteOK records a successful sub-batch on shard i.
func (c *CoordinatorStore) noteOK(i, keys int) {
	st := &c.health[i]
	st.requests.Add(1)
	st.keys.Add(int64(keys))
	st.lastSeen.Store(time.Now().UnixNano())
	obsShardBatch(i, keys, false)
}

// noteErr records a failed (fully or partially) sub-batch on shard i;
// degraded counts the keys that failed.
func (c *CoordinatorStore) noteErr(i, keys, degraded int, err error) {
	st := &c.health[i]
	st.requests.Add(1)
	st.keys.Add(int64(keys))
	st.errors.Add(1)
	st.degraded.Add(int64(degraded))
	st.mu.Lock()
	st.lastErr = err.Error()
	st.mu.Unlock()
	obsShardBatch(i, keys, true)
	obsDegradedKeys(degraded)
}

// BatchGetCtx implements storage.FallibleStore: partition by ShardOf, fan
// out concurrently, merge. Shard failures become per-key *storage.
// BatchError entries (ascending Index); only the caller's cancellation
// fails the whole batch.
func (c *CoordinatorStore) BatchGetCtx(ctx context.Context, keys []int, dst []float64) error {
	if len(keys) != len(dst) {
		panic("dist: BatchGetCtx keys/dst length mismatch")
	}
	if len(keys) == 0 {
		return nil
	}
	c.retrievals.Add(int64(len(keys)))
	start := time.Now()
	prof := obs.ProfileFrom(ctx)

	n := len(c.shards)
	// Group the caller's positions by owning shard.
	positions := make([][]int, n)
	for i, k := range keys {
		si := storage.ShardOf(k, n)
		positions[si] = append(positions[si], i)
	}

	var wg sync.WaitGroup
	// failed[si] holds shard si's contribution to the merged BatchError,
	// already remapped to the caller's positions. Slot-per-shard: no lock.
	failed := make([][]storage.KeyError, n)
	for si := 0; si < n; si++ {
		pos := positions[si]
		if len(pos) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, pos []int) {
			defer wg.Done()
			subStart := time.Now()
			subKeys := make([]int, len(pos))
			subDst := make([]float64, len(pos))
			for j, p := range pos {
				subKeys[j] = keys[p]
			}
			err := c.shards[si].BatchGetCtx(ctx, subKeys, subDst)
			for j, p := range pos {
				dst[p] = subDst[j]
			}
			var be *storage.BatchError
			switch {
			case err == nil:
				c.noteOK(si, len(pos))
				prof.AddShard(si, c.addrs[si], len(pos), time.Since(subStart), 0, 0)
			case errors.As(err, &be):
				// Partial failure: unlisted positions hold valid values;
				// remap the listed ones to the caller's indices.
				kes := make([]storage.KeyError, len(be.Failed))
				for j, ke := range be.Failed {
					kes[j] = storage.KeyError{Index: pos[ke.Index], Key: ke.Key, Err: ke.Err}
				}
				failed[si] = kes
				c.noteErr(si, len(pos), len(kes), err)
				prof.AddShard(si, c.addrs[si], len(pos), time.Since(subStart), len(kes), 0)
			default:
				// Whole sub-batch untrusted (shard dead, hung, protocol
				// violation): every key of this shard degrades.
				kes := make([]storage.KeyError, len(pos))
				for j, p := range pos {
					kes[j] = storage.KeyError{Index: p, Key: subKeys[j], Err: err}
					dst[p] = 0
				}
				failed[si] = kes
				c.noteErr(si, len(pos), len(kes), err)
				prof.AddShard(si, c.addrs[si], len(pos), time.Since(subStart), len(kes), len(kes))
			}
		}(si, pos)
	}
	wg.Wait()
	obsFanout(time.Since(start))

	// The caller's own cancellation dominates: per the FallibleStore
	// contract no position may be trusted then, and callers (retry, skip
	// accounting) must see ctx.Err(), not a degraded-shard report.
	if err := ctx.Err(); err != nil {
		return err
	}
	var merged []storage.KeyError
	for _, kes := range failed {
		merged = append(merged, kes...)
	}
	if len(merged) == 0 {
		return nil
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Index < merged[j].Index })
	return &storage.BatchError{Failed: merged}
}

// GetCtx implements storage.FallibleStore, routing the single key to its
// owning shard.
func (c *CoordinatorStore) GetCtx(ctx context.Context, key int) (float64, error) {
	c.retrievals.Add(1)
	si := storage.ShardOf(key, len(c.shards))
	v, err := c.shards[si].GetCtx(ctx, key)
	if err == nil {
		c.noteOK(si, 1)
		return v, nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return 0, cerr
	}
	c.noteErr(si, 1, 1, err)
	return 0, err
}

// Get implements storage.Store. The infallible surface cannot report shard
// failures and panics on one; the engine's degradable paths use GetCtx.
func (c *CoordinatorStore) Get(key int) float64 {
	v, err := c.GetCtx(context.Background(), key)
	if err != nil {
		panic(fmt.Sprintf("dist: infallible Get through coordinator failed: %v", err))
	}
	return v
}

// GetBatch implements storage.BatchGetter, panicking on failure (see Get).
func (c *CoordinatorStore) GetBatch(keys []int, dst []float64) {
	if err := c.BatchGetCtx(context.Background(), keys, dst); err != nil {
		panic(fmt.Sprintf("dist: infallible GetBatch through coordinator failed: %v", err))
	}
}

// Add implements storage.Updatable by refusing: the distributed view is
// read-only — ingestion happens before partitioning, on the shard side.
func (c *CoordinatorStore) Add(key int, delta float64) {
	panic("dist: CoordinatorStore is read-only; load tuples before partitioning")
}

// Retrievals implements storage.Store, counting keys requested through the
// coordinator.
func (c *CoordinatorStore) Retrievals() int64 { return c.retrievals.Load() }

// ResetStats implements storage.Store.
func (c *CoordinatorStore) ResetStats() { c.retrievals.Store(0) }

// NonzeroCount implements storage.Store as the sum over shards (each shard
// owns a disjoint key slice). Unreachable shards report 0 — a diagnostic
// surface, not a correctness one.
func (c *CoordinatorStore) NonzeroCount() int {
	total := 0
	for _, sh := range c.shards {
		total += sh.NonzeroCount()
	}
	return total
}

// ConcurrentSafe implements storage.Concurrent: fan-out state is per-call,
// health is atomic, and the shard clients are concurrent-safe.
func (c *CoordinatorStore) ConcurrentSafe() {}

// Close closes every shard client that supports closing.
func (c *CoordinatorStore) Close() error {
	var first error
	for _, sh := range c.shards {
		if cl, ok := sh.(io.Closer); ok {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

var (
	_ storage.FallibleStore = (*CoordinatorStore)(nil)
	_ storage.Updatable     = (*CoordinatorStore)(nil)
	_ storage.BatchGetter   = (*CoordinatorStore)(nil)
	_ storage.Concurrent    = (*CoordinatorStore)(nil)
)
