package wavelet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/poly"
)

// This file implements the lazy sparse wavelet transform of 1-D query
// factors q[x] = p(x) for x in [a,b] and 0 elsewhere — the machinery that
// makes ProPolyne-style query rewriting poly-logarithmic.
//
// The idea: the level-0 signal is a single polynomial run. One analysis
// level convolves with a length-L filter and downsamples; for output indices
// whose filter window lies entirely inside a run, the output is again a
// polynomial in the output index (Q(k) = Σ_n h[n]·P(2k+n)), so the
// approximation band keeps a compact run representation, and the detail band
// is *identically zero* in the interior whenever the wavelet has more
// vanishing moments than deg(p). Only O(L) boundary outputs per level need
// explicit evaluation, which is where the sparse detail coefficients come
// from. The cascade therefore emits O(L·log N) nonzero coefficients using
// O(L²·deg·log N) arithmetic, independent of the range width.

// zeroTol is the relative tolerance below which computed coefficients are
// treated as exact zeros. Interior detail polynomials are analytically zero
// when the filter has enough vanishing moments; floating-point evaluation
// leaves residue around 1e-12 times the coefficient scale.
const zeroTol = 1e-9

// run is a maximal interval [lo, hi] (inclusive, never wrapping) on which a
// level signal equals p evaluated at the index.
type run struct {
	lo, hi int
	p      poly.Poly
}

// levelSignal represents one approximation band during the cascade: a set of
// disjoint, sorted polynomial runs plus explicit values at indices not
// covered by any run.
type levelSignal struct {
	n        int
	runs     []run
	explicit map[int]float64
}

// read returns the signal value at index x (taken mod n).
func (s *levelSignal) read(x int) float64 {
	x = mod(x, s.n)
	if v, ok := s.explicit[x]; ok {
		return v
	}
	// Binary search for the run containing x.
	i := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].hi >= x })
	if i < len(s.runs) && s.runs[i].lo <= x {
		return s.runs[i].p.EvalInt(x)
	}
	return 0
}

// dense materializes the whole signal.
func (s *levelSignal) dense() []float64 {
	out := make([]float64, s.n)
	for _, r := range s.runs {
		for x := r.lo; x <= r.hi; x++ {
			out[x] = r.p.EvalInt(x)
		}
	}
	for x, v := range s.explicit {
		out[x] = v
	}
	return out
}

func mod(x, n int) int {
	x %= n
	if x < 0 {
		x += n
	}
	return x
}

// QueryTransform computes the full multi-level periodic DWT of the signal
// q[x] = p(x)·χ_[a,b](x) on a domain of power-of-two size n, returning only
// the nonzero coefficients as a position→value map in the canonical pyramid
// layout. The result is identical (within floating-point tolerance) to
// applying Filter.Forward to the densely sampled signal, but is computed in
// time proportional to the number of nonzero outputs when the filter has
// more vanishing moments than deg(p).
//
// If the filter has too few vanishing moments for deg(p) (e.g. Haar with a
// degree-1 polynomial), the transform is still exact but the interior detail
// bands no longer vanish, so the output degrades gracefully toward O(n)
// nonzeros.
func (f *Filter) QueryTransform(p poly.Poly, a, b, n int) (map[int]float64, error) {
	if !IsPow2(n) {
		return nil, fmt.Errorf("wavelet: domain size %d is not a power of two", n)
	}
	if a < 0 || b >= n || a > b {
		return nil, fmt.Errorf("wavelet: range [%d,%d] invalid for domain size %d", a, b, n)
	}
	out := make(map[int]float64)
	if p.IsZero() {
		return out, nil
	}
	sig := &levelSignal{n: n, explicit: map[int]float64{}}
	sig.runs = []run{{lo: a, hi: b, p: p}}
	// Scale used to decide which computed values are exact zeros.
	scale := p.MaxAbsCoeff() * math.Pow(float64(n), float64(p.Degree()))
	if scale == 0 {
		scale = 1
	}

	L := f.Len()
	for m := n; m >= 2; m /= 2 {
		if m <= 4*L || len(sig.explicit) > m/2 {
			// Tail of the cascade: the signal is tiny (or already mostly
			// explicit); finish densely.
			f.finishDense(sig, m, out, scale)
			return out, nil
		}
		m2 := m / 2
		sig = f.analyzeLazy(sig, scale, func(k int, v float64) {
			out[m2+k] += v
		})
	}
	// m == 1: single remaining scaling coefficient at layout position 0.
	if v := sig.read(0); math.Abs(v) > zeroTol*scale {
		out[0] = v
	}
	return out, nil
}

// LevelBands holds the per-level output of the analysis cascade on a 1-D
// query factor: Details[j] are the detail coefficients produced by step j+1
// (local positions in [0, n>>(j+1))), Approxes[j] the approximation after
// that step (same index space). The final Approxes entry has length-1 index
// space holding the overall scaling coefficient. This is the form the
// nonstandard (simultaneous-dimension) decomposition assembles its tensor
// blocks from.
type LevelBands struct {
	N        int
	Details  []map[int]float64
	Approxes []map[int]float64
}

// Levels returns the number of analysis steps recorded.
func (b *LevelBands) Levels() int { return len(b.Details) }

// QueryLevelBands runs the same lazy cascade as QueryTransform but returns
// the per-level detail and approximation bands instead of the pyramid
// layout. Note that unlike the pyramid output, approximation bands of a
// range factor are dense over the (shrinking) range support, so the total
// size is O(b−a), not poly-log.
func (f *Filter) QueryLevelBands(p poly.Poly, a, b, n int) (*LevelBands, error) {
	if !IsPow2(n) {
		return nil, fmt.Errorf("wavelet: domain size %d is not a power of two", n)
	}
	if a < 0 || b >= n || a > b {
		return nil, fmt.Errorf("wavelet: range [%d,%d] invalid for domain size %d", a, b, n)
	}
	bands := &LevelBands{N: n}
	if p.IsZero() || n == 1 {
		return bands, nil
	}
	sig := &levelSignal{n: n, explicit: map[int]float64{}}
	sig.runs = []run{{lo: a, hi: b, p: p}}
	scale := p.MaxAbsCoeff() * math.Pow(float64(n), float64(p.Degree()))
	if scale == 0 {
		scale = 1
	}
	L := f.Len()
	for m := n; m >= 2; m /= 2 {
		if m <= 4*L || len(sig.explicit) > m/2 {
			f.finishDenseBands(sig, m, scale, bands)
			return bands, nil
		}
		detail := make(map[int]float64)
		sig = f.analyzeLazy(sig, scale, func(k int, v float64) {
			detail[k] += v
		})
		bands.Details = append(bands.Details, detail)
		bands.Approxes = append(bands.Approxes, sig.toSparse(scale))
	}
	return bands, nil
}

// toSparse materializes the signal as a sparse map, dropping negligible
// values.
func (s *levelSignal) toSparse(scale float64) map[int]float64 {
	out := make(map[int]float64)
	for _, r := range s.runs {
		for x := r.lo; x <= r.hi; x++ {
			if v := r.p.EvalInt(x); math.Abs(v) > zeroTol*scale {
				out[x] = v
			}
		}
	}
	for x, v := range s.explicit {
		if math.Abs(v) > zeroTol*scale {
			out[x] = v
		}
	}
	return out
}

// finishDenseBands completes the cascade densely, appending per-level bands.
func (f *Filter) finishDenseBands(sig *levelSignal, m int, scale float64, bands *LevelBands) {
	s := sig.dense()
	buf := make([]float64, m)
	for cur := m; cur >= 2; cur /= 2 {
		a, d := buf[:cur/2], buf[cur/2:cur]
		f.AnalyzeLevel(s[:cur], a, d)
		copy(s[:cur], buf[:cur])
		detail := make(map[int]float64)
		for k, v := range d {
			if math.Abs(v) > zeroTol*scale {
				detail[k] += v
			}
		}
		approx := make(map[int]float64)
		for k, v := range a {
			if math.Abs(v) > zeroTol*scale {
				approx[k] = v
			}
		}
		bands.Details = append(bands.Details, detail)
		bands.Approxes = append(bands.Approxes, approx)
	}
}

// analyzeLazy applies one analysis level to sig, emitting detail
// coefficients (level-local positions) through emit and returning the next
// approximation band.
func (f *Filter) analyzeLazy(sig *levelSignal, scale float64, emit func(k int, v float64)) *levelSignal {
	m := sig.n
	m2 := m / 2
	L := f.Len()
	next := &levelSignal{n: m2, explicit: map[int]float64{}}

	// Candidate output indices needing explicit evaluation (windows that
	// touch a run boundary, an explicit input, or the periodic wrap).
	candidates := make(map[int]struct{})
	addCandidates := func(kLo, kHi int) {
		for k := kLo; k <= kHi; k++ {
			candidates[mod(k, m2)] = struct{}{}
		}
	}

	for _, r := range sig.runs {
		// Windows [2k, 2k+L-1] intersecting [r.lo, r.hi]:
		//   kAllLo = ceil((r.lo-L+1)/2), kAllHi = floor(r.hi/2).
		kAllLo := ceilDiv(r.lo-L+1, 2)
		kAllHi := floorDiv(r.hi, 2)
		// Windows fully inside the run:
		kIntLo := ceilDiv(r.lo, 2)
		kIntHi := floorDiv(r.hi-L+1, 2)
		if kIntLo <= kIntHi {
			// Interior: approximation is a polynomial run; the detail run is
			// the zero polynomial when the filter has enough vanishing
			// moments.
			qa := poly.Zero()
			qg := poly.Zero()
			for nTap := 0; nTap < L; nTap++ {
				shifted := r.p.AffineCompose(2, float64(nTap))
				qa = qa.Add(shifted.Scale(f.H[nTap]))
				qg = qg.Add(shifted.Scale(f.G[nTap]))
			}
			if !negligibleOn(qa, kIntHi, zeroTol*scale) {
				next.runs = append(next.runs, run{lo: kIntLo, hi: kIntHi, p: qa})
			}
			if !negligibleOn(qg, kIntHi, zeroTol*scale) {
				// Insufficient vanishing moments: materialize the interior
				// detail run explicitly (graceful degradation).
				for k := kIntLo; k <= kIntHi; k++ {
					if v := qg.EvalInt(k); math.Abs(v) > zeroTol*scale {
						emit(k, v)
					}
				}
			}
			addCandidates(kAllLo, kIntLo-1)
			addCandidates(kIntHi+1, kAllHi)
		} else {
			addCandidates(kAllLo, kAllHi)
		}
	}
	for x := range sig.explicit {
		// Windows covering explicit input x: 2k ≤ x ≤ 2k+L-1.
		addCandidates(ceilDiv(x-L+1, 2), floorDiv(x, 2))
	}

	sort.Slice(next.runs, func(i, j int) bool { return next.runs[i].lo < next.runs[j].lo })

	// Evaluate candidates explicitly via the generic periodic convolution,
	// skipping any candidate that landed inside an interior run (its value is
	// already represented there).
	for k := range candidates {
		if next.covered(k) {
			continue
		}
		var av, dv float64
		base := 2 * k
		for nTap := 0; nTap < L; nTap++ {
			v := sig.read(base + nTap)
			av += f.H[nTap] * v
			dv += f.G[nTap] * v
		}
		if math.Abs(av) > zeroTol*scale {
			next.explicit[k] = av
		}
		if math.Abs(dv) > zeroTol*scale {
			emit(k, dv)
		}
	}
	return next
}

// covered reports whether index k lies inside one of s.runs.
func (s *levelSignal) covered(k int) bool {
	i := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].hi >= k })
	return i < len(s.runs) && s.runs[i].lo <= k
}

// finishDense materializes the signal (current length m) and completes the
// remaining levels with the dense transform, emitting all nonzero
// coefficients into the pyramid layout (offsets depend only on m).
func (f *Filter) finishDense(sig *levelSignal, m int, out map[int]float64, scale float64) {
	s := sig.dense()
	buf := make([]float64, m)
	for cur := m; cur >= 2; cur /= 2 {
		a, d := buf[:cur/2], buf[cur/2:cur]
		f.AnalyzeLevel(s[:cur], a, d)
		copy(s[:cur], buf[:cur])
		for k, v := range d {
			if math.Abs(v) > zeroTol*scale {
				out[cur/2+k] += v
			}
		}
	}
	if math.Abs(s[0]) > zeroTol*scale {
		out[0] += s[0]
	}
}

// QueryTransformDense computes the same coefficient map as QueryTransform by
// densely sampling the query factor and applying the full transform. It is
// the straightforward O(n log n)-work oracle used in tests and ablation
// benches.
func (f *Filter) QueryTransformDense(p poly.Poly, a, b, n int) (map[int]float64, error) {
	if !IsPow2(n) {
		return nil, fmt.Errorf("wavelet: domain size %d is not a power of two", n)
	}
	if a < 0 || b >= n || a > b {
		return nil, fmt.Errorf("wavelet: range [%d,%d] invalid for domain size %d", a, b, n)
	}
	s := make([]float64, n)
	scale := 0.0
	for x := a; x <= b; x++ {
		s[x] = p.EvalInt(x)
		if v := math.Abs(s[x]); v > scale {
			scale = v
		}
	}
	if scale == 0 {
		scale = 1
	}
	f.Forward(s)
	out := make(map[int]float64)
	for i, v := range s {
		if math.Abs(v) > zeroTol*scale {
			out[i] = v
		}
	}
	return out, nil
}

// ImpulseTransform returns the nonzero transform coefficients of the unit
// impulse at index x on a domain of size n. This is the per-dimension
// building block of single-tuple updates to the stored data transform: a new
// tuple adds the (tensor product of the per-dimension) impulse transform to
// Δ̂. The result has O(L·log n) nonzeros.
func (f *Filter) ImpulseTransform(x, n int) (map[int]float64, error) {
	return f.QueryTransform(poly.Constant(1), x, x, n)
}

// negligibleOn reports whether |p(k)| is guaranteed below tol for every
// integer k in [0, maxIdx], using the coefficient-magnitude bound
// Σ_j |c_j|·maxIdx^j. A plain coefficient-wise zero test is wrong here: a
// coefficient of size ε on x^5 contributes ε·maxIdx^5, which can be enormous.
func negligibleOn(p poly.Poly, maxIdx int, tol float64) bool {
	if maxIdx < 1 {
		maxIdx = 1
	}
	var bound, pw float64
	pw = 1
	for _, c := range p {
		bound += math.Abs(c) * pw
		pw *= float64(maxIdx)
	}
	return bound <= tol
}

func ceilDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
