package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/poly"
)

// compareMaps checks that two sparse coefficient maps agree within tol,
// treating absent keys as zero.
func compareMaps(t *testing.T, got, want map[int]float64, tol float64, ctx string) {
	t.Helper()
	keys := map[int]struct{}{}
	for k := range got {
		keys[k] = struct{}{}
	}
	for k := range want {
		keys[k] = struct{}{}
	}
	for k := range keys {
		if d := math.Abs(got[k] - want[k]); d > tol {
			t.Fatalf("%s: coefficient %d: got %g want %g (diff %g)", ctx, k, got[k], want[k], d)
		}
	}
}

func TestQueryTransformMatchesDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, f := range Filters {
		maxDeg := f.VanishingMoments() - 1
		for _, n := range []int{8, 16, 64, 256, 1024} {
			for trial := 0; trial < 8; trial++ {
				deg := rng.Intn(maxDeg + 1)
				p := make(poly.Poly, deg+1)
				for i := range p {
					p[i] = rng.NormFloat64()
				}
				p[deg] = rng.NormFloat64() + 2 // ensure true degree
				a := rng.Intn(n)
				b := a + rng.Intn(n-a)
				lazy, err := f.QueryTransform(p, a, b, n)
				if err != nil {
					t.Fatalf("%s n=%d: %v", f.Name, n, err)
				}
				dense, err := f.QueryTransformDense(p, a, b, n)
				if err != nil {
					t.Fatal(err)
				}
				scale := p.MaxAbsCoeff() * math.Pow(float64(n), float64(deg))
				compareMaps(t, lazy, dense, 1e-7*scale, f.Name)
			}
		}
	}
}

func TestQueryTransformFullDomainConstant(t *testing.T) {
	// χ over the whole domain with p=1: only the scaling coefficient √n.
	for _, f := range Filters {
		n := 256
		m, err := f.QueryTransform(poly.Constant(1), 0, n-1, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(m) != 1 {
			t.Fatalf("%s: %d nonzeros, want 1 (%v)", f.Name, len(m), m)
		}
		if math.Abs(m[0]-math.Sqrt(float64(n))) > 1e-9 {
			t.Fatalf("%s: scaling coefficient %g", f.Name, m[0])
		}
	}
}

func TestQueryTransformSparsityBound(t *testing.T) {
	// For supported degrees the nonzero count is O(L·log n): each of the
	// log n levels contributes at most ~2L boundary details.
	rng := rand.New(rand.NewSource(13))
	for _, f := range Filters {
		n := 4096
		deg := f.VanishingMoments() - 1
		p := poly.Monomial(1, deg)
		for trial := 0; trial < 10; trial++ {
			a := rng.Intn(n)
			b := a + rng.Intn(n-a)
			m, err := f.QueryTransform(p, a, b, n)
			if err != nil {
				t.Fatal(err)
			}
			bound := (4*f.Len() + 8) * Log2(n)
			if len(m) > bound {
				t.Fatalf("%s deg=%d [%d,%d]: %d nonzeros exceeds bound %d",
					f.Name, deg, a, b, len(m), bound)
			}
		}
	}
}

func TestQueryTransformInnerProductEvaluatesRangeSum(t *testing.T) {
	// The whole point: ⟨q̂, Δ̂⟩ = Σ_{x∈[a,b]} p(x)·Δ[x].
	rng := rand.New(rand.NewSource(17))
	for _, f := range []*Filter{Haar, Db4, Db6} {
		n := 128
		data := randSignal(rng, n)
		dataHat := f.ForwardCopy(data)
		for trial := 0; trial < 20; trial++ {
			deg := rng.Intn(f.VanishingMoments())
			p := make(poly.Poly, deg+1)
			for i := range p {
				p[i] = rng.NormFloat64()
			}
			a := rng.Intn(n)
			b := a + rng.Intn(n-a)
			var want float64
			for x := a; x <= b; x++ {
				want += p.EvalInt(x) * data[x]
			}
			q, err := f.QueryTransform(p, a, b, n)
			if err != nil {
				t.Fatal(err)
			}
			var got float64
			for pos, c := range q {
				got += c * dataHat[pos]
			}
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("%s deg=%d [%d,%d]: got %g want %g", f.Name, deg, a, b, got, want)
			}
		}
	}
}

func TestQueryTransformInsufficientMomentsStillExact(t *testing.T) {
	// Haar with a degree-1 polynomial: interior details no longer vanish,
	// but the transform must remain exact (graceful degradation).
	n := 256
	p := poly.New(1, 1) // 1 + x
	lazy, err := Haar.QueryTransform(p, 10, 200, n)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Haar.QueryTransformDense(p, 10, 200, n)
	if err != nil {
		t.Fatal(err)
	}
	compareMaps(t, lazy, dense, 1e-6*float64(n), "Haar-deg1")
	if len(lazy) < 50 {
		t.Fatalf("expected dense-ish output for insufficient moments, got %d nonzeros", len(lazy))
	}
}

func TestQueryTransformSinglePoint(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, f := range Filters {
		n := 64
		x := rng.Intn(n)
		lazy, err := f.QueryTransform(poly.Constant(2.5), x, x, n)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := f.QueryTransformDense(poly.Constant(2.5), x, x, n)
		if err != nil {
			t.Fatal(err)
		}
		compareMaps(t, lazy, dense, 1e-9, f.Name)
	}
}

func TestQueryTransformZeroPoly(t *testing.T) {
	m, err := Db4.QueryTransform(poly.Zero(), 0, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 0 {
		t.Fatalf("zero polynomial produced %d coefficients", len(m))
	}
}

func TestQueryTransformErrors(t *testing.T) {
	cases := []struct{ a, b, n int }{
		{0, 10, 63},  // non-pow2
		{-1, 10, 64}, // negative lo
		{5, 64, 64},  // hi out of range
		{10, 5, 64},  // inverted
	}
	for _, c := range cases {
		if _, err := Db4.QueryTransform(poly.Constant(1), c.a, c.b, c.n); err == nil {
			t.Errorf("QueryTransform(%d,%d,%d) should fail", c.a, c.b, c.n)
		}
		if _, err := Db4.QueryTransformDense(poly.Constant(1), c.a, c.b, c.n); err == nil {
			t.Errorf("QueryTransformDense(%d,%d,%d) should fail", c.a, c.b, c.n)
		}
	}
}

func TestImpulseTransformParseval(t *testing.T) {
	// ⟨δ̂_x, Δ̂⟩ must recover Δ[x].
	rng := rand.New(rand.NewSource(23))
	for _, f := range Filters {
		n := 128
		data := randSignal(rng, n)
		hat := f.ForwardCopy(data)
		for trial := 0; trial < 10; trial++ {
			x := rng.Intn(n)
			imp, err := f.ImpulseTransform(x, n)
			if err != nil {
				t.Fatal(err)
			}
			var got float64
			for pos, c := range imp {
				got += c * hat[pos]
			}
			if math.Abs(got-data[x]) > 1e-8 {
				t.Fatalf("%s: impulse at %d recovered %g want %g", f.Name, x, got, data[x])
			}
		}
	}
}

func TestQuickLazyVsDense(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := Filters[rng.Intn(len(Filters))]
		n := 1 << (3 + rng.Intn(6))
		deg := rng.Intn(f.VanishingMoments())
		p := make(poly.Poly, deg+1)
		for i := range p {
			p[i] = rng.NormFloat64()
		}
		a := rng.Intn(n)
		b := a + rng.Intn(n-a)
		lazy, err1 := f.QueryTransform(p, a, b, n)
		dense, err2 := f.QueryTransformDense(p, a, b, n)
		if err1 != nil || err2 != nil {
			return false
		}
		scale := 1 + p.MaxAbsCoeff()*math.Pow(float64(n), float64(deg))
		keys := map[int]struct{}{}
		for k := range lazy {
			keys[k] = struct{}{}
		}
		for k := range dense {
			keys[k] = struct{}{}
		}
		for k := range keys {
			if math.Abs(lazy[k]-dense[k]) > 1e-7*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCeilFloorDiv(t *testing.T) {
	for a := -10; a <= 10; a++ {
		wantCeil := int(math.Ceil(float64(a) / 2))
		wantFloor := int(math.Floor(float64(a) / 2))
		if got := ceilDiv(a, 2); got != wantCeil {
			t.Errorf("ceilDiv(%d,2) = %d, want %d", a, got, wantCeil)
		}
		if got := floorDiv(a, 2); got != wantFloor {
			t.Errorf("floorDiv(%d,2) = %d, want %d", a, got, wantFloor)
		}
	}
}

func TestModHelper(t *testing.T) {
	if mod(-1, 8) != 7 || mod(8, 8) != 0 || mod(3, 8) != 3 || mod(-9, 8) != 7 {
		t.Fatal("mod wrong")
	}
}

func BenchmarkQueryTransformLazy(b *testing.B) {
	p := poly.New(0, 1)
	for i := 0; i < b.N; i++ {
		if _, err := Db4.QueryTransform(p, 100, 3000, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryTransformDense(b *testing.B) {
	p := poly.New(0, 1)
	for i := 0; i < b.N; i++ {
		if _, err := Db4.QueryTransformDense(p, 100, 3000, 4096); err != nil {
			b.Fatal(err)
		}
	}
}
