package wavelet

import (
	"math"
	"testing"
)

func TestFiltersOrthonormal(t *testing.T) {
	for _, f := range Filters {
		if worst := f.checkOrthonormal(); worst > 1e-10 {
			t.Errorf("%s: orthonormality violated by %g", f.Name, worst)
		}
	}
}

func TestFiltersVanishingMoments(t *testing.T) {
	for _, f := range Filters {
		want := f.VanishingMoments()
		for j := 0; j < want; j++ {
			var m float64
			for n, g := range f.G {
				m += g * math.Pow(float64(n), float64(j))
			}
			// Published double-precision coefficients carry ~1e-13 rounding
			// per tap; moment j amplifies that by roughly L^j.
			tol := 1e-12 * math.Pow(float64(f.Len()), float64(j+1))
			if math.Abs(m) > tol {
				t.Errorf("%s: moment %d = %g, want 0 (tol %g)", f.Name, j, m, tol)
			}
		}
		// The next moment must NOT vanish (the filter is exactly minimal).
		var m float64
		for n, g := range f.G {
			m += g * math.Pow(float64(n), float64(want))
		}
		if math.Abs(m) < 1e-6 {
			t.Errorf("%s: moment %d unexpectedly vanishes", f.Name, want)
		}
	}
}

func TestFilterLensAndNames(t *testing.T) {
	wantLens := map[string]int{
		"Haar": 2, "Db4": 4, "Db6": 6, "Db8": 8, "Db10": 10, "Db12": 12,
	}
	for _, f := range Filters {
		if got := f.Len(); got != wantLens[f.Name] {
			t.Errorf("%s: Len = %d, want %d", f.Name, got, wantLens[f.Name])
		}
		if f.VanishingMoments() != f.Len()/2 {
			t.Errorf("%s: VanishingMoments = %d", f.Name, f.VanishingMoments())
		}
	}
}

func TestForDegree(t *testing.T) {
	cases := []struct {
		degree int
		want   string
	}{
		{0, "Haar"}, {1, "Db4"}, {2, "Db6"}, {3, "Db8"}, {4, "Db10"}, {5, "Db12"},
	}
	for _, c := range cases {
		f, err := ForDegree(c.degree)
		if err != nil {
			t.Fatalf("ForDegree(%d): %v", c.degree, err)
		}
		if f.Name != c.want {
			t.Errorf("ForDegree(%d) = %s, want %s", c.degree, f.Name, c.want)
		}
	}
	if _, err := ForDegree(6); err == nil {
		t.Error("ForDegree(6) should fail with built-in set")
	}
	if _, err := ForDegree(-1); err == nil {
		t.Error("ForDegree(-1) should fail")
	}
}

func TestByName(t *testing.T) {
	f, err := ByName("Db4")
	if err != nil || f.Len() != 4 {
		t.Fatalf("ByName(Db4) = %v, %v", f, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

func TestSupportsDegree(t *testing.T) {
	if !Haar.SupportsDegree(0) || Haar.SupportsDegree(1) {
		t.Error("Haar degree support wrong")
	}
	if !Db4.SupportsDegree(1) || Db4.SupportsDegree(2) {
		t.Error("Db4 degree support wrong")
	}
}

func TestIsPow2AndLog2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -1, 3, 6, 1023} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
	if Log2(1) != 0 || Log2(2) != 1 || Log2(1024) != 10 {
		t.Error("Log2 wrong")
	}
}

func TestLog2PanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Log2(3)
}
