package wavelet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/poly"
)

func TestNonstandardRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for _, f := range []*Filter{Haar, Db4, Db6} {
		for _, shape := range [][]int{{8}, {8, 8}, {4, 4, 4}, {16, 16}} {
			total := 1
			for _, n := range shape {
				total *= n
			}
			data := randSignal(rng, total)
			orig := append([]float64(nil), data...)
			if err := f.ForwardNDNonstandard(data, shape); err != nil {
				t.Fatal(err)
			}
			if err := f.InverseNDNonstandard(data, shape); err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(data, orig); d > 1e-9 {
				t.Errorf("%s %v: roundtrip error %g", f.Name, shape, d)
			}
		}
	}
}

func TestNonstandardParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	shape := []int{16, 16}
	a := randSignal(rng, 256)
	b := randSignal(rng, 256)
	want := dot(a, b)
	ta := append([]float64(nil), a...)
	tb := append([]float64(nil), b...)
	if err := Db4.ForwardNDNonstandard(ta, shape); err != nil {
		t.Fatal(err)
	}
	if err := Db4.ForwardNDNonstandard(tb, shape); err != nil {
		t.Fatal(err)
	}
	if got := dot(ta, tb); math.Abs(want-got) > 1e-8*(1+math.Abs(want)) {
		t.Fatalf("inner product %g vs %g", want, got)
	}
}

func TestNonstandardDiffersFromStandard(t *testing.T) {
	// The two decompositions are different orthonormal bases: same energy,
	// different coefficients (beyond 1-D, where they coincide).
	rng := rand.New(rand.NewSource(509))
	shape := []int{8, 8}
	data := randSignal(rng, 64)
	std := append([]float64(nil), data...)
	if err := Haar.ForwardND(std, shape); err != nil {
		t.Fatal(err)
	}
	non := append([]float64(nil), data...)
	if err := Haar.ForwardNDNonstandard(non, shape); err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(std, non) < 1e-9 {
		t.Fatal("standard and nonstandard transforms coincide in 2-D (bug)")
	}
	// 1-D: identical.
	line := randSignal(rng, 16)
	s1 := append([]float64(nil), line...)
	Haar.Forward(s1)
	s2 := append([]float64(nil), line...)
	if err := Haar.ForwardNDNonstandard(s2, []int{16}); err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(s1, s2) > 1e-12 {
		t.Fatal("1-D nonstandard should equal the 1-D transform")
	}
}

func TestNonstandardValidation(t *testing.T) {
	if err := Haar.ForwardNDNonstandard(make([]float64, 32), []int{8, 4}); err == nil {
		t.Error("non-hypercube should fail")
	}
	if err := Haar.ForwardNDNonstandard(make([]float64, 5), []int{8}); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := Haar.InverseNDNonstandard(make([]float64, 32), []int{8, 4}); err == nil {
		t.Error("inverse non-hypercube should fail")
	}
	if _, err := CheckHypercube([]int{4, 4}); err != nil {
		t.Error(err)
	}
	if _, err := CheckHypercube([]int{4, 3}); err == nil {
		t.Error("non-pow2 should fail")
	}
}

func TestQueryLevelBandsConsistentWithPyramid(t *testing.T) {
	// The bands API must reproduce the pyramid transform: detail band j at
	// local k corresponds to pyramid position n>>(j+1) + k, and the final
	// approximation to position 0.
	rng := rand.New(rand.NewSource(521))
	for _, f := range []*Filter{Haar, Db4} {
		n := 64
		for trial := 0; trial < 10; trial++ {
			a := rng.Intn(n)
			b := a + rng.Intn(n-a)
			deg := rng.Intn(f.VanishingMoments())
			p := randomPoly(rng, deg)
			bands, err := f.QueryLevelBands(p, a, b, n)
			if err != nil {
				t.Fatal(err)
			}
			pyr, err := f.QueryTransform(p, a, b, n)
			if err != nil {
				t.Fatal(err)
			}
			rebuilt := map[int]float64{}
			for j, det := range bands.Details {
				off := n >> (j + 1)
				for k, v := range det {
					rebuilt[off+k] += v
				}
			}
			last := bands.Approxes[len(bands.Approxes)-1]
			for k, v := range last {
				if k != 0 {
					t.Fatalf("final approx has key %d", k)
				}
				rebuilt[0] += v
			}
			keys := map[int]struct{}{}
			for k := range rebuilt {
				keys[k] = struct{}{}
			}
			for k := range pyr {
				keys[k] = struct{}{}
			}
			for k := range keys {
				if math.Abs(rebuilt[k]-pyr[k]) > 1e-7*(1+math.Abs(pyr[k])) {
					t.Fatalf("%s trial %d: position %d: bands %g pyramid %g",
						f.Name, trial, k, rebuilt[k], pyr[k])
				}
			}
		}
	}
}

func TestQueryLevelBandsApproxMatchesCascade(t *testing.T) {
	// Approxes[j] must equal the dense cascade's approximation after j+1
	// steps.
	n := 32
	p := randomPoly(rand.New(rand.NewSource(523)), 1)
	a, b := 5, 27
	bands, err := Db4.QueryLevelBands(p, a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	s := make([]float64, n)
	for x := a; x <= b; x++ {
		s[x] = p.EvalInt(x)
	}
	buf := make([]float64, n)
	for j, m := 0, n; m >= 2; j, m = j+1, m/2 {
		Db4.AnalyzeLevel(s[:m], buf[:m/2], buf[m/2:m])
		copy(s[:m], buf[:m])
		for k := 0; k < m/2; k++ {
			want := s[k]
			if math.Abs(bands.Approxes[j][k]-want) > 1e-7*(1+math.Abs(want)) {
				t.Fatalf("level %d approx[%d] = %g, want %g", j, k, bands.Approxes[j][k], want)
			}
		}
	}
}

func TestQueryLevelBandsErrors(t *testing.T) {
	if _, err := Db4.QueryLevelBands(randomPoly(rand.New(rand.NewSource(1)), 0), 0, 1, 6); err == nil {
		t.Error("non-pow2 should fail")
	}
	if _, err := Db4.QueryLevelBands(randomPoly(rand.New(rand.NewSource(1)), 0), 5, 2, 8); err == nil {
		t.Error("inverted range should fail")
	}
}

func randomPoly(rng *rand.Rand, deg int) poly.Poly {
	p := make(poly.Poly, deg+1)
	for i := range p {
		p[i] = rng.NormFloat64()
	}
	p[deg] += 2
	return p
}
