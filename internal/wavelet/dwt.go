package wavelet

import "fmt"

// AnalyzeLevel applies one periodic analysis step to the signal s (whose
// length must be even), writing the scaling coefficients to a and the detail
// coefficients to d, each of length len(s)/2:
//
//	a[k] = Σ_n H[n] · s[(2k+n) mod M]
//	d[k] = Σ_n G[n] · s[(2k+n) mod M]
func (f *Filter) AnalyzeLevel(s, a, d []float64) {
	m := len(s)
	if m%2 != 0 {
		panic(fmt.Sprintf("wavelet: AnalyzeLevel on odd length %d", m))
	}
	if len(a) != m/2 || len(d) != m/2 {
		panic("wavelet: AnalyzeLevel output length mismatch")
	}
	L := f.Len()
	for k := 0; k < m/2; k++ {
		var av, dv float64
		base := 2 * k
		if base+L <= m {
			// Fast path: no wraparound.
			for n := 0; n < L; n++ {
				v := s[base+n]
				av += f.H[n] * v
				dv += f.G[n] * v
			}
		} else {
			for n := 0; n < L; n++ {
				v := s[(base+n)%m]
				av += f.H[n] * v
				dv += f.G[n] * v
			}
		}
		a[k] = av
		d[k] = dv
	}
}

// SynthesizeLevel inverts AnalyzeLevel: given scaling coefficients a and
// detail coefficients d of equal length, it reconstructs the signal s of
// length 2·len(a). For an orthonormal filter synthesis is the transpose of
// analysis:
//
//	s[x] = Σ_k ( H[x-2k mod M]·a[k] + G[x-2k mod M]·d[k] )
func (f *Filter) SynthesizeLevel(a, d, s []float64) {
	half := len(a)
	if len(d) != half {
		panic("wavelet: SynthesizeLevel band length mismatch")
	}
	m := 2 * half
	if len(s) != m {
		panic("wavelet: SynthesizeLevel output length mismatch")
	}
	for x := range s {
		s[x] = 0
	}
	L := f.Len()
	for k := 0; k < half; k++ {
		base := 2 * k
		if base+L <= m {
			for n := 0; n < L; n++ {
				s[base+n] += f.H[n]*a[k] + f.G[n]*d[k]
			}
		} else {
			for n := 0; n < L; n++ {
				s[(base+n)%m] += f.H[n]*a[k] + f.G[n]*d[k]
			}
		}
	}
}

// Forward computes the full multi-level periodic DWT of s in place, leaving
// the coefficients in the canonical pyramid layout. len(s) must be a power
// of two.
func (f *Filter) Forward(s []float64) {
	n := len(s)
	if !IsPow2(n) {
		panic(fmt.Sprintf("wavelet: Forward on non-power-of-two length %d", n))
	}
	if n == 1 {
		return
	}
	buf := make([]float64, n)
	f.forwardWithBuf(s, buf)
}

// forwardWithBuf is Forward with a caller-provided scratch buffer of
// len(s) capacity, for allocation-free inner loops.
func (f *Filter) forwardWithBuf(s, buf []float64) {
	for m := len(s); m >= 2; m /= 2 {
		a, d := buf[:m/2], buf[m/2:m]
		f.AnalyzeLevel(s[:m], a, d)
		copy(s[:m], buf[:m])
	}
}

// Inverse computes the full multi-level periodic inverse DWT of the pyramid
// layout in s, in place.
func (f *Filter) Inverse(s []float64) {
	n := len(s)
	if !IsPow2(n) {
		panic(fmt.Sprintf("wavelet: Inverse on non-power-of-two length %d", n))
	}
	if n == 1 {
		return
	}
	buf := make([]float64, n)
	for m := 2; m <= n; m *= 2 {
		f.SynthesizeLevel(s[:m/2], s[m/2:m], buf[:m])
		copy(s[:m], buf[:m])
	}
}

// ForwardCopy returns the DWT of s without modifying it.
func (f *Filter) ForwardCopy(s []float64) []float64 {
	out := make([]float64, len(s))
	copy(out, s)
	f.Forward(out)
	return out
}

// InverseCopy returns the inverse DWT of s without modifying it.
func (f *Filter) InverseCopy(s []float64) []float64 {
	out := make([]float64, len(s))
	copy(out, s)
	f.Inverse(out)
	return out
}

// DetailBand returns the half-open position interval [lo, hi) that the
// level-j detail band occupies in the canonical layout of a length-n
// transform. Level 1 is the finest band. The coarsest scaling coefficient
// lives at position 0 and is not part of any detail band.
func DetailBand(n, level int) (lo, hi int) {
	j := Log2(n)
	if level < 1 || level > j {
		panic(fmt.Sprintf("wavelet: level %d out of range for n=%d", level, n))
	}
	return n >> level, n >> (level - 1)
}

// PositionLevel returns the detail level of the given layout position for a
// length-n transform, with 0 denoting the coarsest scaling coefficient at
// position 0.
func PositionLevel(n, pos int) int {
	if pos < 0 || pos >= n {
		panic(fmt.Sprintf("wavelet: position %d out of range for n=%d", pos, n))
	}
	if pos == 0 {
		return 0
	}
	floorLog := 0
	for p := pos; p > 1; p /= 2 {
		floorLog++
	}
	return Log2(n) - floorLog
}
