package wavelet

import (
	"math"
	"math/rand"
	"testing"
)

func TestForwardInverseNDRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	shapes := [][]int{{8}, {4, 8}, {8, 8, 4}, {2, 4, 2, 8}, {1, 8}, {16, 1, 4}}
	for _, f := range []*Filter{Haar, Db4, Db6} {
		for _, dims := range shapes {
			total, err := CheckDims(dims)
			if err != nil {
				t.Fatal(err)
			}
			data := randSignal(rng, total)
			orig := append([]float64(nil), data...)
			if err := f.ForwardND(data, dims); err != nil {
				t.Fatal(err)
			}
			if err := f.InverseND(data, dims); err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(data, orig); d > 1e-9 {
				t.Errorf("%s dims=%v: roundtrip error %g", f.Name, dims, d)
			}
		}
	}
}

func TestParsevalND(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	dims := []int{8, 16, 4}
	total := 8 * 16 * 4
	for _, f := range []*Filter{Haar, Db4} {
		a := randSignal(rng, total)
		b := randSignal(rng, total)
		want := dot(a, b)
		ta := append([]float64(nil), a...)
		tb := append([]float64(nil), b...)
		if err := f.ForwardND(ta, dims); err != nil {
			t.Fatal(err)
		}
		if err := f.ForwardND(tb, dims); err != nil {
			t.Fatal(err)
		}
		got := dot(ta, tb)
		if math.Abs(want-got) > 1e-8*(1+math.Abs(want)) {
			t.Errorf("%s: inner product %g vs %g", f.Name, want, got)
		}
	}
}

func TestSeparability(t *testing.T) {
	// The ND transform of an outer product equals the outer product of 1-D
	// transforms — the identity the query rewriter depends on.
	rng := rand.New(rand.NewSource(41))
	n0, n1 := 16, 8
	u := randSignal(rng, n0)
	v := randSignal(rng, n1)
	data := make([]float64, n0*n1)
	for i := 0; i < n0; i++ {
		for j := 0; j < n1; j++ {
			data[i*n1+j] = u[i] * v[j]
		}
	}
	for _, f := range []*Filter{Haar, Db4, Db8} {
		got := append([]float64(nil), data...)
		if err := f.ForwardND(got, []int{n0, n1}); err != nil {
			t.Fatal(err)
		}
		tu := f.ForwardCopy(u)
		tv := f.ForwardCopy(v)
		for i := 0; i < n0; i++ {
			for j := 0; j < n1; j++ {
				want := tu[i] * tv[j]
				if math.Abs(got[i*n1+j]-want) > 1e-9 {
					t.Fatalf("%s: coefficient (%d,%d) = %g, want %g", f.Name, i, j, got[i*n1+j], want)
				}
			}
		}
	}
}

func TestSeparability3D(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	dims := []int{4, 8, 4}
	u := randSignal(rng, dims[0])
	v := randSignal(rng, dims[1])
	w := randSignal(rng, dims[2])
	data := make([]float64, dims[0]*dims[1]*dims[2])
	for i := 0; i < dims[0]; i++ {
		for j := 0; j < dims[1]; j++ {
			for k := 0; k < dims[2]; k++ {
				data[FlatIndex([]int{i, j, k}, dims)] = u[i] * v[j] * w[k]
			}
		}
	}
	f := Db4
	if err := f.ForwardND(data, dims); err != nil {
		t.Fatal(err)
	}
	tu, tv, tw := f.ForwardCopy(u), f.ForwardCopy(v), f.ForwardCopy(w)
	for i := 0; i < dims[0]; i++ {
		for j := 0; j < dims[1]; j++ {
			for k := 0; k < dims[2]; k++ {
				want := tu[i] * tv[j] * tw[k]
				got := data[FlatIndex([]int{i, j, k}, dims)]
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("coefficient (%d,%d,%d) = %g, want %g", i, j, k, got, want)
				}
			}
		}
	}
}

func TestCheckDims(t *testing.T) {
	if _, err := CheckDims(nil); err == nil {
		t.Error("empty dims should fail")
	}
	if _, err := CheckDims([]int{4, 3}); err == nil {
		t.Error("non-pow2 dim should fail")
	}
	total, err := CheckDims([]int{4, 8, 2})
	if err != nil || total != 64 {
		t.Errorf("CheckDims = %d, %v", total, err)
	}
}

func TestTransformNDLengthMismatch(t *testing.T) {
	if err := Haar.ForwardND(make([]float64, 5), []int{4, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestFlatIndexUnflattenRoundTrip(t *testing.T) {
	dims := []int{3, 4, 5}
	coords := make([]int, 3)
	for idx := 0; idx < 60; idx++ {
		Unflatten(idx, dims, coords)
		if got := FlatIndex(coords, dims); got != idx {
			t.Fatalf("roundtrip %d -> %v -> %d", idx, coords, got)
		}
	}
}

func TestFlatIndexPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FlatIndex([]int{4}, []int{4})
}

func BenchmarkForwardND(b *testing.B) {
	rng := rand.New(rand.NewSource(47))
	dims := []int{64, 64, 16}
	data := randSignal(rng, 64*64*16)
	work := make([]float64, len(data))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, data)
		if err := Db4.ForwardND(work, dims); err != nil {
			b.Fatal(err)
		}
	}
}
