package wavelet

import (
	"fmt"
	"math"
)

// ForwardNDSparse computes the standard-decomposition transform of a sparse
// array without ever materializing the dense domain: the input is a map from
// row-major flat index to value, and the result is the sparse map of nonzero
// transform coefficients in the same canonical layout ForwardND produces.
//
// The cost is proportional to the number of nonzeros times the fill-in,
// which compounds per dimension to roughly (L·log n)^d in the worst case.
// Choose accordingly: with Haar ((log n)^d fill-in) the sparse path turns
// billion-cell domains tractable for record counts in the millions, while
// long filters in high dimension can generate more intermediate nonzeros
// than the dense transform touches cells — prefer ForwardND when the dense
// array fits in memory and the filter is long.
func (f *Filter) ForwardNDSparse(cells map[int]float64, dims []int) (map[int]float64, error) {
	total, err := CheckDims(dims)
	if err != nil {
		return nil, err
	}
	for k := range cells {
		if k < 0 || k >= total {
			return nil, fmt.Errorf("wavelet: sparse key %d outside domain of %d cells", k, total)
		}
	}
	d := len(dims)
	strides := make([]int, d)
	strides[d-1] = 1
	for i := d - 2; i >= 0; i-- {
		strides[i] = strides[i+1] * dims[i+1]
	}
	cur := make(map[int]float64, len(cells))
	for k, v := range cells {
		if v != 0 {
			cur[k] = v
		}
	}
	for axis := 0; axis < d; axis++ {
		n := dims[axis]
		if n == 1 {
			continue
		}
		stride := strides[axis]
		// Group nonzeros by line: lineBase = key - coord*stride.
		lines := make(map[int]map[int]float64)
		for k, v := range cur {
			coord := (k / stride) % n
			base := k - coord*stride
			line, ok := lines[base]
			if !ok {
				line = make(map[int]float64)
				lines[base] = line
			}
			line[coord] = v
		}
		next := make(map[int]float64, len(cur))
		for base, line := range lines {
			f.forwardSparse1D(line, n)
			for pos, v := range line {
				if v != 0 {
					next[base+pos*stride] = v
				}
			}
		}
		cur = next
	}
	return cur, nil
}

// forwardSparse1D applies the full 1-D cascade to a sparse signal in place
// (map from position to value), producing the canonical pyramid layout.
// Values whose magnitude falls below a tiny relative threshold are dropped
// to bound fill-in from exact cancellations.
func (f *Filter) forwardSparse1D(s map[int]float64, n int) {
	L := f.Len()
	var scale float64
	for _, v := range s {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		for k := range s {
			delete(s, k)
		}
		return
	}
	drop := 1e-14 * scale
	// Current approximation band, local positions.
	approx := make(map[int]float64, len(s))
	for k, v := range s {
		approx[k] = v
		delete(s, k)
	}
	for m := n; m >= 2; m /= 2 {
		m2 := m / 2
		nextA := make(map[int]float64, len(approx))
		detail := make(map[int]float64, len(approx))
		for k, v := range approx {
			// s[k] feeds outputs j with 2j+t = k (mod m) for tap t.
			for t := 0; t < L; t++ {
				idx := k - t
				if idx%2 != 0 {
					continue
				}
				j := mod(idx/2, m2)
				nextA[j] += f.H[t] * v
				detail[j] += f.G[t] * v
			}
		}
		for j, v := range detail {
			if math.Abs(v) > drop {
				s[m2+j] += v
			}
		}
		for j, v := range nextA {
			if math.Abs(v) <= drop {
				delete(nextA, j)
			}
		}
		approx = nextA
	}
	if v, ok := approx[0]; ok && math.Abs(v) > drop {
		s[0] = v
	}
}
