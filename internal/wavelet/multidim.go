package wavelet

import "fmt"

// The multi-dimensional transform is the "standard decomposition": the full
// 1-D multi-level transform is applied along every axis in turn. Under this
// decomposition the transform of a separable function factors into the
// tensor product of 1-D transforms — the property the query rewriter relies
// on: the coefficients of p(x_0)·χ[a_0,b_0] ⊗ … ⊗ p(x_{d-1})·χ[a_{d-1},b_{d-1}]
// are exactly the products of the per-dimension 1-D coefficients.

// CheckDims validates that every dimension size is a power of two and
// returns the total cell count.
func CheckDims(dims []int) (int, error) {
	if len(dims) == 0 {
		return 0, fmt.Errorf("wavelet: empty dimension list")
	}
	total := 1
	for i, d := range dims {
		if !IsPow2(d) {
			return 0, fmt.Errorf("wavelet: dimension %d has size %d, not a power of two", i, d)
		}
		if total > (1<<40)/d {
			return 0, fmt.Errorf("wavelet: domain too large")
		}
		total *= d
	}
	return total, nil
}

// ForwardND applies the full 1-D transform along every axis of the row-major
// array data with the given dimension sizes, in place.
func (f *Filter) ForwardND(data []float64, dims []int) error {
	return f.transformND(data, dims, true)
}

// InverseND inverts ForwardND in place.
func (f *Filter) InverseND(data []float64, dims []int) error {
	return f.transformND(data, dims, false)
}

func (f *Filter) transformND(data []float64, dims []int, forward bool) error {
	total, err := CheckDims(dims)
	if err != nil {
		return err
	}
	if len(data) != total {
		return fmt.Errorf("wavelet: data length %d does not match dims (want %d)", len(data), total)
	}
	// Row-major strides: stride of axis i is the product of sizes of axes > i.
	d := len(dims)
	strides := make([]int, d)
	strides[d-1] = 1
	for i := d - 2; i >= 0; i-- {
		strides[i] = strides[i+1] * dims[i+1]
	}
	maxDim := 0
	for _, n := range dims {
		if n > maxDim {
			maxDim = n
		}
	}
	line := make([]float64, maxDim)
	buf := make([]float64, maxDim)

	for axis := 0; axis < d; axis++ {
		n := dims[axis]
		if n == 1 {
			continue
		}
		stride := strides[axis]
		// Iterate over every 1-D line along this axis. The lines start at
		// offsets base where the axis coordinate is zero.
		outerCount := total / n
		for lineIdx := 0; lineIdx < outerCount; lineIdx++ {
			// Map lineIdx to a base offset skipping the axis coordinate.
			base := lineBase(lineIdx, axis, dims, strides)
			// Gather.
			for k := 0; k < n; k++ {
				line[k] = data[base+k*stride]
			}
			if forward {
				f.forwardWithBuf(line[:n], buf[:n])
			} else {
				lv := line[:n]
				for m := 2; m <= n; m *= 2 {
					f.SynthesizeLevel(lv[:m/2], lv[m/2:m], buf[:m])
					copy(lv[:m], buf[:m])
				}
			}
			// Scatter.
			for k := 0; k < n; k++ {
				data[base+k*stride] = line[k]
			}
		}
	}
	return nil
}

// lineBase returns the flat offset of the first element of the lineIdx-th
// line along the given axis.
func lineBase(lineIdx, axis int, dims, strides []int) int {
	base := 0
	// Decompose lineIdx over all axes except `axis`, most significant first.
	for i := 0; i < len(dims); i++ {
		if i == axis {
			continue
		}
		// Count cells in the remaining (non-axis) dimensions after i.
		rem := 1
		for j := i + 1; j < len(dims); j++ {
			if j == axis {
				continue
			}
			rem *= dims[j]
		}
		coord := lineIdx / rem
		lineIdx %= rem
		base += coord * strides[i]
	}
	return base
}

// FlatIndex converts multi-dimensional coordinates to a row-major flat index.
func FlatIndex(coords, dims []int) int {
	idx := 0
	for i, c := range coords {
		if c < 0 || c >= dims[i] {
			panic(fmt.Sprintf("wavelet: coordinate %d out of range [0,%d)", c, dims[i]))
		}
		idx = idx*dims[i] + c
	}
	return idx
}

// Unflatten converts a row-major flat index back to coordinates, filling the
// provided slice (which must have len(dims) entries).
func Unflatten(idx int, dims, coords []int) {
	for i := len(dims) - 1; i >= 0; i-- {
		coords[i] = idx % dims[i]
		idx /= dims[i]
	}
}
