package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSignal(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func TestRoundTripAllFiltersAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range Filters {
		for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
			s := randSignal(rng, n)
			orig := append([]float64(nil), s...)
			f.Forward(s)
			f.Inverse(s)
			if d := maxAbsDiff(s, orig); d > 1e-9 {
				t.Errorf("%s n=%d: roundtrip error %g", f.Name, n, d)
			}
		}
	}
}

func TestParsevalInnerProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, f := range Filters {
		for trial := 0; trial < 20; trial++ {
			n := 1 << (2 + rng.Intn(7))
			a := randSignal(rng, n)
			b := randSignal(rng, n)
			want := dot(a, b)
			got := dot(f.ForwardCopy(a), f.ForwardCopy(b))
			if math.Abs(want-got) > 1e-8*(1+math.Abs(want)) {
				t.Errorf("%s n=%d: ⟨a,b⟩=%g but ⟨â,b̂⟩=%g", f.Name, n, want, got)
			}
		}
	}
}

func TestHaarKnownTransform(t *testing.T) {
	// Haar of [1,1,1,1] is all energy in the scaling coefficient: [2,0,0,0].
	s := []float64{1, 1, 1, 1}
	Haar.Forward(s)
	want := []float64{2, 0, 0, 0}
	if d := maxAbsDiff(s, want); d > 1e-12 {
		t.Fatalf("Haar([1,1,1,1]) = %v", s)
	}
	// Haar of [1,-1,0,0]: d_1[0] = (1-(-1))/√2 = √2 at position 2.
	s = []float64{1, -1, 0, 0}
	Haar.Forward(s)
	if math.Abs(s[2]-math.Sqrt2) > 1e-12 {
		t.Fatalf("Haar([1,-1,0,0]) = %v", s)
	}
}

func TestConstantSignalOnlyScalingCoefficient(t *testing.T) {
	// Orthonormal filters with Σh=√2 map constants to a single coarse
	// coefficient (periodic boundary ⇒ no edge effects for constants).
	for _, f := range Filters {
		n := 64
		s := make([]float64, n)
		for i := range s {
			s[i] = 3.5
		}
		f.Forward(s)
		if math.Abs(s[0]-3.5*math.Sqrt(float64(n))) > 1e-9 {
			t.Errorf("%s: scaling coefficient %g", f.Name, s[0])
		}
		for i := 1; i < n; i++ {
			if math.Abs(s[i]) > 1e-9 {
				t.Errorf("%s: detail %d = %g, want 0", f.Name, i, s[i])
			}
		}
	}
}

func TestAnalyzeSynthesizeLevelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, f := range Filters {
		for _, n := range []int{2, 4, 16, 128} {
			s := randSignal(rng, n)
			a := make([]float64, n/2)
			d := make([]float64, n/2)
			f.AnalyzeLevel(s, a, d)
			back := make([]float64, n)
			f.SynthesizeLevel(a, d, back)
			if diff := maxAbsDiff(s, back); diff > 1e-10 {
				t.Errorf("%s n=%d: level roundtrip error %g", f.Name, n, diff)
			}
		}
	}
}

func TestAnalyzeLevelPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Haar.AnalyzeLevel(make([]float64, 3), make([]float64, 1), make([]float64, 1)) },
		func() { Haar.AnalyzeLevel(make([]float64, 4), make([]float64, 1), make([]float64, 2)) },
		func() { Haar.SynthesizeLevel(make([]float64, 2), make([]float64, 1), make([]float64, 4)) },
		func() { Haar.SynthesizeLevel(make([]float64, 2), make([]float64, 2), make([]float64, 3)) },
		func() { Haar.Forward(make([]float64, 3)) },
		func() { Haar.Inverse(make([]float64, 5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDetailBand(t *testing.T) {
	n := 16
	cases := []struct{ level, lo, hi int }{
		{1, 8, 16}, {2, 4, 8}, {3, 2, 4}, {4, 1, 2},
	}
	for _, c := range cases {
		lo, hi := DetailBand(n, c.level)
		if lo != c.lo || hi != c.hi {
			t.Errorf("DetailBand(16,%d) = [%d,%d), want [%d,%d)", c.level, lo, hi, c.lo, c.hi)
		}
	}
}

func TestPositionLevel(t *testing.T) {
	n := 16
	want := map[int]int{0: 0, 1: 4, 2: 3, 3: 3, 4: 2, 7: 2, 8: 1, 15: 1}
	for pos, lvl := range want {
		if got := PositionLevel(n, pos); got != lvl {
			t.Errorf("PositionLevel(16,%d) = %d, want %d", pos, got, lvl)
		}
	}
	// Consistency with DetailBand.
	for level := 1; level <= 4; level++ {
		lo, hi := DetailBand(n, level)
		for pos := lo; pos < hi; pos++ {
			if got := PositionLevel(n, pos); got != level {
				t.Errorf("pos %d: level %d, want %d", pos, got, level)
			}
		}
	}
}

func TestQuickParsevalNorm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(8))
		s := randSignal(rng, n)
		want := dot(s, s)
		fl := Filters[rng.Intn(len(Filters))]
		tr := fl.ForwardCopy(s)
		got := dot(tr, tr)
		return math.Abs(want-got) < 1e-8*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickLinearity(t *testing.T) {
	f := func(seed int64, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			return true
		}
		alpha = math.Mod(alpha, 100)
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(6))
		a := randSignal(rng, n)
		b := randSignal(rng, n)
		fl := Filters[rng.Intn(len(Filters))]
		combo := make([]float64, n)
		for i := range combo {
			combo[i] = a[i] + alpha*b[i]
		}
		ta, tb, tc := fl.ForwardCopy(a), fl.ForwardCopy(b), fl.ForwardCopy(combo)
		for i := range tc {
			if math.Abs(tc[i]-(ta[i]+alpha*tb[i])) > 1e-8*(1+math.Abs(tc[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkForward1D(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	s := randSignal(rng, 4096)
	work := make([]float64, len(s))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, s)
		Db4.Forward(work)
	}
}
