package wavelet

import (
	"math"
	"math/rand"
	"testing"
)

func TestForwardNDSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for _, f := range []*Filter{Haar, Db4, Db6} {
		for _, dims := range [][]int{{16}, {8, 8}, {8, 4, 8}, {4, 4, 4, 4}} {
			total := 1
			for _, n := range dims {
				total *= n
			}
			dense := make([]float64, total)
			sparse := make(map[int]float64)
			nnz := 1 + rng.Intn(total/4)
			for i := 0; i < nnz; i++ {
				k := rng.Intn(total)
				v := rng.NormFloat64()
				dense[k] += v
				sparse[k] += v
			}
			want := append([]float64(nil), dense...)
			if err := f.ForwardND(want, dims); err != nil {
				t.Fatal(err)
			}
			got, err := f.ForwardNDSparse(sparse, dims)
			if err != nil {
				t.Fatal(err)
			}
			for k, w := range want {
				if math.Abs(got[k]-w) > 1e-8*(1+math.Abs(w)) {
					t.Fatalf("%s dims=%v: coefficient %d: sparse %g dense %g",
						f.Name, dims, k, got[k], w)
				}
			}
			// No spurious keys.
			for k := range got {
				if k < 0 || k >= total {
					t.Fatalf("spurious key %d", k)
				}
			}
		}
	}
}

func TestForwardNDSparseSingleTupleMatchesImpulse(t *testing.T) {
	dims := []int{16, 8}
	cells := map[int]float64{5*8 + 3: 1}
	got, err := Db4.ForwardNDSparse(cells, dims)
	if err != nil {
		t.Fatal(err)
	}
	// Tensor of per-dim impulse transforms.
	ix, err := Db4.ImpulseTransform(5, 16)
	if err != nil {
		t.Fatal(err)
	}
	iy, err := Db4.ImpulseTransform(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	for kx, vx := range ix {
		for ky, vy := range iy {
			want := vx * vy
			if math.Abs(got[kx*8+ky]-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("coefficient (%d,%d): %g want %g", kx, ky, got[kx*8+ky], want)
			}
		}
	}
}

func TestForwardNDSparseEmptyAndErrors(t *testing.T) {
	got, err := Haar.ForwardNDSparse(map[int]float64{}, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty input produced %d coefficients", len(got))
	}
	if _, err := Haar.ForwardNDSparse(map[int]float64{99: 1}, []int{8}); err == nil {
		t.Error("out-of-domain key should fail")
	}
	if _, err := Haar.ForwardNDSparse(nil, []int{7}); err == nil {
		t.Error("non-pow2 dims should fail")
	}
	// Zero values are ignored.
	got, err = Haar.ForwardNDSparse(map[int]float64{3: 0}, []int{8})
	if err != nil || len(got) != 0 {
		t.Fatalf("zero value handling wrong: %v %v", got, err)
	}
}

func TestForwardNDSparseFillInBounded(t *testing.T) {
	// A single tuple in a large 3-D domain must produce O((L·log n)^d)
	// coefficients, far below the domain size.
	dims := []int{64, 64, 64}
	got, err := Db4.ForwardNDSparse(map[int]float64{12345: 1}, dims)
	if err != nil {
		t.Fatal(err)
	}
	bound := 1
	for range dims {
		bound *= 4 * 7 // L + slack per level × log2(64)=6 levels + 1
	}
	if len(got) > bound {
		t.Fatalf("fill-in %d exceeds bound %d", len(got), bound)
	}
	if len(got) < 10 {
		t.Fatalf("suspiciously few coefficients: %d", len(got))
	}
}

func BenchmarkForwardNDSparseVsDense(b *testing.B) {
	dims := []int{64, 64, 16}
	total := 64 * 64 * 16
	rng := rand.New(rand.NewSource(607))
	sparse := make(map[int]float64)
	for i := 0; i < 500; i++ {
		sparse[rng.Intn(total)] += 1
	}
	b.Run("sparse-500nnz", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cp := make(map[int]float64, len(sparse))
			for k, v := range sparse {
				cp[k] = v
			}
			if _, err := Db4.ForwardNDSparse(cp, dims); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		dense := make([]float64, total)
		for k, v := range sparse {
			dense[k] = v
		}
		work := make([]float64, total)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(work, dense)
			if err := Db4.ForwardND(work, dims); err != nil {
				b.Fatal(err)
			}
		}
	})
}
