package wavelet

import "fmt"

// The nonstandard decomposition interleaves dimensions: at every level one
// analysis step is applied along *each* axis of the current approximation
// hypercube, the 2^d−1 mixed blocks are emitted, and the recursion continues
// on the all-approximation corner. It is the classic alternative to the
// standard (dimension-by-dimension) decomposition this package uses
// elsewhere, and the basis most wavelet *data-compression* work builds on.
//
// For range-sum *query* vectors the nonstandard basis is a poor fit — a
// d-dimensional range indicator has O(perimeter) nonzero nonstandard
// coefficients versus O(polylog) standard ones — which is precisely why
// ProPolyne and this paper use the standard form. The implementation here
// exists to make that trade-off measurable (see the linstrat ablation).
//
// Layout: in place, nested corners. After level 1, the approximation block
// occupies [0, N/2) in every axis and the mixed blocks the complementary
// index ranges; the next level subdivides the corner, and so on. Keys remain
// plain row-major flat indices, so the storage layer is unchanged.
//
// The implementation requires a hypercube domain (all dimensions equal), so
// every axis exhausts after the same number of levels.

// CheckHypercube validates dims for the nonstandard transform and returns
// the side length.
func CheckHypercube(dims []int) (int, error) {
	if _, err := CheckDims(dims); err != nil {
		return 0, err
	}
	n := dims[0]
	for _, d := range dims {
		if d != n {
			return 0, fmt.Errorf("wavelet: nonstandard decomposition requires a hypercube domain, got %v", dims)
		}
	}
	return n, nil
}

// ForwardNDNonstandard applies the nonstandard decomposition in place.
func (f *Filter) ForwardNDNonstandard(data []float64, dims []int) error {
	n, err := CheckHypercube(dims)
	if err != nil {
		return err
	}
	total := len(data)
	want := 1
	for range dims {
		want *= n
	}
	if total != want {
		return fmt.Errorf("wavelet: data length %d does not match dims (want %d)", total, want)
	}
	d := len(dims)
	strides := make([]int, d)
	strides[d-1] = 1
	for i := d - 2; i >= 0; i-- {
		strides[i] = strides[i+1] * dims[i+1]
	}
	line := make([]float64, n)
	buf := make([]float64, n)
	// At each level, one step along every axis within the current corner
	// block of side `side`.
	for side := n; side >= 2; side /= 2 {
		for axis := 0; axis < d; axis++ {
			forEachLineInCorner(dims, strides, side, axis, func(base, stride int) {
				for k := 0; k < side; k++ {
					line[k] = data[base+k*stride]
				}
				f.AnalyzeLevel(line[:side], buf[:side/2], buf[side/2:side])
				for k := 0; k < side; k++ {
					data[base+k*stride] = buf[k]
				}
			})
		}
	}
	return nil
}

// InverseNDNonstandard inverts ForwardNDNonstandard in place.
func (f *Filter) InverseNDNonstandard(data []float64, dims []int) error {
	n, err := CheckHypercube(dims)
	if err != nil {
		return err
	}
	total := len(data)
	want := 1
	for range dims {
		want *= n
	}
	if total != want {
		return fmt.Errorf("wavelet: data length %d does not match dims (want %d)", total, want)
	}
	d := len(dims)
	strides := make([]int, d)
	strides[d-1] = 1
	for i := d - 2; i >= 0; i-- {
		strides[i] = strides[i+1] * dims[i+1]
	}
	line := make([]float64, n)
	buf := make([]float64, n)
	for side := 2; side <= n; side *= 2 {
		for axis := d - 1; axis >= 0; axis-- {
			forEachLineInCorner(dims, strides, side, axis, func(base, stride int) {
				for k := 0; k < side; k++ {
					line[k] = data[base+k*stride]
				}
				f.SynthesizeLevel(line[:side/2], line[side/2:side], buf[:side])
				for k := 0; k < side; k++ {
					data[base+k*stride] = buf[k]
				}
			})
		}
	}
	return nil
}

// forEachLineInCorner visits every 1-D line of length `side` along `axis`
// inside the corner block [0,side)^d, calling fn with the line's base offset
// and stride.
func forEachLineInCorner(dims, strides []int, side, axis int, fn func(base, stride int)) {
	d := len(dims)
	// Iterate over all coordinate combinations of the non-axis dims in
	// [0, side).
	coords := make([]int, d)
	for {
		base := 0
		for i := 0; i < d; i++ {
			base += coords[i] * strides[i]
		}
		fn(base, strides[axis])
		// Odometer over non-axis dims.
		i := d - 1
		for i >= 0 {
			if i == axis {
				i--
				continue
			}
			coords[i]++
			if coords[i] < side {
				break
			}
			coords[i] = 0
			i--
		}
		if i < 0 {
			return
		}
	}
}
