// Package wavelet implements the orthonormal wavelet machinery the paper
// builds on: Daubechies filter banks, periodic discrete wavelet transforms in
// one and many dimensions, and the lazy sparse transform of polynomial
// range-sum query vectors.
//
// Conventions. All signal lengths are powers of two. The full 1-D transform
// of a length-N signal applies log2(N) analysis levels and stores the result
// in the canonical pyramid layout
//
//	[ a_J | d_J | d_{J-1} | … | d_1 ]
//
// where d_1 (the finest detail band, N/2 values) occupies positions
// [N/2, N), d_2 occupies [N/4, N/2), and so on down to the single coarsest
// scaling coefficient a_J at position 0. The transform is orthonormal, so it
// preserves inner products (Parseval): for any two signals f and g,
// ⟨f, g⟩ = ⟨f̂, ĝ⟩. That identity is what lets the engine evaluate a
// range-sum as a sparse dot product in the transform domain.
package wavelet

import (
	"fmt"
	"math"
)

// Filter is an orthonormal two-channel filter bank. H is the scaling
// (low-pass) filter; the wavelet (high-pass) filter G is derived from H by
// the quadrature-mirror relation G[n] = (-1)^n · H[L-1-n].
type Filter struct {
	// Name identifies the filter, following the paper's tap-count naming
	// ("Db4" is the 4-tap Daubechies filter with 2 vanishing moments).
	Name string
	// H holds the scaling filter taps. len(H) is even and Σ H = √2.
	H []float64
	// G holds the derived wavelet filter taps, same length as H.
	G []float64
}

// Len returns the filter length (number of taps).
func (f *Filter) Len() int { return len(f.H) }

// VanishingMoments returns the number of vanishing moments of the wavelet:
// the wavelet filter annihilates polynomial sequences of degree less than
// this. Daubechies filters of length L have L/2 vanishing moments.
func (f *Filter) VanishingMoments() int { return len(f.H) / 2 }

// SupportsDegree reports whether polynomial range-sums of the given maximum
// per-variable degree have sparse (poly-log) transforms under f, i.e. whether
// f has at least degree+1 vanishing moments. The paper's requirement is a
// filter of length at least 2δ+2 for degree δ.
func (f *Filter) SupportsDegree(degree int) bool {
	return f.VanishingMoments() >= degree+1
}

func (f *Filter) String() string { return f.Name }

// newFilter derives G from H and validates basic invariants.
func newFilter(name string, h []float64) *Filter {
	if len(h)%2 != 0 || len(h) == 0 {
		panic(fmt.Sprintf("wavelet: filter %s has odd length %d", name, len(h)))
	}
	g := make([]float64, len(h))
	for n := range h {
		g[n] = h[len(h)-1-n]
		if n%2 == 1 {
			g[n] = -g[n]
		}
	}
	return &Filter{Name: name, H: append([]float64(nil), h...), G: g}
}

// Daubechies scaling filters in natural (h0-first) order. Values are the
// standard published coefficients; the test suite verifies orthonormality
// (Σh=√2, Σ h[n]h[n+2m]=δ_m) and the vanishing-moment conditions to fifteen
// digits, so a transcription error cannot survive.
var (
	// Haar is the 2-tap Daubechies filter (1 vanishing moment). Exact for
	// COUNT queries (degree-0 polynomials).
	Haar = newFilter("Haar", []float64{
		0.7071067811865476, 0.7071067811865476,
	})

	// Db4 is the 4-tap Daubechies filter (2 vanishing moments), the filter
	// used throughout the paper's evaluation; handles degree ≤ 1.
	Db4 = newFilter("Db4", []float64{
		0.48296291314469025, 0.8365163037378079,
		0.22414386804185735, -0.12940952255092145,
	})

	// Db6 is the 6-tap Daubechies filter (3 vanishing moments); degree ≤ 2.
	Db6 = newFilter("Db6", []float64{
		0.3326705529509569, 0.8068915093133388, 0.4598775021193313,
		-0.13501102001039084, -0.08544127388224149, 0.035226291882100656,
	})

	// Db8 is the 8-tap Daubechies filter (4 vanishing moments); degree ≤ 3.
	Db8 = newFilter("Db8", []float64{
		0.23037781330885523, 0.7148465705525415, 0.6308807679295904,
		-0.02798376941698385, -0.18703481171888114, 0.030841381835986965,
		0.032883011666982945, -0.010597401784997278,
	})

	// Db10 is the 10-tap Daubechies filter (5 vanishing moments); degree ≤ 4.
	Db10 = newFilter("Db10", []float64{
		0.160102397974125, 0.6038292697974729, 0.7243085284385744,
		0.13842814590110342, -0.24229488706619015, -0.03224486958502952,
		0.07757149384006515, -0.006241490213011705, -0.012580751999015526,
		0.003335725285001549,
	})

	// Db12 is the 12-tap Daubechies filter (6 vanishing moments); degree ≤ 5.
	Db12 = newFilter("Db12", []float64{
		0.11154074335008017, 0.4946238903983854, 0.7511339080215775,
		0.3152503517092432, -0.22626469396516913, -0.12976686756709563,
		0.09750160558707936, 0.02752286553001629, -0.031582039318031156,
		0.000553842200993802, 0.004777257511010651, -0.001077301085308479,
	})
)

// Filters lists every built-in filter, shortest first.
var Filters = []*Filter{Haar, Db4, Db6, Db8, Db10, Db12}

// ForDegree returns the shortest built-in Daubechies filter whose wavelets
// annihilate polynomials of the given degree (filter length 2·degree+2, as in
// the paper), or an error if the degree exceeds the built-in set.
func ForDegree(degree int) (*Filter, error) {
	if degree < 0 {
		return nil, fmt.Errorf("wavelet: negative degree %d", degree)
	}
	for _, f := range Filters {
		if f.SupportsDegree(degree) {
			return f, nil
		}
	}
	return nil, fmt.Errorf("wavelet: no built-in filter supports degree %d (max %d)",
		degree, Filters[len(Filters)-1].VanishingMoments()-1)
}

// ByName returns the built-in filter with the given name.
func ByName(name string) (*Filter, error) {
	for _, f := range Filters {
		if f.Name == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("wavelet: unknown filter %q", name)
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Log2 returns log2(n) for a positive power of two n; it panics otherwise.
func Log2(n int) int {
	if !IsPow2(n) {
		panic(fmt.Sprintf("wavelet: %d is not a positive power of two", n))
	}
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// checkOrthonormal is used by tests; it returns the worst violation of the
// orthonormality conditions for f.
func (f *Filter) checkOrthonormal() float64 {
	worst := math.Abs(sum(f.H) - math.Sqrt2)
	L := f.Len()
	for m := 0; 2*m < L; m++ {
		var dot float64
		for n := 0; n+2*m < L; n++ {
			dot += f.H[n] * f.H[n+2*m]
		}
		want := 0.0
		if m == 0 {
			want = 1.0
		}
		if v := math.Abs(dot - want); v > worst {
			worst = v
		}
	}
	return worst
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
