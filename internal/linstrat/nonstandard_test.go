package linstrat

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/wavelet"
)

func hypercubeDist(t *testing.T) (*dataset.Schema, *dataset.Distribution) {
	t.Helper()
	schema := dataset.MustSchema([]string{"x", "y"}, []int{16, 16})
	return schema, dataset.Uniform(schema, 1500, 77)
}

func TestNonstandardStrategyCountsMatchDirect(t *testing.T) {
	schema, dist := hypercubeDist(t)
	for _, f := range []*wavelet.Filter{wavelet.Haar, wavelet.Db4} {
		s := NonstandardWavelet{Filter: f}
		stored, err := s.Precompute(dist)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(81))
		for trial := 0; trial < 15; trial++ {
			lo := []int{rng.Intn(16), rng.Intn(16)}
			hi := []int{lo[0] + rng.Intn(16-lo[0]), lo[1] + rng.Intn(16-lo[1])}
			r, err := query.NewRange(schema, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			q := query.Count(schema, r)
			vec, err := s.RewriteQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			got := vec.DotDense(stored)
			want := q.EvaluateDirect(dist)
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("%s %s: got %g want %g", s.Name(), r, got, want)
			}
		}
	}
}

func TestNonstandardStrategySumsMatchDirect(t *testing.T) {
	schema, dist := hypercubeDist(t)
	s := NonstandardWavelet{Filter: wavelet.Db4}
	stored, err := s.Precompute(dist)
	if err != nil {
		t.Fatal(err)
	}
	r, err := query.NewRange(schema, []int{3, 5}, []int{12, 14})
	if err != nil {
		t.Fatal(err)
	}
	for _, attr := range []string{"x", "y"} {
		q, err := query.Sum(schema, r, attr)
		if err != nil {
			t.Fatal(err)
		}
		vec, err := s.RewriteQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		got := vec.DotDense(stored)
		want := q.EvaluateDirect(dist)
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("sum(%s): got %g want %g", attr, got, want)
		}
	}
}

func TestNonstandardStrategy3D(t *testing.T) {
	schema := dataset.MustSchema([]string{"x", "y", "z"}, []int{8, 8, 8})
	dist := dataset.Uniform(schema, 1000, 5)
	s := NonstandardWavelet{Filter: wavelet.Haar}
	stored, err := s.Precompute(dist)
	if err != nil {
		t.Fatal(err)
	}
	r, err := query.NewRange(schema, []int{1, 2, 0}, []int{6, 7, 5})
	if err != nil {
		t.Fatal(err)
	}
	q := query.Count(schema, r)
	vec, err := s.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	got := vec.DotDense(stored)
	want := q.EvaluateDirect(dist)
	if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("got %g want %g", got, want)
	}
}

func TestNonstandardRejectsNonHypercube(t *testing.T) {
	schema := dataset.MustSchema([]string{"x", "y"}, []int{16, 8})
	s := NonstandardWavelet{Filter: wavelet.Haar}
	q := query.Count(schema, query.FullDomain(schema))
	if _, err := s.RewriteQuery(q); err == nil {
		t.Error("non-hypercube should fail")
	}
	dist := dataset.NewDistribution(schema)
	if _, err := s.Precompute(dist); err == nil {
		t.Error("non-hypercube precompute should fail")
	}
}

// The ablation claim: nonstandard rewritings of range queries are much
// denser than standard ones — O(perimeter) vs O(polylog) — which is why the
// paper uses the standard decomposition.
func TestNonstandardDenserThanStandard(t *testing.T) {
	// The gap is O(perimeter) vs O(log²): modest at N=64, decisive at
	// N=256 and growing.
	prevRatio := 0.0
	for _, n := range []int{64, 256} {
		schema := dataset.MustSchema([]string{"x", "y"}, []int{n, n})
		r, err := query.NewRange(schema, []int{n / 10, n / 8}, []int{n * 8 / 10, n * 7 / 8})
		if err != nil {
			t.Fatal(err)
		}
		q := query.Count(schema, r)
		std, err := (Wavelet{Filter: wavelet.Haar}).RewriteQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		non, err := (NonstandardWavelet{Filter: wavelet.Haar}).RewriteQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(len(non)) / float64(len(std))
		t.Logf("N=%d: standard %d vs nonstandard %d (%.1fx)", n, len(std), len(non), ratio)
		if ratio <= 1 {
			t.Fatalf("N=%d: nonstandard (%d) not denser than standard (%d)", n, len(non), len(std))
		}
		if ratio < prevRatio {
			t.Fatalf("density gap should grow with N: %.2f after %.2f", ratio, prevRatio)
		}
		prevRatio = ratio
	}
	if prevRatio < 2 {
		t.Fatalf("at N=256 the nonstandard rewriting should be ≥2x denser, got %.2fx", prevRatio)
	}
}

func TestNonstandardFullDomainCountIsSingleCoefficient(t *testing.T) {
	// χ over the whole hypercube has only the final scaling coefficient.
	schema := dataset.MustSchema([]string{"x", "y"}, []int{16, 16})
	q := query.Count(schema, query.FullDomain(schema))
	vec, err := (NonstandardWavelet{Filter: wavelet.Haar}).RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 1 {
		t.Fatalf("full-domain count has %d nonzeros, want 1", len(vec))
	}
	if math.Abs(vec[0]-16) > 1e-9 { // √(16·16) = 16
		t.Fatalf("scaling coefficient %g, want 16", vec[0])
	}
}
