// Package linstrat implements the paper's Section 1.2 generalization: a
// linear storage/evaluation strategy is any invertible linear transform of
// the data frequency distribution together with the matching rewriting of
// query vectors, so that a query answer is always the inner product of a
// (hopefully sparse) rewritten query with the stored representation.
// Batch-Biggest-B runs unchanged on any of them.
//
// Besides the wavelet strategy, the package provides prefix-sum
// precomputation (Ho et al., the paper's comparison point: "using
// prefix-sums ... 8192 precomputed values, ... only 512 with
// Batch-Biggest-B") and the identity strategy (no precomputation).
package linstrat

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/sparse"
	"repro/internal/wavelet"
)

// Strategy is a linear storage/evaluation strategy: Precompute transforms Δ
// into the stored array; RewriteQuery expresses a query as a sparse vector
// over that array with answer = ⟨rewritten, stored⟩.
type Strategy interface {
	Name() string
	Precompute(d *dataset.Distribution) ([]float64, error)
	RewriteQuery(q *query.Query) (sparse.Vector, error)
}

// Wavelet is the paper's primary strategy: store Δ̂ under an orthonormal
// filter, rewrite queries by the lazy sparse transform.
type Wavelet struct {
	Filter *wavelet.Filter
}

// Name implements Strategy.
func (w Wavelet) Name() string { return "wavelet-" + w.Filter.Name }

// Precompute implements Strategy.
func (w Wavelet) Precompute(d *dataset.Distribution) ([]float64, error) {
	return d.Transform(w.Filter)
}

// RewriteQuery implements Strategy.
func (w Wavelet) RewriteQuery(q *query.Query) (sparse.Vector, error) {
	return q.Coefficients(w.Filter)
}

// PrefixSum stores the d-dimensional prefix-sum array
// P[x] = Σ_{y ≤ x} Δ[y]. A COUNT over a hyper-rectangle rewrites to at most
// 2^d signed corner lookups (inclusion–exclusion). Queries of positive
// degree are not supported by plain prefix sums; RewriteQuery returns an
// error for them.
type PrefixSum struct{}

// Name implements Strategy.
func (PrefixSum) Name() string { return "prefix-sum" }

// Precompute implements Strategy.
func (PrefixSum) Precompute(d *dataset.Distribution) ([]float64, error) {
	dims := d.Schema.Sizes
	out := make([]float64, len(d.Cells))
	copy(out, d.Cells)
	// Running sum along each axis in turn.
	strides := make([]int, len(dims))
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	total := len(out)
	for axis := range dims {
		n := dims[axis]
		if n == 1 {
			continue
		}
		stride := strides[axis]
		lines := total / n
		for li := 0; li < lines; li++ {
			base := lineBase(li, axis, dims, strides)
			for k := 1; k < n; k++ {
				out[base+k*stride] += out[base+(k-1)*stride]
			}
		}
	}
	return out, nil
}

// lineBase mirrors the stride walk used by the wavelet package's ND
// transform: the flat offset of the li-th 1-D line along axis.
func lineBase(li, axis int, dims, strides []int) int {
	base := 0
	for i := 0; i < len(dims); i++ {
		if i == axis {
			continue
		}
		rem := 1
		for j := i + 1; j < len(dims); j++ {
			if j == axis {
				continue
			}
			rem *= dims[j]
		}
		coord := li / rem
		li %= rem
		base += coord * strides[i]
	}
	return base
}

// RewriteQuery implements Strategy.
func (PrefixSum) RewriteQuery(q *query.Query) (sparse.Vector, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.Degree() != 0 {
		return nil, fmt.Errorf("linstrat: prefix-sum strategy supports only COUNT (degree-0) queries, got degree %d", q.Degree())
	}
	var scale float64
	for _, t := range q.Terms {
		scale += t.Coeff
	}
	dims := q.Schema.Sizes
	out := sparse.New()
	d := len(dims)
	corner := make([]int, d)
	// Enumerate the 2^d corners: bit i selects hi_i (sign +) or lo_i − 1
	// (sign −, dropped when lo_i == 0).
	for mask := 0; mask < 1<<d; mask++ {
		sign := scale
		ok := true
		for i := 0; i < d; i++ {
			if mask&(1<<i) == 0 {
				corner[i] = q.Range.Hi[i]
			} else {
				if q.Range.Lo[i] == 0 {
					ok = false
					break
				}
				corner[i] = q.Range.Lo[i] - 1
				sign = -sign
			}
		}
		if !ok {
			continue
		}
		key := wavelet.FlatIndex(corner, dims)
		if v := out[key] + sign; v == 0 {
			delete(out, key)
		} else {
			out[key] = v
		}
	}
	return out, nil
}

// Identity stores Δ itself ("no precomputation"). Query rewriting is the
// query vector itself: every cell of the range box with its polynomial
// weight. Exact but dense — the strategy the paper's preprocessing is meant
// to beat; useful as a baseline and for tiny domains.
type Identity struct{}

// Name implements Strategy.
func (Identity) Name() string { return "identity" }

// Precompute implements Strategy.
func (Identity) Precompute(d *dataset.Distribution) ([]float64, error) {
	out := make([]float64, len(d.Cells))
	copy(out, d.Cells)
	return out, nil
}

// RewriteQuery implements Strategy.
func (Identity) RewriteQuery(q *query.Query) (sparse.Vector, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	dims := q.Schema.Sizes
	out := sparse.New()
	coords := append([]int(nil), q.Range.Lo...)
	for {
		var w float64
		for _, t := range q.Terms {
			term := t.Coeff
			for i, p := range t.Powers {
				for k := 0; k < p; k++ {
					term *= float64(coords[i])
				}
			}
			w += term
		}
		if w != 0 {
			out[wavelet.FlatIndex(coords, dims)] = w
		}
		i := len(coords) - 1
		for i >= 0 {
			coords[i]++
			if coords[i] <= q.Range.Hi[i] {
				break
			}
			coords[i] = q.Range.Lo[i]
			i--
		}
		if i < 0 {
			return out, nil
		}
	}
}

// BuildPlan rewrites every query in the batch under the strategy and merges
// the results into a core.Plan, making any linear strategy a drop-in
// substrate for Batch-Biggest-B.
func BuildPlan(s Strategy, batch query.Batch) (*core.Plan, error) {
	if err := batch.Validate(); err != nil {
		return nil, err
	}
	vectors := make([]sparse.Vector, len(batch))
	labels := make([]string, len(batch))
	for i, q := range batch {
		v, err := s.RewriteQuery(q)
		if err != nil {
			return nil, fmt.Errorf("linstrat: query %d under %s: %w", i, s.Name(), err)
		}
		vectors[i] = v
		labels[i] = q.Label
	}
	return core.NewPlan(vectors, labels)
}
