package linstrat

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/wavelet"
)

func testDist(t *testing.T) (*dataset.Schema, *dataset.Distribution) {
	t.Helper()
	schema := dataset.MustSchema([]string{"x", "y", "z"}, []int{8, 16, 4})
	return schema, dataset.Uniform(schema, 2000, 21)
}

func strategies() []Strategy {
	return []Strategy{Wavelet{Filter: wavelet.Haar}, Wavelet{Filter: wavelet.Db4}, PrefixSum{}, Identity{}}
}

// Every strategy must satisfy answer = ⟨rewritten query, stored array⟩ for
// COUNT queries on random ranges.
func TestStrategiesAgreeOnCounts(t *testing.T) {
	schema, dist := testDist(t)
	rng := rand.New(rand.NewSource(31))
	for _, s := range strategies() {
		stored, err := s.Precompute(dist)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for trial := 0; trial < 20; trial++ {
			lo := make([]int, 3)
			hi := make([]int, 3)
			for i, n := range schema.Sizes {
				lo[i] = rng.Intn(n)
				hi[i] = lo[i] + rng.Intn(n-lo[i])
			}
			r, err := query.NewRange(schema, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			q := query.Count(schema, r)
			vec, err := s.RewriteQuery(q)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			got := vec.DotDense(stored)
			want := q.EvaluateDirect(dist)
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("%s %s: got %g want %g", s.Name(), r, got, want)
			}
		}
	}
}

func TestPrefixSumCornerCount(t *testing.T) {
	schema, dist := testDist(t)
	stored, err := PrefixSum{}.Precompute(dist)
	if err != nil {
		t.Fatal(err)
	}
	// Interior range: exactly 2^3 corners.
	r, err := query.NewRange(schema, []int{2, 3, 1}, []int{5, 9, 2})
	if err != nil {
		t.Fatal(err)
	}
	vec, err := PrefixSum{}.RewriteQuery(query.Count(schema, r))
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 8 {
		t.Fatalf("interior range should need 8 corners, got %d", len(vec))
	}
	// Range anchored at the origin: a single corner.
	r0, err := query.NewRange(schema, []int{0, 0, 0}, []int{5, 9, 2})
	if err != nil {
		t.Fatal(err)
	}
	vec0, err := PrefixSum{}.RewriteQuery(query.Count(schema, r0))
	if err != nil {
		t.Fatal(err)
	}
	if len(vec0) != 1 {
		t.Fatalf("origin-anchored range should need 1 corner, got %d", len(vec0))
	}
	// The last cell of the prefix array holds the total count.
	if got := stored[len(stored)-1]; got != float64(dist.TupleCount) {
		t.Fatalf("total prefix %g != tuple count %d", got, dist.TupleCount)
	}
}

func TestPrefixSumRejectsPositiveDegree(t *testing.T) {
	schema, _ := testDist(t)
	q, err := query.Sum(schema, query.FullDomain(schema), "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (PrefixSum{}).RewriteQuery(q); err == nil {
		t.Error("degree-1 query should be rejected")
	}
}

func TestIdentityRewritingIsTheQueryVector(t *testing.T) {
	schema, _ := testDist(t)
	r, err := query.NewRange(schema, []int{1, 2, 0}, []int{2, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.Sum(schema, r, "y")
	if err != nil {
		t.Fatal(err)
	}
	vec, err := Identity{}.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	// Volume is 2·2·2 = 8 cells; cells with y-weight 0 are dropped — here y
	// ranges over {2,3} so none drop.
	if len(vec) != 8 {
		t.Fatalf("identity rewriting has %d cells, want 8", len(vec))
	}
	coords := []int{1, 2, 0}
	key := wavelet.FlatIndex(coords, schema.Sizes)
	if vec[key] != 2 {
		t.Fatalf("weight at %v = %g, want 2", coords, vec[key])
	}
}

func TestIdentitySumMatchesDirect(t *testing.T) {
	schema, dist := testDist(t)
	stored, err := Identity{}.Precompute(dist)
	if err != nil {
		t.Fatal(err)
	}
	r, err := query.NewRange(schema, []int{0, 4, 1}, []int{7, 11, 3})
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.Sum(schema, r, "x")
	if err != nil {
		t.Fatal(err)
	}
	vec, err := Identity{}.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	got := vec.DotDense(stored)
	want := q.EvaluateDirect(dist)
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("got %g want %g", got, want)
	}
}

func TestBuildPlanRunsEngineOnPrefixSums(t *testing.T) {
	// The Section 1.2 claim, executed: Batch-Biggest-B over the prefix-sum
	// strategy produces exact COUNT results and shares corner retrievals
	// across a partition batch.
	schema, dist := testDist(t)
	ranges, err := query.RandomPartition(schema, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	batch := query.CountBatch(schema, ranges)
	plan, err := BuildPlan(PrefixSum{}, batch)
	if err != nil {
		t.Fatal(err)
	}
	stored, err := PrefixSum{}.Precompute(dist)
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewArrayStore(stored)
	got := plan.Exact(store)
	want := batch.EvaluateDirect(dist)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("query %d: got %g want %g", i, got[i], want[i])
		}
	}
	// Partition cells share corners: distinct < total.
	if plan.DistinctCoefficients() >= plan.TotalQueryCoefficients() {
		t.Fatalf("corner sharing expected: distinct %d, total %d",
			plan.DistinctCoefficients(), plan.TotalQueryCoefficients())
	}
}

func TestBuildPlanPropagatesRewriteErrors(t *testing.T) {
	schema, _ := testDist(t)
	q, err := query.Sum(schema, query.FullDomain(schema), "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPlan(PrefixSum{}, query.Batch{q}); err == nil {
		t.Error("prefix-sum plan over degree-1 batch should fail")
	}
	if _, err := BuildPlan(Identity{}, query.Batch{}); err == nil {
		t.Error("empty batch should fail")
	}
}

func TestStrategyNames(t *testing.T) {
	want := map[string]bool{"wavelet-Haar": true, "wavelet-Db4": true, "prefix-sum": true, "identity": true}
	for _, s := range strategies() {
		if !want[s.Name()] {
			t.Errorf("unexpected name %q", s.Name())
		}
	}
}

func BenchmarkPrefixSumPrecompute(b *testing.B) {
	schema := dataset.MustSchema([]string{"x", "y", "z"}, []int{64, 64, 16})
	dist := dataset.Uniform(schema, 50000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (PrefixSum{}).Precompute(dist); err != nil {
			b.Fatal(err)
		}
	}
}
