package linstrat

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/poly"
	"repro/internal/query"
	"repro/internal/sparse"
	"repro/internal/wavelet"
)

// NonstandardWavelet stores Δ̂ under the nonstandard (simultaneous-
// dimension) decomposition and rewrites queries by assembling the tensor
// blocks from per-dimension level bands. It requires a hypercube domain.
//
// This strategy exists as a measured counterpoint: the nonstandard basis —
// the usual choice for wavelet *data compression* — gives range-sum query
// vectors O(perimeter)-size rewritings, versus the standard basis's
// O(polylog). BuildPlan over both strategies quantifies the gap (see the
// BenchmarkAblationDecomposition bench).
type NonstandardWavelet struct {
	Filter *wavelet.Filter
}

// Name implements Strategy.
func (s NonstandardWavelet) Name() string { return "nonstandard-" + s.Filter.Name }

// Precompute implements Strategy.
func (s NonstandardWavelet) Precompute(d *dataset.Distribution) ([]float64, error) {
	out := make([]float64, len(d.Cells))
	copy(out, d.Cells)
	if err := s.Filter.ForwardNDNonstandard(out, d.Schema.Sizes); err != nil {
		return nil, err
	}
	return out, nil
}

// RewriteQuery implements Strategy.
//
// For a separable term Π_i f_i(x_i), the nonstandard coefficient in the
// level-j block selected by the detail-dimension set T at position k is
// Π_{i∈T} d_i^{(j)}[k_i] · Π_{i∉T} a_i^{(j)}[k_i], where a^{(j)}, d^{(j)}
// are the per-dimension approximation/detail bands after j+1 cascade steps.
// The all-approximation block is emitted only at the final level (it is the
// overall scaling coefficient).
func (s NonstandardWavelet) RewriteQuery(q *query.Query) (sparse.Vector, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	dims := q.Schema.Sizes
	n, err := wavelet.CheckHypercube(dims)
	if err != nil {
		return nil, err
	}
	d := len(dims)
	out := sparse.New()
	if n == 1 {
		// Single-cell domain: the coefficient is the function value itself.
		var v float64
		for _, t := range q.Terms {
			v += t.Coeff // all coordinates are zero, powers contribute 0^p
			for _, p := range t.Powers {
				if p > 0 {
					v -= t.Coeff // 0^p = 0 cancels the term
					break
				}
			}
		}
		if v != 0 {
			out[0] = v
		}
		return out, nil
	}
	levels := wavelet.Log2(n)
	for _, t := range q.Terms {
		if t.Coeff == 0 {
			continue
		}
		bands := make([]*wavelet.LevelBands, d)
		for i := 0; i < d; i++ {
			b, err := s.Filter.QueryLevelBands(poly.Monomial(1, t.Powers[i]), q.Range.Lo[i], q.Range.Hi[i], n)
			if err != nil {
				return nil, fmt.Errorf("linstrat: dimension %d: %w", i, err)
			}
			if b.Levels() != levels {
				return nil, fmt.Errorf("linstrat: dimension %d produced %d levels, want %d", i, b.Levels(), levels)
			}
			bands[i] = b
		}
		for j := 0; j < levels; j++ {
			nj := n >> (j + 1) // local block side after this step
			// Globalized per-dim factor maps for this level.
			approx := make([]sparse.Vector, d)
			detail := make([]sparse.Vector, d)
			for i := 0; i < d; i++ {
				approx[i] = sparse.Vector(bands[i].Approxes[j])
				dm := sparse.New()
				for k, v := range bands[i].Details[j] {
					dm[k+nj] = v
				}
				detail[i] = dm
			}
			maxMask := 1 << d
			for mask := 0; mask < maxMask; mask++ {
				if mask == 0 && j != levels-1 {
					continue // all-approx corner recurses except at the end
				}
				factors := make([]sparse.Vector, d)
				for i := 0; i < d; i++ {
					if mask&(1<<i) != 0 {
						factors[i] = detail[i]
					} else {
						factors[i] = approx[i]
					}
				}
				block, err := sparse.TensorProductVector(factors, dims)
				if err != nil {
					return nil, err
				}
				out.AddScaled(block, t.Coeff)
			}
		}
	}
	return out, nil
}
