package dataset

import (
	"math"
	"testing"

	"repro/internal/wavelet"
)

func TestSparseDistributionMatchesDense(t *testing.T) {
	cfg := TemperatureConfig{
		Records: 3000,
		LatBins: 8, LonBins: 8, AltBins: 4, TimeBins: 8, TempBins: 8,
		Seed: 13,
	}
	dense, err := Temperature(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := TemperatureSparse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sp.TupleCount != dense.TupleCount {
		t.Fatalf("tuple counts differ: %d vs %d", sp.TupleCount, dense.TupleCount)
	}
	// Cell-for-cell identical data (same seed, shared generator).
	for idx, v := range dense.Cells {
		if got := sp.Cells[idx]; got != v && !(v == 0 && got == 0) {
			t.Fatalf("cell %d: sparse %g dense %g", idx, got, v)
		}
	}
	// Transforms agree.
	want, err := dense.Transform(wavelet.Db4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sp.TransformSparse(wavelet.Db4)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range want {
		if math.Abs(got[k]-w) > 1e-7*(1+math.Abs(w)) {
			t.Fatalf("coefficient %d: sparse %g dense %g", k, got[k], w)
		}
	}
}

func TestSparseDistributionBasics(t *testing.T) {
	schema := MustSchema([]string{"x", "y"}, []int{8, 8})
	d := NewSparseDistribution(schema)
	d.AddTuple([]int{1, 2})
	d.AddTuple([]int{1, 2})
	if d.At([]int{1, 2}) != 2 || d.At([]int{0, 0}) != 0 {
		t.Fatal("AddTuple/At wrong")
	}
	if d.TupleCount != 2 {
		t.Fatalf("TupleCount = %d", d.TupleCount)
	}
}

func TestTemperatureSparseValidation(t *testing.T) {
	if _, err := TemperatureSparse(TemperatureConfig{Records: 0, LatBins: 8, LonBins: 8, AltBins: 4, TimeBins: 8, TempBins: 8}); err == nil {
		t.Error("zero records should fail")
	}
	if _, err := TemperatureSparse(TemperatureConfig{Records: 1, LatBins: 7, LonBins: 8, AltBins: 4, TimeBins: 8, TempBins: 8}); err == nil {
		t.Error("bad bins should fail")
	}
}

// The point of the sparse path: a domain far too large to materialize.
// Haar keeps the per-record fill-in small (~(log n)^d); longer filters pay
// (L·log n)^d and can lose to the dense transform — see the package docs.
func TestSparseHugeDomain(t *testing.T) {
	cfg := TemperatureConfig{
		Records: 2000,
		LatBins: 64, LonBins: 64, AltBins: 16, TimeBins: 64, TempBins: 64,
		Seed: 3,
	} // 268M cells — a dense array would be 2.1 GB
	sp, err := TemperatureSparse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hat, err := sp.TransformSparse(wavelet.Haar)
	if err != nil {
		t.Fatal(err)
	}
	if len(hat) == 0 {
		t.Fatal("no coefficients")
	}
	// Parseval on the sparse representations.
	var eData, eHat float64
	for _, v := range sp.Cells {
		eData += v * v
	}
	for _, v := range hat {
		eHat += v * v
	}
	if math.Abs(eData-eHat) > 1e-6*(1+eData) {
		t.Fatalf("energy %g vs %g", eData, eHat)
	}
}
