// Package dataset builds data frequency distributions — the vector Δ of the
// paper, with Δ[x] counting how many database tuples have attribute values
// x — and provides synthetic generators, including the global-temperature
// simulator that stands in for the paper's 15.7-million-record JPL dataset
// (see DESIGN.md for the substitution rationale).
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/wavelet"
)

// Schema describes the attributes of a relation: attribute names and the
// (power-of-two) size of each attribute's integer domain [0, size).
type Schema struct {
	Names []string
	Sizes []int
}

// NewSchema validates and returns a schema.
func NewSchema(names []string, sizes []int) (*Schema, error) {
	if len(names) != len(sizes) {
		return nil, fmt.Errorf("dataset: %d names for %d sizes", len(names), len(sizes))
	}
	if _, err := wavelet.CheckDims(sizes); err != nil {
		return nil, err
	}
	return &Schema{Names: append([]string(nil), names...), Sizes: append([]int(nil), sizes...)}, nil
}

// MustSchema is NewSchema that panics on error, for tests and examples with
// literal arguments.
func MustSchema(names []string, sizes []int) *Schema {
	s, err := NewSchema(names, sizes)
	if err != nil {
		panic(err)
	}
	return s
}

// Dims returns the domain sizes (aliased; treat as read-only).
func (s *Schema) Dims() []int { return s.Sizes }

// NumDims returns the number of attributes.
func (s *Schema) NumDims() int { return len(s.Sizes) }

// Cells returns the total number of cells in Dom(F).
func (s *Schema) Cells() int {
	total := 1
	for _, n := range s.Sizes {
		total *= n
	}
	return total
}

// Equal reports whether two schemas have identical attribute names and
// domain sizes.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if s == nil || o == nil || len(s.Names) != len(o.Names) {
		return false
	}
	for i := range s.Names {
		if s.Names[i] != o.Names[i] || s.Sizes[i] != o.Sizes[i] {
			return false
		}
	}
	return true
}

// AttrIndex returns the position of the named attribute, or an error.
func (s *Schema) AttrIndex(name string) (int, error) {
	for i, n := range s.Names {
		if n == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("dataset: unknown attribute %q", name)
}

// Distribution is the data frequency distribution Δ: a dense multi-
// dimensional array of tuple multiplicities over Dom(F).
type Distribution struct {
	Schema *Schema
	Cells  []float64
	// TupleCount is the total number of tuples accumulated (the sum of all
	// cells for count data).
	TupleCount int64
}

// NewDistribution returns an all-zero distribution for the schema.
func NewDistribution(schema *Schema) *Distribution {
	return &Distribution{Schema: schema, Cells: make([]float64, schema.Cells())}
}

// AddTuple increments the multiplicity of the cell at coords.
func (d *Distribution) AddTuple(coords []int) {
	d.Cells[wavelet.FlatIndex(coords, d.Schema.Sizes)]++
	d.TupleCount++
}

// At returns Δ at coords.
func (d *Distribution) At(coords []int) float64 {
	return d.Cells[wavelet.FlatIndex(coords, d.Schema.Sizes)]
}

// Transform returns the wavelet transform Δ̂ under the given filter as a
// fresh dense array, leaving the distribution untouched. This is the bulk
// load path; see wavelet.(*Filter).ImpulseTransform for the incremental
// single-tuple path.
func (d *Distribution) Transform(f *wavelet.Filter) ([]float64, error) {
	out := make([]float64, len(d.Cells))
	copy(out, d.Cells)
	if err := f.ForwardND(out, d.Schema.Sizes); err != nil {
		return nil, err
	}
	return out, nil
}

// SparseDistribution is Δ in sparse form, for domains too large to hold as
// a dense array (a 64⁵ domain has 10⁹ cells; a few million records occupy a
// vanishing fraction of them). It supports the same loading interface as
// Distribution; the transform goes through the sparse bulk-load path.
type SparseDistribution struct {
	Schema *Schema
	Cells  map[int]float64
	// TupleCount is the total number of tuples accumulated.
	TupleCount int64
}

// NewSparseDistribution returns an empty sparse distribution.
func NewSparseDistribution(schema *Schema) *SparseDistribution {
	return &SparseDistribution{Schema: schema, Cells: make(map[int]float64)}
}

// AddTuple increments the multiplicity of the cell at coords.
func (d *SparseDistribution) AddTuple(coords []int) {
	d.Cells[wavelet.FlatIndex(coords, d.Schema.Sizes)]++
	d.TupleCount++
}

// At returns Δ at coords.
func (d *SparseDistribution) At(coords []int) float64 {
	return d.Cells[wavelet.FlatIndex(coords, d.Schema.Sizes)]
}

// TransformSparse returns the nonzero coefficients of Δ̂ under the filter
// without materializing the dense domain.
func (d *SparseDistribution) TransformSparse(f *wavelet.Filter) (map[int]float64, error) {
	return f.ForwardNDSparse(d.Cells, d.Schema.Sizes)
}

// Temperature domain attribute names, in schema order.
const (
	AttrLatitude    = "latitude"
	AttrLongitude   = "longitude"
	AttrAltitude    = "altitude"
	AttrTime        = "time"
	AttrTemperature = "temperature"
)

// TemperatureConfig parameterizes the synthetic global-temperature dataset.
// The generated relation has the paper's five dimensions: latitude,
// longitude, altitude, time and temperature, each quantized to a
// power-of-two number of bins.
type TemperatureConfig struct {
	// Records is the number of observations to generate.
	Records int
	// LatBins, LonBins, AltBins, TimeBins, TempBins are the per-dimension
	// domain sizes; each must be a power of two.
	LatBins, LonBins, AltBins, TimeBins, TempBins int
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultTemperatureConfig returns a laptop-scale configuration: ~200k
// records over a 32×32×8×32×32 domain (8.4M cells). Scale Records and the
// bin counts up to approach the paper's 15.7M-record setting.
func DefaultTemperatureConfig() TemperatureConfig {
	return TemperatureConfig{
		Records: 200_000,
		LatBins: 32, LonBins: 32, AltBins: 8, TimeBins: 32, TempBins: 32,
		Seed: 1,
	}
}

// TemperatureSchema returns the five-attribute schema for the configuration.
func (c TemperatureConfig) Schema() (*Schema, error) {
	return NewSchema(
		[]string{AttrLatitude, AttrLongitude, AttrAltitude, AttrTime, AttrTemperature},
		[]int{c.LatBins, c.LonBins, c.AltBins, c.TimeBins, c.TempBins},
	)
}

// Temperature generates the synthetic observation dataset.
//
// Physical model (all in quantized units): the mean temperature falls with
// |latitude| (cosine profile) and with altitude (fixed lapse rate), carries
// a seasonal harmonic in time whose amplitude grows with |latitude|, a
// longitudinal land/sea harmonic, and i.i.d. Gaussian measurement noise.
// Observation positions are drawn uniformly, with a mild clustering of
// altitude toward the ground, mimicking real atmospheric sounding data.
func Temperature(c TemperatureConfig) (*Distribution, error) {
	schema, err := c.Schema()
	if err != nil {
		return nil, err
	}
	d := NewDistribution(schema)
	if err := temperatureRecords(c, d.AddTuple); err != nil {
		return nil, err
	}
	return d, nil
}

// TemperatureSparse generates the same synthetic dataset into a sparse
// distribution, for configurations whose domain is too large to hold
// densely.
func TemperatureSparse(c TemperatureConfig) (*SparseDistribution, error) {
	schema, err := c.Schema()
	if err != nil {
		return nil, err
	}
	d := NewSparseDistribution(schema)
	if err := temperatureRecords(c, d.AddTuple); err != nil {
		return nil, err
	}
	return d, nil
}

// temperatureRecords drives the generator, handing every record's
// coordinates to add. Records generated for a given config are identical
// regardless of the receiving distribution type.
func temperatureRecords(c TemperatureConfig, add func(coords []int)) error {
	if c.Records <= 0 {
		return fmt.Errorf("dataset: Records must be positive, got %d", c.Records)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	// Observation density: real sounding/satellite data is clumpy at every
	// spatial and temporal scale (station networks, orbit tracks, weather
	// campaigns). A multiplicative cascade over (lat, lon, time) reproduces
	// that multi-scale structure: per dyadic refinement level every block
	// gets an independent lognormal factor, so the data frequency
	// distribution carries genuine energy at all wavelet scales — the
	// property that makes penalty-directed retrieval pay off.
	density := multiplicativeCascade(rng, []int{c.LatBins, c.LonBins, c.TimeBins}, 0.6)
	cum := make([]float64, len(density))
	var total float64
	for i, v := range density {
		total += v
		cum[i] = total
	}
	coords := make([]int, 5)
	for i := 0; i < c.Records; i++ {
		// Sample a (lat, lon, time) cell proportional to the cascade.
		u := rng.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		lat := lo / (c.LonBins * c.TimeBins)
		lon := (lo / c.TimeBins) % c.LonBins
		tm := lo % c.TimeBins
		// Altitude clusters near the ground: squared uniform.
		ua := rng.Float64()
		alt := int(ua * ua * float64(c.AltBins))
		if alt >= c.AltBins {
			alt = c.AltBins - 1
		}

		// Latitude in [-π/2, π/2]; 0 at the equator.
		phi := (float64(lat)/float64(c.LatBins-1) - 0.5) * math.Pi
		base := 30*math.Cos(phi) - 10 // °C at sea level
		lapse := -6.5 * 12 * float64(alt) / float64(c.AltBins)
		seasonal := 12 * math.Abs(math.Sin(phi)) *
			math.Sin(2*math.Pi*float64(tm)/float64(c.TimeBins))
		longitudinal := 3 * math.Sin(4*math.Pi*float64(lon)/float64(c.LonBins))
		// Weather and within-bin variability: real observations inside one
		// (lat,lon,alt,time-bin) cell spread over roughly ±8 K (synoptic
		// systems, diurnal cycle), which keeps the frequency distribution
		// smooth along the temperature axis rather than a per-cell spike.
		noise := rng.NormFloat64() * 8
		tempC := base + lapse + seasonal + longitudinal + noise

		// Quantize the absolute temperature (Kelvin) over [0, 320] K, as if
		// summing raw observation values: atmospheric temperatures cluster
		// around 190–310 K, so range sums have the small relative spread
		// that makes the paper's coarse progressive estimates accurate.
		frac := (tempC + 273.15) / 320
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		temp := int(frac * float64(c.TempBins))
		if temp >= c.TempBins {
			temp = c.TempBins - 1
		}

		coords[0], coords[1], coords[2], coords[3], coords[4] = lat, lon, alt, tm, temp
		add(coords)
	}
	return nil
}

// multiplicativeCascade builds a positive density over a row-major grid by
// multiplying, at every dyadic refinement level, an independent lognormal
// factor exp(sigma·N(0,1)) per block. The result has correlated structure at
// every scale, like real observation densities.
func multiplicativeCascade(rng *rand.Rand, dims []int, sigma float64) []float64 {
	total := 1
	maxDim := 1
	for _, n := range dims {
		total *= n
		if n > maxDim {
			maxDim = n
		}
	}
	density := make([]float64, total)
	for i := range density {
		density[i] = 1
	}
	coords := make([]int, len(dims))
	// One factor grid per level; level ℓ has blocks of side 2^ℓ (clamped to
	// each dimension's size).
	for side := 1; side < maxDim; side *= 2 {
		// Factor grid dimensions at this level.
		fdims := make([]int, len(dims))
		fcells := 1
		for i, n := range dims {
			fdims[i] = (n + side - 1) / side
			fcells *= fdims[i]
		}
		factors := make([]float64, fcells)
		for i := range factors {
			factors[i] = math.Exp(sigma * rng.NormFloat64())
		}
		for idx := range density {
			rem := idx
			for i := len(dims) - 1; i >= 0; i-- {
				coords[i] = rem % dims[i]
				rem /= dims[i]
			}
			fidx := 0
			for i := range dims {
				fidx = fidx*fdims[i] + coords[i]/side
			}
			density[idx] *= factors[fidx]
		}
	}
	return density
}

// Uniform generates records uniformly over the schema domain.
func Uniform(schema *Schema, records int, seed int64) *Distribution {
	d := NewDistribution(schema)
	rng := rand.New(rand.NewSource(seed))
	coords := make([]int, schema.NumDims())
	for i := 0; i < records; i++ {
		for j, n := range schema.Sizes {
			coords[j] = rng.Intn(n)
		}
		d.AddTuple(coords)
	}
	return d
}

// Zipf generates records with per-dimension Zipf-distributed coordinates
// (exponent s > 1), modeling the skew of real OLAP dimensions.
func Zipf(schema *Schema, records int, s float64, seed int64) (*Distribution, error) {
	if s <= 1 {
		return nil, fmt.Errorf("dataset: Zipf exponent must exceed 1, got %g", s)
	}
	d := NewDistribution(schema)
	rng := rand.New(rand.NewSource(seed))
	zipfs := make([]*rand.Zipf, schema.NumDims())
	for j, n := range schema.Sizes {
		zipfs[j] = rand.NewZipf(rng, s, 1, uint64(n-1))
	}
	coords := make([]int, schema.NumDims())
	for i := 0; i < records; i++ {
		for j := range coords {
			coords[j] = int(zipfs[j].Uint64())
		}
		d.AddTuple(coords)
	}
	return d, nil
}

// GaussianClusters generates records from k Gaussian clusters with random
// centers and the given per-dimension standard deviation (as a fraction of
// the dimension size), clamped to the domain.
func GaussianClusters(schema *Schema, records, k int, sigmaFrac float64, seed int64) (*Distribution, error) {
	if k <= 0 {
		return nil, fmt.Errorf("dataset: cluster count must be positive, got %d", k)
	}
	if sigmaFrac <= 0 {
		return nil, fmt.Errorf("dataset: sigmaFrac must be positive, got %g", sigmaFrac)
	}
	d := NewDistribution(schema)
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, schema.NumDims())
		for j, n := range schema.Sizes {
			centers[c][j] = rng.Float64() * float64(n)
		}
	}
	coords := make([]int, schema.NumDims())
	for i := 0; i < records; i++ {
		c := centers[rng.Intn(k)]
		for j, n := range schema.Sizes {
			x := int(c[j] + rng.NormFloat64()*sigmaFrac*float64(n))
			if x < 0 {
				x = 0
			}
			if x >= n {
				x = n - 1
			}
			coords[j] = x
		}
		d.AddTuple(coords)
	}
	return d, nil
}
