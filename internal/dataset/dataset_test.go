package dataset

import (
	"math"
	"testing"

	"repro/internal/wavelet"
)

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema([]string{"a"}, []int{4, 8}); err == nil {
		t.Error("mismatched names/sizes should fail")
	}
	if _, err := NewSchema([]string{"a"}, []int{3}); err == nil {
		t.Error("non-pow2 size should fail")
	}
	s, err := NewSchema([]string{"a", "b"}, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if s.Cells() != 32 || s.NumDims() != 2 {
		t.Fatalf("Cells=%d NumDims=%d", s.Cells(), s.NumDims())
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustSchema([]string{"a"}, []int{3})
}

func TestAttrIndex(t *testing.T) {
	s := MustSchema([]string{"x", "y"}, []int{4, 4})
	i, err := s.AttrIndex("y")
	if err != nil || i != 1 {
		t.Fatalf("AttrIndex = %d, %v", i, err)
	}
	if _, err := s.AttrIndex("z"); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestDistributionAddTupleAndAt(t *testing.T) {
	s := MustSchema([]string{"x", "y"}, []int{4, 4})
	d := NewDistribution(s)
	d.AddTuple([]int{1, 2})
	d.AddTuple([]int{1, 2})
	d.AddTuple([]int{3, 0})
	if d.At([]int{1, 2}) != 2 || d.At([]int{3, 0}) != 1 || d.At([]int{0, 0}) != 0 {
		t.Fatal("AddTuple/At wrong")
	}
	if d.TupleCount != 3 {
		t.Fatalf("TupleCount = %d", d.TupleCount)
	}
}

func TestTransformRoundTripsAndPreservesMass(t *testing.T) {
	s := MustSchema([]string{"x", "y"}, []int{8, 8})
	d := Uniform(s, 500, 42)
	hat, err := d.Transform(wavelet.Db4)
	if err != nil {
		t.Fatal(err)
	}
	// Transform must not modify the distribution.
	var mass float64
	for _, v := range d.Cells {
		mass += v
	}
	if mass != 500 {
		t.Fatalf("distribution modified: mass %g", mass)
	}
	// Parseval: energies match.
	var e1, e2 float64
	for _, v := range d.Cells {
		e1 += v * v
	}
	for _, v := range hat {
		e2 += v * v
	}
	if math.Abs(e1-e2) > 1e-6*(1+e1) {
		t.Fatalf("energy %g vs %g", e1, e2)
	}
}

func TestTemperatureGeneratorBasics(t *testing.T) {
	cfg := TemperatureConfig{
		Records: 5000,
		LatBins: 16, LonBins: 16, AltBins: 4, TimeBins: 8, TempBins: 16,
		Seed: 7,
	}
	d, err := Temperature(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.TupleCount != 5000 {
		t.Fatalf("TupleCount = %d", d.TupleCount)
	}
	if d.Schema.NumDims() != 5 {
		t.Fatalf("NumDims = %d", d.Schema.NumDims())
	}
	var mass float64
	for _, v := range d.Cells {
		if v < 0 {
			t.Fatal("negative multiplicity")
		}
		mass += v
	}
	if mass != 5000 {
		t.Fatalf("mass = %g", mass)
	}
}

func TestTemperatureDeterministicBySeed(t *testing.T) {
	cfg := TemperatureConfig{Records: 1000, LatBins: 8, LonBins: 8, AltBins: 4, TimeBins: 8, TempBins: 8, Seed: 3}
	d1, err := Temperature(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Temperature(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.Cells {
		if d1.Cells[i] != d2.Cells[i] {
			t.Fatal("same seed produced different data")
		}
	}
	cfg.Seed = 4
	d3, err := Temperature(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range d1.Cells {
		if d1.Cells[i] != d3.Cells[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestTemperatureHasPhysicalStructure(t *testing.T) {
	// Equatorial cells should be warmer on average than polar cells.
	cfg := TemperatureConfig{Records: 20000, LatBins: 16, LonBins: 8, AltBins: 4, TimeBins: 8, TempBins: 32, Seed: 5}
	d, err := Temperature(cfg)
	if err != nil {
		t.Fatal(err)
	}
	meanTempAtLat := func(lat int) float64 {
		var sum, n float64
		coords := make([]int, 5)
		for lon := 0; lon < cfg.LonBins; lon++ {
			for alt := 0; alt < cfg.AltBins; alt++ {
				for tm := 0; tm < cfg.TimeBins; tm++ {
					for temp := 0; temp < cfg.TempBins; temp++ {
						coords[0], coords[1], coords[2], coords[3], coords[4] = lat, lon, alt, tm, temp
						c := d.At(coords)
						sum += c * float64(temp)
						n += c
					}
				}
			}
		}
		if n == 0 {
			return 0
		}
		return sum / n
	}
	equator := meanTempAtLat(cfg.LatBins / 2)
	pole := meanTempAtLat(0)
	if equator <= pole {
		t.Fatalf("equator mean %g not warmer than pole mean %g", equator, pole)
	}
}

func TestTemperatureErrors(t *testing.T) {
	if _, err := Temperature(TemperatureConfig{Records: 0, LatBins: 8, LonBins: 8, AltBins: 4, TimeBins: 8, TempBins: 8}); err == nil {
		t.Error("zero records should fail")
	}
	if _, err := Temperature(TemperatureConfig{Records: 10, LatBins: 7, LonBins: 8, AltBins: 4, TimeBins: 8, TempBins: 8}); err == nil {
		t.Error("non-pow2 bins should fail")
	}
}

func TestDefaultTemperatureConfigValid(t *testing.T) {
	cfg := DefaultTemperatureConfig()
	if _, err := cfg.Schema(); err != nil {
		t.Fatal(err)
	}
	if cfg.Records <= 0 {
		t.Fatal("default records nonpositive")
	}
}

func TestZipf(t *testing.T) {
	s := MustSchema([]string{"x", "y"}, []int{16, 16})
	d, err := Zipf(s, 2000, 1.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if d.TupleCount != 2000 {
		t.Fatalf("TupleCount = %d", d.TupleCount)
	}
	// Skew: cell (0,0) should hold many more tuples than cell (15,15).
	if d.At([]int{0, 0}) <= d.At([]int{15, 15}) {
		t.Fatal("Zipf distribution shows no skew")
	}
	if _, err := Zipf(s, 10, 1.0, 1); err == nil {
		t.Error("exponent 1.0 should fail")
	}
}

func TestGaussianClusters(t *testing.T) {
	s := MustSchema([]string{"x", "y"}, []int{32, 32})
	d, err := GaussianClusters(s, 3000, 3, 0.05, 13)
	if err != nil {
		t.Fatal(err)
	}
	if d.TupleCount != 3000 {
		t.Fatalf("TupleCount = %d", d.TupleCount)
	}
	// Clustered data concentrates mass: the top 10% of cells should hold
	// most tuples.
	cells := append([]float64(nil), d.Cells...)
	var total float64
	for _, v := range cells {
		total += v
	}
	// Count mass in cells above a small threshold.
	var concentrated float64
	for _, v := range cells {
		if v >= 3 {
			concentrated += v
		}
	}
	if concentrated < total/2 {
		t.Fatalf("clusters look uniform: %g of %g in dense cells", concentrated, total)
	}
	if _, err := GaussianClusters(s, 10, 0, 0.1, 1); err == nil {
		t.Error("zero clusters should fail")
	}
	if _, err := GaussianClusters(s, 10, 2, 0, 1); err == nil {
		t.Error("zero sigma should fail")
	}
}

func BenchmarkTemperatureGenerate(b *testing.B) {
	cfg := TemperatureConfig{Records: 50000, LatBins: 16, LonBins: 16, AltBins: 4, TimeBins: 16, TempBins: 16, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := Temperature(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
