package ingest

import (
	"math"
	"strings"
	"testing"
)

const sampleCSV = `age,salary,dept,notes
25,50000,1,hello
30,60000,2,world
45,90000,1,
60,120000,3,x
25,52000,2,y
`

func TestColumnSpec(t *testing.T) {
	cols, err := ColumnSpec("age:64, salary:128, score:32[0..100]")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 {
		t.Fatalf("cols = %d", len(cols))
	}
	if cols[0].Name != "age" || cols[0].Bins != 64 {
		t.Fatalf("col0 = %+v", cols[0])
	}
	if cols[2].Min != 0 || cols[2].Max != 100 {
		t.Fatalf("col2 window = [%g,%g]", cols[2].Min, cols[2].Max)
	}
}

func TestColumnSpecErrors(t *testing.T) {
	cases := []string{
		"",
		"age",
		"age:abc",
		"age:64[5..]",
		"age:64[5..3]",
		"age:64[bad..10]",
		"age:64[0..bad]",
		"age:64[0..10",
	}
	for _, spec := range cases {
		if _, err := ColumnSpec(spec); err == nil {
			t.Errorf("%q: expected error", spec)
		}
	}
}

func TestCSVIngestAutoWindow(t *testing.T) {
	cols, err := ColumnSpec("age:16,salary:16")
	if err != nil {
		t.Fatal(err)
	}
	res, err := CSV(strings.NewReader(sampleCSV), cols)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 5 || res.Skipped != 0 {
		t.Fatalf("rows=%d skipped=%d", res.Rows, res.Skipped)
	}
	if res.Dist.TupleCount != 5 {
		t.Fatalf("TupleCount = %d", res.Dist.TupleCount)
	}
	// Window discovered from data.
	if res.Windows[0][0] != 25 || res.Windows[0][1] != 60 {
		t.Fatalf("age window = %v", res.Windows[0])
	}
	// The youngest rows land in bin 0, the oldest in the top bin.
	var massLow, massHigh float64
	coords := make([]int, 2)
	for s := 0; s < 16; s++ {
		coords[0], coords[1] = 0, s
		massLow += res.Dist.At(coords)
		coords[0] = 15
		massHigh += res.Dist.At(coords)
	}
	if massLow != 2 { // two age-25 rows
		t.Fatalf("bin-0 mass = %g", massLow)
	}
	if massHigh != 1 { // the age-60 row clamps to the top bin
		t.Fatalf("top-bin mass = %g", massHigh)
	}
}

func TestCSVIngestExplicitWindowAndSkips(t *testing.T) {
	src := `v
1.5
bad
2.5

99
`
	cols := []Column{{Name: "v", Bins: 4, Min: 0, Max: 4}}
	res, err := CSV(strings.NewReader(src), cols)
	if err != nil {
		t.Fatal(err)
	}
	// encoding/csv drops the blank line before we see it, so only "bad" is
	// counted as skipped.
	if res.Rows != 3 || res.Skipped != 1 {
		t.Fatalf("rows=%d skipped=%d", res.Rows, res.Skipped)
	}
	// 1.5→bin1, 2.5→bin2, 99 clamps→bin3.
	for bin, want := range map[int]float64{1: 1, 2: 1, 3: 1} {
		if got := res.Dist.At([]int{bin}); got != want {
			t.Fatalf("bin %d = %g, want %g", bin, got, want)
		}
	}
}

func TestCSVIngestErrors(t *testing.T) {
	cols := []Column{{Name: "v", Bins: 4}}
	if _, err := CSV(strings.NewReader(""), cols); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := CSV(strings.NewReader("other\n1\n"), cols); err == nil {
		t.Error("missing column should fail")
	}
	if _, err := CSV(strings.NewReader("v\nbad\n"), cols); err == nil {
		t.Error("no usable rows should fail")
	}
	badBins := []Column{{Name: "v", Bins: 3}}
	if _, err := CSV(strings.NewReader("v\n1\n"), badBins); err == nil {
		t.Error("non-pow2 bins should fail")
	}
	if _, err := CSV(strings.NewReader("v\n1\n"), nil); err == nil {
		t.Error("no columns should fail")
	}
}

func TestCSVConstantColumn(t *testing.T) {
	src := "v\n7\n7\n7\n"
	res, err := CSV(strings.NewReader(src), []Column{{Name: "v", Bins: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist.At([]int{0}) != 3 {
		t.Fatalf("constant column mass misplaced: %v", res.Dist.Cells)
	}
}

func TestQuantizeAndBinValue(t *testing.T) {
	if quantize(0, 0, 10, 4) != 0 || quantize(9.99, 0, 10, 4) != 3 {
		t.Fatal("quantize edges wrong")
	}
	if quantize(-5, 0, 10, 4) != 0 || quantize(50, 0, 10, 4) != 3 {
		t.Fatal("quantize clamping wrong")
	}
	if v := BinValue(2, [2]float64{0, 10}, 4); math.Abs(v-5) > 1e-12 {
		t.Fatalf("BinValue = %g", v)
	}
}
