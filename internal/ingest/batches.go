package ingest

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/mvcc"
)

// DefaultBatchSize is the tuple count per emitted batch when CSVBatches is
// called with batchSize ≤ 0: large enough to amortize the per-layer
// overhead, small enough to bound the transform's working set.
const DefaultBatchSize = 4096

// CSVBatches streams the reader's CSV content into write batches of at most
// batchSize tuples and hands each finished batch to emit — the adoption
// path from "I have a CSV" straight into Database.Apply, without
// materializing a full Δ array (memory is one batch, not one domain).
//
// The first record must be a header containing every requested column, and
// every column must carry an explicit quantization window (Min < Max):
// streaming rules out the auto-window discovery scan of CSV. Rows with
// unparsable or missing values are skipped and counted. Emitted batches are
// handed off — the callback may retain or Apply them; a non-nil callback
// error aborts the stream and is returned verbatim. rows counts the tuples
// emitted across all batches.
func CSVBatches(r io.Reader, cols []Column, batchSize int, emit func(*mvcc.Batch) error) (rows, skipped int, err error) {
	if len(cols) == 0 {
		return 0, 0, fmt.Errorf("ingest: no columns")
	}
	if emit == nil {
		return 0, 0, fmt.Errorf("ingest: nil emit callback")
	}
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	for _, c := range cols {
		if c.Bins < 2 || c.Bins&(c.Bins-1) != 0 {
			return 0, 0, fmt.Errorf("ingest: column %q bins %d not a power of two ≥ 2", c.Name, c.Bins)
		}
		if c.Min == 0 && c.Max == 0 {
			return 0, 0, fmt.Errorf("ingest: column %q has no quantization window; streaming ingest needs explicit [min..max] windows", c.Name)
		}
		if c.Max <= c.Min {
			return 0, 0, fmt.Errorf("ingest: column %q window [%g..%g] is empty", c.Name, c.Min, c.Max)
		}
	}
	reader := csv.NewReader(r)
	reader.ReuseRecord = true
	header, err := reader.Read()
	if err != nil {
		return 0, 0, fmt.Errorf("ingest: reading header: %w", err)
	}
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		colIdx[i] = -1
		for j, h := range header {
			if strings.TrimSpace(h) == c.Name {
				colIdx[i] = j
				break
			}
		}
		if colIdx[i] < 0 {
			return 0, 0, fmt.Errorf("ingest: column %q not in header %v", c.Name, header)
		}
	}

	batch := mvcc.NewBatch()
	coords := make([]int, len(cols))
readLoop:
	for line := 2; ; line++ {
		rec, err := reader.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rows, skipped, fmt.Errorf("ingest: reading row %d: %w", line, err)
		}
		for i, j := range colIdx {
			if j >= len(rec) {
				skipped++
				continue readLoop
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[j]), 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				skipped++
				continue readLoop
			}
			coords[i] = quantize(v, cols[i].Min, cols[i].Max, cols[i].Bins)
		}
		batch.Add(coords, 1)
		rows++
		if batch.Len() >= batchSize {
			if err := emit(batch); err != nil {
				return rows, skipped, err
			}
			batch = mvcc.NewBatch()
		}
	}
	if batch.Len() > 0 {
		if err := emit(batch); err != nil {
			return rows, skipped, err
		}
	}
	return rows, skipped, nil
}
