// Package ingest loads real tabular data into data frequency distributions:
// it reads CSV records, quantizes selected numeric columns onto power-of-two
// bin domains, and produces the Δ a Database is built from. This is the
// adoption path from "I have a CSV" to progressive range-sum queries.
package ingest

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/dataset"
)

// Column selects one CSV column for ingestion.
type Column struct {
	// Name is the CSV header name (also the schema attribute name).
	Name string
	// Bins is the power-of-two domain size the values are quantized onto.
	Bins int
	// Min and Max bound the quantization window. If Min == Max == 0 the
	// window is taken from the data (a scan pass discovers it).
	Min, Max float64
}

// ColumnSpec parses a compact textual column list of the form
// "age:64,salary:128,score:32[0..100]" — name, bins, and an optional
// explicit [min..max] window.
func ColumnSpec(spec string) ([]Column, error) {
	parts := strings.Split(spec, ",")
	cols := make([]Column, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		var window string
		if i := strings.IndexByte(p, '['); i >= 0 {
			if !strings.HasSuffix(p, "]") {
				return nil, fmt.Errorf("ingest: malformed window in %q", p)
			}
			window = p[i+1 : len(p)-1]
			p = p[:i]
		}
		name, binsStr, ok := strings.Cut(p, ":")
		if !ok {
			return nil, fmt.Errorf("ingest: column %q missing ':bins'", p)
		}
		bins, err := strconv.Atoi(binsStr)
		if err != nil {
			return nil, fmt.Errorf("ingest: column %q: bad bin count: %v", name, err)
		}
		col := Column{Name: strings.TrimSpace(name), Bins: bins}
		if window != "" {
			lo, hi, ok := strings.Cut(window, "..")
			if !ok {
				return nil, fmt.Errorf("ingest: window %q must be min..max", window)
			}
			if col.Min, err = strconv.ParseFloat(strings.TrimSpace(lo), 64); err != nil {
				return nil, fmt.Errorf("ingest: window %q: %v", window, err)
			}
			if col.Max, err = strconv.ParseFloat(strings.TrimSpace(hi), 64); err != nil {
				return nil, fmt.Errorf("ingest: window %q: %v", window, err)
			}
			if col.Max <= col.Min {
				return nil, fmt.Errorf("ingest: window %q is empty", window)
			}
		}
		cols = append(cols, col)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("ingest: no columns in spec %q", spec)
	}
	return cols, nil
}

// Result carries the loaded distribution and ingestion statistics.
type Result struct {
	Dist *dataset.Distribution
	// Rows is the number of data rows read; Skipped counts rows dropped for
	// unparsable or missing values.
	Rows, Skipped int
	// Windows records the quantization window used per column (useful when
	// auto-discovered).
	Windows [][2]float64
}

// CSV ingests the reader's CSV content. The first record must be a header
// containing every requested column. Because auto-windowed columns need the
// data twice, the entire input is buffered; for very large inputs give every
// column an explicit window and stream via CSVSinglePass semantics (still
// buffered here for simplicity of the error path).
func CSV(r io.Reader, cols []Column) (*Result, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("ingest: no columns")
	}
	reader := csv.NewReader(r)
	reader.ReuseRecord = true
	header, err := reader.Read()
	if err != nil {
		return nil, fmt.Errorf("ingest: reading header: %w", err)
	}
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		colIdx[i] = -1
		for j, h := range header {
			if strings.TrimSpace(h) == c.Name {
				colIdx[i] = j
				break
			}
		}
		if colIdx[i] < 0 {
			return nil, fmt.Errorf("ingest: column %q not in header %v", c.Name, header)
		}
		if c.Bins < 2 || c.Bins&(c.Bins-1) != 0 {
			return nil, fmt.Errorf("ingest: column %q bins %d not a power of two ≥ 2", c.Name, c.Bins)
		}
	}

	// Buffer the parsed values.
	var rows [][]float64
	skipped := 0
readLoop:
	for {
		rec, err := reader.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("ingest: reading row %d: %w", len(rows)+skipped+2, err)
		}
		vals := make([]float64, len(cols))
		for i, j := range colIdx {
			if j >= len(rec) {
				skipped++
				continue readLoop
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[j]), 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				skipped++
				continue readLoop
			}
			vals[i] = v
		}
		rows = append(rows, vals)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("ingest: no usable rows (%d skipped)", skipped)
	}

	// Resolve windows.
	windows := make([][2]float64, len(cols))
	for i, c := range cols {
		if c.Min != 0 || c.Max != 0 {
			windows[i] = [2]float64{c.Min, c.Max}
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, vals := range rows {
			if vals[i] < lo {
				lo = vals[i]
			}
			if vals[i] > hi {
				hi = vals[i]
			}
		}
		if hi == lo {
			hi = lo + 1 // constant column: single bin will hold everything
		}
		windows[i] = [2]float64{lo, hi}
	}

	names := make([]string, len(cols))
	sizes := make([]int, len(cols))
	for i, c := range cols {
		names[i] = c.Name
		sizes[i] = c.Bins
	}
	schema, err := dataset.NewSchema(names, sizes)
	if err != nil {
		return nil, err
	}
	dist := dataset.NewDistribution(schema)
	coords := make([]int, len(cols))
	for _, vals := range rows {
		for i, v := range vals {
			coords[i] = quantize(v, windows[i][0], windows[i][1], cols[i].Bins)
		}
		dist.AddTuple(coords)
	}
	return &Result{Dist: dist, Rows: len(rows), Skipped: skipped, Windows: windows}, nil
}

// quantize maps v from [lo, hi] onto [0, bins), clamping outliers to the
// edge bins.
func quantize(v, lo, hi float64, bins int) int {
	frac := (v - lo) / (hi - lo)
	b := int(frac * float64(bins))
	if b < 0 {
		return 0
	}
	if b >= bins {
		return bins - 1
	}
	return b
}

// BinValue returns the representative (lower-edge) raw value of a bin under
// the window — for presenting query ranges back in data units.
func BinValue(bin int, window [2]float64, bins int) float64 {
	return window[0] + float64(bin)/float64(bins)*(window[1]-window[0])
}
