package ingest

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/mvcc"
)

func batchCols() []Column {
	return []Column{
		{Name: "x", Bins: 8, Min: 0, Max: 8},
		{Name: "y", Bins: 8, Min: 0, Max: 8},
	}
}

func TestCSVBatchesStreams(t *testing.T) {
	csv := "x,y\n" + strings.Repeat("1.0,2.0\n", 10)
	var batches []*mvcc.Batch
	rows, skipped, err := CSVBatches(strings.NewReader(csv), batchCols(), 4, func(b *mvcc.Batch) error {
		batches = append(batches, b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 10 || skipped != 0 {
		t.Fatalf("rows=%d skipped=%d, want 10 and 0", rows, skipped)
	}
	// 10 rows at batch size 4 → 4+4+2.
	if len(batches) != 3 {
		t.Fatalf("emitted %d batches, want 3", len(batches))
	}
	total := 0
	for i, b := range batches {
		total += b.Len()
		want := 4
		if i == len(batches)-1 {
			want = 2
		}
		if b.Len() != want {
			t.Fatalf("batch %d has %d tuples, want %d", i, b.Len(), want)
		}
	}
	if total != rows {
		t.Fatalf("batches hold %d tuples, rows=%d", total, rows)
	}
}

func TestCSVBatchesSkipsBadRows(t *testing.T) {
	csv := "y,x,extra\n2.0,1.0,zzz\nnope,1.0,z\n3.0,,z\n4.0,7.0,z\n"
	rows, skipped, err := CSVBatches(strings.NewReader(csv), batchCols(), 0, func(b *mvcc.Batch) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Row 2 has an unparsable y, row 3 an empty x field.
	if rows != 2 || skipped != 2 {
		t.Fatalf("rows=%d skipped=%d, want 2 and 2", rows, skipped)
	}
}

func TestCSVBatchesValidation(t *testing.T) {
	ok := func(*mvcc.Batch) error { return nil }
	cases := []struct {
		name string
		cols []Column
		csv  string
	}{
		{"no columns", nil, "x\n1\n"},
		{"bins not power of two", []Column{{Name: "x", Bins: 5, Min: 0, Max: 1}}, "x\n1\n"},
		{"no window", []Column{{Name: "x", Bins: 8}}, "x\n1\n"},
		{"empty window", []Column{{Name: "x", Bins: 8, Min: 2, Max: 2}}, "x\n1\n"},
		{"column not in header", []Column{{Name: "z", Bins: 8, Min: 0, Max: 1}}, "x,y\n1,2\n"},
		{"empty input", []Column{{Name: "x", Bins: 8, Min: 0, Max: 1}}, ""},
	}
	for _, tc := range cases {
		if _, _, err := CSVBatches(strings.NewReader(tc.csv), tc.cols, 0, ok); err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
	}
	if _, _, err := CSVBatches(strings.NewReader("x\n1\n"),
		[]Column{{Name: "x", Bins: 8, Min: 0, Max: 1}}, 0, nil); err == nil {
		t.Fatal("nil emit: no error")
	}
}

func TestCSVBatchesEmitErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	csv := "x,y\n" + strings.Repeat("1.0,2.0\n", 10)
	calls := 0
	rows, _, err := CSVBatches(strings.NewReader(csv), batchCols(), 3, func(b *mvcc.Batch) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the emit error verbatim", err)
	}
	if calls != 2 {
		t.Fatalf("emit called %d times after abort, want 2", calls)
	}
	// rows counts tuples handed to emit, including the failed batch.
	if rows != 6 {
		t.Fatalf("rows = %d, want 6", rows)
	}
}

func TestCSVBatchesQuantizesLikeCSV(t *testing.T) {
	// The same values through the one-shot CSV path and the streaming path
	// must land on identical bins: both share quantize().
	var got *mvcc.Batch
	_, _, err := CSVBatches(strings.NewReader("x,y\n0.0,7.9\n3.999,4.0\n"), batchCols(), 0,
		func(b *mvcc.Batch) error {
			got = b
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Len() != 2 {
		t.Fatalf("batch = %v", got)
	}
	// Window [0..8) over 8 bins: 0.0→0, 7.9→7, 3.999→3, 4.0→4.
	if k := quantize(0.0, 0, 8, 8); k != 0 {
		t.Fatalf("quantize(0.0) = %d", k)
	}
	if k := quantize(7.9, 0, 8, 8); k != 7 {
		t.Fatalf("quantize(7.9) = %d", k)
	}
	if k := quantize(3.999, 0, 8, 8); k != 3 {
		t.Fatalf("quantize(3.999) = %d", k)
	}
}
