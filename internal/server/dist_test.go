package server

// The HTTP tier over a distributed database: queries through a coordinator
// backed by real TCP shard servers must answer exactly like a local view,
// degrade to 206 Partial Content when a shard dies, and surface the
// per-shard health ledger in /stats.

import (
	"encoding/json"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
)

const distStatements = "COUNT() WHERE x <= 40; SUM(y) WHERE x <= 63; COUNT() WHERE y BETWEEN 10 AND 50"

// distHandler partitions a database onto four loopback shard servers and
// wraps the assembled distributed view in the HTTP handler.
func distHandler(t *testing.T) (*Handler, []float64, []*repro.ShardServer) {
	t.Helper()
	schema, err := repro.NewSchema([]string{"x", "y"}, []int{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	data := repro.UniformData(schema, 700, 23)
	db, err := repro.NewDatabase(data, repro.Db4)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := repro.ParseBatch(schema, distStatements)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	exact := db.Exact(plan)

	const count = 4
	addrs := make([]string, count)
	servers := make([]*repro.ShardServer, count)
	for i := 0; i < count; i++ {
		ss, err := db.NewShardServer(i, count, nil)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = ss.Serve(ln) }()
		t.Cleanup(func() { _ = ss.Close() })
		addrs[i] = ln.Addr().String()
		servers[i] = ss
	}
	ddb, err := repro.OpenDistributed(addrs, repro.DistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ddb.Close() })
	h := New(ddb)
	t.Cleanup(h.Close)
	return h, exact, servers
}

func TestQueryOverDistributedDatabase(t *testing.T) {
	h, exact, _ := distHandler(t)
	rec := postQuery(t, h, `{"statements": "`+distStatements+`"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Exact || resp.Degraded {
		t.Fatalf("exact=%v degraded=%v over healthy shards", resp.Exact, resp.Degraded)
	}
	for i, r := range resp.Results {
		// The distributed drain is value-identical to the single-node one,
		// so the HTTP answer equals the local exact evaluation outright.
		if r.Estimate != exact[i] {
			t.Fatalf("result %d: %g over shards, %g locally", i, r.Estimate, exact[i])
		}
	}

	// /stats carries the shard fan-out section with all shards seen.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats StatsResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Dist == nil || stats.Dist.Shards != 4 {
		t.Fatalf("stats dist section: %+v", stats.Dist)
	}
	var reqs int64
	for _, sh := range stats.Dist.Health {
		reqs += sh.Requests
		if sh.Errors != 0 {
			t.Fatalf("healthy shard %d reports errors: %+v", sh.Shard, sh)
		}
	}
	if reqs == 0 {
		t.Fatal("no shard traffic recorded after a full query")
	}
}

func TestQueryShardLossReturns206WithBounds(t *testing.T) {
	h, exact, servers := distHandler(t)
	// Kill one shard before the request: its coefficients become skips, the
	// answer degrades to 206 with Theorem-1 bounds covering the residual.
	if err := servers[2].Close(); err != nil {
		t.Fatal(err)
	}
	rec := postQuery(t, h, `{"statements": "`+distStatements+`"}`)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("status %d, want 206: %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.Exact || resp.Skipped == 0 {
		t.Fatalf("degraded=%v exact=%v skipped=%d", resp.Degraded, resp.Exact, resp.Skipped)
	}
	for i, r := range resp.Results {
		if r.Bound == nil {
			t.Fatalf("degraded result %d without a bound", i)
		}
		if errAbs := math.Abs(r.Estimate - exact[i]); errAbs > *r.Bound*(1+1e-9)+1e-9 {
			t.Fatalf("result %d: error %g exceeds bound %g", i, errAbs, *r.Bound)
		}
	}

	// /stats marks the dead shard.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats StatsResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Dist == nil {
		t.Fatal("stats dist section missing")
	}
	sh := stats.Dist.Health[2]
	if sh.Errors == 0 || sh.DegradedKeys == 0 || sh.LastError == "" {
		t.Fatalf("dead shard ledger unmarked in /stats: %+v", sh)
	}
	if stats.Dist.DegradedKeys != int64(resp.Skipped) {
		t.Fatalf("stats degraded %d keys, response skipped %d", stats.Dist.DegradedKeys, resp.Skipped)
	}
}
