package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
	"repro/internal/sched"
)

func postJSON(t *testing.T, h *Handler, path, body string, header map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	for k, v := range header {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func prepareBatch(t *testing.T, h *Handler, statements, tenant string) (PrepareResponse, int) {
	t.Helper()
	hdr := map[string]string{}
	if tenant != "" {
		hdr["X-Tenant"] = tenant
	}
	rec := postJSON(t, h, "/prepare", `{"statements": `+jsonString(statements)+`}`, hdr)
	var resp PrepareResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
	}
	return resp, rec.Code
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// A prepared handle must execute to exactly the answers the same batch gives
// inline — bit-identical estimates, matched by query label since the handle
// path answers in canonical order.
func TestPrepareExecuteMatchesInline(t *testing.T) {
	h, _, _ := testHandler(t)
	const stmts = "COUNT() WHERE age <= 15; SUM(salary) WHERE age <= 15"

	inline := postQuery(t, h, `{"statements": `+jsonString(stmts)+`}`)
	if inline.Code != http.StatusOK {
		t.Fatalf("inline: %d %s", inline.Code, inline.Body)
	}
	var want QueryResponse
	if err := json.Unmarshal(inline.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}

	prep, code := prepareBatch(t, h, stmts, "")
	if code != http.StatusOK {
		t.Fatalf("prepare: %d", code)
	}
	if prep.Handle == "" || prep.Queries != 2 || prep.Distinct != want.Distinct {
		t.Fatalf("prepare response %+v (want distinct %d)", prep, want.Distinct)
	}
	// The inline request already registered the batch transparently.
	if !prep.Cached {
		t.Fatal("prepare after inline execute should find the plan resident")
	}

	exec := postQuery(t, h, `{"handle": `+jsonString(prep.Handle)+`}`)
	if exec.Code != http.StatusOK {
		t.Fatalf("handle execute: %d %s", exec.Code, exec.Body)
	}
	var got QueryResponse
	if err := json.Unmarshal(exec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if !got.Exact || len(got.Results) != len(want.Results) {
		t.Fatalf("handle response %+v", got)
	}
	byLabel := map[string]float64{}
	for _, r := range want.Results {
		byLabel[r.Query] = r.Estimate
	}
	for _, r := range got.Results {
		wantEst, ok := byLabel[r.Query]
		if !ok {
			t.Fatalf("handle result label %q not in inline results", r.Query)
		}
		if r.Estimate != wantEst {
			t.Fatalf("label %q: handle %v != inline %v", r.Query, r.Estimate, wantEst)
		}
	}

	// Preparing again returns the same handle, still cached.
	again, code := prepareBatch(t, h, stmts, "")
	if code != http.StatusOK || again.Handle != prep.Handle || !again.Cached {
		t.Fatalf("re-prepare: %d %+v", code, again)
	}
}

// A permuted presentation of a prepared batch shares the resident plan, and
// inline results still come back in statement order.
func TestInlinePermutationSharesPlanAndKeepsOrder(t *testing.T) {
	h, _, truth := testHandler(t)
	a := postQuery(t, h, `{"statements": "COUNT() WHERE age <= 15; SUM(salary) WHERE age <= 15"}`)
	b := postQuery(t, h, `{"statements": "SUM(salary) WHERE age <= 15; COUNT() WHERE age <= 15"}`)
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("status %d / %d", a.Code, b.Code)
	}
	var ra, rb QueryResponse
	if err := json.Unmarshal(a.Body.Bytes(), &ra); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b.Body.Bytes(), &rb); err != nil {
		t.Fatal(err)
	}
	// Statement order is preserved per request: the permuted batch answers
	// swapped relative to the first, both matching direct evaluation.
	if ra.Results[0].Estimate != rb.Results[1].Estimate || ra.Results[1].Estimate != rb.Results[0].Estimate {
		t.Fatalf("permuted results misaligned: %+v vs %+v", ra.Results, rb.Results)
	}
	for i, r := range ra.Results {
		if d := r.Estimate - truth[i]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("result %d: %g want %g", i, r.Estimate, truth[i])
		}
	}
	// One resident plan served both presentations.
	st := statsOf(t, h)
	if st.Prepared.Plans != 1 || st.Prepared.Hits < 1 {
		t.Fatalf("registry did not share the permuted plan: %+v", st.Prepared)
	}
}

func TestQueryHandleErrors(t *testing.T) {
	h, _, _ := testHandler(t)
	cases := []struct {
		body string
		want int
	}{
		{`{"handle": "batch:deadbeefdeadbeef"}`, http.StatusNotFound},
		{`{"handle": "batch:deadbeefdeadbeef", "statements": "COUNT()"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if rec := postQuery(t, h, c.body); rec.Code != c.want {
			t.Errorf("%q: status %d, want %d", c.body, rec.Code, c.want)
		}
	}
	// DELETE of an unknown handle is 404; empty handle path is 400.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/prepare/batch:nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("delete unknown: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/prepare/", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("delete empty: %d", rec.Code)
	}
}

// Handle execution streams exactly like inline batches.
func TestStreamAcceptsHandle(t *testing.T) {
	h, _, _ := testHandler(t)
	prep, code := prepareBatch(t, h, "SUM(salary) WHERE age <= 15", "")
	if code != http.StatusOK {
		t.Fatalf("prepare: %d", code)
	}
	rec := postJSON(t, h, "/query/stream", `{"handle": `+jsonString(prep.Handle)+`}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream: %d %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "event: done") {
		t.Fatalf("stream missing done event: %s", rec.Body)
	}
}

// Per-tenant quotas bound registrations: a tenant at its limit gets 429 until
// it deletes a handle (or its plan is evicted); other tenants are unaffected
// and re-preparing a resident batch is free.
func TestPrepareQuota(t *testing.T) {
	schema, err := repro.NewSchema([]string{"age", "salary"}, []int{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	dist := repro.NewDistribution(schema)
	dist.AddTuple([]int{10, 20})
	dist.AddTuple([]int{30, 5})
	db, err := repro.NewDatabase(dist, repro.Db4)
	if err != nil {
		t.Fatal(err)
	}
	h := NewWithOptions(db, Options{Sched: sched.Config{MaxPreparedPerTenant: 1}})
	t.Cleanup(h.Close)

	const batchA = "COUNT() WHERE age <= 15"
	const batchB = "SUM(salary) WHERE age <= 20"

	pa, code := prepareBatch(t, h, batchA, "t1")
	if code != http.StatusOK {
		t.Fatalf("first prepare: %d", code)
	}
	if _, code = prepareBatch(t, h, batchB, "t1"); code != http.StatusTooManyRequests {
		t.Fatalf("over-quota prepare: %d, want 429", code)
	}
	// Re-preparing the resident batch does not consume quota.
	if again, code := prepareBatch(t, h, batchA, "t1"); code != http.StatusOK || !again.Cached {
		t.Fatalf("re-prepare resident: %d %+v", code, again)
	}
	// Another tenant has its own budget.
	if _, code = prepareBatch(t, h, batchB, "t2"); code != http.StatusOK {
		t.Fatalf("tenant t2 blocked: %d", code)
	}
	// Deleting t1's handle releases its quota.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/prepare/"+pa.Handle, nil))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", rec.Code)
	}
	if _, code = prepareBatch(t, h, batchA, "t1"); code != http.StatusOK {
		t.Fatalf("prepare after delete: %d", code)
	}
}

func statsOf(t *testing.T, h *Handler) StatsResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// /stats surfaces the prepared tier: registry counters plus the execute mix.
func TestStatsPreparedSection(t *testing.T) {
	h, _, _ := testHandler(t)
	const stmts = "COUNT() WHERE age <= 15"
	prep, code := prepareBatch(t, h, stmts, "alice")
	if code != http.StatusOK {
		t.Fatalf("prepare: %d", code)
	}
	for i := 0; i < 3; i++ {
		if rec := postQuery(t, h, `{"handle": `+jsonString(prep.Handle)+`}`); rec.Code != http.StatusOK {
			t.Fatalf("handle exec %d: %d", i, rec.Code)
		}
	}
	for i := 0; i < 2; i++ {
		if rec := postQuery(t, h, `{"statements": `+jsonString(stmts)+`}`); rec.Code != http.StatusOK {
			t.Fatalf("inline exec %d: %d", i, rec.Code)
		}
	}
	st := statsOf(t, h).Prepared
	if st.Plans != 1 || st.Capacity != repro.DefaultPlanCacheCapacity {
		t.Fatalf("registry shape: %+v", st)
	}
	if st.PreparedExecutes != 3 || st.AdhocExecutes != 2 {
		t.Fatalf("execute mix: %+v", st)
	}
	// Prepare missed once (first registration); both inline executes hit.
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("hit accounting: %+v", st)
	}
	if st.Tenants != 1 {
		t.Fatalf("tenants: %+v", st)
	}
}
