package server

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/sched"
)

// faultHandler is bigHandler with a fault injector (and optionally a retry
// layer) wrapped around the store before the server is built — the layering
// the facade documents: faults innermost, retries above them, the server's
// concurrency + coalescing outermost.
func faultHandler(t *testing.T, cfg repro.FaultConfig, retry *repro.RetryConfig) (*Handler, []float64) {
	t.Helper()
	schema, err := repro.NewSchema([]string{"age", "salary"}, []int{256, 256})
	if err != nil {
		t.Fatal(err)
	}
	dist := repro.NewDistribution(schema)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		dist.AddTuple([]int{rng.Intn(256), rng.Intn(256)})
	}
	db, err := repro.NewDatabase(dist, repro.Db4)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := repro.ParseBatch(schema, bigStatements)
	if err != nil {
		t.Fatal(err)
	}
	truth := batch.EvaluateDirect(dist)
	db.InjectFaults(cfg)
	if retry != nil {
		db.EnableRetries(*retry)
	}
	h := NewWithConfig(db, sched.Config{Slice: 16, Workers: 2})
	t.Cleanup(h.Close)
	return h, truth
}

func TestQueryDegradedReturns206(t *testing.T) {
	h, truth := faultHandler(t, repro.FaultConfig{ErrorRate: 0.2, Seed: 13}, nil)
	rec := postQuery(t, h, fmt.Sprintf(`{"statements": %q}`, bigStatements))
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("status %d, want 206: %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Exact {
		t.Fatal("degraded response marked exact")
	}
	if !resp.Degraded || resp.Skipped == 0 {
		t.Fatalf("degradation not reported: %+v", resp)
	}
	if resp.Retrieved != resp.Distinct {
		t.Fatalf("degraded run did not drain: retrieved %d of %d", resp.Retrieved, resp.Distinct)
	}
	r := resp.Results[0]
	if r.Bound == nil {
		t.Fatal("degraded response missing error bound")
	}
	// Theorem 1 over the wire: the reported bound must dominate the actual
	// error of the degraded estimate (modulo the synopsis's own fp tolerance).
	if actual := math.Abs(r.Estimate - truth[0]); actual > *r.Bound+1e-6*(1+math.Abs(truth[0])) {
		t.Fatalf("actual error %g exceeds served bound %g", actual, *r.Bound)
	}
}

func TestQueryZeroFaultInjectorStaysExact(t *testing.T) {
	h, truth := faultHandler(t, repro.FaultConfig{}, nil)
	rec := postQuery(t, h, fmt.Sprintf(`{"statements": %q}`, bigStatements))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Exact || resp.Degraded || resp.Skipped != 0 {
		t.Fatalf("zero-fault injector changed the response: %+v", resp)
	}
	if got := resp.Results[0].Estimate; math.Abs(got-truth[0]) > 1e-6*(1+math.Abs(truth[0])) {
		t.Fatalf("estimate %g want %g", got, truth[0])
	}
}

func TestQueryRetriesAbsorbTransientFaults(t *testing.T) {
	retry := repro.RetryConfig{
		MaxAttempts: 8,
		BaseDelay:   10 * time.Microsecond,
		MaxDelay:    100 * time.Microsecond,
		Seed:        1,
	}
	h, truth := faultHandler(t, repro.FaultConfig{ErrorEvery: 3}, &retry)
	rec := postQuery(t, h, fmt.Sprintf(`{"statements": %q}`, bigStatements))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 (retries should recover): %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Exact || resp.Degraded {
		t.Fatalf("transient faults leaked through the retry layer: %+v", resp)
	}
	if got := resp.Results[0].Estimate; math.Abs(got-truth[0]) > 1e-6*(1+math.Abs(truth[0])) {
		t.Fatalf("estimate %g want %g", got, truth[0])
	}
}

func TestStreamDegradedDoneEvent(t *testing.T) {
	h, _ := faultHandler(t, repro.FaultConfig{ErrorRate: 0.2, Seed: 13}, nil)
	req := httptest.NewRequest(http.MethodPost, "/query/stream",
		strings.NewReader(fmt.Sprintf(`{"statements": %q}`, bigStatements)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	frames := parseSSE(t, rec.Body.String())
	if len(frames) == 0 {
		t.Fatal("no SSE frames")
	}
	last := frames[len(frames)-1]
	if last.event != "done" {
		t.Fatalf("terminal frame is %q", last.event)
	}
	var resp QueryResponse
	if err := json.Unmarshal([]byte(last.data), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Exact || !resp.Degraded || resp.Skipped == 0 {
		t.Fatalf("done frame does not report degradation: %+v", resp)
	}
	if resp.Results[0].Bound == nil {
		t.Fatal("degraded done frame missing bound")
	}
}

func TestQueryTimeoutThroughInjectedLatency(t *testing.T) {
	// Every retrieval would stall for an hour; the request deadline must cut
	// through the injected delay and come back promptly. No retrieval
	// completes, so there is no progressive state: 503.
	h, _ := faultHandler(t, repro.FaultConfig{DelayRate: 1, Delay: time.Hour, Seed: 3}, nil)
	start := time.Now()
	rec := postQuery(t, h, fmt.Sprintf(`{"statements": %q, "timeout_ms": 30}`, bigStatements))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("timeout took %v to enforce through the injected delay", elapsed)
	}
}
