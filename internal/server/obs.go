package server

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/mvcc"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/storage/layout"
)

// Observability for the HTTP server. Handler.Observe installs the observer
// bundle centrally: it points the storage, core and sched instrumentation
// at the same registry and arms the server's own middleware — request IDs,
// per-endpoint latency and status-code counters, an in-flight gauge, SSE
// stream and degraded-response counters, structured request logs, and
// per-run bound-trajectory traces. With no observer installed ServeHTTP
// routes directly, exactly as before.

// endpoints is the fixed label set for per-endpoint metrics; unknown paths
// collapse into "other" so the metric cardinality is bounded.
var endpoints = []string{"/healthz", "/stats", "/query", "/query/stream", "/prepare", "/ingest", "other"}

// endpointLabel maps a request path to its metric label. DELETE
// /prepare/<handle> collapses into "/prepare" to keep cardinality bounded.
func endpointLabel(path string) string {
	switch path {
	case "/healthz", "/stats", "/query", "/query/stream", "/prepare", "/ingest":
		return path
	}
	if strings.HasPrefix(path, "/prepare/") {
		return "/prepare"
	}
	return "other"
}

// serverMetrics is the handler's metric bundle, built once per Observe.
type serverMetrics struct {
	reg            *obs.Registry
	requestSeconds map[string]*obs.Histogram // keyed by endpoint label
	inFlight       *obs.Gauge
	sseStreams     *obs.Gauge
	degraded       *obs.Counter
	preparedExec   *obs.Counter
	adhocExec      *obs.Counter
}

// Observe installs the observer across the whole retrieval path: the
// storage, core, and sched package instrumentation all point at
// o.Registry, and the handler's middleware starts collecting HTTP metrics,
// request-scoped logs/spans, and per-run bound traces. Pass nil to
// uninstall everything. Call before serving; the handler reads the
// installed state on every request.
func (h *Handler) Observe(o *obs.Observer) {
	var reg *obs.Registry
	if o != nil {
		reg = o.Registry
	}
	storage.Observe(reg)
	layout.Observe(reg)
	core.Observe(reg)
	sched.Observe(reg)
	dist.Observe(reg)
	mvcc.Observe(reg)
	h.obs = o
	if o != nil && h.profileRing > 0 && (o.Profiles == nil || o.Profiles.Capacity() != h.profileRing) {
		// Options.ProfileRing resizes the observer's /debug/profiles ring;
		// applied here so the depth is set before any request records into it.
		o.Profiles = obs.NewProfileSink(h.profileRing)
	}
	if reg == nil {
		h.met = nil
		return
	}
	m := &serverMetrics{
		reg:            reg,
		requestSeconds: make(map[string]*obs.Histogram, len(endpoints)),
		inFlight: reg.Gauge("wvq_http_in_flight",
			"HTTP requests currently being served."),
		sseStreams: reg.Gauge("wvq_http_sse_streams",
			"SSE progress streams currently open."),
		degraded: reg.Counter("wvq_http_degraded_total",
			"Responses served degraded (some retrievals failed permanently)."),
		preparedExec: reg.Counter("wvq_http_prepared_executes_total",
			"Query executions that resolved a prepare handle."),
		adhocExec: reg.Counter("wvq_http_adhoc_executes_total",
			"Query executions from inline statement batches."),
	}
	for _, ep := range endpoints {
		m.requestSeconds[ep] = reg.Histogram("wvq_http_request_seconds",
			"HTTP request latency by endpoint.", nil, obs.L("endpoint", ep))
	}
	h.met = m
}

// statusRecorder captures the response status code for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (s *statusRecorder) WriteHeader(code int) {
	if !s.wrote {
		s.code = code
		s.wrote = true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	if !s.wrote {
		s.code = http.StatusOK
		s.wrote = true
	}
	return s.ResponseWriter.Write(b)
}

// flushRecorder is a statusRecorder over a flushable writer: the SSE
// handler type-asserts http.Flusher, so the wrapper must preserve it.
type flushRecorder struct {
	*statusRecorder
	f http.Flusher
}

func (f *flushRecorder) Flush() { f.f.Flush() }

// recordStatus wraps w so the middleware can read the response code,
// preserving http.Flusher when the underlying writer has it.
func recordStatus(w http.ResponseWriter) (http.ResponseWriter, *statusRecorder) {
	sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
	if f, ok := w.(http.Flusher); ok {
		return &flushRecorder{statusRecorder: sr, f: f}, sr
	}
	return sr, sr
}

// serveObserved is the instrumented request path: request ID + trace + log
// threading, in-flight gauge, latency histogram, status-code counter, and
// one structured log line per request.
func (h *Handler) serveObserved(w http.ResponseWriter, r *http.Request) {
	reqID := obs.NewRequestID()
	ctx := obs.WithRequestID(r.Context(), reqID)
	ctx = obs.WithTrace(ctx, reqID, h.obs.Spans)
	log := h.obs.Logger().With("request_id", reqID)
	ctx = obs.WithLogger(ctx, log)
	r = r.WithContext(ctx)

	endpoint := endpointLabel(r.URL.Path)
	wrapped, sr := recordStatus(w)

	h.met.inFlight.Inc()
	start := time.Now()
	h.route(wrapped, r)
	elapsed := time.Since(start)
	h.met.inFlight.Dec()

	h.met.requestSeconds[endpoint].Observe(elapsed.Seconds())
	h.met.reg.Counter("wvq_http_requests_total",
		"HTTP requests by endpoint and status code.",
		obs.L("endpoint", endpoint), obs.L("code", strconv.Itoa(sr.code))).Inc()
	log.Info("request",
		"method", r.Method,
		"path", r.URL.Path,
		"status", sr.code,
		"duration_ms", float64(elapsed.Microseconds())/1000)
}
