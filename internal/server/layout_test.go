package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// layoutHandler serves a layout-backed database: the in-memory fixture is
// persisted as a .wvls layout and reopened from disk.
func layoutHandler(t *testing.T) (*Handler, []float64) {
	t.Helper()
	schema, err := repro.NewSchema([]string{"age", "salary"}, []int{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	dist := repro.NewDistribution(schema)
	dist.AddTuple([]int{10, 20})
	dist.AddTuple([]int{12, 25})
	dist.AddTuple([]int{30, 5})
	db, err := repro.NewDatabase(dist, repro.Db4)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := repro.ParseBatch(schema, "COUNT() WHERE age <= 15; SUM(salary) WHERE age <= 15")
	if err != nil {
		t.Fatal(err)
	}
	truth := batch.EvaluateDirect(dist)
	path := filepath.Join(t.TempDir(), "db.wvls")
	if err := db.SaveLayout(path, repro.LayoutOptions{HotCount: 8, BlockSize: 16}); err != nil {
		t.Fatal(err)
	}
	ldb, err := repro.OpenLayout(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ldb.Close() })
	h := New(ldb)
	t.Cleanup(h.Close)
	return h, truth
}

// TestLayoutBackedServer pins the wvqd -layout serving path: queries answer
// correctly from the on-disk layout and /stats carries the layout section
// with live tier counters.
func TestLayoutBackedServer(t *testing.T) {
	h, truth := layoutHandler(t)
	rec := postQuery(t, h, `{"statements": "COUNT() WHERE age <= 15; SUM(salary) WHERE age <= 15"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("query status %d: %s", rec.Code, rec.Body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	for i, r := range qr.Results {
		if diff := r.Estimate - truth[i]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("query %d: estimate %v, want %v", i, r.Estimate, truth[i])
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	srec := httptest.NewRecorder()
	h.ServeHTTP(srec, req)
	var stats StatsResponse
	if err := json.Unmarshal(srec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Layout == nil {
		t.Fatalf("/stats has no layout section: %s", srec.Body)
	}
	if stats.Layout.Slots == 0 || stats.Layout.HotSlots != 8 {
		t.Fatalf("layout stats = %+v", stats.Layout)
	}
	if stats.Layout.HotHits+stats.Layout.ColdHits == 0 {
		t.Fatal("query did not count any tiered hits")
	}
	if stats.Dist != nil {
		t.Fatal("layout-backed database must not report a dist section")
	}
}

// TestLayoutStatsAbsentForMemoryDB pins the omitempty contract.
func TestLayoutStatsAbsentForMemoryDB(t *testing.T) {
	h, _, _ := testHandler(t)
	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if strings.Contains(rec.Body.String(), `"layout"`) {
		t.Fatalf("/stats for an in-memory db leaked a layout section: %s", rec.Body)
	}
}
