package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro"
)

// The prepare/execute surface: POST /prepare registers a batch's plan in the
// database's prepared-plan registry and returns a stable handle (the
// canonical batch fingerprint); /query and /query/stream then execute the
// handle without paying parse or plan construction. DELETE /prepare/<handle>
// drops the registration. Per-tenant quotas (X-Tenant header; the scheduler's
// admission control) bound how many plans one client can pin at once.

// defaultTenant is charged when a client sends no X-Tenant header: every
// anonymous prepare shares one quota pool rather than escaping accounting.
const defaultTenant = "default"

// tenantOf extracts the quota tenant from the request.
func tenantOf(r *http.Request) string {
	if t := strings.TrimSpace(r.Header.Get("X-Tenant")); t != "" {
		return t
	}
	return defaultTenant
}

// PrepareRequest is the POST /prepare body.
type PrepareRequest struct {
	// Statements is a ';'-separated batch in the textual query language.
	Statements string `json:"statements"`
}

// PrepareResponse is the POST /prepare reply.
type PrepareResponse struct {
	// Handle identifies the prepared plan; pass it as "handle" to /query or
	// /query/stream. Equivalent batches (any query order, any labels) map to
	// the same handle.
	Handle string `json:"handle"`
	// Queries is the number of queries in the batch.
	Queries int `json:"queries"`
	// Distinct is the plan's distinct coefficient count (the exact budget).
	Distinct int `json:"distinct"`
	// Cached reports whether the plan was already resident.
	Cached bool `json:"cached"`
}

// prepare serves POST /prepare.
func (h *Handler) prepare(w http.ResponseWriter, r *http.Request) {
	var req PrepareRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if n := strings.Count(req.Statements, ";") + 1; n > maxStatements {
		http.Error(w, fmt.Sprintf("bad request: %d statements exceeds the limit of %d", n, maxStatements),
			http.StatusBadRequest)
		return
	}
	batch, err := repro.ParseBatch(h.db.Schema(), req.Statements)
	if err != nil {
		http.Error(w, "bad query: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(batch) > maxStatements {
		http.Error(w, fmt.Sprintf("bad request: %d queries exceeds the limit of %d", len(batch), maxStatements),
			http.StatusBadRequest)
		return
	}
	// Quota is charged only for new registrations: re-preparing a resident
	// batch is free (the registering tenant holds that charge), so the peek
	// by fingerprint comes first. Charging before Prepare keeps concurrent
	// registrations from overshooting the bound; a concurrent registration
	// that turns the charge into a hit releases it right back.
	tenant := tenantOf(r)
	_, resident := h.registry.Lookup(batch.Fingerprint())
	if !resident {
		if err := h.quotas.Acquire(tenant); err != nil {
			w.Header().Set("Retry-After", strconv.Itoa(int(h.sched.RetryAfter().Seconds())))
			http.Error(w, "quota exceeded: tenant holds too many prepared plans (DELETE /prepare/<handle> to free)",
				http.StatusTooManyRequests)
			return
		}
	}
	prep, _, hit, err := h.registry.Prepare(batch, tenant)
	if err != nil {
		if !resident {
			h.quotas.Release(tenant)
		}
		http.Error(w, "planning failed: "+err.Error(), http.StatusBadRequest)
		return
	}
	if hit && !resident {
		h.quotas.Release(tenant)
	}
	writeJSON(w, http.StatusOK, PrepareResponse{
		Handle:   prep.Fingerprint,
		Queries:  len(prep.Batch),
		Distinct: prep.Plan.DistinctCoefficients(),
		Cached:   hit,
	})
}

// unprepare serves DELETE /prepare/<handle>: the plan is dropped and the
// registering tenant's quota released (via the registry's eviction observer).
func (h *Handler) unprepare(w http.ResponseWriter, r *http.Request) {
	handle := strings.TrimPrefix(r.URL.Path, "/prepare/")
	if handle == "" {
		http.Error(w, "bad request: missing handle", http.StatusBadRequest)
		return
	}
	if !h.registry.Remove(handle) {
		http.Error(w, "unknown prepare handle: "+handle, http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
