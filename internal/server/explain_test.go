package server

// EXPLAIN ANALYZE over HTTP: ?explain=1 attaches a per-run profile to the
// response, the profile's timing components stay consistent with the run's
// wall time, a degraded distributed query attributes errors and skips to the
// dead shard, and the slow-query log records threshold-crossing requests
// into the structured log and the /debug/profiles ring without being asked.

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// checkProfileTiming asserts the internal consistency the acceptance bar
// demands: per-step rows sum to the step total, and the recorded components
// (plan build + setup + queue + steps) never exceed the run's wall time
// (small slack for clock granularity).
func checkProfileTiming(t *testing.T, p *obs.ProfileSnapshot) {
	t.Helper()
	if p.WallNanos <= 0 {
		t.Fatalf("profile wall %dns, want > 0", p.WallNanos)
	}
	if len(p.Steps) == 0 || p.StepNanos <= 0 {
		t.Fatalf("profile has %d steps, step total %dns", len(p.Steps), p.StepNanos)
	}
	var stepSum int64
	for _, s := range p.Steps {
		stepSum += s.DurNanos
	}
	if stepSum != p.StepNanos {
		t.Fatalf("step rows sum to %dns, step total %dns", stepSum, p.StepNanos)
	}
	components := p.Plan.BuildNanos + p.Plan.SetupNanos + p.Plan.QueueNanos + p.StepNanos
	if float64(components) > float64(p.WallNanos)*1.05+float64(time.Millisecond) {
		t.Fatalf("timing components %dns exceed wall %dns", components, p.WallNanos)
	}
}

func TestExplainProfileOnQuery(t *testing.T) {
	h, _, _ := testHandler(t)

	// Without explain the response carries no profile.
	rec := postQuery(t, h, `{"statements": "COUNT() WHERE age <= 15"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Profile != nil {
		t.Fatal("profile attached without ?explain=1")
	}

	// With explain the full profile rides the response.
	req := httptest.NewRequest(http.MethodPost, "/query?explain=1",
		strings.NewReader(`{"statements": "COUNT() WHERE age <= 15"}`))
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusOK {
		t.Fatalf("explain status %d: %s", rec2.Code, rec2.Body)
	}
	var eresp QueryResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &eresp); err != nil {
		t.Fatal(err)
	}
	if eresp.Profile == nil {
		t.Fatal("?explain=1 returned no profile")
	}
	p := eresp.Profile
	if p.ID == "" {
		t.Fatal("profile has no request ID")
	}
	if p.Plan.Source == "" {
		t.Fatal("profile has no plan source")
	}
	if p.Plan.Queries != 1 || p.Plan.Terms <= 0 {
		t.Fatalf("plan shape: queries=%d terms=%d", p.Plan.Queries, p.Plan.Terms)
	}
	checkProfileTiming(t, p)

	// Estimates are bit-identical with and without profiling.
	for i := range resp.Results {
		if resp.Results[i].Estimate != eresp.Results[i].Estimate {
			t.Fatalf("result %d: %g unprofiled, %g profiled", i,
				resp.Results[i].Estimate, eresp.Results[i].Estimate)
		}
	}

	// A second identical batch resolves from the plan cache and says so.
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, httptest.NewRequest(http.MethodPost, "/query?explain=1",
		strings.NewReader(`{"statements": "COUNT() WHERE age <= 15"}`)))
	var cresp QueryResponse
	if err := json.Unmarshal(rec3.Body.Bytes(), &cresp); err != nil {
		t.Fatal(err)
	}
	if cresp.Profile == nil || cresp.Profile.Plan.Source != "cache-hit" {
		t.Fatalf("repeat batch plan source: %+v", cresp.Profile)
	}

	// A malformed explain value is a client error.
	rec4 := httptest.NewRecorder()
	h.ServeHTTP(rec4, httptest.NewRequest(http.MethodPost, "/query?explain=yes-please",
		strings.NewReader(`{"statements": "COUNT() WHERE age <= 15"}`)))
	if rec4.Code != http.StatusBadRequest {
		t.Fatalf("bad explain value: status %d, want 400", rec4.Code)
	}
}

// TestExplainProfileDegradedDistributed is the acceptance scenario: a
// 4-shard distributed query with one shard dead must answer 206 and the
// ?explain=1 profile must attribute the failure — errors and degraded keys
// on the dead shard's row, traffic on the live ones — with step timings
// consistent with the run's wall time.
func TestExplainProfileDegradedDistributed(t *testing.T) {
	h, _, servers := distHandler(t)
	if err := servers[2].Close(); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/query?explain=1",
		strings.NewReader(`{"statements": "`+distStatements+`"}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("status %d, want 206: %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.Profile == nil {
		t.Fatalf("degraded=%v profile=%v", resp.Degraded, resp.Profile != nil)
	}
	p := resp.Profile
	checkProfileTiming(t, p)

	// Skips surfaced per step must cover the response's skip count.
	var skipped int
	for _, s := range p.Steps {
		skipped += s.Skipped
	}
	if skipped != resp.Skipped {
		t.Fatalf("profile steps skip %d, response skipped %d", skipped, resp.Skipped)
	}

	// Shard attribution: the dead shard's row carries the errors and the
	// degraded keys; live shards carry traffic and no errors.
	if len(p.Shards) != 4 {
		t.Fatalf("profile has %d shard rows, want 4", len(p.Shards))
	}
	for _, row := range p.Shards {
		if row.Shard == 2 {
			if row.Errors == 0 || row.Degraded == 0 {
				t.Fatalf("dead shard row unmarked: %+v", row)
			}
			continue
		}
		if row.Errors != 0 {
			t.Fatalf("live shard %d shows errors: %+v", row.Shard, row)
		}
		if row.Keys == 0 || row.Batches == 0 {
			t.Fatalf("live shard %d shows no traffic: %+v", row.Shard, row)
		}
		if row.Bytes == 0 || row.RemoteNanos == 0 {
			t.Fatalf("live shard %d missing wire attribution: %+v", row.Shard, row)
		}
	}
}

// TestSlowQueryLogAndRing arms the slow-query threshold at one nanosecond so
// every request crosses it: the query must be profiled without ?explain=1
// (no profile in the response), flagged slow, logged through the structured
// logger, retained in /debug/profiles, and counted in /stats diagnostics.
func TestSlowQueryLogAndRing(t *testing.T) {
	h, _, _ := testHandler(t)
	hs := NewWithOptions(h.db, Options{SlowQuery: time.Nanosecond, ProfileRing: 8})
	t.Cleanup(hs.Close)
	var logBuf bytes.Buffer
	o := obs.NewObserver()
	o.Log = slog.New(slog.NewTextHandler(&logBuf, nil))
	hs.Observe(o)
	t.Cleanup(func() { hs.Observe(nil) })

	rec := postQuery(t, hs, `{"statements": "COUNT() WHERE age <= 15"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Profile != nil {
		t.Fatal("slow-query profiling must not leak into the response without ?explain=1")
	}
	if !strings.Contains(logBuf.String(), "slow query") {
		t.Fatalf("no slow-query log record emitted; log: %s", logBuf.String())
	}

	// The ring retains the profile, flagged slow, at the configured depth.
	if got := o.Profiles.Capacity(); got != 8 {
		t.Fatalf("profile ring capacity %d, want 8", got)
	}
	prec := httptest.NewRecorder()
	o.ProfilesHandler().ServeHTTP(prec,
		httptest.NewRequest(http.MethodGet, "/debug/profiles?slow=1", nil))
	if prec.Code != http.StatusOK {
		t.Fatalf("/debug/profiles status %d", prec.Code)
	}
	var profs struct {
		Profiles []obs.ProfileSnapshot `json:"profiles"`
	}
	if err := json.Unmarshal(prec.Body.Bytes(), &profs); err != nil {
		t.Fatal(err)
	}
	if len(profs.Profiles) != 1 || !profs.Profiles[0].Slow {
		t.Fatalf("slow ring: %d profiles, first slow=%v",
			len(profs.Profiles), len(profs.Profiles) > 0 && profs.Profiles[0].Slow)
	}

	// /stats diagnostics reflect the threshold, the count, and the ring.
	srec := httptest.NewRecorder()
	hs.ServeHTTP(srec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats StatsResponse
	if err := json.Unmarshal(srec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	d := stats.Diagnostics
	if d.SlowQueries != 1 || d.ProfilesRetained != 1 || d.ProfileCapacity != 8 {
		t.Fatalf("diagnostics: %+v", d)
	}
}

// TestStreamEmitsProfileEvent checks the SSE surface: with ?explain=1 the
// stream ends with a terminal `profile` event after `done`, and without it
// the event is absent.
func TestStreamEmitsProfileEvent(t *testing.T) {
	h, _, _ := testHandler(t)
	req := httptest.NewRequest(http.MethodPost, "/query/stream?explain=1",
		strings.NewReader(`{"statements": "COUNT() WHERE age <= 15"}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream status %d: %s", rec.Code, rec.Body)
	}
	body := rec.Body.String()
	di := strings.Index(body, "event: done")
	pi := strings.Index(body, "event: profile")
	if di < 0 || pi < 0 || pi < di {
		t.Fatalf("stream events misordered: done@%d profile@%d\n%s", di, pi, body)
	}
	payload := body[pi:]
	payload = payload[strings.Index(payload, "data: ")+len("data: "):]
	payload = payload[:strings.Index(payload, "\n")]
	var snap obs.ProfileSnapshot
	if err := json.Unmarshal([]byte(payload), &snap); err != nil {
		t.Fatalf("profile event payload: %v\n%s", err, payload)
	}
	checkProfileTiming(t, &snap)

	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodPost, "/query/stream",
		strings.NewReader(`{"statements": "COUNT() WHERE age <= 15"}`)))
	if strings.Contains(rec2.Body.String(), "event: profile") {
		t.Fatal("unrequested profile event in stream")
	}
}
