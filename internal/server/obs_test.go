package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/storage/layout"
)

// observedHandler is testHandler with the full observer installed; the
// cleanup uninstalls the package-level instrumentation so other tests see
// the default (off) state.
func observedHandler(t *testing.T) (*Handler, *obs.Observer) {
	t.Helper()
	h, _, _ := testHandler(t)
	o := obs.NewObserver()
	h.Observe(o)
	t.Cleanup(func() { h.Observe(nil) })
	return h, o
}

func scrapeMetrics(t *testing.T, o *obs.Observer) string {
	t.Helper()
	rec := httptest.NewRecorder()
	o.MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	return rec.Body.String()
}

func TestObservedQueryExportsMetrics(t *testing.T) {
	h, o := observedHandler(t)

	rec := postQuery(t, h, `{"statements": "COUNT() WHERE age <= 15", "budget": 5}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	rec = postQuery(t, h, `{"statements": "COUNT() WHERE age <= 15"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}

	text := scrapeMetrics(t, o)
	// Every layer must contribute its families to one scrape.
	for _, want := range []string{
		`wvq_http_requests_total{endpoint="/query",code="200"} 2`,
		"# TYPE wvq_http_request_seconds histogram",
		"# TYPE wvq_sched_submitted_total counter",
		"# TYPE wvq_core_stepbatch_seconds histogram",
		"# TYPE wvq_storage_coalesce_requests_total counter",
		"# TYPE wvq_sched_queue_depth gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape missing %q:\n%s", want, text)
		}
	}

	// Counters are monotone across scrapes.
	snap1 := o.Registry.Snapshot()
	rec = postQuery(t, h, `{"statements": "COUNT() WHERE age <= 15"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	snap2 := o.Registry.Snapshot()
	for _, key := range []string{
		`wvq_http_requests_total{endpoint="/query",code="200"}`,
		"wvq_sched_submitted_total",
		"wvq_sched_completed_total",
		"wvq_core_runs_total",
	} {
		if snap2[key] < snap1[key] {
			t.Fatalf("%s went backwards: %v -> %v", key, snap1[key], snap2[key])
		}
		if snap2[key] != snap1[key]+1 {
			t.Fatalf("%s = %v after one more request (was %v)", key, snap2[key], snap1[key])
		}
	}
	if snap2["wvq_http_in_flight"] != 0 {
		t.Fatalf("in-flight gauge stuck at %v", snap2["wvq_http_in_flight"])
	}
}

func TestObservedStatsConsistentSnapshot(t *testing.T) {
	h, o := observedHandler(t)
	rec := postQuery(t, h, `{"statements": "SUM(salary) WHERE age <= 15"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("query status %d", rec.Code)
	}

	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	srec := httptest.NewRecorder()
	h.ServeHTTP(srec, req)
	if srec.Code != http.StatusOK {
		t.Fatalf("/stats status %d: %s", srec.Code, srec.Body)
	}
	var resp StatsResponse
	if err := json.Unmarshal(srec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// The old JSON shape holds, now filled from one registry snapshot.
	if resp.Scheduler.Submitted != 1 || resp.Scheduler.Completed != 1 {
		t.Fatalf("scheduler stats: %+v", resp.Scheduler)
	}
	if resp.Scheduler.Active != 0 || resp.Scheduler.Queued != 0 {
		t.Fatalf("occupancy gauges: %+v", resp.Scheduler)
	}
	if resp.Coalescing.Requests == 0 || resp.Coalescing.Fetched == 0 {
		t.Fatalf("coalescing stats: %+v", resp.Coalescing)
	}
	if resp.Coalescing.Requests != resp.Coalescing.Fetched+resp.Coalescing.Coalesced {
		t.Fatalf("coalescing identity broken: %+v", resp.Coalescing)
	}
	snap := o.Registry.Snapshot()
	if int64(snap["wvq_storage_coalesce_requests_total"]) != resp.Coalescing.Requests {
		t.Fatal("/stats and the registry disagree on coalesce requests")
	}
	if resp.Tuples == 0 || resp.Coefficients == 0 || resp.Filter == "" {
		t.Fatalf("view metadata missing: %+v", resp)
	}
}

func TestObservedRunTraceRecorded(t *testing.T) {
	h, o := observedHandler(t)
	rec := postQuery(t, h, `{"statements": "COUNT() WHERE age <= 15"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	snaps := o.Runs.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("got %d run traces", len(snaps))
	}
	tr := snaps[0]
	if !tr.Finished || !tr.Done {
		t.Fatalf("trace not closed: %+v", tr)
	}
	if tr.ID == "" || tr.Label != "COUNT() WHERE age <= 15" {
		t.Fatalf("trace identity: id=%q label=%q", tr.ID, tr.Label)
	}
	if len(tr.Points) == 0 {
		t.Fatal("no trajectory points recorded")
	}
	last := tr.Points[len(tr.Points)-1]
	if last.Bound != 0 {
		t.Fatalf("exact run trace must end at bound 0, got %g", last.Bound)
	}
	// Request spans from the middleware landed in the span sink.
	if o.Spans.Total() == 0 {
		t.Fatal("no spans recorded for the request")
	}
}

func TestUnobservedHandlerUnchanged(t *testing.T) {
	h, _, _ := testHandler(t)
	// Ensure no leftover instrumentation from other tests.
	storage.Observe(nil)
	layout.Observe(nil)
	core.Observe(nil)
	sched.Observe(nil)
	rec := postQuery(t, h, `{"statements": "COUNT() WHERE age <= 15"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	srec := httptest.NewRecorder()
	h.ServeHTTP(srec, req)
	var resp StatsResponse
	if err := json.Unmarshal(srec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Scheduler.Submitted != 1 {
		t.Fatalf("unobserved /stats scheduler: %+v", resp.Scheduler)
	}
}
