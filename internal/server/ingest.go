package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro"
)

// POST /ingest: the live-update write path. The body is either a JSON batch
// of tuple-frequency deltas or raw CSV rows (Content-Type: text/csv,
// quantized under the database's recorded windows); either way the tuples
// land as batched Apply calls and the response carries the published
// version, immediately queryable with /query?version=N. Ingest requires an
// MVCC database (wvqd -mvcc): without snapshot isolation a write racing a
// progressive drain could tear its estimates, so plain served views refuse
// with 409 and read-only views (distributed, layout) with 403.

// Ingest guardrails: one request is one published version (JSON) or a
// bounded stream of versions (CSV), not an unbounded upload.
const (
	maxIngestBytes  = 32 << 20
	maxIngestTuples = 1 << 20
	csvBatchSize    = 4096
)

// IngestTuple is one tuple-frequency delta of a JSON ingest body.
type IngestTuple struct {
	// Coords is the tuple's bin coordinate per schema attribute.
	Coords []int `json:"coords"`
	// Weight is the frequency delta: omitted or 0 means +1 (insert), -1
	// deletes one occurrence, bulk and fractional weights are legal.
	Weight float64 `json:"weight,omitempty"`
}

// IngestRequest is the POST /ingest JSON body.
type IngestRequest struct {
	Tuples []IngestTuple `json:"tuples"`
}

// IngestResponse is the POST /ingest reply.
type IngestResponse struct {
	// Version is the last version published by this request; query it
	// explicitly with /query?version=N while it stays retained.
	Version uint64 `json:"version"`
	// Applied counts tuple operations applied; Skipped counts CSV rows
	// dropped as unparsable.
	Applied int `json:"applied"`
	Skipped int `json:"skipped,omitempty"`
	// Tuples is the database's tuple count after the request.
	Tuples int64 `json:"tuples"`
}

func (h *Handler) ingest(w http.ResponseWriter, r *http.Request) {
	if !h.db.MVCCEnabled() {
		// Distinguish "cannot ever write" from "not configured for writes".
		// An empty Apply is a no-op probe: it only fails on read-only views.
		if _, err := h.db.Apply(r.Context(), nil); errors.Is(err, repro.ErrReadOnly) {
			http.Error(w, "read-only view: "+err.Error(), http.StatusForbidden)
			return
		}
		http.Error(w, "ingest requires an MVCC database (start wvqd with -mvcc)", http.StatusConflict)
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxIngestBytes)
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/csv") {
		rows, skipped, v, err := h.db.IngestCSV(r.Context(), body, csvBatchSize)
		if err != nil {
			// Batches already applied stay applied; report how far we got.
			http.Error(w, fmt.Sprintf("ingest failed after %d tuples: %v", rows, err), http.StatusBadRequest)
			return
		}
		h.ingestedTuples.Add(int64(rows))
		writeJSON(w, http.StatusOK, IngestResponse{
			Version: uint64(v), Applied: rows, Skipped: skipped, Tuples: h.db.TupleCount(),
		})
		return
	}
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req IngestRequest
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Tuples) == 0 {
		http.Error(w, "bad request: no tuples", http.StatusBadRequest)
		return
	}
	if len(req.Tuples) > maxIngestTuples {
		http.Error(w, fmt.Sprintf("bad request: batch exceeds %d tuples", maxIngestTuples), http.StatusBadRequest)
		return
	}
	batch := repro.NewWriteBatch()
	for _, t := range req.Tuples {
		weight := t.Weight
		if weight == 0 {
			weight = 1
		}
		batch.Add(t.Coords, weight)
	}
	v, err := h.db.Apply(r.Context(), batch)
	if err != nil {
		// Validation errors (wrong arity, out-of-range coordinates) are the
		// client's; nothing was applied.
		http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	h.ingestedTuples.Add(int64(batch.Len()))
	writeJSON(w, http.StatusOK, IngestResponse{
		Version: uint64(v), Applied: batch.Len(), Tuples: h.db.TupleCount(),
	})
}
