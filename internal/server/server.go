// Package server exposes a persisted wavelet database over HTTP: clients
// POST textual query batches with a retrieval budget and receive progressive
// (or exact) results with the paper's error guarantees attached. This is the
// deployment shape of the system — precompute once with wvload, serve many
// with wvqd.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro"
)

// Handler serves queries against one database. When the database's store is
// concurrent-safe (repro.StoreSharded), query requests run fully in
// parallel: every request owns its plan and run, and the sharded store
// serves the batched retrievals without a global lock. For single-threaded
// stores requests are serialized with a mutex, the original deployment
// shape.
type Handler struct {
	mu       sync.Mutex
	db       *repro.Database
	parallel bool
}

// New wraps a database in an HTTP handler.
func New(db *repro.Database) *Handler {
	return &Handler{db: db, parallel: db.ConcurrentSafe()}
}

// lock serializes requests only when the store requires it; the returned
// function undoes whatever was taken.
func (h *Handler) lock() func() {
	if h.parallel {
		return func() {}
	}
	h.mu.Lock()
	return h.mu.Unlock
}

// stepBatchSize caps how many heap entries one batched retrieval covers, so
// huge budgets do not allocate unbounded key/value scratch.
const stepBatchSize = 1024

// QueryRequest is the POST /query body.
type QueryRequest struct {
	// Statements is a ';'-separated batch in the textual query language.
	Statements string `json:"statements"`
	// Budget limits retrievals; 0 or ≥ the master list means exact.
	Budget int `json:"budget,omitempty"`
}

// QueryResult is one query's answer.
type QueryResult struct {
	Query    string  `json:"query"`
	Estimate float64 `json:"estimate"`
	// Bound is the per-query worst-case error bound (present only for
	// progressive responses).
	Bound *float64 `json:"bound,omitempty"`
}

// QueryResponse is the POST /query reply.
type QueryResponse struct {
	Exact     bool          `json:"exact"`
	Retrieved int           `json:"retrieved"`
	Distinct  int           `json:"distinct"`
	Results   []QueryResult `json:"results"`
}

// StatsResponse is the GET /stats reply.
type StatsResponse struct {
	Tuples       int64    `json:"tuples"`
	Coefficients int      `json:"coefficients"`
	Filter       string   `json:"filter"`
	Attributes   []string `json:"attributes"`
	Sizes        []int    `json:"sizes"`
	// Windows maps attribute bins back to raw units (from ingestion);
	// omitted when unknown.
	Windows    [][2]float64 `json:"windows,omitempty"`
	Retrievals int64        `json:"retrievals"`
}

// ServeHTTP implements http.Handler, routing /query, /stats and /healthz.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz" && r.Method == http.MethodGet:
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	case r.URL.Path == "/stats" && r.Method == http.MethodGet:
		h.stats(w)
	case r.URL.Path == "/query" && r.Method == http.MethodPost:
		h.query(w, r)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func (h *Handler) stats(w http.ResponseWriter) {
	unlock := h.lock()
	resp := StatsResponse{
		Tuples:       h.db.TupleCount(),
		Coefficients: h.db.NonzeroCoefficients(),
		Filter:       h.db.Filter().Name,
		Attributes:   h.db.Schema().Names,
		Sizes:        h.db.Schema().Sizes,
		Windows:      h.db.Windows(),
		Retrievals:   h.db.Retrievals(),
	}
	unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) query(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Budget < 0 {
		http.Error(w, "bad request: negative budget", http.StatusBadRequest)
		return
	}
	defer h.lock()()

	batch, err := repro.ParseBatch(h.db.Schema(), req.Statements)
	if err != nil {
		http.Error(w, "bad query: "+err.Error(), http.StatusBadRequest)
		return
	}
	plan, err := h.db.Plan(batch)
	if err != nil {
		http.Error(w, "planning failed: "+err.Error(), http.StatusBadRequest)
		return
	}
	run := h.db.NewRun(plan, repro.SSE())
	exact := req.Budget <= 0 || req.Budget >= plan.DistinctCoefficients()
	budget := req.Budget
	if exact {
		budget = plan.DistinctCoefficients()
	}
	// Advance in batched steps: each StepBatch issues one GetBatch — one
	// lock round-trip on a sharded store — while staying bit-identical to
	// stepping one retrieval at a time.
	for budget > 0 {
		n := budget
		if n > stepBatchSize {
			n = stepBatchSize
		}
		if run.StepBatch(n) == 0 {
			break
		}
		budget -= n
	}
	resp := QueryResponse{
		Exact:     run.Done(),
		Retrieved: run.Retrieved(),
		Distinct:  plan.DistinctCoefficients(),
		Results:   make([]QueryResult, len(batch)),
	}
	var mass float64
	if !run.Done() {
		mass = h.db.CoefficientMass()
	}
	for i, q := range batch {
		res := QueryResult{Query: q.Label, Estimate: run.Estimates()[i]}
		if !run.Done() {
			b := run.QueryErrorBound(i, mass)
			res.Bound = &b
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
