// Package server exposes a persisted wavelet database over HTTP: clients
// POST textual query batches with a retrieval budget and receive progressive
// (or exact) results with the paper's error guarantees attached. This is the
// deployment shape of the system — precompute once with wvload, serve many
// with wvqd.
//
// Every request executes through the internal/sched scheduler: concurrent
// batches advance in fair budget slices (one huge exact batch cannot starve
// small progressive ones), overlapping coefficient fetches coalesce into
// single store reads, and overload is rejected early with 429 + Retry-After
// instead of queueing without bound. /query answers with the final state;
// /query/stream delivers every intermediate snapshot over SSE.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Request guardrails: a statement list larger than maxStatements or a body
// beyond maxBodyBytes is client error, not capacity planning.
const (
	maxStatements = 256
	maxBodyBytes  = 1 << 20
)

// Handler serves queries against one database through a shared scheduler.
type Handler struct {
	db    *repro.Database
	sched *sched.Scheduler
	// mass caches K = Σ|Δ̂[ξ]| for error bounds; the served view is
	// immutable, so one enumeration at startup covers every request.
	mass float64
	// obs and met are installed by Observe (obs.go); both nil means the
	// handler serves uninstrumented, exactly as before.
	obs *obs.Observer
	met *serverMetrics
	// registry is the database's prepared-plan tier. Every request resolves
	// its plan here: POST /prepare registers a batch and returns a handle,
	// /query with a handle executes without touching the planner, and inline
	// batches hit the registry transparently (a repeated batch costs one
	// canonicalization, not a plan build).
	registry *repro.PlanRegistry
	// quotas bounds per-tenant prepared registrations (scheduler admission
	// control); released when a plan is evicted or removed.
	quotas *sched.Quotas
	// preparedExecs / adhocExecs count query executions by plan source;
	// ingestedTuples counts tuple operations applied through POST /ingest.
	preparedExecs, adhocExecs, ingestedTuples atomic.Int64
	// slowQuery is the slow-query log threshold (0 disables); profileRing
	// overrides the observer's /debug/profiles ring depth when positive.
	// slowQueries counts responses that crossed the threshold.
	slowQuery   time.Duration
	profileRing int
	slowQueries atomic.Int64
}

// Options configures the handler beyond scheduler sizing.
type Options struct {
	// Sched sizes the shared scheduler (zero value = defaults).
	Sched sched.Config
	// PlanCache bounds the prepared-plan registry; ≤0 selects
	// repro.DefaultPlanCacheCapacity.
	PlanCache int
	// SlowQuery enables the slow-query log: any request whose wall time
	// reaches the threshold is profiled and emitted as a structured log
	// record (and flagged in /debug/profiles). 0 disables.
	SlowQuery time.Duration
	// ProfileRing overrides the /debug/profiles ring depth (how many
	// finished profiles the observer retains); ≤0 keeps the observer's
	// default (obs.DefaultProfileCapacity).
	ProfileRing int
}

// New wraps a database in an HTTP handler with default scheduler sizing.
func New(db *repro.Database) *Handler { return NewWithConfig(db, sched.Config{}) }

// NewWithConfig wraps a database with explicit scheduler sizing and default
// prepared-plan capacity.
func NewWithConfig(db *repro.Database, cfg sched.Config) *Handler {
	return NewWithOptions(db, Options{Sched: cfg})
}

// NewWithOptions wraps a database with full handler configuration. The
// database is made safe for concurrent retrieval (EnsureConcurrent) and
// cross-run fetch coalescing is enabled, so requests execute in parallel
// whatever store the view was built on.
func NewWithOptions(db *repro.Database, opts Options) *Handler {
	db.EnsureConcurrent()
	if err := db.EnableCoalescing(); err != nil {
		// Unreachable after EnsureConcurrent; fail loudly if it ever isn't.
		panic(err)
	}
	// A store that cannot enumerate has no coefficient mass; serve without
	// error bounds rather than refuse to start.
	mass, err := db.CoefficientMass()
	if err != nil {
		mass = 0
	}
	h := &Handler{db: db, sched: sched.New(opts.Sched), mass: mass,
		slowQuery: opts.SlowQuery, profileRing: opts.ProfileRing}
	h.registry = db.EnablePreparedPlans(opts.PlanCache)
	h.quotas = h.sched.PlanQuotas()
	h.registry.OnEvict(func(_, tenant string) { h.quotas.Release(tenant) })
	return h
}

// Close drains the scheduler: pending runs are cancelled and workers
// stopped. Call after http.Server.Shutdown.
func (h *Handler) Close() { h.sched.Close() }

// QueryRequest is the POST /query and /query/stream body.
type QueryRequest struct {
	// Statements is a ';'-separated batch in the textual query language.
	Statements string `json:"statements"`
	// Handle executes a plan prepared via POST /prepare instead of an inline
	// statement list. Exactly one of Handle and Statements may be set; results
	// come back in the prepared batch's canonical query order.
	Handle string `json:"handle,omitempty"`
	// Budget limits retrievals; 0 or ≥ the master list means exact.
	Budget int `json:"budget,omitempty"`
	// Priority weights the batch's scheduler quantum: "low", "normal"
	// (default) or "high".
	Priority string `json:"priority,omitempty"`
	// TimeoutMS bounds wall-clock execution; on expiry the progressive
	// state reached so far is returned (timed_out is set).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// QueryResult is one query's answer.
type QueryResult struct {
	Query    string  `json:"query"`
	Estimate float64 `json:"estimate"`
	// Bound is the per-query worst-case error bound (present only for
	// progressive responses).
	Bound *float64 `json:"bound,omitempty"`
}

// QueryResponse is the POST /query reply (and the SSE "done" event).
type QueryResponse struct {
	Exact     bool `json:"exact"`
	Retrieved int  `json:"retrieved"`
	Distinct  int  `json:"distinct"`
	// Version is the database version the query evaluated against (present
	// only for MVCC databases; pinned for the whole request, so progressive
	// results are bit-stable under concurrent ingest).
	Version *uint64 `json:"version,omitempty"`
	// TimedOut marks a response cut short by timeout_ms: the results are
	// the progressive state reached within the deadline.
	TimedOut bool `json:"timed_out,omitempty"`
	// Degraded marks a partial result: some coefficient retrievals failed
	// permanently (Skipped of them), the estimates exclude those
	// contributions, and each result's bound covers the residual error.
	// Served with HTTP 206 on /query.
	Degraded bool `json:"degraded,omitempty"`
	// Skipped counts the coefficients that could not be retrieved.
	Skipped int           `json:"skipped,omitempty"`
	Results []QueryResult `json:"results"`
	// Profile is the EXPLAIN ANALYZE breakdown — plan source and build time,
	// queue delay, per-StepBatch timings, per-tier retrieval attribution,
	// per-shard rows and the Theorem-1 bound trajectory. Present only when
	// the request asked for it with ?explain=1.
	Profile *obs.ProfileSnapshot `json:"profile,omitempty"`
}

// StatsResponse is the GET /stats reply.
type StatsResponse struct {
	Tuples       int64    `json:"tuples"`
	Coefficients int      `json:"coefficients"`
	Filter       string   `json:"filter"`
	Attributes   []string `json:"attributes"`
	Sizes        []int    `json:"sizes"`
	// Windows maps attribute bins back to raw units (from ingestion);
	// omitted when unknown.
	Windows [][2]float64 `json:"windows,omitempty"`
	// Retrievals counts physical store fetches (coalesced fetches count
	// once however many runs share them).
	Retrievals int64 `json:"retrievals"`
	// Scheduler reports admission and slicing counters.
	Scheduler sched.Stats `json:"scheduler"`
	// Coalescing reports cross-run I/O sharing.
	Coalescing repro.CoalesceStats `json:"coalescing"`
	// Prepared reports the prepared-plan registry and the execute-path mix.
	Prepared PreparedStats `json:"prepared"`
	// Dist reports the shard fan-out when the database is distributed
	// (opened over remote shards); omitted for local databases.
	Dist *DistStats `json:"dist,omitempty"`
	// Layout reports the persistent layout store's serving tiers when the
	// database is layout-backed (wvqd -layout); omitted otherwise.
	Layout *repro.LayoutStats `json:"layout,omitempty"`
	// Mvcc reports the live-update tier (version, overlay depth, applies,
	// compactions, pins) when the database runs under MVCC (wvqd -mvcc);
	// omitted otherwise.
	Mvcc *repro.MVCCStats `json:"mvcc,omitempty"`
	// Ingested counts tuples applied through POST /ingest.
	Ingested int64 `json:"ingested,omitempty"`
	// Diagnostics reports the query-diagnostics tier: slow-query counters,
	// the /debug/profiles ring, and per-shard trace-propagation negotiation.
	Diagnostics DiagnosticsStats `json:"diagnostics"`
}

// DistStats is the /stats view of the distributed tier: one health ledger
// per shard, as tracked by the coordinator.
type DistStats struct {
	// Shards counts the shard servers fanned out to.
	Shards int `json:"shards"`
	// DegradedKeys totals the keys returned as per-key failures across all
	// shards — each one became a skipped coefficient in some run.
	DegradedKeys int64 `json:"degraded_keys"`
	// Health is the per-shard ledger: requests, keys, errors, last-seen.
	Health []repro.ShardHealth `json:"health"`
}

// DiagnosticsStats is the /stats view of the query-diagnostics tier.
type DiagnosticsStats struct {
	// SlowQueries counts responses whose wall time crossed the slow-query
	// threshold; SlowQueryThresholdMS echoes the threshold (0 = disabled).
	SlowQueries          int64 `json:"slow_queries"`
	SlowQueryThresholdMS int64 `json:"slow_query_threshold_ms,omitempty"`
	// ProfilesRetained / ProfileCapacity / ProfilesTotal describe the
	// /debug/profiles ring: current depth, bound, and lifetime additions.
	ProfilesRetained int    `json:"profiles_retained"`
	ProfileCapacity  int    `json:"profile_capacity"`
	ProfilesTotal    uint64 `json:"profiles_total"`
	// ShardWireVersions is the negotiated shard wire-protocol version per
	// shard (0 = not yet connected); ShardTracePropagation reports whether
	// that version carries trace contexts and serve-time echoes (v2+).
	// Omitted for local databases.
	ShardWireVersions     []uint16 `json:"shard_wire_versions,omitempty"`
	ShardTracePropagation []bool   `json:"shard_trace_propagation,omitempty"`
}

// PreparedStats is the /stats view of the prepared-plan tier.
type PreparedStats struct {
	repro.PlanRegistryStats
	// PreparedExecutes counts query executions that resolved a prepare handle.
	PreparedExecutes int64 `json:"prepared_executes"`
	// AdhocExecutes counts inline-batch executions (which still hit the
	// registry transparently — see Hits/Misses for the cache outcome).
	AdhocExecutes int64 `json:"adhoc_executes"`
	// Tenants counts tenants currently holding prepared-plan quota.
	Tenants int `json:"tenants"`
}

// ServeHTTP implements http.Handler, routing /query, /query/stream, /stats
// and /healthz. With an observer installed (Observe), requests pass through
// the instrumentation middleware first.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.obs != nil && h.met != nil {
		h.serveObserved(w, r)
		return
	}
	h.route(w, r)
}

// route dispatches a request to its endpoint handler.
func (h *Handler) route(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz" && r.Method == http.MethodGet:
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	case r.URL.Path == "/stats" && r.Method == http.MethodGet:
		h.stats(w)
	case r.URL.Path == "/query" && r.Method == http.MethodPost:
		h.query(w, r)
	case r.URL.Path == "/ingest" && r.Method == http.MethodPost:
		h.ingest(w, r)
	case r.URL.Path == "/query/stream" && r.Method == http.MethodPost:
		h.stream(w, r)
	case r.URL.Path == "/prepare" && r.Method == http.MethodPost:
		h.prepare(w, r)
	case strings.HasPrefix(r.URL.Path, "/prepare/") && r.Method == http.MethodDelete:
		h.unprepare(w, r)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func (h *Handler) stats(w http.ResponseWriter) {
	resp := StatsResponse{
		Tuples:       h.db.TupleCount(),
		Coefficients: h.db.NonzeroCoefficients(),
		Filter:       h.db.Filter().Name,
		Attributes:   h.db.Schema().Names,
		Sizes:        h.db.Schema().Sizes,
		Windows:      h.db.Windows(),
		Retrievals:   h.db.Retrievals(),
	}
	if h.met != nil {
		// One registry snapshot: every scheduler and coalescing number below
		// was read in a single locked pass, so the JSON is internally
		// consistent (the old path read the two stat sources at different
		// instants).
		snap := h.met.reg.Snapshot()
		resp.Scheduler = sched.Stats{
			Submitted: int64(snap["wvq_sched_submitted_total"]),
			Rejected:  int64(snap["wvq_sched_rejected_total"]),
			Completed: int64(snap["wvq_sched_completed_total"]),
			Cancelled: int64(snap["wvq_sched_cancelled_total"]),
			Slices:    int64(snap["wvq_sched_slices_total"]),
			Stepped:   int64(snap["wvq_sched_stepped_total"]),
			Active:    int(snap["wvq_sched_active_runs"]),
			Queued:    int(snap["wvq_sched_queue_depth"]),
		}
		resp.Coalescing = repro.CoalesceStats{
			Requests:  int64(snap["wvq_storage_coalesce_requests_total"]),
			Fetched:   int64(snap["wvq_storage_coalesce_fetched_total"]),
			Coalesced: int64(snap["wvq_storage_coalesce_shared_total"]),
		}
	} else {
		co, _ := h.db.CoalescingStats()
		resp.Scheduler = h.sched.Stats()
		resp.Coalescing = co
	}
	resp.Prepared = PreparedStats{
		PlanRegistryStats: h.registry.Stats(),
		PreparedExecutes:  h.preparedExecs.Load(),
		AdhocExecutes:     h.adhocExecs.Load(),
		Tenants:           h.quotas.Tenants(),
	}
	if health, ok := h.db.ShardHealth(); ok {
		ds := &DistStats{Shards: len(health), Health: health}
		for _, sh := range health {
			ds.DegradedKeys += sh.DegradedKeys
		}
		resp.Dist = ds
	}
	if ls, ok := h.db.LayoutStats(); ok {
		resp.Layout = &ls
	}
	if ms, ok := h.db.MVCCStats(); ok {
		resp.Mvcc = &ms
		resp.Ingested = h.ingestedTuples.Load()
	}
	resp.Diagnostics = DiagnosticsStats{
		SlowQueries:          h.slowQueries.Load(),
		SlowQueryThresholdMS: h.slowQuery.Milliseconds(),
	}
	if h.obs != nil && h.obs.Profiles != nil {
		resp.Diagnostics.ProfilesRetained = h.obs.Profiles.Len()
		resp.Diagnostics.ProfileCapacity = h.obs.Profiles.Capacity()
		resp.Diagnostics.ProfilesTotal = h.obs.Profiles.Total()
	}
	if vers, ok := h.db.ShardWireVersions(); ok {
		resp.Diagnostics.ShardWireVersions = vers
		tp := make([]bool, len(vers))
		for i, v := range vers {
			tp[i] = v >= 2
		}
		resp.Diagnostics.ShardTracePropagation = tp
	}
	writeJSON(w, http.StatusOK, resp)
}

// submission is a parsed, admitted request: everything both endpoints need
// to render results.
type submission struct {
	batch  repro.Batch
	plan   *repro.Plan
	ticket *sched.Ticket
	cancel context.CancelFunc
	// snap pins the MVCC version the run evaluates against (nil without
	// MVCC); version is surfaced in the response. The endpoint releases the
	// pin when the request finishes.
	snap    *repro.Snapshot
	version *uint64
	// perm maps caller query position i to the plan's result slot (nil means
	// identity). Inline batches execute on the registry's canonical-order
	// plan, so their results must be mapped back to statement order.
	perm []int
	// trace is the run's bound-trajectory trace (nil when unobserved); the
	// endpoint finishes it with the final snapshot once the ticket resolves.
	trace *obs.RunTrace
	// profile is the run's EXPLAIN ANALYZE accumulator (nil when neither
	// ?explain=1 nor a slow-query threshold enabled it); explain reports
	// whether the client asked for the profile in the response.
	profile *obs.QueryProfile
	explain bool
}

// finishTrace closes the submission's run trace with the final snapshot.
// The core already finished it if the run drained its schedule; this covers
// budget cuts, timeouts, and cancellations (first Finish wins).
func (sub *submission) finishTrace(p sched.Progress) {
	sub.trace.Finish(p.Done, p.Retrieved, p.Bound, p.Skipped)
}

// release unpins the submission's MVCC snapshot (idempotent, nil-safe).
func (sub *submission) release() {
	if sub.snap != nil {
		sub.snap.Release()
	}
}

// admit parses, validates, plans and submits a request. On any failure it
// writes the HTTP error and returns nil.
func (h *Handler) admit(w http.ResponseWriter, r *http.Request) *submission {
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return nil
	}
	if req.Budget < 0 {
		http.Error(w, "bad request: negative budget", http.StatusBadRequest)
		return nil
	}
	if req.TimeoutMS < 0 {
		http.Error(w, "bad request: negative timeout_ms", http.StatusBadRequest)
		return nil
	}
	var prio sched.Priority
	switch strings.ToLower(req.Priority) {
	case "", "normal":
		prio = sched.PriorityNormal
	case "low":
		prio = sched.PriorityLow
	case "high":
		prio = sched.PriorityHigh
	default:
		http.Error(w, "bad request: priority must be low, normal or high", http.StatusBadRequest)
		return nil
	}
	if req.Handle != "" && req.Statements != "" {
		http.Error(w, "bad request: handle and statements are mutually exclusive", http.StatusBadRequest)
		return nil
	}
	explain := false
	if v := r.URL.Query().Get("explain"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			http.Error(w, "bad request: explain must be a boolean", http.StatusBadRequest)
			return nil
		}
		explain = b
	}
	// Profiling is armed by an explicit ?explain=1 or by the slow-query
	// threshold (every request is then profiled so a slow one has its
	// breakdown ready); otherwise no clocks are read and no profile exists.
	wantProfile := explain || h.slowQuery > 0
	var planStart time.Time
	if wantProfile {
		planStart = time.Now()
	}
	var (
		batch      repro.Batch
		plan       *repro.Plan
		perm       []int
		planSource string
	)
	if req.Handle != "" {
		// Prepared execute: the plan (and its warmed schedule) is resident —
		// no parsing, no planning, no allocation on this path.
		prep, ok := h.registry.Lookup(req.Handle)
		if !ok {
			http.Error(w, "unknown prepare handle: "+req.Handle, http.StatusNotFound)
			return nil
		}
		batch, plan = prep.Batch, prep.Plan
		planSource = "registry-hit"
		h.preparedExecs.Add(1)
		if h.met != nil {
			h.met.preparedExec.Inc()
		}
	} else {
		if n := strings.Count(req.Statements, ";") + 1; n > maxStatements {
			http.Error(w, fmt.Sprintf("bad request: %d statements exceeds the limit of %d", n, maxStatements),
				http.StatusBadRequest)
			return nil
		}
		parsed, err := repro.ParseBatch(h.db.Schema(), req.Statements)
		if err != nil {
			http.Error(w, "bad query: "+err.Error(), http.StatusBadRequest)
			return nil
		}
		batch = parsed
		if len(batch) > maxStatements {
			http.Error(w, fmt.Sprintf("bad request: %d queries exceeds the limit of %d", len(batch), maxStatements),
				http.StatusBadRequest)
			return nil
		}
		// Inline batches resolve through the registry too: a repeated batch
		// (in any query order) reuses the resident plan, paying only the
		// canonicalization. The permutation maps canonical result slots back
		// to statement order.
		pp, cached, err := h.db.Prepare(batch)
		if err != nil {
			http.Error(w, "planning failed: "+err.Error(), http.StatusBadRequest)
			return nil
		}
		plan = pp.Plan()
		if cached {
			planSource = "cache-hit"
		} else {
			planSource = "built"
		}
		perm = make([]int, len(batch))
		for i := range batch {
			perm[i] = pp.CanonicalIndex(i)
		}
		h.adhocExecs.Add(1)
		if h.met != nil {
			h.met.adhocExec.Inc()
		}
	}
	budget := req.Budget
	if budget >= plan.DistinctCoefficients() {
		budget = 0 // exact
	}
	var (
		buildDur   time.Duration
		setupStart time.Time
	)
	if wantProfile {
		buildDur = time.Since(planStart)
		setupStart = time.Now()
	}
	// Under MVCC the request pins one version for its whole lifetime:
	// ?version=N pins a retained historical snapshot, otherwise the head at
	// admission. The run, its Theorem-1 mass, and the response version all
	// come from that one pinned state, so progressive results are bit-stable
	// however much ingest lands mid-drain.
	var (
		snap    *repro.Snapshot
		version *uint64
	)
	if verParam := r.URL.Query().Get("version"); verParam != "" {
		if !h.db.MVCCEnabled() {
			http.Error(w, "bad request: version queries require an MVCC database", http.StatusBadRequest)
			return nil
		}
		v, err := strconv.ParseUint(verParam, 10, 64)
		if err != nil {
			http.Error(w, "bad request: version must be a non-negative integer", http.StatusBadRequest)
			return nil
		}
		sn, err := h.db.SnapshotAt(repro.Version(v))
		if err != nil {
			if errors.Is(err, repro.ErrVersionNotRetained) {
				http.Error(w, "version not retained: "+err.Error(), http.StatusNotFound)
			} else {
				http.Error(w, "snapshot failed: "+err.Error(), http.StatusInternalServerError)
			}
			return nil
		}
		snap = sn
	} else if h.db.MVCCEnabled() {
		sn, err := h.db.Snapshot()
		if err != nil {
			http.Error(w, "snapshot failed: "+err.Error(), http.StatusInternalServerError)
			return nil
		}
		snap = sn
	}
	mass := h.mass
	if snap != nil {
		ver := uint64(snap.Version())
		version = &ver
		if m, err := snap.CoefficientMass(); err == nil {
			mass = m
		}
	}
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if req.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(r.Context(), time.Duration(req.TimeoutMS)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(r.Context())
	}
	var run *repro.Run
	if snap != nil {
		run = snap.NewRun(plan, repro.SSE())
	} else {
		run = h.db.NewRun(plan, repro.SSE())
	}
	reqID := obs.RequestID(r.Context())
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	label := req.Statements
	if req.Handle != "" {
		label = "handle:" + req.Handle
	}
	var trace *obs.RunTrace
	if h.obs != nil && h.obs.Runs != nil {
		trace = h.obs.Runs.Start(reqID, label)
		run.AttachTrace(trace, mass)
	}
	var prof *obs.QueryProfile
	if wantProfile {
		// The profile rides the submission context: the scheduler charges
		// queue delay, and every storage tier under the run's StepBatchCtx
		// (coalescing, layout, MVCC, shard coordinator and clients) records
		// its share through obs.ProfileFrom.
		prof = obs.NewQueryProfile(reqID, label)
		prof.SetPlan(planSource, buildDur, time.Since(setupStart), len(batch), plan.DistinctCoefficients())
		prof.AttachTrace(trace)
		run.AttachProfile(prof)
		ctx = obs.WithProfile(ctx, prof)
	}
	ticket, err := h.sched.Submit(ctx, sched.Job{
		Run:      run,
		Budget:   budget,
		Priority: prio,
		Mass:     mass,
	})
	if err != nil {
		cancel()
		if snap != nil {
			snap.Release()
		}
		trace.Finish(false, 0, 0, 0)
		if errors.Is(err, sched.ErrOverloaded) {
			w.Header().Set("Retry-After", strconv.Itoa(int(h.sched.RetryAfter().Seconds())))
			http.Error(w, "overloaded: run table and waiting queue full", http.StatusTooManyRequests)
		} else {
			http.Error(w, "unavailable: "+err.Error(), http.StatusServiceUnavailable)
		}
		return nil
	}
	return &submission{batch: batch, plan: plan, ticket: ticket, cancel: cancel, trace: trace, perm: perm,
		snap: snap, version: version, profile: prof, explain: explain}
}

// finishProfile closes the submission's profile: stamps the wall time,
// applies the slow-query threshold (structured log record + counter),
// records the snapshot in the observer's /debug/profiles ring, and returns
// the snapshot when the client asked for it with ?explain=1 (nil otherwise,
// and always nil for unprofiled requests).
func (h *Handler) finishProfile(ctx context.Context, sub *submission) *obs.ProfileSnapshot {
	p := sub.profile
	if p == nil {
		return nil
	}
	p.Finish()
	if h.slowQuery > 0 && p.Wall() >= h.slowQuery {
		p.MarkSlow()
	}
	snap := p.Snapshot()
	if snap.Slow {
		h.slowQueries.Add(1)
		obs.Logger(ctx).Warn("slow query",
			"label", snap.Label,
			"wall_ms", float64(snap.WallNanos)/1e6,
			"step_ms", float64(snap.StepNanos)/1e6,
			"queue_ms", float64(snap.Plan.QueueNanos)/1e6,
			"plan_source", snap.Plan.Source,
			"steps", len(snap.Steps),
			"shards", len(snap.Shards),
			"threshold_ms", h.slowQuery.Milliseconds())
	}
	if h.obs != nil {
		h.obs.Profiles.Add(snap)
	}
	if sub.explain {
		return &snap
	}
	return nil
}

// response renders a progress snapshot in the /query wire shape.
func (sub *submission) response(p sched.Progress, timedOut bool) QueryResponse {
	resp := QueryResponse{
		Exact:     p.Done && !p.Degraded,
		Retrieved: p.Retrieved,
		Distinct:  sub.plan.DistinctCoefficients(),
		Version:   sub.version,
		TimedOut:  timedOut,
		Degraded:  p.Degraded,
		Skipped:   p.Skipped,
		Results:   make([]QueryResult, len(sub.batch)),
	}
	for i, q := range sub.batch {
		slot := i
		if sub.perm != nil {
			slot = sub.perm[i]
		}
		res := QueryResult{Query: q.Label, Estimate: p.Estimates[slot]}
		if !resp.Exact && p.Bounds != nil {
			b := p.Bounds[slot]
			res.Bound = &b
		}
		resp.Results[i] = res
	}
	return resp
}

func (h *Handler) query(w http.ResponseWriter, r *http.Request) {
	sub := h.admit(w, r)
	if sub == nil {
		return
	}
	defer sub.cancel()
	defer sub.release()
	final, err := sub.ticket.Final()
	sub.finishTrace(final)
	profSnap := h.finishProfile(r.Context(), sub)
	// A degraded result is a partial answer with bounds: 206, not 200.
	status := http.StatusOK
	if final.Degraded {
		status = http.StatusPartialContent
		if h.met != nil {
			h.met.degraded.Inc()
		}
	}
	switch {
	case err == nil:
		resp := sub.response(final, false)
		resp.Profile = profSnap
		writeJSON(w, status, resp)
	case errors.Is(err, context.DeadlineExceeded) && final.Retrieved > 0:
		// The latency budget expired: the progressive state reached is still
		// a valid answer with bounds — exactly what progressiveness buys.
		resp := sub.response(final, true)
		resp.Profile = profSnap
		writeJSON(w, status, resp)
	default:
		http.Error(w, "query cancelled: "+err.Error(), http.StatusServiceUnavailable)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
