// Package server exposes a persisted wavelet database over HTTP: clients
// POST textual query batches with a retrieval budget and receive progressive
// (or exact) results with the paper's error guarantees attached. This is the
// deployment shape of the system — precompute once with wvload, serve many
// with wvqd.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro"
)

// Handler serves queries against one database. Requests are serialized with
// a mutex: the engine itself is single-threaded per run, and the underlying
// store counters are not concurrent. (Throughput-oriented deployments would
// shard databases per worker.)
type Handler struct {
	mu sync.Mutex
	db *repro.Database
}

// New wraps a database in an HTTP handler.
func New(db *repro.Database) *Handler { return &Handler{db: db} }

// QueryRequest is the POST /query body.
type QueryRequest struct {
	// Statements is a ';'-separated batch in the textual query language.
	Statements string `json:"statements"`
	// Budget limits retrievals; 0 or ≥ the master list means exact.
	Budget int `json:"budget,omitempty"`
}

// QueryResult is one query's answer.
type QueryResult struct {
	Query    string  `json:"query"`
	Estimate float64 `json:"estimate"`
	// Bound is the per-query worst-case error bound (present only for
	// progressive responses).
	Bound *float64 `json:"bound,omitempty"`
}

// QueryResponse is the POST /query reply.
type QueryResponse struct {
	Exact     bool          `json:"exact"`
	Retrieved int           `json:"retrieved"`
	Distinct  int           `json:"distinct"`
	Results   []QueryResult `json:"results"`
}

// StatsResponse is the GET /stats reply.
type StatsResponse struct {
	Tuples       int64    `json:"tuples"`
	Coefficients int      `json:"coefficients"`
	Filter       string   `json:"filter"`
	Attributes   []string `json:"attributes"`
	Sizes        []int    `json:"sizes"`
	// Windows maps attribute bins back to raw units (from ingestion);
	// omitted when unknown.
	Windows    [][2]float64 `json:"windows,omitempty"`
	Retrievals int64        `json:"retrievals"`
}

// ServeHTTP implements http.Handler, routing /query, /stats and /healthz.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz" && r.Method == http.MethodGet:
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	case r.URL.Path == "/stats" && r.Method == http.MethodGet:
		h.stats(w)
	case r.URL.Path == "/query" && r.Method == http.MethodPost:
		h.query(w, r)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func (h *Handler) stats(w http.ResponseWriter) {
	h.mu.Lock()
	resp := StatsResponse{
		Tuples:       h.db.TupleCount(),
		Coefficients: h.db.NonzeroCoefficients(),
		Filter:       h.db.Filter().Name,
		Attributes:   h.db.Schema().Names,
		Sizes:        h.db.Schema().Sizes,
		Windows:      h.db.Windows(),
		Retrievals:   h.db.Retrievals(),
	}
	h.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) query(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Budget < 0 {
		http.Error(w, "bad request: negative budget", http.StatusBadRequest)
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()

	batch, err := repro.ParseBatch(h.db.Schema(), req.Statements)
	if err != nil {
		http.Error(w, "bad query: "+err.Error(), http.StatusBadRequest)
		return
	}
	plan, err := h.db.Plan(batch)
	if err != nil {
		http.Error(w, "planning failed: "+err.Error(), http.StatusBadRequest)
		return
	}
	run := h.db.NewRun(plan, repro.SSE())
	exact := req.Budget <= 0 || req.Budget >= plan.DistinctCoefficients()
	if exact {
		run.RunToCompletion()
	} else {
		run.StepN(req.Budget)
	}
	resp := QueryResponse{
		Exact:     run.Done(),
		Retrieved: run.Retrieved(),
		Distinct:  plan.DistinctCoefficients(),
		Results:   make([]QueryResult, len(batch)),
	}
	var mass float64
	if !run.Done() {
		mass = h.db.CoefficientMass()
	}
	for i, q := range batch {
		res := QueryResult{Query: q.Label, Estimate: run.Estimates()[i]}
		if !run.Done() {
			b := run.QueryErrorBound(i, mass)
			res.Bound = &b
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
