package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
)

// mvccHandler builds a handler over an MVCC-enabled database with recorded
// quantization windows, ready for both JSON and CSV ingest.
func mvccHandler(t *testing.T) (*Handler, *repro.Database) {
	t.Helper()
	schema, err := repro.NewSchema([]string{"age", "salary"}, []int{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	dist := repro.NewDistribution(schema)
	dist.AddTuple([]int{10, 20})
	dist.AddTuple([]int{12, 25})
	db, err := repro.NewDatabase(dist, repro.Db4)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnableMVCC(repro.MVCCConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := db.SetWindows([][2]float64{{0, 32}, {0, 32}}); err != nil {
		t.Fatal(err)
	}
	h := New(db)
	t.Cleanup(h.Close)
	return h, db
}

func postIngest(t *testing.T, h *Handler, contentType, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestIngestJSON(t *testing.T) {
	h, db := mvccHandler(t)
	before := db.TupleCount()
	rec := postIngest(t, h, "application/json",
		`{"tuples": [{"coords": [5, 5]}, {"coords": [6, 6], "weight": 3}, {"coords": [10, 20], "weight": -1}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp IngestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Version != 1 || resp.Applied != 3 {
		t.Fatalf("response %+v, want version 1 applied 3", resp)
	}
	// +1 +3 -1 = +3 net tuples, one version for the whole batch.
	if resp.Tuples != before+3 || db.TupleCount() != before+3 {
		t.Fatalf("tuples %d (db %d), want %d", resp.Tuples, db.TupleCount(), before+3)
	}
	if db.Version() != 1 {
		t.Fatalf("db at version %d, want 1", db.Version())
	}
}

func TestIngestCSV(t *testing.T) {
	h, db := mvccHandler(t)
	before := db.TupleCount()
	csv := "age,salary\n1.0,2.0\n3.5,4.5\nnope,1\n7.0,8.0\n"
	rec := postIngest(t, h, "text/csv", csv)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp IngestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Applied != 3 || resp.Skipped != 1 {
		t.Fatalf("applied %d skipped %d, want 3 and 1", resp.Applied, resp.Skipped)
	}
	if db.TupleCount() != before+3 {
		t.Fatalf("tuple count %d, want %d", db.TupleCount(), before+3)
	}
	if resp.Version == 0 {
		t.Fatal("CSV ingest published no version")
	}
}

func TestIngestValidation(t *testing.T) {
	h, _ := mvccHandler(t)
	cases := []struct {
		name, ct, body string
	}{
		{"empty", "application/json", `{"tuples": []}`},
		{"unknown field", "application/json", `{"rows": []}`},
		{"malformed", "application/json", `{`},
		{"bad arity", "application/json", `{"tuples": [{"coords": [1]}]}`},
		{"out of range", "application/json", `{"tuples": [{"coords": [99, 0]}]}`},
	}
	for _, tc := range cases {
		if rec := postIngest(t, h, tc.ct, tc.body); rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%s)", tc.name, rec.Code, rec.Body)
		}
	}
	// Bad batches must not publish.
	var stats StatsResponse
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Mvcc == nil || stats.Mvcc.Version != 0 {
		t.Fatalf("failed ingests moved the version: %+v", stats.Mvcc)
	}
}

func TestIngestRequiresMVCC(t *testing.T) {
	h, _, _ := testHandler(t) // plain writable database, no MVCC
	rec := postIngest(t, h, "application/json", `{"tuples": [{"coords": [1, 1]}]}`)
	if rec.Code != http.StatusConflict {
		t.Fatalf("status %d, want 409 (%s)", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "-mvcc") {
		t.Fatalf("409 body should point at the -mvcc flag: %s", rec.Body)
	}
}

func TestIngestReadOnlyView(t *testing.T) {
	h, _ := layoutHandler(t)
	rec := postIngest(t, h, "application/json", `{"tuples": [{"coords": [1, 1]}]}`)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("status %d, want 403 (%s)", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "read-only") {
		t.Fatalf("403 body should say read-only: %s", rec.Body)
	}
}

func TestQueryVersionPinning(t *testing.T) {
	h, _ := mvccHandler(t)
	const stmt = `{"statements": "COUNT() WHERE age <= 31"}`

	query := func(target string) (QueryResponse, int) {
		t.Helper()
		req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(stmt))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		var resp QueryResponse
		if rec.Code == http.StatusOK {
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
		}
		return resp, rec.Code
	}

	resp, code := query("/query")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Version == nil || *resp.Version != 0 {
		t.Fatalf("version = %v, want 0", resp.Version)
	}
	count0 := resp.Results[0].Estimate

	// Publish 3 versions of one tuple each.
	for i := 0; i < 3; i++ {
		rec := postIngest(t, h, "application/json",
			fmt.Sprintf(`{"tuples": [{"coords": [%d, %d]}]}`, i+1, i+1))
		if rec.Code != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, rec.Code, rec.Body)
		}
	}

	// The head sees all three inserts; pinned version 1 sees exactly one.
	near := func(got, want float64) bool { return math.Abs(got-want) < 1e-6*(1+math.Abs(want)) }
	resp, _ = query("/query")
	if *resp.Version != 3 || !near(resp.Results[0].Estimate, count0+3) {
		t.Fatalf("head: version %d estimate %v, want 3 and ~%v", *resp.Version, resp.Results[0].Estimate, count0+3)
	}
	resp, code = query("/query?version=1")
	if code != http.StatusOK {
		t.Fatalf("pinned query status %d", code)
	}
	if *resp.Version != 1 || !near(resp.Results[0].Estimate, count0+1) {
		t.Fatalf("pinned: version %d estimate %v, want 1 and ~%v", *resp.Version, resp.Results[0].Estimate, count0+1)
	}

	if _, code = query("/query?version=99"); code != http.StatusNotFound {
		t.Fatalf("unretained version: status %d, want 404", code)
	}
	if _, code = query("/query?version=bogus"); code != http.StatusBadRequest {
		t.Fatalf("unparsable version: status %d, want 400", code)
	}
}

func TestQueryVersionRequiresMVCC(t *testing.T) {
	h, _, _ := testHandler(t)
	req := httptest.NewRequest(http.MethodPost, "/query?version=1",
		strings.NewReader(`{"statements": "COUNT() WHERE age <= 15"}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", rec.Code, rec.Body)
	}
}

func TestStatsCarriesMVCC(t *testing.T) {
	h, _ := mvccHandler(t)
	if rec := postIngest(t, h, "application/json", `{"tuples": [{"coords": [2, 2]}]}`); rec.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Mvcc == nil {
		t.Fatal("stats missing mvcc section on an MVCC database")
	}
	if resp.Mvcc.Version != 1 || resp.Mvcc.Applies != 1 {
		t.Fatalf("mvcc stats %+v, want version 1 applies 1", resp.Mvcc)
	}
	if resp.Ingested != 1 {
		t.Fatalf("ingested %d, want 1", resp.Ingested)
	}
}

// TestIngestOversizedBatch pins the request guardrails: more tuples than the
// cap is a 400, not an unbounded allocation.
func TestIngestOversizedBatch(t *testing.T) {
	h, _ := mvccHandler(t)
	var buf bytes.Buffer
	buf.WriteString(`{"tuples": [`)
	for i := 0; i <= maxIngestTuples; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(`{"coords":[1,1]}`)
	}
	buf.WriteString(`]}`)
	rec := postIngest(t, h, "application/json", buf.String())
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
}
