package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// stream serves POST /query/stream: the request executes exactly like
// /query, but every scheduler slice's snapshot is delivered as a Server-Sent
// Event while the run advances. Events:
//
//	event: progress  — intermediate estimate with per-query error bounds;
//	                   bounds tighten monotonically as retrievals grow
//	event: done      — final state (exact, or the budget/deadline cut)
//	event: error     — the run was cancelled before producing a result
//	event: profile   — terminal EXPLAIN ANALYZE snapshot (only with
//	                   ?explain=1; follows done or error)
//
// The stream is driven by the scheduler's latest-wins progress channel: a
// slow client skips intermediate snapshots instead of stalling the run.
func (h *Handler) stream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := h.admit(w, r)
	if sub == nil {
		return
	}
	defer sub.cancel()
	defer sub.release()
	if h.met != nil {
		h.met.sseStreams.Inc()
		defer h.met.sseStreams.Dec()
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		select {
		case p := <-sub.ticket.Progress():
			if p.Done {
				// The final snapshot also arrives via Done/Final below;
				// emitting it here as "progress" would duplicate it.
				continue
			}
			writeEvent(w, flusher, "progress", sub.response(p, false))
		case <-sub.ticket.Done():
			final, err := sub.ticket.Final()
			sub.finishTrace(final)
			profSnap := h.finishProfile(r.Context(), sub)
			if final.Degraded && h.met != nil {
				h.met.degraded.Inc()
			}
			switch {
			case err == nil:
				writeEvent(w, flusher, "done", sub.response(final, false))
			case errors.Is(err, context.DeadlineExceeded) && final.Retrieved > 0:
				writeEvent(w, flusher, "done", sub.response(final, true))
			default:
				writeEvent(w, flusher, "error", map[string]string{"error": err.Error()})
			}
			// ?explain=1 streams end with the profile as its own terminal
			// event, keeping the "done" payload identical to the unprofiled
			// shape.
			if profSnap != nil {
				writeEvent(w, flusher, "profile", profSnap)
			}
			return
		}
	}
}

// writeEvent emits one SSE frame and flushes it to the client.
func writeEvent(w http.ResponseWriter, flusher http.Flusher, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	flusher.Flush()
}
