package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/penalty"
	"repro/internal/sched"
)

// bigHandler builds a handler over a 256×256 view whose test query touches
// hundreds of distinct coefficients, so slice-at-a-time scheduling produces
// many progress snapshots.
func bigHandler(t *testing.T, cfg sched.Config) (*Handler, []float64) {
	t.Helper()
	schema, err := repro.NewSchema([]string{"age", "salary"}, []int{256, 256})
	if err != nil {
		t.Fatal(err)
	}
	dist := repro.NewDistribution(schema)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		dist.AddTuple([]int{rng.Intn(256), rng.Intn(256)})
	}
	db, err := repro.NewDatabase(dist, repro.Db4)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := repro.ParseBatch(schema, bigStatements)
	if err != nil {
		t.Fatal(err)
	}
	truth := batch.EvaluateDirect(dist)
	h := NewWithConfig(db, cfg)
	t.Cleanup(h.Close)
	return h, truth
}

// bigStatements touches ~465 distinct coefficients on the bigHandler view.
const bigStatements = "SUM(salary) WHERE age <= 100"

// sseFrame is one parsed SSE event.
type sseFrame struct {
	event string
	data  string
}

func parseSSE(t *testing.T, body string) []sseFrame {
	t.Helper()
	var frames []sseFrame
	for _, chunk := range strings.Split(body, "\n\n") {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" {
			continue
		}
		var f sseFrame
		for _, line := range strings.Split(chunk, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				f.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				f.data = strings.TrimPrefix(line, "data: ")
			}
		}
		if f.event == "" {
			t.Fatalf("frame without event: %q", chunk)
		}
		frames = append(frames, f)
	}
	return frames
}

// TestStreamProgressTightens drives /query/stream with a one-retrieval slice
// and checks the SSE contract: progress frames carry bounds that never widen
// as retrievals grow, and the terminal done frame is the exact answer.
func TestStreamProgressTightens(t *testing.T) {
	h, truth := bigHandler(t, sched.Config{Slice: 1})
	req := httptest.NewRequest(http.MethodPost, "/query/stream",
		strings.NewReader(fmt.Sprintf(`{"statements": %q}`, bigStatements)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	// The progress channel is latest-wins: a consumer outrun by the workers
	// skips intermediate snapshots, so the frame count is schedule-dependent.
	// At least one progress frame plus the done frame must survive.
	frames := parseSSE(t, rec.Body.String())
	if len(frames) < 2 {
		t.Fatalf("only %d frames for a %d-slice run", len(frames), 465)
	}
	lastRetrieved := -1
	lastBound := math.Inf(1)
	progress := 0
	for i, f := range frames {
		var resp QueryResponse
		if err := json.Unmarshal([]byte(f.data), &resp); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		switch f.event {
		case "progress":
			progress++
			if resp.Exact {
				t.Fatalf("frame %d: progress frame marked exact", i)
			}
			if resp.Retrieved <= lastRetrieved {
				t.Fatalf("frame %d: retrieved %d after %d", i, resp.Retrieved, lastRetrieved)
			}
			b := resp.Results[0].Bound
			if b == nil {
				t.Fatalf("frame %d: progress frame missing bound", i)
			}
			if *b > lastBound+1e-12 {
				t.Fatalf("frame %d: bound widened %g -> %g", i, lastBound, *b)
			}
			lastRetrieved, lastBound = resp.Retrieved, *b
		case "done":
			if i != len(frames)-1 {
				t.Fatalf("done frame %d is not terminal (%d frames)", i, len(frames))
			}
			if !resp.Exact || resp.Retrieved != resp.Distinct {
				t.Fatalf("done frame not exact: %+v", resp)
			}
			if got := resp.Results[0].Estimate; math.Abs(got-truth[0]) > 1e-6*(1+math.Abs(truth[0])) {
				t.Fatalf("done estimate %g want %g", got, truth[0])
			}
		default:
			t.Fatalf("frame %d: unexpected event %q: %s", i, f.event, f.data)
		}
	}
	if progress == 0 {
		t.Fatal("no progress frames before done")
	}
}

// TestStreamBudgetStopsEarly checks a budgeted stream terminates at the
// budget with bounds still attached.
func TestStreamBudgetStopsEarly(t *testing.T) {
	h, truth := bigHandler(t, sched.Config{Slice: 4})
	req := httptest.NewRequest(http.MethodPost, "/query/stream",
		strings.NewReader(fmt.Sprintf(`{"statements": %q, "budget": 20, "priority": "high"}`, bigStatements)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	frames := parseSSE(t, rec.Body.String())
	last := frames[len(frames)-1]
	if last.event != "done" {
		t.Fatalf("terminal frame is %q", last.event)
	}
	var resp QueryResponse
	if err := json.Unmarshal([]byte(last.data), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Exact || resp.Retrieved != 20 {
		t.Fatalf("budgeted stream ended at %+v", resp)
	}
	r := resp.Results[0]
	if r.Bound == nil {
		t.Fatal("budgeted done frame missing bound")
	}
	if actual := math.Abs(r.Estimate - truth[0]); actual > *r.Bound+1e-9 {
		t.Fatalf("actual error %g exceeds bound %g", actual, *r.Bound)
	}
}

// blockedStore parks every Get on a gate channel, pinning a scheduler worker
// until the test releases it.
type blockedStore struct {
	gate chan struct{}
	once sync.Once
}

func (s *blockedStore) release()          { s.once.Do(func() { close(s.gate) }) }
func (s *blockedStore) Get(int) float64   { <-s.gate; return 0 }
func (s *blockedStore) Retrievals() int64 { return 0 }
func (s *blockedStore) ResetStats()       {}
func (s *blockedStore) NonzeroCount() int { return 0 }
func (s *blockedStore) ConcurrentSafe()   {}

// fillScheduler occupies the handler's run table and waiting queue with runs
// whose store blocks, so the next HTTP request is deterministically rejected.
func fillScheduler(t *testing.T, h *Handler, n int) *blockedStore {
	t.Helper()
	batch, err := repro.ParseBatch(h.db.Schema(), "COUNT() WHERE age <= 15")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := h.db.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	gate := &blockedStore{gate: make(chan struct{})}
	t.Cleanup(gate.release)
	for i := 0; i < n; i++ {
		if _, err := h.sched.Submit(context.Background(),
			sched.Job{Run: core.NewRun(plan, penalty.SSE{}, gate)}); err != nil {
			t.Fatalf("filler %d: %v", i, err)
		}
	}
	return gate
}

// TestOverloadRejectsWith429 fills a 1-active/1-queued scheduler and checks
// both endpoints shed load with 429 + Retry-After instead of queueing.
func TestOverloadRejectsWith429(t *testing.T) {
	h := overloadHandler(t)
	fillScheduler(t, h, 2)
	for _, path := range []string{"/query", "/query/stream"} {
		req := httptest.NewRequest(http.MethodPost, path,
			strings.NewReader(`{"statements": "COUNT() WHERE age <= 15"}`))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("%s: status %d, want 429: %s", path, rec.Code, rec.Body)
		}
		if ra := rec.Header().Get("Retry-After"); ra != "1" {
			t.Fatalf("%s: Retry-After %q", path, ra)
		}
	}
	st := h.sched.Stats()
	if st.Rejected < 2 {
		t.Fatalf("rejected counter = %d", st.Rejected)
	}
}

// TestDeadlineWithoutProgressIs503 pins the only worker on a blocked run, so
// a timed request is cancelled having retrieved nothing — a 503, since there
// is no progressive state to return.
func TestDeadlineWithoutProgressIs503(t *testing.T) {
	h := overloadHandler(t)
	fillScheduler(t, h, 1)
	rec := postQuery(t, h, `{"statements": "COUNT() WHERE age <= 15", "timeout_ms": 30}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body)
	}
}

// overloadHandler is the tiny fixture with a deliberately cramped scheduler:
// one active slot, one queue slot, one worker.
func overloadHandler(t *testing.T) *Handler {
	t.Helper()
	schema, err := repro.NewSchema([]string{"age", "salary"}, []int{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	dist := repro.NewDistribution(schema)
	dist.AddTuple([]int{10, 20})
	db, err := repro.NewDatabase(dist, repro.Db4)
	if err != nil {
		t.Fatal(err)
	}
	h := NewWithConfig(db, sched.Config{MaxActive: 1, MaxQueued: 1, Workers: 1})
	t.Cleanup(h.Close)
	return h
}

// TestRequestValidation covers the request-shape error paths added with the
// scheduler: oversized statement lists, bad priority, negative timeout and
// an oversized body.
func TestRequestValidation(t *testing.T) {
	h, _, _ := testHandler(t)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"oversized statement list", `{"statements": "` + strings.Repeat("COUNT();", maxStatements) + `COUNT()"}`, http.StatusBadRequest},
		{"bad priority", `{"statements": "COUNT()", "priority": "urgent"}`, http.StatusBadRequest},
		{"negative timeout", `{"statements": "COUNT()", "timeout_ms": -5}`, http.StatusBadRequest},
		{"oversized body", `{"statements": "` + strings.Repeat(" ", maxBodyBytes) + `"}`, http.StatusBadRequest},
		{"good priority", `{"statements": "COUNT()", "priority": "LOW"}`, http.StatusOK},
	}
	for _, c := range cases {
		rec := postQuery(t, h, c.body)
		if rec.Code != c.want {
			t.Errorf("%s: status %d, want %d: %s", c.name, rec.Code, c.want, rec.Body)
		}
	}
}

// TestStatsExposeSchedulerAndCoalescing checks /stats reports the new
// subsystem counters after traffic has flowed.
func TestStatsExposeSchedulerAndCoalescing(t *testing.T) {
	h, _, _ := testHandler(t)
	for i := 0; i < 3; i++ {
		if rec := postQuery(t, h, `{"statements": "COUNT() WHERE age <= 15"}`); rec.Code != http.StatusOK {
			t.Fatalf("query %d: %d", i, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Scheduler.Submitted < 3 || stats.Scheduler.Completed < 3 {
		t.Fatalf("scheduler counters = %+v", stats.Scheduler)
	}
	if stats.Coalescing.Requests == 0 {
		t.Fatalf("coalescing counters = %+v", stats.Coalescing)
	}
	if stats.Coalescing.Requests != stats.Coalescing.Fetched+stats.Coalescing.Coalesced {
		t.Fatalf("coalescing counters do not balance: %+v", stats.Coalescing)
	}
}

// TestConcurrentMixedEndpoints runs real HTTP traffic — buffered /query and
// streamed /query/stream interleaved from many clients — against one
// handler. Under -race this is the end-to-end check that scheduler, store
// coalescing and SSE delivery share state safely.
func TestConcurrentMixedEndpoints(t *testing.T) {
	h, truth := bigHandler(t, sched.Config{Slice: 16, Workers: 4})
	srv := httptest.NewServer(h)
	defer srv.Close()

	check := func(est float64) error {
		if math.Abs(est-truth[0]) > 1e-6*(1+math.Abs(truth[0])) {
			return fmt.Errorf("estimate %g want %g", est, truth[0])
		}
		return nil
	}
	body := fmt.Sprintf(`{"statements": %q}`, bigStatements)
	const clients = 6
	errc := make(chan error, clients)
	for w := 0; w < clients; w++ {
		streaming := w%2 == 0
		go func() {
			for i := 0; i < 4; i++ {
				if streaming {
					resp, err := http.Post(srv.URL+"/query/stream", "application/json", strings.NewReader(body))
					if err != nil {
						errc <- err
						return
					}
					final, err := lastDoneFrame(resp.Body)
					resp.Body.Close()
					if err != nil {
						errc <- err
						return
					}
					if err := check(final.Results[0].Estimate); err != nil {
						errc <- err
						return
					}
				} else {
					resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(body))
					if err != nil {
						errc <- err
						return
					}
					var qr QueryResponse
					err = json.NewDecoder(resp.Body).Decode(&qr)
					resp.Body.Close()
					if err != nil {
						errc <- err
						return
					}
					if !qr.Exact {
						errc <- fmt.Errorf("expected exact, got %+v", qr)
						return
					}
					if err := check(qr.Results[0].Estimate); err != nil {
						errc <- err
						return
					}
				}
			}
			errc <- nil
		}()
	}
	for w := 0; w < clients; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	st := h.sched.Stats()
	if st.Completed < clients*4 {
		t.Fatalf("completed = %d, want >= %d", st.Completed, clients*4)
	}
}

// lastDoneFrame reads an SSE stream to EOF and decodes the terminal done
// event.
func lastDoneFrame(r io.Reader) (QueryResponse, error) {
	var (
		resp  QueryResponse
		event string
		found bool
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "done":
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &resp); err != nil {
				return resp, err
			}
			found = true
		}
	}
	if err := sc.Err(); err != nil {
		return resp, err
	}
	if !found {
		return resp, fmt.Errorf("stream ended without a done event")
	}
	return resp, nil
}
