package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
)

func testHandler(t *testing.T) (*Handler, *repro.Database, []float64) {
	t.Helper()
	schema, err := repro.NewSchema([]string{"age", "salary"}, []int{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	dist := repro.NewDistribution(schema)
	dist.AddTuple([]int{10, 20})
	dist.AddTuple([]int{12, 25})
	dist.AddTuple([]int{30, 5})
	db, err := repro.NewDatabase(dist, repro.Db4)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := repro.ParseBatch(schema, "COUNT() WHERE age <= 15; SUM(salary) WHERE age <= 15")
	if err != nil {
		t.Fatal(err)
	}
	truth := batch.EvaluateDirect(dist)
	h := New(db)
	t.Cleanup(h.Close)
	return h, db, truth
}

func postQuery(t *testing.T, h *Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestQueryExact(t *testing.T) {
	h, _, truth := testHandler(t)
	rec := postQuery(t, h, `{"statements": "COUNT() WHERE age <= 15; SUM(salary) WHERE age <= 15"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Exact {
		t.Fatal("expected exact response")
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	for i, r := range resp.Results {
		if math.Abs(r.Estimate-truth[i]) > 1e-6*(1+math.Abs(truth[i])) {
			t.Fatalf("result %d: %g want %g", i, r.Estimate, truth[i])
		}
		if r.Bound != nil {
			t.Fatal("exact responses must not carry bounds")
		}
	}
	if resp.Retrieved != resp.Distinct {
		t.Fatalf("retrieved %d != distinct %d", resp.Retrieved, resp.Distinct)
	}
}

func TestQueryProgressiveCarriesBounds(t *testing.T) {
	h, _, truth := testHandler(t)
	rec := postQuery(t, h, `{"statements": "SUM(salary) WHERE age <= 15", "budget": 3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Exact || resp.Retrieved != 3 {
		t.Fatalf("unexpected progressive state: %+v", resp)
	}
	r := resp.Results[0]
	if r.Bound == nil {
		t.Fatal("progressive response missing bound")
	}
	if actual := math.Abs(r.Estimate - truth[1]); actual > *r.Bound+1e-9 {
		t.Fatalf("actual error %g exceeds bound %g", actual, *r.Bound)
	}
}

func TestQueryGroupBy(t *testing.T) {
	h, _, _ := testHandler(t)
	rec := postQuery(t, h, `{"statements": "COUNT() GROUP BY age(16)"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("group count = %d", len(resp.Results))
	}
	total := resp.Results[0].Estimate + resp.Results[1].Estimate
	if math.Abs(total-3) > 1e-6 {
		t.Fatalf("group totals = %g", total)
	}
}

func TestQueryErrors(t *testing.T) {
	h, _, _ := testHandler(t)
	cases := []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"statements": "FROB()"}`, http.StatusBadRequest},
		{`{"statements": ""}`, http.StatusBadRequest},
		{`{"statements": "COUNT()", "budget": -1}`, http.StatusBadRequest},
		{`{"statements": "COUNT()", "bogus": 1}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec := postQuery(t, h, c.body)
		if rec.Code != c.want {
			t.Errorf("%q: status %d, want %d", c.body, rec.Code, c.want)
		}
	}
}

func TestStatsAndHealth(t *testing.T) {
	h, db, _ := testHandler(t)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Tuples != db.TupleCount() || stats.Filter != "Db4" {
		t.Fatalf("stats = %+v", stats)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !bytes.Contains(rec.Body.Bytes(), []byte("ok")) {
		t.Fatal("healthz failed")
	}
}

func TestRouting(t *testing.T) {
	h, _, _ := testHandler(t)
	cases := []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/query", http.StatusNotFound},
		{http.MethodPost, "/stats", http.StatusNotFound},
		{http.MethodGet, "/nope", http.StatusNotFound},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(c.method, c.path, nil))
		if rec.Code != c.want {
			t.Errorf("%s %s: %d, want %d", c.method, c.path, rec.Code, c.want)
		}
	}
}

func TestConcurrentRequests(t *testing.T) {
	h, _, truth := testHandler(t)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 20; i++ {
				rec := postQuery(t, h, `{"statements": "SUM(salary) WHERE age <= 15"}`)
				if rec.Code != http.StatusOK {
					done <- errFromBody(rec)
					return
				}
				var resp QueryResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					done <- err
					return
				}
				if math.Abs(resp.Results[0].Estimate-truth[1]) > 1e-6*(1+truth[1]) {
					done <- errFromBody(rec)
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func errFromBody(rec *httptest.ResponseRecorder) error {
	return &bodyError{rec.Body.String()}
}

type bodyError struct{ s string }

func (e *bodyError) Error() string { return e.s }
