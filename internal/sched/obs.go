package sched

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Observability for the scheduler. Observe installs a metrics bundle into a
// package-level atomic pointer; the scheduler mirrors its counters into it
// as they change and keeps the occupancy gauges (run table, waiting queue)
// in sync under its own lock. With no registry observed every site is one
// atomic load plus a branch.

// schedMetrics is the package's metric bundle, built once per Observe.
type schedMetrics struct {
	submitted    *obs.Counter
	rejected     *obs.Counter
	completed    *obs.Counter
	cancelled    *obs.Counter
	slices       *obs.Counter
	stepped      *obs.Counter
	queueDepth   *obs.Gauge
	activeRuns   *obs.Gauge
	sliceSeconds *obs.Histogram
}

var scMetrics atomic.Pointer[schedMetrics]

// Observe points the scheduler's instrumentation at reg. Pass nil to
// uninstall (the default state).
func Observe(reg *obs.Registry) {
	if reg == nil {
		scMetrics.Store(nil)
		return
	}
	scMetrics.Store(&schedMetrics{
		submitted: reg.Counter("wvq_sched_submitted_total",
			"Jobs admitted into the run table or waiting queue."),
		rejected: reg.Counter("wvq_sched_rejected_total",
			"Jobs rejected by admission control (table and queue full)."),
		completed: reg.Counter("wvq_sched_completed_total",
			"Runs that finished normally (exact or budget reached)."),
		cancelled: reg.Counter("wvq_sched_cancelled_total",
			"Runs finished by context cancellation or deadline."),
		slices: reg.Counter("wvq_sched_slices_total",
			"Scheduling turns executed."),
		stepped: reg.Counter("wvq_sched_stepped_total",
			"Retrievals performed across all slices."),
		queueDepth: reg.Gauge("wvq_sched_queue_depth",
			"Jobs waiting in the admission queue."),
		activeRuns: reg.Gauge("wvq_sched_active_runs",
			"Runs currently in the round-robin run table."),
		sliceSeconds: reg.Histogram("wvq_sched_slice_seconds",
			"Latency of individual scheduling slices (one StepBatch quantum).", nil),
	})
}

// scObs returns the installed bundle, or nil when observation is off.
func scObs() *schedMetrics { return scMetrics.Load() }

// syncGaugesLocked publishes the instantaneous run-table and queue
// occupancy. Called wherever ring or queue membership changes, under s.mu.
func (s *Scheduler) syncGaugesLocked() {
	if m := scObs(); m != nil {
		m.activeRuns.Set(int64(len(s.ring)))
		m.queueDepth.Set(int64(len(s.queue)))
	}
}
