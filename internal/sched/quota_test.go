package sched

import (
	"errors"
	"sync"
	"testing"
)

func TestQuotasAcquireRelease(t *testing.T) {
	q := NewQuotas(2)
	if err := q.Acquire("a"); err != nil {
		t.Fatal(err)
	}
	if err := q.Acquire("a"); err != nil {
		t.Fatal(err)
	}
	if err := q.Acquire("a"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third acquire: got %v", err)
	}
	// Other tenants are independent.
	if err := q.Acquire("b"); err != nil {
		t.Fatalf("tenant b blocked by tenant a: %v", err)
	}
	q.Release("a")
	if err := q.Acquire("a"); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	if q.Count("a") != 2 || q.Count("b") != 1 {
		t.Fatalf("counts a=%d b=%d", q.Count("a"), q.Count("b"))
	}
}

func TestQuotasReleaseClampsAtZero(t *testing.T) {
	q := NewQuotas(1)
	q.Release("ghost") // never acquired: no-op
	if q.Count("ghost") != 0 {
		t.Fatalf("release created a negative holding")
	}
	if err := q.Acquire("ghost"); err != nil {
		t.Fatal(err)
	}
	q.Release("ghost")
	q.Release("ghost") // over-release: still clamped
	if q.Count("ghost") != 0 || q.Tenants() != 0 {
		t.Fatalf("over-release corrupted the ledger")
	}
}

func TestQuotasUnlimitedAndAnonymous(t *testing.T) {
	q := NewQuotas(0) // disabled
	for i := 0; i < 100; i++ {
		if err := q.Acquire("t"); err != nil {
			t.Fatal(err)
		}
	}
	bounded := NewQuotas(1)
	// The anonymous tenant is never charged (inline batches).
	if err := bounded.Acquire(""); err != nil {
		t.Fatal(err)
	}
	if err := bounded.Acquire(""); err != nil {
		t.Fatal(err)
	}
	if bounded.Tenants() != 0 {
		t.Fatalf("anonymous acquisitions were tracked")
	}
}

func TestQuotasConcurrent(t *testing.T) {
	q := NewQuotas(50)
	var wg sync.WaitGroup
	acquired := make([]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if q.Acquire("shared") == nil {
					acquired[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range acquired {
		total += n
	}
	if total != 50 || q.Count("shared") != 50 {
		t.Fatalf("acquired %d (count %d), want exactly the limit 50", total, q.Count("shared"))
	}
}

func TestSchedulerCarriesQuotas(t *testing.T) {
	s := New(Config{Workers: 1, MaxPreparedPerTenant: 3})
	defer s.Close()
	q := s.PlanQuotas()
	if q == nil || q.Limit() != 3 {
		t.Fatalf("scheduler quotas not wired: %v", q)
	}
	// Default applies when unset.
	d := New(Config{Workers: 1})
	defer d.Close()
	if d.PlanQuotas().Limit() != 32 {
		t.Fatalf("default quota limit %d, want 32", d.PlanQuotas().Limit())
	}
	// Negative disables.
	u := New(Config{Workers: 1, MaxPreparedPerTenant: -1})
	defer u.Close()
	if u.PlanQuotas().Limit() != 0 {
		t.Fatalf("negative limit should disable enforcement")
	}
}
