package sched

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/penalty"
	"repro/internal/sparse"
	"repro/internal/storage"
)

// fixture builds a deterministic batch plan and a sharded store holding a
// pseudo-random coefficient vector.
func fixture(t testing.TB, queries, coeffsPerQuery, domain int, seed int64) (*core.Plan, *storage.ShardedStore, float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vectors := make([]sparse.Vector, queries)
	for q := range vectors {
		v := sparse.New()
		for len(v) < coeffsPerQuery {
			v[rng.Intn(domain)] = rng.NormFloat64()
		}
		vectors[q] = v
	}
	plan, err := core.NewPlan(vectors, nil)
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewShardedStore(8)
	var mass float64
	for k := 0; k < domain; k++ {
		if rng.Float64() < 0.6 {
			v := rng.NormFloat64() * 10
			store.Add(k, v)
			if v < 0 {
				mass -= v
			} else {
				mass += v
			}
		}
	}
	return plan, store, mass
}

// TestScheduledMatchesUnscheduled is the determinism acceptance test: a run
// advanced by the scheduler — under any slice size, worker count, priority
// and competing load — lands on exactly the estimates an unscheduled
// Run.Step sequence produces at the same budget.
func TestScheduledMatchesUnscheduled(t *testing.T) {
	plan, store, mass := fixture(t, 12, 40, 2048, 1)
	distinct := plan.DistinctCoefficients()
	budgets := []int{1, 3, 17, distinct / 3, distinct - 1, distinct, 0} // 0 = exact
	for _, slice := range []int{1, 7, 64, 1000} {
		for _, workers := range []int{1, 4} {
			s := New(Config{Slice: slice, Workers: workers, MaxActive: 8})
			var tickets []*Ticket
			for _, b := range budgets {
				run := core.NewRun(plan, penalty.SSE{}, store)
				tk, err := s.Submit(context.Background(), Job{Run: run, Budget: b, Mass: mass})
				if err != nil {
					t.Fatal(err)
				}
				tickets = append(tickets, tk)
			}
			for i, tk := range tickets {
				got, err := tk.Final()
				if err != nil {
					t.Fatalf("slice %d workers %d budget %d: %v", slice, workers, budgets[i], err)
				}
				ref := core.NewRun(plan, penalty.SSE{}, store)
				want := budgets[i]
				if want <= 0 || want > distinct {
					want = distinct
				}
				ref.StepN(want)
				if got.Retrieved != want {
					t.Fatalf("slice %d workers %d budget %d: retrieved %d, want %d",
						slice, workers, budgets[i], got.Retrieved, want)
				}
				for q, e := range got.Estimates {
					if e != ref.Estimates()[q] {
						t.Fatalf("slice %d workers %d budget %d query %d: %g != %g",
							slice, workers, budgets[i], q, e, ref.Estimates()[q])
					}
				}
				if got.Done != ref.Done() {
					t.Fatalf("done mismatch at budget %d", budgets[i])
				}
				if !got.Done {
					wantBounds := ref.QueryErrorBounds(mass)
					for q, b := range got.Bounds {
						if b != wantBounds[q] {
							t.Fatalf("bound mismatch: %g != %g", b, wantBounds[q])
						}
					}
				}
			}
			s.Close()
		}
	}
}

// TestProgressBoundsTightenMonotonically checks the streaming contract:
// snapshots arrive in retrieval order and every per-query bound is
// non-increasing (the importance-ordered progression retires the largest
// remaining |coefficient| first).
func TestProgressBoundsTightenMonotonically(t *testing.T) {
	plan, store, mass := fixture(t, 8, 60, 4096, 2)
	s := New(Config{Slice: 16, Workers: 2})
	defer s.Close()
	run := core.NewRun(plan, penalty.SSE{}, store)
	tk, err := s.Submit(context.Background(), Job{Run: run, Mass: mass})
	if err != nil {
		t.Fatal(err)
	}
	lastRetrieved := -1
	lastBounds := make([]float64, plan.NumQueries())
	for i := range lastBounds {
		lastBounds[i] = 1e300
	}
	snapshots := 0
	for {
		select {
		case p := <-tk.Progress():
			if p.Retrieved <= lastRetrieved {
				t.Fatalf("snapshot out of order: %d after %d", p.Retrieved, lastRetrieved)
			}
			lastRetrieved = p.Retrieved
			for q, b := range p.Bounds {
				if b > lastBounds[q] {
					t.Fatalf("bound for query %d widened: %g > %g", q, b, lastBounds[q])
				}
				lastBounds[q] = b
			}
			snapshots++
		case <-tk.Done():
			// Drain any snapshot still parked in the latest-wins channel.
			select {
			case <-tk.Progress():
				snapshots++
			default:
			}
			final, err := tk.Final()
			if err != nil {
				t.Fatal(err)
			}
			if !final.Done || final.Bounds != nil {
				t.Fatalf("final snapshot not exact: %+v", final)
			}
			if snapshots == 0 {
				t.Fatal("no progress snapshots observed")
			}
			return
		}
	}
}

// TestAdmissionControl fills the run table and queue with runs blocked on a
// gated store, then checks the third tier is rejected with ErrOverloaded
// and that queued work is promoted when a slot frees.
func TestAdmissionControl(t *testing.T) {
	plan, store, _ := fixture(t, 2, 30, 1024, 3)
	gate := &gatedStore{inner: store, gate: make(chan struct{})}
	s := New(Config{MaxActive: 1, MaxQueued: 1, Slice: 8, Workers: 1, RetryAfter: 3 * time.Second})
	defer s.Close()

	submit := func() (*Ticket, error) {
		return s.Submit(context.Background(), Job{Run: core.NewRun(plan, penalty.SSE{}, gate)})
	}
	active, err := submit()
	if err != nil {
		t.Fatal(err)
	}
	gate.waitBlocked(t) // the active run is now stuck mid-slice
	queued, err := submit()
	if err != nil {
		t.Fatalf("queue slot should admit: %v", err)
	}
	if _, err := submit(); err != ErrOverloaded {
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	if st := s.Stats(); st.Rejected != 1 || st.Active != 1 || st.Queued != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if s.RetryAfter() != 3*time.Second {
		t.Fatalf("RetryAfter = %v", s.RetryAfter())
	}
	gate.release() // let everything finish
	if _, err := active.Final(); err != nil {
		t.Fatal(err)
	}
	if _, err := queued.Final(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Completed != 2 || st.Active != 0 || st.Queued != 0 {
		t.Fatalf("stats after drain = %+v", st)
	}
}

// TestCancellation covers both shapes: cancelling a queued run and
// cancelling an active one mid-progression. Both tickets complete with the
// context error and keep the progress reached.
func TestCancellation(t *testing.T) {
	plan, store, _ := fixture(t, 2, 30, 1024, 4)
	gate := &gatedStore{inner: store, gate: make(chan struct{})}
	s := New(Config{MaxActive: 1, MaxQueued: 2, Slice: 4, Workers: 1})
	defer s.Close()

	active, err := s.Submit(context.Background(), Job{Run: core.NewRun(plan, penalty.SSE{}, gate)})
	if err != nil {
		t.Fatal(err)
	}
	gate.waitBlocked(t)
	queued, err := s.Submit(context.Background(), Job{Run: core.NewRun(plan, penalty.SSE{}, gate)})
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	active.Cancel()
	gate.release()
	if _, err := active.Final(); err != context.Canceled {
		t.Fatalf("active: err = %v, want context.Canceled", err)
	}
	if p, err := queued.Final(); err != context.Canceled || p.Retrieved != 0 {
		t.Fatalf("queued: p = %+v err = %v", p, err)
	}
	if st := s.Stats(); st.Cancelled != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDeadline: a context deadline stops the run but the ticket still
// carries the partial progressive state — the latency-budget shape.
func TestDeadline(t *testing.T) {
	plan, store, mass := fixture(t, 4, 50, 4096, 5)
	slow := &sleepStore{inner: store, delay: 2 * time.Millisecond}
	s := New(Config{Slice: 8, Workers: 1})
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	tk, err := s.Submit(ctx, Job{Run: core.NewRun(plan, penalty.SSE{}, slow), Mass: mass})
	if err != nil {
		t.Fatal(err)
	}
	p, err := tk.Final()
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if p.Done {
		t.Fatal("run should not have completed inside the deadline")
	}
	if p.Retrieved == 0 || p.Bounds == nil {
		t.Fatalf("expected partial progress with bounds, got %+v", p)
	}
}

// TestFairnessUnderMixedLoad runs one huge exact batch against many small
// progressive ones on a slow store and checks the small runs finish long
// before the big one — budget slicing prevents head-of-line blocking.
func TestFairnessUnderMixedLoad(t *testing.T) {
	bigPlan, store, _ := fixture(t, 16, 120, 8192, 6)
	smallPlan, _, _ := fixture(t, 2, 10, 8192, 7)
	slow := &sleepStore{inner: store, delay: 100 * time.Microsecond}
	s := New(Config{Slice: 16, Workers: 1})
	defer s.Close()

	big, err := s.Submit(context.Background(), Job{Run: core.NewRun(bigPlan, penalty.SSE{}, slow)})
	if err != nil {
		t.Fatal(err)
	}
	const smalls = 4
	smallDone := make(chan struct{}, smalls)
	for i := 0; i < smalls; i++ {
		tk, err := s.Submit(context.Background(), Job{Run: core.NewRun(smallPlan, penalty.SSE{}, slow)})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			tk.Final()
			smallDone <- struct{}{}
		}()
	}
	for i := 0; i < smalls; i++ {
		select {
		case <-smallDone:
		case <-big.Done():
			t.Fatal("huge exact batch finished before the small progressive runs: starvation")
		}
	}
	if _, err := big.Final(); err != nil {
		t.Fatal(err)
	}
}

// TestPriorityWeights: higher priority earns proportionally larger slices.
func TestPriorityWeights(t *testing.T) {
	if PriorityLow.weight() != 1 || PriorityNormal.weight() != 2 || PriorityHigh.weight() != 4 {
		t.Fatal("unexpected priority weights")
	}
	plan, store, _ := fixture(t, 4, 80, 4096, 8)
	gate := &gatedStore{inner: store, gate: make(chan struct{})}
	s := New(Config{Slice: 10, Workers: 1, MaxActive: 4})
	defer s.Close()
	// Hold the single worker on a decoy so both measured runs start queued
	// in the table and get their first slices back-to-back.
	decoy, _ := s.Submit(context.Background(), Job{Run: core.NewRun(plan, penalty.SSE{}, gate)})
	gate.waitBlocked(t)
	hi, _ := s.Submit(context.Background(), Job{Run: core.NewRun(plan, penalty.SSE{}, store), Budget: 40, Priority: PriorityHigh})
	lo, _ := s.Submit(context.Background(), Job{Run: core.NewRun(plan, penalty.SSE{}, store), Budget: 40, Priority: PriorityLow})
	gate.release()
	hp, err := hi.Final()
	if err != nil {
		t.Fatal(err)
	}
	lp, err := lo.Final()
	if err != nil {
		t.Fatal(err)
	}
	if hp.Retrieved != 40 || lp.Retrieved != 40 {
		t.Fatalf("budgets not honored: high %d low %d", hp.Retrieved, lp.Retrieved)
	}
	decoy.Cancel()
	<-decoy.Done() // resolves either way: completed fast or cancelled
}

// TestCoalescingAcrossRuns drives two concurrent runs over the same plan
// through a coalescing store and requires cross-run fetch sharing to occur.
func TestCoalescingAcrossRuns(t *testing.T) {
	plan, store, _ := fixture(t, 8, 60, 2048, 9)
	slow := &sleepStore{inner: store, delay: 200 * time.Microsecond}
	co := storage.NewCoalescingStore(slow)
	s := New(Config{Slice: 32, Workers: 4})
	defer s.Close()
	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := s.Submit(context.Background(), Job{Run: core.NewRun(plan, penalty.SSE{}, co)})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		p, err := tk.Final()
		if err != nil {
			t.Fatal(err)
		}
		ref := core.NewRun(plan, penalty.SSE{}, store)
		ref.RunToCompletion()
		for q, e := range p.Estimates {
			if e != ref.Estimates()[q] {
				t.Fatalf("coalesced estimate differs: %g != %g", e, ref.Estimates()[q])
			}
		}
	}
	st := co.Stats()
	if st.Coalesced == 0 {
		t.Fatalf("no cross-run coalescing observed: %+v", st)
	}
	if st.Requests != st.Fetched+st.Coalesced {
		t.Fatalf("counters do not balance: %+v", st)
	}
}

// TestCloseDrains: Close cancels pending runs and returns with all workers
// stopped; Submit afterwards fails with ErrClosed.
func TestCloseDrains(t *testing.T) {
	plan, store, _ := fixture(t, 2, 30, 1024, 10)
	gate := &gatedStore{inner: store, gate: make(chan struct{})}
	s := New(Config{MaxActive: 1, MaxQueued: 4, Slice: 4, Workers: 1})
	a, err := s.Submit(context.Background(), Job{Run: core.NewRun(plan, penalty.SSE{}, gate)})
	if err != nil {
		t.Fatal(err)
	}
	gate.waitBlocked(t)
	b, err := s.Submit(context.Background(), Job{Run: core.NewRun(plan, penalty.SSE{}, gate)})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	for !s.Closed() { // hold the gate until Close has cancelled everything
		time.Sleep(time.Millisecond)
	}
	gate.release()
	<-done
	if _, err := a.Final(); err == nil {
		// The active run may legitimately finish its in-flight slice before
		// observing cancellation only if it completed; either way the ticket
		// must have resolved.
		select {
		case <-a.Done():
		default:
			t.Fatal("active ticket unresolved after Close")
		}
	}
	if _, err := b.Final(); err != context.Canceled {
		t.Fatalf("queued run after Close: %v", err)
	}
	if _, err := s.Submit(context.Background(), Job{Run: core.NewRun(plan, penalty.SSE{}, store)}); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// gatedStore blocks every retrieval until release; waitBlocked detects a
// caller stuck inside a fetch.
type gatedStore struct {
	inner   storage.Store
	gate    chan struct{}
	mu      sync.Mutex
	waiting int
}

func (g *gatedStore) enter() {
	g.mu.Lock()
	g.waiting++
	g.mu.Unlock()
	<-g.gate
	g.mu.Lock()
	g.waiting--
	g.mu.Unlock()
}

func (g *gatedStore) Get(key int) float64 {
	g.enter()
	return g.inner.Get(key)
}

func (g *gatedStore) GetBatch(keys []int, dst []float64) {
	g.enter()
	storage.BatchGet(g.inner, keys, dst)
}

func (g *gatedStore) Retrievals() int64 { return g.inner.Retrievals() }
func (g *gatedStore) ResetStats()       { g.inner.ResetStats() }
func (g *gatedStore) NonzeroCount() int { return g.inner.NonzeroCount() }
func (g *gatedStore) ConcurrentSafe()   {}

func (g *gatedStore) waitBlocked(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		g.mu.Lock()
		w := g.waiting
		g.mu.Unlock()
		if w > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no retrieval blocked on the gate")
}

func (g *gatedStore) release() { close(g.gate) }

// sleepStore adds fixed latency per fetch call — simulated I/O.
type sleepStore struct {
	inner storage.Store
	delay time.Duration
}

func (s *sleepStore) Get(key int) float64 {
	time.Sleep(s.delay)
	return s.inner.Get(key)
}

func (s *sleepStore) GetBatch(keys []int, dst []float64) {
	time.Sleep(s.delay)
	storage.BatchGet(s.inner, keys, dst)
}

func (s *sleepStore) Retrievals() int64 { return s.inner.Retrievals() }
func (s *sleepStore) ResetStats()       { s.inner.ResetStats() }
func (s *sleepStore) NonzeroCount() int { return s.inner.NonzeroCount() }
func (s *sleepStore) ConcurrentSafe()   {}
