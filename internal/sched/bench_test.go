package sched

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/penalty"
	"repro/internal/storage"
)

// The mixed workload: benchClients concurrent batches over one view, half
// run to exact and half stop at a quarter budget — the shape the scheduler
// exists for. Their plans are identical, the worst case for fairness and the
// best case for cross-run coalescing (production batches over one view
// overlap heavily on the coarse wavelet levels).
const benchClients = 16

// ioDelay is the simulated per-coefficient fetch latency of the io variants:
// the paper's cost model counts retrievals because fetches dominate when the
// synopsis pages from disk or a remote store, and only under real fetch
// latency do concurrent runs overlap enough to share I/O (a pure in-memory
// map never yields mid-fetch on one core).
const ioDelay = 2 * time.Microsecond

// slowStore charges ioDelay per coefficient fetched, batch or single.
type slowStore struct{ inner *storage.ShardedStore }

func (s *slowStore) Get(key int) float64 {
	time.Sleep(ioDelay)
	return s.inner.Get(key)
}

func (s *slowStore) GetBatch(keys []int, dst []float64) {
	time.Sleep(time.Duration(len(keys)) * ioDelay)
	s.inner.GetBatch(keys, dst)
}

func (s *slowStore) Retrievals() int64 { return s.inner.Retrievals() }
func (s *slowStore) ResetStats()       { s.inner.ResetStats() }
func (s *slowStore) NonzeroCount() int { return s.inner.NonzeroCount() }
func (s *slowStore) ConcurrentSafe()   {}

// runSequential is the PR-1 per-request path: each run executed to its
// budget in turn, stepping in 1024-retrieval batches against the shared
// store (what internal/server did before the scheduler).
func runSequential(b *testing.B, plan *core.Plan, store storage.Store, budgets []int) {
	for _, budget := range budgets {
		run := core.NewRun(plan, penalty.SSE{}, store)
		remaining := budget
		if remaining <= 0 {
			remaining = plan.DistinctCoefficients()
		}
		for !run.Done() && remaining > 0 {
			n := remaining
			if n > 1024 {
				n = 1024
			}
			stepped := run.StepBatch(n)
			if stepped == 0 {
				break
			}
			remaining -= stepped
		}
	}
}

// runScheduled pushes the whole workload through the scheduler at once.
func runScheduled(b *testing.B, s *Scheduler, plan *core.Plan, store storage.Store, budgets []int, mass float64) {
	tickets := make([]*Ticket, len(budgets))
	for c, budget := range budgets {
		tk, err := s.Submit(context.Background(), Job{
			Run:    core.NewRun(plan, penalty.SSE{}, store),
			Budget: budget,
			Mass:   mass,
		})
		if err != nil {
			b.Fatal(err)
		}
		tickets[c] = tk
	}
	for _, tk := range tickets {
		if _, err := tk.Final(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBudgets returns each client's retrieval budget (0 = exact).
func benchBudgets(distinct int) []int {
	budgets := make([]int, benchClients)
	for c := range budgets {
		if c%2 == 1 {
			budgets[c] = distinct / 4
		}
	}
	return budgets
}

// BenchmarkScheduler compares the mixed workload on the per-request path
// (sequential) against the scheduler with cross-run coalescing (mixed), over
// an in-memory map store (mem) and one with simulated fetch latency (io).
// The io/mixed variant reports physical and coalesced fetches per op.
func BenchmarkScheduler(b *testing.B) {
	plan, shards, mass := fixture(b, 12, 40, 2048, 3)
	budgets := benchBudgets(plan.DistinctCoefficients())
	slow := &slowStore{inner: shards}

	b.Run("mem/sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runSequential(b, plan, shards, budgets)
		}
	})
	b.Run("mem/mixed", func(b *testing.B) {
		cs := storage.NewCoalescingStore(shards)
		s := New(Config{Workers: 4, MaxActive: benchClients, Slice: 512})
		defer s.Close()
		for i := 0; i < b.N; i++ {
			runScheduled(b, s, plan, cs, budgets, mass)
		}
	})
	b.Run("io/sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runSequential(b, plan, slow, budgets)
		}
	})
	b.Run("io/mixed", func(b *testing.B) {
		cs := storage.NewCoalescingStore(slow)
		s := New(Config{Workers: 4, MaxActive: benchClients, Slice: 512})
		defer s.Close()
		for i := 0; i < b.N; i++ {
			runScheduled(b, s, plan, cs, budgets, mass)
		}
		b.StopTimer()
		st := cs.Stats()
		if st.Coalesced == 0 {
			b.Fatal("no fetches coalesced across runs")
		}
		b.ReportMetric(float64(st.Coalesced)/float64(b.N), "coalesced/op")
		b.ReportMetric(float64(st.Fetched)/float64(b.N), "fetched/op")
	})
}
