package sched

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/penalty"
	"repro/internal/storage"
)

// TestScheduledRunDegradesUnderFaults drives a run through the scheduler's
// fallible slices over a store with a deterministic key-based fault schedule
// and checks the degraded completion contract: the run drains, reports its
// skips, still carries bounds, and lands on exactly the estimates an
// unscheduled fallible run produces under the same schedule.
func TestScheduledRunDegradesUnderFaults(t *testing.T) {
	plan, store, mass := fixture(t, 8, 50, 2048, 31)
	cfg := storage.FaultConfig{ErrorRate: 0.2, Seed: 17}
	faulty := storage.WrapFaults(store, cfg)
	s := New(Config{Slice: 16, Workers: 2})
	defer s.Close()

	run := core.NewRun(plan, penalty.SSE{}, faulty)
	tk, err := s.Submit(context.Background(), Job{Run: run, Mass: mass})
	if err != nil {
		t.Fatal(err)
	}
	p, err := tk.Final()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Done {
		t.Fatal("degraded run must still drain the schedule")
	}
	if !p.Degraded || p.Skipped == 0 {
		t.Fatalf("expected degradation, got %+v", p)
	}
	if p.SkippedImportance <= 0 {
		t.Fatal("SkippedImportance must be positive on a degraded run")
	}
	if p.Bounds == nil {
		t.Fatal("a degraded completion must keep its error bounds")
	}

	// Key-based faults are order-independent, so an unscheduled fallible run
	// over the same schedule skips the same entries and accumulates in the
	// same order: bit-identical estimates.
	ref := core.NewRun(plan, penalty.SSE{}, storage.WrapFaults(store, cfg))
	if err := ref.RunToCompletionCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ref.SkippedCount() != p.Skipped {
		t.Fatalf("scheduler skipped %d, reference %d", p.Skipped, ref.SkippedCount())
	}
	for q, e := range p.Estimates {
		if e != ref.Estimates()[q] {
			t.Fatalf("query %d: scheduled %g != reference %g", q, e, ref.Estimates()[q])
		}
	}
	for q, b := range p.Bounds {
		if want := ref.QueryErrorBounds(mass)[q]; b != want {
			t.Fatalf("bound %d: %g != %g", q, b, want)
		}
	}
}

// TestSchedulerFaultsUnderConcurrentLoad floods the scheduler with runs over
// one shared faulty coalescing store — the -race acceptance shape: injected
// errors at every slice, concurrent workers, shared flights, no hangs, and
// every ticket resolves with the same deterministic degradation.
func TestSchedulerFaultsUnderConcurrentLoad(t *testing.T) {
	plan, store, mass := fixture(t, 8, 60, 2048, 32)
	faulty := storage.WrapFaults(store, storage.FaultConfig{ErrorRate: 0.15, Seed: 5})
	conc, ok := faulty.(storage.Concurrent)
	if !ok {
		t.Fatal("faults over a sharded store must stay concurrent-safe")
	}
	co := storage.NewCoalescingStore(conc)
	s := New(Config{Slice: 8, Workers: 4})
	defer s.Close()

	var tickets []*Ticket
	for i := 0; i < 6; i++ {
		tk, err := s.Submit(context.Background(), Job{
			Run:  core.NewRun(plan, penalty.SSE{}, co),
			Mass: mass,
		})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	var first *Progress
	for i, tk := range tickets {
		p, err := tk.Final()
		if err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
		if !p.Done || !p.Degraded {
			t.Fatalf("ticket %d: %+v, want degraded completion", i, p)
		}
		if first == nil {
			first = &p
			continue
		}
		if p.Skipped != first.Skipped {
			t.Fatalf("ticket %d skipped %d, ticket 0 skipped %d — fault schedule not deterministic",
				i, p.Skipped, first.Skipped)
		}
		for q, e := range p.Estimates {
			if e != first.Estimates[q] {
				t.Fatalf("ticket %d query %d: %g != %g", i, q, e, first.Estimates[q])
			}
		}
	}
}

// TestSchedulerDeadlineWithInjectedLatency: injected latency pushes a run
// past its context deadline; the ticket resolves with the deadline error and
// partial progress instead of hanging out the delay.
func TestSchedulerDeadlineWithInjectedLatency(t *testing.T) {
	plan, store, mass := fixture(t, 4, 40, 2048, 33)
	faulty := storage.WrapFaults(store, storage.FaultConfig{
		DelayRate: 1, Delay: time.Hour, Seed: 2,
	})
	s := New(Config{Slice: 4, Workers: 1})
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	tk, err := s.Submit(ctx, Job{Run: core.NewRun(plan, penalty.SSE{}, faulty), Mass: mass})
	if err != nil {
		t.Fatal(err)
	}
	p, err := tk.Final()
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if p.Done {
		t.Fatal("run cannot have completed through an hour of injected latency")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("deadline took %v to enforce", elapsed)
	}
	if p.Degraded {
		t.Fatal("cancellation must not be reported as degradation")
	}
}

// TestSchedulerRetriesAbsorbTransientFaults layers the retry store over an
// Nth-call fault schedule: every injected failure is transient, so the
// scheduled run completes exactly, not degraded.
func TestSchedulerRetriesAbsorbTransientFaults(t *testing.T) {
	plan, store, mass := fixture(t, 6, 40, 2048, 34)
	faulty := storage.WrapFaults(store, storage.FaultConfig{ErrorEvery: 3})
	retried := storage.WrapRetries(faulty, storage.RetryConfig{
		MaxAttempts: 8,
		BaseDelay:   10 * time.Microsecond,
		MaxDelay:    100 * time.Microsecond,
		Seed:        1,
	})
	if _, ok := retried.(storage.Concurrent); !ok {
		t.Fatal("retries over a concurrent store must stay concurrent-safe")
	}
	s := New(Config{Slice: 16, Workers: 2})
	defer s.Close()
	tk, err := s.Submit(context.Background(), Job{
		Run:  core.NewRun(plan, penalty.SSE{}, retried),
		Mass: mass,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := tk.Final()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Done || p.Degraded {
		t.Fatalf("retries should have absorbed every transient fault: %+v", p)
	}
	ref := core.NewRun(plan, penalty.SSE{}, store)
	ref.RunToCompletion()
	for q, e := range p.Estimates {
		if e != ref.Estimates()[q] {
			t.Fatalf("query %d: %g != fault-free %g", q, e, ref.Estimates()[q])
		}
	}
}
