package sched

import (
	"errors"
	"sync"
)

// Per-tenant prepared-plan quotas. Prepared plans are server-side state a
// client can grow without bound (each POST /prepare pins a plan until
// eviction), so admission control bounds how many registrations a tenant may
// hold concurrently — the same defensive posture the run table and waiting
// queue take toward in-flight work. Quota is charged when a tenant registers
// a new plan and released when the plan is evicted, removed, or the
// registration fails.

// ErrQuotaExceeded is returned by Quotas.Acquire when the tenant is at its
// limit. Callers should surface it as an overload-class rejection (HTTP 429):
// the client can retry after releasing handles or waiting for eviction.
var ErrQuotaExceeded = errors.New("sched: prepared-plan quota exceeded for tenant")

// Quotas tracks per-tenant counts against one shared limit. Safe for
// concurrent use. The zero limit (or negative) disables enforcement —
// Acquire always succeeds and nothing is tracked.
type Quotas struct {
	max    int
	mu     sync.Mutex
	counts map[string]int
}

// NewQuotas creates a tracker allowing up to maxPerTenant concurrent
// holdings per tenant (≤0 disables enforcement).
func NewQuotas(maxPerTenant int) *Quotas {
	return &Quotas{max: maxPerTenant, counts: make(map[string]int)}
}

// Limit returns the per-tenant bound (0 = unlimited).
func (q *Quotas) Limit() int {
	if q.max <= 0 {
		return 0
	}
	return q.max
}

// Acquire charges one holding to the tenant, or returns ErrQuotaExceeded if
// the tenant is at the limit. The empty tenant is never charged: anonymous
// inline registrations are bounded by the registry's LRU capacity instead.
func (q *Quotas) Acquire(tenant string) error {
	if q.max <= 0 || tenant == "" {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.counts[tenant] >= q.max {
		return ErrQuotaExceeded
	}
	q.counts[tenant]++
	return nil
}

// Release returns one holding. Releasing an untracked tenant (or below
// zero) is a no-op, which makes eviction-driven releases safe to over-call.
func (q *Quotas) Release(tenant string) {
	if q.max <= 0 || tenant == "" {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if n := q.counts[tenant]; n > 1 {
		q.counts[tenant] = n - 1
	} else if n == 1 {
		delete(q.counts, tenant)
	}
}

// Count returns the tenant's current holdings.
func (q *Quotas) Count(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.counts[tenant]
}

// Tenants returns the number of tenants currently holding quota.
func (q *Quotas) Tenants() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.counts)
}
