// Package sched owns concurrent execution of progressive query runs. The
// paper's Batch-Biggest-B makes every retrieval a natural preemption point —
// after any prefix of the master list the estimates are usable and carry
// error bounds — and this package exploits exactly that: admitted runs
// advance in budget slices (Run.StepBatch) under deficit round-robin with
// priority weights, so a huge exact batch shares the store fairly with small
// progressive ones instead of monopolizing it.
//
// Three responsibilities:
//
//   - Admission control: a bounded run table plus a bounded FIFO waiting
//     queue. Beyond both, Submit fails fast with ErrOverloaded and a
//     Retry-After hint — backpressure instead of collapse.
//   - Budget-sliced fair scheduling: each slice grants a run
//     Slice·priority-weight retrievals; per-run contexts cancel queued or
//     running work (client disconnects, deadlines).
//   - Progress delivery: after every slice the run's snapshot (estimates +
//     per-query error bounds) is published on the ticket's channel with
//     latest-wins semantics, feeding the server's SSE stream.
//
// Determinism: a run's slices execute strictly sequentially (a run is
// dispatched to at most one worker at a time), and Run.StepBatch is
// bit-identical to the same number of Run.Step calls, so a scheduled run's
// estimates at any retrieval count are value-identical to an unscheduled
// run's — whatever the slice size, worker count, or competing load.
//
// The core engine works in this package's favor twice over: runs sharing a
// (plan, penalty) pair share one cached retrieval schedule, so admitting a
// run costs O(batch size) rather than a heap build over the master list,
// and each StepBatch slice prefetches its whole quantum of keys in a single
// batched store call (which is also what gives the coalescing store a full
// window of overlappable fetches).
package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Priority weights a run's slice quantum. Higher priority means more
// retrievals per round-robin turn, not absolute precedence: low-priority
// runs still advance every round (no starvation).
type Priority int

const (
	// PriorityLow gets a 1× quantum.
	PriorityLow Priority = iota - 1
	// PriorityNormal gets a 2× quantum (the default).
	PriorityNormal
	// PriorityHigh gets a 4× quantum.
	PriorityHigh
)

// weight returns the quantum multiplier.
func (p Priority) weight() int {
	switch {
	case p <= PriorityLow:
		return 1
	case p >= PriorityHigh:
		return 4
	default:
		return 2
	}
}

// Config sizes the scheduler. Zero values select the defaults.
type Config struct {
	// MaxActive bounds the run table: how many admitted runs advance
	// concurrently under round-robin. Default 64.
	MaxActive int
	// MaxQueued bounds the waiting queue behind the run table. Default 256.
	MaxQueued int
	// Slice is the base quantum in retrievals granted per scheduling turn
	// (scaled by the run's priority weight). Default 512.
	Slice int
	// Workers is the number of goroutines executing slices. Slices of
	// distinct runs execute concurrently (which is what lets the coalescing
	// store share overlapping fetches); a single run is never on two workers
	// at once. ≤0 selects GOMAXPROCS. Set 1 when the store is not
	// concurrent-safe.
	Workers int
	// RetryAfter is the backoff hint attached to overload rejections.
	// Default 1s.
	RetryAfter time.Duration
	// MaxPreparedPerTenant bounds how many prepared plans one tenant may
	// hold concurrently (see Quotas). Default 32; negative disables
	// enforcement.
	MaxPreparedPerTenant int
}

func (c Config) withDefaults() Config {
	if c.MaxActive <= 0 {
		c.MaxActive = 64
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 256
	}
	if c.Slice <= 0 {
		c.Slice = 512
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxPreparedPerTenant == 0 {
		c.MaxPreparedPerTenant = 32
	}
	return c
}

// ErrOverloaded is returned by Submit when both the run table and the
// waiting queue are full. Callers should back off (HTTP 429 + Retry-After).
var ErrOverloaded = errors.New("sched: run table and waiting queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("sched: scheduler closed")

// Job is one progressive run to execute.
type Job struct {
	// Run is a fresh progressive run; the scheduler owns it until the
	// ticket completes.
	Run *core.Run
	// Budget limits retrievals; ≤0 (or ≥ the master list) runs to exact.
	Budget int
	// Priority weights the per-turn quantum.
	Priority Priority
	// Mass is the coefficient mass K = Σ|Δ̂[ξ]| used for per-query error
	// bounds in progress snapshots (0 suppresses bounds).
	Mass float64
}

// Progress is a snapshot of a run after a slice: usable estimates plus the
// paper's per-query worst-case bounds (nil once the run is exact).
type Progress struct {
	// Retrieved is the run's logical retrieval count so far (attempted
	// steps, including any skipped by failed retrievals).
	Retrieved int
	// Done reports whether the schedule is drained. The estimates are exact
	// only when Done && !Degraded.
	Done bool
	// Degraded reports that some retrievals failed permanently and their
	// entries were skipped: the estimates are partial results whose residual
	// error Bounds still covers.
	Degraded bool
	// Skipped is the number of entries skipped by failed retrievals.
	Skipped int
	// SkippedImportance is ι_p of the most important skipped entry — the
	// worst-case-bound cost of the missing coefficients (0 when none).
	SkippedImportance float64
	// Estimates holds one progressive estimate per query.
	Estimates []float64
	// Bounds holds the per-query worst-case error bounds (Hölder / Theorem 1
	// with mass K); nil once the run is exact (Done && !Degraded).
	Bounds []float64
	// Bound is the batch-wide Theorem 1 worst-case bound K^α·ι_p(ξ′) with
	// mass K (0 once the run is exact, or when the job carried no mass).
	Bound float64
}

// Stats is a snapshot of the scheduler counters for monitoring.
type Stats struct {
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	Cancelled int64 `json:"cancelled"`
	// Slices counts scheduling turns executed; Stepped the retrievals they
	// performed.
	Slices  int64 `json:"slices"`
	Stepped int64 `json:"stepped"`
	// Active and Queued are instantaneous occupancy.
	Active int `json:"active"`
	Queued int `json:"queued"`
}

// task is one admitted or queued job with its delivery plumbing.
type task struct {
	job    Job
	ctx    context.Context
	cancel context.CancelFunc

	// deficit is the run's unused quantum carried across turns (deficit
	// round-robin); busy marks a slice currently on a worker; finished marks
	// the terminal state as recorded (guards the single close of done).
	deficit  int
	busy     bool
	finished bool

	// profile/enqueued feed the EXPLAIN ANALYZE queue-delay figure: when the
	// submission context carries a QueryProfile, the delay between Submit and
	// the first dispatched slice is charged to it. Both stay zero otherwise.
	profile  *obs.QueryProfile
	enqueued time.Time
	started  bool

	progress chan Progress // latest-wins, consumed by streaming clients
	done     chan struct{}
	final    Progress
	err      error
}

// remaining returns how many retrievals the task may still perform, or -1
// for run-to-exact.
func (t *task) remaining() int {
	if t.job.Budget <= 0 {
		return -1
	}
	r := t.job.Budget - t.job.Run.Retrieved()
	if r < 0 {
		return 0
	}
	return r
}

// publish delivers p with latest-wins semantics: a slow or absent consumer
// never blocks the scheduler, and always observes the newest snapshot.
func (t *task) publish(p Progress) {
	for {
		select {
		case t.progress <- p:
			return
		default:
			select {
			case <-t.progress:
			default:
			}
		}
	}
}

// snapshot captures the run's current state. Called only by the worker that
// owns the task's current slice.
func (t *task) snapshot() Progress {
	run := t.job.Run
	p := Progress{
		Retrieved:         run.Retrieved(),
		Done:              run.Done(),
		Degraded:          run.Degraded(),
		Skipped:           run.SkippedCount(),
		SkippedImportance: run.SkippedImportance(),
		Estimates:         run.Snapshot(),
	}
	if (!p.Done || p.Degraded) && t.job.Mass > 0 {
		p.Bounds = run.QueryErrorBounds(t.job.Mass)
		p.Bound = run.WorstCaseBound(t.job.Mass)
	}
	return p
}

// Ticket is the caller's handle on a submitted job.
type Ticket struct {
	t *task
	s *Scheduler
}

// Progress returns the latest-wins snapshot channel. Snapshots arrive after
// each slice until the run finishes; the final state is in Final.
func (tk *Ticket) Progress() <-chan Progress { return tk.t.progress }

// Done is closed when the run finishes (budget reached, exact, or
// cancelled).
func (tk *Ticket) Done() <-chan struct{} { return tk.t.done }

// Final blocks until the run finishes and returns its last snapshot. The
// error is nil on normal completion, or the context's error when the run
// was cancelled or timed out — in which case the snapshot still holds the
// progressive state reached before cancellation.
func (tk *Ticket) Final() (Progress, error) {
	<-tk.t.done
	return tk.t.final, tk.t.err
}

// Cancel stops the run as soon as its current slice (if any) completes.
func (tk *Ticket) Cancel() {
	tk.t.cancel()
	tk.s.mu.Lock()
	tk.s.cond.Broadcast()
	tk.s.mu.Unlock()
}

// Scheduler multiplexes progressive runs over a bounded worker pool.
type Scheduler struct {
	cfg Config

	mu     sync.Mutex
	cond   *sync.Cond
	ring   []*task // run table, round-robin order
	cursor int
	queue  []*task // FIFO admission queue
	closed bool

	submitted, rejected, completed, cancelled int64
	slices, stepped                           int64

	// quotas is the prepared-plan admission ledger (quota.go); the HTTP
	// layer charges it on /prepare and releases on eviction.
	quotas *Quotas

	wg sync.WaitGroup
}

// New starts a scheduler with cfg's workers running.
func New(cfg Config) *Scheduler {
	s := &Scheduler{cfg: cfg.withDefaults()}
	s.quotas = NewQuotas(s.cfg.MaxPreparedPerTenant)
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Config returns the effective (defaulted) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// PlanQuotas returns the scheduler's prepared-plan admission ledger.
func (s *Scheduler) PlanQuotas() *Quotas { return s.quotas }

// Submit admits a job into the run table, or parks it in the waiting queue
// when the table is full. When both are full it returns ErrOverloaded
// without blocking. ctx cancellation (or deadline) stops the run wherever
// it is; the ticket then reports the context error alongside the progress
// reached.
func (s *Scheduler) Submit(ctx context.Context, job Job) (*Ticket, error) {
	if job.Run == nil {
		return nil, errors.New("sched: nil run")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if len(s.ring) >= s.cfg.MaxActive && len(s.queue) >= s.cfg.MaxQueued {
		s.rejected++
		if m := scObs(); m != nil {
			m.rejected.Inc()
		}
		return nil, ErrOverloaded
	}
	tctx, cancel := context.WithCancel(ctx)
	t := &task{
		job:      job,
		ctx:      tctx,
		cancel:   cancel,
		progress: make(chan Progress, 1),
		done:     make(chan struct{}),
	}
	if p := obs.ProfileFrom(ctx); p != nil {
		t.profile = p
		t.enqueued = time.Now()
	}
	if len(s.ring) < s.cfg.MaxActive {
		s.ring = append(s.ring, t)
	} else {
		s.queue = append(s.queue, t)
	}
	s.submitted++
	if m := scObs(); m != nil {
		m.submitted.Inc()
	}
	s.syncGaugesLocked()
	s.cond.Broadcast()
	go s.watch(t)
	return &Ticket{t: t, s: s}, nil
}

// watch finishes a task whose context ends while no worker holds it — a
// queued task, or a parked one behind pinned workers. Without it a client
// disconnect or deadline would hold the slot until a worker happened to pick
// the task, which under a pinned pool is never.
func (s *Scheduler) watch(t *task) {
	select {
	case <-t.ctx.Done():
	case <-t.done:
		return
	}
	s.mu.Lock()
	// A worker mid-slice owns the run; it observes the cancellation at its
	// next pick, or finishes first — either way wait for the slice to end.
	for t.busy && !t.finished {
		s.cond.Wait()
	}
	if t.finished {
		s.mu.Unlock()
		return
	}
	p := t.snapshot() // no worker owns the run here, safe under the lock
	s.finishLocked(t, p, t.ctx.Err())
	s.cond.Broadcast()
	s.mu.Unlock()
	t.cancel()
	close(t.done)
}

// Stats returns a snapshot of the counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Submitted: s.submitted,
		Rejected:  s.rejected,
		Completed: s.completed,
		Cancelled: s.cancelled,
		Slices:    s.slices,
		Stepped:   s.stepped,
		Active:    len(s.ring),
		Queued:    len(s.queue),
	}
}

// RetryAfter returns the configured backoff hint for overload rejections.
func (s *Scheduler) RetryAfter() time.Duration { return s.cfg.RetryAfter }

// / Closed reports whether Close has begun: admission is rejected and every
// pending run has been cancelled.
func (s *Scheduler) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close stops admission, cancels every pending run and waits for the
// workers to drain. Tickets of cancelled runs complete with their context
// error. Close is idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for _, t := range s.ring {
		t.cancel()
	}
	for _, t := range s.queue {
		t.cancel()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// worker executes slices until the scheduler is closed and drained.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		t, n := s.next()
		if t == nil {
			return
		}
		// StepBatchCtx runs the slice on the store's fallible path: failed
		// retrievals degrade the run (entries skipped, bounds widened)
		// instead of panicking a worker, and a non-nil err here is always
		// the task context ending.
		var start time.Time
		m := scObs()
		if m != nil {
			start = time.Now()
		}
		stepped, err := t.job.Run.StepBatchCtx(t.ctx, n)
		if m != nil {
			m.sliceSeconds.Observe(time.Since(start).Seconds())
		}
		// The run is owned by this worker until busy clears: snapshot and
		// the finish decision need no lock.
		p := t.snapshot()
		finished := err != nil || t.job.Run.Done() || t.remaining() == 0
		if !finished {
			// Publish before releasing the task so snapshots are observed in
			// retrieval order.
			t.publish(p)
		}
		s.afterSlice(t, stepped, p, err, finished)
	}
}

// next blocks until a run is dispatchable and claims its slice, or returns
// nil when the scheduler is closed and fully drained.
func (s *Scheduler) next() (*task, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if t, n := s.pickLocked(); t != nil {
			return t, n
		}
		if s.closed && len(s.ring) == 0 && len(s.queue) == 0 {
			return nil, 0
		}
		s.cond.Wait()
	}
}

// pickLocked claims the next non-busy run in round-robin order and grants
// its deficit quantum.
func (s *Scheduler) pickLocked() (*task, int) {
	for i := 0; i < len(s.ring); i++ {
		j := (s.cursor + i) % len(s.ring)
		t := s.ring[j]
		if t.busy {
			continue
		}
		s.cursor = (j + 1) % len(s.ring)
		t.busy = true
		if !t.started {
			t.started = true
			if t.profile != nil {
				t.profile.AddQueueDelay(time.Since(t.enqueued))
			}
		}
		t.deficit += s.cfg.Slice * t.job.Priority.weight()
		n := t.deficit
		if rem := t.remaining(); rem >= 0 && n > rem {
			n = rem
		}
		return t, n
	}
	return nil, 0
}

// afterSlice releases the task, finishing it (and promoting queued work)
// when its run completed, exhausted its budget, or was cancelled.
func (s *Scheduler) afterSlice(t *task, stepped int, p Progress, err error, finished bool) {
	s.mu.Lock()
	t.busy = false
	t.deficit -= stepped
	if t.deficit < 0 || finished {
		t.deficit = 0
	}
	s.slices++
	s.stepped += int64(stepped)
	if m := scObs(); m != nil {
		m.slices.Inc()
		m.stepped.Add(int64(stepped))
	}
	first := false
	if finished {
		first = s.finishLocked(t, p, err)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if first {
		t.cancel() // release the context regardless of outcome
		close(t.done)
	}
}

// finishLocked records t's terminal state, removes it wherever it sits and
// promotes queued work into the freed slot. Returns false when another path
// (worker vs. context watcher) already finished it; only the first finisher
// may close t.done.
func (s *Scheduler) finishLocked(t *task, p Progress, err error) bool {
	if t.finished {
		return false
	}
	t.finished = true
	t.final = p
	t.err = err
	s.removeLocked(t)
	if err != nil {
		s.cancelled++
	} else {
		s.completed++
	}
	if m := scObs(); m != nil {
		if err != nil {
			m.cancelled.Inc()
		} else {
			m.completed.Inc()
		}
	}
	s.promoteLocked()
	s.syncGaugesLocked()
	return true
}

// removeLocked drops t from the run table (keeping round-robin order) or
// from the waiting queue, wherever it sits.
func (s *Scheduler) removeLocked(t *task) {
	for i, x := range s.ring {
		if x == t {
			s.ring = append(s.ring[:i], s.ring[i+1:]...)
			if s.cursor > i {
				s.cursor--
			}
			if len(s.ring) > 0 {
				s.cursor %= len(s.ring)
			} else {
				s.cursor = 0
			}
			return
		}
	}
	for i, x := range s.queue {
		if x == t {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// promoteLocked moves queued tasks into freed run-table slots. Tasks whose
// context already expired are admitted too; the next slice observes the
// cancellation and finishes them with the context error.
func (s *Scheduler) promoteLocked() {
	for len(s.ring) < s.cfg.MaxActive && len(s.queue) > 0 {
		t := s.queue[0]
		s.queue = s.queue[1:]
		s.ring = append(s.ring, t)
	}
}
