package storage

import (
	"context"
	"fmt"
	"sync"
)

// ConcurrentStore wraps a Store with a mutex so multiple progressive runs
// can execute in parallel goroutines against one materialized view. The
// paper's engine is sequential per run; this wrapper serializes the
// individual Get calls while letting runs interleave, which is the natural
// deployment shape for a read-mostly query service.
type ConcurrentStore struct {
	mu     sync.Mutex
	inner  Store
	finner FallibleStore
}

// NewConcurrentStore wraps inner.
func NewConcurrentStore(inner Store) *ConcurrentStore {
	return &ConcurrentStore{inner: inner, finner: AsFallible(inner)}
}

// Get implements Store.
func (s *ConcurrentStore) Get(key int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Get(key)
}

// GetCtx implements FallibleStore: the wrapped store's fallible path under
// the lock. The lock is not interruptible; cancellation is observed by the
// wrapped store (or by the engine at the next batch boundary).
func (s *ConcurrentStore) GetCtx(ctx context.Context, key int) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.finner.GetCtx(ctx, key)
}

// BatchGetCtx implements FallibleStore with one lock round-trip per batch.
func (s *ConcurrentStore) BatchGetCtx(ctx context.Context, keys []int, dst []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.finner.BatchGetCtx(ctx, keys, dst)
}

// Retrievals implements Store.
func (s *ConcurrentStore) Retrievals() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Retrievals()
}

// ResetStats implements Store.
func (s *ConcurrentStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.ResetStats()
}

// NonzeroCount implements Store.
func (s *ConcurrentStore) NonzeroCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.NonzeroCount()
}

// Add implements Updatable when the wrapped store does, taking the lock; it
// panics otherwise. This lets a ConcurrentStore stand in wherever the
// original store did (Database, scheduler) without losing maintenance.
func (s *ConcurrentStore) Add(key int, delta float64) {
	u, ok := s.inner.(Updatable)
	if !ok {
		panic(fmt.Sprintf("storage: %T is not updatable", s.inner))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	u.Add(key, delta)
}

// ForEachNonzero implements Enumerable when the wrapped store does; the
// whole enumeration holds the lock. When the wrapped store cannot enumerate
// it panics — check Enumerable first to distinguish "empty" from
// "unsupported".
func (s *ConcurrentStore) ForEachNonzero(fn func(key int, value float64) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.inner.(Enumerable)
	if !ok {
		panic(fmt.Sprintf("storage: %T is not enumerable", s.inner))
	}
	e.ForEachNonzero(fn)
}

// Enumerable reports whether the wrapped store supports ForEachNonzero.
func (s *ConcurrentStore) Enumerable() bool { return IsEnumerable(s.inner) }

// ConcurrentSafe implements Concurrent.
func (s *ConcurrentStore) ConcurrentSafe() {}

var (
	_ Store         = (*ConcurrentStore)(nil)
	_ Updatable     = (*ConcurrentStore)(nil)
	_ Concurrent    = (*ConcurrentStore)(nil)
	_ Enumerable    = (*ConcurrentStore)(nil)
	_ FallibleStore = (*ConcurrentStore)(nil)
)
