package storage

import (
	"context"
	"fmt"
)

// FallibleStore is the context-aware, error-returning retrieval surface the
// evaluation engine runs on. The paper's cost model treats every coefficient
// retrieval as one unit of I/O and assumes it always succeeds; once
// coefficients live behind anything slower than RAM (a file, a remote block
// service, a cache tier) a retrieval can fail, time out, or be cancelled.
// FallibleStore makes those outcomes part of the contract instead of a
// panic: GetCtx/BatchGetCtx observe ctx for cancellation and report
// failures as errors the engine can turn into principled partial answers
// (a coefficient we could not fetch is just an unretrieved term whose
// contribution Theorem 1 already bounds — see core.Run's degraded mode).
//
// Every Store can be lifted into a FallibleStore with AsFallible; in-memory
// stores pay nothing beyond an interface call. Wrapper stores (CachedStore,
// CoalescingStore, ConcurrentStore) and FileStore implement the interface
// natively so errors and cancellation propagate through every layer.
type FallibleStore interface {
	Store
	// GetCtx returns the coefficient at key, counting one retrieval.
	// It returns ctx.Err() when the context ends before the retrieval
	// completes, and a store-specific error when the retrieval fails.
	GetCtx(ctx context.Context, key int) (float64, error)
	// BatchGetCtx retrieves the coefficient for keys[i] into dst[i],
	// counting len(keys) retrievals. dst must have the same length as keys;
	// keys may repeat and appear in any order. A partial failure is
	// reported as a *BatchError listing the failed positions — positions it
	// does not list hold valid values. Any other non-nil error (including
	// ctx.Err()) means no position of dst may be trusted.
	BatchGetCtx(ctx context.Context, keys []int, dst []float64) error
}

// KeyError records the failure of one coefficient retrieval, within a batch
// or alone.
type KeyError struct {
	// Index is the position in the batch's keys/dst slices (0 for single
	// retrievals).
	Index int
	// Key is the storage key whose retrieval failed.
	Key int
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *KeyError) Error() string {
	return fmt.Sprintf("storage: retrieving key %d: %v", e.Key, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *KeyError) Unwrap() error { return e.Err }

// BatchError reports the partial failure of a BatchGetCtx call: the listed
// positions failed, every other position of dst holds a valid coefficient.
// Callers that can degrade (core.Run) apply the successes and account for
// the failures; callers that cannot (exact evaluation) treat it as fatal.
type BatchError struct {
	// Failed holds one entry per failed position, in ascending Index order.
	Failed []KeyError
}

// Error implements error.
func (e *BatchError) Error() string {
	if len(e.Failed) == 1 {
		return e.Failed[0].Error()
	}
	return fmt.Sprintf("storage: %d of batch retrievals failed (first: %v)",
		len(e.Failed), e.Failed[0].Error())
}

// Unwrap exposes every per-key cause to errors.Is/As.
func (e *BatchError) Unwrap() []error {
	errs := make([]error, len(e.Failed))
	for i := range e.Failed {
		errs[i] = &e.Failed[i]
	}
	return errs
}

// AsFallible lifts any Store into the fallible interface. Stores that
// already implement FallibleStore are returned unchanged; everything else
// is wrapped in a zero-overhead adapter whose GetCtx/BatchGetCtx delegate
// straight to Get/BatchGet, never fail, and do not inspect the context
// (in-memory retrievals cannot block, so cancellation is checked at batch
// boundaries by the engine instead of per key).
func AsFallible(s Store) FallibleStore {
	if f, ok := s.(FallibleStore); ok {
		return f
	}
	return infallible{s}
}

// infallible adapts an error-free Store to FallibleStore at zero cost.
type infallible struct{ Store }

// GetCtx implements FallibleStore.
func (a infallible) GetCtx(_ context.Context, key int) (float64, error) {
	return a.Store.Get(key), nil
}

// BatchGetCtx implements FallibleStore, keeping the wrapped store's batched
// fast path.
func (a infallible) BatchGetCtx(_ context.Context, keys []int, dst []float64) error {
	BatchGet(a.Store, keys, dst)
	return nil
}

var _ FallibleStore = infallible{}
