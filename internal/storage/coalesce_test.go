package storage

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// gateStore is a concurrent-safe store whose Get/GetBatch block on a gate
// channel, letting tests hold fetches in flight deterministically.
type gateStore struct {
	inner *ShardedStore
	gate  chan struct{} // each fetch call consumes one token
}

func newGateStore(cells map[int]float64) *gateStore {
	s := NewShardedStore(4)
	for k, v := range cells {
		s.Add(k, v)
	}
	return &gateStore{inner: s, gate: make(chan struct{}, 1024)}
}

func (g *gateStore) Get(key int) float64 {
	<-g.gate
	return g.inner.Get(key)
}

func (g *gateStore) GetBatch(keys []int, dst []float64) {
	<-g.gate
	g.inner.GetBatch(keys, dst)
}

func (g *gateStore) Retrievals() int64 { return g.inner.Retrievals() }
func (g *gateStore) ResetStats()       { g.inner.ResetStats() }
func (g *gateStore) NonzeroCount() int { return g.inner.NonzeroCount() }
func (g *gateStore) ConcurrentSafe()   {}

// open lets n fetch calls proceed.
func (g *gateStore) open(n int) {
	for i := 0; i < n; i++ {
		g.gate <- struct{}{}
	}
}

func TestCoalescingGetJoinsInflightFetch(t *testing.T) {
	// The leader registering its flight is observable (cs.inflight), but the
	// joiner joining it is not — only the final counters reveal which
	// schedule ran. So: give the joiner a grace period to classify, detect
	// the miss (it becomes a second leader and waits for a second token) and
	// retry on a fresh store until the join schedule occurs.
	for attempt := 0; attempt < 50; attempt++ {
		gs := newGateStore(map[int]float64{7: 42})
		cs := NewCoalescingStore(gs)

		results := make(chan float64, 2)
		go func() { results <- cs.Get(7) }() // leader: blocks on the gate
		for {                                // leader's flight registered (gate shut: it cannot deregister)
			cs.mu.Lock()
			_, inflight := cs.inflight[7]
			cs.mu.Unlock()
			if inflight {
				break
			}
			runtime.Gosched()
		}
		go func() { results <- cs.Get(7) }() // joiner: should share the flight
		time.Sleep(time.Millisecond)         // grace period to classify
		gs.open(1)                           // one physical fetch on the join schedule
		a := <-results
		var b float64
		select {
		case b = <-results:
		case <-time.After(200 * time.Millisecond):
			// Bad schedule: the joiner classified after the leader finished
			// and now leads its own fetch. Feed it a token and retry.
			gs.open(1)
			b = <-results
		}
		if a != 42 || b != 42 {
			t.Fatalf("results = %g, %g, want 42, 42", a, b)
		}
		st := cs.Stats()
		if st.Requests != 2 || st.Fetched+st.Coalesced != 2 {
			t.Fatalf("stats do not balance: %+v", st)
		}
		if st.Coalesced == 1 {
			if st.Fetched != 1 || gs.Retrievals() != 1 {
				t.Fatalf("join schedule stats = %+v, physical = %d", st, gs.Retrievals())
			}
			return
		}
	}
	t.Fatal("join schedule never occurred in 50 attempts")
}

func TestCoalescingBatchOverlap(t *testing.T) {
	cells := map[int]float64{1: 10, 2: 20, 3: 30, 4: 40}
	gs := newGateStore(cells)
	cs := NewCoalescingStore(gs)

	type res struct{ vals []float64 }
	out := make(chan res, 2)
	go func() { // leader batch holds {1,2,3} in flight
		dst := make([]float64, 3)
		cs.GetBatch([]int{1, 2, 3}, dst)
		out <- res{dst}
	}()
	for {
		cs.mu.Lock()
		n := len(cs.inflight)
		cs.mu.Unlock()
		if n == 3 {
			break
		}
		runtime.Gosched()
	}
	go func() { // overlapping batch: 2 and 3 join, 4 leads
		dst := make([]float64, 3)
		cs.GetBatch([]int{2, 3, 4}, dst)
		out <- res{dst}
	}()
	for { // wait until the second batch has classified (registered key 4);
		// registering 4 and joining 2,3 happen in one critical section, so
		// this also proves the joins are in place before the gate opens
		cs.mu.Lock()
		_, ok := cs.inflight[4]
		cs.mu.Unlock()
		if ok {
			break
		}
		runtime.Gosched()
	}
	gs.open(2) // one coalesced fetch per batch's lead set
	got := map[float64]bool{}
	for i := 0; i < 2; i++ {
		r := <-out
		for _, v := range r.vals {
			got[v] = true
		}
	}
	for _, want := range []float64{10, 20, 30, 40} {
		if !got[want] {
			t.Fatalf("value %g missing from batch results", want)
		}
	}
	st := cs.Stats()
	if st.Requests != 6 || st.Fetched != 4 || st.Coalesced != 2 {
		t.Fatalf("stats = %+v, want {6 4 2}", st)
	}
	if gs.Retrievals() != 4 {
		t.Fatalf("physical retrievals = %d, want 4", gs.Retrievals())
	}
}

func TestCoalescingBatchIntraBatchDuplicates(t *testing.T) {
	s := NewShardedStore(2)
	s.Add(5, 50)
	cs := NewCoalescingStore(s)
	dst := make([]float64, 3)
	cs.GetBatch([]int{5, 5, 5}, dst)
	for i, v := range dst {
		if v != 50 {
			t.Fatalf("dst[%d] = %g, want 50", i, v)
		}
	}
	st := cs.Stats()
	if st.Requests != 3 || st.Fetched != 1 || st.Coalesced != 2 {
		t.Fatalf("stats = %+v, want {3 1 2}", st)
	}
}

func TestCoalescingValuesMatchUnwrapped(t *testing.T) {
	s := NewShardedStore(4)
	for k := 0; k < 256; k += 3 {
		s.Add(k, float64(k)*1.5)
	}
	cs := NewCoalescingStore(s)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]float64, 64)
			keys := make([]int, 64)
			for round := 0; round < 20; round++ {
				for i := range keys {
					keys[i] = (w + round + i*4) % 256
				}
				cs.GetBatch(keys, dst)
				for i, k := range keys {
					want := 0.0
					if k%3 == 0 {
						want = float64(k) * 1.5
					}
					if dst[i] != want {
						t.Errorf("key %d = %g, want %g", k, dst[i], want)
						return
					}
				}
				if v := cs.Get((w * round) % 256); v != 0 && v != float64((w*round)%256)*1.5 {
					t.Errorf("Get(%d) = %g", (w*round)%256, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := cs.Stats()
	if st.Requests != st.Fetched+st.Coalesced {
		t.Fatalf("stats do not balance: %+v", st)
	}
}

func TestCoalescingPassthroughs(t *testing.T) {
	s := NewShardedStore(2)
	s.Add(1, 2)
	cs := NewCoalescingStore(s)
	cs.Add(3, 4)
	if cs.NonzeroCount() != 2 {
		t.Fatalf("NonzeroCount = %d", cs.NonzeroCount())
	}
	if !cs.Enumerable() || !IsEnumerable(cs) {
		t.Fatal("sharded-backed coalescing store must be enumerable")
	}
	sum := 0.0
	cs.ForEachNonzero(func(_ int, v float64) bool { sum += v; return true })
	if sum != 6 {
		t.Fatalf("enumerated sum = %g", sum)
	}
	cs.Get(1)
	if cs.Retrievals() != 1 {
		t.Fatalf("Retrievals = %d", cs.Retrievals())
	}
	cs.ResetStats()
	if cs.Retrievals() != 0 || cs.Stats() != (CoalesceStats{}) {
		t.Fatal("ResetStats did not clear counters")
	}
}
