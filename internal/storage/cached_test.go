package storage

import "testing"

func TestCachedStoreHitsAndMisses(t *testing.T) {
	inner := NewArrayStore([]float64{10, 20, 30, 40})
	s, err := NewCachedStore(inner, Unbounded)
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Get(1); v != 20 {
		t.Fatalf("Get = %g", v)
	}
	if v := s.Get(1); v != 20 {
		t.Fatalf("Get = %g", v)
	}
	if s.Retrievals() != 1 {
		t.Fatalf("Retrievals = %d, want 1 (second Get was a hit)", s.Retrievals())
	}
	if s.Hits() != 1 {
		t.Fatalf("Hits = %d", s.Hits())
	}
	if s.Cached() != 1 {
		t.Fatalf("Cached = %d", s.Cached())
	}
}

func TestCachedStoreEviction(t *testing.T) {
	inner := NewArrayStore([]float64{1, 2, 3})
	s, err := NewCachedStore(inner, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.Get(0)
	s.Get(1)
	s.Get(2) // evicts 0
	if s.Cached() != 2 {
		t.Fatalf("Cached = %d", s.Cached())
	}
	s.Get(0) // miss again
	if s.Retrievals() != 4 {
		t.Fatalf("Retrievals = %d, want 4", s.Retrievals())
	}
	// 1 was evicted by the re-fetch of 0 (LRU back), 2 still cached.
	s.Get(2)
	if s.Hits() != 1 {
		t.Fatalf("Hits = %d, want 1", s.Hits())
	}
}

func TestCachedStoreZeroCapacity(t *testing.T) {
	inner := NewArrayStore([]float64{5})
	s, err := NewCachedStore(inner, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Get(0)
	s.Get(0)
	if s.Retrievals() != 2 || s.Hits() != 0 {
		t.Fatalf("retrievals=%d hits=%d", s.Retrievals(), s.Hits())
	}
}

func TestCachedStoreValidationAndReset(t *testing.T) {
	if _, err := NewCachedStore(NewHashStore(), -1); err == nil {
		t.Error("negative capacity should fail")
	}
	inner := NewArrayStore([]float64{7})
	s, err := NewCachedStore(inner, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Get(0)
	s.ResetStats()
	if s.Retrievals() != 0 || s.Hits() != 0 {
		t.Fatal("ResetStats failed")
	}
	// Cache content survives ResetStats.
	s.Get(0)
	if s.Hits() != 1 {
		t.Fatal("cache should survive ResetStats")
	}
	s.ClearCache()
	s.Get(0)
	if s.Retrievals() != 1 {
		t.Fatal("ClearCache should force a miss")
	}
}

func TestCachedStoreEnumerationDelegates(t *testing.T) {
	inner := NewArrayStore([]float64{0, 3, 0})
	s, err := NewCachedStore(inner, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	s.ForEachNonzero(func(k int, v float64) bool {
		if k != 1 || v != 3 {
			t.Fatalf("unexpected (%d, %g)", k, v)
		}
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("visited %d", n)
	}
	if s.NonzeroCount() != 1 {
		t.Fatal("NonzeroCount should delegate")
	}
}
