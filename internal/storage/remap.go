package storage

import "fmt"

// RemappedStore applies a relocation of coefficients to new physical slots —
// a disk layout. Logical keys (the transform positions the engine uses) are
// translated through the layout before reaching the wrapped store, so
// wrapping a RemappedStore in a BlockStore measures how many *blocks* a
// workload touches under that layout: exactly the question the paper's
// conclusion poses ("development of optimal disk layout strategies for
// wavelet data").
type RemappedStore struct {
	inner Store
	// slotOf maps logical key → physical slot.
	slotOf []int32
}

// NewRemappedStore builds the store from a layout: layout[slot] = logical
// key stored in that physical slot. layout must be a permutation of
// [0, len(layout)).
func NewRemappedStore(inner Store, layout []int) (*RemappedStore, error) {
	slotOf := make([]int32, len(layout))
	seen := make([]bool, len(layout))
	for slot, key := range layout {
		if key < 0 || key >= len(layout) {
			return nil, fmt.Errorf("storage: layout entry %d out of range", key)
		}
		if seen[key] {
			return nil, fmt.Errorf("storage: layout repeats key %d", key)
		}
		seen[key] = true
		slotOf[key] = int32(slot)
	}
	return &RemappedStore{inner: inner, slotOf: slotOf}, nil
}

// Slot returns the physical slot of a logical key.
func (s *RemappedStore) Slot(key int) int {
	if key < 0 || key >= len(s.slotOf) {
		panic(fmt.Sprintf("storage: key %d out of range [0,%d)", key, len(s.slotOf)))
	}
	return int(s.slotOf[key])
}

// Get implements Store: reads the physical slot holding the logical key.
func (s *RemappedStore) Get(key int) float64 { return s.inner.Get(s.Slot(key)) }

// Retrievals implements Store.
func (s *RemappedStore) Retrievals() int64 { return s.inner.Retrievals() }

// ResetStats implements Store.
func (s *RemappedStore) ResetStats() { s.inner.ResetStats() }

// NonzeroCount implements Store.
func (s *RemappedStore) NonzeroCount() int { return s.inner.NonzeroCount() }

// ApplyLayout physically rearranges a dense coefficient array according to
// the layout: out[slot] = cells[layout[slot]].
func ApplyLayout(cells []float64, layout []int) ([]float64, error) {
	if len(layout) != len(cells) {
		return nil, fmt.Errorf("storage: layout length %d != cells %d", len(layout), len(cells))
	}
	out := make([]float64, len(cells))
	for slot, key := range layout {
		if key < 0 || key >= len(cells) {
			return nil, fmt.Errorf("storage: layout entry %d out of range", key)
		}
		out[slot] = cells[key]
	}
	return out, nil
}

var _ Store = (*RemappedStore)(nil)
