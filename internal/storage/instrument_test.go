package storage

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

// observeTest installs a fresh registry for the storage layer and uninstalls
// it on cleanup so other tests see the default (off) state.
func observeTest(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	Observe(reg)
	t.Cleanup(func() { Observe(nil) })
	return reg
}

func testDense() []float64 {
	vals := make([]float64, 16)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	return vals
}

func TestInstrumentedStoreTimesRetrievals(t *testing.T) {
	reg := observeTest(t)
	s := WrapInstrumented(NewArrayStore(testDense()))

	if v := s.Get(3); v != 4 {
		t.Fatalf("Get = %v", v)
	}
	dst := make([]float64, 2)
	BatchGet(s, []int{0, 5}, dst)
	ctx := context.Background()
	if _, err := s.GetCtx(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.BatchGetCtx(ctx, []int{2, 3, 4}, make([]float64, 3)); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if snap["wvq_storage_get_seconds_count"] != 2 {
		t.Fatalf("get observations = %v", snap["wvq_storage_get_seconds_count"])
	}
	if snap["wvq_storage_batchget_seconds_count"] != 2 {
		t.Fatalf("batch observations = %v", snap["wvq_storage_batchget_seconds_count"])
	}
	if snap["wvq_storage_batchget_keys_total"] != 5 {
		t.Fatalf("batch keys = %v", snap["wvq_storage_batchget_keys_total"])
	}
}

func TestInstrumentedStorePreservesMarkers(t *testing.T) {
	plain := WrapInstrumented(NewArrayStore(testDense()))
	if _, ok := plain.(Concurrent); ok {
		t.Fatal("wrapper over a plain store must not claim concurrency")
	}
	conc := WrapInstrumented(NewConcurrentStore(NewArrayStore(testDense())))
	if _, ok := conc.(Concurrent); !ok {
		t.Fatal("wrapper must preserve the Concurrent marker")
	}
	if !IsInstrumented(plain.(Store)) || !IsInstrumented(conc.(Store)) {
		t.Fatal("IsInstrumented must recognize both wrapper shapes")
	}
	if IsInstrumented(NewArrayStore(testDense())) {
		t.Fatal("IsInstrumented false positive")
	}
	// Pass-through of the Updatable and Enumerable faces.
	u, ok := plain.(Updatable)
	if !ok {
		t.Fatal("wrapper must stay updatable over an updatable store")
	}
	u.Add(0, 9)
	if v := plain.Get(0); v != 10 {
		t.Fatalf("Add through wrapper: got %v", v)
	}
}

func TestCacheCountersMirrored(t *testing.T) {
	reg := observeTest(t)
	cs, err := NewCachedStore(NewArrayStore(testDense()), 8)
	if err != nil {
		t.Fatal(err)
	}
	cs.Get(1) // miss
	cs.Get(1) // hit
	cs.Get(2) // miss
	snap := reg.Snapshot()
	if snap["wvq_storage_cache_hits_total"] != 1 {
		t.Fatalf("hits = %v", snap["wvq_storage_cache_hits_total"])
	}
	if snap["wvq_storage_cache_misses_total"] != 2 {
		t.Fatalf("misses = %v", snap["wvq_storage_cache_misses_total"])
	}
}

func TestRetryAndFaultCountersMirrored(t *testing.T) {
	reg := observeTest(t)
	// Every third fallible retrieval fails once; two attempts recover it.
	faulty := WrapFaults(NewArrayStore(testDense()), FaultConfig{ErrorEvery: 3})
	retr := WrapRetries(faulty.(Store), RetryConfig{MaxAttempts: 2, BaseDelay: time.Microsecond})
	ctx := context.Background()
	dst := make([]float64, 6)
	if err := retr.BatchGetCtx(ctx, []int{0, 1, 2, 3, 4, 5}, dst); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap[`wvq_storage_faults_injected_total{kind="error"}`] == 0 {
		t.Fatal("no injected faults counted")
	}
	// First round issues 6 attempts; recovered keys add a second round.
	if snap["wvq_storage_retry_attempts_total"] <= 6 {
		t.Fatalf("retry attempts = %v", snap["wvq_storage_retry_attempts_total"])
	}
	if snap["wvq_storage_retry_exhausted_total"] != 0 {
		t.Fatalf("exhausted = %v on a recovering store", snap["wvq_storage_retry_exhausted_total"])
	}

	// A store that always fails exhausts the budget.
	dead := WrapFaults(NewArrayStore(testDense()), FaultConfig{ErrorRate: 1})
	dretr := WrapRetries(dead.(Store), RetryConfig{MaxAttempts: 2, BaseDelay: time.Microsecond})
	err := dretr.BatchGetCtx(ctx, []int{0, 1}, make([]float64, 2))
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v", err)
	}
	snap = reg.Snapshot()
	if snap["wvq_storage_retry_exhausted_total"] != 2 {
		t.Fatalf("exhausted = %v", snap["wvq_storage_retry_exhausted_total"])
	}
}

func TestCoalesceCountersMatchStats(t *testing.T) {
	reg := observeTest(t)
	co := NewCoalescingStore(NewConcurrentStore(NewArrayStore(testDense())))
	dst := make([]float64, 4)
	if err := co.BatchGetCtx(context.Background(), []int{0, 1, 2, 3}, dst); err != nil {
		t.Fatal(err)
	}
	co.Get(7)
	stats := co.Stats()
	snap := reg.Snapshot()
	if int64(snap["wvq_storage_coalesce_requests_total"]) != stats.Requests {
		t.Fatalf("requests: registry %v vs stats %d", snap["wvq_storage_coalesce_requests_total"], stats.Requests)
	}
	if int64(snap["wvq_storage_coalesce_fetched_total"]) != stats.Fetched {
		t.Fatalf("fetched: registry %v vs stats %d", snap["wvq_storage_coalesce_fetched_total"], stats.Fetched)
	}
	if int64(snap["wvq_storage_coalesce_shared_total"]) != stats.Coalesced {
		t.Fatalf("shared: registry %v vs stats %d", snap["wvq_storage_coalesce_shared_total"], stats.Coalesced)
	}
}

// TestUnobservedPassThroughZeroAllocs pins the nil fast path of the
// instrumentation wrapper itself: with no registry observed, Get through the
// wrapper must not allocate.
func TestUnobservedPassThroughZeroAllocs(t *testing.T) {
	Observe(nil)
	s := WrapInstrumented(NewArrayStore(testDense()))
	if n := testing.AllocsPerRun(100, func() {
		s.Get(3)
	}); n != 0 {
		t.Fatalf("unobserved Get allocated %v times per run", n)
	}
}
