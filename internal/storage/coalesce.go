package storage

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// CoalescingStore is a singleflight layer over a concurrent-safe store: when
// several runs ask for the same coefficient at the same time, exactly one
// fetch reaches the wrapped store and every overlapping requester shares its
// result. This extends the paper's intra-batch I/O sharing (one retrieval
// per master-list entry) across concurrent batches: the scheduler advances
// many runs at once, their master lists overlap heavily on the coarse
// wavelet levels, and the overlapping retrievals collapse into one.
//
// Counting: Retrievals of the wrapped store reports only the fetches that
// were actually issued (the layer's misses) — physical I/O, exactly as
// CachedStore counts for sessions. Per-run retrieval counts (Run.Retrieved)
// are unaffected: every run still pays one logical retrieval per requested
// coefficient, so the paper's cost model per run is untouched.
//
// Unlike CachedStore, nothing is retained after a fetch completes: the layer
// holds only the in-flight window, so it is safe at any store size and never
// serves stale values once an Add lands (an Add racing an in-flight fetch of
// the same key has plain Get/Add race semantics, as on the wrapped store).
type CoalescingStore struct {
	inner  Concurrent
	finner FallibleStore

	mu       sync.Mutex
	inflight map[int]*flight

	requests  atomic.Int64 // coefficients requested through the layer
	fetched   atomic.Int64 // coefficients fetched from the wrapped store
	coalesced atomic.Int64 // coefficients served by joining another fetch
}

// flight is one in-progress fetch; joiners block on done and read val/err
// after. A leader's failure is shared with its joiners exactly like a value:
// the coefficient was fetched once on everyone's behalf, so its error is
// everyone's error.
type flight struct {
	done chan struct{}
	val  float64
	err  error
}

// CoalesceStats is a snapshot of the layer's counters. Requests = Fetched +
// Coalesced; a nonzero Coalesced means concurrent runs actually shared I/O.
type CoalesceStats struct {
	Requests  int64 `json:"requests"`
	Fetched   int64 `json:"fetched"`
	Coalesced int64 `json:"coalesced"`
}

// NewCoalescingStore wraps inner. The wrapped store must be concurrent-safe
// (the layer's whole point is overlapping callers).
func NewCoalescingStore(inner Concurrent) *CoalescingStore {
	return &CoalescingStore{inner: inner, finner: AsFallible(inner), inflight: make(map[int]*flight)}
}

// Get implements Store: lead a fetch, or join one already in flight.
func (s *CoalescingStore) Get(key int) float64 {
	s.requests.Add(1)
	s.mu.Lock()
	if f, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-f.done
		s.coalesced.Add(1)
		obsCoalesce(1, 0, 1)
		return f.val
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()

	f.val = s.inner.Get(key)
	s.fetched.Add(1)
	obsCoalesce(1, 1, 0)

	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(f.done)
	return f.val
}

// GetCtx implements FallibleStore: lead a fetch, or join one already in
// flight. A leader's error is shared with every joiner of the same flight; a
// joiner whose own context ends while waiting returns ctx.Err() without
// disturbing the flight (the leader and other joiners are unaffected).
func (s *CoalescingStore) GetCtx(ctx context.Context, key int) (float64, error) {
	s.requests.Add(1)
	s.mu.Lock()
	if f, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		select {
		case <-f.done:
			s.coalesced.Add(1)
			obsCoalesce(1, 0, 1)
			return f.val, f.err
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()

	f.val, f.err = s.finner.GetCtx(ctx, key)
	s.fetched.Add(1)
	obsCoalesce(1, 1, 0)

	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(f.done)
	return f.val, f.err
}

// GetBatch implements BatchGetter. Keys already in flight elsewhere are
// joined; the rest are registered and fetched from the wrapped store in one
// batched call. Duplicate keys within the batch are fetched once and the
// repeats count as coalesced, mirroring the sequential fetch-then-join
// behaviour.
func (s *CoalescingStore) GetBatch(keys []int, dst []float64) {
	if len(keys) != len(dst) {
		panic("storage: GetBatch keys/dst length mismatch")
	}
	s.requests.Add(int64(len(keys)))
	obsCoalesce(int64(len(keys)), 0, 0)

	type join struct {
		pos int
		f   *flight
	}
	var (
		joins    []join
		leadKeys []int
		leadAt   = make(map[int]int) // key → index into leadKeys
		flights  []*flight
	)
	s.mu.Lock()
	for i, k := range keys {
		if j, ok := leadAt[k]; ok {
			// Duplicate within this batch: shares our own fetch.
			joins = append(joins, join{pos: i, f: flights[j]})
			continue
		}
		if f, ok := s.inflight[k]; ok {
			joins = append(joins, join{pos: i, f: f})
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.inflight[k] = f
		leadAt[k] = len(leadKeys)
		leadKeys = append(leadKeys, k)
		flights = append(flights, f)
	}
	s.mu.Unlock()

	if len(leadKeys) > 0 {
		vals := make([]float64, len(leadKeys))
		BatchGet(s.inner, leadKeys, vals)
		s.fetched.Add(int64(len(leadKeys)))
		obsCoalesce(0, int64(len(leadKeys)), 0)
		s.mu.Lock()
		for _, k := range leadKeys {
			delete(s.inflight, k)
		}
		s.mu.Unlock()
		for j, f := range flights {
			f.val = vals[j]
			close(f.done)
		}
		for i, k := range keys {
			if j, ok := leadAt[k]; ok {
				dst[i] = vals[j]
			}
		}
	}
	for _, jn := range joins {
		<-jn.f.done
		dst[jn.pos] = jn.f.val
		s.coalesced.Add(1)
		obsCoalesce(0, 0, 1)
	}
}

// BatchGetCtx implements FallibleStore with GetBatch's sharing: keys in
// flight elsewhere are joined, the rest are fetched from the wrapped store
// in one fallible batch. Per-key failures — from our own lead fetch or from
// a joined leader — are collected into a *BatchError; a non-batch failure of
// the lead fetch (cancellation, total outage) is propagated to every flight
// we lead, so joiners fail too, and returned whole.
func (s *CoalescingStore) BatchGetCtx(ctx context.Context, keys []int, dst []float64) (err error) {
	if len(keys) != len(dst) {
		panic("storage: BatchGetCtx keys/dst length mismatch")
	}
	ctx, sp := obs.StartSpan(ctx, "storage.coalesce.batchget")
	if sp != nil {
		sp.SetAttr("keys", strconv.Itoa(len(keys)))
		defer func() {
			sp.SetError(err)
			sp.End()
		}()
	}
	s.requests.Add(int64(len(keys)))
	obsCoalesce(int64(len(keys)), 0, 0)

	type join struct {
		pos int
		f   *flight
	}
	var (
		joins    []join
		leadKeys []int
		leadAt   = make(map[int]int) // key → index into leadKeys
		flights  []*flight
	)
	s.mu.Lock()
	for i, k := range keys {
		if j, ok := leadAt[k]; ok {
			// Duplicate within this batch: shares our own fetch.
			joins = append(joins, join{pos: i, f: flights[j]})
			continue
		}
		if f, ok := s.inflight[k]; ok {
			joins = append(joins, join{pos: i, f: f})
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.inflight[k] = f
		leadAt[k] = len(leadKeys)
		leadKeys = append(leadKeys, k)
		flights = append(flights, f)
	}
	s.mu.Unlock()

	sp.SetAttr("leads", strconv.Itoa(len(leadKeys)))
	sp.SetAttr("joins", strconv.Itoa(len(joins)))
	// EXPLAIN ANALYZE attribution: requested vs physically fetched (leads)
	// vs served by joining another key's flight. Nil profile = no-op.
	obs.ProfileFrom(ctx).AddCoalesce(len(keys), len(leadKeys), len(joins))

	var whole error // non-batch failure of the lead fetch
	if len(leadKeys) > 0 {
		vals := make([]float64, len(leadKeys))
		err := s.finner.BatchGetCtx(ctx, leadKeys, vals)
		s.fetched.Add(int64(len(leadKeys)))
		obsCoalesce(0, int64(len(leadKeys)), 0)
		var be *BatchError
		switch {
		case err == nil:
		case errors.As(err, &be):
			for _, ke := range be.Failed {
				flights[ke.Index].err = ke.Err
			}
		default:
			whole = err
			for _, f := range flights {
				f.err = err
			}
		}
		s.mu.Lock()
		for _, k := range leadKeys {
			delete(s.inflight, k)
		}
		s.mu.Unlock()
		for j, f := range flights {
			f.val = vals[j]
			close(f.done)
		}
		if whole != nil {
			return whole
		}
	}

	var failed []KeyError
	for i, k := range keys {
		if j, ok := leadAt[k]; ok {
			if f := flights[j]; f.err != nil {
				failed = append(failed, KeyError{Index: i, Key: k, Err: f.err})
			} else {
				dst[i] = f.val
			}
		}
	}
	for _, jn := range joins {
		select {
		case <-jn.f.done:
		case <-ctx.Done():
			return ctx.Err()
		}
		s.coalesced.Add(1)
		obsCoalesce(0, 0, 1)
		if jn.f.err != nil {
			failed = append(failed, KeyError{Index: jn.pos, Key: keys[jn.pos], Err: jn.f.err})
			continue
		}
		dst[jn.pos] = jn.f.val
	}
	if len(failed) > 0 {
		sort.Slice(failed, func(a, b int) bool { return failed[a].Index < failed[b].Index })
		return &BatchError{Failed: failed}
	}
	return nil
}

// Stats returns the coalescing counters.
func (s *CoalescingStore) Stats() CoalesceStats {
	return CoalesceStats{
		Requests:  s.requests.Load(),
		Fetched:   s.fetched.Load(),
		Coalesced: s.coalesced.Load(),
	}
}

// Add implements Updatable when the wrapped store does; it panics otherwise.
// The write goes straight through — the layer holds no cached values to
// invalidate.
func (s *CoalescingStore) Add(key int, delta float64) {
	u, ok := s.inner.(Updatable)
	if !ok {
		panic("storage: wrapped store is not updatable")
	}
	u.Add(key, delta)
}

// Retrievals implements Store: physical fetches issued to the wrapped store.
func (s *CoalescingStore) Retrievals() int64 { return s.inner.Retrievals() }

// ResetStats implements Store, zeroing both the wrapped store's counter and
// the layer's own.
func (s *CoalescingStore) ResetStats() {
	s.inner.ResetStats()
	s.requests.Store(0)
	s.fetched.Store(0)
	s.coalesced.Store(0)
}

// NonzeroCount implements Store.
func (s *CoalescingStore) NonzeroCount() int { return s.inner.NonzeroCount() }

// Enumerable reports whether the wrapped store supports enumeration.
func (s *CoalescingStore) Enumerable() bool { return IsEnumerable(s.inner) }

// ForEachNonzero implements Enumerable when the wrapped store does; it
// panics otherwise (check Enumerable first).
func (s *CoalescingStore) ForEachNonzero(fn func(key int, value float64) bool) {
	e, ok := s.inner.(Enumerable)
	if !ok {
		panic(fmt.Sprintf("storage: %T is not enumerable", s.inner))
	}
	e.ForEachNonzero(fn)
}

// ConcurrentSafe implements Concurrent.
func (s *CoalescingStore) ConcurrentSafe() {}

var (
	_ Store         = (*CoalescingStore)(nil)
	_ Updatable     = (*CoalescingStore)(nil)
	_ BatchGetter   = (*CoalescingStore)(nil)
	_ Concurrent    = (*CoalescingStore)(nil)
	_ Enumerable    = (*CoalescingStore)(nil)
	_ FallibleStore = (*CoalescingStore)(nil)
)
