package storage

import (
	"sync"
	"testing"
)

func TestConcurrentStoreParallelGets(t *testing.T) {
	cells := make([]float64, 1024)
	for i := range cells {
		cells[i] = float64(i)
	}
	cs := NewConcurrentStore(NewArrayStore(cells))
	var wg sync.WaitGroup
	const workers = 8
	const reads = 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				k := (w*reads + i) % 1024
				if got := cs.Get(k); got != float64(k) {
					t.Errorf("Get(%d) = %g", k, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if cs.Retrievals() != workers*reads {
		t.Fatalf("Retrievals = %d, want %d", cs.Retrievals(), workers*reads)
	}
	cs.ResetStats()
	if cs.Retrievals() != 0 {
		t.Fatal("ResetStats failed")
	}
	if cs.NonzeroCount() != 1023 { // cell 0 holds value 0
		t.Fatalf("NonzeroCount = %d", cs.NonzeroCount())
	}
}

func TestConcurrentStoreEnumeration(t *testing.T) {
	cs := NewConcurrentStore(NewArrayStore([]float64{0, 2, 0, 4}))
	var keys []int
	cs.ForEachNonzero(func(k int, v float64) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 3 {
		t.Fatalf("keys = %v", keys)
	}
	if !cs.Enumerable() {
		t.Fatal("Enumerable = false for enumerable inner store")
	}
	if !IsEnumerable(cs) {
		t.Fatal("IsEnumerable = false for enumerable wrapper")
	}
	bad := NewConcurrentStore(nonEnumStore{})
	if bad.Enumerable() {
		t.Fatal("Enumerable = true for non-enumerable inner store")
	}
	if IsEnumerable(bad) {
		t.Fatal("IsEnumerable = true for non-enumerable wrapper")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ForEachNonzero on a non-enumerable inner store did not panic")
		}
	}()
	bad.ForEachNonzero(func(int, float64) bool { return true })
}

func TestConcurrentStoreNestedCapability(t *testing.T) {
	// Capability checks see through nested wrappers: Concurrent(Cached(bad)).
	inner, err := NewCachedStore(nonEnumStore{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewConcurrentStore(inner)
	if cs.Enumerable() || IsEnumerable(cs) {
		t.Fatal("nested non-enumerable store reported as enumerable")
	}
}

func TestConcurrentStoreAdd(t *testing.T) {
	cs := NewConcurrentStore(NewHashStore())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				cs.Add(7, 1)
			}
		}()
	}
	wg.Wait()
	if got := cs.Get(7); got != 400 {
		t.Fatalf("Get(7) = %g after concurrent Adds, want 400", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add on a non-updatable inner store did not panic")
		}
	}()
	NewConcurrentStore(nonEnumStore{}).Add(0, 1)
}
