package storage

import (
	"sync"
	"testing"
)

func TestConcurrentStoreParallelGets(t *testing.T) {
	cells := make([]float64, 1024)
	for i := range cells {
		cells[i] = float64(i)
	}
	cs := NewConcurrentStore(NewArrayStore(cells))
	var wg sync.WaitGroup
	const workers = 8
	const reads = 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				k := (w*reads + i) % 1024
				if got := cs.Get(k); got != float64(k) {
					t.Errorf("Get(%d) = %g", k, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if cs.Retrievals() != workers*reads {
		t.Fatalf("Retrievals = %d, want %d", cs.Retrievals(), workers*reads)
	}
	cs.ResetStats()
	if cs.Retrievals() != 0 {
		t.Fatal("ResetStats failed")
	}
	if cs.NonzeroCount() != 1023 { // cell 0 holds value 0
		t.Fatalf("NonzeroCount = %d", cs.NonzeroCount())
	}
}

func TestConcurrentStoreEnumeration(t *testing.T) {
	cs := NewConcurrentStore(NewArrayStore([]float64{0, 2, 0, 4}))
	var keys []int
	cs.ForEachNonzero(func(k int, v float64) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 3 {
		t.Fatalf("keys = %v", keys)
	}
	if !cs.CanEnumerate() {
		t.Fatal("CanEnumerate = false for enumerable inner store")
	}
	bad := NewConcurrentStore(nonEnumStore{})
	if bad.CanEnumerate() {
		t.Fatal("CanEnumerate = true for non-enumerable inner store")
	}
	called := false
	bad.ForEachNonzero(func(int, float64) bool { called = true; return true })
	if called {
		t.Fatal("ForEachNonzero visited entries of a non-enumerable store")
	}
}
