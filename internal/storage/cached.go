package storage

import (
	"container/list"
	"context"
	"fmt"
	"math"
)

// CachedStore wraps a Store with an LRU coefficient cache that persists
// across plans and runs. In the drill-down sessions of the paper's
// introduction, successive batches overlap heavily (the user refines regions
// already summarized), so coefficients retrieved for one batch answer the
// next for free. CachedStore makes that explicit: cache hits cost nothing,
// and Retrievals reports only the misses that reached the wrapped store.
//
// A capacity of 0 disables caching; Unbounded keeps everything.
type CachedStore struct {
	inner    Store
	finner   FallibleStore
	capacity int
	lru      *list.List // front = most recently used
	index    map[int]*list.Element
	hits     int64
}

type cachedCell struct {
	key int
	val float64
}

// Unbounded is the capacity for a cache that never evicts.
const Unbounded = math.MaxInt

// NewCachedStore wraps inner with a cache of the given capacity (in
// coefficients).
func NewCachedStore(inner Store, capacity int) (*CachedStore, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("storage: negative cache capacity %d", capacity)
	}
	return &CachedStore{
		inner:    inner,
		finner:   AsFallible(inner),
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[int]*list.Element),
	}, nil
}

// Get implements Store. A hit is served from the cache without touching the
// wrapped store; a miss fetches, counts and caches.
func (s *CachedStore) Get(key int) float64 {
	if el, ok := s.index[key]; ok {
		s.hits++
		if m := stObs(); m != nil {
			m.cacheHits.Inc()
		}
		s.lru.MoveToFront(el)
		return el.Value.(cachedCell).val
	}
	if m := stObs(); m != nil {
		m.cacheMisses.Inc()
	}
	v := s.inner.Get(key)
	s.insert(key, v)
	return v
}

// GetCtx implements FallibleStore: hits never touch the wrapped store (and
// so can never fail); misses take the wrapped store's fallible path, and
// only successful fetches enter the cache — a failed retrieval is retried
// against the store next time, never served stale or zero.
func (s *CachedStore) GetCtx(ctx context.Context, key int) (float64, error) {
	if el, ok := s.index[key]; ok {
		s.hits++
		if m := stObs(); m != nil {
			m.cacheHits.Inc()
		}
		s.lru.MoveToFront(el)
		return el.Value.(cachedCell).val, nil
	}
	if m := stObs(); m != nil {
		m.cacheMisses.Inc()
	}
	v, err := s.finner.GetCtx(ctx, key)
	if err != nil {
		return 0, err
	}
	s.insert(key, v)
	return v, nil
}

// insert caches a fetched coefficient, evicting the LRU entry at capacity.
func (s *CachedStore) insert(key int, v float64) {
	if s.capacity == 0 {
		return
	}
	if s.lru.Len() >= s.capacity {
		oldest := s.lru.Back()
		delete(s.index, oldest.Value.(cachedCell).key)
		s.lru.Remove(oldest)
	}
	s.index[key] = s.lru.PushFront(cachedCell{key: key, val: v})
}

// Retrievals implements Store: only misses reach the wrapped store, so this
// is the session's true I/O count.
func (s *CachedStore) Retrievals() int64 { return s.inner.Retrievals() }

// Hits returns the number of Get calls served from the cache.
func (s *CachedStore) Hits() int64 { return s.hits }

// Cached returns the number of coefficients currently cached.
func (s *CachedStore) Cached() int { return s.lru.Len() }

// ResetStats implements Store, zeroing counters but keeping cached contents
// (use ClearCache to drop them).
func (s *CachedStore) ResetStats() {
	s.inner.ResetStats()
	s.hits = 0
}

// ClearCache drops every cached coefficient.
func (s *CachedStore) ClearCache() {
	s.lru.Init()
	s.index = make(map[int]*list.Element)
}

// NonzeroCount implements Store.
func (s *CachedStore) NonzeroCount() int { return s.inner.NonzeroCount() }

// Enumerable reports whether the wrapped store supports enumeration.
func (s *CachedStore) Enumerable() bool { return IsEnumerable(s.inner) }

// ForEachNonzero implements Enumerable when the wrapped store does; it
// panics otherwise (check Enumerable first).
func (s *CachedStore) ForEachNonzero(fn func(key int, value float64) bool) {
	e, ok := s.inner.(Enumerable)
	if !ok {
		panic("storage: wrapped store is not enumerable")
	}
	e.ForEachNonzero(fn)
}

var (
	_ Store         = (*CachedStore)(nil)
	_ Enumerable    = (*CachedStore)(nil)
	_ FallibleStore = (*CachedStore)(nil)
)
