package storage

import (
	"path/filepath"
	"testing"
)

// batchCells is a small coefficient array with zeros mixed in.
func batchCells() []float64 {
	cells := make([]float64, 300)
	for i := range cells {
		if i%3 != 0 {
			cells[i] = float64(i) * 0.5
		}
	}
	return cells
}

// keysScrambled exercises unsorted input, duplicates, and key gaps larger
// than the FileStore coalescing window.
func keysScrambled() []int {
	return []int{299, 0, 17, 17, 120, 121, 122, 5, 250, 1, 299, 60}
}

func checkBatch(t *testing.T, name string, s Store, cells []float64) {
	t.Helper()
	keys := keysScrambled()
	dst := make([]float64, len(keys))
	BatchGet(s, keys, dst)
	for i, k := range keys {
		if dst[i] != cells[k] {
			t.Errorf("%s: dst[%d] (key %d) = %g, want %g", name, i, k, dst[i], cells[k])
		}
	}
	if got := s.Retrievals(); got != int64(len(keys)) {
		t.Errorf("%s: retrievals = %d, want %d", name, got, len(keys))
	}
}

func TestGetBatchStores(t *testing.T) {
	cells := batchCells()

	t.Run("ArrayStore", func(t *testing.T) {
		checkBatch(t, "array", NewArrayStore(cells), cells)
	})
	t.Run("HashStore", func(t *testing.T) {
		checkBatch(t, "hash", NewHashStoreFromDense(cells, 0), cells)
	})
	t.Run("ShardedStore", func(t *testing.T) {
		checkBatch(t, "sharded", NewShardedStoreFromDense(cells, 0, 8), cells)
	})
	t.Run("ConcurrentStore", func(t *testing.T) {
		checkBatch(t, "concurrent", NewConcurrentStore(NewArrayStore(cells)), cells)
	})
	t.Run("FileStore", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "cells.wvfs")
		fs, err := CreateFileStore(path, cells)
		if err != nil {
			t.Fatal(err)
		}
		defer fs.Close()
		checkBatch(t, "file", fs, cells)
	})
	t.Run("BlockStoreFallback", func(t *testing.T) {
		// BlockStore has no GetBatch; BatchGet must fall back to per-key Gets
		// (and block accounting must still happen).
		bs := NewBlockStore(NewArrayStore(cells), 10)
		checkBatch(t, "block", bs, cells)
		if bs.BlockReads() == 0 {
			t.Error("block: no block reads counted through fallback")
		}
	})
}

func TestGetBatchCached(t *testing.T) {
	cells := batchCells()
	inner := NewArrayStore(cells)
	cs, err := NewCachedStore(inner, Unbounded)
	if err != nil {
		t.Fatal(err)
	}
	// Warm two keys through the per-key path.
	cs.Get(17)
	cs.Get(250)
	inner.ResetStats()
	cs.hits = 0

	keys := keysScrambled() // 17 and 299 each appear twice
	dst := make([]float64, len(keys))
	cs.GetBatch(keys, dst)
	for i, k := range keys {
		if dst[i] != cells[k] {
			t.Fatalf("dst[%d] (key %d) = %g, want %g", i, k, dst[i], cells[k])
		}
	}
	// 12 keys: 17×2 and 250 are warm (3 hits), 299 repeats within the batch
	// (1 more hit), leaving 8 distinct cold keys.
	if got := inner.Retrievals(); got != 8 {
		t.Errorf("inner retrievals = %d, want 8", got)
	}
	if got := cs.Hits(); got != 4 {
		t.Errorf("hits = %d, want 4", got)
	}
	// Everything is now cached: a second pass is all hits.
	cs.GetBatch(keys, dst)
	if got := inner.Retrievals(); got != 8 {
		t.Errorf("second pass reached inner store: retrievals = %d", got)
	}
}

func TestGetBatchCachedDisabled(t *testing.T) {
	cells := batchCells()
	inner := NewArrayStore(cells)
	cs, err := NewCachedStore(inner, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := []int{4, 4, 9}
	dst := make([]float64, len(keys))
	cs.GetBatch(keys, dst)
	if got := inner.Retrievals(); got != 3 {
		t.Errorf("capacity-0 cache must forward every key: retrievals = %d", got)
	}
	for i, k := range keys {
		if dst[i] != cells[k] {
			t.Fatalf("dst[%d] = %g, want %g", i, dst[i], cells[k])
		}
	}
}

func TestFileStoreGetBatchCoalescing(t *testing.T) {
	// A long consecutive run plus a far-away key: values must still land in
	// request order even though reads are sorted and coalesced.
	cells := make([]float64, 4096)
	for i := range cells {
		cells[i] = float64(i * i)
	}
	path := filepath.Join(t.TempDir(), "cells.wvfs")
	fs, err := CreateFileStore(path, cells)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	var keys []int
	for k := 100; k < 400; k += 2 { // gaps of 2 — coalesces into one span
		keys = append(keys, k)
	}
	keys = append(keys, 4095, 0, 2048)
	dst := make([]float64, len(keys))
	fs.GetBatch(keys, dst)
	for i, k := range keys {
		if dst[i] != cells[k] {
			t.Fatalf("dst[%d] (key %d) = %g, want %g", i, k, dst[i], cells[k])
		}
	}
	if got := fs.Retrievals(); got != int64(len(keys)) {
		t.Fatalf("retrievals = %d, want %d (cost model counts keys, not syscalls)", got, len(keys))
	}
}

func TestGetBatchOutOfRangePanics(t *testing.T) {
	s := NewArrayStore(make([]float64, 4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range key")
		}
	}()
	s.GetBatch([]int{0, 9}, make([]float64, 2))
}

func TestBatchGetLengthMismatchPanics(t *testing.T) {
	s := NewArrayStore(make([]float64, 4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for keys/dst length mismatch")
		}
	}()
	BatchGet(s, []int{1, 2}, make([]float64, 1))
}
