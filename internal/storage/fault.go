package storage

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error a FaultStore returns for a faulted
// retrieval. Tests match it with errors.Is through every wrapper layer.
var ErrInjected = errors.New("storage: injected fault")

// FaultConfig describes a deterministic fault schedule. Every decision is a
// pure function of (Seed, key) or of the store's call counter, so a given
// configuration produces the same faults on every run — reproducible chaos,
// not flaky tests.
type FaultConfig struct {
	// ErrorRate is the fraction of keys in [0,1] whose retrieval fails. The
	// decision hashes (Seed, key), so a key either always fails or never
	// does, independent of call order.
	ErrorRate float64
	// ErrorEvery fails every Nth fallible retrieval (counting each key of a
	// batch as one retrieval, across the store's lifetime). 0 disables.
	// Unlike ErrorRate it is order-dependent, which is the point: it drives
	// transient-failure schedules that retries can beat.
	ErrorEvery int
	// DelayRate is the fraction of keys whose retrieval is delayed by Delay
	// before being served. Decided by hashing (Seed+1, key).
	DelayRate float64
	// DelayEvery delays every Nth fallible retrieval. 0 disables.
	DelayEvery int
	// Delay is the injected latency for delayed retrievals; it is observed
	// through the context, so a cancelled caller does not sit out the delay.
	Delay time.Duration
	// KeyMatch restricts all key-based decisions (ErrorRate, DelayRate) to
	// the keys it accepts; nil means every key is eligible.
	KeyMatch func(key int) bool
	// Seed drives the per-key hashes.
	Seed uint64
	// Err is the error injected for faulted keys; nil means ErrInjected.
	Err error
}

// FaultStore wraps a Store and injects deterministic failures and latency
// into its fallible path. The infallible path (Get, GetBatch) passes through
// untouched — faults model storage-layer failures, which only the fallible
// API can report — and with a zero-value config the fallible path is a pure
// pass-through, byte-identical to the wrapped store.
type FaultStore struct {
	inner  Store
	finner FallibleStore
	cfg    FaultConfig
	calls  atomic.Int64 // fallible retrievals seen, for Nth-call schedules
}

// NewFaultStore wraps inner with the given fault schedule.
func NewFaultStore(inner Store, cfg FaultConfig) *FaultStore {
	if cfg.Err == nil {
		cfg.Err = ErrInjected
	}
	return &FaultStore{inner: inner, finner: AsFallible(inner), cfg: cfg}
}

// WrapFaults wraps inner like NewFaultStore, preserving the Concurrent
// marker: a concurrent-safe store stays concurrent-safe behind its faults
// (FaultStore's own state is atomic), so the scheduler and coalescing layer
// accept the wrapped store wherever they accepted the original.
func WrapFaults(inner Store, cfg FaultConfig) FallibleStore {
	f := NewFaultStore(inner, cfg)
	if _, ok := inner.(Concurrent); ok {
		return concurrentFaults{f}
	}
	return f
}

// concurrentFaults marks a FaultStore over a concurrent-safe store as itself
// concurrent-safe.
type concurrentFaults struct{ *FaultStore }

// ConcurrentSafe implements Concurrent.
func (concurrentFaults) ConcurrentSafe() {}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash used to
// turn (seed, key) into a reproducible uniform variate.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// keyFraction maps (seed, key) to a uniform value in [0,1).
func keyFraction(seed uint64, key int) float64 {
	return float64(splitmix64(seed^uint64(key))>>11) / (1 << 53)
}

// errKey reports whether key's retrievals fail under the rate schedule.
func (s *FaultStore) errKey(key int) bool {
	if s.cfg.ErrorRate <= 0 || (s.cfg.KeyMatch != nil && !s.cfg.KeyMatch(key)) {
		return false
	}
	return keyFraction(s.cfg.Seed, key) < s.cfg.ErrorRate
}

// delayKey reports whether key's retrievals are delayed under the rate
// schedule.
func (s *FaultStore) delayKey(key int) bool {
	if s.cfg.DelayRate <= 0 || (s.cfg.KeyMatch != nil && !s.cfg.KeyMatch(key)) {
		return false
	}
	return keyFraction(s.cfg.Seed+1, key) < s.cfg.DelayRate
}

// tick advances the lifetime call counter by one retrieval and reports the
// Nth-call decisions for it.
func (s *FaultStore) tick() (errNow, delayNow bool) {
	if s.cfg.ErrorEvery <= 0 && s.cfg.DelayEvery <= 0 {
		return false, false
	}
	n := s.calls.Add(1)
	errNow = s.cfg.ErrorEvery > 0 && n%int64(s.cfg.ErrorEvery) == 0
	delayNow = s.cfg.DelayEvery > 0 && n%int64(s.cfg.DelayEvery) == 0
	return errNow, delayNow
}

// sleepCtx waits for d or for the context to end, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// GetCtx implements FallibleStore, applying the fault schedule to one
// retrieval.
func (s *FaultStore) GetCtx(ctx context.Context, key int) (float64, error) {
	errNow, delayNow := s.tick()
	if delayNow || s.delayKey(key) {
		obsFaultDelay()
		if err := sleepCtx(ctx, s.cfg.Delay); err != nil {
			return 0, err
		}
	}
	if errNow || s.errKey(key) {
		obsFaultErrors(1)
		return 0, &KeyError{Key: key, Err: s.cfg.Err}
	}
	return s.finner.GetCtx(ctx, key)
}

// BatchGetCtx implements FallibleStore. Each key of the batch counts one
// retrieval for the Nth-call schedules; at most one Delay is injected per
// batch (latency coalesces exactly like the I/O it models). Faulted keys are
// withheld from the wrapped store and reported via *BatchError alongside any
// failures of the wrapped store itself.
func (s *FaultStore) BatchGetCtx(ctx context.Context, keys []int, dst []float64) error {
	if len(keys) != len(dst) {
		panic("storage: BatchGetCtx keys/dst length mismatch")
	}
	var (
		failed  []KeyError
		delay   bool
		good    []int
		goodPos []int
	)
	for i, k := range keys {
		errNow, delayNow := s.tick()
		delay = delay || delayNow || s.delayKey(k)
		if errNow || s.errKey(k) {
			failed = append(failed, KeyError{Index: i, Key: k, Err: s.cfg.Err})
			continue
		}
		good = append(good, k)
		goodPos = append(goodPos, i)
	}
	obsFaultErrors(int64(len(failed)))
	if delay {
		obsFaultDelay()
		if err := sleepCtx(ctx, s.cfg.Delay); err != nil {
			return err
		}
	}
	if len(good) > 0 {
		vals := make([]float64, len(good))
		err := s.finner.BatchGetCtx(ctx, good, vals)
		var be *BatchError
		switch {
		case err == nil:
		case errors.As(err, &be):
			bad := make(map[int]error, len(be.Failed))
			for _, ke := range be.Failed {
				bad[ke.Index] = ke.Err
			}
			for j, pos := range goodPos {
				if cause, ok := bad[j]; ok {
					failed = append(failed, KeyError{Index: pos, Key: good[j], Err: cause})
					continue
				}
				dst[pos] = vals[j]
			}
		default:
			return err
		}
		if be == nil {
			for j, pos := range goodPos {
				dst[pos] = vals[j]
			}
		}
	}
	if len(failed) > 0 {
		sort.Slice(failed, func(a, b int) bool { return failed[a].Index < failed[b].Index })
		return &BatchError{Failed: failed}
	}
	return nil
}

// Get implements Store as a pure pass-through: the infallible path has no
// way to report a fault, so it never sees one.
func (s *FaultStore) Get(key int) float64 { return s.inner.Get(key) }

// GetBatch implements BatchGetter as a pure pass-through.
func (s *FaultStore) GetBatch(keys []int, dst []float64) { BatchGet(s.inner, keys, dst) }

// Add implements Updatable when the wrapped store does; it panics otherwise.
func (s *FaultStore) Add(key int, delta float64) {
	u, ok := s.inner.(Updatable)
	if !ok {
		panic(fmt.Sprintf("storage: %T is not updatable", s.inner))
	}
	u.Add(key, delta)
}

// Retrievals implements Store: only retrievals that reached the wrapped
// store count — an injected failure fails before touching storage.
func (s *FaultStore) Retrievals() int64 { return s.inner.Retrievals() }

// ResetStats implements Store. The Nth-call counter is part of the fault
// schedule, not a statistic, so it is not reset.
func (s *FaultStore) ResetStats() { s.inner.ResetStats() }

// NonzeroCount implements Store.
func (s *FaultStore) NonzeroCount() int { return s.inner.NonzeroCount() }

// Enumerable reports whether the wrapped store supports enumeration.
func (s *FaultStore) Enumerable() bool { return IsEnumerable(s.inner) }

// ForEachNonzero implements Enumerable when the wrapped store does; it
// panics otherwise (check Enumerable first).
func (s *FaultStore) ForEachNonzero(fn func(key int, value float64) bool) {
	e, ok := s.inner.(Enumerable)
	if !ok {
		panic(fmt.Sprintf("storage: %T is not enumerable", s.inner))
	}
	e.ForEachNonzero(fn)
}

var (
	_ FallibleStore = (*FaultStore)(nil)
	_ BatchGetter   = (*FaultStore)(nil)
	_ Updatable     = (*FaultStore)(nil)
	_ Enumerable    = (*FaultStore)(nil)
	_ Concurrent    = concurrentFaults{}
)
