// Package storage holds the materialized view of the transformed data
// frequency distribution Δ̂ and implements the paper's I/O cost model:
// coefficients live in array- or hash-based storage with constant-time
// random access, and the unit of cost is one retrieval per requested
// coefficient (Section 1.3 of the paper). Every store counts retrievals so
// that the experiments can report exactly the quantities the paper reports.
//
// Stores are not safe for concurrent use; the evaluation engine is
// single-threaded, matching the paper's sequential retrieval model.
package storage

import (
	"fmt"
	"math"
)

// Store provides random access to transform coefficients by flat key.
type Store interface {
	// Get returns the coefficient at key, counting one retrieval. Missing
	// coefficients are zero (and still cost a retrieval: the engine had to
	// probe storage to learn that).
	Get(key int) float64
	// Retrievals returns the number of Get calls since the last ResetStats.
	Retrievals() int64
	// ResetStats zeroes the retrieval counter.
	ResetStats()
	// NonzeroCount returns the number of nonzero coefficients held.
	NonzeroCount() int
}

// Updatable is a Store that supports incremental maintenance: adding delta
// to a single coefficient, which is how tuple inserts propagate into Δ̂.
type Updatable interface {
	Store
	// Add adds delta to the coefficient at key without counting a retrieval.
	Add(key int, delta float64)
}

// Enumerable is implemented by stores that can iterate their nonzero
// coefficients (for persistence and diagnostics). Iteration order is
// unspecified; fn returning false stops the walk. Enumeration does not
// count retrievals.
//
// Wrapper stores (ConcurrentStore, CachedStore, BlockStore,
// CoalescingStore) satisfy this interface unconditionally but can only
// enumerate when the store they wrap can; they additionally expose an
// `Enumerable() bool` capability check and their ForEachNonzero panics when
// it reports false. Use IsEnumerable to test a store of unknown shape.
type Enumerable interface {
	ForEachNonzero(fn func(key int, value float64) bool)
}

// enumerationCapable is the capability check implemented by wrapper stores
// whose enumerability depends on the store they wrap.
type enumerationCapable interface {
	Enumerable() bool
}

// IsEnumerable reports whether s actually supports ForEachNonzero: it
// implements Enumerable and, for capability-aware wrappers, the wrapped
// store does too. Callers should check this before enumerating a store of
// unknown provenance; wrappers panic on unsupported enumeration rather than
// silently visiting nothing.
func IsEnumerable(s Store) bool {
	if c, ok := s.(enumerationCapable); ok {
		return c.Enumerable()
	}
	_, ok := s.(Enumerable)
	return ok
}

// ArrayStore keeps the full dense coefficient array. Access is a bounds
// check and an index — the paper's "array-based storage".
type ArrayStore struct {
	cells      []float64
	retrievals int64
}

// NewArrayStore wraps the given dense coefficient array. The caller retains
// no ownership obligations; the store aliases the slice.
func NewArrayStore(cells []float64) *ArrayStore {
	return &ArrayStore{cells: cells}
}

// Get implements Store.
func (s *ArrayStore) Get(key int) float64 {
	s.retrievals++
	if key < 0 || key >= len(s.cells) {
		panic(fmt.Sprintf("storage: key %d out of range [0,%d)", key, len(s.cells)))
	}
	return s.cells[key]
}

// Add implements Updatable.
func (s *ArrayStore) Add(key int, delta float64) {
	if key < 0 || key >= len(s.cells) {
		panic(fmt.Sprintf("storage: key %d out of range [0,%d)", key, len(s.cells)))
	}
	s.cells[key] += delta
}

// Retrievals implements Store.
func (s *ArrayStore) Retrievals() int64 { return s.retrievals }

// ResetStats implements Store.
func (s *ArrayStore) ResetStats() { s.retrievals = 0 }

// NonzeroCount implements Store.
func (s *ArrayStore) NonzeroCount() int {
	n := 0
	for _, v := range s.cells {
		if v != 0 {
			n++
		}
	}
	return n
}

// Size returns the total number of cells (zero or not).
func (s *ArrayStore) Size() int { return len(s.cells) }

// ForEachNonzero implements Enumerable (ascending key order).
func (s *ArrayStore) ForEachNonzero(fn func(key int, value float64) bool) {
	for k, v := range s.cells {
		if v != 0 {
			if !fn(k, v) {
				return
			}
		}
	}
}

// HashStore keeps only nonzero coefficients in a hash table — the paper's
// "hash-based storage", appropriate when the transform is sparse relative to
// the domain.
type HashStore struct {
	cells      map[int]float64
	retrievals int64
}

// NewHashStore returns an empty hash store.
func NewHashStore() *HashStore {
	return &HashStore{cells: make(map[int]float64)}
}

// NewHashStoreFromDense builds a hash store from a dense coefficient array,
// keeping entries with |value| > tol.
func NewHashStoreFromDense(cells []float64, tol float64) *HashStore {
	s := NewHashStore()
	for k, v := range cells {
		if math.Abs(v) > tol {
			s.cells[k] = v
		}
	}
	return s
}

// Get implements Store.
func (s *HashStore) Get(key int) float64 {
	s.retrievals++
	return s.cells[key]
}

// Add implements Updatable.
func (s *HashStore) Add(key int, delta float64) {
	if v := s.cells[key] + delta; v == 0 {
		delete(s.cells, key)
	} else {
		s.cells[key] = v
	}
}

// Retrievals implements Store.
func (s *HashStore) Retrievals() int64 { return s.retrievals }

// ResetStats implements Store.
func (s *HashStore) ResetStats() { s.retrievals = 0 }

// NonzeroCount implements Store.
func (s *HashStore) NonzeroCount() int { return len(s.cells) }

// ForEachNonzero implements Enumerable (map order).
func (s *HashStore) ForEachNonzero(fn func(key int, value float64) bool) {
	for k, v := range s.cells {
		if !fn(k, v) {
			return
		}
	}
}

// BlockStore simulates a disk layout in which consecutive flat keys are
// grouped into fixed-size blocks and the unit of I/O is one block. A block
// fetched once stays in the (unbounded) buffer until ResetStats, so
// retrieving several coefficients from one block costs a single block read —
// the setting of the paper's "importance functions for disk blocks" future
// work, implemented here as an extension.
type BlockStore struct {
	inner      Store
	blockSize  int
	fetched    map[int]struct{}
	blockReads int64
}

// NewBlockStore wraps inner with a simulated block layer of the given block
// size (number of coefficients per block).
func NewBlockStore(inner Store, blockSize int) *BlockStore {
	if blockSize <= 0 {
		panic("storage: block size must be positive")
	}
	return &BlockStore{inner: inner, blockSize: blockSize, fetched: make(map[int]struct{})}
}

// Get implements Store. The retrieval counter of the underlying store still
// counts coefficients; BlockReads counts blocks.
func (s *BlockStore) Get(key int) float64 {
	b := key / s.blockSize
	if _, ok := s.fetched[b]; !ok {
		s.fetched[b] = struct{}{}
		s.blockReads++
	}
	return s.inner.Get(key)
}

// Block returns the block number for key.
func (s *BlockStore) Block(key int) int { return key / s.blockSize }

// BlockSize returns the number of coefficients per block.
func (s *BlockStore) BlockSize() int { return s.blockSize }

// BlockReads returns the number of distinct blocks fetched since ResetStats.
func (s *BlockStore) BlockReads() int64 { return s.blockReads }

// Retrievals implements Store, delegating to the wrapped store.
func (s *BlockStore) Retrievals() int64 { return s.inner.Retrievals() }

// ResetStats implements Store: clears the buffer and both counters.
func (s *BlockStore) ResetStats() {
	s.inner.ResetStats()
	s.blockReads = 0
	s.fetched = make(map[int]struct{})
}

// NonzeroCount implements Store.
func (s *BlockStore) NonzeroCount() int { return s.inner.NonzeroCount() }

// Enumerable reports whether the wrapped store supports enumeration.
func (s *BlockStore) Enumerable() bool { return IsEnumerable(s.inner) }

// ForEachNonzero implements Enumerable when the wrapped store does; it
// panics otherwise (check Enumerable first).
func (s *BlockStore) ForEachNonzero(fn func(key int, value float64) bool) {
	e, ok := s.inner.(Enumerable)
	if !ok {
		panic("storage: wrapped store is not enumerable")
	}
	e.ForEachNonzero(fn)
}

var (
	_ Updatable  = (*ArrayStore)(nil)
	_ Updatable  = (*HashStore)(nil)
	_ Store      = (*BlockStore)(nil)
	_ Enumerable = (*ArrayStore)(nil)
	_ Enumerable = (*HashStore)(nil)
	_ Enumerable = (*BlockStore)(nil)
)
