package storage

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// errFlaky is the transient failure injected by flakyStore.
var errFlaky = errors.New("flaky")

// flakyStore fails the first failures[key] fallible retrievals of each key,
// then serves normally. The infallible path never fails. It counts fallible
// attempts per key so tests can assert exactly how often a wrapper re-asked.
type flakyStore struct {
	*ArrayStore
	mu       sync.Mutex
	failures map[int]int
	attempts map[int]int
}

func newFlakyStore(cells []float64, failures map[int]int) *flakyStore {
	return &flakyStore{
		ArrayStore: NewArrayStore(cells),
		failures:   failures,
		attempts:   make(map[int]int),
	}
}

func (s *flakyStore) attemptsFor(key int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attempts[key]
}

func (s *flakyStore) GetCtx(ctx context.Context, key int) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.attempts[key]++
	n := s.failures[key]
	if n > 0 {
		s.failures[key] = n - 1
	}
	s.mu.Unlock()
	if n > 0 {
		return 0, &KeyError{Key: key, Err: errFlaky}
	}
	return s.ArrayStore.Get(key), nil
}

func (s *flakyStore) BatchGetCtx(ctx context.Context, keys []int, dst []float64) error {
	var failed []KeyError
	for i, k := range keys {
		v, err := s.GetCtx(ctx, k)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			failed = append(failed, KeyError{Index: i, Key: k, Err: errFlaky})
			continue
		}
		dst[i] = v
	}
	if len(failed) > 0 {
		return &BatchError{Failed: failed}
	}
	return nil
}

var _ FallibleStore = (*flakyStore)(nil)

func testCells(n int) []float64 {
	cells := make([]float64, n)
	for i := range cells {
		cells[i] = float64(i%13) - 5.5
	}
	return cells
}

func TestFaultStoreZeroConfigIsPassThrough(t *testing.T) {
	cells := testCells(64)
	plain := NewArrayStore(cells)
	faulty := NewFaultStore(NewArrayStore(cells), FaultConfig{})
	ctx := context.Background()
	for k := 0; k < 64; k++ {
		v, err := faulty.GetCtx(ctx, k)
		if err != nil {
			t.Fatalf("GetCtx(%d): %v", k, err)
		}
		if want := plain.Get(k); v != want {
			t.Fatalf("GetCtx(%d) = %g, want %g", k, v, want)
		}
	}
	keys := []int{3, 3, 17, 60}
	got := make([]float64, len(keys))
	want := make([]float64, len(keys))
	if err := faulty.BatchGetCtx(ctx, keys, got); err != nil {
		t.Fatalf("BatchGetCtx: %v", err)
	}
	BatchGet(plain, keys, want)
	for i := range keys {
		if got[i] != want[i] {
			t.Fatalf("batch[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestFaultStoreErrorRateIsDeterministic(t *testing.T) {
	cells := testCells(256)
	cfg := FaultConfig{ErrorRate: 0.4, Seed: 42}
	ctx := context.Background()
	observe := func() map[int]bool {
		s := NewFaultStore(NewArrayStore(cells), cfg)
		failed := make(map[int]bool)
		for k := 0; k < 256; k++ {
			if _, err := s.GetCtx(ctx, k); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("GetCtx(%d): %v, want ErrInjected", k, err)
				}
				var ke *KeyError
				if !errors.As(err, &ke) || ke.Key != k {
					t.Fatalf("GetCtx(%d) error does not carry the key: %v", k, err)
				}
				failed[k] = true
			}
		}
		return failed
	}
	first := observe()
	if len(first) == 0 || len(first) == 256 {
		t.Fatalf("ErrorRate 0.4 failed %d/256 keys", len(first))
	}
	second := observe()
	if len(first) != len(second) {
		t.Fatalf("fault sets differ across runs: %d vs %d", len(first), len(second))
	}
	for k := range first {
		if !second[k] {
			t.Fatalf("key %d failed in run 1 but not run 2", k)
		}
	}
	// A different seed picks a different fault set.
	other := NewFaultStore(NewArrayStore(cells), FaultConfig{ErrorRate: 0.4, Seed: 1042})
	same := true
	for k := 0; k < 256; k++ {
		_, err := other.GetCtx(ctx, k)
		if (err != nil) != first[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 1042 produced identical fault sets")
	}
}

func TestFaultStoreErrorEverySchedule(t *testing.T) {
	s := NewFaultStore(NewArrayStore(testCells(32)), FaultConfig{ErrorEvery: 3})
	ctx := context.Background()
	for call := 1; call <= 9; call++ {
		_, err := s.GetCtx(ctx, call%32)
		if wantErr := call%3 == 0; (err != nil) != wantErr {
			t.Fatalf("call %d: err = %v, want failure %v", call, err, wantErr)
		}
	}
	// Each key of a batch counts one call: calls 10..15, so batch indices
	// landing on calls 12 and 15 fail.
	keys := []int{1, 2, 3, 4, 5, 6}
	dst := make([]float64, len(keys))
	err := s.BatchGetCtx(ctx, keys, dst)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("BatchGetCtx: %v, want *BatchError", err)
	}
	if len(be.Failed) != 2 || be.Failed[0].Index != 2 || be.Failed[1].Index != 5 {
		t.Fatalf("failed = %v, want indices 2 and 5", be.Failed)
	}
}

func TestFaultStoreKeyMatchRestrictsFaults(t *testing.T) {
	cfg := FaultConfig{ErrorRate: 1, KeyMatch: func(key int) bool { return key%2 == 0 }}
	s := NewFaultStore(NewArrayStore(testCells(16)), cfg)
	ctx := context.Background()
	for k := 0; k < 16; k++ {
		_, err := s.GetCtx(ctx, k)
		if wantErr := k%2 == 0; (err != nil) != wantErr {
			t.Fatalf("key %d: err = %v, want failure %v", k, err, wantErr)
		}
	}
}

func TestFaultStoreCustomError(t *testing.T) {
	boom := errors.New("boom")
	s := NewFaultStore(NewArrayStore(testCells(4)), FaultConfig{ErrorRate: 1, Err: boom})
	if _, err := s.GetCtx(context.Background(), 1); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestFaultStoreDelayObservesCancellation(t *testing.T) {
	s := NewFaultStore(NewArrayStore(testCells(4)), FaultConfig{
		DelayRate: 1, Delay: time.Hour,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.GetCtx(ctx, 2)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled delay still took %v", elapsed)
	}
	dst := make([]float64, 2)
	if err := s.BatchGetCtx(ctx, []int{0, 1}, dst); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("batch err = %v, want deadline exceeded", err)
	}
}

func TestFaultStoreBatchPartialFailure(t *testing.T) {
	cells := testCells(128)
	cfg := FaultConfig{ErrorRate: 0.5, Seed: 7}
	s := NewFaultStore(NewArrayStore(cells), cfg)
	keys := make([]int, 128)
	for i := range keys {
		keys[i] = i
	}
	dst := make([]float64, len(keys))
	const sentinel = -999.25
	for i := range dst {
		dst[i] = sentinel
	}
	err := s.BatchGetCtx(context.Background(), keys, dst)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("BatchGetCtx: %v, want *BatchError", err)
	}
	failedAt := make(map[int]bool)
	prev := -1
	for _, ke := range be.Failed {
		if ke.Index <= prev {
			t.Fatalf("failed indices not ascending: %v", be.Failed)
		}
		prev = ke.Index
		if !errors.Is(ke.Err, ErrInjected) {
			t.Fatalf("cause = %v", ke.Err)
		}
		failedAt[ke.Index] = true
	}
	for i, k := range keys {
		if failedAt[i] {
			if dst[i] != sentinel {
				t.Fatalf("failed position %d was written: %g", i, dst[i])
			}
			continue
		}
		if dst[i] != cells[k] {
			t.Fatalf("dst[%d] = %g, want %g", i, dst[i], cells[k])
		}
	}
	// The same keys fail on the per-key GetCtx path.
	for i, k := range keys {
		_, gerr := s.GetCtx(context.Background(), k)
		if (gerr != nil) != failedAt[i] {
			t.Fatalf("key %d: GetCtx failure %v, batch failure %v", k, gerr != nil, failedAt[i])
		}
	}
}

func TestFaultStoreInfalliblePathUntouched(t *testing.T) {
	cells := testCells(32)
	s := NewFaultStore(NewArrayStore(cells), FaultConfig{ErrorRate: 1, DelayRate: 1, Delay: time.Hour})
	start := time.Now()
	for k := 0; k < 32; k++ {
		if v := s.Get(k); v != cells[k] {
			t.Fatalf("Get(%d) = %g, want %g", k, v, cells[k])
		}
	}
	dst := make([]float64, 4)
	s.GetBatch([]int{1, 2, 3, 4}, dst)
	for i, k := range []int{1, 2, 3, 4} {
		if dst[i] != cells[k] {
			t.Fatalf("GetBatch[%d] = %g", i, dst[i])
		}
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("infallible path was delayed: %v", elapsed)
	}
}

func TestWrapFaultsPreservesConcurrentMarker(t *testing.T) {
	plain := WrapFaults(NewArrayStore(testCells(4)), FaultConfig{})
	if _, ok := plain.(Concurrent); ok {
		t.Fatal("FaultStore over a plain store must not claim concurrency")
	}
	conc := WrapFaults(NewConcurrentStore(NewArrayStore(testCells(4))), FaultConfig{})
	if _, ok := conc.(Concurrent); !ok {
		t.Fatal("FaultStore over a concurrent store must stay concurrent")
	}
	if _, ok := WrapRetries(NewArrayStore(testCells(4)), RetryConfig{}).(Concurrent); ok {
		t.Fatal("RetryStore over a plain store must not claim concurrency")
	}
	if _, ok := WrapRetries(NewConcurrentStore(NewArrayStore(testCells(4))), RetryConfig{}).(Concurrent); !ok {
		t.Fatal("RetryStore over a concurrent store must stay concurrent")
	}
}

func TestCachedStoreDoesNotCacheErrors(t *testing.T) {
	flaky := newFlakyStore(testCells(16), map[int]int{3: 1})
	cs, err := NewCachedStore(flaky, Unbounded)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := cs.GetCtx(ctx, 3); !errors.Is(err, errFlaky) {
		t.Fatalf("first GetCtx = %v, want flaky failure", err)
	}
	v, err := cs.GetCtx(ctx, 3)
	if err != nil {
		t.Fatalf("second GetCtx: %v (the failure was cached)", err)
	}
	if want := flaky.ArrayStore.Get(3); v != want {
		t.Fatalf("recovered value = %g, want %g", v, want)
	}
	if got := flaky.attemptsFor(3); got != 2 {
		t.Fatalf("inner attempts = %d, want 2 (error uncached, success cached)", got)
	}
	// Third read must come from the cache.
	if _, err := cs.GetCtx(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if got := flaky.attemptsFor(3); got != 2 {
		t.Fatalf("inner attempts after cached read = %d, want 2", got)
	}
}

func TestCachedStoreBatchGetCtxPartialFailure(t *testing.T) {
	cells := testCells(16)
	flaky := newFlakyStore(cells, map[int]int{5: 1})
	cs, err := NewCachedStore(flaky, Unbounded)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Duplicate failing key: both caller positions must be reported.
	keys := []int{5, 2, 5, 9}
	dst := make([]float64, len(keys))
	berr := cs.BatchGetCtx(ctx, keys, dst)
	var be *BatchError
	if !errors.As(berr, &be) {
		t.Fatalf("BatchGetCtx: %v, want *BatchError", berr)
	}
	if len(be.Failed) != 2 || be.Failed[0].Index != 0 || be.Failed[1].Index != 2 {
		t.Fatalf("failed = %+v, want caller indices 0 and 2", be.Failed)
	}
	if dst[1] != cells[2] || dst[3] != cells[9] {
		t.Fatalf("good positions wrong: %v", dst)
	}
	// The failed miss was not cached; the batch succeeds wholesale now.
	if err := cs.BatchGetCtx(ctx, keys, dst); err != nil {
		t.Fatalf("retry batch: %v", err)
	}
	if dst[0] != cells[5] || dst[2] != cells[5] {
		t.Fatalf("recovered values wrong: %v", dst)
	}
}

// holdStore holds fallible retrievals open until the test releases them,
// exposing the coalescing flight lifecycle to deterministic inspection.
type holdStore struct {
	*ArrayStore
	entered chan int   // receives the key when a retrieval reaches the store
	release chan error // the held retrieval returns this error (nil = serve)
}

func (s *holdStore) ConcurrentSafe() {}

func (s *holdStore) GetCtx(ctx context.Context, key int) (float64, error) {
	s.entered <- key
	if err := <-s.release; err != nil {
		return 0, &KeyError{Key: key, Err: err}
	}
	return s.ArrayStore.Get(key), nil
}

func (s *holdStore) BatchGetCtx(ctx context.Context, keys []int, dst []float64) error {
	var failed []KeyError
	for i, k := range keys {
		v, err := s.GetCtx(ctx, k)
		if err != nil {
			var ke *KeyError
			errors.As(err, &ke)
			failed = append(failed, KeyError{Index: i, Key: k, Err: ke.Err})
			continue
		}
		dst[i] = v
	}
	if len(failed) > 0 {
		return &BatchError{Failed: failed}
	}
	return nil
}

var (
	_ FallibleStore = (*holdStore)(nil)
	_ Concurrent    = (*holdStore)(nil)
)

func TestCoalescingStoreSharesLeaderError(t *testing.T) {
	hold := &holdStore{
		ArrayStore: NewArrayStore(testCells(8)),
		entered:    make(chan int, 4),
		release:    make(chan error, 4),
	}
	cs := NewCoalescingStore(hold)
	ctx := context.Background()
	boom := errors.New("boom")

	type result struct {
		v   float64
		err error
	}
	leader := make(chan result, 1)
	go func() {
		v, err := cs.GetCtx(ctx, 5)
		leader <- result{v, err}
	}()
	<-hold.entered // the flight is registered and the leader holds it open

	joiner := make(chan result, 1)
	go func() {
		v, err := cs.GetCtx(ctx, 5)
		joiner <- result{v, err}
	}()
	time.Sleep(20 * time.Millisecond) // let the joiner reach the flight wait
	hold.release <- boom

	lr, jr := <-leader, <-joiner
	if !errors.Is(lr.err, boom) {
		t.Fatalf("leader err = %v", lr.err)
	}
	if !errors.Is(jr.err, boom) {
		t.Fatalf("joiner err = %v (the leader's failure was not shared)", jr.err)
	}
	if len(hold.entered) != 0 {
		t.Fatal("joiner reached the inner store; the fetch was not coalesced")
	}
	// The failed flight must not poison the key: a fresh retrieval succeeds.
	done := make(chan result, 1)
	go func() {
		v, err := cs.GetCtx(ctx, 5)
		done <- result{v, err}
	}()
	<-hold.entered
	hold.release <- nil
	if r := <-done; r.err != nil || r.v != hold.ArrayStore.Get(5) {
		t.Fatalf("post-failure retrieval = (%g, %v)", r.v, r.err)
	}
}

func TestCoalescingStoreJoinerCancellation(t *testing.T) {
	hold := &holdStore{
		ArrayStore: NewArrayStore(testCells(8)),
		entered:    make(chan int, 4),
		release:    make(chan error, 4),
	}
	cs := NewCoalescingStore(hold)
	leader := make(chan error, 1)
	go func() {
		_, err := cs.GetCtx(context.Background(), 2)
		leader <- err
	}()
	<-hold.entered

	jctx, jcancel := context.WithCancel(context.Background())
	joiner := make(chan error, 1)
	go func() {
		_, err := cs.GetCtx(jctx, 2)
		joiner <- err
	}()
	time.Sleep(10 * time.Millisecond)
	jcancel()
	select {
	case err := <-joiner:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("joiner err = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled joiner is stuck on the flight")
	}
	// The leader is unaffected by the joiner's cancellation.
	hold.release <- nil
	if err := <-leader; err != nil {
		t.Fatalf("leader err = %v", err)
	}
}

func TestCoalescingStoreBatchFaultsUnderRace(t *testing.T) {
	cells := testCells(512)
	faulty := WrapFaults(NewConcurrentStore(NewArrayStore(cells)), FaultConfig{ErrorRate: 0.3, Seed: 11})
	conc, ok := faulty.(Concurrent)
	if !ok {
		t.Fatal("faulty store lost the Concurrent marker")
	}
	cs := NewCoalescingStore(conc)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			keys := make([]int, 64)
			for i := range keys {
				keys[i] = (g*17 + i*3) % 512 // overlapping key sets
			}
			dst := make([]float64, len(keys))
			err := cs.BatchGetCtx(ctx, keys, dst)
			if err == nil {
				errs[g] = nil
				return
			}
			var be *BatchError
			if !errors.As(err, &be) {
				errs[g] = err
				return
			}
			failedAt := make(map[int]bool)
			for _, ke := range be.Failed {
				if !errors.Is(ke.Err, ErrInjected) {
					errs[g] = ke.Err
					return
				}
				failedAt[ke.Index] = true
			}
			for i, k := range keys {
				if !failedAt[i] && dst[i] != cells[k] {
					errs[g] = errors.New("wrong value on good position")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}
