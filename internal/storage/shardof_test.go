package storage

import (
	"math/rand"
	"testing"
)

// TestShardOfMatchesShardedStorePlacement pins the contract the distributed
// coordinator relies on: the exported ShardOf and ShardedStore's internal
// placement agree for every key and every shard count, so a coordinator
// routing key k to network shard ShardOf(k, n) asks exactly the node that a
// ShardedStore with n shards would have stored k in.
func TestShardOfMatchesShardedStorePlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		s := NewShardedStore(n)
		if s.NumShards() != n {
			t.Fatalf("NewShardedStore(%d) has %d shards", n, s.NumShards())
		}
		check := func(key int) {
			t.Helper()
			want := int(s.shardOf(key))
			got := ShardOf(key, n)
			if got != want {
				t.Fatalf("n=%d key=%d: ShardOf=%d, store places in %d", n, key, got, want)
			}
			if got < 0 || got >= n {
				t.Fatalf("n=%d key=%d: shard %d out of range", n, key, got)
			}
		}
		// Structured wavelet key patterns: runs and strided levels.
		for key := 0; key < 4096; key++ {
			check(key)
		}
		for stride := 1; stride <= 1<<20; stride <<= 1 {
			for i := 0; i < 64; i++ {
				check(i * stride)
			}
		}
		for i := 0; i < 4096; i++ {
			check(rng.Intn(1 << 30))
		}
	}
}

// TestShardOfStoredKeysLandInTheirShard adds coefficients to a sharded store
// and asserts each key physically lives in the shard ShardOf names.
func TestShardOfStoredKeysLandInTheirShard(t *testing.T) {
	const n = 8
	s := NewShardedStore(n)
	rng := rand.New(rand.NewSource(13))
	keys := make(map[int]struct{})
	for i := 0; i < 2000; i++ {
		k := rng.Intn(1 << 24)
		keys[k] = struct{}{}
		s.Add(k, 1+rng.Float64())
	}
	for k := range keys {
		si := ShardOf(k, n)
		s.shards[si].mu.RLock()
		_, ok := s.shards[si].cells[k]
		s.shards[si].mu.RUnlock()
		if !ok {
			t.Fatalf("key %d not found in shard %d where ShardOf places it", k, si)
		}
	}
}

// TestShardOfRejectsNonPowerOfTwo pins the panic: a silently rounded shard
// count would desynchronize partitioners.
func TestShardOfRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, -1, 3, 6, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ShardOf(1, %d) did not panic", n)
				}
			}()
			ShardOf(1, n)
		}()
	}
}
