package storage

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrRetriesExhausted wraps the final error of a retrieval that failed on
// every attempt. Match with errors.Is.
var ErrRetriesExhausted = errors.New("storage: retries exhausted")

// RetryConfig tunes a RetryStore. The zero value is usable: Normalize fills
// in three attempts with 1ms–100ms exponential backoff and full jitter.
type RetryConfig struct {
	// MaxAttempts is the total number of tries per retrieval, including the
	// first (≥1). 0 means the default of 3.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it. 0 means the default of 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 means the default of 100ms.
	MaxDelay time.Duration
	// Jitter in [0,1] scales each backoff by a factor drawn uniformly from
	// [1-Jitter, 1+Jitter], decorrelating concurrent retriers. The draw is
	// seeded, so runs are reproducible. Negative means no jitter; 0 means
	// the default of 0.5.
	Jitter float64
	// AttemptTimeout bounds each individual attempt with a derived context.
	// 0 disables; the caller's context still bounds the whole retrieval.
	AttemptTimeout time.Duration
	// Seed drives the jitter sequence.
	Seed uint64
}

// normalized returns cfg with defaults applied.
func (cfg RetryConfig) normalized() RetryConfig {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 100 * time.Millisecond
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.5
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.Jitter > 1 {
		cfg.Jitter = 1
	}
	return cfg
}

// RetryStore wraps a FallibleStore-capable Store and retries failed fallible
// retrievals with exponential backoff and jitter. Cancellation is never
// retried: when the caller's context ends, the retrieval returns ctx.Err()
// immediately, whatever attempt it was on. The infallible path (Get,
// GetBatch) passes through untouched — it has no errors to retry.
type RetryStore struct {
	inner  Store
	finner FallibleStore
	cfg    RetryConfig
	draws  atomic.Int64 // jitter draws, for a reproducible sequence
}

// NewRetryStore wraps inner with the given retry policy.
func NewRetryStore(inner Store, cfg RetryConfig) *RetryStore {
	return &RetryStore{inner: inner, finner: AsFallible(inner), cfg: cfg.normalized()}
}

// WrapRetries wraps inner like NewRetryStore, preserving the Concurrent
// marker so a concurrent-safe store stays accepted wherever the original
// was (RetryStore's own state is atomic).
func WrapRetries(inner Store, cfg RetryConfig) FallibleStore {
	r := NewRetryStore(inner, cfg)
	if _, ok := inner.(Concurrent); ok {
		return concurrentRetries{r}
	}
	return r
}

// concurrentRetries marks a RetryStore over a concurrent-safe store as
// itself concurrent-safe.
type concurrentRetries struct{ *RetryStore }

// ConcurrentSafe implements Concurrent.
func (concurrentRetries) ConcurrentSafe() {}

// backoff returns the jittered delay before attempt number `attempt`
// (1-based count of completed attempts).
func (s *RetryStore) backoff(attempt int) time.Duration {
	d := s.cfg.BaseDelay << (attempt - 1)
	if d > s.cfg.MaxDelay || d <= 0 { // <=0 guards shift overflow
		d = s.cfg.MaxDelay
	}
	if s.cfg.Jitter > 0 {
		u := keyFraction(s.cfg.Seed, int(s.draws.Add(1)))
		d = time.Duration(float64(d) * (1 + s.cfg.Jitter*(2*u-1)))
	}
	return d
}

// attemptCtx derives the per-attempt context.
func (s *RetryStore) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.AttemptTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.cfg.AttemptTimeout)
}

// exhausted wraps the last error of a retrieval whose attempts ran out.
func (s *RetryStore) exhausted(last error) error {
	return fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, s.cfg.MaxAttempts, last)
}

// GetCtx implements FallibleStore, retrying transient failures.
func (s *RetryStore) GetCtx(ctx context.Context, key int) (float64, error) {
	var last error
	for attempt := 1; attempt <= s.cfg.MaxAttempts; attempt++ {
		obsRetryAttempts(1)
		actx, cancel := s.attemptCtx(ctx)
		v, err := s.finner.GetCtx(actx, key)
		cancel()
		if err == nil {
			return v, nil
		}
		last = err
		if cerr := ctx.Err(); cerr != nil {
			return 0, cerr
		}
		if attempt < s.cfg.MaxAttempts {
			if serr := sleepCtx(ctx, s.backoff(attempt)); serr != nil {
				return 0, serr
			}
		}
	}
	obsRetryExhausted(1)
	return 0, &KeyError{Key: key, Err: s.exhausted(last)}
}

// BatchGetCtx implements FallibleStore. A partial failure retries only the
// failed subset — coefficients already fetched are kept, so each retry round
// shrinks the batch. Keys still failing when attempts run out come back in a
// *BatchError with each cause wrapped in ErrRetriesExhausted; cancellation
// aborts the whole call with ctx.Err().
func (s *RetryStore) BatchGetCtx(ctx context.Context, keys []int, dst []float64) (err error) {
	if len(keys) != len(dst) {
		panic("storage: BatchGetCtx keys/dst length mismatch")
	}
	ctx, sp := obs.StartSpan(ctx, "storage.retry.batchget")
	attempts := 0
	if sp != nil {
		sp.SetAttr("keys", strconv.Itoa(len(keys)))
		defer func() {
			sp.SetAttr("attempts", strconv.Itoa(attempts))
			sp.SetError(err)
			sp.End()
		}()
	}
	// pend maps the positions still unfetched; initially the whole batch.
	pend := make([]int, len(keys))
	for i := range pend {
		pend[i] = i
	}
	pendKeys := make([]int, len(keys))
	copy(pendKeys, keys)
	vals := make([]float64, len(keys))
	var lastFailed []KeyError // failures of the most recent attempt, batch-relative
	for attempt := 1; attempt <= s.cfg.MaxAttempts; attempt++ {
		attempts = attempt
		obsRetryAttempts(int64(len(pend)))
		actx, cancel := s.attemptCtx(ctx)
		err := s.finner.BatchGetCtx(actx, pendKeys[:len(pend)], vals[:len(pend)])
		cancel()
		var be *BatchError
		switch {
		case err == nil:
			for j, pos := range pend {
				dst[pos] = vals[j]
			}
			return nil
		case errors.As(err, &be):
			bad := make(map[int]error, len(be.Failed))
			for _, ke := range be.Failed {
				bad[ke.Index] = ke.Err
			}
			lastFailed = lastFailed[:0]
			next := 0
			for j, pos := range pend {
				if cause, ok := bad[j]; ok {
					lastFailed = append(lastFailed, KeyError{Index: pos, Key: keys[pos], Err: cause})
					pend[next] = pos
					pendKeys[next] = keys[pos]
					next++
					continue
				}
				dst[pos] = vals[j]
			}
			pend = pend[:next]
		default:
			// Whole-batch failure: nothing fetched this round, every pending
			// position failed for the same reason.
			lastFailed = lastFailed[:0]
			for _, pos := range pend {
				lastFailed = append(lastFailed, KeyError{Index: pos, Key: keys[pos], Err: err})
			}
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if attempt < s.cfg.MaxAttempts {
			if serr := sleepCtx(ctx, s.backoff(attempt)); serr != nil {
				return serr
			}
		}
	}
	obsRetryExhausted(int64(len(lastFailed)))
	failed := make([]KeyError, len(lastFailed))
	for i, ke := range lastFailed {
		failed[i] = KeyError{Index: ke.Index, Key: ke.Key, Err: s.exhausted(ke.Err)}
	}
	return &BatchError{Failed: failed}
}

// Get implements Store as a pure pass-through.
func (s *RetryStore) Get(key int) float64 { return s.inner.Get(key) }

// GetBatch implements BatchGetter as a pure pass-through.
func (s *RetryStore) GetBatch(keys []int, dst []float64) { BatchGet(s.inner, keys, dst) }

// Add implements Updatable when the wrapped store does; it panics otherwise.
func (s *RetryStore) Add(key int, delta float64) {
	u, ok := s.inner.(Updatable)
	if !ok {
		panic(fmt.Sprintf("storage: %T is not updatable", s.inner))
	}
	u.Add(key, delta)
}

// Retrievals implements Store: every attempt that reached the wrapped store
// counts, so retries are visible as extra physical I/O.
func (s *RetryStore) Retrievals() int64 { return s.inner.Retrievals() }

// ResetStats implements Store.
func (s *RetryStore) ResetStats() { s.inner.ResetStats() }

// NonzeroCount implements Store.
func (s *RetryStore) NonzeroCount() int { return s.inner.NonzeroCount() }

// Enumerable reports whether the wrapped store supports enumeration.
func (s *RetryStore) Enumerable() bool { return IsEnumerable(s.inner) }

// ForEachNonzero implements Enumerable when the wrapped store does; it
// panics otherwise (check Enumerable first).
func (s *RetryStore) ForEachNonzero(fn func(key int, value float64) bool) {
	e, ok := s.inner.(Enumerable)
	if !ok {
		panic(fmt.Sprintf("storage: %T is not enumerable", s.inner))
	}
	e.ForEachNonzero(fn)
}

var (
	_ FallibleStore = (*RetryStore)(nil)
	_ BatchGetter   = (*RetryStore)(nil)
	_ Updatable     = (*RetryStore)(nil)
	_ Enumerable    = (*RetryStore)(nil)
	_ Concurrent    = concurrentRetries{}
)
