package storage

import (
	"testing"
)

func TestArrayStoreGetAndCount(t *testing.T) {
	s := NewArrayStore([]float64{1, 0, 3})
	if v := s.Get(0); v != 1 {
		t.Fatalf("Get(0) = %g", v)
	}
	if v := s.Get(1); v != 0 {
		t.Fatalf("Get(1) = %g", v)
	}
	if s.Retrievals() != 2 {
		t.Fatalf("Retrievals = %d", s.Retrievals())
	}
	s.ResetStats()
	if s.Retrievals() != 0 {
		t.Fatal("ResetStats failed")
	}
	if s.NonzeroCount() != 2 {
		t.Fatalf("NonzeroCount = %d", s.NonzeroCount())
	}
	if s.Size() != 3 {
		t.Fatalf("Size = %d", s.Size())
	}
}

func TestArrayStoreAdd(t *testing.T) {
	s := NewArrayStore(make([]float64, 4))
	s.Add(2, 5)
	s.Add(2, -2)
	if got := s.Get(2); got != 3 {
		t.Fatalf("after Add: %g", got)
	}
	// Add must not count as a retrieval.
	if s.Retrievals() != 1 {
		t.Fatalf("Retrievals = %d", s.Retrievals())
	}
}

func TestArrayStorePanicsOutOfRange(t *testing.T) {
	s := NewArrayStore(make([]float64, 2))
	for _, fn := range []func(){
		func() { s.Get(-1) },
		func() { s.Get(2) },
		func() { s.Add(5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHashStore(t *testing.T) {
	s := NewHashStoreFromDense([]float64{0, 2, 0, -1e-12, 4}, 1e-9)
	if s.NonzeroCount() != 2 {
		t.Fatalf("NonzeroCount = %d", s.NonzeroCount())
	}
	if v := s.Get(1); v != 2 {
		t.Fatalf("Get(1) = %g", v)
	}
	if v := s.Get(3); v != 0 {
		t.Fatalf("Get(3) = %g (pruned entry should read as zero)", v)
	}
	if s.Retrievals() != 2 {
		t.Fatalf("Retrievals = %d", s.Retrievals())
	}
}

func TestHashStoreAddDeletesZero(t *testing.T) {
	s := NewHashStore()
	s.Add(7, 3)
	s.Add(7, -3)
	if s.NonzeroCount() != 0 {
		t.Fatal("cancelled entry should be deleted")
	}
	s.Add(7, 1.5)
	if s.Get(7) != 1.5 {
		t.Fatal("Add failed")
	}
}

func TestBlockStoreCountsDistinctBlocks(t *testing.T) {
	inner := NewArrayStore([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	s := NewBlockStore(inner, 4)
	s.Get(0)
	s.Get(1)
	s.Get(3)
	if s.BlockReads() != 1 {
		t.Fatalf("BlockReads = %d, want 1", s.BlockReads())
	}
	s.Get(4)
	if s.BlockReads() != 2 {
		t.Fatalf("BlockReads = %d, want 2", s.BlockReads())
	}
	if s.Retrievals() != 4 {
		t.Fatalf("coefficient retrievals = %d", s.Retrievals())
	}
	s.ResetStats()
	if s.BlockReads() != 0 || s.Retrievals() != 0 {
		t.Fatal("ResetStats failed")
	}
	// Same block fetched again after reset costs again.
	s.Get(0)
	if s.BlockReads() != 1 {
		t.Fatal("block buffer should be cleared by ResetStats")
	}
}

func TestBlockStoreHelpers(t *testing.T) {
	s := NewBlockStore(NewHashStore(), 16)
	if s.Block(31) != 1 || s.Block(15) != 0 {
		t.Fatal("Block mapping wrong")
	}
	if s.BlockSize() != 16 {
		t.Fatal("BlockSize wrong")
	}
	if s.NonzeroCount() != 0 {
		t.Fatal("NonzeroCount should delegate")
	}
}

func TestBlockStorePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBlockStore(NewHashStore(), 0)
}

func BenchmarkArrayStoreGet(b *testing.B) {
	s := NewArrayStore(make([]float64, 1<<16))
	for i := 0; i < b.N; i++ {
		s.Get(i & 0xffff)
	}
}

func BenchmarkHashStoreGet(b *testing.B) {
	cells := make([]float64, 1<<16)
	for i := range cells {
		cells[i] = float64(i % 7)
	}
	s := NewHashStoreFromDense(cells, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(i & 0xffff)
	}
}
