package storage

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fastRetry keeps test backoffs tiny without touching the policy under test.
func fastRetry(attempts int) RetryConfig {
	return RetryConfig{
		MaxAttempts: attempts,
		BaseDelay:   10 * time.Microsecond,
		MaxDelay:    100 * time.Microsecond,
		Seed:        1,
	}
}

func TestRetryStoreRecoversTransientFailure(t *testing.T) {
	flaky := newFlakyStore(testCells(16), map[int]int{7: 2})
	rs := NewRetryStore(flaky, fastRetry(3))
	v, err := rs.GetCtx(context.Background(), 7)
	if err != nil {
		t.Fatalf("GetCtx: %v", err)
	}
	if want := flaky.ArrayStore.Get(7); v != want {
		t.Fatalf("recovered value = %g, want %g", v, want)
	}
	if got := flaky.attemptsFor(7); got != 3 {
		t.Fatalf("inner attempts = %d, want 3 (two failures + success)", got)
	}
}

func TestRetryStoreExhaustsAttempts(t *testing.T) {
	flaky := newFlakyStore(testCells(16), map[int]int{7: 10})
	rs := NewRetryStore(flaky, fastRetry(2))
	_, err := rs.GetCtx(context.Background(), 7)
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if !errors.Is(err, errFlaky) {
		t.Fatalf("err = %v, must still wrap the final cause", err)
	}
	var ke *KeyError
	if !errors.As(err, &ke) || ke.Key != 7 {
		t.Fatalf("err = %v, must identify the key", err)
	}
	if got := flaky.attemptsFor(7); got != 2 {
		t.Fatalf("inner attempts = %d, want exactly MaxAttempts", got)
	}
}

func TestRetryStoreBatchRetriesOnlyFailedSubset(t *testing.T) {
	cells := testCells(32)
	// Key 4 fails once (recoverable), key 9 always fails, key 2 never fails.
	flaky := newFlakyStore(cells, map[int]int{4: 1, 9: 100})
	rs := NewRetryStore(flaky, fastRetry(3))
	keys := []int{2, 4, 9}
	dst := make([]float64, len(keys))
	err := rs.BatchGetCtx(context.Background(), keys, dst)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("BatchGetCtx: %v, want *BatchError", err)
	}
	if len(be.Failed) != 1 || be.Failed[0].Index != 2 || be.Failed[0].Key != 9 {
		t.Fatalf("failed = %+v, want only key 9 at index 2", be.Failed)
	}
	if !errors.Is(be.Failed[0].Err, ErrRetriesExhausted) || !errors.Is(be.Failed[0].Err, errFlaky) {
		t.Fatalf("cause = %v", be.Failed[0].Err)
	}
	if dst[0] != cells[2] || dst[1] != cells[4] {
		t.Fatalf("recovered values wrong: %v", dst)
	}
	// Subset discipline: key 2 succeeded on round one and was never re-asked;
	// key 4 was asked twice; key 9 burned every attempt.
	if got := flaky.attemptsFor(2); got != 1 {
		t.Fatalf("key 2 attempts = %d, want 1", got)
	}
	if got := flaky.attemptsFor(4); got != 2 {
		t.Fatalf("key 4 attempts = %d, want 2", got)
	}
	if got := flaky.attemptsFor(9); got != 3 {
		t.Fatalf("key 9 attempts = %d, want 3", got)
	}
}

func TestRetryStoreBatchFullRecovery(t *testing.T) {
	cells := testCells(32)
	flaky := newFlakyStore(cells, map[int]int{4: 1, 11: 2})
	rs := NewRetryStore(flaky, fastRetry(3))
	keys := []int{4, 11, 30}
	dst := make([]float64, len(keys))
	if err := rs.BatchGetCtx(context.Background(), keys, dst); err != nil {
		t.Fatalf("BatchGetCtx: %v", err)
	}
	for i, k := range keys {
		if dst[i] != cells[k] {
			t.Fatalf("dst[%d] = %g, want %g", i, dst[i], cells[k])
		}
	}
}

func TestRetryStoreDoesNotRetryCancellation(t *testing.T) {
	flaky := newFlakyStore(testCells(8), map[int]int{3: 100})
	rs := NewRetryStore(flaky, fastRetry(5))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rs.GetCtx(ctx, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if got := flaky.attemptsFor(3); got > 1 {
		t.Fatalf("inner attempts = %d after cancellation, want ≤1", got)
	}
	dst := make([]float64, 1)
	if err := rs.BatchGetCtx(ctx, []int{3}, dst); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want Canceled", err)
	}
}

func TestRetryStoreAttemptTimeoutBoundsSlowFetch(t *testing.T) {
	slow := NewFaultStore(NewArrayStore(testCells(8)), FaultConfig{
		DelayRate: 1, Delay: time.Hour,
	})
	cfg := fastRetry(2)
	cfg.AttemptTimeout = 5 * time.Millisecond
	rs := NewRetryStore(slow, cfg)
	start := time.Now()
	_, err := rs.GetCtx(context.Background(), 1)
	if !errors.Is(err, ErrRetriesExhausted) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want exhausted deadline failures", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("two 5ms attempts took %v", elapsed)
	}
}

func TestRetryStoreZeroFaultPassThrough(t *testing.T) {
	cells := testCells(64)
	plain := NewArrayStore(cells)
	rs := NewRetryStore(NewArrayStore(cells), RetryConfig{})
	ctx := context.Background()
	for k := 0; k < 64; k++ {
		v, err := rs.GetCtx(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		if want := plain.Get(k); v != want {
			t.Fatalf("GetCtx(%d) = %g, want %g", k, v, want)
		}
	}
	if v := rs.Get(9); v != cells[9] {
		t.Fatalf("Get = %g", v)
	}
}

func TestRetryStoreBeatsNthCallFaultSchedule(t *testing.T) {
	// ErrorEvery faults are transient by construction — the retry lands on a
	// different call number — so a retry layer must fully absorb them.
	faulty := NewFaultStore(NewArrayStore(testCells(64)), FaultConfig{ErrorEvery: 2})
	rs := NewRetryStore(faulty, fastRetry(3))
	ctx := context.Background()
	for k := 0; k < 64; k++ {
		if _, err := rs.GetCtx(ctx, k); err != nil {
			t.Fatalf("GetCtx(%d): %v", k, err)
		}
	}
	// A batch ticks the call counter once per pending key, so each retry
	// round halves the failing subset: a 32-key batch needs ~log2(32)+2
	// rounds to drain.
	rs = NewRetryStore(faulty, fastRetry(8))
	keys := make([]int, 32)
	for i := range keys {
		keys[i] = i
	}
	dst := make([]float64, len(keys))
	if err := rs.BatchGetCtx(ctx, keys, dst); err != nil {
		t.Fatalf("BatchGetCtx: %v", err)
	}
}

func TestRetryStoreBackoffBounded(t *testing.T) {
	rs := NewRetryStore(NewArrayStore(testCells(4)), RetryConfig{
		MaxAttempts: 50,
		BaseDelay:   time.Millisecond,
		MaxDelay:    8 * time.Millisecond,
		Jitter:      1,
		Seed:        3,
	})
	for attempt := 1; attempt <= 50; attempt++ {
		d := rs.backoff(attempt)
		if d < 0 || d > 16*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, outside [0, 2×MaxDelay]", attempt, d)
		}
	}
}
