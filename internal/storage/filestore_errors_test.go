package storage

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func tempFileStore(t *testing.T, cells []float64) (*FileStore, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "coeffs.wvfs")
	fs, err := CreateFileStore(path, cells)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fs.Close() })
	return fs, path
}

// TestFileStoreBatchReadAmplification is the regression test for the
// coalescing caps: the bytes physically read per batch are pinned against
// the bytes requested, so a change that reintroduces unbounded
// read-through (one giant span for strided keys) fails here.
func TestFileStoreBatchReadAmplification(t *testing.T) {
	const n = 1 << 19 // 4 MiB file
	cells := make([]float64, n)
	for i := range cells {
		cells[i] = float64(i + 1)
	}
	fs, _ := tempFileStore(t, cells)

	// Dense-ish batch: every second cell. Gap cells are read through (one
	// wasted per key), so amplification must stay ~2x, never more than 3x.
	var keys []int
	for k := 0; k < n; k += 2 {
		keys = append(keys, k)
	}
	dst := make([]float64, len(keys))
	fs.ResetStats()
	fs.GetBatch(keys, dst)
	reads, bytesRead := fs.IOStats()
	requested := int64(len(keys) * 8)
	if bytesRead > 3*requested {
		t.Fatalf("stride-2 batch read %d bytes for %d requested (amplification %.1fx, cap 3x)",
			bytesRead, requested, float64(bytesRead)/float64(requested))
	}
	// The span cap splits the single dense run; the waste cap splits it
	// further. Either way the syscall count stays far below one per key.
	if reads <= 1 || reads > int64(len(keys))/16 {
		t.Fatalf("stride-2 batch used %d reads for %d keys", reads, len(keys))
	}
	for i, k := range keys {
		if dst[i] != cells[k] {
			t.Fatalf("key %d read %v, want %v", k, dst[i], cells[k])
		}
	}

	// Worst-case stride the gap cap still coalesces (64): per-read waste
	// must respect fileStoreMaxWasteCells, bounding each read to roughly
	// (waste cap + useful) cells — not one file-sized span.
	keys = keys[:0]
	for k := 0; k < n; k += 64 {
		keys = append(keys, k)
	}
	dst = make([]float64, len(keys))
	fs.ResetStats()
	fs.GetBatch(keys, dst)
	reads, bytesRead = fs.IOStats()
	maxPerRead := int64(fileStoreMaxWasteCells+fileStoreMaxGap+1) * 8 * 2
	if perRead := bytesRead / reads; perRead > maxPerRead {
		t.Fatalf("stride-64 batch averaged %d bytes per read, cap %d", perRead, maxPerRead)
	}
	// And the batch total is pinned: useful bytes + at most the waste cap
	// per read issued.
	if limit := int64(len(keys)*8) + reads*int64(fileStoreMaxWasteCells)*8; bytesRead > limit {
		t.Fatalf("stride-64 batch read %d bytes, pinned limit %d", bytesRead, limit)
	}

	// Span cap: a fully consecutive run longer than fileStoreMaxSpanCells
	// must split instead of building one oversized buffer/read.
	keys = keys[:0]
	for k := 0; k < fileStoreMaxSpanCells+1000; k++ {
		keys = append(keys, k)
	}
	dst = make([]float64, len(keys))
	fs.ResetStats()
	fs.GetBatch(keys, dst)
	reads, bytesRead = fs.IOStats()
	if reads < 2 {
		t.Fatalf("consecutive run over the span cap used %d reads, want a split", reads)
	}
	if bytesRead != int64(len(keys)*8) {
		t.Fatalf("consecutive run read %d bytes, want exactly %d (no waste)", bytesRead, len(keys)*8)
	}
	for i, k := range keys {
		if dst[i] != cells[k] {
			t.Fatalf("key %d read %v, want %v", k, dst[i], cells[k])
		}
	}

	// BatchGetCtx shares the same coalescing: same bytes, same splits.
	fs.ResetStats()
	if err := fs.BatchGetCtx(context.Background(), keys, dst); err != nil {
		t.Fatal(err)
	}
	ctxReads, ctxBytes := fs.IOStats()
	if ctxReads != reads || ctxBytes != bytesRead {
		t.Fatalf("BatchGetCtx I/O (%d reads, %d bytes) differs from GetBatch (%d, %d)",
			ctxReads, ctxBytes, reads, bytesRead)
	}
}

// TestFileStoreShortReadAtEOF pins the partial-serve contract: when the
// file is truncated under a live store, a batch spanning the cut serves
// every position whose bytes were read before the cut and fails exactly
// the uncovered ones per-key — the BatchError contract, not a whole-batch
// failure.
func TestFileStoreShortReadAtEOF(t *testing.T) {
	const n = 4096
	cells := make([]float64, n)
	for i := range cells {
		cells[i] = float64(i + 1)
	}
	fs, path := tempFileStore(t, cells)

	// Cut the file mid-cell-array: cells [0,keep) remain readable.
	const keep = 1000
	if err := os.Truncate(path, int64(fileStoreHeaderSize)+keep*8); err != nil {
		t.Fatal(err)
	}

	// One coalesced run straddling the cut.
	var keys []int
	for k := keep - 20; k < keep+20; k++ {
		keys = append(keys, k)
	}
	dst := make([]float64, len(keys))
	err := fs.BatchGetCtx(context.Background(), keys, dst)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("BatchGetCtx across EOF = %v, want *BatchError", err)
	}
	failedAt := map[int]bool{}
	for _, ke := range be.Failed {
		failedAt[ke.Index] = true
		if ke.Key < keep {
			t.Fatalf("key %d was readable but reported failed", ke.Key)
		}
	}
	for i, k := range keys {
		if k < keep {
			if failedAt[i] {
				t.Fatalf("position %d (key %d) below the cut must be served", i, k)
			}
			if dst[i] != cells[k] {
				t.Fatalf("key %d read %v, want %v (short read must still serve covered cells)", k, dst[i], cells[k])
			}
		} else if !failedAt[i] {
			t.Fatalf("position %d (key %d) beyond the cut must fail", i, k)
		}
	}

	// GetCtx on a truncated cell is a per-key error too.
	if _, err := fs.GetCtx(context.Background(), keep+5); err == nil {
		t.Fatal("GetCtx beyond the cut must fail")
	} else {
		var ke *KeyError
		if !errors.As(err, &ke) || ke.Key != keep+5 {
			t.Fatalf("GetCtx error = %v, want KeyError for %d", err, keep+5)
		}
	}
}

// stepCancelCtx reports Canceled starting from its (after+1)-th Err call.
type stepCancelCtx struct {
	context.Context
	mu    sync.Mutex
	calls int
	after int
}

func (c *stepCancelCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// TestFileStoreBatchCancellationMidBatch pins that cancellation between
// coalesced runs aborts the batch whole — a context error, never a
// *BatchError — both before the first run and after some runs completed.
func TestFileStoreBatchCancellationMidBatch(t *testing.T) {
	const n = 1 << 16
	cells := make([]float64, n)
	for i := range cells {
		cells[i] = float64(i + 1)
	}
	fs, _ := tempFileStore(t, cells)

	// Widely separated keys: every key is its own coalesced run.
	var keys []int
	for k := 0; k < n; k += 1000 {
		keys = append(keys, k)
	}
	dst := make([]float64, len(keys))

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if err := fs.BatchGetCtx(pre, keys, dst); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled batch = %v, want context.Canceled", err)
	}

	// Cancel after the entry check plus two run checks: some runs have been
	// read, the loop must still abort with the context error alone.
	mid := &stepCancelCtx{Context: context.Background(), after: 3}
	err := fs.BatchGetCtx(mid, keys, dst)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-batch cancellation = %v, want context.Canceled", err)
	}
	var be *BatchError
	if errors.As(err, &be) {
		t.Fatal("cancellation must not be reported as a BatchError")
	}
}

// TestFileStoreReopenAfterTruncation pins corruption detection at open: a
// file whose size disagrees with its header cell count is rejected, for
// truncation, growth, and a header cut.
func TestFileStoreReopenAfterTruncation(t *testing.T) {
	cells := make([]float64, 512)
	for i := range cells {
		cells[i] = rand.New(rand.NewSource(1)).NormFloat64()
	}
	fs, path := tempFileStore(t, cells)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		size int64
	}{
		{"cell truncated", st.Size() - 8},
		{"partial cell", st.Size() - 3},
		{"grown", st.Size() + 8},
		{"header cut", int64(fileStoreHeaderSize) - 2},
	} {
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, tc.size); err != nil {
			// Growth needs a write, not truncate-up on all platforms.
			t.Fatal(err)
		}
		if s, err := OpenFileStore(path); err == nil {
			_ = s.Close()
			t.Fatalf("%s: OpenFileStore accepted a corrupt file", tc.name)
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Restored file opens fine again.
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("restored file rejected: %v", err)
	}
	if got := s.Get(3); got != cells[3] {
		t.Fatalf("restored Get(3) = %v, want %v", got, cells[3])
	}
	_ = s.Close()
}
