package storage

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Concurrent marks stores that are safe for use from multiple goroutines.
// The evaluation engine uses it to decide whether retrievals may be issued
// in parallel (Plan.ExactParallel) and the HTTP server uses it to drop its
// global request mutex.
type Concurrent interface {
	Store
	// ConcurrentSafe is a marker; it performs no work.
	ConcurrentSafe()
}

// ShardedStore is a hash store physically partitioned into N lock shards:
// each shard owns a disjoint slice of the key space behind its own RWMutex,
// and the retrieval counter is a single atomic. Concurrent readers touching
// different shards proceed without contending, which is what lets many
// progressive runs (or HTTP requests) share one materialized view — the
// single-mutex ConcurrentStore serializes every Get instead.
//
// ShardedStore implements Store, Updatable, Enumerable, BatchGetter and
// Concurrent. Enumeration order is unspecified (as for HashStore).
type ShardedStore struct {
	shards     []storeShard
	mask       uint64
	shift      uint
	retrievals atomic.Int64
}

type storeShard struct {
	mu    sync.RWMutex
	cells map[int]float64
	// pad spaces shard headers apart so neighboring shard locks do not
	// false-share a cache line under concurrent load.
	_ [32]byte
}

// DefaultShards returns the shard count used when NewShardedStore is given
// 0: enough shards that GOMAXPROCS concurrent readers rarely collide.
func DefaultShards() int { return nextPow2(8 * runtime.GOMAXPROCS(0)) }

// NewShardedStore returns an empty sharded store. shards is rounded up to a
// power of two; 0 selects DefaultShards.
func NewShardedStore(shards int) *ShardedStore {
	if shards <= 0 {
		shards = DefaultShards()
	}
	shards = nextPow2(shards)
	s := &ShardedStore{
		shards: make([]storeShard, shards),
		mask:   uint64(shards - 1),
		shift:  64 - log2(uint64(shards)),
	}
	for i := range s.shards {
		s.shards[i].cells = make(map[int]float64)
	}
	return s
}

// NewShardedStoreFromDense builds a sharded store from a dense coefficient
// array, keeping entries with |value| > tol.
func NewShardedStoreFromDense(cells []float64, tol float64, shards int) *ShardedStore {
	s := NewShardedStore(shards)
	for k, v := range cells {
		if math.Abs(v) > tol {
			s.shards[s.shardOf(k)].cells[k] = v
		}
	}
	return s
}

// NewShardedStoreFrom copies the nonzero coefficients of an existing store
// into a sharded store. The source must be Enumerable.
func NewShardedStoreFrom(src Store, shards int) (*ShardedStore, error) {
	e, ok := src.(Enumerable)
	if !ok {
		return nil, fmt.Errorf("storage: cannot shard a non-enumerable store")
	}
	s := NewShardedStore(shards)
	e.ForEachNonzero(func(k int, v float64) bool {
		s.shards[s.shardOf(k)].cells[k] = v
		return true
	})
	return s, nil
}

// shardPartitionMultiplier is the Fibonacci multiplicative-hash constant of
// the shard partition function (⌊2⁶⁴/φ⌋, odd): multiplying by it and keeping
// the top bits spreads the structured key patterns of wavelet master lists
// (runs, strided levels) evenly across shards.
const shardPartitionMultiplier = 0x9E3779B97F4A7C15

// ShardOf is the packed-key → shard partition function: it returns the shard
// index of key among n shards, where n must be a power of two (the function
// panics otherwise — partitioners must agree exactly, so a silently rounded
// count would be a correctness bug). It is the single placement rule of the
// system: ShardedStore uses it for its lock shards and the distributed
// coordinator (internal/dist) uses it to route batches to networked shard
// servers, so a key's lock shard and its network shard are provably computed
// the same way.
func ShardOf(key, n int) int {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("storage: ShardOf shard count %d is not a power of two", n))
	}
	return int((uint64(key) * shardPartitionMultiplier) >> (64 - log2(uint64(n))))
}

// shardOf hashes a key to its shard — ShardOf with the store's precomputed
// shift (the shard count is a power of two by construction).
func (s *ShardedStore) shardOf(key int) uint64 {
	return (uint64(key) * shardPartitionMultiplier) >> s.shift
}

// NumShards returns the shard count.
func (s *ShardedStore) NumShards() int { return len(s.shards) }

// Get implements Store: one shared-lock round-trip on the key's shard and
// one atomic counter increment.
func (s *ShardedStore) Get(key int) float64 {
	sh := &s.shards[s.shardOf(key)]
	sh.mu.RLock()
	v := sh.cells[key]
	sh.mu.RUnlock()
	s.retrievals.Add(1)
	return v
}

// GetBatch implements BatchGetter: keys are grouped by shard so each shard
// touched is locked once per batch rather than once per key.
func (s *ShardedStore) GetBatch(keys []int, dst []float64) {
	s.retrievals.Add(int64(len(keys)))
	groups := make([][]int32, len(s.shards))
	for i, k := range keys {
		sh := s.shardOf(k)
		groups[sh] = append(groups[sh], int32(i))
	}
	for si := range groups {
		idxs := groups[si]
		if len(idxs) == 0 {
			continue
		}
		sh := &s.shards[si]
		sh.mu.RLock()
		for _, i := range idxs {
			dst[i] = sh.cells[keys[i]]
		}
		sh.mu.RUnlock()
	}
}

// Add implements Updatable, taking the shard's write lock.
func (s *ShardedStore) Add(key int, delta float64) {
	sh := &s.shards[s.shardOf(key)]
	sh.mu.Lock()
	if v := sh.cells[key] + delta; v == 0 {
		delete(sh.cells, key)
	} else {
		sh.cells[key] = v
	}
	sh.mu.Unlock()
}

// Retrievals implements Store.
func (s *ShardedStore) Retrievals() int64 { return s.retrievals.Load() }

// ResetStats implements Store.
func (s *ShardedStore) ResetStats() { s.retrievals.Store(0) }

// NonzeroCount implements Store.
func (s *ShardedStore) NonzeroCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.cells)
		sh.mu.RUnlock()
	}
	return n
}

// ForEachNonzero implements Enumerable, holding one shard lock at a time.
// Coefficients added or removed concurrently may or may not be visited.
func (s *ShardedStore) ForEachNonzero(fn func(key int, value float64) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, v := range sh.cells {
			if !fn(k, v) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// ConcurrentSafe implements Concurrent.
func (s *ShardedStore) ConcurrentSafe() {}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func log2(n uint64) uint {
	var l uint
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

var (
	_ Updatable   = (*ShardedStore)(nil)
	_ Enumerable  = (*ShardedStore)(nil)
	_ BatchGetter = (*ShardedStore)(nil)
	_ Concurrent  = (*ShardedStore)(nil)
)
