package storage

import "testing"

func TestRemappedStoreTranslatesKeys(t *testing.T) {
	// layout[slot] = key: key 0 stored at slot 2, key 1 at slot 0, key 2 at 1.
	cells := []float64{10, 20, 30} // logical values by key
	relocated, err := ApplyLayout(cells, []int{1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	// relocated[0]=cells[1]=20, relocated[1]=cells[2]=30, relocated[2]=cells[0]=10.
	if relocated[0] != 20 || relocated[1] != 30 || relocated[2] != 10 {
		t.Fatalf("relocated = %v", relocated)
	}
	inner := NewArrayStore(relocated)
	rs, err := NewRemappedStore(inner, []int{1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range cells {
		if got := rs.Get(key); got != want {
			t.Fatalf("Get(%d) = %g, want %g", key, got, want)
		}
	}
	if rs.Slot(1) != 0 || rs.Slot(0) != 2 {
		t.Fatal("Slot mapping wrong")
	}
	if rs.Retrievals() != 3 {
		t.Fatalf("Retrievals = %d", rs.Retrievals())
	}
	rs.ResetStats()
	if rs.Retrievals() != 0 {
		t.Fatal("ResetStats failed")
	}
	if rs.NonzeroCount() != 3 {
		t.Fatal("NonzeroCount should delegate")
	}
}

func TestNewRemappedStoreValidation(t *testing.T) {
	inner := NewArrayStore(make([]float64, 3))
	if _, err := NewRemappedStore(inner, []int{0, 1, 5}); err == nil {
		t.Error("out-of-range layout entry should fail")
	}
	if _, err := NewRemappedStore(inner, []int{0, 1, 1}); err == nil {
		t.Error("repeated layout entry should fail")
	}
}

func TestApplyLayoutValidation(t *testing.T) {
	if _, err := ApplyLayout([]float64{1, 2}, []int{0}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := ApplyLayout([]float64{1, 2}, []int{0, 9}); err == nil {
		t.Error("out-of-range entry should fail")
	}
}

func TestRemappedStorePanicsOutOfRange(t *testing.T) {
	rs, err := NewRemappedStore(NewArrayStore(make([]float64, 2)), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rs.Get(5)
}

func TestRemappedBlockStoreCountsPhysicalBlocks(t *testing.T) {
	// Two logical keys far apart land in one physical block under a layout
	// that co-locates them.
	cells := make([]float64, 8)
	for i := range cells {
		cells[i] = float64(i + 1)
	}
	layout := []int{0, 7, 1, 2, 3, 4, 5, 6} // keys 0 and 7 share slot block 0 (block size 2)
	relocated, err := ApplyLayout(cells, layout)
	if err != nil {
		t.Fatal(err)
	}
	bs := NewBlockStore(NewArrayStore(relocated), 2)
	rs, err := NewRemappedStore(bs, layout)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Get(0) != 1 || rs.Get(7) != 8 {
		t.Fatal("values wrong through remap")
	}
	if bs.BlockReads() != 1 {
		t.Fatalf("BlockReads = %d, want 1 (keys co-located)", bs.BlockReads())
	}
}
