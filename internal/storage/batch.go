package storage

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// BatchGetter is implemented by stores that can serve many coefficient
// retrievals in one call. Batching preserves the paper's cost model — every
// requested key still counts as one retrieval — but lets implementations
// amortize per-call overhead: one lock round-trip instead of one per key
// (ConcurrentStore, ShardedStore), one coalesced positioned read instead of
// one syscall per key (FileStore), one cache pass instead of per-key
// bookkeeping (CachedStore).
type BatchGetter interface {
	// GetBatch stores the coefficient for keys[i] into dst[i], counting
	// len(keys) retrievals. dst must have the same length as keys. Keys may
	// repeat and appear in any order.
	GetBatch(keys []int, dst []float64)
}

// BatchGet retrieves every key through the store's BatchGetter fast path
// when it has one, falling back to one Get per key otherwise. dst must have
// the same length as keys.
func BatchGet(s Store, keys []int, dst []float64) {
	if len(keys) != len(dst) {
		panic("storage: BatchGet keys/dst length mismatch")
	}
	if bg, ok := s.(BatchGetter); ok {
		bg.GetBatch(keys, dst)
		return
	}
	for i, k := range keys {
		dst[i] = s.Get(k)
	}
}

// GetBatch implements BatchGetter with one counter update for the batch.
func (s *ArrayStore) GetBatch(keys []int, dst []float64) {
	s.retrievals += int64(len(keys))
	for i, k := range keys {
		if k < 0 || k >= len(s.cells) {
			panic(batchRangeError(k, len(s.cells)))
		}
		dst[i] = s.cells[k]
	}
}

// GetBatch implements BatchGetter.
func (s *HashStore) GetBatch(keys []int, dst []float64) {
	s.retrievals += int64(len(keys))
	for i, k := range keys {
		dst[i] = s.cells[k]
	}
}

// GetBatch implements BatchGetter: cache hits are served in place, the
// misses (deduplicated) go to the wrapped store in one batch and are
// inserted into the cache. Counting matches the per-key path: every key
// served from cache counts a hit, every distinct miss reaches the wrapped
// store. (With a bounded cache under eviction pressure the hit/miss split
// can differ marginally from issuing the same keys one Get at a time,
// because insertions happen after the whole batch is classified.)
func (s *CachedStore) GetBatch(keys []int, dst []float64) {
	if s.capacity == 0 {
		// Caching disabled: forward the whole batch.
		BatchGet(s.inner, keys, dst)
		return
	}
	var missKeys []int
	missAt := make(map[int]int) // key → index into missKeys
	for i, k := range keys {
		if el, ok := s.index[k]; ok {
			s.hits++
			s.lru.MoveToFront(el)
			dst[i] = el.Value.(cachedCell).val
			continue
		}
		if _, ok := missAt[k]; ok {
			// Duplicate miss within the batch: fetched once, the repeat is a
			// hit, mirroring the sequential fetch-then-hit behaviour. The
			// value is filled in by the final pass below.
			s.hits++
			continue
		}
		missAt[k] = len(missKeys)
		missKeys = append(missKeys, k)
	}
	if len(missKeys) == 0 {
		return
	}
	missVals := make([]float64, len(missKeys))
	BatchGet(s.inner, missKeys, missVals)
	for j, k := range missKeys {
		if s.lru.Len() >= s.capacity {
			oldest := s.lru.Back()
			delete(s.index, oldest.Value.(cachedCell).key)
			s.lru.Remove(oldest)
		}
		s.index[k] = s.lru.PushFront(cachedCell{key: k, val: missVals[j]})
	}
	for i, k := range keys {
		if j, ok := missAt[k]; ok {
			dst[i] = missVals[j]
		}
	}
}

// BatchGetCtx implements FallibleStore. Hit/miss classification is identical
// to GetBatch; the deduplicated misses go to the wrapped store's fallible
// batch path. Failed misses are not cached and are reported as a
// *BatchError whose indices refer to the caller's batch (every position
// requesting a failed key fails); a non-batch error from the wrapped store
// (cancellation, total outage) is returned as-is.
func (s *CachedStore) BatchGetCtx(ctx context.Context, keys []int, dst []float64) error {
	if len(keys) != len(dst) {
		panic("storage: BatchGetCtx keys/dst length mismatch")
	}
	if s.capacity == 0 {
		// Caching disabled: forward the whole batch.
		return s.finner.BatchGetCtx(ctx, keys, dst)
	}
	var missKeys []int
	missAt := make(map[int]int) // key → index into missKeys
	for i, k := range keys {
		if el, ok := s.index[k]; ok {
			s.hits++
			s.lru.MoveToFront(el)
			dst[i] = el.Value.(cachedCell).val
			continue
		}
		if _, ok := missAt[k]; ok {
			// Duplicate miss within the batch: fetched once, the repeat is a
			// hit (see GetBatch) — unless the shared fetch fails, in which
			// case every position of the key fails below.
			s.hits++
			continue
		}
		missAt[k] = len(missKeys)
		missKeys = append(missKeys, k)
	}
	if len(missKeys) == 0 {
		return nil
	}
	missVals := make([]float64, len(missKeys))
	err := s.finner.BatchGetCtx(ctx, missKeys, missVals)
	var failed map[int]error // missKeys index → cause
	if err != nil {
		var be *BatchError
		if !errors.As(err, &be) {
			return err
		}
		failed = make(map[int]error, len(be.Failed))
		for _, ke := range be.Failed {
			failed[ke.Index] = ke.Err
		}
	}
	for j, k := range missKeys {
		if _, bad := failed[j]; !bad {
			s.insert(k, missVals[j])
		}
	}
	var out []KeyError
	for i, k := range keys {
		j, ok := missAt[k]
		if !ok {
			continue
		}
		if cause, bad := failed[j]; bad {
			out = append(out, KeyError{Index: i, Key: k, Err: cause})
			continue
		}
		dst[i] = missVals[j]
	}
	if len(out) > 0 {
		return &BatchError{Failed: out}
	}
	return nil
}

// Coalescing policy for FileStore batch reads. A run keeps absorbing the
// next (sorted) key while all three caps hold; each cap bounds a different
// resource the old gap-only rule left unbounded:
const (
	// fileStoreMaxGap is the largest key gap (in cells) a coalesced read
	// will read through: reading 8·gap wasted bytes is cheaper than a
	// second syscall.
	fileStoreMaxGap = 64
	// fileStoreMaxWasteCells caps the CUMULATIVE gap cells read through in
	// one coalesced read (8 KiB of wasted bytes). Without it, a batch of
	// stride-64 keys chains through the gap cap forever: every gap is
	// individually acceptable, but the single read it builds is ~98% waste.
	fileStoreMaxWasteCells = 1024
	// fileStoreMaxSpanCells caps one read's total span (1 MiB): however
	// dense the keys, an oversized span is split so the read buffer stays
	// bounded and an I/O failure fails a bounded set of positions.
	fileStoreMaxSpanCells = 128 << 10
)

// coalesce returns hi such that order[lo:hi] is the longest prefix run
// satisfying the gap, waste and span caps. keys[order] is sorted ascending.
func coalesce(keys []int, order []int, lo int) int {
	hi := lo + 1
	waste := 0
	for hi < len(order) {
		gap := keys[order[hi]] - keys[order[hi-1]] - 1 // cells read but not wanted
		if gap < 0 {
			gap = 0 // duplicate key
		}
		if gap+1 > fileStoreMaxGap ||
			waste+gap > fileStoreMaxWasteCells ||
			keys[order[hi]]-keys[order[lo]]+1 > fileStoreMaxSpanCells {
			break
		}
		waste += gap
		hi++
	}
	return hi
}

// GetBatch implements BatchGetter by sorting the requested keys and
// coalescing consecutive (or near-consecutive) runs into single positioned
// reads, cutting the syscall count from len(keys) to the number of runs.
// Reads are bounded: per-read waste and span caps (see coalesce) keep the
// bytes physically read within a constant factor of the bytes requested.
func (s *FileStore) GetBatch(keys []int, dst []float64) {
	s.retrievals += int64(len(keys))
	order := make([]int, len(keys))
	for i := range order {
		if k := keys[i]; k < 0 || k >= s.n {
			panic(batchRangeError(k, s.n))
		}
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	var buf []byte
	for lo := 0; lo < len(order); {
		hi := coalesce(keys, order, lo)
		first, last := keys[order[lo]], keys[order[hi-1]]
		span := last - first + 1
		if cap(buf) < span*8 {
			buf = make([]byte, span*8)
		}
		b := buf[:span*8]
		n, err := s.f.ReadAt(b, s.offset(first))
		s.reads++
		s.bytesRead += int64(n)
		if err != nil {
			panic(batchReadError(first, last, err))
		}
		for _, i := range order[lo:hi] {
			dst[i] = cellAt(b, keys[i]-first)
		}
		lo = hi
	}
}

// BatchGetCtx implements FallibleStore with the same run-coalescing as
// GetBatch. An out-of-range key or a failed positioned read fails only the
// positions it covers, reported via *BatchError, while the remaining runs
// are still read. A SHORT read (ReadAt returned fewer bytes than the span,
// e.g. the file was truncated under us) is partial, not total: positions
// whose cells were fully read before the cut are served, only the
// uncovered tail of the run fails — honoring the BatchError contract that
// unlisted positions hold valid values. Cancellation is observed between
// runs and returned whole.
func (s *FileStore) BatchGetCtx(ctx context.Context, keys []int, dst []float64) error {
	if len(keys) != len(dst) {
		panic("storage: BatchGetCtx keys/dst length mismatch")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.retrievals += int64(len(keys))
	var failed []KeyError
	order := make([]int, 0, len(keys))
	for i, k := range keys {
		if k < 0 || k >= s.n {
			failed = append(failed, KeyError{Index: i, Key: k,
				Err: fmt.Errorf("key out of range [0,%d)", s.n)})
			continue
		}
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	var buf []byte
	for lo := 0; lo < len(order); {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := coalesce(keys, order, lo)
		first, last := keys[order[lo]], keys[order[hi-1]]
		span := last - first + 1
		if cap(buf) < span*8 {
			buf = make([]byte, span*8)
		}
		b := buf[:span*8]
		n, err := s.f.ReadAt(b, s.offset(first))
		s.reads++
		s.bytesRead += int64(n)
		if err != nil {
			covered := n / 8 // complete cells before the cut
			for _, i := range order[lo:hi] {
				if off := keys[i] - first; off < covered {
					dst[i] = cellAt(b, off)
				} else {
					failed = append(failed, KeyError{Index: i, Key: keys[i], Err: err})
				}
			}
			lo = hi
			continue
		}
		for _, i := range order[lo:hi] {
			dst[i] = cellAt(b, keys[i]-first)
		}
		lo = hi
	}
	if len(failed) > 0 {
		sort.Slice(failed, func(a, b int) bool { return failed[a].Index < failed[b].Index })
		return &BatchError{Failed: failed}
	}
	return nil
}

// GetBatch implements BatchGetter: the wrapped store is consulted under a
// single lock acquisition instead of one per key.
func (s *ConcurrentStore) GetBatch(keys []int, dst []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	BatchGet(s.inner, keys, dst)
}

func batchRangeError(key, n int) string {
	return fmt.Sprintf("storage: key %d out of range [0,%d)", key, n)
}

func batchReadError(first, last int, err error) string {
	return fmt.Sprintf("storage: reading coefficients [%d,%d]: %v", first, last, err)
}

// cellAt decodes the little-endian float64 at cell index i of a coalesced
// read buffer.
func cellAt(b []byte, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[i*8 : i*8+8]))
}

var (
	_ BatchGetter = (*ArrayStore)(nil)
	_ BatchGetter = (*HashStore)(nil)
	_ BatchGetter = (*CachedStore)(nil)
	_ BatchGetter = (*FileStore)(nil)
	_ BatchGetter = (*ConcurrentStore)(nil)
)
