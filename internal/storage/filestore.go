package storage

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// FileStore keeps the dense coefficient array on disk and serves every Get
// with a positioned read — a literal realization of the paper's cost model,
// where each coefficient retrieval is one storage access. The on-disk layout
// is a fixed header followed by n little-endian float64 cells.
//
// FileStore implements Store, Updatable and Enumerable. Like the in-memory
// stores it is not safe for concurrent use.
type FileStore struct {
	f          *os.File
	n          int
	retrievals int64
	// Physical I/O accounting for the coalescing batch path: syscalls
	// issued and bytes actually read (including gap bytes read through).
	// The ratio bytesRead / (8·retrievals) is the read amplification the
	// coalescing caps bound.
	reads     int64
	bytesRead int64
}

const (
	fileStoreMagic      = "WVFS"
	fileStoreVersion    = 1
	fileStoreHeaderSize = 4 + 2 + 8 // magic + version + cell count
)

// CreateFileStore writes the dense coefficient array to path and opens it as
// a store. An existing file at path is truncated.
func CreateFileStore(path string, cells []float64) (*FileStore, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.WriteString(fileStoreMagic); err != nil {
		_ = f.Close()
		return nil, err
	}
	var hdr [10]byte
	binary.LittleEndian.PutUint16(hdr[0:2], fileStoreVersion)
	binary.LittleEndian.PutUint64(hdr[2:10], uint64(len(cells)))
	if _, err := w.Write(hdr[:]); err != nil {
		_ = f.Close()
		return nil, err
	}
	var buf [8]byte
	for _, v := range cells {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := w.Write(buf[:]); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, err
	}
	return &FileStore{f: f, n: len(cells)}, nil
}

// OpenFileStore opens an existing coefficient file.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var hdr [fileStoreHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("storage: reading file store header: %w", err)
	}
	if string(hdr[:4]) != fileStoreMagic {
		_ = f.Close()
		return nil, fmt.Errorf("storage: %s is not a coefficient file (bad magic)", path)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != fileStoreVersion {
		_ = f.Close()
		return nil, fmt.Errorf("storage: unsupported file store version %d", v)
	}
	n := binary.LittleEndian.Uint64(hdr[6:14])
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if want := int64(fileStoreHeaderSize) + int64(n)*8; st.Size() != want {
		_ = f.Close()
		return nil, fmt.Errorf("storage: file size %d does not match header (want %d)", st.Size(), want)
	}
	return &FileStore{f: f, n: int(n)}, nil
}

// Get implements Store with one positioned read.
func (s *FileStore) Get(key int) float64 {
	s.retrievals++
	if key < 0 || key >= s.n {
		panic(fmt.Sprintf("storage: key %d out of range [0,%d)", key, s.n))
	}
	var buf [8]byte
	if _, err := s.f.ReadAt(buf[:], s.offset(key)); err != nil {
		panic(fmt.Sprintf("storage: reading coefficient %d: %v", key, err))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
}

// GetCtx implements FallibleStore: the positioned read's failure modes — a
// cancelled context, an out-of-range key, an I/O error — come back as errors
// instead of Get's panics. This is the store the fallible API exists for:
// the file can disappear, the disk can fail, and the engine degrades instead
// of crashing.
func (s *FileStore) GetCtx(ctx context.Context, key int) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s.retrievals++
	if key < 0 || key >= s.n {
		return 0, &KeyError{Key: key, Err: fmt.Errorf("key out of range [0,%d)", s.n)}
	}
	var buf [8]byte
	if _, err := s.f.ReadAt(buf[:], s.offset(key)); err != nil {
		return 0, &KeyError{Key: key, Err: err}
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// Add implements Updatable with a read-modify-write. The file must have
// been opened writable (CreateFileStore does; OpenFileStore opens read-only
// and Add panics).
func (s *FileStore) Add(key int, delta float64) {
	if key < 0 || key >= s.n {
		panic(fmt.Sprintf("storage: key %d out of range [0,%d)", key, s.n))
	}
	var buf [8]byte
	off := s.offset(key)
	if _, err := s.f.ReadAt(buf[:], off); err != nil {
		panic(fmt.Sprintf("storage: reading coefficient %d: %v", key, err))
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(buf[:])) + delta
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	if _, err := s.f.WriteAt(buf[:], off); err != nil {
		panic(fmt.Sprintf("storage: writing coefficient %d: %v", key, err))
	}
}

func (s *FileStore) offset(key int) int64 {
	return int64(fileStoreHeaderSize) + int64(key)*8
}

// Retrievals implements Store.
func (s *FileStore) Retrievals() int64 { return s.retrievals }

// ResetStats implements Store; it also zeroes the batch I/O counters.
func (s *FileStore) ResetStats() {
	s.retrievals = 0
	s.reads = 0
	s.bytesRead = 0
}

// IOStats reports the physical cost of the coalescing batch path since the
// last ResetStats: positioned-read syscalls issued and bytes actually read
// (requested cells plus the gap bytes read through). Tests pin the read
// amplification — bytesRead over 8·retrievals — with these.
func (s *FileStore) IOStats() (reads, bytesRead int64) {
	return s.reads, s.bytesRead
}

// NonzeroCount implements Store with a sequential scan.
func (s *FileStore) NonzeroCount() int {
	n := 0
	s.ForEachNonzero(func(int, float64) bool { n++; return true })
	return n
}

// Size returns the total number of cells.
func (s *FileStore) Size() int { return s.n }

// ForEachNonzero implements Enumerable with a buffered sequential scan.
func (s *FileStore) ForEachNonzero(fn func(key int, value float64) bool) {
	r := bufio.NewReaderSize(&readerAt{f: s.f, off: int64(fileStoreHeaderSize)}, 1<<20)
	var buf [8]byte
	for k := 0; k < s.n; k++ {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			panic(fmt.Sprintf("storage: scanning coefficient %d: %v", k, err))
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
		if v != 0 && !fn(k, v) {
			return
		}
	}
}

// Close releases the underlying file.
func (s *FileStore) Close() error { return s.f.Close() }

// readerAt adapts positioned reads to the io.Reader bufio needs, without
// disturbing other users of the shared file offset.
type readerAt struct {
	f   *os.File
	off int64
}

func (r *readerAt) Read(p []byte) (int, error) {
	n, err := r.f.ReadAt(p, r.off)
	r.off += int64(n)
	return n, err
}

var (
	_ Updatable     = (*FileStore)(nil)
	_ Enumerable    = (*FileStore)(nil)
	_ FallibleStore = (*FileStore)(nil)
)
