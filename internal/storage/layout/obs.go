package layout

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Observability for the layout tier, following the storage package's
// pattern: Observe installs a metric bundle into an atomic pointer; every
// counting site is an atomic load plus a branch when observation is off.

// layoutMetrics is the package's metric bundle, built once per Observe.
type layoutMetrics struct {
	hotHits        *obs.Counter
	coldHits       *obs.Counter
	blockLoads     *obs.Counter
	blockLoadFails *obs.Counter
}

var lMetrics atomic.Pointer[layoutMetrics]

// Observe points the layout tier's instrumentation at reg. Pass nil to
// uninstall (the default state).
func Observe(reg *obs.Registry) {
	if reg == nil {
		lMetrics.Store(nil)
		return
	}
	lMetrics.Store(&layoutMetrics{
		hotHits: reg.Counter("wvq_storage_layout_hits_total",
			"Layout-store retrievals by serving tier.", obs.L("tier", "hot")),
		coldHits: reg.Counter("wvq_storage_layout_hits_total",
			"Layout-store retrievals by serving tier.", obs.L("tier", "cold")),
		blockLoads: reg.Counter("wvq_storage_layout_block_loads_total",
			"Cold blocks physically read, checksummed and decoded."),
		blockLoadFails: reg.Counter("wvq_storage_layout_block_load_failures_total",
			"Cold-block loads rejected by checksum or decode errors."),
	})
}

func obsHotHit() {
	if m := lMetrics.Load(); m != nil {
		m.hotHits.Inc()
	}
}

func obsColdHit() {
	if m := lMetrics.Load(); m != nil {
		m.coldHits.Inc()
	}
}

// obsHotHits / obsColdHits are the batch-path variants: one atomic add per
// served run instead of one per key.
func obsHotHits(n int64) {
	if m := lMetrics.Load(); m != nil {
		m.hotHits.Add(n)
	}
}

func obsColdHits(n int64) {
	if m := lMetrics.Load(); m != nil {
		m.coldHits.Add(n)
	}
}

func obsBlockLoad() {
	if m := lMetrics.Load(); m != nil {
		m.blockLoads.Inc()
	}
}

func obsBlockLoadFail() {
	if m := lMetrics.Load(); m != nil {
		m.blockLoadFails.Inc()
	}
}
