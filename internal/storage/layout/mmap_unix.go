//go:build unix

package layout

import (
	"os"
	"syscall"
)

// mmapFile maps the whole file read-only and shared. The mapping serves the
// hot region and the index sections zero-copy; Store falls back to
// positioned reads when it fails (or on platforms without mmap).
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || size > int64(int(^uint(0)>>1)) {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping produced by mmapFile.
func munmapFile(b []byte) error { return syscall.Munmap(b) }
