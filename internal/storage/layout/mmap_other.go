//go:build !unix

package layout

import (
	"fmt"
	"os"
)

// mmapFile always fails on platforms without the unix mmap syscall; Store
// serves every read through the positioned-read fallback instead.
func mmapFile(_ *os.File, _ int64) ([]byte, error) {
	return nil, fmt.Errorf("layout: mmap unsupported on this platform")
}

// munmapFile matches mmap_unix; unreachable when mmapFile always fails.
func munmapFile(_ []byte) error { return nil }
