package layout

import (
	"container/list"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/storage"
)

// Store serves a .wvls layout file through a three-tier read path:
//
//  1. the mmap hot region — the most important hotCount coefficients, raw
//     float64 words read zero-copy from the mapping;
//  2. an LRU of decompressed cold blocks — a cold retrieval decodes its
//     whole block once (CRC-verified) and neighbors in schedule order hit
//     the cached decode;
//  3. positioned reads — when mmap is unavailable (disabled or unsupported)
//     every section falls back to pread, with the index sections loaded
//     into memory at open so key lookup stays O(log n) without syscalls.
//
// Key→slot resolution is a binary search over the ascending key index,
// short-circuited by a sequential hint: a progressive drain requests keys
// in exactly the layout's slot order, so after the first key of a batch the
// remaining lookups are O(1) pointer bumps and the whole drain walks the
// file front to back — sequential I/O, which is the point of the format.
//
// Store implements storage.Store, Updatable (Add refuses: layouts are
// read-only), BatchGetter, FallibleStore, Enumerable and Concurrent. All
// methods are safe for concurrent use.
type Store struct {
	f        *os.File
	data     []byte // whole-file mapping; nil on the pread fallback path
	g        geometry
	meta     *Meta
	families []Family
	dir      []blockRef

	// In-memory copies of the index sections, loaded only on the pread
	// fallback path (a binary search through pread would cost O(log n)
	// syscalls per key).
	keysMem      []uint64
	slotOfMem    []uint32
	keyOfSlotMem []uint64

	cache blockCache

	retrievals atomic.Int64
	// hint is the slot expected next by a sequential (schedule-order)
	// reader; see lookupSlot.
	hint atomic.Int64

	hotHits        atomic.Int64
	coldHits       atomic.Int64
	hintHits       atomic.Int64
	blockLoads     atomic.Int64
	blockLoadFails atomic.Int64
	preads         atomic.Int64
}

// DefaultCacheBlocks is the default capacity of the decoded-block LRU.
const DefaultCacheBlocks = 64

// Options configures Open.
type Options struct {
	// DisableMmap forces the positioned-read fallback path (used by tests;
	// the open also falls back automatically when mmap fails).
	DisableMmap bool
	// CacheBlocks bounds the decoded cold-block LRU; 0 selects
	// DefaultCacheBlocks, negative disables caching.
	CacheBlocks int
}

// Open opens a layout file. The header is CRC-verified and its geometry
// validated against the actual file before any data is trusted; a file that
// fails either check is rejected here rather than misread later.
func Open(path string, opts Options) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := open(f, opts)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	return s, nil
}

func open(f *os.File, opts Options) (*Store, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	var prelude [preludeSize]byte
	if _, err := f.ReadAt(prelude[:], 0); err != nil {
		return nil, fmt.Errorf("layout: reading prelude: %w", err)
	}
	if string(prelude[0:4]) != magic {
		return nil, fmt.Errorf("layout: bad magic %q (not a .wvls file)", prelude[0:4])
	}
	if v := binary.LittleEndian.Uint16(prelude[4:6]); v != version {
		return nil, fmt.Errorf("layout: unsupported version %d", v)
	}
	flags := binary.LittleEndian.Uint16(prelude[6:8])
	hdrLen := binary.LittleEndian.Uint32(prelude[8:12])
	hdrCRC := binary.LittleEndian.Uint32(prelude[12:16])
	if int64(hdrLen) > st.Size()-preludeSize || hdrLen > 1<<24 {
		return nil, fmt.Errorf("layout: header length %d implausible", hdrLen)
	}
	blob := make([]byte, hdrLen)
	if _, err := f.ReadAt(blob, preludeSize); err != nil {
		return nil, fmt.Errorf("layout: reading header: %w", err)
	}
	if got := crc32.ChecksumIEEE(blob); got != hdrCRC {
		return nil, fmt.Errorf("layout: header checksum mismatch (file %08x, computed %08x)", hdrCRC, got)
	}
	g, meta, families, err := decodeHeaderBlob(blob, flags, st.Size())
	if err != nil {
		return nil, err
	}
	s := &Store{f: f, g: *g, meta: meta, families: families}
	cacheBlocks := opts.CacheBlocks
	if cacheBlocks == 0 {
		cacheBlocks = DefaultCacheBlocks
	}
	if cacheBlocks > 0 {
		s.cache.capacity = cacheBlocks
		s.cache.lru = list.New()
		s.cache.index = make(map[int]*list.Element)
	}

	if !opts.DisableMmap {
		if data, err := mmapFile(f, st.Size()); err == nil {
			s.data = data
		}
	}
	// Block directory: small (16 bytes per block), always resident.
	s.dir = make([]blockRef, s.g.numBlocks)
	dirBytes, err := s.section(s.g.blockDirOff, int64(s.g.numBlocks)*16)
	if err != nil {
		_ = s.close()
		return nil, fmt.Errorf("layout: reading block directory: %w", err)
	}
	for b := range s.dir {
		s.dir[b] = blockRef{
			off: binary.LittleEndian.Uint64(dirBytes[b*16:]),
			len: binary.LittleEndian.Uint32(dirBytes[b*16+8:]),
			crc: binary.LittleEndian.Uint32(dirBytes[b*16+12:]),
		}
		end := int64(s.dir[b].off) + int64(s.dir[b].len)
		if int64(s.dir[b].off) < s.g.blocksOff || end > s.g.fileSize {
			_ = s.close()
			return nil, fmt.Errorf("layout: block %d extent [%d,%d) outside blocks section", b, s.dir[b].off, end)
		}
	}
	if s.data == nil {
		// Fallback: resident index (mmap would have served it zero-copy).
		if err := s.loadIndex(); err != nil {
			_ = s.close()
			return nil, err
		}
	}
	return s, nil
}

// section returns length bytes at off: a subslice of the mapping, or a
// fresh pread buffer on the fallback path.
func (s *Store) section(off, length int64) ([]byte, error) {
	if length == 0 {
		return nil, nil
	}
	if s.data != nil {
		if off < 0 || off+length > int64(len(s.data)) {
			return nil, fmt.Errorf("layout: section [%d,%d) outside file", off, off+length)
		}
		return s.data[off : off+length], nil
	}
	buf := make([]byte, length)
	s.preads.Add(1)
	if _, err := s.f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

// loadIndex materializes the three index sections for the pread fallback.
func (s *Store) loadIndex() error {
	n := s.g.nonzero
	load := func(off int64, width int) ([]byte, error) {
		buf := make([]byte, int64(n)*int64(width))
		r := io.NewSectionReader(s.f, off, int64(len(buf)))
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("layout: loading index: %w", err)
		}
		return buf, nil
	}
	kb, err := load(s.g.keysOff, 8)
	if err != nil {
		return err
	}
	sb, err := load(s.g.slotOfOff, 4)
	if err != nil {
		return err
	}
	ob, err := load(s.g.keyOfSlotOff, 8)
	if err != nil {
		return err
	}
	s.keysMem = make([]uint64, n)
	s.slotOfMem = make([]uint32, n)
	s.keyOfSlotMem = make([]uint64, n)
	for i := 0; i < n; i++ {
		s.keysMem[i] = binary.LittleEndian.Uint64(kb[i*8:])
		s.slotOfMem[i] = binary.LittleEndian.Uint32(sb[i*4:])
		s.keyOfSlotMem[i] = binary.LittleEndian.Uint64(ob[i*8:])
	}
	return nil
}

// keyAt returns the i-th smallest stored key.
func (s *Store) keyAt(i int) int {
	if s.data != nil {
		return int(binary.LittleEndian.Uint64(s.data[s.g.keysOff+int64(i)*8:]))
	}
	return int(s.keysMem[i])
}

// slotAt returns the slot of the i-th smallest stored key.
func (s *Store) slotAt(i int) int {
	if s.data != nil {
		return int(binary.LittleEndian.Uint32(s.data[s.g.slotOfOff+int64(i)*4:]))
	}
	return int(s.slotOfMem[i])
}

// KeyOfSlot returns the key stored at schedule slot j — the layout's
// retrieval order. Draining keys in this order is sequential I/O.
func (s *Store) KeyOfSlot(j int) int {
	if s.data != nil {
		return int(binary.LittleEndian.Uint64(s.data[s.g.keyOfSlotOff+int64(j)*8:]))
	}
	return int(s.keyOfSlotMem[j])
}

// lookupSlot resolves key → slot. The sequential hint is checked first:
// schedule-order readers advance one slot per retrieval, so the expected
// next slot usually holds the requested key and the binary search is
// skipped entirely.
func (s *Store) lookupSlot(key int) (int, bool) {
	n := s.g.nonzero
	if h := int(s.hint.Load()); h >= 0 && h < n && s.KeyOfSlot(h) == key {
		s.hint.Store(int64(h + 1))
		s.hintHits.Add(1)
		return h, true
	}
	i := sort.Search(n, func(i int) bool { return s.keyAt(i) >= key })
	if i >= n || s.keyAt(i) != key {
		return 0, false
	}
	slot := s.slotAt(i)
	s.hint.Store(int64(slot + 1))
	return slot, true
}

// hotValue reads the raw value of a hot slot.
func (s *Store) hotValue(slot int) (float64, error) {
	off := s.g.hotOff + int64(slot)*8
	if s.data != nil {
		return math.Float64frombits(binary.LittleEndian.Uint64(s.data[off:])), nil
	}
	var buf [8]byte
	s.preads.Add(1)
	if _, err := s.f.ReadAt(buf[:], off); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// valueAtSlot serves one slot through the tier that owns it.
func (s *Store) valueAtSlot(slot, key int) (float64, error) {
	if slot < s.g.hotCount {
		v, err := s.hotValue(slot)
		if err != nil {
			return 0, err
		}
		s.hotHits.Add(1)
		obsHotHit()
		return v, nil
	}
	b := (slot - s.g.hotCount) / s.g.blockSize
	ent, err := s.block(b)
	if err != nil {
		return 0, err
	}
	q := slot - s.g.hotCount - b*s.g.blockSize
	if q >= len(ent.keys) {
		return 0, fmt.Errorf("layout: slot %d beyond block %d's %d entries (index/block disagree)", slot, b, len(ent.keys))
	}
	if p := ent.rank(q); p >= len(ent.keys) || ent.keys[p] != key {
		return 0, fmt.Errorf("layout: slot %d of block %d does not hold key %d (index/block disagree)", slot, b, key)
	}
	s.coldHits.Add(1)
	obsColdHit()
	return ent.val(q), nil
}

// blockCache is the decoded cold-block LRU (tier 2).
type blockCache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List
	index    map[int]*list.Element
}

// blockEntry is one decoded block: keys ascending, plus raw fixed-width
// windows over the slot→rank permutation and the slot-order value words.
// The windows stay as file bytes — zero-copy views of the mmap when one
// is live — and decode on access; a full drain touches each entry once
// either way, and partial reads skip the rest.
type blockEntry struct {
	id        int
	keys      []int
	rankBytes []byte
	valBytes  []byte
	quantized bool
}

// rank returns the ascending-key position holding the block's q-th slot.
// Range-checking the result against keys is the caller's job (a corrupt
// permutation must become a per-key error, not a panic).
func (e *blockEntry) rank(q int) int {
	return int(binary.LittleEndian.Uint16(e.rankBytes[q*2:]))
}

// val decodes the value of the block's q-th slot.
func (e *blockEntry) val(q int) float64 {
	if e.quantized {
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(e.valBytes[q*4:])))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(e.valBytes[q*8:]))
}

// block returns the decoded block b, from cache or by a CRC-verified load.
// Loads run under the cache lock: concurrent cold misses serialize, which
// keeps every block decoded at most once at a time (the drain pattern loads
// each block exactly once anyway).
func (s *Store) block(b int) (*blockEntry, error) {
	c := &s.cache
	if c.capacity > 0 {
		c.mu.Lock()
		if el, ok := c.index[b]; ok {
			c.lru.MoveToFront(el)
			ent := el.Value.(*blockEntry)
			c.mu.Unlock()
			return ent, nil
		}
		defer c.mu.Unlock()
	}
	ent, err := s.loadBlock(b)
	if err != nil {
		return nil, err
	}
	if c.capacity > 0 {
		for c.lru.Len() >= c.capacity {
			oldest := c.lru.Back()
			delete(c.index, oldest.Value.(*blockEntry).id)
			c.lru.Remove(oldest)
		}
		c.index[b] = c.lru.PushFront(ent)
	}
	return ent, nil
}

// loadBlock reads, CRC-verifies and decodes block b.
func (s *Store) loadBlock(b int) (*blockEntry, error) {
	ref := s.dir[b]
	blob, err := s.section(int64(ref.off), int64(ref.len))
	if err != nil {
		s.blockLoadFails.Add(1)
		obsBlockLoadFail()
		return nil, fmt.Errorf("layout: reading block %d: %w", b, err)
	}
	if got := crc32.ChecksumIEEE(blob); got != ref.crc {
		s.blockLoadFails.Add(1)
		obsBlockLoadFail()
		return nil, fmt.Errorf("layout: block %d checksum mismatch (file %08x, computed %08x)", b, ref.crc, got)
	}
	wantSlots := s.g.blockSize
	if last := s.g.nonzero - s.g.hotCount - b*s.g.blockSize; last < wantSlots {
		wantSlots = last
	}
	keys, rankBytes, valBytes, err := decodeBlock(blob, s.Quantized(), wantSlots)
	if err != nil {
		s.blockLoadFails.Add(1)
		obsBlockLoadFail()
		return nil, fmt.Errorf("layout: block %d: %w", b, err)
	}
	s.blockLoads.Add(1)
	obsBlockLoad()
	return &blockEntry{id: b, keys: keys, rankBytes: rankBytes, valBytes: valBytes, quantized: s.Quantized()}, nil
}

// Get implements storage.Store. A key inside the domain that is not stored
// is zero (like the hash store); I/O failures and corruption panic — use
// the fallible surface for principled degradation.
func (s *Store) Get(key int) float64 {
	s.retrievals.Add(1)
	if key < 0 || key >= s.g.cells {
		panic(fmt.Sprintf("layout: key %d out of range [0,%d)", key, s.g.cells))
	}
	slot, ok := s.lookupSlot(key)
	if !ok {
		return 0
	}
	v, err := s.valueAtSlot(slot, key)
	if err != nil {
		panic(fmt.Sprintf("layout: retrieving key %d: %v", key, err))
	}
	return v
}

// GetCtx implements storage.FallibleStore.
func (s *Store) GetCtx(ctx context.Context, key int) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s.retrievals.Add(1)
	if key < 0 || key >= s.g.cells {
		return 0, &storage.KeyError{Key: key, Err: fmt.Errorf("key out of range [0,%d)", s.g.cells)}
	}
	slot, ok := s.lookupSlot(key)
	if !ok {
		return 0, nil
	}
	v, err := s.valueAtSlot(slot, key)
	if err != nil {
		return 0, &storage.KeyError{Key: key, Err: err}
	}
	return v, nil
}

// serveRun serves the longest prefix of keys[i:] that continues slot by
// slot from the resolved start — the common shape of a progressive drain,
// whose batches are exactly the layout's physical order. The caller has
// already resolved slot for keys[i]; the run extends while each next key is
// the next slot's key, so the per-key cost inside a run is one compare and
// one store instead of a hint check, a tier dispatch and a block-cache
// lock. Returns how many positions were served (≥1 on success); an error
// means position i itself failed and nothing was served.
func (s *Store) serveRun(keys []int, dst []float64, i, slot int) (int, error) {
	if slot < s.g.hotCount {
		// Hot run: raw float64 words, zero-copy under mmap. The mmap loop
		// hoists both section windows — key verification walks the
		// keyOfSlot section sequentially, which is what makes the run cost
		// two adjacent loads and a compare per key.
		n := 0
		if s.data != nil {
			kos := s.data[s.g.keyOfSlotOff+int64(slot)*8:]
			hot := s.data[s.g.hotOff+int64(slot)*8:]
			max := s.g.hotCount - slot
			if rest := len(keys) - i; rest < max {
				max = rest
			}
			for n < max && keys[i+n] == int(binary.LittleEndian.Uint64(kos[n*8:])) {
				dst[i+n] = math.Float64frombits(binary.LittleEndian.Uint64(hot[n*8:]))
				n++
			}
		} else {
			for i+n < len(keys) && slot+n < s.g.hotCount && keys[i+n] == s.KeyOfSlot(slot+n) {
				v, err := s.hotValue(slot + n)
				if err != nil {
					if n == 0 {
						return 0, err
					}
					break
				}
				dst[i+n] = v
				n++
			}
		}
		if n == 0 {
			// Contract violation: lookupSlot said keys[i] lives at slot.
			return 0, fmt.Errorf("layout: slot %d does not hold key %d (index disagrees with itself)", slot, keys[i])
		}
		s.hotHits.Add(int64(n))
		obsHotHits(int64(n))
		s.hint.Store(int64(slot + n))
		return n, nil
	}
	// Cold run: decode the block once, verify the run's start against the
	// block's own key list through the permutation, then serve slot-order
	// values directly — each subsequent key verified against the
	// sequential keyOfSlot index section.
	b := (slot - s.g.hotCount) / s.g.blockSize
	ent, err := s.block(b)
	if err != nil {
		return 0, err
	}
	q := slot - s.g.hotCount - b*s.g.blockSize
	if q >= len(ent.keys) {
		return 0, fmt.Errorf("layout: slot %d beyond block %d's %d entries (index/block disagree)", slot, b, len(ent.keys))
	}
	if p := ent.rank(q); p >= len(ent.keys) || ent.keys[p] != keys[i] {
		return 0, fmt.Errorf("layout: slot %d of block %d does not hold key %d (index/block disagree)", slot, b, keys[i])
	}
	n := 0
	if !ent.quantized && s.data != nil {
		kos := s.data[s.g.keyOfSlotOff+int64(slot)*8:]
		vb := ent.valBytes[q*8:]
		max := len(ent.keys) - q
		if rest := len(keys) - i; rest < max {
			max = rest
		}
		for n < max && keys[i+n] == int(binary.LittleEndian.Uint64(kos[n*8:])) {
			dst[i+n] = math.Float64frombits(binary.LittleEndian.Uint64(vb[n*8:]))
			n++
		}
	} else {
		for i+n < len(keys) && q+n < len(ent.keys) && keys[i+n] == s.KeyOfSlot(slot+n) {
			dst[i+n] = ent.val(q + n)
			n++
		}
	}
	s.coldHits.Add(int64(n))
	obsColdHits(int64(n))
	s.hint.Store(int64(slot + n))
	return n, nil
}

// GetBatch implements storage.BatchGetter. Runs of keys in layout order —
// the progressive drain's access pattern — are served blockwise through
// serveRun; anything else falls back to one lookup per key.
func (s *Store) GetBatch(keys []int, dst []float64) {
	s.retrievals.Add(int64(len(keys)))
	i := 0
	for i < len(keys) {
		k := keys[i]
		if k < 0 || k >= s.g.cells {
			panic(fmt.Sprintf("layout: key %d out of range [0,%d)", k, s.g.cells))
		}
		slot, ok := s.lookupSlot(k)
		if !ok {
			dst[i] = 0
			i++
			continue
		}
		n, err := s.serveRun(keys, dst, i, slot)
		if err != nil {
			panic(fmt.Sprintf("layout: retrieving key %d: %v", k, err))
		}
		i += n
	}
}

// batchCancelStride is how many keys BatchGetCtx serves between context
// checks: frequent enough to abort a huge batch promptly, rare enough to
// stay off the per-key fast path.
const batchCancelStride = 1024

// BatchGetCtx implements storage.FallibleStore. Failures are per-key — an
// unreadable or corrupt block fails exactly the positions that resolve into
// it, reported via *storage.BatchError, and every other position holds a
// valid value. Cancellation is observed between strides and returned whole.
func (s *Store) BatchGetCtx(ctx context.Context, keys []int, dst []float64) error {
	if len(keys) != len(dst) {
		panic("layout: BatchGetCtx keys/dst length mismatch")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.retrievals.Add(int64(len(keys)))
	// EXPLAIN ANALYZE tier attribution: snapshot the tier counters around
	// this call and record the deltas. Exact for a run draining alone,
	// approximate (shared deltas) when concurrent runs interleave — the
	// counters are store-global. Nil profile skips the snapshots entirely.
	if prof := obs.ProfileFrom(ctx); prof != nil {
		hot0, cold0 := s.hotHits.Load(), s.coldHits.Load()
		loads0, preads0 := s.blockLoads.Load(), s.preads.Load()
		defer func() {
			prof.AddLayout(s.hotHits.Load()-hot0, s.coldHits.Load()-cold0,
				s.blockLoads.Load()-loads0, s.preads.Load()-preads0)
		}()
	}
	var failed []storage.KeyError
	i, checked := 0, 0
	for i < len(keys) {
		if i-checked >= batchCancelStride {
			if err := ctx.Err(); err != nil {
				return err
			}
			checked = i
		}
		k := keys[i]
		if k < 0 || k >= s.g.cells {
			failed = append(failed, storage.KeyError{Index: i, Key: k,
				Err: fmt.Errorf("key out of range [0,%d)", s.g.cells)})
			i++
			continue
		}
		slot, ok := s.lookupSlot(k)
		if !ok {
			dst[i] = 0
			i++
			continue
		}
		n, err := s.serveRun(keys, dst, i, slot)
		if err != nil {
			failed = append(failed, storage.KeyError{Index: i, Key: k, Err: err})
			i++
			continue
		}
		i += n
	}
	if len(failed) > 0 {
		return &storage.BatchError{Failed: failed}
	}
	return nil
}

// Add implements storage.Updatable by refusing: a layout is a read-only
// artifact of its write-time schedule — rebuild it to change coefficients.
func (s *Store) Add(key int, delta float64) {
	panic("layout: store is read-only; rebuild the layout to change coefficients")
}

// Retrievals implements storage.Store.
func (s *Store) Retrievals() int64 { return s.retrievals.Load() }

// ResetStats implements storage.Store.
func (s *Store) ResetStats() { s.retrievals.Store(0) }

// NonzeroCount implements storage.Store.
func (s *Store) NonzeroCount() int { return s.g.nonzero }

// Size returns the domain size (total cells, zero or not).
func (s *Store) Size() int { return s.g.cells }

// Mass returns Σ|Δ̂[ξ]| as recorded at write time, so Theorem-1 bounds do
// not need an enumeration pass over the cold tail.
func (s *Store) Mass() float64 { return s.g.mass }

// Meta returns the embedded database identity, or nil for layouts written
// without one (e.g. converted from a bare .wvfs coefficient file).
func (s *Store) Meta() *Meta { return s.meta }

// Families returns the penalty families recorded at write time.
func (s *Store) Families() []Family { return append([]Family(nil), s.families...) }

// Quantized reports whether cold values were stored as float32 (lossy).
func (s *Store) Quantized() bool { return s.g.flags&flagQuantized != 0 }

// Mmapped reports whether the mmap tier is active (false = pread fallback).
func (s *Store) Mmapped() bool { return s.data != nil }

// HotCount returns the number of slots in the raw hot region.
func (s *Store) HotCount() int { return s.g.hotCount }

// BlockSize returns the cold-block granularity in slots.
func (s *Store) BlockSize() int { return s.g.blockSize }

// Blocks returns the number of cold blocks.
func (s *Store) Blocks() int { return s.g.numBlocks }

// Extent is a block's physical location in the file, exposed for
// diagnostics and corruption-injection tests.
type Extent struct {
	Off int64
	Len int
}

// BlockExtent returns the file extent of cold block b.
func (s *Store) BlockExtent(b int) Extent {
	return Extent{Off: int64(s.dir[b].off), Len: int(s.dir[b].len)}
}

// ConcurrentSafe implements storage.Concurrent: the mapping is immutable,
// positioned reads are kernel-concurrent, and the cache and counters
// synchronize themselves.
func (s *Store) ConcurrentSafe() {}

// ForEachNonzero implements storage.Enumerable in slot (schedule) order —
// the order that costs one sequential pass: the hot region streams from the
// mapping and each cold block is decoded exactly once. Enumeration order is
// unspecified by the interface; callers that need key order sort.
func (s *Store) ForEachNonzero(fn func(key int, value float64) bool) {
	for j := 0; j < s.g.hotCount; j++ {
		v, err := s.hotValue(j)
		if err != nil {
			panic(fmt.Sprintf("layout: enumerating slot %d: %v", j, err))
		}
		if v != 0 && !fn(s.KeyOfSlot(j), v) {
			return
		}
	}
	for b := 0; b < s.g.numBlocks; b++ {
		ent, err := s.block(b)
		if err != nil {
			panic(fmt.Sprintf("layout: enumerating block %d: %v", b, err))
		}
		for q := range ent.keys {
			if v := ent.val(q); v != 0 && !fn(ent.keys[ent.rank(q)], v) {
				return
			}
		}
	}
}

// Stats is a point-in-time snapshot of the store's tier counters.
type Stats struct {
	// Slots is the total coefficient count; HotSlots of them live in the
	// raw mmap-served region, the rest in Blocks cold blocks of BlockSize.
	Slots    int `json:"slots"`
	HotSlots int `json:"hot_slots"`
	Blocks   int `json:"blocks"`
	// BlockSize is the cold-block granularity in slots.
	BlockSize int `json:"block_size"`
	// Mmapped is false when the store runs on the pread fallback tier.
	Mmapped bool `json:"mmapped"`
	// Quantized marks lossy float32 cold values.
	Quantized bool `json:"quantized,omitempty"`
	// HotHits counts retrievals served by the hot region, ColdHits by
	// decoded blocks (cached or freshly loaded).
	HotHits  int64 `json:"hot_hits"`
	ColdHits int64 `json:"cold_hits"`
	// HintHits counts key lookups resolved by the sequential-slot hint
	// (no binary search): high on schedule-order drains.
	HintHits int64 `json:"hint_hits"`
	// BlockLoads counts physical block decodes (cold-cache misses);
	// BlockLoadFailures counts reads rejected by checksum or decode.
	BlockLoads        int64 `json:"block_loads"`
	BlockLoadFailures int64 `json:"block_load_failures,omitempty"`
	// Preads counts positioned-read syscalls issued by the fallback tier.
	Preads int64 `json:"preads,omitempty"`
	// CachedBlocks / CacheCapacity describe the decoded-block LRU.
	CachedBlocks  int `json:"cached_blocks"`
	CacheCapacity int `json:"cache_capacity"`
	// Families lists the penalty families the layout was bucketed against.
	Families []Family `json:"families,omitempty"`
}

// Stats snapshots the tier counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Slots:             s.g.nonzero,
		HotSlots:          s.g.hotCount,
		Blocks:            s.g.numBlocks,
		BlockSize:         s.g.blockSize,
		Mmapped:           s.data != nil,
		Quantized:         s.Quantized(),
		HotHits:           s.hotHits.Load(),
		ColdHits:          s.coldHits.Load(),
		HintHits:          s.hintHits.Load(),
		BlockLoads:        s.blockLoads.Load(),
		BlockLoadFailures: s.blockLoadFails.Load(),
		Preads:            s.preads.Load(),
		CacheCapacity:     s.cache.capacity,
		Families:          s.Families(),
	}
	if s.cache.lru != nil {
		s.cache.mu.Lock()
		st.CachedBlocks = s.cache.lru.Len()
		s.cache.mu.Unlock()
	}
	return st
}

// Close releases the mapping and the underlying file. Not safe to call
// while retrievals are in flight.
func (s *Store) Close() error { return s.close() }

func (s *Store) close() error {
	var err error
	if s.data != nil {
		err = munmapFile(s.data)
		s.data = nil
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

var (
	_ storage.Updatable     = (*Store)(nil)
	_ storage.BatchGetter   = (*Store)(nil)
	_ storage.FallibleStore = (*Store)(nil)
	_ storage.Enumerable    = (*Store)(nil)
	_ storage.Concurrent    = (*Store)(nil)
)
