package layout

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedLayout builds a small valid layout file and returns its bytes, so
// the fuzzer starts from well-formed inputs and mutates toward the
// interesting boundary: files that are almost valid.
func fuzzSeedLayout(f *testing.F, opts WriteOptions) []byte {
	f.Helper()
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.wvls")
	keys := make([]int, 0, 48)
	vals := make([]float64, 0, 48)
	for k := 0; k < 48; k++ {
		keys = append(keys, k*3)
		vals = append(vals, float64(k%7)-3.0)
	}
	if opts.Cells == 0 {
		opts.Cells = 256
	}
	if err := Write(path, keys, vals, opts); err != nil {
		f.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return blob
}

// FuzzOpenLayout pins the hardening contract of the read path: an arbitrary
// byte string presented as a .wvls file either fails Open with an error or
// opens into a store whose entire fallible surface serves reads without
// panicking — corrupted blocks surface as per-key errors, never as crashes
// or out-of-bounds access.
func FuzzOpenLayout(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("WVLS"))
	f.Add([]byte("WVFS\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add(fuzzSeedLayout(f, WriteOptions{HotCount: 8, BlockSize: 16}))
	f.Add(fuzzSeedLayout(f, WriteOptions{HotCount: 1, BlockSize: 4, Quantize: true}))
	f.Add(fuzzSeedLayout(f, WriteOptions{
		HotCount:  4,
		BlockSize: 8,
		Meta: &Meta{
			FilterName: "db4",
			TupleCount: 3,
			Names:      []string{"x", "y"},
			Sizes:      []int{16, 16},
		},
		Families: []FamilyOrder{{Label: "f0", Fingerprint: "fp0", Keys: []int{6, 3, 0}}},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wvls")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		for _, opts := range []Options{
			{},
			{DisableMmap: true, CacheBlocks: 2},
		} {
			s, err := Open(path, opts)
			if err != nil {
				continue // rejected: the contract for malformed input
			}
			fuzzExercise(t, s)
			if err := s.Close(); err != nil {
				t.Fatalf("Close after successful open: %v", err)
			}
		}
	})
}

// fuzzExercise drives every fallible read surface of an opened store. The
// header CRC protects the geometry, but block payloads are only checked on
// access — so a mutated file can open fine and still carry garbage blocks.
// All of that must come back as errors.
func fuzzExercise(t *testing.T, s *Store) {
	t.Helper()
	ctx := context.Background()
	_ = s.Stats()
	_ = s.Families()
	_ = s.Meta()
	_ = s.Mass()

	n := s.NonzeroCount()
	if n > 1<<16 {
		n = 1 << 16 // bound the work per input; geometry is attacker-chosen
	}
	keys := make([]int, 0, n+2)
	for j := 0; j < n; j++ {
		keys = append(keys, s.KeyOfSlot(j))
	}
	// Out-of-range and absent keys must be as safe as present ones.
	keys = append(keys, -1, s.Size())

	for _, k := range keys {
		_, _ = s.GetCtx(ctx, k)
	}
	dst := make([]float64, len(keys))
	_ = s.BatchGetCtx(ctx, keys, dst)
}
