package layout

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/storage"
)

// benchCells is the drain size: 10,485,760 coefficients (~80 MiB of
// float64 payload), all nonzero, dense over the domain. This is the
// smallest size at which the drain is bandwidth-shaped rather than
// latency-shaped on this host.
const benchCells = 10 << 20

// benchDrainSlice mirrors the scheduler's batch slicing: the progressive
// engine asks for coefficients in schedule order, a few thousand at a time.
const benchDrainSlice = 4096

var (
	benchOnce    sync.Once
	benchSetupMu sync.Mutex
	benchFail    error
	benchDirPath string
	benchOrder   []int // canonical drain order: key of slot j, ascending j
)

// TestMain removes the ~400 MB benchmark fixture directory (if a benchmark
// run built one) after the package's tests and benches finish.
func TestMain(m *testing.M) {
	code := m.Run()
	if benchDirPath != "" {
		_ = os.RemoveAll(benchDirPath)
	}
	os.Exit(code)
}

// benchFiles builds the two stores once: a dense .wvfs coefficient file and
// its .wvls layout conversion, both over the same 10M random values.
func benchFiles(b *testing.B) (wvls, wvfs string, order []int) {
	b.Helper()
	benchSetupMu.Lock()
	defer benchSetupMu.Unlock()
	benchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "layout-bench-*")
		if err != nil {
			benchFail = err
			return
		}
		benchDirPath = dir
		rng := rand.New(rand.NewSource(42))
		cells := make([]float64, benchCells)
		keys := make([]int, benchCells)
		for i := range cells {
			v := rng.NormFloat64()
			if v == 0 {
				v = 1e-9
			}
			cells[i] = v
			keys[i] = i
		}
		if _, err := storage.CreateFileStore(filepath.Join(dir, "bench.wvfs"), cells); err != nil {
			benchFail = err
			return
		}
		if err := Write(filepath.Join(dir, "bench.wvls"), keys, cells, WriteOptions{
			Cells: benchCells,
		}); err != nil {
			benchFail = err
			return
		}
		s, err := Open(filepath.Join(dir, "bench.wvls"), Options{})
		if err != nil {
			benchFail = err
			return
		}
		defer s.Close()
		benchOrder = make([]int, s.NonzeroCount())
		for j := range benchOrder {
			benchOrder[j] = s.KeyOfSlot(j)
		}
	})
	if benchFail != nil {
		b.Fatal(benchFail)
	}
	return filepath.Join(benchDirPath, "bench.wvls"),
		filepath.Join(benchDirPath, "bench.wvfs"),
		benchOrder
}

// drainBatches walks the schedule order through GetBatch in scheduler-sized
// slices, accumulating a checksum so the reads cannot be elided.
func drainBatches(g storage.BatchGetter, order []int) float64 {
	dst := make([]float64, benchDrainSlice)
	sum := 0.0
	for lo := 0; lo < len(order); lo += benchDrainSlice {
		hi := lo + benchDrainSlice
		if hi > len(order) {
			hi = len(order)
		}
		g.GetBatch(order[lo:hi], dst[:hi-lo])
		for _, v := range dst[:hi-lo] {
			sum += v
		}
	}
	return sum
}

// BenchmarkStorageDrainLayout is the headline number: a cold progressive
// drain — fresh Store per iteration, so the block LRU starts empty and
// every cold block is read and decoded — over the full 10M-coefficient
// layout in schedule order. Bytes/op is the delivered coefficient payload,
// so the reported MB/s is useful bandwidth, not file bytes touched.
func BenchmarkStorageDrainLayout(b *testing.B) {
	wvls, _, order := benchFiles(b)
	b.SetBytes(int64(len(order)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(wvls, Options{})
		if err != nil {
			b.Fatal(err)
		}
		sink = drainBatches(s, order)
		_ = s.Close()
	}
}

// BenchmarkStorageDrainLayoutPread is the same cold drain through the
// no-mmap fallback: index sections resident, hot region and blocks via
// positioned reads.
func BenchmarkStorageDrainLayoutPread(b *testing.B) {
	wvls, _, order := benchFiles(b)
	b.SetBytes(int64(len(order)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(wvls, Options{DisableMmap: true})
		if err != nil {
			b.Fatal(err)
		}
		sink = drainBatches(s, order)
		_ = s.Close()
	}
}

// BenchmarkStorageDrainFileStore drains the identical schedule order
// through FileStore.GetBatch — the pre-layout storage path, where schedule
// order is a random permutation of the file and every coalesced run is a
// positioned read.
func BenchmarkStorageDrainFileStore(b *testing.B) {
	_, wvfs, order := benchFiles(b)
	b.SetBytes(int64(len(order)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs, err := storage.OpenFileStore(wvfs)
		if err != nil {
			b.Fatal(err)
		}
		sink = drainBatches(fs, order)
		_ = fs.Close()
	}
}

// BenchmarkStorageSequentialRead is the bandwidth ceiling reference: read
// the same coefficient payload front to back with a 1 MiB buffer and touch
// every byte. No format, no lookup, no decode — any drain pays at least
// this much.
func BenchmarkStorageSequentialRead(b *testing.B) {
	_, wvfs, _ := benchFiles(b)
	st, err := os.Stat(wvfs)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(st.Size())
	buf := make([]byte, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Open(wvfs)
		if err != nil {
			b.Fatal(err)
		}
		var total int64
		var acc byte
		for {
			n, err := f.Read(buf)
			for _, c := range buf[:n] {
				acc += c
			}
			total += int64(n)
			if err != nil {
				break
			}
		}
		_ = f.Close()
		if total != st.Size() {
			b.Fatalf("sequential read covered %d of %d bytes", total, st.Size())
		}
		sink = float64(acc)
	}
}

// sink defeats dead-code elimination across benchmarks.
var sink float64
