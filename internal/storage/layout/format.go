// Package layout implements schedule-aware persistent storage: the .wvls
// on-disk format lays coefficients out physically ordered by a canonical
// retrieval schedule, so a cold progressive drain — which asks for
// coefficients in exactly that order — is sequential I/O instead of the
// random positioned reads a key-ordered file serves it with. A prefix read
// of the file warms exactly the coefficients Theorem 1 says matter most,
// under any penalty whose schedule correlates with the layout family.
//
// File shape (all integers little-endian):
//
//	magic    "WVLS"                  4 bytes
//	version  uint16                  currently 1
//	flags    uint16                  bit 0: cold values quantized to float32
//	hdrLen   uint32                  length of the header blob
//	hdrCRC   uint32                  IEEE CRC-32 of the header blob
//	header blob (hdrLen bytes):
//	  cells, nonzero, hotCount uint64; blockSize uint32; mass float64
//	  meta flag uint8, then the optional schema/filter metadata
//	  family count uint16, then per family: label, fingerprint, hot coverage
//	  section offsets: keys, slotOf, keyOfSlot, hot, blockDir, blocks, size
//	data sections, at the offsets the header records:
//	  keys      nonzero × uint64    all stored keys, ascending
//	  slotOf    nonzero × uint32    slot of keys[i] (the key→slot permutation)
//	  keyOfSlot nonzero × uint64    key stored at slot j (schedule order)
//	  hot       hotCount × float64  raw values of slots [0,hotCount)
//	  blockDir  numBlocks × {off uint64, len uint32, crc uint32}
//	  blocks    delta-varint keys + slot→rank permutation + value words
//
// Slots are schedule positions: slot 0 is the most important coefficient.
// The hot prefix is stored raw and served zero-copy from an mmap of the
// file; the cold tail is grouped into blocks of blockSize slots, each block
// holding its keys re-sorted ascending and delta-varint packed
// ("Space-Efficient Data-Analysis Queries on Grids" is the grounding for
// the compact packed representation), a fixed-width slot→rank permutation
// tying slot order back to the key list, and values as raw float64 bits in
// slot order — float32 when the lossy Quantize option was chosen at write
// time — behind a per-block CRC-32 that turns silent corruption into
// per-key retrieval errors the engine degrades over.
package layout

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"
)

const (
	magic   = "WVLS"
	version = 1

	// flagQuantized marks files whose cold-block values are float32: a lossy,
	// explicitly-opted-into trade of bit-identity for half the cold bytes.
	flagQuantized = 1 << 0

	// preludeSize is the fixed region before the header blob.
	preludeSize = 4 + 2 + 2 + 4 + 4

	// DefaultBlockSize is the cold-block granularity: coefficients decoded
	// (and cached) together per block fetch.
	DefaultBlockSize = 4096

	// maxBlockSize bounds BlockSize so in-block ranks fit the fixed-width
	// uint16 permutation section.
	maxBlockSize = 1 << 16

	// maxDims mirrors codec's plausibility bound on schema dimensionality.
	maxDims = 64
)

// Meta is the optional database identity carried by a layout file so
// repro.OpenLayout can reassemble a servable view without the original
// .wvdb. Files converted from a bare coefficient file (.wvfs) have none.
type Meta struct {
	FilterName string
	TupleCount int64
	Names      []string
	Sizes      []int
	Windows    [][2]float64 // nil or one per dimension
}

// Family records one penalty family the layout was bucketed against: its
// fingerprint and how much of that family's schedule prefix the hot region
// covers. Family 0 is the canonical family — the one the physical order
// follows exactly.
type Family struct {
	// Label is a human-readable family name ("sse", "canonical", …).
	Label string `json:"label"`
	// Fingerprint is the penalty fingerprint (penalty.Fingerprint) whose
	// schedule produced (or was measured against) the layout order.
	Fingerprint string `json:"fingerprint"`
	// HotCoverage is the fraction of the family's first min(hotCount, len)
	// schedule keys that landed inside the hot region — 1.0 for the
	// canonical family, lower for families the layout only approximates.
	HotCoverage float64 `json:"hot_coverage"`
}

// FamilyOrder is a writer input: a penalty family's schedule key order.
// The first family supplied becomes the physical layout prefix.
type FamilyOrder struct {
	Label       string
	Fingerprint string
	// Keys is the family's retrieval order (most important first). It need
	// not mention every stored key; unmentioned keys follow in canonical
	// |value|-descending order.
	Keys []int
}

// WriteOptions configures Write.
type WriteOptions struct {
	// Cells is the domain size; every key must be in [0,Cells).
	Cells int
	// HotCount is the number of slots stored raw in the mmap-served hot
	// region; 0 selects a default of nonzero/8 (min 1, capped at nonzero),
	// negative means "everything hot" (no cold blocks).
	HotCount int
	// BlockSize is the cold-block granularity in slots; 0 selects
	// DefaultBlockSize.
	BlockSize int
	// Quantize stores cold values as float32. Lossy: drains over a
	// quantized layout are NOT bit-identical to the source store; the flag
	// is recorded in the file and surfaced by Store.Quantized.
	Quantize bool
	// Meta optionally embeds the database identity (see Meta).
	Meta *Meta
	// Families optionally supplies penalty-family schedule orders. The
	// first family's order becomes the physical layout prefix; every family
	// is recorded with its measured hot coverage. With none supplied the
	// layout order is canonical: |value| descending, key ascending.
	Families []FamilyOrder
}

// blockRef is one block-directory entry.
type blockRef struct {
	off uint64
	len uint32
	crc uint32
}

// geometry is the decoded header: section offsets and counts.
type geometry struct {
	flags     uint16
	cells     int
	nonzero   int
	hotCount  int
	blockSize int
	numBlocks int
	mass      float64

	keysOff      int64
	slotOfOff    int64
	keyOfSlotOff int64
	hotOff       int64
	blockDirOff  int64
	blocksOff    int64
	fileSize     int64
}

func (g *geometry) blocks() int {
	cold := g.nonzero - g.hotCount
	if cold <= 0 {
		return 0
	}
	return (cold + g.blockSize - 1) / g.blockSize
}

// Write lays the nonzero coefficients (keys[i], values[i]) out at path in
// schedule order and writes the complete .wvls file. Zero values are
// dropped; duplicate keys are an error. The physical order is the first
// supplied family's schedule order (keys it does not mention, and all keys
// when no family is given, follow in canonical |value|-descending,
// key-ascending order).
func Write(path string, keys []int, values []float64, opts WriteOptions) (err error) {
	if len(keys) != len(values) {
		return fmt.Errorf("layout: %d keys for %d values", len(keys), len(values))
	}
	if opts.Cells <= 0 {
		return fmt.Errorf("layout: domain size %d must be positive", opts.Cells)
	}
	if opts.Meta != nil {
		if err := validateMeta(opts.Meta); err != nil {
			return err
		}
	}
	blockSize := opts.BlockSize
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize > maxBlockSize {
		return fmt.Errorf("layout: block size %d exceeds %d (the fixed-width rank limit)", blockSize, maxBlockSize)
	}

	// Drop zeros, validate range, check duplicates.
	pairs := make([]kv, 0, len(keys))
	for i, k := range keys {
		if k < 0 || k >= opts.Cells {
			return fmt.Errorf("layout: key %d out of range [0,%d)", k, opts.Cells)
		}
		if values[i] != 0 {
			pairs = append(pairs, kv{k, values[i]})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	for i := 1; i < len(pairs); i++ {
		if pairs[i].k == pairs[i-1].k {
			return fmt.Errorf("layout: duplicate key %d", pairs[i].k)
		}
	}
	n := len(pairs)

	hot := opts.HotCount
	switch {
	case hot < 0 || hot > n:
		hot = n
	case hot == 0:
		hot = n / 8
		if hot == 0 && n > 0 {
			hot = n
		}
	}

	// Canonical order: |value| descending, key ascending — "biggest first",
	// the data-driven proxy for every penalty's importance ranking.
	order := make([]int, n) // slot j ← index into pairs
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := math.Abs(pairs[order[a]].v), math.Abs(pairs[order[b]].v)
		if va != vb {
			return va > vb
		}
		return pairs[order[a]].k < pairs[order[b]].k
	})

	// A supplied family order overrides the prefix: its keys (those stored)
	// come first in its schedule order, the rest keep canonical order.
	rankOf := func(k int) (int, bool) { // pairs index of key k
		i := sort.Search(n, func(i int) bool { return pairs[i].k >= k })
		if i < n && pairs[i].k == k {
			return i, true
		}
		return 0, false
	}
	if len(opts.Families) > 0 {
		lead := opts.Families[0]
		taken := make([]bool, n)
		reordered := make([]int, 0, n)
		for _, k := range lead.Keys {
			if i, ok := rankOf(k); ok && !taken[i] {
				taken[i] = true
				reordered = append(reordered, i)
			}
		}
		for _, i := range order {
			if !taken[i] {
				reordered = append(reordered, i)
			}
		}
		order = reordered
	}

	// slotOfPair[i] = slot of pairs[i]; hotSet for coverage measurement.
	slotOfPair := make([]int32, n)
	for j, i := range order {
		slotOfPair[i] = int32(j)
	}
	var mass float64
	for _, p := range pairs {
		mass += math.Abs(p.v)
	}

	families := make([]Family, 0, len(opts.Families)+1)
	if len(opts.Families) == 0 {
		families = append(families, Family{Label: "canonical", Fingerprint: "canonical:|value|", HotCoverage: 1})
	}
	for fi, fo := range opts.Families {
		fam := Family{Label: fo.Label, Fingerprint: fo.Fingerprint}
		top := hot
		if len(fo.Keys) < top {
			top = len(fo.Keys)
		}
		if top == 0 {
			if fi == 0 {
				fam.HotCoverage = 1
			}
			families = append(families, fam)
			continue
		}
		covered := 0
		for _, k := range fo.Keys[:top] {
			if i, ok := rankOf(k); ok && int(slotOfPair[i]) < hot {
				covered++
			}
		}
		fam.HotCoverage = float64(covered) / float64(top)
		families = append(families, fam)
	}

	g := geometry{
		cells:     opts.Cells,
		nonzero:   n,
		hotCount:  hot,
		blockSize: blockSize,
		mass:      mass,
	}
	if opts.Quantize {
		g.flags |= flagQuantized
	}
	g.numBlocks = g.blocks()

	// Encode cold blocks first: their lengths feed the section offsets.
	valueAtSlot := func(j int) float64 { return pairs[order[j]].v }
	keyAtSlot := func(j int) int { return pairs[order[j]].k }
	blobs := make([][]byte, g.numBlocks)
	refs := make([]blockRef, g.numBlocks)
	var blocksLen int64
	for b := 0; b < g.numBlocks; b++ {
		lo := hot + b*blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		blob := encodeBlock(pairs, order[lo:hi], opts.Quantize)
		blobs[b] = blob
		refs[b] = blockRef{
			off: uint64(blocksLen),
			len: uint32(len(blob)),
			crc: crc32.ChecksumIEEE(blob),
		}
		blocksLen += int64(len(blob))
	}

	hdr := encodeHeaderBlob(&g, opts.Meta, families)
	dataStart := int64(preludeSize + len(hdr))
	g.keysOff = dataStart
	g.slotOfOff = g.keysOff + int64(n)*8
	g.keyOfSlotOff = g.slotOfOff + int64(n)*4
	g.hotOff = g.keyOfSlotOff + int64(n)*8
	g.blockDirOff = g.hotOff + int64(hot)*8
	g.blocksOff = g.blockDirOff + int64(g.numBlocks)*16
	g.fileSize = g.blocksOff + blocksLen
	for b := range refs {
		refs[b].off += uint64(g.blocksOff)
	}
	// Re-encode the header now that the offsets are known; the blob length
	// is offset-independent, so dataStart is stable.
	hdr = encodeHeaderBlob(&g, opts.Meta, families)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)

	var prelude [preludeSize]byte
	copy(prelude[0:4], magic)
	binary.LittleEndian.PutUint16(prelude[4:6], version)
	binary.LittleEndian.PutUint16(prelude[6:8], g.flags)
	binary.LittleEndian.PutUint32(prelude[8:12], uint32(len(hdr)))
	binary.LittleEndian.PutUint32(prelude[12:16], crc32.ChecksumIEEE(hdr))
	if _, err := w.Write(prelude[:]); err != nil {
		return err
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}

	var word [8]byte
	for _, p := range pairs { // keys, ascending
		binary.LittleEndian.PutUint64(word[:], uint64(p.k))
		if _, err := w.Write(word[:]); err != nil {
			return err
		}
	}
	for i := range pairs { // slotOf, parallel to keys
		binary.LittleEndian.PutUint32(word[:4], uint32(slotOfPair[i]))
		if _, err := w.Write(word[:4]); err != nil {
			return err
		}
	}
	for j := 0; j < n; j++ { // keyOfSlot
		binary.LittleEndian.PutUint64(word[:], uint64(keyAtSlot(j)))
		if _, err := w.Write(word[:]); err != nil {
			return err
		}
	}
	for j := 0; j < hot; j++ { // hot values, slot order
		binary.LittleEndian.PutUint64(word[:], math.Float64bits(valueAtSlot(j)))
		if _, err := w.Write(word[:]); err != nil {
			return err
		}
	}
	for _, r := range refs { // block directory
		binary.LittleEndian.PutUint64(word[:], r.off)
		if _, err := w.Write(word[:]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(word[:4], r.len)
		binary.LittleEndian.PutUint32(word[4:8], r.crc)
		if _, err := w.Write(word[:]); err != nil {
			return err
		}
	}
	for _, blob := range blobs {
		if _, err := w.Write(blob); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

// kv is one stored coefficient.
type kv struct {
	k int
	v float64
}

// encodeBlock packs one cold block:
//
//	count  uvarint
//	keys   count × uvarint  deltas of the block's keys, ascending
//	rank   count × uint16   slot→rank permutation: the block's q-th slot
//	                        holds the rank[q]-th key in ascending order
//	values count × word     raw value bits in SLOT order (float32 when
//	                        quantized)
//
// Values in slot order plus a fixed-width permutation are what make the
// cold drain cheap: a schedule-order run indexes the value window
// directly (no per-key search, no decode loop at load), and the
// permutation verifies each landed key against the delta-packed key list
// without being walked at decode time.
func encodeBlock(pairs []kv, slots []int, quantize bool) []byte {
	// loc[p] = q: the block's q-th slot holds the p-th key in ascending
	// order. Its inverse rank[q] = p is the stored permutation.
	loc := make([]int, len(slots))
	for q := range loc {
		loc[q] = q
	}
	sort.Slice(loc, func(a, b int) bool { return pairs[slots[loc[a]]].k < pairs[slots[loc[b]]].k })
	buf := make([]byte, 0, len(slots)*12)
	var tmp [binary.MaxVarintLen64]byte
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(slots)))]...)
	prev := 0
	for p, q := range loc {
		k := pairs[slots[q]].k
		delta := k - prev
		if p == 0 {
			delta = k
		}
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(delta))]...)
		prev = k
	}
	rank := make([]uint16, len(slots))
	for p, q := range loc {
		rank[q] = uint16(p)
	}
	for _, p := range rank {
		binary.LittleEndian.PutUint16(tmp[:2], p)
		buf = append(buf, tmp[:2]...)
	}
	for q := range slots {
		if quantize {
			binary.LittleEndian.PutUint32(tmp[:4], math.Float32bits(float32(pairs[slots[q]].v)))
			buf = append(buf, tmp[:4]...)
		} else {
			binary.LittleEndian.PutUint64(tmp[:8], math.Float64bits(pairs[slots[q]].v))
			buf = append(buf, tmp[:8]...)
		}
	}
	return buf
}

// decodeBlock is encodeBlock's inverse; it returns the block's keys
// (ascending) plus raw windows over the fixed-width rank and value
// sections — under mmap those are zero-copy views into the mapping,
// decoded lazily at serve time. The caller has already verified the CRC;
// structure — ascending keys, exact section lengths — is still validated
// here, because a CRC only proves the file holds what the writer wrote,
// not that the writer was sane. Rank entries are range-checked at serve
// time (each retrieval compares the landed key against the requested
// one), so a corrupt permutation surfaces as a per-key error instead of
// a wrong value or a panic.
//
// The delta loop open-codes the one- and two-byte cases: this is the
// hottest decode in a cold drain, and binary.Uvarint's slice-header and
// loop setup are measurable at 10M keys.
func decodeBlock(blob []byte, quantized bool, wantSlots int) (keys []int, rankBytes, valBytes []byte, err error) {
	count, m := binary.Uvarint(blob)
	if m <= 0 || count > uint64(wantSlots) {
		return nil, nil, nil, fmt.Errorf("layout: block entry count invalid")
	}
	pos := m
	keys = make([]int, count)
	prev := -1
	for i := range keys {
		var d uint64
		if pos < len(blob) && blob[pos] < 0x80 {
			d = uint64(blob[pos])
			pos++
		} else if pos+1 < len(blob) && blob[pos+1] < 0x80 {
			d = uint64(blob[pos]&0x7f) | uint64(blob[pos+1])<<7
			pos += 2
		} else {
			var m int
			d, m = binary.Uvarint(blob[pos:])
			if m <= 0 {
				return nil, nil, nil, fmt.Errorf("layout: block key %d truncated", i)
			}
			pos += m
		}
		k := prev + int(d)
		if i == 0 {
			k = int(d)
		}
		if k <= prev {
			return nil, nil, nil, fmt.Errorf("layout: block keys not ascending")
		}
		keys[i] = k
		prev = k
	}
	width := 8
	if quantized {
		width = 4
	}
	if len(blob)-pos != int(count)*(2+width) {
		return nil, nil, nil, fmt.Errorf("layout: block rank/value section length mismatch")
	}
	rankEnd := pos + int(count)*2
	return keys, blob[pos:rankEnd], blob[rankEnd:], nil
}

func validateMeta(m *Meta) error {
	if len(m.FilterName) == 0 || len(m.FilterName) > 255 {
		return fmt.Errorf("layout: filter name length %d out of range", len(m.FilterName))
	}
	if len(m.Names) == 0 || len(m.Names) != len(m.Sizes) {
		return fmt.Errorf("layout: %d names for %d sizes", len(m.Names), len(m.Sizes))
	}
	if len(m.Names) > maxDims {
		return fmt.Errorf("layout: implausible dimension count %d", len(m.Names))
	}
	if m.Windows != nil && len(m.Windows) != len(m.Names) {
		return fmt.Errorf("layout: %d windows for %d dimensions", len(m.Windows), len(m.Names))
	}
	return nil
}

// encodeHeaderBlob serializes the geometry, optional meta and families.
// Its length does not depend on the offset values, so Write can encode it
// once to learn the length and once more with the final offsets.
func encodeHeaderBlob(g *geometry, meta *Meta, families []Family) []byte {
	var b []byte
	u64 := func(v uint64) {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], v)
		b = append(b, w[:]...)
	}
	u32 := func(v uint32) {
		var w [4]byte
		binary.LittleEndian.PutUint32(w[:], v)
		b = append(b, w[:]...)
	}
	u16 := func(v uint16) {
		var w [2]byte
		binary.LittleEndian.PutUint16(w[:], v)
		b = append(b, w[:]...)
	}
	str8 := func(s string) { b = append(b, byte(len(s))); b = append(b, s...) }
	str16 := func(s string) { u16(uint16(len(s))); b = append(b, s...) }

	u64(uint64(g.cells))
	u64(uint64(g.nonzero))
	u64(uint64(g.hotCount))
	u32(uint32(g.blockSize))
	u64(math.Float64bits(g.mass))
	if meta == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		str8(meta.FilterName)
		u64(uint64(meta.TupleCount))
		u16(uint16(len(meta.Names)))
		for i, name := range meta.Names {
			str16(name)
			u32(uint32(meta.Sizes[i]))
			var win [2]float64
			if meta.Windows != nil {
				win = meta.Windows[i]
			}
			u64(math.Float64bits(win[0]))
			u64(math.Float64bits(win[1]))
		}
	}
	u16(uint16(len(families)))
	for _, fam := range families {
		str8(fam.Label)
		str16(fam.Fingerprint)
		u64(math.Float64bits(fam.HotCoverage))
	}
	u64(uint64(g.keysOff))
	u64(uint64(g.slotOfOff))
	u64(uint64(g.keyOfSlotOff))
	u64(uint64(g.hotOff))
	u64(uint64(g.blockDirOff))
	u64(uint64(g.blocksOff))
	u64(uint64(g.fileSize))
	return b
}

// blobReader decodes the header blob with bounds checking; every read that
// would run past the blob yields an error instead of a panic, so corrupted
// headers are rejected (see FuzzOpenLayout).
type blobReader struct {
	b   []byte
	pos int
	err error
}

func (r *blobReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.b) {
		r.err = fmt.Errorf("layout: header truncated")
		return nil
	}
	s := r.b[r.pos : r.pos+n]
	r.pos += n
	return s
}

func (r *blobReader) u64() uint64 {
	if s := r.take(8); s != nil {
		return binary.LittleEndian.Uint64(s)
	}
	return 0
}

func (r *blobReader) u32() uint32 {
	if s := r.take(4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return 0
}

func (r *blobReader) u16() uint16 {
	if s := r.take(2); s != nil {
		return binary.LittleEndian.Uint16(s)
	}
	return 0
}

func (r *blobReader) u8() uint8 {
	if s := r.take(1); s != nil {
		return s[0]
	}
	return 0
}

func (r *blobReader) str8() string  { return string(r.take(int(r.u8()))) }
func (r *blobReader) str16() string { return string(r.take(int(r.u16()))) }

// decodeHeaderBlob parses and validates the header blob. Structural
// implausibilities — counts that disagree with the offsets, offsets outside
// the file, section overlaps — are rejected here so the read path can trust
// the geometry unconditionally.
func decodeHeaderBlob(blob []byte, flags uint16, fileSize int64) (*geometry, *Meta, []Family, error) {
	r := &blobReader{b: blob}
	g := &geometry{flags: flags}
	g.cells = int(r.u64())
	g.nonzero = int(r.u64())
	g.hotCount = int(r.u64())
	g.blockSize = int(r.u32())
	g.mass = math.Float64frombits(r.u64())

	var meta *Meta
	if r.u8() == 1 {
		meta = &Meta{}
		meta.FilterName = r.str8()
		meta.TupleCount = int64(r.u64())
		dims := int(r.u16())
		if dims == 0 || dims > maxDims {
			return nil, nil, nil, fmt.Errorf("layout: implausible dimension count %d", dims)
		}
		meta.Names = make([]string, dims)
		meta.Sizes = make([]int, dims)
		windows := make([][2]float64, dims)
		anyWindow := false
		for i := 0; i < dims; i++ {
			meta.Names[i] = r.str16()
			meta.Sizes[i] = int(r.u32())
			windows[i] = [2]float64{
				math.Float64frombits(r.u64()),
				math.Float64frombits(r.u64()),
			}
			if windows[i] != ([2]float64{}) {
				anyWindow = true
			}
		}
		if anyWindow {
			meta.Windows = windows
		}
	}
	nf := int(r.u16())
	if nf > 256 {
		return nil, nil, nil, fmt.Errorf("layout: implausible family count %d", nf)
	}
	families := make([]Family, nf)
	for i := range families {
		families[i].Label = r.str8()
		families[i].Fingerprint = r.str16()
		families[i].HotCoverage = math.Float64frombits(r.u64())
	}
	g.keysOff = int64(r.u64())
	g.slotOfOff = int64(r.u64())
	g.keyOfSlotOff = int64(r.u64())
	g.hotOff = int64(r.u64())
	g.blockDirOff = int64(r.u64())
	g.blocksOff = int64(r.u64())
	g.fileSize = int64(r.u64())
	if r.err != nil {
		return nil, nil, nil, r.err
	}

	// Geometry plausibility: non-negative counts that fit the domain, and a
	// section table consistent with the counts and the actual file size.
	if g.cells <= 0 || g.nonzero < 0 || g.nonzero > g.cells {
		return nil, nil, nil, fmt.Errorf("layout: implausible geometry (cells %d, nonzero %d)", g.cells, g.nonzero)
	}
	if g.hotCount < 0 || g.hotCount > g.nonzero || g.blockSize <= 0 || g.blockSize > maxBlockSize {
		return nil, nil, nil, fmt.Errorf("layout: implausible geometry (hot %d of %d, block size %d)",
			g.hotCount, g.nonzero, g.blockSize)
	}
	g.numBlocks = g.blocks()
	n := int64(g.nonzero)
	dataStart := int64(preludeSize + len(blob))
	want := []struct {
		name string
		off  int64
		size int64
	}{
		{"keys", g.keysOff, n * 8},
		{"slotOf", g.slotOfOff, n * 4},
		{"keyOfSlot", g.keyOfSlotOff, n * 8},
		{"hot", g.hotOff, int64(g.hotCount) * 8},
		{"blockDir", g.blockDirOff, int64(g.numBlocks) * 16},
	}
	next := dataStart
	for _, s := range want {
		if s.off != next {
			return nil, nil, nil, fmt.Errorf("layout: %s section at %d, want %d", s.name, s.off, next)
		}
		next += s.size
	}
	if g.blocksOff != next {
		return nil, nil, nil, fmt.Errorf("layout: blocks section at %d, want %d", g.blocksOff, next)
	}
	if g.fileSize < g.blocksOff || g.fileSize != fileSize {
		return nil, nil, nil, fmt.Errorf("layout: file size %d does not match header (want %d)", fileSize, g.fileSize)
	}
	return g, meta, families, nil
}
