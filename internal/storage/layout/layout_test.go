package layout

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/storage"
)

// testCoefficients builds a deterministic sparse coefficient set.
func testCoefficients(n, cells int, seed int64) (keys []int, values []float64) {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[int]bool, n)
	for len(keys) < n {
		k := rng.Intn(cells)
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
		values = append(values, rng.NormFloat64()*math.Exp(rng.NormFloat64()*3))
	}
	return keys, values
}

func writeTestLayout(t *testing.T, keys []int, values []float64, opts WriteOptions) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wvls")
	if err := Write(path, keys, values, opts); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return path
}

// TestRoundtrip pins that every stored key reads back bit-identically
// through both the mmap and the pread tiers, hot and cold, and that unknown
// keys read as zero.
func TestRoundtrip(t *testing.T) {
	const cells = 1 << 16
	keys, values := testCoefficients(5000, cells, 1)
	path := writeTestLayout(t, keys, values, WriteOptions{
		Cells:    cells,
		HotCount: 512,
		// Small blocks so the cold tail spans many blocks.
		BlockSize: 128,
	})
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"mmap", Options{}},
		{"pread", Options{DisableMmap: true}},
		{"uncached", Options{DisableMmap: true, CacheBlocks: -1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(path, tc.opts)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer func() { _ = s.Close() }()
			if tc.name == "mmap" && !s.Mmapped() {
				t.Skip("mmap unavailable on this platform")
			}
			if tc.name != "mmap" && s.Mmapped() {
				t.Fatal("DisableMmap ignored")
			}
			if s.NonzeroCount() != len(keys) {
				t.Fatalf("NonzeroCount = %d, want %d", s.NonzeroCount(), len(keys))
			}
			if s.Size() != cells {
				t.Fatalf("Size = %d, want %d", s.Size(), cells)
			}
			var wantMass float64
			for _, v := range values {
				wantMass += math.Abs(v)
			}
			if math.Abs(s.Mass()-wantMass) > 1e-9*wantMass {
				t.Fatalf("Mass = %v, want %v", s.Mass(), wantMass)
			}
			// Every stored key, in random order, via Get.
			perm := rand.New(rand.NewSource(2)).Perm(len(keys))
			for _, i := range perm {
				if got := s.Get(keys[i]); got != values[i] {
					t.Fatalf("Get(%d) = %v, want %v", keys[i], got, values[i])
				}
			}
			// Unknown keys are zero.
			stored := make(map[int]bool, len(keys))
			for _, k := range keys {
				stored[k] = true
			}
			for k := 0; k < cells && k < 1000; k++ {
				if !stored[k] {
					if got := s.Get(k); got != 0 {
						t.Fatalf("Get(%d) = %v, want 0 (unstored)", k, got)
					}
				}
			}
			// Batch in layout (schedule) order: the batch path serves whole
			// slot runs, so lookups happen only at run boundaries (tier and
			// block crossings) and all but the first resolve via the
			// sequential hint.
			ordered := make([]int, s.NonzeroCount())
			for j := range ordered {
				ordered[j] = s.KeyOfSlot(j)
			}
			st0 := s.Stats()
			dst := make([]float64, len(ordered))
			s.GetBatch(ordered, dst)
			byKey := make(map[int]float64, len(keys))
			for i, k := range keys {
				byKey[k] = values[i]
			}
			for j, k := range ordered {
				if dst[j] != byKey[k] {
					t.Fatalf("GetBatch slot %d key %d = %v, want %v", j, k, dst[j], byKey[k])
				}
			}
			st := s.Stats()
			if st.HintHits <= st0.HintHits {
				t.Fatalf("sequential drain gained no hint hits (%d → %d)", st0.HintHits, st.HintHits)
			}
			if tier := st.HotHits + st.ColdHits - st0.HotHits - st0.ColdHits; tier != int64(len(ordered)) {
				t.Fatalf("sequential drain counted %d tier hits, want %d", tier, len(ordered))
			}
			// Enumeration covers exactly the stored set.
			got := make(map[int]float64, len(keys))
			s.ForEachNonzero(func(k int, v float64) bool {
				got[k] = v
				return true
			})
			if len(got) != len(keys) {
				t.Fatalf("ForEachNonzero visited %d keys, want %d", len(got), len(keys))
			}
			for k, v := range byKey {
				if got[k] != v {
					t.Fatalf("ForEachNonzero[%d] = %v, want %v", k, got[k], v)
				}
			}
		})
	}
}

// TestLayoutOrderCanonical pins that with no family supplied, slots are
// ordered |value| descending with ascending-key ties.
func TestLayoutOrderCanonical(t *testing.T) {
	keys := []int{10, 20, 30, 40, 50}
	values := []float64{1, -8, 3, 8, 0.5}
	path := writeTestLayout(t, keys, values, WriteOptions{Cells: 64, HotCount: 2, BlockSize: 2})
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = s.Close() }()
	want := []int{20, 40, 30, 10, 50} // |−8| ties |8| → key 20 first
	for j, k := range want {
		if got := s.KeyOfSlot(j); got != k {
			t.Fatalf("KeyOfSlot(%d) = %d, want %d", j, got, k)
		}
	}
	fams := s.Families()
	if len(fams) != 1 || fams[0].Label != "canonical" || fams[0].HotCoverage != 1 {
		t.Fatalf("Families = %+v, want the canonical family at full coverage", fams)
	}
}

// TestLayoutFamilyOrder pins that the first supplied family dictates the
// physical prefix and that per-family hot coverage is measured.
func TestLayoutFamilyOrder(t *testing.T) {
	keys := []int{1, 2, 3, 4, 5, 6}
	values := []float64{10, 20, 30, 40, 50, 60}
	fam := FamilyOrder{
		Label:       "sse",
		Fingerprint: "sse",
		// Deliberately anti-canonical: smallest first; mentions only 4 keys.
		Keys: []int{1, 2, 3, 4},
	}
	other := FamilyOrder{Label: "canon-like", Fingerprint: "x", Keys: []int{6, 5, 1, 2}}
	path := writeTestLayout(t, keys, values, WriteOptions{
		Cells: 64, HotCount: 4, BlockSize: 2,
		Families: []FamilyOrder{fam, other},
	})
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = s.Close() }()
	// Family order first (1,2,3,4), then leftovers canonical (6,5).
	want := []int{1, 2, 3, 4, 6, 5}
	for j, k := range want {
		if got := s.KeyOfSlot(j); got != k {
			t.Fatalf("KeyOfSlot(%d) = %d, want %d", j, got, k)
		}
	}
	fams := s.Families()
	if len(fams) != 2 {
		t.Fatalf("Families = %+v, want 2", fams)
	}
	if fams[0].Fingerprint != "sse" || fams[0].HotCoverage != 1 {
		t.Fatalf("lead family = %+v, want full hot coverage", fams[0])
	}
	// other's top-4 is {6,5,1,2}; hot slots hold {1,2,3,4} → coverage 2/4.
	if fams[1].HotCoverage != 0.5 {
		t.Fatalf("bucketed family coverage = %v, want 0.5", fams[1].HotCoverage)
	}
}

// TestQuantizedLayout pins the lossy mode: the flag round-trips and values
// in the cold tail come back as float32-rounded.
func TestQuantizedLayout(t *testing.T) {
	keys := []int{1, 2, 3, 4}
	values := []float64{100, 10, 1.000000000001, 0.1}
	path := writeTestLayout(t, keys, values, WriteOptions{
		Cells: 64, HotCount: 1, BlockSize: 2, Quantize: true,
	})
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = s.Close() }()
	if !s.Quantized() {
		t.Fatal("Quantized flag lost")
	}
	if got := s.Get(1); got != 100 { // hot slot: raw float64
		t.Fatalf("hot Get(1) = %v, want 100", got)
	}
	if got := s.Get(3); got != float64(float32(1.000000000001)) {
		t.Fatalf("cold Get(3) = %v, want float32 rounding", got)
	}
}

// TestCorruptHeader pins that flipped header bytes are rejected at open.
func TestCorruptHeader(t *testing.T) {
	keys, values := testCoefficients(100, 1<<12, 3)
	path := writeTestLayout(t, keys, values, WriteOptions{Cells: 1 << 12})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 5, 9, 20, 40} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0xff
		bad := filepath.Join(t.TempDir(), "bad.wvls")
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if s, err := Open(bad, Options{}); err == nil {
			_ = s.Close()
			t.Fatalf("Open accepted a header with byte %d flipped", off)
		}
	}
	// Truncation is rejected too.
	bad := filepath.Join(t.TempDir(), "trunc.wvls")
	if err := os.WriteFile(bad, raw[:len(raw)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	if s, err := Open(bad, Options{}); err == nil {
		_ = s.Close()
		t.Fatal("Open accepted a truncated file")
	}
}

// TestCorruptBlock pins the degradation contract: a flipped byte in one
// cold block fails exactly the keys in that block — per-key errors through
// the fallible surface, valid values everywhere else.
func TestCorruptBlock(t *testing.T) {
	const cells = 1 << 14
	keys, values := testCoefficients(2000, cells, 4)
	path := writeTestLayout(t, keys, values, WriteOptions{
		Cells: cells, HotCount: 200, BlockSize: 100,
	})
	// Learn the geometry, then corrupt the middle block's payload.
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	victim := s.Blocks() / 2
	ref := s.dir[victim]
	blockKeys := map[int]bool{}
	ent, err := s.block(victim)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ent.keys {
		blockKeys[k] = true
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], int64(ref.off)+int64(ref.len)/2); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], int64(ref.off)+int64(ref.len)/2); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s, err = Open(path, Options{})
	if err != nil {
		t.Fatalf("Open after block corruption should succeed (header intact): %v", err)
	}
	defer func() { _ = s.Close() }()
	dst := make([]float64, len(keys))
	err = s.BatchGetCtx(context.Background(), keys, dst)
	var be *storage.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("BatchGetCtx = %v, want *BatchError", err)
	}
	failedKeys := map[int]bool{}
	for _, ke := range be.Failed {
		failedKeys[ke.Key] = true
	}
	if len(failedKeys) != len(blockKeys) {
		t.Fatalf("%d keys failed, want the %d keys of block %d", len(failedKeys), len(blockKeys), victim)
	}
	for i, k := range keys {
		if blockKeys[k] {
			if !failedKeys[k] {
				t.Fatalf("key %d lives in the corrupt block but did not fail", k)
			}
			continue
		}
		if failedKeys[k] {
			t.Fatalf("key %d failed but lives outside the corrupt block", k)
		}
		if dst[i] != values[i] {
			t.Fatalf("key %d = %v, want %v (positions outside the corrupt block must be valid)", k, dst[i], values[i])
		}
	}
	if s.Stats().BlockLoadFailures == 0 {
		t.Fatal("BlockLoadFailures not counted")
	}
}

// TestBatchGetCtxCancellation pins that a cancelled context aborts the
// batch whole (no *BatchError) both up front and mid-batch.
func TestBatchGetCtxCancellation(t *testing.T) {
	const cells = 1 << 14
	keys, values := testCoefficients(3000, cells, 5)
	path := writeTestLayout(t, keys, values, WriteOptions{Cells: cells, HotCount: 100, BlockSize: 64})
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dst := make([]float64, len(keys))
	if err := s.BatchGetCtx(ctx, keys, dst); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled BatchGetCtx = %v, want context.Canceled", err)
	}
	// Mid-batch: a context that reports cancellation only after the first
	// stride check.
	mc := &midCancelCtx{Context: context.Background(), after: 1}
	if err := s.BatchGetCtx(mc, keys, dst); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-batch BatchGetCtx = %v, want context.Canceled", err)
	}
}

// midCancelCtx reports Canceled from its (after+1)-th Err call on.
type midCancelCtx struct {
	context.Context
	mu    sync.Mutex
	calls int
	after int
}

func (c *midCancelCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// TestConcurrentReads exercises the mmap and cache tiers from many
// goroutines under -race.
func TestConcurrentReads(t *testing.T) {
	const cells = 1 << 14
	keys, values := testCoefficients(4000, cells, 6)
	byKey := make(map[int]float64, len(keys))
	for i, k := range keys {
		byKey[k] = values[i]
	}
	path := writeTestLayout(t, keys, values, WriteOptions{
		Cells: cells, HotCount: 256, BlockSize: 64,
	})
	for _, opts := range []Options{{}, {DisableMmap: true, CacheBlocks: 4}} {
		s, err := Open(path, opts)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				dst := make([]float64, 64)
				batch := make([]int, 64)
				for iter := 0; iter < 50; iter++ {
					for i := range batch {
						batch[i] = keys[rng.Intn(len(keys))]
					}
					if err := s.BatchGetCtx(context.Background(), batch, dst); err != nil {
						panic(err)
					}
					for i, k := range batch {
						if dst[i] != byKey[k] {
							panic("value mismatch under concurrency")
						}
					}
				}
			}(int64(w))
		}
		wg.Wait()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWriteValidation pins writer input validation.
func TestWriteValidation(t *testing.T) {
	dir := t.TempDir()
	p := func(name string) string { return filepath.Join(dir, name) }
	if err := Write(p("a"), []int{1}, []float64{1, 2}, WriteOptions{Cells: 8}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := Write(p("b"), []int{9}, []float64{1}, WriteOptions{Cells: 8}); err == nil {
		t.Fatal("out-of-range key accepted")
	}
	if err := Write(p("c"), []int{1, 1}, []float64{1, 2}, WriteOptions{Cells: 8}); err == nil {
		t.Fatal("duplicate key accepted")
	}
	if err := Write(p("d"), nil, nil, WriteOptions{Cells: 0}); err == nil {
		t.Fatal("zero domain accepted")
	}
	// Zero values are dropped, not stored.
	if err := Write(p("e"), []int{1, 2}, []float64{0, 5}, WriteOptions{Cells: 8}); err != nil {
		t.Fatal(err)
	}
	s, err := Open(p("e"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	if s.NonzeroCount() != 1 {
		t.Fatalf("NonzeroCount = %d, want 1 (zero dropped)", s.NonzeroCount())
	}
}

// TestEmptyLayout pins the degenerate all-zero store.
func TestEmptyLayout(t *testing.T) {
	path := writeTestLayout(t, nil, nil, WriteOptions{Cells: 16})
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	if s.NonzeroCount() != 0 || s.Get(3) != 0 {
		t.Fatal("empty layout must serve zeros")
	}
	s.ForEachNonzero(func(int, float64) bool {
		t.Fatal("empty layout enumerated a key")
		return false
	})
}

// TestMetaRoundtrip pins the embedded database identity.
func TestMetaRoundtrip(t *testing.T) {
	meta := &Meta{
		FilterName: "db4",
		TupleCount: 1234,
		Names:      []string{"age", "salary"},
		Sizes:      []int{64, 128},
		Windows:    [][2]float64{{0, 100}, {10, 1e6}},
	}
	keys, values := testCoefficients(50, 64*128, 7)
	path := writeTestLayout(t, keys, values, WriteOptions{Cells: 64 * 128, Meta: meta})
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	got := s.Meta()
	if got == nil {
		t.Fatal("Meta lost")
	}
	if got.FilterName != meta.FilterName || got.TupleCount != meta.TupleCount {
		t.Fatalf("Meta = %+v, want %+v", got, meta)
	}
	if !sort.IntsAreSorted(got.Sizes) && len(got.Sizes) != 2 {
		t.Fatalf("Sizes = %v", got.Sizes)
	}
	for i := range meta.Names {
		if got.Names[i] != meta.Names[i] || got.Sizes[i] != meta.Sizes[i] || got.Windows[i] != meta.Windows[i] {
			t.Fatalf("Meta dim %d = %v/%v/%v, want %v/%v/%v", i,
				got.Names[i], got.Sizes[i], got.Windows[i],
				meta.Names[i], meta.Sizes[i], meta.Windows[i])
		}
	}
}
