package storage

import (
	"path/filepath"
	"testing"
)

func TestArrayStoreForEachNonzeroEarlyStop(t *testing.T) {
	s := NewArrayStore([]float64{1, 0, 2, 3})
	n := 0
	s.ForEachNonzero(func(k int, v float64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
	// Full walk in ascending key order.
	var keys []int
	s.ForEachNonzero(func(k int, v float64) bool { keys = append(keys, k); return true })
	if len(keys) != 3 || keys[0] != 0 || keys[1] != 2 || keys[2] != 3 {
		t.Fatalf("keys = %v", keys)
	}
}

func TestHashStoreForEachNonzeroEarlyStop(t *testing.T) {
	s := NewHashStore()
	s.Add(1, 1)
	s.Add(2, 2)
	s.Add(3, 3)
	n := 0
	s.ForEachNonzero(func(int, float64) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestBlockStoreResetAndEnumeration(t *testing.T) {
	inner := NewArrayStore([]float64{0, 5, 0, 7})
	bs := NewBlockStore(inner, 2)
	bs.Get(1)
	bs.Get(3)
	if bs.BlockReads() != 2 {
		t.Fatalf("BlockReads = %d", bs.BlockReads())
	}
	bs.ResetStats()
	if bs.BlockReads() != 0 || bs.Retrievals() != 0 {
		t.Fatal("ResetStats failed")
	}
	var keys []int
	bs.ForEachNonzero(func(k int, v float64) bool { keys = append(keys, k); return true })
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 3 {
		t.Fatalf("keys = %v", keys)
	}
}

func TestBlockStorePanicsOnNonEnumerable(t *testing.T) {
	// A store type that does not implement Enumerable.
	bs := NewBlockStore(nonEnumStore{}, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bs.ForEachNonzero(func(int, float64) bool { return true })
}

type nonEnumStore struct{}

func (nonEnumStore) Get(int) float64   { return 0 }
func (nonEnumStore) Retrievals() int64 { return 0 }
func (nonEnumStore) ResetStats()       {}
func (nonEnumStore) NonzeroCount() int { return 0 }

func TestCachedStorePanicsOnNonEnumerable(t *testing.T) {
	cs, err := NewCachedStore(nonEnumStore{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cs.ForEachNonzero(func(int, float64) bool { return true })
}

func TestCreateFileStoreBadPath(t *testing.T) {
	if _, err := CreateFileStore(filepath.Join(t.TempDir(), "no", "such", "dir", "x.wvfs"), nil); err == nil {
		t.Error("unwritable path should fail")
	}
}

func TestFileStoreAddOnReadOnlyPanics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ro.wvfs")
	fs, err := CreateFileStore(path, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	fs.Close()
	ro, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: Add on read-only store")
		}
	}()
	ro.Add(0, 1)
}
