package storage

import (
	"sync"
	"testing"
)

func TestShardedStoreBasics(t *testing.T) {
	s := NewShardedStore(6) // rounds up
	if got := s.NumShards(); got != 8 {
		t.Fatalf("NumShards = %d, want 8 (rounded to power of two)", got)
	}
	s.Add(3, 1.5)
	s.Add(1000003, -2.0)
	s.Add(3, 0.5)
	if got := s.Get(3); got != 2.0 {
		t.Fatalf("Get(3) = %g, want 2", got)
	}
	if got := s.Get(999); got != 0 {
		t.Fatalf("Get(999) = %g, want 0", got)
	}
	if got := s.NonzeroCount(); got != 2 {
		t.Fatalf("NonzeroCount = %d, want 2", got)
	}
	// Cancelling an entry back to zero deletes it, like HashStore.
	s.Add(1000003, 2.0)
	if got := s.NonzeroCount(); got != 1 {
		t.Fatalf("NonzeroCount after cancel = %d, want 1", got)
	}
	if got := s.Retrievals(); got != 2 {
		t.Fatalf("Retrievals = %d, want 2 (Adds are not retrievals)", got)
	}
	s.ResetStats()
	if got := s.Retrievals(); got != 0 {
		t.Fatalf("Retrievals after reset = %d", got)
	}
}

func TestShardedStoreEnumeration(t *testing.T) {
	cells := []float64{0, 1, 0, 3, 0, 5}
	s := NewShardedStoreFromDense(cells, 0, 4)
	seen := map[int]float64{}
	s.ForEachNonzero(func(k int, v float64) bool {
		seen[k] = v
		return true
	})
	if len(seen) != 3 || seen[1] != 1 || seen[3] != 3 || seen[5] != 5 {
		t.Fatalf("enumeration saw %v", seen)
	}
	// Early termination stops after one callback.
	calls := 0
	s.ForEachNonzero(func(int, float64) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early-stop enumeration made %d calls", calls)
	}
	// Enumeration is not a retrieval.
	if got := s.Retrievals(); got != 0 {
		t.Fatalf("Retrievals after enumeration = %d", got)
	}
}

// bareStore implements Store and nothing else, for exercising the
// non-Enumerable and non-BatchGetter fallback paths.
type bareStore struct{ inner Store }

func (s *bareStore) Get(key int) float64 { return s.inner.Get(key) }
func (s *bareStore) Retrievals() int64   { return s.inner.Retrievals() }
func (s *bareStore) ResetStats()         { s.inner.ResetStats() }
func (s *bareStore) NonzeroCount() int   { return s.inner.NonzeroCount() }

func TestNewShardedStoreFrom(t *testing.T) {
	src := NewHashStoreFromDense([]float64{0, 2, 0, 4}, 0)
	s, err := NewShardedStoreFrom(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Get(1) != 2 || s.Get(3) != 4 || s.Get(0) != 0 {
		t.Fatal("copied store returned wrong values")
	}
	if _, err := NewShardedStoreFrom(&bareStore{inner: src}, 4); err == nil {
		t.Fatal("expected error sharding a non-enumerable store")
	}
}

// TestShardedStoreConcurrentAccess hammers one store from readers, batch
// readers and writers at once; run under -race this is the storage-level
// safety check, and the retrieval counter must account for every Get.
func TestShardedStoreConcurrentAccess(t *testing.T) {
	const (
		goroutines = 8
		opsEach    = 500
		keySpace   = 1 << 12
	)
	s := NewShardedStore(16)
	for k := 0; k < keySpace; k += 3 {
		s.Add(k, float64(k+1))
	}
	s.ResetStats()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 3 {
			case 0: // single-key readers
				for i := 0; i < opsEach; i++ {
					s.Get((g*opsEach + i) % keySpace)
				}
			case 1: // batch readers
				keys := make([]int, 10)
				dst := make([]float64, 10)
				for i := 0; i < opsEach/10; i++ {
					for j := range keys {
						keys[j] = (g + i*10 + j) % keySpace
					}
					s.GetBatch(keys, dst)
				}
			case 2: // writers (net-zero updates so values stay checkable)
				for i := 0; i < opsEach/2; i++ {
					k := (g + i) % keySpace
					s.Add(k, 7)
					s.Add(k, -7)
				}
			}
		}(g)
	}
	wg.Wait()

	// 3 reader goroutines × 500 single Gets + 3 batch goroutines × 50
	// batches × 10 keys (writers do not retrieve). goroutines=8 → g%3 is
	// 0 for g∈{0,3,6}, 1 for g∈{1,4,7}, 2 for g∈{2,5}.
	want := int64(3*opsEach + 3*(opsEach/10)*10)
	if got := s.Retrievals(); got != want {
		t.Fatalf("Retrievals = %d, want %d", got, want)
	}
	// Writers applied net-zero deltas: contents must be untouched.
	for _, k := range []int{0, 3, 4, 1000, 4095} {
		want := 0.0
		if k%3 == 0 {
			want = float64(k + 1)
		}
		if got := s.Get(k); got != want {
			t.Fatalf("Get(%d) = %g after stress, want %g", k, got, want)
		}
	}
}
