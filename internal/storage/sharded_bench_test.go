package storage

import (
	"fmt"
	"testing"
)

func benchCells() []float64 {
	cells := make([]float64, 1<<16)
	for i := range cells {
		cells[i] = float64(i%97) + 0.25
	}
	return cells
}

// BenchmarkConcurrentStore pits the single-mutex ConcurrentStore against the
// ShardedStore under concurrent single-key Gets (b.RunParallel spawns
// GOMAXPROCS goroutines). On a multi-core host the sharded variant avoids the
// global lock convoy; on one core the two mostly measure lock overhead.
func BenchmarkConcurrentStore(b *testing.B) {
	cells := benchCells()
	stores := []struct {
		name string
		s    Store
	}{
		{"mutex", NewConcurrentStore(NewHashStoreFromDense(cells, 0))},
		{"sharded", NewShardedStoreFromDense(cells, 0, 0)},
	}
	for _, st := range stores {
		b.Run(st.name+"/get", func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				k := 0
				for pb.Next() {
					st.s.Get(k & (1<<16 - 1))
					k += 7919 // large prime stride scatters shard access
				}
			})
		})
	}
	for _, st := range stores {
		for _, batch := range []int{64, 1024} {
			b.Run(fmt.Sprintf("%s/batch=%d", st.name, batch), func(b *testing.B) {
				b.RunParallel(func(pb *testing.PB) {
					keys := make([]int, batch)
					dst := make([]float64, batch)
					k := 0
					for pb.Next() {
						for j := range keys {
							keys[j] = k & (1<<16 - 1)
							k += 7919
						}
						BatchGet(st.s, keys, dst)
					}
				})
			})
		}
	}
}
