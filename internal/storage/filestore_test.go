package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func tempPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "coeffs.wvfs")
}

func TestFileStoreCreateGetMatchesMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	cells := make([]float64, 257)
	for i := range cells {
		if rng.Intn(3) == 0 {
			cells[i] = rng.NormFloat64()
		}
	}
	path := tempPath(t)
	fs, err := CreateFileStore(path, cells)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if fs.Size() != len(cells) {
		t.Fatalf("Size = %d", fs.Size())
	}
	for i, want := range cells {
		if got := fs.Get(i); got != want {
			t.Fatalf("Get(%d) = %g, want %g", i, got, want)
		}
	}
	if fs.Retrievals() != int64(len(cells)) {
		t.Fatalf("Retrievals = %d", fs.Retrievals())
	}
	fs.ResetStats()
	if fs.Retrievals() != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestFileStoreReopen(t *testing.T) {
	cells := []float64{0, 1.5, 0, -2.25}
	path := tempPath(t)
	fs, err := CreateFileStore(path, cells)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Size() != 4 || re.Get(1) != 1.5 || re.Get(3) != -2.25 {
		t.Fatal("reopened store content wrong")
	}
	if re.NonzeroCount() != 2 {
		t.Fatalf("NonzeroCount = %d", re.NonzeroCount())
	}
}

func TestFileStoreForEachNonzero(t *testing.T) {
	cells := []float64{0, 7, 0, 0, 9, 0}
	fs, err := CreateFileStore(tempPath(t), cells)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	var keys []int
	fs.ForEachNonzero(func(k int, v float64) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 4 {
		t.Fatalf("keys = %v", keys)
	}
	// Early stop.
	n := 0
	fs.ForEachNonzero(func(int, float64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestFileStoreAdd(t *testing.T) {
	fs, err := CreateFileStore(tempPath(t), make([]float64, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	fs.Add(3, 2.5)
	fs.Add(3, -1)
	if got := fs.Get(3); got != 1.5 {
		t.Fatalf("after Add: %g", got)
	}
}

func TestFileStorePanicsOutOfRange(t *testing.T) {
	fs, err := CreateFileStore(tempPath(t), make([]float64, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	for _, fn := range []func(){
		func() { fs.Get(-1) },
		func() { fs.Get(2) },
		func() { fs.Add(9, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Failure injection: corrupted headers and truncated files must be rejected
// at open time, not discovered as garbage reads later.
func TestOpenFileStoreRejectsCorruption(t *testing.T) {
	path := tempPath(t)
	fs, err := CreateFileStore(path, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	fs.Close()

	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]func([]byte) []byte{
		"bad magic": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		},
		"bad version": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[4] = 0xFF
			return c
		},
		"truncated": func(b []byte) []byte { return b[:len(b)-5] },
		"trailing garbage": func(b []byte) []byte {
			return append(append([]byte(nil), b...), 0xAB)
		},
		"empty": func([]byte) []byte { return nil },
	}
	for name, mutate := range cases {
		p := filepath.Join(t.TempDir(), "bad.wvfs")
		if err := os.WriteFile(p, mutate(good), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenFileStore(p); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
	if _, err := OpenFileStore(filepath.Join(t.TempDir(), "missing.wvfs")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestFileStoreEmptyArray(t *testing.T) {
	fs, err := CreateFileStore(tempPath(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if fs.Size() != 0 || fs.NonzeroCount() != 0 {
		t.Fatal("empty store wrong")
	}
}

func BenchmarkFileStoreGet(b *testing.B) {
	cells := make([]float64, 1<<14)
	for i := range cells {
		cells[i] = float64(i)
	}
	fs, err := CreateFileStore(filepath.Join(b.TempDir(), "bench.wvfs"), cells)
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.Get(i & (1<<14 - 1))
	}
}
