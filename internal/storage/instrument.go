package storage

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Observability for the storage layer. Observe installs a metrics bundle
// into a package-level atomic pointer; every layer (cache, coalescing,
// retry, fault injection) checks the pointer on its counting paths, and the
// InstrumentedStore wrapper times the retrieval calls themselves. With no
// registry observed the pointer is nil and every site is one atomic load
// plus a branch — no allocation, no time.Now.

// storageMetrics is the package's metric bundle, built once per Observe.
type storageMetrics struct {
	getSeconds      *obs.Histogram // latency of single fallible/infallible gets
	batchSeconds    *obs.Histogram // latency of batched gets
	batchKeys       *obs.Counter   // keys requested through batched gets
	cacheHits       *obs.Counter
	cacheMisses     *obs.Counter
	coalesceReqs    *obs.Counter
	coalesceFetched *obs.Counter
	coalesceShared  *obs.Counter
	retryAttempts   *obs.Counter
	retryExhausted  *obs.Counter
	faultErrors     *obs.Counter
	faultDelays     *obs.Counter
}

var stMetrics atomic.Pointer[storageMetrics]

// Observe points the storage layer's instrumentation at reg. Pass nil to
// uninstall (the default state): all instrumentation sites degrade to an
// atomic load and a nil check.
func Observe(reg *obs.Registry) {
	if reg == nil {
		stMetrics.Store(nil)
		return
	}
	stMetrics.Store(&storageMetrics{
		getSeconds: reg.Histogram("wvq_storage_get_seconds",
			"Latency of single-coefficient retrievals.", nil),
		batchSeconds: reg.Histogram("wvq_storage_batchget_seconds",
			"Latency of batched coefficient retrievals.", nil),
		batchKeys: reg.Counter("wvq_storage_batchget_keys_total",
			"Coefficients requested through batched retrievals."),
		cacheHits: reg.Counter("wvq_storage_cache_hits_total",
			"Coefficient cache hits."),
		cacheMisses: reg.Counter("wvq_storage_cache_misses_total",
			"Coefficient cache misses (fetches that reached the wrapped store)."),
		coalesceReqs: reg.Counter("wvq_storage_coalesce_requests_total",
			"Coefficients requested through the coalescing layer."),
		coalesceFetched: reg.Counter("wvq_storage_coalesce_fetched_total",
			"Coefficients physically fetched by the coalescing layer."),
		coalesceShared: reg.Counter("wvq_storage_coalesce_shared_total",
			"Coefficients served by joining another caller's in-flight fetch."),
		retryAttempts: reg.Counter("wvq_storage_retry_attempts_total",
			"Retrieval attempts issued by the retry layer, including first tries."),
		retryExhausted: reg.Counter("wvq_storage_retry_exhausted_total",
			"Keys whose retrieval failed on every retry attempt."),
		faultErrors: reg.Counter("wvq_storage_faults_injected_total",
			"Failures injected by the fault layer.", obs.L("kind", "error")),
		faultDelays: reg.Counter("wvq_storage_faults_injected_total",
			"Failures injected by the fault layer.", obs.L("kind", "delay")),
	})
}

// stObs returns the installed bundle, or nil when observation is off.
func stObs() *storageMetrics { return stMetrics.Load() }

// obsCoalesce mirrors coalescing counters into the observed registry.
func obsCoalesce(requests, fetched, shared int64) {
	m := stObs()
	if m == nil {
		return
	}
	m.coalesceReqs.Add(requests)
	m.coalesceFetched.Add(fetched)
	m.coalesceShared.Add(shared)
}

// obsRetryAttempts counts retrieval attempts issued by the retry layer.
func obsRetryAttempts(n int64) {
	if m := stObs(); m != nil {
		m.retryAttempts.Add(n)
	}
}

// obsRetryExhausted counts keys whose attempts ran out.
func obsRetryExhausted(n int64) {
	if m := stObs(); m != nil {
		m.retryExhausted.Add(n)
	}
}

// obsFaultErrors counts injected failures.
func obsFaultErrors(n int64) {
	if m := stObs(); m != nil {
		m.faultErrors.Add(n)
	}
}

// obsFaultDelay counts injected delays.
func obsFaultDelay() {
	if m := stObs(); m != nil {
		m.faultDelays.Inc()
	}
}

// InstrumentedStore wraps a Store and times every retrieval against the
// observed registry: single gets feed wvq_storage_get_seconds, batched gets
// wvq_storage_batchget_seconds plus a key-count counter. When no registry
// is observed the wrapper is a pass-through with one atomic load per call.
type InstrumentedStore struct {
	inner  Store
	finner FallibleStore
}

// NewInstrumentedStore wraps inner.
func NewInstrumentedStore(inner Store) *InstrumentedStore {
	return &InstrumentedStore{inner: inner, finner: AsFallible(inner)}
}

// WrapInstrumented wraps inner like NewInstrumentedStore, preserving the
// Concurrent marker (the wrapper itself is stateless) so a concurrent-safe
// store stays accepted wherever the original was.
func WrapInstrumented(inner Store) FallibleStore {
	w := NewInstrumentedStore(inner)
	if _, ok := inner.(Concurrent); ok {
		return concurrentInstrumented{w}
	}
	return w
}

// IsInstrumented reports whether s is an instrumentation wrapper.
func IsInstrumented(s Store) bool {
	switch s.(type) {
	case *InstrumentedStore, concurrentInstrumented:
		return true
	}
	return false
}

// concurrentInstrumented marks an InstrumentedStore over a concurrent-safe
// store as itself concurrent-safe.
type concurrentInstrumented struct{ *InstrumentedStore }

// ConcurrentSafe implements Concurrent.
func (concurrentInstrumented) ConcurrentSafe() {}

// Get implements Store, timing the retrieval when observed.
func (s *InstrumentedStore) Get(key int) float64 {
	m := stObs()
	if m == nil {
		return s.inner.Get(key)
	}
	start := time.Now()
	v := s.inner.Get(key)
	m.getSeconds.Observe(time.Since(start).Seconds())
	return v
}

// GetBatch implements BatchGetter, timing the batch when observed.
func (s *InstrumentedStore) GetBatch(keys []int, dst []float64) {
	m := stObs()
	if m == nil {
		BatchGet(s.inner, keys, dst)
		return
	}
	start := time.Now()
	BatchGet(s.inner, keys, dst)
	m.batchSeconds.Observe(time.Since(start).Seconds())
	m.batchKeys.Add(int64(len(keys)))
}

// GetCtx implements FallibleStore, timing the retrieval when observed.
func (s *InstrumentedStore) GetCtx(ctx context.Context, key int) (float64, error) {
	m := stObs()
	if m == nil {
		return s.finner.GetCtx(ctx, key)
	}
	start := time.Now()
	v, err := s.finner.GetCtx(ctx, key)
	m.getSeconds.Observe(time.Since(start).Seconds())
	return v, err
}

// BatchGetCtx implements FallibleStore, timing the batch when observed.
func (s *InstrumentedStore) BatchGetCtx(ctx context.Context, keys []int, dst []float64) error {
	m := stObs()
	if m == nil {
		return s.finner.BatchGetCtx(ctx, keys, dst)
	}
	start := time.Now()
	err := s.finner.BatchGetCtx(ctx, keys, dst)
	m.batchSeconds.Observe(time.Since(start).Seconds())
	m.batchKeys.Add(int64(len(keys)))
	return err
}

// Add implements Updatable when the wrapped store does; it panics otherwise.
func (s *InstrumentedStore) Add(key int, delta float64) {
	u, ok := s.inner.(Updatable)
	if !ok {
		panic("storage: wrapped store is not updatable")
	}
	u.Add(key, delta)
}

// Retrievals implements Store.
func (s *InstrumentedStore) Retrievals() int64 { return s.inner.Retrievals() }

// ResetStats implements Store.
func (s *InstrumentedStore) ResetStats() { s.inner.ResetStats() }

// NonzeroCount implements Store.
func (s *InstrumentedStore) NonzeroCount() int { return s.inner.NonzeroCount() }

// Enumerable reports whether the wrapped store supports enumeration.
func (s *InstrumentedStore) Enumerable() bool { return IsEnumerable(s.inner) }

// ForEachNonzero implements Enumerable when the wrapped store does; it
// panics otherwise (check Enumerable first).
func (s *InstrumentedStore) ForEachNonzero(fn func(key int, value float64) bool) {
	e, ok := s.inner.(Enumerable)
	if !ok {
		panic("storage: wrapped store is not enumerable")
	}
	e.ForEachNonzero(fn)
}

var (
	_ Store         = (*InstrumentedStore)(nil)
	_ BatchGetter   = (*InstrumentedStore)(nil)
	_ Updatable     = (*InstrumentedStore)(nil)
	_ Enumerable    = (*InstrumentedStore)(nil)
	_ FallibleStore = (*InstrumentedStore)(nil)
	_ Concurrent    = concurrentInstrumented{}
)
