package core

import (
	"context"
	"testing"

	"repro/internal/penalty"
	"repro/internal/storage"
)

// Robustness-layer benchmarks behind BENCH_robust.json: what the fallible
// API costs when nothing goes wrong. Four comparisons, all on the 128-query
// fixture: the AsFallible adapter vs the raw infallible path, the fallible
// progressive drain vs the plain one, and the marginal cost of a zero-fault
// injector and an idle retry layer on the exact fallible path.

// BenchmarkExactFallible compares the infallible exact pass against the
// context-aware one over the same hash store — the adapter + per-batch error
// plumbing is the entire difference.
func BenchmarkExactFallible(b *testing.B) {
	f := newBenchPlanFixture(b)
	ctx := context.Background()
	b.Run("infallible", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.plan.Exact(f.store)
		}
	})
	b.Run("fallible", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.plan.ExactCtx(ctx, f.store); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDrainFallible drains a full progressive run through StepBatch vs
// StepBatchCtx (batch 256, the sweet spot from BENCH_core.json).
func BenchmarkDrainFallible(b *testing.B) {
	f := newBenchPlanFixture(b)
	ctx := context.Background()
	b.Run("infallible", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run := NewRun(f.plan, penalty.SSE{}, f.store)
			for !run.Done() {
				run.StepBatch(256)
			}
		}
	})
	b.Run("fallible", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run := NewRun(f.plan, penalty.SSE{}, f.store)
			for !run.Done() {
				if _, err := run.StepBatchCtx(ctx, 256); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkZeroFaultInjector measures the exact fallible pass through a
// FaultStore whose schedule never fires — the price of leaving the chaos
// layer installed in production.
func BenchmarkZeroFaultInjector(b *testing.B) {
	f := newBenchPlanFixture(b)
	ctx := context.Background()
	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.plan.ExactCtx(ctx, f.store); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("injected", func(b *testing.B) {
		faulty := storage.NewFaultStore(f.store, storage.FaultConfig{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.plan.ExactCtx(ctx, faulty); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIdleRetryLayer measures the exact fallible pass through a
// RetryStore over a store that never fails: every call succeeds on the
// first attempt, so this is pure wrapper overhead.
func BenchmarkIdleRetryLayer(b *testing.B) {
	f := newBenchPlanFixture(b)
	ctx := context.Background()
	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.plan.ExactCtx(ctx, f.store); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("retried", func(b *testing.B) {
		retried := storage.NewRetryStore(f.store, storage.RetryConfig{MaxAttempts: 3})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.plan.ExactCtx(ctx, retried); err != nil {
				b.Fatal(err)
			}
		}
	})
}
