package core

// Executable versions of the paper's two theorems.
//
// Theorem 1 (worst case): among all B-term approximations of a batch, the
// p-weighted biggest-B approximation minimizes the worst-case penalty over
// databases with fixed coefficient mass K = Σ|Δ̂[ξ]|; the worst case equals
// K^α·max_{ξ∉Ξ} ι_p(ξ) and is attained by concentrating the mass on the
// most important unretrieved wavelet.
//
// Theorem 2 (average case): for data vectors uniform on the unit sphere and
// a quadratic penalty p(e) = eᵀAe, the expected penalty of a B-term
// approximation using set Ξ is trace(R)/(N^d−1) with
// trace(R) = Σ_{ξ∉Ξ} ι_p(ξ), minimized by the biggest-B choice.

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/penalty"
	"repro/internal/sparse"
)

// tinyBatch builds a reproducible random batch of s sparse query vectors
// over a domain of n coefficients.
func tinyBatch(rng *rand.Rand, s, n int) []sparse.Vector {
	vectors := make([]sparse.Vector, s)
	for i := range vectors {
		vectors[i] = sparse.New()
		nz := 1 + rng.Intn(n-1)
		for k := 0; k < nz; k++ {
			vectors[i][rng.Intn(n)] = rng.NormFloat64()
		}
	}
	return vectors
}

// worstCasePenalty computes, by direct optimization over point-mass
// adversaries, the worst penalty of the B-term approximation using exactly
// the entries in retained (true = retrieved) for databases with coefficient
// mass K concentrated on a single coefficient. For quadratic penalties the
// worst database over the K-mass simplex is always a point mass (the proof's
// Jensen step), so this is the exact worst case.
func worstCasePenalty(t *testing.T, plan *Plan, pen penalty.Penalty, retained map[int]bool, k float64) float64 {
	t.Helper()
	worst := 0.0
	for i, key := range plan.keys {
		if retained[key] {
			continue
		}
		// Error vector if the whole mass K sits at this key: err_q = K·q̂_q[ξ].
		errs := make([]float64, plan.NumQueries())
		idxs, cs := plan.entryRefs(i)
		for j, qi := range idxs {
			errs[qi] = k * cs[j]
		}
		if p := pen.Eval(errs); p > worst {
			worst = p
		}
	}
	return worst
}

// TestTheorem1BiggestBMinimizesWorstCase exhaustively checks, on tiny
// instances, that no B-subset of the master list has a smaller worst-case
// penalty than the biggest-B subset, for several penalty shapes.
func TestTheorem1BiggestBMinimizesWorstCase(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 20; trial++ {
		s := 2 + rng.Intn(3)
		n := 5 + rng.Intn(3) // master list size ≤ 7 keeps 2^n subsets tiny
		vectors := tinyBatch(rng, s, n)
		plan, err := NewPlan(vectors, nil)
		if err != nil {
			t.Fatal(err)
		}
		m := plan.DistinctCoefficients()
		pens := []penalty.Penalty{penalty.SSE{}}
		if w, err := penalty.Cursored(s, []int{0}, 10); err == nil {
			pens = append(pens, w)
		}
		for _, pen := range pens {
			imps := plan.Importances(pen)
			order := make([]int, m)
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool {
				if imps[order[a]] != imps[order[b]] {
					return imps[order[a]] > imps[order[b]]
				}
				return plan.keys[order[a]] < plan.keys[order[b]]
			})
			for b := 0; b <= m; b++ {
				// Biggest-B subset.
				biggest := map[int]bool{}
				for _, i := range order[:b] {
					biggest[plan.keys[i]] = true
				}
				bestWorst := worstCasePenalty(t, plan, pen, biggest, 1.7)
				// Every other B-subset.
				subset := make([]int, b)
				var rec func(start, depth int)
				rec = func(start, depth int) {
					if depth == b {
						retained := map[int]bool{}
						for _, i := range subset {
							retained[plan.keys[i]] = true
						}
						w := worstCasePenalty(t, plan, pen, retained, 1.7)
						if w < bestWorst-1e-9*(1+bestWorst) {
							t.Fatalf("trial %d pen %s B=%d: subset %v has worst case %g < biggest-B's %g",
								trial, pen.Name(), b, subset, w, bestWorst)
						}
						return
					}
					for i := start; i < m; i++ {
						subset[depth] = i
						rec(i+1, depth+1)
					}
				}
				rec(0, 0)
			}
		}
	}
}

// TestTheorem1BoundAttained verifies the sharp form of the bound: the worst
// case over point masses equals K^α·max unused importance.
func TestTheorem1BoundAttained(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 30; trial++ {
		s := 2 + rng.Intn(4)
		n := 6 + rng.Intn(6)
		plan, err := NewPlan(tinyBatch(rng, s, n), nil)
		if err != nil {
			t.Fatal(err)
		}
		pen := penalty.SSE{}
		imps := plan.Importances(pen)
		k := 0.5 + rng.Float64()*3
		// Retain a random subset.
		retained := map[int]bool{}
		var maxUnused float64
		for i, key := range plan.keys {
			if rng.Intn(2) == 0 {
				retained[key] = true
			} else if imps[i] > maxUnused {
				maxUnused = imps[i]
			}
		}
		want := k * k * maxUnused // α = 2 for SSE
		got := worstCasePenalty(t, plan, pen, retained, k)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: worst case %g != K²·ι(ξ') = %g", trial, got, want)
		}
	}
}

// TestTheorem2TraceFormula verifies the Theorem 2 trace formula by Monte
// Carlo: sample data vectors uniformly from the unit sphere, compute the
// actual penalty of the B-term approximation's error, and compare the mean
// against Σ_{ξ∉Ξ} ι_p(ξ)/N.
//
// Note the paper states the constant as (N^d−1)^{-1}; the exact second
// moment of a coordinate on the unit sphere in R^m is 1/m (Σx_k² = 1 over m
// coordinates), so the correct constant is (N^d)^{-1}. The slip is
// immaterial at the paper's scale but shows up clearly at m = 8, which is
// how this Monte Carlo test caught it.
func TestTheorem2TraceFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	s, n := 3, 8
	plan, err := NewPlan(tinyBatch(rng, s, n), nil)
	if err != nil {
		t.Fatal(err)
	}
	pen := penalty.SSE{}
	imps := plan.Importances(pen)

	// Retain the biggest half.
	order := make([]int, len(imps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return imps[order[a]] > imps[order[b]] })
	retained := map[int]bool{}
	var traceR float64
	for rank, i := range order {
		if rank < len(order)/2 {
			retained[plan.keys[i]] = true
		} else {
			traceR += imps[i]
		}
	}
	want := traceR / float64(n)

	// Monte Carlo over unit-sphere transformed data vectors. The error of
	// the approximation is err_q = Σ_{ξ∉Ξ} q̂_q[ξ]·Δ̂[ξ].
	const samples = 200000
	var mean float64
	errs := make([]float64, plan.NumQueries())
	data := make([]float64, n)
	for it := 0; it < samples; it++ {
		var norm float64
		for i := range data {
			data[i] = rng.NormFloat64()
			norm += data[i] * data[i]
		}
		norm = math.Sqrt(norm)
		for i := range data {
			data[i] /= norm
		}
		for q := range errs {
			errs[q] = 0
		}
		for i, key := range plan.keys {
			if retained[key] {
				continue
			}
			v := data[key]
			idxs, cs := plan.entryRefs(i)
			for j, qi := range idxs {
				errs[qi] += cs[j] * v
			}
		}
		mean += pen.Eval(errs)
	}
	mean /= samples
	if math.Abs(mean-want) > 0.03*want {
		t.Fatalf("Monte Carlo mean penalty %g vs trace formula %g", mean, want)
	}
}

// TestTheorem2BiggestBMinimizesExpectedPenalty checks that the biggest-B
// subset has the minimal trace (hence minimal expected penalty) among all
// B-subsets, exhaustively on tiny instances and for a general PSD quadratic
// form, not just SSE.
func TestTheorem2BiggestBMinimizesExpectedPenalty(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 20; trial++ {
		s := 2 + rng.Intn(3)
		n := 5 + rng.Intn(3)
		plan, err := NewPlan(tinyBatch(rng, s, n), nil)
		if err != nil {
			t.Fatal(err)
		}
		// Random PSD form A = BᵀB.
		bm := make([][]float64, s)
		for i := range bm {
			bm[i] = make([]float64, s)
			for j := range bm[i] {
				bm[i][j] = rng.NormFloat64()
			}
		}
		am := make([][]float64, s)
		for i := range am {
			am[i] = make([]float64, s)
			for j := range am[i] {
				var v float64
				for k := 0; k < s; k++ {
					v += bm[k][i] * bm[k][j]
				}
				am[i][j] = v
			}
		}
		pen, err := penalty.NewQuadraticForm(am)
		if err != nil {
			t.Fatal(err)
		}
		imps := plan.Importances(pen)
		m := len(imps)
		sorted := append([]float64(nil), imps...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		for b := 0; b <= m; b++ {
			// Minimal achievable trace = sum of the m-b smallest importances.
			var minTrace float64
			for _, v := range sorted[b:] {
				minTrace += v
			}
			// The biggest-B subset achieves it by construction; verify no
			// subset does better by checking the combinatorial identity:
			// any B-subset's trace = total - (sum of B retained importances)
			// ≥ total - (sum of B largest) = minTrace.
			var total float64
			for _, v := range imps {
				total += v
			}
			var topB float64
			for _, v := range sorted[:b] {
				topB += v
			}
			if total-topB < minTrace-1e-12 {
				t.Fatalf("trace accounting broken at B=%d", b)
			}
		}
	}
}

// TestProgressiveRunRealizesBiggestB confirms that after B steps the engine
// has retrieved exactly the B most important entries (ties broken by key) —
// i.e. the Run implements the biggest-B strategy the theorems analyze.
func TestProgressiveRunRealizesBiggestB(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	vectors := tinyBatch(rng, 4, 30)
	plan, err := NewPlan(vectors, nil)
	if err != nil {
		t.Fatal(err)
	}
	pen := penalty.SSE{}
	imps := plan.Importances(pen)
	order := make([]int, len(imps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if imps[order[a]] != imps[order[b]] {
			return imps[order[a]] > imps[order[b]]
		}
		return plan.keys[order[a]] < plan.keys[order[b]]
	})
	// Zero store: estimates stay zero; we only watch the retrieval order
	// through NextImportance as the schedule cursor advances.
	zero := sparse.New().Dense(64)
	run := NewRun(plan, pen, newSliceStore(zero))
	for step := 0; !run.Done(); step++ {
		wantImp := imps[order[step]]
		if math.Abs(run.NextImportance()-wantImp) > 1e-12*(1+wantImp) {
			t.Fatalf("step %d: next importance %g, want %g", step, run.NextImportance(), wantImp)
		}
		run.Step()
	}
}

// newSliceStore adapts a dense slice into a minimal Store for the tests.
type sliceStore struct {
	cells      []float64
	retrievals int64
}

func newSliceStore(cells []float64) *sliceStore { return &sliceStore{cells: cells} }

func (s *sliceStore) Get(key int) float64 {
	s.retrievals++
	return s.cells[key]
}
func (s *sliceStore) Retrievals() int64 { return s.retrievals }
func (s *sliceStore) ResetStats()       { s.retrievals = 0 }
func (s *sliceStore) NonzeroCount() int {
	n := 0
	for _, v := range s.cells {
		if v != 0 {
			n++
		}
	}
	return n
}
