package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/penalty"
	"repro/internal/query"
	"repro/internal/sparse"
	"repro/internal/storage"
	"repro/internal/wavelet"
)

// fixture builds a small dataset, a partition SUM batch, its wavelet plan
// and a populated store.
type fixture struct {
	schema *dataset.Schema
	dist   *dataset.Distribution
	batch  query.Batch
	plan   *Plan
	store  *storage.HashStore
	truth  []float64
}

func newFixture(t *testing.T, numRanges int) *fixture {
	t.Helper()
	schema := dataset.MustSchema([]string{"x", "y", "m"}, []int{16, 16, 8})
	dist := dataset.Uniform(schema, 4000, 7)
	ranges, err := query.RandomPartition(schema, numRanges, 3)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := query.SumBatch(schema, ranges, "m")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewWaveletPlan(batch, wavelet.Db4)
	if err != nil {
		t.Fatal(err)
	}
	hat, err := dist.Transform(wavelet.Db4)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		schema: schema,
		dist:   dist,
		batch:  batch,
		plan:   plan,
		store:  storage.NewHashStoreFromDense(hat, 0),
		truth:  batch.EvaluateDirect(dist),
	}
}

func assertClose(t *testing.T, got, want []float64, tol float64, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", ctx, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol*(1+math.Abs(want[i])) {
			t.Fatalf("%s: query %d: got %g want %g", ctx, i, got[i], want[i])
		}
	}
}

func TestNewPlanMergesSharedKeys(t *testing.T) {
	v0 := sparse.Vector{1: 2.0, 5: 1.0}
	v1 := sparse.Vector{5: -3.0, 9: 4.0}
	plan, err := NewPlan([]sparse.Vector{v0, v1}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.DistinctCoefficients() != 3 {
		t.Fatalf("DistinctCoefficients = %d, want 3", plan.DistinctCoefficients())
	}
	if plan.TotalQueryCoefficients() != 4 {
		t.Fatalf("TotalQueryCoefficients = %d, want 4", plan.TotalQueryCoefficients())
	}
	if got := plan.SharingFactor(); got != 4.0/3.0 {
		t.Fatalf("SharingFactor = %g", got)
	}
	if plan.NumQueries() != 2 {
		t.Fatalf("NumQueries = %d", plan.NumQueries())
	}
}

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(nil, nil); err == nil {
		t.Error("empty batch should fail")
	}
	if _, err := NewPlan([]sparse.Vector{{1: 1}}, []string{"a", "b"}); err == nil {
		t.Error("label count mismatch should fail")
	}
	p, err := NewPlan([]sparse.Vector{{1: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels[0] != "q0" {
		t.Fatalf("default label = %q", p.Labels[0])
	}
}

func TestNewWaveletPlanRejectsInsufficientFilter(t *testing.T) {
	schema := dataset.MustSchema([]string{"x"}, []int{16})
	q, err := query.Sum(schema, query.FullDomain(schema), "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWaveletPlan(query.Batch{q}, wavelet.Haar); err == nil {
		t.Error("Haar on degree-1 batch should be rejected")
	}
	if _, err := NewWaveletPlan(query.Batch{}, wavelet.Db4); err == nil {
		t.Error("empty batch should be rejected")
	}
}

func TestExactMatchesGroundTruth(t *testing.T) {
	fx := newFixture(t, 12)
	got := fx.plan.Exact(fx.store)
	assertClose(t, got, fx.truth, 1e-6, "exact")
	if fx.store.Retrievals() != int64(fx.plan.DistinctCoefficients()) {
		t.Fatalf("retrievals %d != distinct %d", fx.store.Retrievals(), fx.plan.DistinctCoefficients())
	}
}

func TestRunToCompletionMatchesExact(t *testing.T) {
	fx := newFixture(t, 12)
	run := NewRun(fx.plan, penalty.SSE{}, fx.store)
	run.RunToCompletion()
	assertClose(t, run.Estimates(), fx.truth, 1e-6, "progressive-complete")
	if run.Retrieved() != fx.plan.DistinctCoefficients() {
		t.Fatalf("retrieved %d != distinct %d", run.Retrieved(), fx.plan.DistinctCoefficients())
	}
	if !run.Done() || run.Step() {
		t.Fatal("run should be done")
	}
	if run.NextImportance() != 0 || run.WorstCaseBound(5) != 0 {
		t.Fatal("importance should be 0 when done")
	}
}

func TestRunPopsImportancesInNonIncreasingOrder(t *testing.T) {
	fx := newFixture(t, 8)
	run := NewRun(fx.plan, penalty.SSE{}, fx.store)
	prev := math.Inf(1)
	for !run.Done() {
		next := run.NextImportance()
		if next > prev+1e-12 {
			t.Fatalf("importance increased: %g after %g", next, prev)
		}
		prev = next
		run.Step()
	}
}

func TestProgressiveErrorShrinks(t *testing.T) {
	fx := newFixture(t, 16)
	run := NewRun(fx.plan, penalty.SSE{}, fx.store)
	sseAt := func() float64 {
		e := make([]float64, len(fx.truth))
		for i, v := range run.Estimates() {
			e[i] = v - fx.truth[i]
		}
		return penalty.SSE{}.Eval(e)
	}
	run.StepN(16)
	early := sseAt()
	run.StepN(fx.plan.DistinctCoefficients() / 2)
	late := sseAt()
	if late > early {
		t.Fatalf("SSE grew from %g to %g", early, late)
	}
	run.RunToCompletion()
	if final := sseAt(); final > 1e-9*(1+penalty.SSE{}.Eval(fx.truth)) {
		t.Fatalf("final SSE %g not ~0", final)
	}
}

func TestStepNAndSnapshot(t *testing.T) {
	fx := newFixture(t, 6)
	run := NewRun(fx.plan, penalty.SSE{}, fx.store)
	if n := run.StepN(5); n != 5 {
		t.Fatalf("StepN = %d", n)
	}
	snap := run.Snapshot()
	run.StepN(10)
	changed := false
	for i, v := range run.Estimates() {
		if v != snap[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("estimates did not change after more steps (suspicious)")
	}
	// StepN beyond the end returns the executed count.
	run.RunToCompletion()
	if n := run.StepN(3); n != 0 {
		t.Fatalf("StepN after completion = %d", n)
	}
}

func TestRunWithCheckpoints(t *testing.T) {
	fx := newFixture(t, 6)
	run := NewRun(fx.plan, penalty.SSE{}, fx.store)
	var seen []int
	run.RunWithCheckpoints([]int{1, 4, 16, 1 << 30}, func(retrieved int, est []float64) {
		seen = append(seen, retrieved)
	})
	if len(seen) < 3 || seen[0] != 1 || seen[1] != 4 || seen[2] != 16 {
		t.Fatalf("checkpoints = %v", seen)
	}
	last := seen[len(seen)-1]
	if last != fx.plan.DistinctCoefficients() {
		t.Fatalf("final checkpoint %d != distinct %d", last, fx.plan.DistinctCoefficients())
	}
	if !run.Done() {
		t.Fatal("run should be complete")
	}
}

func TestSharingFactorIsSubstantialForPartitions(t *testing.T) {
	fx := newFixture(t, 32)
	if fx.plan.SharingFactor() < 1.5 {
		t.Fatalf("expected substantial sharing for a partition batch, got %.2f",
			fx.plan.SharingFactor())
	}
}

func TestRoundRobinMatchesExactButCostsMore(t *testing.T) {
	fx := newFixture(t, 16)
	vectors := make([]sparse.Vector, len(fx.batch))
	for i, q := range fx.batch {
		v, err := q.Coefficients(wavelet.Db4)
		if err != nil {
			t.Fatal(err)
		}
		vectors[i] = v
	}
	fx.store.ResetStats()
	rr, err := NewRoundRobin(vectors, fx.store)
	if err != nil {
		t.Fatal(err)
	}
	rr.RunToCompletion()
	assertClose(t, rr.Estimates(), fx.truth, 1e-6, "round-robin")
	if rr.Retrieved() != fx.plan.TotalQueryCoefficients() {
		t.Fatalf("round-robin retrieved %d, want %d", rr.Retrieved(), fx.plan.TotalQueryCoefficients())
	}
	if rr.Retrieved() <= fx.plan.DistinctCoefficients() {
		t.Fatalf("round-robin should cost more than shared: %d vs %d",
			rr.Retrieved(), fx.plan.DistinctCoefficients())
	}
	if rr.Step() {
		t.Fatal("exhausted round-robin should not step")
	}
}

func TestNewRoundRobinEmpty(t *testing.T) {
	if _, err := NewRoundRobin(nil, storage.NewHashStore()); err == nil {
		t.Error("empty batch should fail")
	}
}

func TestCursoredRunPrioritizesCursor(t *testing.T) {
	// After a small number of steps, the cursored run must have lower
	// cursored error than the SSE run on the cursored positions.
	fx := newFixture(t, 24)
	cursor := []int{0, 1, 2, 3}
	cur, err := penalty.Cursored(len(fx.batch), cursor, 100)
	if err != nil {
		t.Fatal(err)
	}
	evalCursored := func(est []float64) float64 {
		e := make([]float64, len(fx.truth))
		for i := range e {
			e[i] = est[i] - fx.truth[i]
		}
		return cur.Eval(e)
	}
	budget := fx.plan.DistinctCoefficients() / 8

	runSSE := NewRun(fx.plan, penalty.SSE{}, fx.store)
	runSSE.StepN(budget)
	runCur := NewRun(fx.plan, cur, fx.store)
	runCur.StepN(budget)

	if evalCursored(runCur.Estimates()) > evalCursored(runSSE.Estimates()) {
		t.Fatalf("cursored run (%g) should beat SSE run (%g) on cursored penalty",
			evalCursored(runCur.Estimates()), evalCursored(runSSE.Estimates()))
	}
}

func TestWorstCaseBoundHoldsOnAdversarialData(t *testing.T) {
	// Theorem 1's bound: place the whole data mass on the most important
	// unretrieved wavelet; the resulting penalty equals K^α·ι(ξ′).
	v0 := sparse.Vector{1: 2.0, 5: 1.0}
	v1 := sparse.Vector{5: -3.0, 9: 4.0}
	plan, err := NewPlan([]sparse.Vector{v0, v1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pen := penalty.SSE{}
	// Retrieve one coefficient, then attack the next most important one.
	zero := storage.NewHashStore() // all-zero data: estimates stay 0
	run := NewRun(plan, pen, zero)
	run.Step()
	next := run.NextImportance()
	k := 2.5
	bound := run.WorstCaseBound(k)
	if math.Abs(bound-k*k*next) > 1e-12 {
		t.Fatalf("bound %g != K²·ι = %g", bound, k*k*next)
	}
	// Adversarial database: Δ̂ concentrated (mass K) on the most important
	// unretrieved key. Since estimates are zero, the error on query i is
	// K·q̂_i[ξ′], so SSE = K²·ι(ξ′) — the bound is attained.
	imps := plan.Importances(pen)
	// Find unretrieved keys: the run has popped the largest-importance one.
	max := -1.0
	var maxIdx int
	for i := range imps {
		if imps[i] > max {
			max = imps[i]
			maxIdx = i
		}
	}
	// The second most important entry is what NextImportance reports now.
	second := -1.0
	var secondIdx int
	for i := range imps {
		if i == maxIdx {
			continue
		}
		if imps[i] > second {
			second = imps[i]
			secondIdx = i
		}
	}
	if math.Abs(next-second) > 1e-12 {
		t.Fatalf("NextImportance %g != second-largest %g", next, second)
	}
	adversarialKey := plan.keys[secondIdx]
	secondIdxs, secondCoeffs := plan.entryRefs(secondIdx)
	var sse float64
	for qi := 0; qi < plan.NumQueries(); qi++ {
		var qc float64
		for k2, idx := range secondIdxs {
			if int(idx) == qi {
				qc = secondCoeffs[k2]
			}
		}
		errQ := k * qc
		sse += errQ * errQ
	}
	if math.Abs(sse-bound) > 1e-9*(1+bound) {
		t.Fatalf("adversarial SSE %g != bound %g (key %d)", sse, bound, adversarialKey)
	}
}

func TestExactWithArrayStore(t *testing.T) {
	// Same plan against array-backed storage must agree with hash-backed.
	fx := newFixture(t, 10)
	hat, err := fx.dist.Transform(wavelet.Db4)
	if err != nil {
		t.Fatal(err)
	}
	arr := storage.NewArrayStore(hat)
	got := fx.plan.Exact(arr)
	assertClose(t, got, fx.truth, 1e-6, "array-store")
}

func BenchmarkPlanConstruction(b *testing.B) {
	schema := dataset.MustSchema([]string{"x", "y", "m"}, []int{32, 32, 16})
	ranges, err := query.RandomPartition(schema, 64, 3)
	if err != nil {
		b.Fatal(err)
	}
	batch, err := query.SumBatch(schema, ranges, "m")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewWaveletPlan(batch, wavelet.Db4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunToCompletion(b *testing.B) {
	schema := dataset.MustSchema([]string{"x", "y", "m"}, []int{32, 32, 16})
	dist := dataset.Uniform(schema, 20000, 7)
	ranges, err := query.RandomPartition(schema, 64, 3)
	if err != nil {
		b.Fatal(err)
	}
	batch, err := query.SumBatch(schema, ranges, "m")
	if err != nil {
		b.Fatal(err)
	}
	plan, err := NewWaveletPlan(batch, wavelet.Db4)
	if err != nil {
		b.Fatal(err)
	}
	hat, err := dist.Transform(wavelet.Db4)
	if err != nil {
		b.Fatal(err)
	}
	store := storage.NewHashStoreFromDense(hat, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := NewRun(plan, penalty.SSE{}, store)
		run.RunToCompletion()
	}
}
