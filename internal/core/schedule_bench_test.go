package core

// Benches for the CSR/schedule refactor, consumed by `make bench-core`
// (BENCH_core.json): run setup cost heap-vs-schedule, per-step cost over the
// AoS replica vs the CSR layout, and prefetching StepBatch across batch
// sizes.

import (
	"fmt"
	"testing"

	"repro/internal/penalty"
)

// BenchmarkNewRun compares run setup on a shared plan: the retired per-run
// heap initialization (O(n) heap.Init + O(n) popped bitmap) against the
// schedule-cached cursor (O(1) after the first run pays the one-time sorted
// build).
func BenchmarkNewRun(b *testing.B) {
	f := newBenchPlanFixture(b)
	pen := penalty.SSE{}
	b.Run("heap-ref", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			newHeapRefRun(f.plan, pen, f.store)
		}
	})
	b.Run("schedule", func(b *testing.B) {
		f.plan.ScheduleFor(pen) // pay the one-time build outside the loop
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			NewRun(f.plan, pen, f.store)
		}
	})
}

// BenchmarkStepToCompletion compares full progressive drains: heap pops with
// per-entry bookkeeping vs the schedule cursor over the CSR arrays.
func BenchmarkStepToCompletion(b *testing.B) {
	f := newBenchPlanFixture(b)
	pen := penalty.SSE{}
	b.Run("heap-ref", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run := newHeapRefRun(f.plan, pen, f.store)
			for run.step() {
			}
		}
	})
	b.Run("schedule", func(b *testing.B) {
		f.plan.ScheduleFor(pen)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run := NewRun(f.plan, pen, f.store)
			run.RunToCompletion()
		}
	})
}

// aosEntry/aosPlan replicate the retired array-of-structs master list so the
// layout cost of Exact can be measured against the CSR pass on identical
// data.
type aosEntry struct {
	key      int
	queryIdx []int32
	coeffs   []float64
}

type aosPlan struct {
	entries []aosEntry
	nq      int
}

func aosFromPlan(p *Plan) *aosPlan {
	a := &aosPlan{entries: make([]aosEntry, len(p.keys)), nq: p.NumQueries()}
	for i, key := range p.keys {
		idxs, cs := p.entryRefs(i)
		a.entries[i] = aosEntry{
			key:      key,
			queryIdx: append([]int32(nil), idxs...),
			coeffs:   append([]float64(nil), cs...),
		}
	}
	return a
}

func (a *aosPlan) exact(get func(int) float64) []float64 {
	est := make([]float64, a.nq)
	for i := range a.entries {
		e := &a.entries[i]
		v := get(e.key)
		if v == 0 {
			continue
		}
		for k, qi := range e.queryIdx {
			est[qi] += e.coeffs[k] * v
		}
	}
	return est
}

// BenchmarkExactLayout measures the layout effect: one exact pass over the
// master list in the retired AoS layout vs the flat CSR arrays. Against the
// hash store the map lookup dominates and the layouts tie; the array-store
// variants strip the retrieval cost to a slice index, exposing the memory
// traffic of the master-list walk itself.
func BenchmarkExactLayout(b *testing.B) {
	f := newBenchPlanFixture(b)
	aos := aosFromPlan(f.plan)
	b.Run("hash/aos", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			aos.exact(f.store.Get)
		}
	})
	b.Run("hash/csr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.plan.Exact(f.store)
		}
	})
	b.Run("array/aos", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			aos.exact(f.array.Get)
		}
	})
	b.Run("array/csr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.plan.Exact(f.array)
		}
	})
}

// BenchmarkStepBatchPrefetch drains a run through the prefetching StepBatch
// at several batch sizes against the sharded store — each batch is one
// GetBatch over the schedule's precomputed key slice.
func BenchmarkStepBatchPrefetch(b *testing.B) {
	f := newBenchPlanFixture(b)
	pen := penalty.SSE{}
	f.plan.ScheduleFor(pen)
	for _, size := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run := NewRun(f.plan, pen, f.sharded)
				for run.StepBatch(size) > 0 {
				}
			}
		})
	}
}
