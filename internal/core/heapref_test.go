package core

// The retired container/heap implementation of the progressive run, kept as
// an executable specification: the schedule-based Run must reproduce its
// retrieval order, estimates, importance accounting, and per-query bounds
// bit-for-bit at every budget. The equality grid below and the benches in
// schedule_bench_test.go are the only consumers.

import (
	"container/heap"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/penalty"
	"repro/internal/sparse"
	"repro/internal/storage"
)

// refEntryHeap is the original importance heap: entry indices ordered by
// descending importance, ties broken by ascending key.
type refEntryHeap struct {
	idx        []int
	importance []float64
	keys       []int
}

func (h *refEntryHeap) Len() int { return len(h.idx) }
func (h *refEntryHeap) Less(a, b int) bool {
	ia, ib := h.idx[a], h.idx[b]
	if h.importance[ia] != h.importance[ib] {
		return h.importance[ia] > h.importance[ib]
	}
	return h.keys[ia] < h.keys[ib]
}
func (h *refEntryHeap) Swap(a, b int) { h.idx[a], h.idx[b] = h.idx[b], h.idx[a] }
func (h *refEntryHeap) Push(x any)    { h.idx = append(h.idx, x.(int)) }
func (h *refEntryHeap) Pop() any {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

// heapRefRun is the original heap-driven Run, ported verbatim onto the CSR
// plan accessors (same floating-point operations in the same order).
type heapRefRun struct {
	plan                *Plan
	store               storage.Store
	heap                *refEntryHeap
	estimates           []float64
	retrieved           int
	importances         []float64
	remainingImportance float64
	popped              []bool
}

func newHeapRefRun(plan *Plan, pen penalty.Penalty, store storage.Store) *heapRefRun {
	imps := plan.Importances(pen)
	idx := make([]int, len(plan.keys))
	for i := range idx {
		idx[i] = i
	}
	h := &refEntryHeap{idx: idx, importance: imps, keys: plan.keys}
	heap.Init(h)
	var total float64
	for _, v := range imps {
		total += v
	}
	return &heapRefRun{
		plan:                plan,
		store:               store,
		heap:                h,
		estimates:           make([]float64, plan.NumQueries()),
		importances:         imps,
		remainingImportance: total,
		popped:              make([]bool, len(plan.keys)),
	}
}

func (r *heapRefRun) step() bool {
	if r.heap.Len() == 0 {
		return false
	}
	i := heap.Pop(r.heap).(int)
	r.remainingImportance -= r.importances[i]
	r.popped[i] = true
	v := r.store.Get(r.plan.keys[i])
	r.retrieved++
	if v != 0 {
		idxs, cs := r.plan.entryRefs(i)
		for k, qi := range idxs {
			r.estimates[qi] += cs[k] * v
		}
	}
	return true
}

func (r *heapRefRun) nextImportance() float64 {
	if r.heap.Len() == 0 {
		return 0
	}
	return r.importances[r.heap.idx[0]]
}

func (r *heapRefRun) remaining() float64 {
	if r.heap.Len() == 0 {
		return 0
	}
	return r.remainingImportance
}

// queryErrorBound recomputes the per-query Hölder bound from the popped set
// by brute force — the specification QueryErrorBound's cursor tracking must
// agree with.
func (r *heapRefRun) queryErrorBound(qi int, mass float64) float64 {
	var maxMag float64
	for i := range r.plan.keys {
		if r.popped[i] {
			continue
		}
		idxs, cs := r.plan.entryRefs(i)
		for k, q := range idxs {
			if int(q) == qi {
				if m := math.Abs(cs[k]); m > maxMag {
					maxMag = m
				}
			}
		}
	}
	return mass * maxMag
}

// refPenalties is the penalty shapes the equality grid runs under.
func refPenalties(t *testing.T, s int) []penalty.Penalty {
	t.Helper()
	pens := []penalty.Penalty{penalty.SSE{}}
	if w, err := penalty.Cursored(s, []int{0}, 7); err == nil {
		pens = append(pens, w)
	}
	if s >= 2 {
		if sm, err := penalty.NewFirstDifference(s); err == nil {
			pens = append(pens, sm)
		}
	}
	return pens
}

// TestScheduleMatchesHeapGrid is the equality grid of the refactor: across
// random plans, penalty shapes, and every step count, the schedule-based Run
// must match the retired heap implementation bit-for-bit — retrieval order,
// estimates, next/remaining importance, worst-case bound, and per-query
// error bounds.
func TestScheduleMatchesHeapGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(419))
	const mass = 1.9
	for trial := 0; trial < 12; trial++ {
		s := 2 + rng.Intn(4)
		n := 8 + rng.Intn(25)
		plan, err := NewPlan(tinyBatch(rng, s, n), nil)
		if err != nil {
			t.Fatal(err)
		}
		// Random data with zeros mixed in so the v==0 skip path is exercised.
		cells := make([]float64, n)
		for i := range cells {
			if rng.Intn(3) > 0 {
				cells[i] = rng.NormFloat64()
			}
		}
		for _, pen := range refPenalties(t, s) {
			run := NewRun(plan, pen, newSliceStore(cells))
			ref := newHeapRefRun(plan, pen, newSliceStore(cells))
			for step := 0; ; step++ {
				if run.Retrieved() != ref.retrieved {
					t.Fatalf("trial %d pen %s step %d: retrieved %d vs %d",
						trial, pen.Name(), step, run.Retrieved(), ref.retrieved)
				}
				if run.NextImportance() != ref.nextImportance() {
					t.Fatalf("trial %d pen %s step %d: next importance %v vs %v",
						trial, pen.Name(), step, run.NextImportance(), ref.nextImportance())
				}
				if run.RemainingImportance() != ref.remaining() {
					t.Fatalf("trial %d pen %s step %d: remaining %v vs %v",
						trial, pen.Name(), step, run.RemainingImportance(), ref.remaining())
				}
				assertBitIdentical(t, run.Estimates(), ref.estimates, "grid estimates")
				for qi := 0; qi < plan.NumQueries(); qi++ {
					got := run.QueryErrorBound(qi, mass)
					want := ref.queryErrorBound(qi, mass)
					if got != want {
						t.Fatalf("trial %d pen %s step %d query %d: bound %v vs %v",
							trial, pen.Name(), step, qi, got, want)
					}
				}
				a, b := run.Step(), ref.step()
				if a != b {
					t.Fatalf("trial %d pen %s step %d: Step %v vs %v", trial, pen.Name(), step, a, b)
				}
				if !a {
					break
				}
			}
			if !run.Done() || run.RemainingImportance() != 0 || run.WorstCaseBound(mass) != 0 {
				t.Fatalf("trial %d pen %s: run not cleanly finished", trial, pen.Name())
			}
		}
	}
}

// TestSchedulePopOrderUnderTies forces massive importance ties (coefficients
// drawn from a tiny discrete pool) and checks the schedule's order equals
// the heap's pop order entry-for-entry. Both implementations use the same
// strict total order — importance descending, key ascending — so ties must
// not introduce any divergence.
func TestSchedulePopOrderUnderTies(t *testing.T) {
	pool := []float64{1, -1, 2, -2}
	rng := rand.New(rand.NewSource(431))
	for trial := 0; trial < 30; trial++ {
		s := 2 + rng.Intn(3)
		n := 6 + rng.Intn(40)
		vectors := make([]sparse.Vector, s)
		for i := range vectors {
			vectors[i] = sparse.New()
			nz := 1 + rng.Intn(n-1)
			for k := 0; k < nz; k++ {
				vectors[i][rng.Intn(n)] = pool[rng.Intn(len(pool))]
			}
		}
		plan, err := NewPlan(vectors, nil)
		if err != nil {
			t.Fatal(err)
		}
		pen := penalty.SSE{}
		sched := plan.ScheduleFor(pen)
		ref := newHeapRefRun(plan, pen, newSliceStore(make([]float64, n)))
		ties := 0
		for j := 0; ref.heap.Len() > 0; j++ {
			want := heap.Pop(ref.heap).(int)
			if int(sched.order[j]) != want {
				t.Fatalf("trial %d pos %d: schedule entry %d, heap popped %d",
					trial, j, sched.order[j], want)
			}
			if j > 0 && sched.importances[sched.order[j]] == sched.importances[sched.order[j-1]] {
				ties++
			}
		}
		if trial == 0 && ties == 0 {
			t.Log("warning: discrete pool produced no importance ties this trial")
		}
	}
}

// TestScheduleCacheBuildsOnceUnderRace hammers one plan's schedule cache
// from many goroutines — mixed same-penalty and distinct-penalty requests —
// and checks every same-fingerprint caller got the same *Schedule and the
// cache built exactly one schedule per fingerprint. Run under -race this is
// the concurrency acceptance test for the shared cache.
func TestScheduleCacheBuildsOnceUnderRace(t *testing.T) {
	rng := rand.New(rand.NewSource(443))
	plan, err := NewPlan(tinyBatch(rng, 4, 40), nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := penalty.Cursored(4, []int{1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	pens := []penalty.Penalty{penalty.SSE{}, w}
	const workers = 16
	got := make([]*Schedule, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pen := pens[g%len(pens)]
			// NewRun is the production path into the cache; exercise it too.
			run := NewRun(plan, pen, newSliceStore(make([]float64, 64)))
			run.StepN(5)
			got[g] = plan.ScheduleFor(pen)
		}(g)
	}
	wg.Wait()
	for g := range got {
		if got[g] != got[g%len(pens)] {
			t.Fatalf("goroutine %d got a different schedule than its fingerprint peer", g)
		}
	}
	if n := plan.cachedSchedules(); n != len(pens) {
		t.Fatalf("cache holds %d schedules, want %d", n, len(pens))
	}
}

// TestConcurrentRunsShareSchedule runs many progressive runs sharing one
// plan (and thus one cached schedule) to completion concurrently; every run
// must land on the same exact estimates. Under -race this pins down that
// runs never write to the shared schedule.
func TestConcurrentRunsShareSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(449))
	n := 64
	plan, err := NewPlan(tinyBatch(rng, 5, n), nil)
	if err != nil {
		t.Fatal(err)
	}
	cells := make([]float64, n)
	for i := range cells {
		cells[i] = rng.NormFloat64()
	}
	want := plan.Exact(newSliceStore(cells))
	const workers = 8
	var wg sync.WaitGroup
	errCh := make(chan string, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			run := NewRun(plan, penalty.SSE{}, newSliceStore(cells))
			if g%2 == 0 {
				run.RunToCompletion()
			} else {
				for run.StepBatch(7) > 0 {
				}
			}
			for i := range want {
				if math.Abs(run.Estimates()[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					errCh <- "estimates diverged"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	if msg, ok := <-errCh; ok {
		t.Fatal(msg)
	}
}

// TestRunWithCheckpointsNormalization covers unsorted, duplicate, and
// already-passed checkpoint lists: callbacks fire in ascending order, each
// count at most once, points behind the cursor are skipped, and the exact
// completion callback always arrives.
func TestRunWithCheckpointsNormalization(t *testing.T) {
	rng := rand.New(rand.NewSource(457))
	n := 32
	plan, err := NewPlan(tinyBatch(rng, 3, n), nil)
	if err != nil {
		t.Fatal(err)
	}
	cells := make([]float64, n)
	for i := range cells {
		cells[i] = rng.NormFloat64()
	}
	m := plan.DistinctCoefficients()
	if m < 8 {
		t.Fatalf("fixture too small: %d entries", m)
	}
	exact := plan.Exact(newSliceStore(cells))

	t.Run("unsorted-and-duplicates", func(t *testing.T) {
		run := NewRun(plan, penalty.SSE{}, newSliceStore(cells))
		points := []int{m - 1, 2, 5, 2, 5, 1, m + 10}
		var seen []int
		run.RunWithCheckpoints(points, func(retrieved int, est []float64) {
			seen = append(seen, retrieved)
		})
		want := []int{1, 2, 5, m - 1, m}
		if len(seen) != len(want) {
			t.Fatalf("callbacks at %v, want %v", seen, want)
		}
		for i := range want {
			if seen[i] != want[i] {
				t.Fatalf("callbacks at %v, want %v", seen, want)
			}
		}
		assertBitIdentical(t, run.Estimates(), exact, "checkpoint completion")
	})

	t.Run("past-points-skipped", func(t *testing.T) {
		run := NewRun(plan, penalty.SSE{}, newSliceStore(cells))
		run.StepN(6)
		var seen []int
		run.RunWithCheckpoints([]int{1, 3, 6, 7}, func(retrieved int, est []float64) {
			seen = append(seen, retrieved)
		})
		want := []int{6, 7, m}
		if len(seen) != len(want) {
			t.Fatalf("callbacks at %v, want %v", seen, want)
		}
		for i := range want {
			if seen[i] != want[i] {
				t.Fatalf("callbacks at %v, want %v", seen, want)
			}
		}
	})

	t.Run("empty-list-still-completes", func(t *testing.T) {
		run := NewRun(plan, penalty.SSE{}, newSliceStore(cells))
		calls := 0
		run.RunWithCheckpoints(nil, func(retrieved int, est []float64) {
			calls++
			if retrieved != m {
				t.Fatalf("completion at %d, want %d", retrieved, m)
			}
		})
		if calls != 1 {
			t.Fatalf("%d callbacks, want 1", calls)
		}
	})

	t.Run("input-slice-not-mutated", func(t *testing.T) {
		run := NewRun(plan, penalty.SSE{}, newSliceStore(cells))
		points := []int{5, 2, 9}
		run.RunWithCheckpoints(points, func(int, []float64) {})
		if points[0] != 5 || points[1] != 2 || points[2] != 9 {
			t.Fatalf("caller's slice reordered: %v", points)
		}
	})
}
