package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/penalty"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/wavelet"
)

func regSchema(t *testing.T) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema([]string{"x", "y"}, []int{32, 32})
}

// regBatch builds a distinct SUM workload per seed.
func regBatch(t *testing.T, schema *dataset.Schema, seed int64, n int) query.Batch {
	t.Helper()
	ranges, err := query.RandomPartition(schema, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := query.SumBatch(schema, ranges, "y")
	if err != nil {
		t.Fatal(err)
	}
	return batch
}

func regStore(t *testing.T, schema *dataset.Schema) storage.Store {
	t.Helper()
	dist := dataset.Uniform(schema, 2000, 5)
	hat, err := dist.Transform(wavelet.Db4)
	if err != nil {
		t.Fatal(err)
	}
	return storage.NewHashStoreFromDense(hat, 0)
}

func TestRegistryHitReturnsSamePlan(t *testing.T) {
	schema := regSchema(t)
	r := NewPlanRegistry(wavelet.Db4, 8)
	batch := regBatch(t, schema, 1, 6)

	p1, _, hit1, err := r.Prepare(batch, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if hit1 {
		t.Fatalf("first Prepare reported a hit")
	}
	p2, _, hit2, err := r.Prepare(batch, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 {
		t.Fatalf("second Prepare missed")
	}
	if p1 != p2 || p1.Plan != p2.Plan {
		t.Fatalf("repeat Prepare did not return the resident plan")
	}
	if p1.Tenant != "alice" {
		t.Fatalf("registering tenant lost: %q", p1.Tenant)
	}
	st := r.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Plans != 1 {
		t.Fatalf("stats %+v", st)
	}
	if got, ok := r.Lookup(p1.Fingerprint); !ok || got != p1 {
		t.Fatalf("Lookup by handle failed")
	}
}

func TestRegistryPermutedBatchHitsAndMapsResults(t *testing.T) {
	schema := regSchema(t)
	store := regStore(t, schema)
	r := NewPlanRegistry(wavelet.Db4, 8)
	batch := regBatch(t, schema, 2, 7)

	prep, _, _, err := r.Prepare(batch, "")
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append(query.Batch(nil), batch...)
	rng := rand.New(rand.NewSource(4))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	prep2, perm, hit, err := r.Prepare(shuffled, "")
	if err != nil {
		t.Fatal(err)
	}
	if !hit || prep2.Plan != prep.Plan {
		t.Fatalf("permuted presentation did not hit the resident plan")
	}
	// Results computed on the canonical plan, mapped through perm, must be
	// bit-identical to what a fresh canonical build yields for each request
	// slot — the prepared path's correctness contract.
	fresh, err := NewWaveletPlan(prep2.Batch, wavelet.Db4)
	if err != nil {
		t.Fatal(err)
	}
	got := prep2.Plan.Exact(store)
	want := fresh.Exact(store)
	for i := range shuffled {
		ci := perm[i]
		if got[ci] != want[ci] {
			t.Fatalf("slot %d differs", i)
		}
		if prep2.Batch[ci].Label != shuffled[i].Label {
			t.Fatalf("perm maps request %d to the wrong canonical query", i)
		}
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	schema := regSchema(t)
	r := NewPlanRegistry(wavelet.Db4, 2)
	var evicted []string
	r.OnEvict(func(fp, tenant string) { evicted = append(evicted, fp+"/"+tenant) })

	b1 := regBatch(t, schema, 10, 4)
	b2 := regBatch(t, schema, 11, 4)
	b3 := regBatch(t, schema, 12, 4)

	p1, _, _, err := r.Prepare(b1, "t1")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := r.Prepare(b2, "t2"); err != nil {
		t.Fatal(err)
	}
	// Touch b1 so b2 is the LRU victim when b3 arrives.
	if _, _, hit, _ := r.Prepare(b1, "t1"); !hit {
		t.Fatalf("expected hit on touch")
	}
	if _, _, _, err := r.Prepare(b3, "t3"); err != nil {
		t.Fatal(err)
	}

	if r.Len() != 2 {
		t.Fatalf("registry holds %d plans, want 2", r.Len())
	}
	if st := r.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", st.Evictions)
	}
	b2fp := b2.Fingerprint()
	if len(evicted) != 1 || evicted[0] != b2fp+"/t2" {
		t.Fatalf("evict observer saw %v, want [%s/t2]", evicted, b2fp)
	}
	if _, ok := r.Lookup(b2fp); ok {
		t.Fatalf("evicted handle still resolves")
	}
	if _, ok := r.Lookup(p1.Fingerprint); !ok {
		t.Fatalf("recently-used handle was evicted")
	}
}

func TestRegistryTemplateBindPath(t *testing.T) {
	schema := regSchema(t)
	store := regStore(t, schema)
	r := NewPlanRegistry(wavelet.Db4, 8)
	batch := regBatch(t, schema, 3, 6)

	p1, _, _, err := r.Prepare(batch, "")
	if err != nil {
		t.Fatal(err)
	}
	scaled := cloneBatchScaled(batch, 2.25)
	p2, _, hit, err := r.Prepare(scaled, "")
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatalf("distinct batch reported as hit")
	}
	if st := r.Stats(); st.TemplateBinds != 1 {
		t.Fatalf("template binds %d, want 1", st.TemplateBinds)
	}
	// The bound plan must share the template's CSR skeleton in memory.
	if &p2.Plan.keys[0] != &p1.Plan.keys[0] {
		t.Fatalf("bound plan does not share the template skeleton")
	}
	// And be bit-identical to a from-scratch build of the same batch.
	fresh, err := NewWaveletPlan(p2.Batch, wavelet.Db4)
	if err != nil {
		t.Fatal(err)
	}
	assertPlansBitIdentical(t, p2.Plan, fresh, "registry-bound plan")
	assertBitIdentical(t, p2.Plan.Exact(store), fresh.Exact(store), "registry-bound Exact")
}

func TestRegistryBuildErrorNotCached(t *testing.T) {
	schema := regSchema(t)
	r := NewPlanRegistry(wavelet.Haar, 8) // Haar: zero vanishing moments
	ranges, err := query.GridPartition(schema, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	bad := make(query.Batch, len(ranges))
	for i, rg := range ranges {
		q, err := query.SumSquares(schema, rg, "x") // degree 2 > Haar's reach
		if err != nil {
			t.Fatal(err)
		}
		bad[i] = q
	}
	if _, _, _, err := r.Prepare(bad, ""); err == nil {
		t.Fatalf("degree-2 batch under Haar did not error")
	}
	if r.Len() != 0 {
		t.Fatalf("failed build left %d resident plans", r.Len())
	}
	// The same registry still serves valid batches.
	good := query.CountBatch(schema, ranges)
	if _, _, _, err := r.Prepare(good, ""); err != nil {
		t.Fatalf("valid batch after failed build: %v", err)
	}
}

func TestRegistryConcurrentPrepareBuildsOnce(t *testing.T) {
	schema := regSchema(t)
	r := NewPlanRegistry(wavelet.Db4, 8)
	batch := regBatch(t, schema, 5, 8)

	const workers = 16
	plans := make([]*Plan, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prep, _, _, err := r.Prepare(batch, "")
			if err == nil {
				plans[w] = prep.Plan
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if plans[w] == nil || plans[w] != plans[0] {
			t.Fatalf("worker %d got a different plan", w)
		}
	}
	if st := r.Stats(); st.Misses != 1 || st.Hits != workers-1 {
		t.Fatalf("stats %+v, want 1 miss / %d hits", st, workers-1)
	}
}

func TestRegistryRemoveReleasesHandle(t *testing.T) {
	schema := regSchema(t)
	r := NewPlanRegistry(wavelet.Db4, 8)
	var evicted []string
	r.OnEvict(func(fp, tenant string) { evicted = append(evicted, tenant) })
	batch := regBatch(t, schema, 6, 4)

	prep, _, _, err := r.Prepare(batch, "carol")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Remove(prep.Fingerprint) {
		t.Fatalf("Remove of resident handle returned false")
	}
	if r.Remove(prep.Fingerprint) {
		t.Fatalf("Remove of absent handle returned true")
	}
	if _, ok := r.Lookup(prep.Fingerprint); ok {
		t.Fatalf("removed handle still resolves")
	}
	if len(evicted) != 1 || evicted[0] != "carol" {
		t.Fatalf("evict observer saw %v", evicted)
	}
	if st := r.Stats(); st.Evictions != 0 {
		t.Fatalf("explicit removal counted as eviction")
	}
	// The shape template was released too: re-preparing rebuilds cleanly.
	if _, _, hit, err := r.Prepare(batch, ""); err != nil || hit {
		t.Fatalf("re-prepare after remove: hit=%v err=%v", hit, err)
	}
}

// TestRegistryHitZeroPlanConstruction pins the acceptance criterion that
// repeat execution of a prepared plan performs zero plan construction: the
// handle lookup allocates nothing at all — in particular no CSR arrays —
// and returns the pointer-identical resident plan.
func TestRegistryHitZeroPlanConstruction(t *testing.T) {
	schema := regSchema(t)
	r := NewPlanRegistry(wavelet.Db4, 8)
	batch := regBatch(t, schema, 7, 6)
	prep, _, _, err := r.Prepare(batch, "")
	if err != nil {
		t.Fatal(err)
	}
	handle := prep.Fingerprint
	var got *Prepared
	allocs := testing.AllocsPerRun(200, func() {
		p, ok := r.Lookup(handle)
		if !ok {
			t.Fatalf("lookup failed")
		}
		got = p
	})
	if allocs != 0 {
		t.Fatalf("handle lookup allocates %.1f objects per execute, want 0", allocs)
	}
	if got.Plan != prep.Plan {
		t.Fatalf("lookup returned a different plan")
	}
}

func TestScheduleCacheLRUBounded(t *testing.T) {
	old := maxCachedSchedules
	maxCachedSchedules = 4
	defer func() { maxCachedSchedules = old }()

	schema := regSchema(t)
	store := regStore(t, schema)
	batch := regBatch(t, schema, 8, 5)
	plan, err := NewWaveletPlan(batch, wavelet.Db4)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct weighted penalties have distinct fingerprints; sweep more of
	// them than the cache holds.
	pens := make([]penalty.Penalty, 10)
	for i := range pens {
		w := make([]float64, len(batch))
		for j := range w {
			w[j] = float64(i + j + 1)
		}
		p, err := penalty.NewWeighted(w)
		if err != nil {
			t.Fatal(err)
		}
		pens[i] = p
	}
	firsts := make([]*Schedule, len(pens))
	for i, pen := range pens {
		firsts[i] = plan.ScheduleFor(pen)
	}
	if n := plan.cachedSchedules(); n != 4 {
		t.Fatalf("schedule cache holds %d entries, want the bound 4", n)
	}
	// An evicted schedule is rebuilt correctly: same retrieval order, and
	// runs using it still drain to exact results.
	rebuilt := plan.ScheduleFor(pens[0])
	if rebuilt == firsts[0] {
		t.Fatalf("evicted schedule pointer survived eviction")
	}
	for j := range rebuilt.order {
		if rebuilt.order[j] != firsts[0].order[j] {
			t.Fatalf("rebuilt schedule order differs at %d", j)
		}
	}
	run := NewRun(plan, pens[0], store)
	run.RunToCompletion()
	assertClose(t, run.Estimates(), plan.Exact(store), 1e-9, "run on rebuilt schedule")
	// A resident (recently used) schedule is still served by pointer.
	if plan.ScheduleFor(pens[9]) != firsts[9] {
		t.Fatalf("resident schedule was rebuilt")
	}
}

// BenchmarkPlanRegistryHit measures the full prepared execute-path plan
// acquisition: canonicalize + fingerprint + registry hit. No CSR arrays are
// built (compare BenchmarkPlanRegistryAdhocBuild).
func BenchmarkPlanRegistryHit(b *testing.B) {
	schema := dataset.MustSchema([]string{"x", "y"}, []int{64, 64})
	ranges, err := query.RandomPartition(schema, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	batch, err := query.SumBatch(schema, ranges, "y")
	if err != nil {
		b.Fatal(err)
	}
	r := NewPlanRegistry(wavelet.Db4, 8)
	if _, _, _, err := r.Prepare(batch, ""); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, hit, err := r.Prepare(batch, ""); err != nil || !hit {
			b.Fatalf("hit=%v err=%v", hit, err)
		}
	}
}

// BenchmarkPlanRegistryLookup measures execution by handle — the pure hit
// path with canonicalization already paid at prepare time. Zero allocations.
func BenchmarkPlanRegistryLookup(b *testing.B) {
	schema := dataset.MustSchema([]string{"x", "y"}, []int{64, 64})
	ranges, err := query.RandomPartition(schema, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	batch, err := query.SumBatch(schema, ranges, "y")
	if err != nil {
		b.Fatal(err)
	}
	r := NewPlanRegistry(wavelet.Db4, 8)
	prep, _, _, err := r.Prepare(batch, "")
	if err != nil {
		b.Fatal(err)
	}
	handle := prep.Fingerprint
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Lookup(handle); !ok {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkPlanRegistryAdhocBuild is the old request path for comparison:
// full plan construction per request.
func BenchmarkPlanRegistryAdhocBuild(b *testing.B) {
	schema := dataset.MustSchema([]string{"x", "y"}, []int{64, 64})
	ranges, err := query.RandomPartition(schema, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	batch, err := query.SumBatch(schema, ranges, "y")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewWaveletPlan(batch, wavelet.Db4); err != nil {
			b.Fatal(err)
		}
	}
}
