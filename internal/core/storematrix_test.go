package core

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/penalty"
	"repro/internal/storage"
	"repro/internal/wavelet"
)

// TestAllStoreImplementationsAgree runs the same plan against every store
// implementation in the repository — array, hash, file-backed, block-
// simulated, remapped (layout), session-cached and concurrency-wrapped —
// and requires identical exact results and consistent retrieval accounting.
func TestAllStoreImplementationsAgree(t *testing.T) {
	fx := newFixture(t, 10)
	hat, err := fx.dist.Transform(wavelet.Db4)
	if err != nil {
		t.Fatal(err)
	}

	layout := make([]int, len(hat))
	for i := range layout {
		layout[i] = (i*7 + 3) % len(layout)
	}
	// Make it a permutation: i*7+3 mod n is a bijection iff gcd(7,n)=1;
	// n is a power of two here, so it is.
	relocated, err := storage.ApplyLayout(hat, layout)
	if err != nil {
		t.Fatal(err)
	}
	remapped, err := storage.NewRemappedStore(storage.NewArrayStore(relocated), layout)
	if err != nil {
		t.Fatal(err)
	}

	fileStore, err := storage.CreateFileStore(filepath.Join(t.TempDir(), "m.wvfs"), hat)
	if err != nil {
		t.Fatal(err)
	}
	defer fileStore.Close()

	cached, err := storage.NewCachedStore(storage.NewArrayStore(hat), storage.Unbounded)
	if err != nil {
		t.Fatal(err)
	}

	stores := map[string]storage.Store{
		"array":      storage.NewArrayStore(hat),
		"hash":       storage.NewHashStoreFromDense(hat, 0),
		"file":       fileStore,
		"block":      storage.NewBlockStore(storage.NewArrayStore(hat), 32),
		"remapped":   remapped,
		"cached":     cached,
		"concurrent": storage.NewConcurrentStore(storage.NewArrayStore(hat)),
	}
	for name, st := range stores {
		st.ResetStats()
		run := NewRun(fx.plan, penalty.SSE{}, st)
		run.RunToCompletion()
		for i, v := range run.Estimates() {
			if math.Abs(v-fx.truth[i]) > 1e-6*(1+math.Abs(fx.truth[i])) {
				t.Fatalf("%s store: query %d: got %g want %g", name, i, v, fx.truth[i])
			}
		}
		if name != "hash" { // hash store reads pruned zeros as zero without error
			if st.Retrievals() != int64(fx.plan.DistinctCoefficients()) {
				t.Fatalf("%s store: retrievals %d != distinct %d",
					name, st.Retrievals(), fx.plan.DistinctCoefficients())
			}
		}
	}
}
