package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/penalty"
	"repro/internal/query"
	"repro/internal/wavelet"
)

// PlanRegistry is the prepared-plan tier: a bounded, LRU-evicting cache of
// built plans keyed by canonical batch fingerprint (query.Fingerprint), so
// plan construction — the largest fixed cost on the request path after CSR
// flattening — is paid once per distinct batch instead of once per request.
// The registry holds the CSR plan and, through the plan's per-penalty
// schedule cache, its retrieval schedules; a registry hit therefore skips
// both plan construction and schedule sorting.
//
// Concurrency follows the schedule cache's mutex + sync.Once slot pattern:
// the mutex only guards map/LRU bookkeeping, while each plan is built
// outside the lock exactly once, with concurrent preparers of the same
// fingerprint blocking on the builder rather than duplicating work.
//
// Same-shape reuse: when a new batch's sparsity shape matches a resident
// plan (same per-query key sets, different coefficient values — re-weighted
// workloads), the registry binds the new coefficients against the resident
// CSR skeleton (Plan.Bind) instead of re-merging, and counts a template
// bind. The result is bit-identical to a full build either way.
type PlanRegistry struct {
	filter   *wavelet.Filter
	capacity int

	// warm lists penalties whose schedules are built eagerly at plan build
	// time, so a prepared handle's first execute pays no schedule sort.
	warm []penalty.Penalty

	// onEvict, when set, observes every eviction and removal with the
	// evictee's fingerprint and registering tenant — the server releases
	// per-tenant quota here. Set before the registry is shared.
	onEvict func(fingerprint, tenant string)

	mu     sync.Mutex
	slots  map[string]*planSlot
	lru    *list.List       // *planSlot values; front = most recently used
	shapes map[string]*Plan // shape fingerprint → resident template plan

	hits, misses, evictions, binds atomic.Int64
}

// planSlot is one registry cell. The sync.Once lets the build run outside
// the registry mutex while happening exactly once; done publishes prep/err
// for lock-free readers (Lookup).
type planSlot struct {
	fp     string
	tenant string
	elem   *list.Element
	once   sync.Once
	done   atomic.Bool
	prep   *Prepared
	err    error
}

// Prepared is one registry entry: a built plan together with the canonical
// batch it serves and the fingerprint that keys it (the prepare handle).
type Prepared struct {
	// Plan is the built (or template-bound) CSR plan for the canonical batch.
	Plan *Plan
	// Batch is the canonical-order batch the plan answers; result slot i of
	// the plan corresponds to Batch[i]. Callers holding a differently-ordered
	// presentation of the batch map through the permutation Prepare returned.
	Batch query.Batch
	// Fingerprint is the canonical batch fingerprint — the stable handle.
	Fingerprint string
	// Tenant is the tenant that first registered the entry ("" for
	// anonymous/inline registrations); quota accounting keys on it.
	Tenant string

	shapeFP string
}

// DefaultRegistryCapacity bounds the registry when NewPlanRegistry is given
// a non-positive capacity.
const DefaultRegistryCapacity = 256

// RegistryStats is a snapshot of the registry's counters.
type RegistryStats struct {
	// Plans is the current number of resident prepared plans.
	Plans int `json:"plans"`
	// Capacity is the LRU bound.
	Capacity int `json:"capacity"`
	// Hits counts Prepare calls answered by a resident plan.
	Hits int64 `json:"hits"`
	// Misses counts Prepare calls that had to build (or bind) a plan.
	Misses int64 `json:"misses"`
	// Evictions counts plans dropped by the LRU bound (explicit removals are
	// not evictions).
	Evictions int64 `json:"evictions"`
	// TemplateBinds counts builds served by re-weighting a same-shape
	// resident plan instead of a full merge.
	TemplateBinds int64 `json:"template_binds"`
}

// NewPlanRegistry creates a registry that builds plans under the filter and
// holds at most capacity of them (≤0 selects DefaultRegistryCapacity).
func NewPlanRegistry(f *wavelet.Filter, capacity int) *PlanRegistry {
	if capacity <= 0 {
		capacity = DefaultRegistryCapacity
	}
	return &PlanRegistry{
		filter:   f,
		capacity: capacity,
		slots:    make(map[string]*planSlot),
		lru:      list.New(),
		shapes:   make(map[string]*Plan),
	}
}

// WarmSchedules makes every subsequent build also pre-build the plan's
// retrieval schedule under the given penalties, moving the schedule sort
// from the first execute to prepare time.
func (r *PlanRegistry) WarmSchedules(pens ...penalty.Penalty) { r.warm = pens }

// OnEvict installs the eviction observer (see the field doc). Must be set
// before the registry is shared across goroutines.
func (r *PlanRegistry) OnEvict(fn func(fingerprint, tenant string)) { r.onEvict = fn }

// Capacity returns the LRU bound.
func (r *PlanRegistry) Capacity() int { return r.capacity }

// Len returns the current number of resident entries.
func (r *PlanRegistry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.slots)
}

// Stats returns a snapshot of the registry counters.
func (r *PlanRegistry) Stats() RegistryStats {
	r.mu.Lock()
	plans := len(r.slots)
	r.mu.Unlock()
	return RegistryStats{
		Plans:         plans,
		Capacity:      r.capacity,
		Hits:          r.hits.Load(),
		Misses:        r.misses.Load(),
		Evictions:     r.evictions.Load(),
		TemplateBinds: r.binds.Load(),
	}
}

// Prepare returns the registry's plan for the batch, building it on first
// use. It canonicalizes the batch, so permutations and relabelings of one
// batch share a single resident plan. The returned permutation maps the
// caller's query positions into the canonical plan's result slots
// (canonical slot perm[i] answers caller query i); hit reports whether the
// plan was already resident. tenant is recorded on first registration for
// quota accounting.
//
// Errors are not cached: a failed build releases the fingerprint so a later
// (possibly corrected) batch can retry.
func (r *PlanRegistry) Prepare(batch query.Batch, tenant string) (prep *Prepared, perm []int32, hit bool, err error) {
	canonical, perm := batch.Canonical()
	fp := query.CanonicalFingerprint(canonical)

	r.mu.Lock()
	slot, ok := r.slots[fp]
	if ok {
		r.lru.MoveToFront(slot.elem)
	} else {
		slot = &planSlot{fp: fp, tenant: tenant}
		slot.elem = r.lru.PushFront(slot)
		r.slots[fp] = slot
	}
	evicted := r.evictLocked()
	r.mu.Unlock()
	r.fireEvictions(evicted)

	m := coObs()
	if ok {
		r.hits.Add(1)
		if m != nil {
			m.planRegistryHits.Inc()
		}
	} else {
		r.misses.Add(1)
		if m != nil {
			m.planRegistryMisses.Inc()
		}
	}

	slot.once.Do(func() {
		slot.prep, slot.err = r.build(slot, canonical, fp, tenant)
		slot.done.Store(true)
	})
	if slot.err != nil {
		r.dropFailed(fp, slot)
		return nil, nil, false, slot.err
	}
	return slot.prep, perm, ok, nil
}

// Lookup resolves a prepare handle (the canonical fingerprint) to its
// resident plan, refreshing its LRU recency. It does not block on in-flight
// builds: a handle is only visible once its build completed, which holds for
// any handle obtained from a successful Prepare.
func (r *PlanRegistry) Lookup(handle string) (*Prepared, bool) {
	r.mu.Lock()
	slot, ok := r.slots[handle]
	if ok {
		r.lru.MoveToFront(slot.elem)
	}
	r.mu.Unlock()
	if !ok || !slot.done.Load() || slot.err != nil {
		return nil, false
	}
	return slot.prep, true
}

// Remove drops a prepared plan by handle, reporting whether it was resident.
// The eviction observer fires (quota is released) but the eviction counter
// does not move — removal is a client action, not cache pressure.
func (r *PlanRegistry) Remove(handle string) bool {
	r.mu.Lock()
	slot, ok := r.slots[handle]
	if ok {
		r.removeSlotLocked(slot)
	}
	r.mu.Unlock()
	if ok && r.onEvict != nil {
		r.onEvict(slot.fp, slot.tenant)
	}
	return ok
}

// build constructs the plan for a canonical batch: through the same-shape
// template fast path when a resident plan matches, through a full
// NewWaveletPlan — the exact construction the ad-hoc path uses, so prepared
// and ad-hoc results are bit-identical by construction — otherwise.
func (r *PlanRegistry) build(slot *planSlot, canonical query.Batch, fp, tenant string) (*Prepared, error) {
	var plan *Plan
	var shapeFP string

	if r.hasShapes() {
		// The rewrite (per-query wavelet coefficients) is shared between the
		// shape probe and the bind itself. Rewrite errors fall through to the
		// full build, which re-validates and reports them canonically.
		if vectors, labels, err := rewriteBatch(canonical, r.filter); err == nil {
			shapeFP = ShapeFingerprint(vectors)
			r.mu.Lock()
			tmpl := r.shapes[shapeFP]
			r.mu.Unlock()
			if tmpl != nil {
				if bound, berr := tmpl.Bind(vectors, labels); berr == nil {
					plan = bound
					r.binds.Add(1)
				}
			}
		}
	}
	if plan == nil {
		built, err := NewWaveletPlan(canonical, r.filter)
		if err != nil {
			return nil, err
		}
		plan = built
		shapeFP = built.ShapeOf()
	}
	for _, pen := range r.warm {
		plan.warmSchedule(pen)
	}

	// Register the plan as a bind template for its shape, unless the slot
	// was evicted while we were building (registering then would leak the
	// template past its eviction) or another resident plan owns the shape.
	r.mu.Lock()
	if cur, live := r.slots[fp]; live && cur == slot {
		if _, taken := r.shapes[shapeFP]; !taken {
			r.shapes[shapeFP] = plan
		}
	}
	r.mu.Unlock()

	return &Prepared{
		Plan:        plan,
		Batch:       canonical,
		Fingerprint: fp,
		Tenant:      tenant,
		shapeFP:     shapeFP,
	}, nil
}

func (r *PlanRegistry) hasShapes() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.shapes) > 0
}

// evictLocked enforces the LRU bound, returning the evicted slots for
// observer dispatch outside the lock.
func (r *PlanRegistry) evictLocked() []*planSlot {
	var evicted []*planSlot
	for len(r.slots) > r.capacity {
		back := r.lru.Back()
		if back == nil {
			break
		}
		slot := back.Value.(*planSlot)
		r.removeSlotLocked(slot)
		r.evictions.Add(1)
		evicted = append(evicted, slot)
	}
	if len(evicted) > 0 {
		if m := coObs(); m != nil {
			m.planRegistryEvictions.Add(int64(len(evicted)))
		}
	}
	return evicted
}

// removeSlotLocked unlinks a slot from the map, the LRU list, and — when the
// slot's plan is the resident template for its shape — the shape index.
func (r *PlanRegistry) removeSlotLocked(slot *planSlot) {
	delete(r.slots, slot.fp)
	r.lru.Remove(slot.elem)
	if slot.done.Load() && slot.prep != nil {
		if r.shapes[slot.prep.shapeFP] == slot.prep.Plan {
			delete(r.shapes, slot.prep.shapeFP)
		}
	}
}

// dropFailed releases a fingerprint whose build errored, so the failure is
// not cached. No eviction observer fires: a failed build never registered
// anything.
func (r *PlanRegistry) dropFailed(fp string, slot *planSlot) {
	r.mu.Lock()
	if cur, ok := r.slots[fp]; ok && cur == slot {
		r.removeSlotLocked(slot)
	}
	r.mu.Unlock()
}

func (r *PlanRegistry) fireEvictions(evicted []*planSlot) {
	if r.onEvict == nil {
		return
	}
	for _, slot := range evicted {
		r.onEvict(slot.fp, slot.tenant)
	}
}
