package core

// Profile bit-neutrality: attaching a QueryProfile to a run (the ?explain=1
// configuration) must not perturb the numerics. Two runs over the same plan
// and store, stepped in lockstep, must produce bit-identical estimates at
// every step whether or not one of them is profiled — observation reads the
// evaluation, it never participates in it.

import (
	"context"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/penalty"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/wavelet"
)

func TestProfileBitNeutral(t *testing.T) {
	schema := dataset.MustSchema([]string{"x", "y"}, []int{128, 64})
	dist := dataset.Uniform(schema, 8000, 5)
	ranges, err := query.RandomPartition(schema, 32, 11)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := query.SumBatch(schema, ranges, "y")
	if err != nil {
		t.Fatal(err)
	}
	hat, err := dist.Transform(wavelet.Db4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewWaveletPlanParallel(batch, wavelet.Db4, 1)
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewHashStoreFromDense(hat, 0)
	pen := penalty.SSE{}
	plan.ScheduleFor(pen)

	plain := NewRun(plan, pen, store)
	profiled := NewRun(plan, pen, store)
	prof := obs.NewQueryProfile("req-bitneutral", "test")
	profiled.AttachProfile(prof)
	ctx := obs.WithProfile(context.Background(), prof)

	const batchSize = 64
	steps := 0
	for {
		n1, err := plain.StepBatchCtx(context.Background(), batchSize)
		if err != nil {
			t.Fatal(err)
		}
		n2, err := profiled.StepBatchCtx(ctx, batchSize)
		if err != nil {
			t.Fatal(err)
		}
		if n1 != n2 {
			t.Fatalf("step %d: plain retrieved %d, profiled %d", steps, n1, n2)
		}
		e1, e2 := plain.Estimates(), profiled.Estimates()
		for q := range e1 {
			if math.Float64bits(e1[q]) != math.Float64bits(e2[q]) {
				t.Fatalf("step %d query %d: plain %x, profiled %x — profiling perturbed the estimate",
					steps, q, math.Float64bits(e1[q]), math.Float64bits(e2[q]))
			}
		}
		if b1, b2 := plain.RemainingImportance(), profiled.RemainingImportance(); math.Float64bits(b1) != math.Float64bits(b2) {
			t.Fatalf("step %d: remaining importance diverged (%v vs %v)", steps, b1, b2)
		}
		steps++
		if n1 == 0 {
			break
		}
	}

	prof.Finish()
	snap := prof.Snapshot()
	// The profile itself must reflect the drain it watched: Retrieved is
	// cumulative, so the final row must land on the whole master list.
	if len(snap.Steps) == 0 {
		t.Fatal("profile recorded no steps")
	}
	if got := snap.Steps[len(snap.Steps)-1].Retrieved; got != plan.DistinctCoefficients() {
		t.Fatalf("final profile row retrieved %d coefficients, plan has %d", got, plan.DistinctCoefficients())
	}
	if snap.WallNanos <= 0 {
		t.Fatalf("profile wall time %dns, want > 0 after Finish", snap.WallNanos)
	}
}

// TestProfileNilSafety exercises every QueryProfile method on a nil receiver
// (the off path): all must be no-ops, none may panic.
func TestProfileNilSafety(t *testing.T) {
	var p *obs.QueryProfile
	p.SetPlan("built", 0, 0, 1, 1)
	p.AddQueueDelay(0)
	p.RecordStep(1, 1, 0, 0, 0)
	p.AddCoalesce(1, 1, 0)
	p.AddLayout(1, 0, 0, 0)
	p.AddMVCC(1, 0)
	p.AddShard(0, "addr", 1, 0, 0, 0)
	p.AddRemote("addr", 1, 0)
	p.MarkSlow()
	p.Finish()
	if p.Wall() != 0 {
		t.Fatal("nil profile reports nonzero wall")
	}
	snap := p.Snapshot()
	if snap.ID != "" || len(snap.Steps) != 0 {
		t.Fatalf("nil profile snapshot not empty: %+v", snap)
	}
	if obs.ProfileFrom(context.Background()) != nil {
		t.Fatal("empty context carries a profile")
	}
}
