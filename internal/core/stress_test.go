package core

import (
	"sync"
	"testing"

	"repro/internal/penalty"
	"repro/internal/storage"
)

// TestConcurrentRunsSharded is the concurrency stress test: many goroutines
// each drive their own progressive run to completion against one shared
// ShardedStore, mixing Step, StepN and StepBatch progressions plus
// ExactParallel calls. Under -race this validates the sharded store's locking
// end to end; the assertions validate that every run still produces the
// sequential answer and that the shared atomic retrieval counter accounts for
// every retrieval issued by every goroutine.
func TestConcurrentRunsSharded(t *testing.T) {
	f := newFixture(t, 40)
	sharded, err := storage.NewShardedStoreFrom(f.store, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := f.plan.Exact(f.store)
	distinct := f.plan.DistinctCoefficients()

	const goroutines = 12
	var wg sync.WaitGroup
	estimates := make([][]float64, goroutines)
	retrieved := make([]int64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 3 {
			case 0: // one retrieval at a time
				run := NewRun(f.plan, penalty.SSE{}, sharded)
				run.RunToCompletion()
				estimates[g] = run.Estimates()
				retrieved[g] = int64(run.Retrieved())
			case 1: // batched stepping with a mid-size batch
				run := NewRun(f.plan, penalty.SSE{}, sharded)
				for run.StepBatch(17) > 0 {
				}
				estimates[g] = run.Estimates()
				retrieved[g] = int64(run.Retrieved())
			case 2: // exact evaluation with concurrent batched fetch
				estimates[g] = f.plan.ExactParallel(sharded, 4)
				retrieved[g] = int64(distinct)
			}
		}(g)
	}
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		if len(estimates[g]) != len(want) {
			t.Fatalf("goroutine %d: %d estimates, want %d", g, len(estimates[g]), len(want))
		}
		for qi := range want {
			got := estimates[g][qi]
			// Progressive runs accumulate in importance order, Exact in key
			// order, so compare within rounding; ExactParallel (g%3==2) is
			// bit-identical to Exact by construction.
			if g%3 == 2 {
				if got != want[qi] {
					t.Fatalf("goroutine %d query %d: %v, want bit-identical %v", g, qi, got, want[qi])
				}
			} else if diff := got - want[qi]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("goroutine %d query %d: %v, want ≈%v", g, qi, got, want[qi])
			}
		}
		if retrieved[g] != int64(distinct) {
			t.Fatalf("goroutine %d retrieved %d, want %d", g, retrieved[g], distinct)
		}
	}
	// Every goroutine performed exactly `distinct` retrievals against the
	// shared store; the atomic counter must have seen all of them.
	if got, want := sharded.Retrievals(), int64(goroutines*distinct); got != want {
		t.Fatalf("shared store counted %d retrievals, want %d", got, want)
	}
}
