// Package core implements Batch-Biggest-B (Figure 1 of the paper): exact
// and progressive evaluation of a batch of vector queries against a stored
// linear transform of the data, sharing every retrieval across the batch and
// ordering retrievals by a penalty-derived importance function.
//
// The package is deliberately agnostic about where the per-query sparse
// coefficient vectors come from: wavelet rewriting (the common case, via
// NewWaveletPlan), prefix-sum corners, or any other linear
// storage/evaluation strategy (Section 1.2 of the paper) all produce a Plan
// the same way.
package core

import (
	"container/list"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/penalty"
	"repro/internal/query"
	"repro/internal/sparse"
	"repro/internal/storage"
	"repro/internal/wavelet"
)

// Plan is the merged master list for a query batch (steps 2–3 of
// Batch-Biggest-B): the union of the per-query nonzero coefficient lists,
// grouped by storage key so each key is retrieved at most once.
//
// The master list is stored in CSR form — entry i is the distinct key
// keys[i] (ascending) whose (query, coefficient) references occupy
// queryIdx[offsets[i]:offsets[i+1]] and coeffs[offsets[i]:offsets[i+1]].
// Four flat arrays instead of a slice of per-entry slices keeps Exact and
// Step cache-linear and puts zero per-entry allocations on the heap.
//
// A Plan is immutable after construction and safe for concurrent use: any
// number of goroutines may evaluate it, start runs on it, or warm its
// per-penalty schedule cache (see schedule.go) at the same time.
type Plan struct {
	Labels []string

	// CSR master list, ascending key order.
	keys     []int
	offsets  []int32
	queryIdx []int32
	coeffs   []float64

	// totalQueryCoefficients is the sum of per-query nonzero counts — the
	// number of retrievals an unshared per-query evaluation would need.
	totalQueryCoefficients int

	// evalOnce guards the lazily-built per-query inverted entry lists used
	// by ExactParallel's apply phase (parallel.go).
	evalOnce sync.Once
	byQuery  [][]qref

	// idxOnce guards entryIdxInt, the []int view of queryIdx handed to
	// penalty.Penalty.Importance (shares offsets with queryIdx), so the
	// int32→int conversion is paid once per plan instead of once per run.
	idxOnce     sync.Once
	entryIdxInt []int

	// bindOnce guards bindPos, the lazily-built (query, key) → flat
	// coefficient position index that lets Bind re-weight same-shape batches
	// against this plan's CSR skeleton (template.go).
	bindOnce sync.Once
	bindPos  map[bindKey]int32

	// schedMu guards schedules and schedLRU, the per-penalty-fingerprint
	// cache of retrieval schedules and its recency list (schedule.go). The
	// cache is bounded by maxCachedSchedules with LRU eviction, mirroring
	// the plan registry's policy.
	schedMu   sync.Mutex
	schedules map[string]*scheduleSlot
	schedLRU  *list.List
}

// NewPlan merges the per-query sparse coefficient vectors into a master
// list. labels may be nil; otherwise it must have one label per vector.
// Construction parallelizes across GOMAXPROCS workers (see NewPlanParallel)
// and is deterministic: the resulting plan is identical however many workers
// run.
func NewPlan(vectors []sparse.Vector, labels []string) (*Plan, error) {
	return NewPlanParallel(vectors, labels, 0)
}

// NewPlanParallel is NewPlan with an explicit worker count (≤0 selects
// GOMAXPROCS). Workers merge disjoint query blocks into key-hash-sharded
// maps which are then merged concurrently; the result is entry-for-entry
// identical to the single-worker merge.
func NewPlanParallel(vectors []sparse.Vector, labels []string, workers int) (*Plan, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	if labels != nil && len(labels) != len(vectors) {
		return nil, fmt.Errorf("core: %d labels for %d queries", len(labels), len(vectors))
	}
	if labels == nil {
		labels = make([]string, len(vectors))
		for i := range labels {
			labels[i] = fmt.Sprintf("q%d", i)
		}
	}
	gen := func(qi int, emit func(key int, c float64)) error {
		for key, c := range vectors[qi] {
			emit(key, c)
		}
		return nil
	}
	return buildPlanParallel(len(vectors), labels, gen, workers)
}

// NewWaveletPlan rewrites every query in the batch under the filter and
// merges the results — the standard wavelet instantiation. It returns an
// error if the filter lacks the vanishing moments for the batch degree,
// because that would silently destroy the sparsity the algorithm is built
// around (use NewPlan directly to opt into dense rewritings). Rewriting
// parallelizes across GOMAXPROCS workers (see NewWaveletPlanParallel) and is
// deterministic.
func NewWaveletPlan(batch query.Batch, f *wavelet.Filter) (*Plan, error) {
	return NewWaveletPlanParallel(batch, f, 0)
}

// NewWaveletPlanParallel is NewWaveletPlan with an explicit worker count
// (≤0 selects GOMAXPROCS). Query rewriting — the expensive part of planning
// — runs on a pool of workers over disjoint query blocks; the sharded merge
// preserves the exact entry and QueryIdx order of the sequential build.
func NewWaveletPlanParallel(batch query.Batch, f *wavelet.Filter, workers int) (*Plan, error) {
	if err := batch.Validate(); err != nil {
		return nil, err
	}
	if deg := batch.Degree(); !f.SupportsDegree(deg) {
		return nil, fmt.Errorf("core: filter %s (%d vanishing moments) cannot sparsely rewrite degree-%d queries; need filter length ≥ %d",
			f.Name, f.VanishingMoments(), deg, 2*deg+2)
	}
	labels := make([]string, len(batch))
	for i, q := range batch {
		labels[i] = q.Label
	}
	gen := func(qi int, emit func(key int, c float64)) error {
		if err := batch[qi].CoefficientsFunc(f, emit); err != nil {
			return fmt.Errorf("core: query %d: %w", qi, err)
		}
		return nil
	}
	return buildPlanParallel(len(batch), labels, gen, workers)
}

// NumQueries returns the batch size.
func (p *Plan) NumQueries() int { return len(p.Labels) }

// DistinctCoefficients returns the master-list length: the number of
// retrievals an exact shared evaluation performs.
func (p *Plan) DistinctCoefficients() int { return len(p.keys) }

// TotalQueryCoefficients returns the sum of per-query nonzero counts: the
// number of retrievals unshared per-query evaluation performs.
func (p *Plan) TotalQueryCoefficients() int { return p.totalQueryCoefficients }

// SharingFactor returns TotalQueryCoefficients / DistinctCoefficients — how
// many queries the average retrieved coefficient serves.
func (p *Plan) SharingFactor() float64 {
	if len(p.keys) == 0 {
		return 0
	}
	return float64(p.totalQueryCoefficients) / float64(len(p.keys))
}

// entryRefs returns entry i's (query index, coefficient) columns — views
// into the flat CSR arrays, owned by the plan.
func (p *Plan) entryRefs(i int) ([]int32, []float64) {
	lo, hi := p.offsets[i], p.offsets[i+1]
	return p.queryIdx[lo:hi], p.coeffs[lo:hi]
}

// ForEachEntry visits every master-list entry in ascending key order — the
// same order Importances reports values in. The slices are owned by the
// plan; callers must not modify them.
func (p *Plan) ForEachEntry(fn func(key int, queryIdx []int32, coeffs []float64)) {
	for i, key := range p.keys {
		idxs, cs := p.entryRefs(i)
		fn(key, idxs, cs)
	}
}

// buildEntryIdx lazily materializes queryIdx as []int (the element type
// penalty.Penalty.Importance takes) in one flat array sharing the CSR
// offsets, so the int32→int conversion is paid once per plan rather than
// re-done for every entry of every schedule build.
func (p *Plan) buildEntryIdx() {
	p.idxOnce.Do(func() {
		p.entryIdxInt = make([]int, len(p.queryIdx))
		for i, qi := range p.queryIdx {
			p.entryIdxInt[i] = int(qi)
		}
	})
}

// Importances computes ι_p for every master-list entry under the penalty.
func (p *Plan) Importances(pen penalty.Penalty) []float64 {
	p.buildEntryIdx()
	out := make([]float64, len(p.keys))
	for i := range out {
		lo, hi := p.offsets[i], p.offsets[i+1]
		out[i] = pen.Importance(p.entryIdxInt[lo:hi], p.coeffs[lo:hi])
	}
	return out
}

// Exact evaluates the batch exactly by one pass over the master list
// (Batch-Biggest-B without the importance order — the pure I/O-sharing
// exact algorithm of Section 2.2). It performs exactly
// DistinctCoefficients retrievals, streaming linearly through the CSR
// arrays.
func (p *Plan) Exact(store storage.Store) []float64 {
	est := make([]float64, p.NumQueries())
	for i, key := range p.keys {
		v := store.Get(key)
		if v == 0 {
			continue
		}
		idxs, cs := p.entryRefs(i)
		for k, qi := range idxs {
			est[qi] += cs[k] * v
		}
	}
	return est
}

// Run is one progressive execution of Batch-Biggest-B. It is a cursor over
// the plan's cached retrieval schedule (the static pop order of the
// importance heap it replaced — see schedule.go) plus the progressive
// estimates, advancing one retrieval per Step. Once the cursor reaches the
// end of the schedule the estimates are exact.
type Run struct {
	plan  *Plan
	store storage.Store
	pen   penalty.Penalty
	sched *Schedule
	// cursor is the schedule position: entries sched.order[:cursor] have
	// been retrieved. It doubles as the retrieval count.
	cursor    int
	estimates []float64
	// bounds holds the lazily-built per-query error-bound cursors
	// (bounds.go).
	bounds []queryBound
	// batchVals is StepBatch's reusable fetch buffer.
	batchVals []float64

	// fstore is the lazily-initialized fallible view of store, built on the
	// first *Ctx call so the infallible path pays nothing (fallible.go).
	fstore storage.FallibleStore
	// skipped holds the schedule positions of entries whose retrieval failed
	// permanently (ascending, since the cursor only moves forward); the run
	// advanced past them in degraded mode. skippedSet indexes the same
	// entries by master-list entry for entryRetrieved. Both are nil until
	// the first skip, so fault-free runs carry no overhead.
	skipped    []int
	skippedSet map[int32]struct{}

	// trace, when attached, receives the run's bound trajectory computed
	// with coefficient mass traceMass (obs.go). The metrics bundle is NOT
	// cached on the Run: step paths load the package pointer per call (one
	// relaxed atomic load, nil when unobserved), which keeps NewRun free of
	// calls and therefore inlinable — the 1-alloc run setup depends on it.
	trace     *obs.RunTrace
	traceMass float64
	// profile, when attached, receives the run's EXPLAIN ANALYZE rows: one
	// StepProfile per StepBatchCtx. Nil (the default) costs one nil check
	// per batch, preserving the 0-extra-alloc off path.
	profile *obs.QueryProfile
}

// NewRun prepares a progressive run: it looks up (or builds once) the
// plan's retrieval schedule under the penalty (step 4 of Batch-Biggest-B)
// and allocates the estimate vector. Sharing the schedule across runs makes
// this O(batch size) instead of the O(master list) heap initialization the
// per-run heap paid; concurrent NewRun calls on one plan are safe.
func NewRun(plan *Plan, pen penalty.Penalty, store storage.Store) *Run {
	return &Run{
		plan:      plan,
		store:     store,
		pen:       pen,
		sched:     plan.ScheduleFor(pen),
		estimates: make([]float64, plan.NumQueries()),
	}
}

// entryRetrieved reports whether master-list entry i has been retrieved:
// its schedule position lies before the cursor and it was not skipped by a
// failed retrieval. This replaces the per-run popped bitmap — the schedule's
// inverse permutation is shared by every run.
func (r *Run) entryRetrieved(i int32) bool {
	if int(r.sched.pos[i]) >= r.cursor {
		return false
	}
	if r.skippedSet != nil {
		if _, skip := r.skippedSet[i]; skip {
			return false
		}
	}
	return true
}

// Step retrieves the most important unretrieved entry — the next one in
// schedule order — and advances every query that needs it (step 5). It
// returns false when the computation is complete.
func (r *Run) Step() bool {
	if r.cursor >= len(r.sched.order) {
		return false
	}
	m := coObs()
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	i := r.sched.order[r.cursor]
	r.cursor++
	v := r.store.Get(r.plan.keys[i])
	if v != 0 {
		idxs, cs := r.plan.entryRefs(int(i))
		for k, qi := range idxs {
			r.estimates[qi] += cs[k] * v
		}
	}
	if m != nil {
		m.stepSeconds.Observe(time.Since(start).Seconds())
	}
	if r.trace != nil {
		r.traceStep()
	}
	return true
}

// StepN performs up to n steps and returns how many were executed.
func (r *Run) StepN(n int) int {
	done := 0
	for done < n && r.Step() {
		done++
	}
	return done
}

// RunToCompletion drains the schedule; afterwards Estimates holds exact
// results.
func (r *Run) RunToCompletion() {
	for r.Step() {
	}
}

// Done reports whether the cursor has drained the schedule. A done run's
// estimates are exact only when it is not Degraded — a degraded run skipped
// entries whose residual error WorstCaseBound still bounds.
func (r *Run) Done() bool { return r.cursor >= len(r.sched.order) }

// Retrieved returns the number of schedule steps taken so far: retrievals
// attempted, including the SkippedCount that failed.
func (r *Run) Retrieved() int { return r.cursor }

// Estimates returns the current progressive estimates. The slice is owned
// by the run; callers must not modify it (use Snapshot for a copy).
func (r *Run) Estimates() []float64 { return r.estimates }

// Snapshot returns a copy of the current progressive estimates.
func (r *Run) Snapshot() []float64 {
	out := make([]float64, len(r.estimates))
	copy(out, r.estimates)
	return out
}

// NextImportance returns ι_p of the most important unretrieved entry, or 0
// when the run is complete. Skipped entries are unretrieved: they sit before
// the cursor in the importance-descending schedule, so the first of them
// dominates everything at or after the cursor.
func (r *Run) NextImportance() float64 {
	if len(r.skipped) > 0 {
		return r.sched.importances[r.sched.order[r.skipped[0]]]
	}
	if r.cursor >= len(r.sched.order) {
		return 0
	}
	return r.sched.importances[r.sched.order[r.cursor]]
}

// WorstCaseBound returns the Theorem 1 bound K^α·ι_p(ξ′) on the penalty of
// the current progressive estimate over all databases whose transformed
// data vector has coefficient mass K = Σ_ξ|Δ̂[ξ]| equal to coefficientMass,
// with α the penalty's homogeneity degree and ξ′ the most important
// unretrieved wavelet. α need not be an integer (Lp-norm combinations and
// user penalties may have fractional degree); math.Pow handles the general
// case and is exact for the common α ∈ {1, 2}.
func (r *Run) WorstCaseBound(coefficientMass float64) float64 {
	next := r.NextImportance()
	if next == 0 {
		return 0
	}
	return math.Pow(coefficientMass, r.pen.Homogeneity()) * next
}

// RemainingImportance returns Σ ι_p(ξ) over the unretrieved entries — the
// trace(R) of the Theorem 2 expected-penalty formula. The schedule
// precomputes the value for every prefix with the same sequential
// subtraction the heap loop performed, so mid-run values are bit-identical
// to the retired heap implementation.
func (r *Run) RemainingImportance() float64 {
	var rem float64
	if r.cursor < len(r.sched.order) {
		rem = r.sched.remaining[r.cursor]
	}
	// Skipped entries are behind the cursor but unretrieved; add them back.
	// Fault-free runs take neither branch and stay bit-identical.
	for _, sp := range r.skipped {
		rem += r.sched.importances[r.sched.order[sp]]
	}
	return rem
}

// ExpectedPenalty returns the Theorem 2 estimate of the penalty of the
// current progressive estimate for a database whose transformed data vector
// is uniformly distributed on the sphere of the given radius in the
// domainCells-dimensional coefficient space:
//
//	E[p] = radius² · Σ_{ξ unretrieved} ι_p(ξ) / domainCells
//
// It is meaningful for quadratic penalties (homogeneity 2). Note the paper
// states the denominator as N^d−1; the exact sphere moment gives N^d (see
// the theorem tests).
func (r *Run) ExpectedPenalty(domainCells int, radius float64) float64 {
	if domainCells <= 0 {
		return 0
	}
	return radius * radius * r.RemainingImportance() / float64(domainCells)
}

// StepUntilBound advances the run until the Theorem 1 worst-case penalty
// bound K^α·ι_p(ξ′) drops to target or the run completes, returning the
// number of steps executed. coefficientMass is K = Σ|Δ̂[ξ]| (see
// WorstCaseBound). This is the "stop when the answer is provably good
// enough" interface the progressive guarantees enable.
func (r *Run) StepUntilBound(coefficientMass, target float64) int {
	steps := 0
	for !r.Done() && r.WorstCaseBound(coefficientMass) > target {
		r.Step()
		steps++
	}
	return steps
}

// RunWithCheckpoints advances the run, invoking fn at each requested
// retrieval count and once more at completion. Checkpoints may arrive in
// any order and may repeat: they are visited in ascending order, each at
// most once; counts below the run's current position are skipped and counts
// beyond the master list collapse into the completion callback.
func (r *Run) RunWithCheckpoints(points []int, fn func(retrieved int, estimates []float64)) {
	sorted := append([]int(nil), points...)
	sort.Ints(sorted)
	prev := -1
	for _, p := range sorted {
		if p < r.Retrieved() || p == prev {
			continue
		}
		prev = p
		r.StepN(p - r.Retrieved())
		fn(r.Retrieved(), r.estimates)
		if r.Done() {
			break
		}
	}
	if !r.Done() {
		r.RunToCompletion()
		fn(r.Retrieved(), r.estimates)
	}
}

// RoundRobin is the unshared baseline of Section 2.2: s independent
// instances of the single-query biggest-B strategy advanced in round-robin
// fashion. Each query orders its own coefficients by |q̂[ξ]| and every
// retrieval serves exactly one query, so coefficients needed by several
// queries are fetched repeatedly.
type RoundRobin struct {
	store     storage.Store
	lists     [][]sparse.Entry
	positions []int
	estimates []float64
	retrieved int
	turn      int
}

// NewRoundRobin builds the baseline from per-query coefficient vectors.
func NewRoundRobin(vectors []sparse.Vector, store storage.Store) (*RoundRobin, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	lists := make([][]sparse.Entry, len(vectors))
	for i, v := range vectors {
		lists[i] = v.Entries() // descending |coefficient|: single-query biggest-B
	}
	return &RoundRobin{
		store:     store,
		lists:     lists,
		positions: make([]int, len(vectors)),
		estimates: make([]float64, len(vectors)),
	}, nil
}

// Step advances one query by one coefficient, cycling through the batch. It
// returns false once every query is exact.
func (r *RoundRobin) Step() bool {
	n := len(r.lists)
	for tried := 0; tried < n; tried++ {
		qi := r.turn
		r.turn = (r.turn + 1) % n
		if r.positions[qi] >= len(r.lists[qi]) {
			continue
		}
		e := r.lists[qi][r.positions[qi]]
		r.positions[qi]++
		v := r.store.Get(e.Key)
		r.retrieved++
		r.estimates[qi] += e.Val * v
		return true
	}
	return false
}

// RunToCompletion drains every per-query list.
func (r *RoundRobin) RunToCompletion() {
	for r.Step() {
	}
}

// Retrieved returns the number of (unshared) retrievals performed.
func (r *RoundRobin) Retrieved() int { return r.retrieved }

// Estimates returns the current progressive estimates (owned by the run).
func (r *RoundRobin) Estimates() []float64 { return r.estimates }
